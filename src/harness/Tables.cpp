//===-- harness/Tables.cpp - Paper table/figure printers -------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Tables.h"

#include "support/TableFormatter.h"

#include <cstdlib>

using namespace literace;

WorkloadParams literace::paramsFromEnv() {
  WorkloadParams Params;
  if (const char *Scale = std::getenv("LITERACE_SCALE"))
    Params.Scale = std::atof(Scale);
  if (const char *Seed = std::getenv("LITERACE_SEED"))
    Params.Seed = std::strtoull(Seed, nullptr, 10);
  return Params;
}

unsigned literace::repeatsFromEnv(unsigned Default) {
  if (const char *Repeats = std::getenv("LITERACE_REPEATS"))
    return static_cast<unsigned>(std::atoi(Repeats));
  return Default;
}

DetectorOptions literace::detectorOptionsFromEnv() {
  DetectorOptions Options;
  if (const char *Shards = std::getenv("LITERACE_SHARDS"))
    Options.Shards = static_cast<unsigned>(std::atoi(Shards));
  if (Options.Shards == 0)
    Options.Shards = 1;
  if (const char *Queue = std::getenv("LITERACE_SHARD_QUEUE"))
    Options.ShardQueueCapacity =
        static_cast<size_t>(std::strtoull(Queue, nullptr, 10));
  return Options;
}

void literace::printTable2(const std::vector<DetectionResult> &Results) {
  TableFormatter Table("Table 2: Benchmarks used");
  Table.addRow({"Benchmark", "#Fns", "#Threads", "Mem ops", "Sync ops",
                "Seeded races"});
  for (const DetectionResult &R : Results)
    Table.addRow({R.Benchmark, std::to_string(R.NumFunctions),
                  std::to_string(R.NumThreads), std::to_string(R.MemOps),
                  std::to_string(R.SyncOps), std::to_string(R.SeededTotal)});
  Table.print();
}

namespace {

/// Computes (plain average, memop-weighted average) ESR per sampler.
std::pair<std::vector<double>, std::vector<double>>
averageEsr(const std::vector<DetectionResult> &Results) {
  if (Results.empty())
    return {};
  size_t NumSamplers = Results.front().Samplers.size();
  std::vector<double> Avg(NumSamplers, 0.0), Weighted(NumSamplers, 0.0);
  double TotalMemOps = 0.0;
  for (const DetectionResult &R : Results)
    TotalMemOps += static_cast<double>(R.MemOps);
  for (const DetectionResult &R : Results)
    for (size_t Slot = 0; Slot != NumSamplers; ++Slot) {
      Avg[Slot] += R.Samplers[Slot].EffectiveSamplingRate /
                   static_cast<double>(Results.size());
      Weighted[Slot] += R.Samplers[Slot].EffectiveSamplingRate *
                        static_cast<double>(R.MemOps) / TotalMemOps;
    }
  return {Avg, Weighted};
}

} // namespace

void literace::printTable3(const std::vector<DetectionResult> &Results) {
  auto [Avg, Weighted] = averageEsr(Results);
  TableFormatter Table("Table 3: Samplers evaluated (effective sampling "
                       "rates over the benchmark suite)");
  Table.addRow({"Sampler", "Description", "Weighted Avg ESR", "Avg ESR"});
  if (!Results.empty()) {
    const DetectionResult &First = Results.front();
    for (size_t Slot = 0; Slot != First.Samplers.size(); ++Slot)
      Table.addRow({First.Samplers[Slot].ShortName,
                    First.Samplers[Slot].Description,
                    TableFormatter::percent(Weighted[Slot]),
                    TableFormatter::percent(Avg[Slot])});
  }
  Table.print();
}

void literace::printFigure4(const std::vector<DetectionResult> &Results) {
  TableFormatter Table("Figure 4: Proportion of static data races found by "
                       "various samplers");
  if (Results.empty()) {
    Table.print();
    return;
  }
  std::vector<std::string> Header = {"Benchmark"};
  for (const SamplerOutcome &S : Results.front().Samplers)
    Header.push_back(S.ShortName);
  Table.addRow(Header);
  for (const DetectionResult &R : Results) {
    std::vector<std::string> Row = {R.Benchmark};
    for (const SamplerOutcome &S : R.Samplers)
      Row.push_back(TableFormatter::percent(S.DetectionRate));
    Table.addRow(Row);
  }
  Table.addSeparator();
  // Average detection-rate row, then the weighted-average ESR group shown
  // at the right of the paper's figure.
  std::vector<std::string> AvgRow = {"Average"};
  size_t NumSamplers = Results.front().Samplers.size();
  for (size_t Slot = 0; Slot != NumSamplers; ++Slot) {
    double Sum = 0.0;
    for (const DetectionResult &R : Results)
      Sum += R.Samplers[Slot].DetectionRate;
    AvgRow.push_back(
        TableFormatter::percent(Sum / static_cast<double>(Results.size())));
  }
  Table.addRow(AvgRow);
  auto [Avg, Weighted] = averageEsr(Results);
  (void)Avg;
  std::vector<std::string> EsrRow = {"Weighted Avg Eff Sampling Rate"};
  for (size_t Slot = 0; Slot != NumSamplers; ++Slot)
    EsrRow.push_back(TableFormatter::percent(Weighted[Slot]));
  Table.addRow(EsrRow);
  Table.print();
}

void literace::printFigure5(const std::vector<DetectionResult> &Results) {
  for (bool Rare : {true, false}) {
    TableFormatter Table(Rare ? "Figure 5 (left): Rare data race "
                                "detection rate"
                              : "Figure 5 (right): Frequent data race "
                                "detection rate");
    if (Results.empty()) {
      Table.print();
      continue;
    }
    std::vector<std::string> Header = {"Benchmark"};
    for (const SamplerOutcome &S : Results.front().Samplers)
      Header.push_back(S.ShortName);
    Table.addRow(Header);
    size_t NumSamplers = Results.front().Samplers.size();
    std::vector<double> Sums(NumSamplers, 0.0);
    for (const DetectionResult &R : Results) {
      std::vector<std::string> Row = {R.Benchmark};
      for (size_t Slot = 0; Slot != NumSamplers; ++Slot) {
        double Rate = Rare ? R.Samplers[Slot].RareDetectionRate
                           : R.Samplers[Slot].FrequentDetectionRate;
        Sums[Slot] += Rate;
        Row.push_back(TableFormatter::percent(Rate));
      }
      Table.addRow(Row);
    }
    Table.addSeparator();
    std::vector<std::string> AvgRow = {"Average"};
    for (size_t Slot = 0; Slot != NumSamplers; ++Slot)
      AvgRow.push_back(TableFormatter::percent(
          Sums[Slot] / static_cast<double>(Results.size())));
    Table.addRow(AvgRow);
    Table.print();
    std::printf("\n");
  }
}

void literace::printTable4(const std::vector<DetectionResult> &Results) {
  TableFormatter Table("Table 4: Static data races found per benchmark "
                       "(full logging; median over runs)");
  Table.addRow({"Benchmark", "# races found", "#Rare", "#Freq",
                "Seeded found", "No false positives"});
  for (const DetectionResult &R : Results)
    Table.addRow({R.Benchmark, std::to_string(R.StaticTotal),
                  std::to_string(R.RareTotal),
                  std::to_string(R.FrequentTotal),
                  std::to_string(R.SeededDetected) + "/" +
                      std::to_string(R.SeededTotal),
                  R.AllDetectedWithinSeededSites ? "yes" : "NO"});
  Table.print();
}

void literace::printTable5(const std::vector<OverheadRow> &Rows) {
  TableFormatter Table("Table 5: Performance and log-size overhead, "
                       "LiteRace vs full logging");
  Table.addRow({"Benchmark", "Baseline", "LiteRace", "Full Logging",
                "LiteRace Log (MB/s)", "Full Log (MB/s)"});
  double SumBase = 0.0, SumLr = 0.0, SumFull = 0.0, SumLrMb = 0.0,
         SumFullMb = 0.0;
  double SumBaseApp = 0.0, SumLrApp = 0.0, SumFullApp = 0.0;
  size_t NumApp = 0;
  for (const OverheadRow &Row : Rows) {
    Table.addRow({Row.Benchmark,
                  TableFormatter::num(Row.BaselineSec, 3) + "s",
                  TableFormatter::times(Row.liteRaceSlowdown()),
                  TableFormatter::times(Row.fullLoggingSlowdown()),
                  TableFormatter::num(Row.liteRaceLogMBps()),
                  TableFormatter::num(Row.fullLogMBps())});
    SumBase += Row.BaselineSec;
    SumLr += Row.liteRaceSlowdown();
    SumFull += Row.fullLoggingSlowdown();
    SumLrMb += Row.liteRaceLogMBps();
    SumFullMb += Row.fullLogMBps();
    bool IsMicro =
        Row.Benchmark == "LKRHash" || Row.Benchmark == "LFList";
    if (!IsMicro) {
      SumBaseApp += Row.BaselineSec;
      SumLrApp += Row.liteRaceSlowdown();
      SumFullApp += Row.fullLoggingSlowdown();
      ++NumApp;
    }
  }
  if (!Rows.empty()) {
    double N = static_cast<double>(Rows.size());
    Table.addSeparator();
    Table.addRow({"Average", TableFormatter::num(SumBase / N, 3) + "s",
                  TableFormatter::times(SumLr / N),
                  TableFormatter::times(SumFull / N),
                  TableFormatter::num(SumLrMb / N),
                  TableFormatter::num(SumFullMb / N)});
    if (NumApp) {
      double M = static_cast<double>(NumApp);
      Table.addRow({"Average (w/o Microbench)",
                    TableFormatter::num(SumBaseApp / M, 3) + "s",
                    TableFormatter::times(SumLrApp / M),
                    TableFormatter::times(SumFullApp / M), "", ""});
    }
  }
  Table.print();
}

void literace::printFigure6(const std::vector<OverheadRow> &Rows) {
  TableFormatter Table("Figure 6: LiteRace slowdown over the "
                       "uninstrumented application, by component "
                       "(cumulative ratios)");
  Table.addRow({"Benchmark", "Baseline", "+Dispatch", "+Sync Logging",
                "+Memory Logging (LiteRace)"});
  for (const OverheadRow &Row : Rows) {
    double Base = Row.BaselineSec;
    Table.addRow({Row.Benchmark, TableFormatter::times(1.0),
                  TableFormatter::times(Row.DispatchOnlySec / Base),
                  TableFormatter::times(Row.SyncLoggingSec / Base),
                  TableFormatter::times(Row.LiteRaceSec / Base)});
  }
  Table.print();
}
