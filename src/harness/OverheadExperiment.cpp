//===-- harness/OverheadExperiment.cpp - §5.4 methodology -----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/OverheadExperiment.h"

#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace literace;

namespace {

/// Runs one configuration once; returns {seconds, log bytes}.
std::pair<double, uint64_t> runOnce(WorkloadKind Kind,
                                    const WorkloadParams &Params,
                                    RunMode Mode,
                                    const std::string &LogPath) {
  std::unique_ptr<Workload> W = makeWorkload(Kind);
  RuntimeConfig Config;
  Config.Mode = Mode;
  Config.Seed = Params.Seed;

  std::unique_ptr<FileSink> Sink;
  if (Mode >= RunMode::SyncLogging) {
    Sink = std::make_unique<FileSink>(LogPath, Config.TimestampCounters);
    assert(Sink->ok() && "failed to open log file");
  }

  Runtime RT(Config, Sink.get());
  W->bind(RT);

  WallTimer Timer;
  W->run(RT, Params);
  if (Sink)
    Sink->close();
  double Seconds = Timer.seconds();

  uint64_t Bytes = Sink ? Sink->bytesWritten() : 0;
  if (Sink)
    std::remove(LogPath.c_str());
  return {Seconds, Bytes};
}

} // namespace

OverheadRow literace::runOverheadExperiment(WorkloadKind Kind,
                                            const WorkloadParams &Params,
                                            unsigned Repeats,
                                            const std::string &LogDir) {
  assert(Repeats >= 1 && "need at least one run");
  OverheadRow Row;
  Row.Benchmark = makeWorkload(Kind)->name();
  const std::string LogPath =
      LogDir + "/literace_overhead_" + std::to_string(static_cast<int>(Kind)) +
      ".bin";

  struct ModeSpec {
    RunMode Mode;
    double OverheadRow::*Time;
  };
  const ModeSpec Specs[] = {
      {RunMode::Baseline, &OverheadRow::BaselineSec},
      {RunMode::DispatchOnly, &OverheadRow::DispatchOnlySec},
      {RunMode::SyncLogging, &OverheadRow::SyncLoggingSec},
      {RunMode::LiteRace, &OverheadRow::LiteRaceSec},
      {RunMode::FullLogging, &OverheadRow::FullLoggingSec},
  };

  for (const ModeSpec &Spec : Specs) {
    double Best = 0.0;
    uint64_t Bytes = 0;
    for (unsigned Rep = 0; Rep != Repeats; ++Rep) {
      auto [Seconds, LogBytes] = runOnce(Kind, Params, Spec.Mode, LogPath);
      Best = Rep == 0 ? Seconds : std::min(Best, Seconds);
      Bytes = LogBytes;
    }
    Row.*(Spec.Time) = Best;
    if (Spec.Mode == RunMode::LiteRace)
      Row.LiteRaceLogBytes = Bytes;
    if (Spec.Mode == RunMode::FullLogging)
      Row.FullLogBytes = Bytes;
  }
  return Row;
}
