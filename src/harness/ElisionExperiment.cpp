//===-- harness/ElisionExperiment.cpp - Static-elision study ---------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/ElisionExperiment.h"

#include "analysis/StaticAnalysis.h"
#include "detector/HBDetector.h"
#include "harness/DetectionExperiment.h"
#include "support/TableFormatter.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace literace;

namespace {

/// Per-family detection flags for \p Report against \p Manifest.
std::vector<char>
familiesDetected(const RaceReport &Report,
                 const std::vector<SeededRaceSpec> &Manifest) {
  std::vector<StaticRace> Races = Report.staticRaces();
  std::vector<char> Found(Manifest.size(), 0);
  for (size_t I = 0; I != Manifest.size(); ++I) {
    std::set<Pc> Sites(Manifest[I].Sites.begin(), Manifest[I].Sites.end());
    for (const StaticRace &Race : Races)
      if (Sites.count(Race.Key.first) && Sites.count(Race.Key.second)) {
        Found[I] = 1;
        break;
      }
  }
  return Found;
}

/// One timed full-logging run. With \p DisableElision the policy install
/// becomes a no-op (the --no-elide path); otherwise every provably
/// race-free site is skipped. Returns {seconds, memory ops elided}.
std::pair<double, uint64_t> timedRun(WorkloadKind Kind,
                                     const WorkloadParams &Params,
                                     bool DisableElision) {
  std::unique_ptr<Workload> W = makeWorkload(Kind);
  RuntimeConfig Config;
  Config.Mode = RunMode::FullLogging;
  Config.Seed = Params.Seed;
  Config.DisableElision = DisableElision;
  NullSink Sink;
  Runtime RT(Config, &Sink);
  W->bind(RT);
  analyzeAndInstall(RT);

  WallTimer Timer;
  W->run(RT, Params);
  double Seconds = Timer.seconds();
  return {Seconds, RT.stats().MemOpsElided};
}

} // namespace

ElisionRow literace::runElisionExperiment(WorkloadKind Kind,
                                          const WorkloadParams &Params,
                                          unsigned Repeats) {
  assert(Repeats >= 1 && "need at least one run");
  ElisionRow Row;

  // ---- Volume counts + soundness audit on ONE fully logged execution.
  // The policy is computed but NOT installed, so the trace is complete;
  // elision is then applied offline, which keeps the audit deterministic.
  std::unique_ptr<Workload> W = makeWorkload(Kind);
  MemorySink Sink(/*NumTimestampCounters=*/128);
  RuntimeConfig Config;
  Config.Mode = RunMode::FullLogging;
  Config.Seed = Params.Seed;
  Runtime RT(Config, &Sink);
  W->bind(RT);
  AnalysisResult Analysis = analyzeAccessModel(RT.accessModel());
  W->run(RT, Params);

  Row.Benchmark = W->name();
  Row.DeclaredSites = Analysis.DeclaredSites;
  Row.ElidableSites = Analysis.ElidableSites;

  Trace Full = Sink.takeTrace();
  for (const std::vector<EventRecord> &Stream : Full.PerThread)
    for (const EventRecord &R : Stream) {
      if (!isMemoryKind(R.Kind))
        continue;
      ++Row.FullMemRecords;
      if (Analysis.Policy.elidable(R.Pc))
        ++Row.ElidedMemRecords;
    }

  RaceReport FullReport;
  Row.LogConsistent &= detectRaces(Full, FullReport);
  Trace Filtered = filterTrace(Full, Analysis.Policy);
  RaceReport FilteredReport;
  Row.LogConsistent &= detectRaces(Filtered, FilteredReport);

  const std::vector<SeededRaceSpec> Manifest = W->seededRaces();
  std::vector<char> InFull = familiesDetected(FullReport, Manifest);
  std::vector<char> InFiltered = familiesDetected(FilteredReport, Manifest);
  Row.SeededFamilies = Manifest.size();
  for (size_t I = 0; I != Manifest.size(); ++I) {
    Row.FamiliesFull += InFull[I] ? 1 : 0;
    Row.FamiliesFiltered += InFiltered[I] ? 1 : 0;
    if (InFull[I] && !InFiltered[I])
      Row.Sound = false; // Elision hid a seeded race: soundness bug.
  }
  Row.Sound &= Row.LogConsistent;
  Row.RedundantSites = Analysis.RedundantSites;

  // ---- Per-pass differential attribution, on the SAME full trace. Each
  // pass is disabled in turn; the sites that stop being elidable are the
  // pass's exact credit, and the ablated policy is audited independently
  // so a soundness bug cannot hide behind another pass's proof.
  for (size_t PI = 0; PI != kNumAnalysisPasses; ++PI) {
    PassAblation Ablation;
    Ablation.Pass = static_cast<AnalysisPass>(PI);
    std::vector<Pc> Attributed =
        passAttribution(RT.accessModel(), Ablation.Pass);
    std::set<Pc> AttrSet(Attributed.begin(), Attributed.end());
    Ablation.SitesAttributed = AttrSet.size();
    for (const std::vector<EventRecord> &Stream : Full.PerThread)
      for (const EventRecord &R : Stream)
        if (isMemoryKind(R.Kind) && AttrSet.count(R.Pc))
          ++Ablation.RecordsAttributed;
    Ablation.ReductionPoints =
        Row.FullMemRecords == 0
            ? 0.0
            : static_cast<double>(Ablation.RecordsAttributed) /
                  static_cast<double>(Row.FullMemRecords);

    AnalysisResult Ablated = analyzeAccessModel(
        RT.accessModel(), AnalysisOptions::allExcept(Ablation.Pass));
    RaceReport AblatedReport;
    Ablation.Sound =
        detectRaces(filterTrace(Full, Ablated.Policy), AblatedReport);
    std::vector<char> InAblated = familiesDetected(AblatedReport, Manifest);
    for (size_t I = 0; I != Manifest.size(); ++I)
      if (InFull[I] && !InAblated[I])
        Ablation.Sound = false;
    Row.Ablations.push_back(Ablation);
  }

  // ---- Timed full-logging runs, with and without the policy.
  for (unsigned Rep = 0; Rep != Repeats; ++Rep) {
    auto [PlainSec, PlainElided] =
        timedRun(Kind, Params, /*DisableElision=*/true);
    assert(PlainElided == 0 && "--no-elide must disable the policy");
    (void)PlainElided;
    auto [PolicySec, PolicyElided] =
        timedRun(Kind, Params, /*DisableElision=*/false);
    Row.FullLoggingSec =
        Rep == 0 ? PlainSec : std::min(Row.FullLoggingSec, PlainSec);
    Row.ElidedSec =
        Rep == 0 ? PolicySec : std::min(Row.ElidedSec, PolicySec);
    Row.MemOpsElided = PolicyElided;
  }
  return Row;
}

void literace::printElisionTable(const std::vector<ElisionRow> &Rows) {
  TableFormatter Table("Static elision effectiveness: log volume and "
                       "full-logging time saved per benchmark");
  Table.addRow({"Benchmark", "Sites (elidable/declared)", "Mem Records",
                "Log Reduction", "Full Logging", "w/ Elision", "Time Saved",
                "Audit"});
  for (const ElisionRow &Row : Rows) {
    std::string Audit = !Row.LogConsistent ? "LOG INCONSISTENT"
                        : !Row.Sound       ? "RACE LOST"
                                           : "sound (" +
                                            std::to_string(Row.FamiliesFiltered) +
                                            "/" +
                                            std::to_string(Row.FamiliesFull) +
                                            " kept)";
    std::string Sites = std::to_string(Row.ElidableSites) + "/" +
                        std::to_string(Row.DeclaredSites);
    if (Row.RedundantSites != 0)
      Sites += " (" + std::to_string(Row.RedundantSites) + " red)";
    Table.addRow({Row.Benchmark, Sites, std::to_string(Row.FullMemRecords),
                  TableFormatter::percent(Row.logReduction()),
                  TableFormatter::num(Row.FullLoggingSec, 3) + "s",
                  TableFormatter::num(Row.ElidedSec, 3) + "s",
                  TableFormatter::percent(Row.overheadReduction()), Audit});
  }
  Table.print();

  TableFormatter Passes("Per-pass attribution: sites and log-reduction "
                        "points only that pass proves (pass disabled in "
                        "turn, ablated policy audited independently)");
  Passes.addRow({"Benchmark", "Pass", "Sites", "Mem Records",
                 "Reduction Pts", "Ablated Audit"});
  for (const ElisionRow &Row : Rows)
    for (const PassAblation &Ablation : Row.Ablations) {
      if (Ablation.SitesAttributed == 0 && Ablation.Sound)
        continue; // Nothing credited and nothing broken: skip the row.
      Passes.addRow({Row.Benchmark, passName(Ablation.Pass),
                     std::to_string(Ablation.SitesAttributed),
                     std::to_string(Ablation.RecordsAttributed),
                     TableFormatter::percent(Ablation.ReductionPoints),
                     Ablation.Sound ? "sound" : "RACE LOST"});
    }
  Passes.print();
}
