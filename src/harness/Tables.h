//===-- harness/Tables.h - Paper table/figure printers ---------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the rows of every table and figure in the paper's evaluation
/// section from experiment results. One printer per artifact; the bench
/// binaries call these after running the experiments.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_HARNESS_TABLES_H
#define LITERACE_HARNESS_TABLES_H

#include "harness/DetectionExperiment.h"
#include "harness/OverheadExperiment.h"

#include <vector>

namespace literace {

/// Table 2: benchmark inventory (#functions, threads, event volumes).
void printTable2(const std::vector<DetectionResult> &Results);

/// Table 3: sampler descriptions with average and weighted-average
/// effective sampling rates over the benchmark suite.
void printTable3(const std::vector<DetectionResult> &Results);

/// Figure 4: proportion of static data races found by each sampler per
/// benchmark, plus the weighted-average ESR group.
void printFigure4(const std::vector<DetectionResult> &Results);

/// Figure 5: rare (left) and frequent (right) detection rates.
void printFigure5(const std::vector<DetectionResult> &Results);

/// Table 4: static races found per benchmark, rare/frequent split.
void printTable4(const std::vector<DetectionResult> &Results);

/// Table 5: slowdowns and log rates, LiteRace vs full logging.
void printTable5(const std::vector<OverheadRow> &Rows);

/// Figure 6: stacked instrumentation-component overhead per benchmark.
void printFigure6(const std::vector<OverheadRow> &Rows);

/// Reads LITERACE_SCALE / LITERACE_REPEATS / LITERACE_SEED from the
/// environment into workload parameters (used by every bench binary so
/// runs can be resized without recompiling).
WorkloadParams paramsFromEnv();
unsigned repeatsFromEnv(unsigned Default = 1);

/// Reads LITERACE_SHARDS (and LITERACE_SHARD_QUEUE) from the environment:
/// the offline-analysis parallelism knob for the harness experiments.
/// Results are identical at any shard count; only wall time changes.
DetectorOptions detectorOptionsFromEnv();

} // namespace literace

#endif // LITERACE_HARNESS_TABLES_H
