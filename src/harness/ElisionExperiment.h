//===-- harness/ElisionExperiment.h - Static-elision study -----*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the pre-execution static analysis (src/analysis) buys on
/// each benchmark: how many instrumentation sites it proves race-free, the
/// share of memory records those sites would have produced, and the
/// full-logging wall-time saved by skipping them — plus a soundness audit
/// proving that eliding them hides none of the workload's seeded races.
///
/// The audit is deterministic by construction: one execution is logged in
/// full, then the elision policy is applied OFFLINE to that trace
/// (filterTrace) and detection runs on both views. Since both views come
/// from the same interleaving, any seeded-race family detected on the full
/// trace but missing from the filtered one is a genuine soundness bug in
/// the analysis, not scheduling noise.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_HARNESS_ELISIONEXPERIMENT_H
#define LITERACE_HARNESS_ELISIONEXPERIMENT_H

#include "analysis/StaticAnalysis.h"
#include "workloads/Workload.h"

#include <string>
#include <vector>

namespace literace {

/// Differential credit for one analysis pass on one benchmark: what the
/// full analysis elides that stops being elidable when this pass is
/// disabled, plus an independent soundness audit of that ablated
/// configuration against the same full trace.
struct PassAblation {
  AnalysisPass Pass = AnalysisPass::ThreadEscape;
  /// Sites only this pass proves (passAttribution).
  size_t SitesAttributed = 0;
  /// Memory records of the full trace at those sites — the log volume
  /// this pass alone removes.
  uint64_t RecordsAttributed = 0;
  /// The log-reduction percentage points credited to this pass
  /// (RecordsAttributed / FullMemRecords).
  double ReductionPoints = 0.0;
  /// Audit of the all-except-this-pass configuration: true iff no seeded
  /// family detected on the full trace is lost and replay stays
  /// consistent. Must hold for EVERY ablation, not just the full policy.
  bool Sound = true;
};

/// One benchmark row of the elision-effectiveness study.
struct ElisionRow {
  std::string Benchmark;
  /// Analysis summary: sites declared in the access model, and how many
  /// of them the analysis passes proved elidable.
  size_t DeclaredSites = 0;
  size_t ElidableSites = 0;
  /// Subset of ElidableSites elided as Redundant (dominated duplicates in
  /// sync-free regions) rather than RaceFree.
  size_t RedundantSites = 0;
  /// Memory records in one full (unsampled, unelided) log of the run, and
  /// how many of them the policy removes.
  uint64_t FullMemRecords = 0;
  uint64_t ElidedMemRecords = 0;
  /// Full-logging wall time with elision disabled (--no-elide) and with
  /// the policy installed; minimum over the repeat runs, NullSink.
  double FullLoggingSec = 0.0;
  double ElidedSec = 0.0;
  /// Runtime counter from the elided run: memory operations whose logging
  /// the tracer skipped.
  uint64_t MemOpsElided = 0;
  /// Soundness audit: seeded families detected on the full trace vs after
  /// offline elision. Sound iff no family detected on the full trace is
  /// lost, and no replay found the log inconsistent.
  size_t SeededFamilies = 0;
  size_t FamiliesFull = 0;
  size_t FamiliesFiltered = 0;
  bool Sound = true;
  bool LogConsistent = true;
  /// Per-pass differential attribution over the same full trace, one
  /// entry per AnalysisPass in pass order.
  std::vector<PassAblation> Ablations;

  /// Fraction of full-log memory records the policy elides.
  double logReduction() const {
    return FullMemRecords == 0
               ? 0.0
               : static_cast<double>(ElidedMemRecords) /
                     static_cast<double>(FullMemRecords);
  }
  /// Fraction of full-logging wall time the policy saves.
  double overheadReduction() const {
    return FullLoggingSec <= 0.0
               ? 0.0
               : 1.0 - ElidedSec / FullLoggingSec;
  }
};

/// Runs the study for one benchmark: one logged execution for the volume
/// counts and the audit, then \p Repeats timed full-logging runs per
/// configuration (minimum kept).
ElisionRow runElisionExperiment(WorkloadKind Kind,
                                const WorkloadParams &Params,
                                unsigned Repeats = 1);

/// Renders the study as a console table.
void printElisionTable(const std::vector<ElisionRow> &Rows);

} // namespace literace

#endif // LITERACE_HARNESS_ELISIONEXPERIMENT_H
