//===-- harness/DetectionExperiment.cpp - §5.3 methodology ----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/DetectionExperiment.h"

#include "detector/HBDetector.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace literace;

ExperimentRun literace::executeExperiment(Workload &W,
                                          const WorkloadParams &Params,
                                          telemetry::MetricsRegistry *Metrics) {
  MemorySink Sink(/*NumTimestampCounters=*/128);
  RuntimeConfig Config;
  Config.Mode = RunMode::Experiment;
  Config.Seed = Params.Seed;
  Config.Metrics = Metrics;
  Runtime RT(Config, &Sink);
  RT.addStandardSamplers();
  W.bind(RT);
  W.run(RT, Params);

  ExperimentRun Run;
  Run.TraceData = Sink.takeTrace();
  Run.Stats = RT.stats();
  Run.NumFunctions = RT.registry().size();
  Run.NumThreads = RT.numThreads();
  Run.Metrics = RT.metricsSnapshot();
  for (unsigned Slot = 0; Slot != RT.numSamplers(); ++Slot) {
    Run.SamplerNames.push_back(RT.sampler(Slot).shortName());
    Run.SamplerDescriptions.push_back(RT.sampler(Slot).description());
  }
  return Run;
}

std::pair<size_t, bool> literace::validateAgainstManifest(
    const RaceReport &Report, const std::vector<SeededRaceSpec> &Manifest) {
  std::vector<StaticRace> Races = Report.staticRaces();

  size_t FamiliesDetected = 0;
  for (const SeededRaceSpec &Spec : Manifest) {
    std::set<Pc> Sites(Spec.Sites.begin(), Spec.Sites.end());
    bool Found = false;
    for (const StaticRace &Race : Races)
      if (Sites.count(Race.Key.first) && Sites.count(Race.Key.second)) {
        Found = true;
        break;
      }
    FamiliesDetected += Found ? 1 : 0;
  }

  bool AllWithin = true;
  for (const StaticRace &Race : Races) {
    bool Within = false;
    for (const SeededRaceSpec &Spec : Manifest) {
      std::set<Pc> Sites(Spec.Sites.begin(), Spec.Sites.end());
      if (Sites.count(Race.Key.first) && Sites.count(Race.Key.second)) {
        Within = true;
        break;
      }
    }
    if (!Within) {
      AllWithin = false;
      break;
    }
  }
  return {FamiliesDetected, AllWithin};
}

namespace {

/// Counts how many of \p Found are present in \p Reference.
size_t countIn(const std::set<StaticRaceKey> &Found,
               const std::set<StaticRaceKey> &Reference) {
  size_t N = 0;
  for (const StaticRaceKey &Key : Found)
    if (Reference.count(Key))
      ++N;
  return N;
}

size_t medianOf(std::vector<size_t> Values) {
  assert(!Values.empty());
  std::sort(Values.begin(), Values.end());
  return Values[Values.size() / 2];
}

} // namespace

DetectionResult literace::runDetectionExperiment(
    WorkloadKind Kind, const WorkloadParams &Params, unsigned Repeats,
    const DetectorOptions &Detector) {
  assert(Repeats >= 1 && "need at least one run");
  DetectionResult Result;

  std::vector<size_t> StaticPerRun, RarePerRun, FreqPerRun;
  std::vector<std::vector<double>> RatePerSampler, RareRatePerSampler,
      FreqRatePerSampler, EsrPerSampler;

  for (unsigned Rep = 0; Rep != Repeats; ++Rep) {
    std::unique_ptr<Workload> W = makeWorkload(Kind);
    WorkloadParams RepParams = Params;
    RepParams.Seed = Params.Seed + 7919 * Rep;
    ExperimentRun Run = executeExperiment(*W, RepParams);

    if (Rep == 0) {
      Result.Benchmark = W->name();
      Result.NumFunctions = Run.NumFunctions;
      Result.NumThreads = Run.NumThreads;
      Result.MemOps = Run.Stats.MemOpsLogged;
      Result.SyncOps = Run.Stats.SyncOps;
      Result.Samplers.resize(Run.SamplerNames.size());
      RatePerSampler.resize(Run.SamplerNames.size());
      RareRatePerSampler.resize(Run.SamplerNames.size());
      FreqRatePerSampler.resize(Run.SamplerNames.size());
      EsrPerSampler.resize(Run.SamplerNames.size());
      for (size_t Slot = 0; Slot != Run.SamplerNames.size(); ++Slot) {
        Result.Samplers[Slot].ShortName = Run.SamplerNames[Slot];
        Result.Samplers[Slot].Description = Run.SamplerDescriptions[Slot];
      }
    }

    // Full-log detection: the ground truth of this execution.
    RaceReport Full;
    Result.LogConsistent &=
        detectRaces(Run.TraceData, Full, ReplayOptions(), Detector);
    const uint64_t MemOps = Run.Stats.MemOpsLogged;
    auto [RareKeys, FreqKeys] = Full.splitRareFrequent(MemOps);
    StaticPerRun.push_back(Full.numStaticRaces());
    RarePerRun.push_back(RareKeys.size());
    FreqPerRun.push_back(FreqKeys.size());

    // Ground-truth validation against the seeded manifest.
    auto [Detected, AllWithin] =
        validateAgainstManifest(Full, W->seededRaces());
    Result.SeededTotal = W->seededRaces().size();
    if (Rep == 0)
      Result.SeededDetected = Detected;
    else
      Result.SeededDetected = std::min(Result.SeededDetected, Detected);
    Result.AllDetectedWithinSeededSites &= AllWithin;

    // Per-sampler detection over the same interleaving.
    std::set<StaticRaceKey> FullKeys = Full.keys();
    for (size_t Slot = 0; Slot != Result.Samplers.size(); ++Slot) {
      RaceReport Sampled;
      ReplayOptions Options;
      Options.SamplerSlot = static_cast<int>(Slot);
      Result.LogConsistent &=
          detectRaces(Run.TraceData, Sampled, Options, Detector);
      std::set<StaticRaceKey> Keys = Sampled.keys();

      double Rate = FullKeys.empty()
                        ? 1.0
                        : static_cast<double>(countIn(Keys, FullKeys)) /
                              static_cast<double>(FullKeys.size());
      double RareRate =
          RareKeys.empty()
              ? 1.0
              : static_cast<double>(countIn(Keys, RareKeys)) /
                    static_cast<double>(RareKeys.size());
      double FreqRate =
          FreqKeys.empty()
              ? 1.0
              : static_cast<double>(countIn(Keys, FreqKeys)) /
                    static_cast<double>(FreqKeys.size());
      RatePerSampler[Slot].push_back(Rate);
      RareRatePerSampler[Slot].push_back(RareRate);
      FreqRatePerSampler[Slot].push_back(FreqRate);
      EsrPerSampler[Slot].push_back(
          Run.Stats.effectiveSamplingRate(static_cast<unsigned>(Slot)));
    }
  }

  Result.StaticTotal = medianOf(StaticPerRun);
  Result.RareTotal = medianOf(RarePerRun);
  Result.FrequentTotal = medianOf(FreqPerRun);

  auto Average = [](const std::vector<double> &V) {
    double Sum = 0.0;
    for (double X : V)
      Sum += X;
    return V.empty() ? 0.0 : Sum / static_cast<double>(V.size());
  };
  for (size_t Slot = 0; Slot != Result.Samplers.size(); ++Slot) {
    SamplerOutcome &Out = Result.Samplers[Slot];
    Out.DetectionRate = Average(RatePerSampler[Slot]);
    Out.RareDetectionRate = Average(RareRatePerSampler[Slot]);
    Out.FrequentDetectionRate = Average(FreqRatePerSampler[Slot]);
    Out.EffectiveSamplingRate = Average(EsrPerSampler[Slot]);
    Out.StaticFound = static_cast<size_t>(
        Out.DetectionRate * static_cast<double>(Result.StaticTotal) + 0.5);
    Out.RareFound = static_cast<size_t>(
        Out.RareDetectionRate * static_cast<double>(Result.RareTotal) + 0.5);
    Out.FrequentFound = static_cast<size_t>(
        Out.FrequentDetectionRate * static_cast<double>(Result.FrequentTotal) +
        0.5);
  }
  return Result;
}
