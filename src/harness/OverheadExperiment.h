//===-- harness/OverheadExperiment.h - §5.4 methodology -------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's overhead methodology (§5.4): run each benchmark under the
/// four instrumentation configurations (baseline, +dispatch checks,
/// +synchronization logging, full LiteRace) plus the full-logging
/// comparison point, measuring wall time and generated log volume.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_HARNESS_OVERHEADEXPERIMENT_H
#define LITERACE_HARNESS_OVERHEADEXPERIMENT_H

#include "workloads/Workload.h"

#include <string>
#include <vector>

namespace literace {

/// One row of Table 5 / one bar group of Fig. 6.
struct OverheadRow {
  std::string Benchmark;
  double BaselineSec = 0.0;
  double DispatchOnlySec = 0.0;
  double SyncLoggingSec = 0.0;
  double LiteRaceSec = 0.0;
  double FullLoggingSec = 0.0;
  uint64_t LiteRaceLogBytes = 0;
  uint64_t FullLogBytes = 0;

  double liteRaceSlowdown() const { return LiteRaceSec / BaselineSec; }
  double fullLoggingSlowdown() const { return FullLoggingSec / BaselineSec; }
  double liteRaceLogMBps() const {
    return LiteRaceSec > 0
               ? static_cast<double>(LiteRaceLogBytes) / 1e6 / LiteRaceSec
               : 0.0;
  }
  double fullLogMBps() const {
    return FullLoggingSec > 0
               ? static_cast<double>(FullLogBytes) / 1e6 / FullLoggingSec
               : 0.0;
  }
};

/// Measures one benchmark under all five configurations. \p Repeats runs
/// per configuration, keeping the minimum time (the paper ran each ten
/// times). Log files are written under \p LogDir and removed afterwards.
OverheadRow runOverheadExperiment(WorkloadKind Kind,
                                  const WorkloadParams &Params,
                                  unsigned Repeats = 1,
                                  const std::string &LogDir = "/tmp");

} // namespace literace

#endif // LITERACE_HARNESS_OVERHEADEXPERIMENT_H
