//===-- harness/FuzzExperiment.h - Schedule-fuzz sweeps --------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The schedule-perturbation fuzz harness: run a workload under the
/// deterministic ScheduleEngine across many seeds, and for every seed
///
///  - detect races on the full log (the ground truth of that schedule),
///  - replay each standard sampler's filtered view (per-sampler recall),
///  - check every seeded-race family against the workload manifest,
///  - cross-check detector backends (sharded HB keys and FastTrack racy
///    addresses must match the serial HB detector), and
///  - record the canonical trace digest (fuzz/TraceCanon), so a failing
///    seed is replayable bit-for-bit with `literace-fuzz --seed`.
///
/// The sweep aggregates per-family × per-sampler recall (on how many
/// seeds did the family manifest in the full log, and on how many did
/// each sampler still catch it) — the fuzz analogue of the §5.3 detection
/// tables, with schedule diversity instead of repeat runs.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_HARNESS_FUZZEXPERIMENT_H
#define LITERACE_HARNESS_FUZZEXPERIMENT_H

#include "detector/RaceReport.h"
#include "fuzz/ScheduleEngine.h"
#include "runtime/EventLog.h"
#include "runtime/Runtime.h"
#include "workloads/Workload.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace literace {

/// Knobs of one fuzz sweep.
struct FuzzSweepOptions {
  /// Seeds FirstSeed .. FirstSeed+NumSeeds-1 are run.
  uint64_t FirstSeed = 1;
  unsigned NumSeeds = 10;
  /// Workload scale; fuzz runs favour many small schedules over one big
  /// one, so the default is far below the paper-shaped 1.0.
  double Scale = 0.02;
  /// Perturbation policy. The Seed field is overwritten per run.
  PerturbOptions Perturb;
  /// Also replay every trace through the sharded and FastTrack backends
  /// and require agreement with the serial HB detector.
  bool CrossCheckBackends = true;
};

/// Raw artifacts of one fuzzed Experiment-mode execution.
struct FuzzRunArtifacts {
  Trace TraceData;
  RuntimeStats Stats;
  PerturbStats Schedule;
  /// CRC32C of the canonicalized trace; equal digests mean the schedule
  /// (and thus every detector outcome) was reproduced exactly.
  uint32_t CanonicalDigest = 0;
  std::vector<std::string> SamplerNames;
};

/// Executes \p W (fresh, unbound) once in Experiment mode under a
/// ScheduleEngine seeded from \p Perturb.
FuzzRunArtifacts executeFuzzRun(Workload &W, const WorkloadParams &Params,
                                const PerturbOptions &Perturb);

/// Sweep-level recall of one seeded-race family.
struct FuzzFamilyRecall {
  std::string Label;
  bool ExpectFrequent = false;
  /// Seeds on which the full-log detector reported a pair inside the
  /// family's site set.
  unsigned SeedsManifested = 0;
  /// Of those, how many each sampler slot still caught.
  std::vector<unsigned> SeedsCaughtBySampler;
};

/// Outcome of one seed.
struct FuzzSeedOutcome {
  uint64_t Seed = 0;
  uint32_t CanonicalDigest = 0;
  size_t StaticRaces = 0;
  size_t FamiliesDetected = 0;
  bool AllWithinSeededSites = true;
  bool BackendsAgree = true;
  bool LogConsistent = true;
  uint64_t MemOps = 0;
  PerturbStats Schedule;
};

/// Aggregated result of one sweep.
struct FuzzResult {
  std::string Benchmark;
  std::string WorkloadCliName;
  FuzzSweepOptions Options;
  std::vector<std::string> SamplerNames;
  /// Averaged effective sampling rate per slot across all seeds.
  std::vector<double> SamplerEffectiveRates;
  std::vector<FuzzFamilyRecall> Families;
  std::vector<FuzzSeedOutcome> Seeds;
  bool AllLogsConsistent = true;
  bool AllWithinSeededSites = true;
  bool AllBackendsAgree = true;

  /// Fraction of manifesting seeds sampler \p Slot caught for family
  /// \p Family; 1.0 when the family never manifested.
  double recall(size_t Family, size_t Slot) const;
  /// Repro candidates: seeds whose full log detected fewer families than
  /// the sweep-wide maximum, ordered weakest first.
  std::vector<uint64_t> weakestSeeds(size_t MaxCount = 5) const;
};

/// Runs the sweep for one workload kind.
FuzzResult runFuzzSweep(WorkloadKind Kind, const FuzzSweepOptions &Opts);

/// Result of replaying one seed twice (fresh workload + engine each time).
struct FuzzDeterminismCheck {
  bool Identical = false;
  uint32_t DigestA = 0;
  uint32_t DigestB = 0;
  size_t RacesA = 0;
  size_t RacesB = 0;
};

/// Same seed ⇒ byte-identical canonical trace and identical race report.
FuzzDeterminismCheck checkFuzzDeterminism(WorkloadKind Kind, uint64_t Seed,
                                          const FuzzSweepOptions &Opts);

/// Renders the recall table (families × samplers) plus per-seed rows.
void printFuzzResult(const FuzzResult &R);

/// Writes the sweep result as a JSON document.
void writeFuzzJson(const FuzzResult &R, std::ostream &OS);

} // namespace literace

#endif // LITERACE_HARNESS_FUZZEXPERIMENT_H
