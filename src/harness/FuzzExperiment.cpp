//===-- harness/FuzzExperiment.cpp - Schedule-fuzz sweeps ----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/FuzzExperiment.h"

#include "detector/FastTrackDetector.h"
#include "detector/HBDetector.h"
#include "fuzz/TraceCanon.h"
#include "support/TableFormatter.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <set>

using namespace literace;

FuzzRunArtifacts literace::executeFuzzRun(Workload &W,
                                          const WorkloadParams &Params,
                                          const PerturbOptions &Perturb) {
  MemorySink Sink(/*NumTimestampCounters=*/128);
  RuntimeConfig Config;
  Config.Mode = RunMode::Experiment;
  Config.Seed = Params.Seed;
  // Telemetry's process-global registry would make successive fuzz runs
  // observably different; the engine needs every run bit-reproducible.
  Config.DisableTelemetry = true;
  Runtime RT(Config, &Sink);
  ScheduleEngine Engine(Perturb);
  // Must precede every ThreadContext; bind() registers functions only.
  RT.installPerturber(&Engine);
  RT.addStandardSamplers();
  W.bind(RT);
  W.run(RT, Params);

  FuzzRunArtifacts Run;
  Run.TraceData = Sink.takeTrace();
  Run.Stats = RT.stats();
  Run.Schedule = Engine.stats();
  Run.CanonicalDigest = canonicalizeTrace(Run.TraceData).Digest;
  for (unsigned Slot = 0; Slot != RT.numSamplers(); ++Slot)
    Run.SamplerNames.push_back(RT.sampler(Slot).shortName());
  return Run;
}

namespace {

/// True when \p Report holds a race with both sites inside \p Spec.
bool familyDetected(const RaceReport &Report, const SeededRaceSpec &Spec) {
  std::set<Pc> Sites(Spec.Sites.begin(), Spec.Sites.end());
  for (const StaticRace &Race : Report.staticRaces())
    if (Sites.count(Race.Key.first) && Sites.count(Race.Key.second))
      return true;
  return false;
}

/// True when every reported race lies inside some manifest family.
bool allWithinManifest(const RaceReport &Report,
                       const std::vector<SeededRaceSpec> &Manifest) {
  for (const StaticRace &Race : Report.staticRaces()) {
    bool Within = false;
    for (const SeededRaceSpec &Spec : Manifest) {
      std::set<Pc> Sites(Spec.Sites.begin(), Spec.Sites.end());
      if (Sites.count(Race.Key.first) && Sites.count(Race.Key.second)) {
        Within = true;
        break;
      }
    }
    if (!Within)
      return false;
  }
  return true;
}

const char *cliNameOf(WorkloadKind Kind) {
  for (const WorkloadNameEntry &Entry : workloadNameTable())
    if (Entry.Kind == Kind)
      return Entry.Name;
  return "?";
}

} // namespace

double FuzzResult::recall(size_t Family, size_t Slot) const {
  const FuzzFamilyRecall &F = Families[Family];
  if (F.SeedsManifested == 0)
    return 1.0;
  return static_cast<double>(F.SeedsCaughtBySampler[Slot]) /
         static_cast<double>(F.SeedsManifested);
}

std::vector<uint64_t> FuzzResult::weakestSeeds(size_t MaxCount) const {
  size_t Max = 0;
  for (const FuzzSeedOutcome &S : Seeds)
    Max = std::max(Max, S.FamiliesDetected);
  std::vector<const FuzzSeedOutcome *> Weak;
  for (const FuzzSeedOutcome &S : Seeds)
    if (S.FamiliesDetected < Max)
      Weak.push_back(&S);
  std::sort(Weak.begin(), Weak.end(),
            [](const FuzzSeedOutcome *A, const FuzzSeedOutcome *B) {
              if (A->FamiliesDetected != B->FamiliesDetected)
                return A->FamiliesDetected < B->FamiliesDetected;
              return A->Seed < B->Seed;
            });
  std::vector<uint64_t> Out;
  for (const FuzzSeedOutcome *S : Weak) {
    if (Out.size() == MaxCount)
      break;
    Out.push_back(S->Seed);
  }
  return Out;
}

FuzzResult literace::runFuzzSweep(WorkloadKind Kind,
                                  const FuzzSweepOptions &Opts) {
  assert(Opts.NumSeeds >= 1 && "need at least one seed");
  FuzzResult Result;
  Result.Options = Opts;
  Result.WorkloadCliName = cliNameOf(Kind);

  std::vector<double> EsrSums;

  for (unsigned I = 0; I != Opts.NumSeeds; ++I) {
    const uint64_t Seed = Opts.FirstSeed + I;
    std::unique_ptr<Workload> W = makeWorkload(Kind);
    WorkloadParams Params;
    Params.Scale = Opts.Scale;
    Params.Seed = Seed;
    PerturbOptions Perturb = Opts.Perturb;
    Perturb.Seed = Seed;
    FuzzRunArtifacts Run = executeFuzzRun(*W, Params, Perturb);
    const std::vector<SeededRaceSpec> Manifest = W->seededRaces();

    if (I == 0) {
      Result.Benchmark = W->name();
      Result.SamplerNames = Run.SamplerNames;
      EsrSums.assign(Run.SamplerNames.size(), 0.0);
      for (const SeededRaceSpec &Spec : Manifest) {
        FuzzFamilyRecall F;
        F.Label = Spec.Label;
        F.ExpectFrequent = Spec.ExpectFrequent;
        F.SeedsCaughtBySampler.assign(Run.SamplerNames.size(), 0);
        Result.Families.push_back(std::move(F));
      }
    }

    FuzzSeedOutcome Outcome;
    Outcome.Seed = Seed;
    Outcome.CanonicalDigest = Run.CanonicalDigest;
    Outcome.MemOps = Run.Stats.MemOpsLogged;
    Outcome.Schedule = Run.Schedule;

    // Full-log detection: this schedule's ground truth.
    RaceReport Full;
    Outcome.LogConsistent = detectRaces(Run.TraceData, Full);
    Outcome.StaticRaces = Full.numStaticRaces();
    Outcome.AllWithinSeededSites = allWithinManifest(Full, Manifest);

    std::vector<bool> Manifested(Manifest.size(), false);
    for (size_t F = 0; F != Manifest.size(); ++F) {
      Manifested[F] = familyDetected(Full, Manifest[F]);
      if (Manifested[F]) {
        ++Result.Families[F].SeedsManifested;
        ++Outcome.FamiliesDetected;
      }
    }

    // Per-sampler recall over the same interleaving.
    for (size_t Slot = 0; Slot != Result.SamplerNames.size(); ++Slot) {
      RaceReport Sampled;
      ReplayOptions Options;
      Options.SamplerSlot = static_cast<int>(Slot);
      Outcome.LogConsistent &= detectRaces(Run.TraceData, Sampled, Options);
      for (size_t F = 0; F != Manifest.size(); ++F)
        if (Manifested[F] && familyDetected(Sampled, Manifest[F]))
          ++Result.Families[F].SeedsCaughtBySampler[Slot];
      EsrSums[Slot] +=
          Run.Stats.effectiveSamplingRate(static_cast<unsigned>(Slot));
    }

    // Backend cross-check: sharded HB must reproduce the serial key set;
    // FastTrack reports one witness per address, so compare addresses.
    if (Opts.CrossCheckBackends) {
      RaceReport Sharded;
      DetectorOptions Par;
      Par.Shards = 4;
      Outcome.LogConsistent &=
          detectRaces(Run.TraceData, Sharded, ReplayOptions(), Par);
      Outcome.BackendsAgree = Sharded.keys() == Full.keys();
      RaceReport Ft;
      Outcome.LogConsistent &= detectRacesFastTrack(Run.TraceData, Ft);
      Outcome.BackendsAgree &=
          Ft.racyAddresses() == Full.racyAddresses();
    }

    Result.AllLogsConsistent &= Outcome.LogConsistent;
    Result.AllWithinSeededSites &= Outcome.AllWithinSeededSites;
    Result.AllBackendsAgree &= Outcome.BackendsAgree;
    Result.Seeds.push_back(Outcome);
  }

  for (double Sum : EsrSums)
    Result.SamplerEffectiveRates.push_back(
        Sum / static_cast<double>(Opts.NumSeeds));
  return Result;
}

FuzzDeterminismCheck
literace::checkFuzzDeterminism(WorkloadKind Kind, uint64_t Seed,
                               const FuzzSweepOptions &Opts) {
  FuzzDeterminismCheck Check;
  std::set<StaticRaceKey> Keys[2];
  uint32_t Digests[2] = {0, 0};
  size_t Races[2] = {0, 0};
  for (int Rep = 0; Rep != 2; ++Rep) {
    std::unique_ptr<Workload> W = makeWorkload(Kind);
    WorkloadParams Params;
    Params.Scale = Opts.Scale;
    Params.Seed = Seed;
    PerturbOptions Perturb = Opts.Perturb;
    Perturb.Seed = Seed;
    FuzzRunArtifacts Run = executeFuzzRun(*W, Params, Perturb);
    Digests[Rep] = Run.CanonicalDigest;
    RaceReport Report;
    detectRaces(Run.TraceData, Report);
    Keys[Rep] = Report.keys();
    Races[Rep] = Report.numStaticRaces();
  }
  Check.DigestA = Digests[0];
  Check.DigestB = Digests[1];
  Check.RacesA = Races[0];
  Check.RacesB = Races[1];
  Check.Identical = Digests[0] == Digests[1] && Keys[0] == Keys[1];
  return Check;
}

void literace::printFuzzResult(const FuzzResult &R) {
  {
    TableFormatter Table("Fuzz recall — " + R.Benchmark + " (" +
                         std::to_string(R.Options.NumSeeds) + " seeds, base " +
                         std::to_string(R.Options.FirstSeed) + ")");
    std::vector<std::string> Header = {"family", "kind", "manifested"};
    for (const std::string &Name : R.SamplerNames)
      Header.push_back(Name);
    Table.addRow(Header);
    for (size_t F = 0; F != R.Families.size(); ++F) {
      const FuzzFamilyRecall &Fam = R.Families[F];
      std::vector<std::string> Row = {
          Fam.Label, Fam.ExpectFrequent ? "frequent" : "rare",
          std::to_string(Fam.SeedsManifested) + "/" +
              std::to_string(R.Options.NumSeeds)};
      for (size_t Slot = 0; Slot != R.SamplerNames.size(); ++Slot)
        Row.push_back(TableFormatter::percent(R.recall(F, Slot)));
      Table.addRow(Row);
    }
    Table.print();
  }
  {
    TableFormatter Table("Per-seed outcomes");
    Table.addRow({"seed", "digest", "races", "families", "memops",
                  "switches", "consistent", "in-manifest", "backends"});
    for (const FuzzSeedOutcome &S : R.Seeds) {
      char Digest[16];
      std::snprintf(Digest, sizeof(Digest), "%08x", S.CanonicalDigest);
      Table.addRow({std::to_string(S.Seed), Digest,
                    std::to_string(S.StaticRaces),
                    std::to_string(S.FamiliesDetected),
                    std::to_string(S.MemOps),
                    std::to_string(S.Schedule.Switches),
                    S.LogConsistent ? "yes" : "NO",
                    S.AllWithinSeededSites ? "yes" : "NO",
                    S.BackendsAgree ? "yes" : "NO"});
    }
    Table.print();
  }
}

namespace {

void jsonEscape(std::ostream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    if (C == '"' || C == '\\')
      OS << '\\';
    OS << C;
  }
  OS << '"';
}

} // namespace

void literace::writeFuzzJson(const FuzzResult &R, std::ostream &OS) {
  OS << "{\n  \"benchmark\": ";
  jsonEscape(OS, R.Benchmark);
  OS << ",\n  \"workload\": ";
  jsonEscape(OS, R.WorkloadCliName);
  OS << ",\n  \"first_seed\": " << R.Options.FirstSeed
     << ",\n  \"num_seeds\": " << R.Options.NumSeeds
     << ",\n  \"scale\": " << R.Options.Scale
     << ",\n  \"all_logs_consistent\": "
     << (R.AllLogsConsistent ? "true" : "false")
     << ",\n  \"all_within_seeded_sites\": "
     << (R.AllWithinSeededSites ? "true" : "false")
     << ",\n  \"all_backends_agree\": "
     << (R.AllBackendsAgree ? "true" : "false");
  OS << ",\n  \"samplers\": [";
  for (size_t Slot = 0; Slot != R.SamplerNames.size(); ++Slot) {
    OS << (Slot ? ", " : "");
    jsonEscape(OS, R.SamplerNames[Slot]);
  }
  OS << "],\n  \"sampler_effective_rates\": [";
  for (size_t Slot = 0; Slot != R.SamplerEffectiveRates.size(); ++Slot)
    OS << (Slot ? ", " : "") << R.SamplerEffectiveRates[Slot];
  OS << "],\n  \"families\": [";
  for (size_t F = 0; F != R.Families.size(); ++F) {
    const FuzzFamilyRecall &Fam = R.Families[F];
    OS << (F ? ",\n    {" : "\n    {") << "\"label\": ";
    jsonEscape(OS, Fam.Label);
    OS << ", \"expect_frequent\": "
       << (Fam.ExpectFrequent ? "true" : "false")
       << ", \"seeds_manifested\": " << Fam.SeedsManifested
       << ", \"caught_by_sampler\": [";
    for (size_t Slot = 0; Slot != Fam.SeedsCaughtBySampler.size(); ++Slot)
      OS << (Slot ? ", " : "") << Fam.SeedsCaughtBySampler[Slot];
    OS << "]}";
  }
  OS << "\n  ],\n  \"seeds\": [";
  for (size_t I = 0; I != R.Seeds.size(); ++I) {
    const FuzzSeedOutcome &S = R.Seeds[I];
    OS << (I ? ",\n    {" : "\n    {") << "\"seed\": " << S.Seed
       << ", \"digest\": " << S.CanonicalDigest
       << ", \"static_races\": " << S.StaticRaces
       << ", \"families_detected\": " << S.FamiliesDetected
       << ", \"mem_ops\": " << S.MemOps
       << ", \"points\": " << S.Schedule.Points
       << ", \"switches\": " << S.Schedule.Switches
       << ", \"log_consistent\": " << (S.LogConsistent ? "true" : "false")
       << ", \"within_seeded_sites\": "
       << (S.AllWithinSeededSites ? "true" : "false")
       << ", \"backends_agree\": " << (S.BackendsAgree ? "true" : "false")
       << "}";
  }
  OS << "\n  ]\n}\n";
}
