//===-- harness/DetectionExperiment.h - §5.3 methodology -------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's sampler-comparison methodology (§5.3): run each benchmark
/// once in Experiment mode — full logging, with every sampler's dispatch
/// decision recorded per memory operation — then run happens-before
/// detection once on the complete log and once per sampler-filtered view.
/// All samplers are thereby compared on the same thread interleaving.
/// Detected static races are classified rare/frequent per §5.3.1, and the
/// whole result is validated against the workload's seeded-race manifest
/// (ground truth the paper did not have).
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_HARNESS_DETECTIONEXPERIMENT_H
#define LITERACE_HARNESS_DETECTIONEXPERIMENT_H

#include "detector/RaceReport.h"
#include "detector/Replay.h"
#include "runtime/EventLog.h"
#include "runtime/Runtime.h"
#include "workloads/Workload.h"

#include <string>
#include <vector>

namespace literace {

/// Raw artifacts of one Experiment-mode execution.
struct ExperimentRun {
  Trace TraceData;
  RuntimeStats Stats;
  size_t NumFunctions = 0;
  uint32_t NumThreads = 0;
  std::vector<std::string> SamplerNames;
  std::vector<std::string> SamplerDescriptions;
  /// Runtime-plane telemetry snapshot (docs/TELEMETRY.md), taken after
  /// the workload's threads detached, so counters are exact. Cumulative
  /// when successive runs share the process-global registry; pass a
  /// private registry to executeExperiment for per-run isolation. Empty
  /// when the kill switch disabled telemetry.
  telemetry::MetricsSnapshot Metrics;
};

/// Executes \p W (fresh, unbound) once in Experiment mode with the seven
/// standard samplers attached and returns the trace and statistics.
/// \p Metrics overrides the telemetry registry (tests use a private one;
/// null resolves to the process-global registry).
ExperimentRun executeExperiment(Workload &W, const WorkloadParams &Params,
                                telemetry::MetricsRegistry *Metrics = nullptr);

/// Per-sampler outcome of a detection experiment.
struct SamplerOutcome {
  std::string ShortName;
  std::string Description;
  /// Fraction of executed memory operations this sampler logged (§5.2).
  double EffectiveSamplingRate = 0.0;
  size_t StaticFound = 0;
  double DetectionRate = 0.0;
  size_t RareFound = 0;
  size_t FrequentFound = 0;
  double RareDetectionRate = 0.0;
  double FrequentDetectionRate = 0.0;
};

/// Aggregated result for one benchmark-input pair.
struct DetectionResult {
  std::string Benchmark;
  uint64_t MemOps = 0;
  uint64_t SyncOps = 0;
  size_t NumFunctions = 0;
  uint32_t NumThreads = 0;
  /// Static races found on the full (unsampled) log; rare/frequent split
  /// per §5.3.1. With Repeats > 1 these are medians over the runs, as in
  /// Table 4.
  size_t StaticTotal = 0;
  size_t RareTotal = 0;
  size_t FrequentTotal = 0;
  std::vector<SamplerOutcome> Samplers;
  /// Ground-truth validation: seeded race families found on the full log,
  /// and whether every detected pair lies within some seeded family.
  size_t SeededTotal = 0;
  size_t SeededDetected = 0;
  bool AllDetectedWithinSeededSites = true;
  /// False if any replay found the log inconsistent (must not happen).
  bool LogConsistent = true;
};

/// Runs the full §5.3 experiment for one benchmark. \p Repeats fresh
/// executions are performed (the paper uses 3); detection rates are
/// averaged and race counts are medians across runs. Every replay uses
/// \p Detector (so LITERACE_SHARDS parallelizes the analysis side of the
/// experiments without changing any result).
DetectionResult
runDetectionExperiment(WorkloadKind Kind, const WorkloadParams &Params,
                       unsigned Repeats = 1,
                       const DetectorOptions &Detector = DetectorOptions());

/// Checks a detection report against a seeded-race manifest.
/// \returns {number of manifest families with at least one detected pair
/// fully inside the family's site set, whether every detected pair lies
/// inside some family}.
std::pair<size_t, bool>
validateAgainstManifest(const RaceReport &Report,
                        const std::vector<SeededRaceSpec> &Manifest);

} // namespace literace

#endif // LITERACE_HARNESS_DETECTIONEXPERIMENT_H
