//===-- support/ShadowMap.h - Two-level flat shadow memory ------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat two-level shadow-memory table mapping 64-bit addresses to
/// per-address detector state — the layout DRD and the mambo race
/// detector plugins use in place of a general hash map on their hottest
/// path. Addresses are split into (page number, page offset); the first
/// level is a small open-addressed directory from page number to a
/// lazily allocated fixed-size page, and the second level is a dense
/// slot array indexed directly by the offset bits.
///
/// Why this beats std::unordered_map on the detector hot path:
///
///   - Accesses cluster: consecutive addresses land in consecutive slots
///     of the same page, so the common case is "same page as last time"
///     — one compare plus an indexed load, no hashing, no chains.
///   - Page numbers are hashed with the splitmix64 finalizer before
///     probing, so cache-line-aligned or high-bit-adversarial address
///     distributions cannot cluster directory probes.
///   - Pages never move once allocated (the directory stores pointers),
///     so references returned by ref()/find() stay valid across growth.
///
/// Memory bound: one page holds 2^PageBits slots of T plus a presence
/// bitmap, allocated only when an address in its range is first touched;
/// total memory is O(pages touched * 2^PageBits * sizeof(T)) + the
/// pointer directory. A presence bitmap (not a sentinel value of T)
/// distinguishes "default-constructed state" from "never accessed", so
/// iteration and size() are exact.
///
/// The iteration API (forEach, ascending address order) and clear() keep
/// coverage-gap handling and report generation working unchanged on the
/// flat layout; see docs/DETECTOR.md.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_SUPPORT_SHADOWMAP_H
#define LITERACE_SUPPORT_SHADOWMAP_H

#include "support/Compiler.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace literace {

template <typename T, unsigned PageBits = 9> class ShadowMap {
public:
  static constexpr size_t PageSize = size_t(1) << PageBits;

  ShadowMap() = default;
  ShadowMap(const ShadowMap &) = delete;
  ShadowMap &operator=(const ShadowMap &) = delete;
  ~ShadowMap() { destroyPages(); }

  /// State slot for \p Addr, default-constructing it on first touch.
  LR_ALWAYS_INLINE T &ref(uint64_t Addr) {
    const uint64_t Number = Addr >> PageBits;
    const size_t Offset = static_cast<size_t>(Addr) & (PageSize - 1);
    Page *P = LastPage;
    if (LR_UNLIKELY(!P || P->Number != Number)) {
      P = findOrCreatePage(Number);
      LastPage = P;
    }
    P->Present[Offset >> 6] |= uint64_t(1) << (Offset & 63);
    return P->Slots[Offset];
  }

  /// State slot for \p Addr, or nullptr if the address was never touched.
  const T *find(uint64_t Addr) const {
    const uint64_t Number = Addr >> PageBits;
    const size_t Offset = static_cast<size_t>(Addr) & (PageSize - 1);
    Page *P = LastPage;
    if (!P || P->Number != Number) {
      P = findPage(Number);
      if (!P)
        return nullptr;
      LastPage = P;
    }
    if (!(P->Present[Offset >> 6] & (uint64_t(1) << (Offset & 63))))
      return nullptr;
    return &P->Slots[Offset];
  }

  T *find(uint64_t Addr) {
    return const_cast<T *>(
        static_cast<const ShadowMap *>(this)->find(Addr));
  }

  /// Number of addresses with materialized state (exact: counts presence
  /// bits, not pages). O(pages), called off the hot path.
  size_t size() const {
    size_t Count = 0;
    for (Page *P : Directory)
      if (P)
        for (uint64_t Word : P->Present)
          Count += static_cast<size_t>(__builtin_popcountll(Word));
    return Count;
  }

  bool empty() const { return size() == 0; }

  /// Number of lazily allocated pages (exposed for tests and memory
  /// accounting).
  size_t pageCount() const { return Pages; }

  /// Invokes \p Fn(Addr, Slot) for every materialized address, in
  /// ascending address order (deterministic regardless of insertion or
  /// hash order, so reports built from a sweep are stable).
  template <typename Fn> void forEach(Fn &&Callback) const {
    std::vector<Page *> Sorted;
    Sorted.reserve(Pages);
    for (Page *P : Directory)
      if (P)
        Sorted.push_back(P);
    std::sort(Sorted.begin(), Sorted.end(),
              [](const Page *A, const Page *B) {
                return A->Number < B->Number;
              });
    for (Page *P : Sorted) {
      for (size_t Word = 0; Word != PageSize / 64; ++Word) {
        uint64_t Bits = P->Present[Word];
        while (Bits) {
          const unsigned Bit =
              static_cast<unsigned>(__builtin_ctzll(Bits));
          Bits &= Bits - 1;
          const size_t Offset = Word * 64 + Bit;
          Callback((P->Number << PageBits) | static_cast<uint64_t>(Offset),
                   P->Slots[Offset]);
        }
      }
    }
  }

  template <typename Fn> void forEach(Fn &&Callback) {
    static_cast<const ShadowMap *>(this)->forEach(
        [&](uint64_t Addr, const T &Slot) {
          Callback(Addr, const_cast<T &>(Slot));
        });
  }

  /// Drops every page (destructors of T run). Directory capacity is
  /// kept, so a cleared map repopulates without rehashing.
  void clear() {
    destroyPages();
    std::fill(Directory.begin(), Directory.end(), nullptr);
    Pages = 0;
    LastPage = nullptr;
  }

private:
  struct Page {
    uint64_t Number = 0;
    uint64_t Present[PageSize / 64] = {};
    T Slots[PageSize] = {};
  };

  Page *findPage(uint64_t Number) const {
    if (Directory.empty())
      return nullptr;
    const size_t Mask = Directory.size() - 1;
    for (size_t I = mix64(Number) & Mask;; I = (I + 1) & Mask) {
      Page *P = Directory[I];
      if (!P)
        return nullptr;
      if (P->Number == Number)
        return P;
    }
  }

  LR_NOINLINE Page *findOrCreatePage(uint64_t Number) {
    if (LR_UNLIKELY(Directory.empty()))
      Directory.resize(64, nullptr);
    const size_t Mask = Directory.size() - 1;
    size_t I = mix64(Number) & Mask;
    for (; Directory[I]; I = (I + 1) & Mask)
      if (Directory[I]->Number == Number)
        return Directory[I];
    Page *P = new Page;
    P->Number = Number;
    Directory[I] = P;
    if (LR_UNLIKELY(++Pages * 4 > Directory.size() * 3))
      rehash(Directory.size() * 2);
    return P;
  }

  void rehash(size_t NewCapacity) {
    assert((NewCapacity & (NewCapacity - 1)) == 0 &&
           "directory capacity must stay a power of two");
    std::vector<Page *> Old = std::move(Directory);
    Directory.assign(NewCapacity, nullptr);
    const size_t Mask = NewCapacity - 1;
    for (Page *P : Old) {
      if (!P)
        continue;
      size_t I = mix64(P->Number) & Mask;
      while (Directory[I])
        I = (I + 1) & Mask;
      Directory[I] = P;
    }
  }

  void destroyPages() {
    for (Page *P : Directory)
      delete P;
  }

  std::vector<Page *> Directory;
  size_t Pages = 0;
  /// Single-entry lookup cache: detector access streams are strongly
  /// page-local, so most ref()/find() calls resolve with one compare.
  mutable Page *LastPage = nullptr;
};

} // namespace literace

#endif // LITERACE_SUPPORT_SHADOWMAP_H
