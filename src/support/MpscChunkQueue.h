//===-- support/MpscChunkQueue.h - Bounded MPSC hand-off queue --*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded multi-producer/single-consumer queue used by the asynchronous
/// trace-flush pipeline (runtime/AsyncSink.h): application threads hand
/// full event chunks over, a dedicated flusher thread consumes them and
/// pays for compression, CRC framing, and write(2) off the hot path.
///
/// The slot protocol is the classic Vyukov bounded queue: every slot
/// carries a sequence number; a producer claims a slot by CASing the head
/// ticket, moves its value in, and publishes with a release store of the
/// sequence; the single consumer reads slots in ticket order, so its tail
/// is a plain counter (mirrored into an atomic only for observers). An
/// uncontended push costs one CAS plus one release store — no mutex on
/// the producer fast path, which is the point: the producers here are
/// application threads inside the §4.1 dispatch-and-log path.
///
/// Waiting reuses the SpscRing parking idiom: spin briefly, then park on
/// a condition variable with a short timeout so a missed nudge is bounded
/// latency, not a hang. close() wakes everyone; push() fails after close
/// (the caller accounts the chunk as dropped) and pop() drains what
/// remains before reporting end-of-stream.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_SUPPORT_MPSCCHUNKQUEUE_H
#define LITERACE_SUPPORT_MPSCCHUNKQUEUE_H

#include "support/Compiler.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

namespace literace {

/// Occupancy/stall telemetry of one MpscChunkQueue (see stats()).
struct MpscQueueStats {
  /// Highest occupancy ever observed. A mark near capacity means the
  /// flusher is the bottleneck and producers feel backpressure.
  size_t DepthHighWater = 0;
  /// Times a producer exhausted its spin budget and parked (queue full).
  uint64_t ProducerParks = 0;
  /// Times the consumer exhausted its spin budget and parked (queue
  /// empty — it outpaces the producers).
  uint64_t ConsumerParks = 0;
};

/// Bounded MPSC FIFO. Any number of threads may push; exactly one thread
/// may pop. close() may be called from any thread; it is idempotent.
template <typename T> class MpscChunkQueue {
public:
  /// Capacity is rounded up to a power of two, minimum 16.
  explicit MpscChunkQueue(size_t CapacityHint) {
    size_t Capacity = 16;
    while (Capacity < CapacityHint)
      Capacity <<= 1;
    Slots = std::make_unique<Slot[]>(Capacity);
    for (size_t I = 0; I != Capacity; ++I)
      Slots[I].Seq.store(I, std::memory_order_relaxed);
    Mask = Capacity - 1;
  }

  MpscChunkQueue(const MpscChunkQueue &) = delete;
  MpscChunkQueue &operator=(const MpscChunkQueue &) = delete;

  /// Non-blocking push; false if the queue is full or closed. The value
  /// is moved from only on success.
  bool tryPush(T &Value) {
    if (LR_UNLIKELY(Closed.load(std::memory_order_acquire)))
      return false;
    size_t H = Head.load(std::memory_order_relaxed);
    for (;;) {
      Slot &S = Slots[H & Mask];
      const size_t Seq = S.Seq.load(std::memory_order_acquire);
      const intptr_t Diff =
          static_cast<intptr_t>(Seq) - static_cast<intptr_t>(H);
      if (Diff == 0) {
        if (Head.compare_exchange_weak(H, H + 1,
                                       std::memory_order_relaxed))
          break;
        // CAS failure reloaded H; retry with the fresh ticket.
      } else if (Diff < 0) {
        return false; // Full: the slot still holds an unconsumed value.
      } else {
        H = Head.load(std::memory_order_relaxed);
      }
    }
    Slot &S = Slots[H & Mask];
    S.Value = std::move(Value);
    S.Seq.store(H + 1, std::memory_order_release);
    noteDepth(H + 1);
    nudge();
    return true;
  }

  /// Blocking push: applies backpressure until the consumer frees a slot.
  /// Returns false (without consuming the value) only if the queue was
  /// closed while waiting.
  bool push(T &Value) {
    for (unsigned Attempt = 0; !tryPush(Value); ++Attempt) {
      if (Closed.load(std::memory_order_acquire))
        return false;
      if (Attempt < SpinLimit) {
        std::this_thread::yield();
        continue;
      }
      ProducerParks.fetch_add(1, std::memory_order_relaxed);
      parkUntil([&] {
        return Head.load(std::memory_order_relaxed) -
                       TailPub.load(std::memory_order_acquire) <=
                   Mask ||
               Closed.load(std::memory_order_acquire);
      });
    }
    return true;
  }

  /// Non-blocking pop (consumer only); false if the queue is empty.
  bool tryPop(T &Out) {
    Slot &S = Slots[Tail & Mask];
    const size_t Seq = S.Seq.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(Seq) - static_cast<intptr_t>(Tail + 1) < 0)
      return false;
    Out = std::move(S.Value);
    // Recycle the slot for the producer one lap ahead.
    S.Seq.store(Tail + Mask + 1, std::memory_order_release);
    ++Tail;
    TailPub.store(Tail, std::memory_order_release);
    nudge();
    return true;
  }

  /// Blocking pop (consumer only). Returns false only at end-of-stream:
  /// the queue was closed and everything pushed was consumed.
  bool pop(T &Out) {
    for (unsigned Attempt = 0; !tryPop(Out); ++Attempt) {
      if (Closed.load(std::memory_order_acquire)) {
        // Re-check after observing the close so no trailing push is lost.
        if (tryPop(Out))
          return true;
        return false;
      }
      if (Attempt < SpinLimit) {
        std::this_thread::yield();
        continue;
      }
      ConsumerParks.fetch_add(1, std::memory_order_relaxed);
      parkUntil([&] {
        return Head.load(std::memory_order_acquire) !=
                   TailPub.load(std::memory_order_relaxed) ||
               Closed.load(std::memory_order_acquire);
      });
    }
    return true;
  }

  /// Rejects further pushes and wakes every waiter. Idempotent; callable
  /// from any thread. The consumer still drains queued values.
  void close() {
    Closed.store(true, std::memory_order_release);
    nudge();
  }

  bool closed() const { return Closed.load(std::memory_order_acquire); }

  /// Number of slots, after power-of-two rounding.
  size_t capacity() const { return Mask + 1; }

  /// Racy occupancy estimate; exact once producers have quiesced.
  size_t approxSize() const {
    const size_t H = Head.load(std::memory_order_acquire);
    const size_t Tl = TailPub.load(std::memory_order_acquire);
    return H >= Tl ? H - Tl : 0;
  }

  /// Occupancy/stall telemetry. Safe to read from any thread at any time.
  MpscQueueStats stats() const {
    MpscQueueStats S;
    S.DepthHighWater = HighWater.load(std::memory_order_relaxed);
    S.ProducerParks = ProducerParks.load(std::memory_order_relaxed);
    S.ConsumerParks = ConsumerParks.load(std::memory_order_relaxed);
    return S;
  }

private:
  static constexpr unsigned SpinLimit = 64;

  struct Slot {
    std::atomic<size_t> Seq{0};
    T Value{};
  };

  /// Raises the depth high-water mark. Depth against the producer's view
  /// of the published tail overestimates at worst by in-flight pops, which
  /// is the right bias for a backpressure warning light.
  void noteDepth(size_t HeadNow) {
    const size_t Depth = HeadNow - TailPub.load(std::memory_order_acquire);
    size_t Seen = HighWater.load(std::memory_order_relaxed);
    while (Depth > Seen &&
           !HighWater.compare_exchange_weak(Seen, Depth,
                                            std::memory_order_relaxed)) {
    }
  }

  /// Parks on the shared condition variable until \p ReadyFn holds or a
  /// short timeout elapses (whichever first); the caller re-polls either
  /// way, so a lost nudge is only latency.
  template <typename Fn> void parkUntil(Fn ReadyFn) {
    std::unique_lock<std::mutex> Guard(ParkLock);
    if (ReadyFn())
      return;
    Waiters.fetch_add(1, std::memory_order_seq_cst);
    ParkCv.wait_for(Guard, std::chrono::milliseconds(1));
    Waiters.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Wakes parked waiters, if any. Multiple producers can park at once,
  /// so a waiter count (not a single flag) gates the notify.
  void nudge() {
    if (Waiters.load(std::memory_order_seq_cst) == 0)
      return;
    std::lock_guard<std::mutex> Guard(ParkLock);
    ParkCv.notify_all();
  }

  std::unique_ptr<Slot[]> Slots;
  size_t Mask = 0;

  // Producer side: the CAS ticket shared by all producers.
  alignas(64) std::atomic<size_t> Head{0};
  std::atomic<size_t> HighWater{0};
  std::atomic<uint64_t> ProducerParks{0};

  // Consumer side: Tail is consumer-private; TailPub mirrors it for
  // producers (backpressure test) and observers (approxSize).
  alignas(64) size_t Tail = 0;
  std::atomic<size_t> TailPub{0};
  std::atomic<uint64_t> ConsumerParks{0};

  alignas(64) std::atomic<bool> Closed{false};
  std::atomic<unsigned> Waiters{0};
  std::mutex ParkLock;
  std::condition_variable ParkCv;
};

} // namespace literace

#endif // LITERACE_SUPPORT_MPSCCHUNKQUEUE_H
