//===-- support/Hashing.h - Integer hash utilities --------------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic 64-bit mixing functions. The runtime hashes SyncVars to one
/// of a small number of logical timestamp counters (paper §4.2), so the hash
/// must be cheap, well distributed, and identical between the runtime that
/// writes logs and the offline detector that replays them.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_SUPPORT_HASHING_H
#define LITERACE_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>

namespace literace {

/// Finalizer of the splitmix64 generator; a strong, cheap 64-bit mixer.
inline uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Combines two hash values into one (order-sensitive).
inline uint64_t hashCombine(uint64_t A, uint64_t B) {
  return mix64(A ^ (B + 0x9e3779b97f4a7c15ULL + (A << 6) + (A >> 2)));
}

/// Hash functor for std::unordered_map keyed by raw addresses or tagged
/// SyncVars. libstdc++'s std::hash<uint64_t> is the identity, so
/// cache-line-aligned addresses (all multiples of 64) collide into every
/// 64th bucket and chain pathologically; mixing first restores uniform
/// bucket occupancy for any stride.
struct Mix64Hash {
  size_t operator()(uint64_t X) const noexcept {
    return static_cast<size_t>(mix64(X));
  }
};

} // namespace literace

#endif // LITERACE_SUPPORT_HASHING_H
