//===-- support/Crc32.h - CRC32C checksums ----------------------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) used to
/// checksum trace-log segments (docs/LOG_FORMAT.md). The v2 segmented
/// format stores one CRC per segment header and one per payload, so the
/// salvage reader can tell a bit flip from a clean frame with a 2^-32
/// false-accept probability. Software slice-by-one implementation: the
/// logger checksums whole flushed chunks off the instrumented hot path,
/// so table lookups are plenty fast (> 1 GB/s), and staying portable
/// beats chasing SSE4.2 here.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_SUPPORT_CRC32_H
#define LITERACE_SUPPORT_CRC32_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace literace {

namespace detail {

inline const std::array<uint32_t, 256> &crc32cTable() {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? (C >> 1) ^ 0x82f63b78u : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  return Table;
}

} // namespace detail

/// Extends a running CRC32C with \p Size bytes. Start from crc32cInit()
/// and finish with crc32cFinal(); or use crc32c() for one-shot data.
inline uint32_t crc32cUpdate(uint32_t State, const void *Data, size_t Size) {
  const auto &Table = detail::crc32cTable();
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I != Size; ++I)
    State = Table[(State ^ P[I]) & 0xff] ^ (State >> 8);
  return State;
}

/// Initial state of an incremental CRC32C.
inline uint32_t crc32cInit() { return 0xffffffffu; }

/// Finalizes an incremental CRC32C state into the checksum value.
inline uint32_t crc32cFinal(uint32_t State) { return State ^ 0xffffffffu; }

/// One-shot CRC32C of a buffer (the RFC 3720 check value: the CRC of
/// "123456789" is 0xE3069283).
inline uint32_t crc32c(const void *Data, size_t Size) {
  return crc32cFinal(crc32cUpdate(crc32cInit(), Data, Size));
}

} // namespace literace

#endif // LITERACE_SUPPORT_CRC32_H
