//===-- support/ByteOutput.h - Byte-level output with fault surface -*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte layer under the v2 segmented log writer (docs/ROBUSTNESS.md).
/// A ByteOutput accepts writes that may legitimately be partial or fail
/// transiently — exactly what POSIX write(2) does under signals, disk
/// pressure, or quota — and reports which, so the segment writer above it
/// can retry with backoff instead of silently losing trace data.
///
/// FaultySink is the fault-injection decorator used by the robustness
/// tests and bench/fault_recovery: it makes the Nth write fail (hard or
/// transiently), caps write sizes to force short-write handling, and
/// flips bits in the byte stream — all seeded and deterministic, so every
/// failure a test observes is replayable.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_SUPPORT_BYTEOUTPUT_H
#define LITERACE_SUPPORT_BYTEOUTPUT_H

#include "support/SplitMix64.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace literace {

/// Outcome of one ByteOutput::write() attempt. The caller must inspect
/// Written: a short count with Transient set means "retry the rest", a
/// short count without it means the device is gone.
struct WriteResult {
  /// Bytes accepted by this call (may be less than requested).
  size_t Written = 0;
  /// True if the unwritten remainder failed for a retryable reason
  /// (EINTR, EAGAIN, or an injected transient fault).
  bool Transient = false;

  bool complete(size_t Requested) const { return Written == Requested; }
};

/// Destination of raw log bytes. Implementations surface partial writes
/// and transient failures instead of hiding them behind buffering.
class ByteOutput {
public:
  virtual ~ByteOutput();

  /// Attempts to append \p Size bytes. See WriteResult for the contract.
  virtual WriteResult write(const void *Data, size_t Size) = 0;

  /// Pushes any buffered state toward the OS. Default no-op (true).
  virtual bool flush();

  /// Releases the underlying resource; further writes fail. Idempotent.
  virtual void close() = 0;

  /// True while the output can accept writes.
  virtual bool ok() const = 0;
};

/// Unbuffered file-descriptor output. Every completed write() is in the
/// kernel when the call returns, so bytes written before a process is
/// killed — even with SIGKILL — survive to the on-disk file.
class FileByteOutput : public ByteOutput {
public:
  /// Opens \p Path for writing (created/truncated). Check ok().
  explicit FileByteOutput(const std::string &Path);
  ~FileByteOutput() override;

  WriteResult write(const void *Data, size_t Size) override;
  void close() override;
  bool ok() const override { return Fd >= 0; }

private:
  int Fd = -1;
};

/// Stream-connected unix-domain-socket output: the transport of
/// `literace-run --connect`, carrying the exact v2 segmented byte stream
/// to a literace-collectd daemon. EINTR/EAGAIN surface as Transient;
/// a broken connection (daemon gone, ECONNRESET/EPIPE) makes the output
/// permanently not-ok, which the tee layer treats as "continue file-only".
class SocketByteOutput : public ByteOutput {
public:
  /// Connects to the AF_UNIX stream socket at \p Path. Check ok().
  explicit SocketByteOutput(const std::string &Path);
  /// Adopts an already-connected descriptor (tests, in-process benches).
  explicit SocketByteOutput(int ConnectedFd);
  ~SocketByteOutput() override;

  WriteResult write(const void *Data, size_t Size) override;
  void close() override;
  bool ok() const override { return Fd >= 0; }

private:
  int Fd = -1;
};

/// Duplicates one byte stream into two outputs, with the primary
/// authoritative: write() reports the primary's result, and only the
/// bytes the primary accepted are forwarded to the secondary, so both
/// destinations see byte-identical streams (the property the collector's
/// live-vs-batch equivalence test relies on). A secondary failure never
/// fails the write — the stream silently degrades to primary-only and
/// the unsent bytes are counted.
class TeeByteOutput : public ByteOutput {
public:
  /// Both outputs must outlive this decorator.
  TeeByteOutput(ByteOutput &Primary, ByteOutput &Secondary);

  WriteResult write(const void *Data, size_t Size) override;
  bool flush() override;
  void close() override;
  bool ok() const override { return Primary.ok(); }

  /// True while the secondary is still receiving the stream.
  bool secondaryOk() const { return !SecondaryDead; }
  /// Primary-accepted bytes the secondary did not take before it died.
  uint64_t secondaryBytesLost() const { return SecondaryLost; }

private:
  ByteOutput &Primary;
  ByteOutput &Secondary;
  bool SecondaryDead = false;
  uint64_t SecondaryLost = 0;
};

/// Deterministic fault schedule of a FaultySink. Write indices are
/// 1-based counts of write() calls on the decorator.
struct FaultPlan {
  /// Hard failure: this call and every later one accept nothing and are
  /// not retryable. 0 disables.
  uint64_t FailAtWrite = 0;
  /// Transient failure: calls [TransientAtWrite, TransientAtWrite +
  /// TransientCount) accept nothing but report Transient, then writes
  /// succeed again. 0 disables.
  uint64_t TransientAtWrite = 0;
  unsigned TransientCount = 1;
  /// Nonzero: each call accepts at most this many bytes (a permanent
  /// short-write regime; the remainder is retryable).
  size_t MaxWriteBytes = 0;
  /// Nonzero: corrupt the stream by flipping roughly one bit per
  /// BitFlipEveryBytes bytes, at positions drawn from BitFlipSeed.
  uint64_t BitFlipEveryBytes = 0;
  uint64_t BitFlipSeed = 1;
};

/// ByteOutput decorator injecting the faults described by a FaultPlan
/// into an underlying output. Used by tests and bench/fault_recovery.
class FaultySink : public ByteOutput {
public:
  /// \p Under must outlive this decorator.
  FaultySink(ByteOutput &Under, const FaultPlan &Plan);

  WriteResult write(const void *Data, size_t Size) override;
  bool flush() override { return Under.flush(); }
  void close() override { Under.close(); }
  bool ok() const override;

  /// Number of write() calls observed (including failed ones).
  uint64_t writesAttempted() const { return Attempts; }
  /// Number of bits flipped so far.
  uint64_t bitsFlipped() const { return BitsFlipped; }

private:
  ByteOutput &Under;
  FaultPlan Plan;
  SplitMix64 Rng;
  uint64_t Attempts = 0;
  uint64_t StreamOffset = 0;
  uint64_t NextFlipAt = 0;
  uint64_t BitsFlipped = 0;
  std::vector<uint8_t> Scratch;
};

} // namespace literace

#endif // LITERACE_SUPPORT_BYTEOUTPUT_H
