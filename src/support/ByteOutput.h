//===-- support/ByteOutput.h - Byte-level output with fault surface -*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte layer under the v2 segmented log writer (docs/ROBUSTNESS.md).
/// A ByteOutput accepts writes that may legitimately be partial or fail
/// transiently — exactly what POSIX write(2) does under signals, disk
/// pressure, or quota — and reports which, so the segment writer above it
/// can retry with backoff instead of silently losing trace data.
///
/// FaultySink is the fault-injection decorator used by the robustness
/// tests and bench/fault_recovery: it makes the Nth write fail (hard or
/// transiently), caps write sizes to force short-write handling, and
/// flips bits in the byte stream — all seeded and deterministic, so every
/// failure a test observes is replayable.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_SUPPORT_BYTEOUTPUT_H
#define LITERACE_SUPPORT_BYTEOUTPUT_H

#include "support/SplitMix64.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace literace {

/// Outcome of one ByteOutput::write() attempt. The caller must inspect
/// Written: a short count with Transient set means "retry the rest", a
/// short count without it means the device is gone.
struct WriteResult {
  /// Bytes accepted by this call (may be less than requested).
  size_t Written = 0;
  /// True if the unwritten remainder failed for a retryable reason
  /// (EINTR, EAGAIN, or an injected transient fault).
  bool Transient = false;

  bool complete(size_t Requested) const { return Written == Requested; }
};

/// Destination of raw log bytes. Implementations surface partial writes
/// and transient failures instead of hiding them behind buffering.
class ByteOutput {
public:
  virtual ~ByteOutput();

  /// Attempts to append \p Size bytes. See WriteResult for the contract.
  virtual WriteResult write(const void *Data, size_t Size) = 0;

  /// Pushes any buffered state toward the OS. Default no-op (true).
  virtual bool flush();

  /// Releases the underlying resource; further writes fail. Idempotent.
  virtual void close() = 0;

  /// True while the output can accept writes.
  virtual bool ok() const = 0;
};

/// Unbuffered file-descriptor output. Every completed write() is in the
/// kernel when the call returns, so bytes written before a process is
/// killed — even with SIGKILL — survive to the on-disk file.
class FileByteOutput : public ByteOutput {
public:
  /// Opens \p Path for writing (created/truncated). Check ok().
  explicit FileByteOutput(const std::string &Path);
  /// With \p Append, opens \p Path for appending without truncation —
  /// the mode the collector's session journals resume in after a daemon
  /// restart.
  FileByteOutput(const std::string &Path, bool Append);
  ~FileByteOutput() override;

  WriteResult write(const void *Data, size_t Size) override;
  void close() override;
  bool ok() const override { return Fd >= 0; }

private:
  int Fd = -1;
};

/// Stream-connected unix-domain-socket output: the transport of
/// `literace-run --connect`, carrying the exact v2 segmented byte stream
/// to a literace-collectd daemon. EINTR/EAGAIN surface as Transient;
/// a broken connection (daemon gone, ECONNRESET/EPIPE) makes the output
/// permanently not-ok, which the tee layer treats as "continue file-only".
class SocketByteOutput : public ByteOutput {
public:
  /// Connects to the AF_UNIX stream socket at \p Path. Check ok().
  explicit SocketByteOutput(const std::string &Path);
  /// Adopts an already-connected descriptor (tests, in-process benches).
  explicit SocketByteOutput(int ConnectedFd);
  ~SocketByteOutput() override;

  WriteResult write(const void *Data, size_t Size) override;
  void close() override;
  bool ok() const override { return Fd >= 0; }

private:
  int Fd = -1;
};

/// Duplicates one byte stream into two outputs, with the primary
/// authoritative: write() reports the primary's result, and only the
/// bytes the primary accepted are forwarded to the secondary, so both
/// destinations see byte-identical streams (the property the collector's
/// live-vs-batch equivalence test relies on). A secondary failure never
/// fails the write — the stream silently degrades to primary-only and
/// the unsent bytes are counted.
class TeeByteOutput : public ByteOutput {
public:
  /// Both outputs must outlive this decorator.
  TeeByteOutput(ByteOutput &Primary, ByteOutput &Secondary);

  WriteResult write(const void *Data, size_t Size) override;
  bool flush() override;
  void close() override;
  bool ok() const override { return Primary.ok(); }

  /// True while the secondary is still receiving the stream.
  bool secondaryOk() const { return !SecondaryDead; }
  /// Primary-accepted bytes the secondary did not take before it died.
  uint64_t secondaryBytesLost() const { return SecondaryLost; }

private:
  ByteOutput &Primary;
  ByteOutput &Secondary;
  bool SecondaryDead = false;
  uint64_t SecondaryLost = 0;
};

/// Deterministic fault schedule of a FaultySink. Write indices are
/// 1-based counts of write() calls on the decorator.
struct FaultPlan {
  /// Hard failure: this call and every later one accept nothing and are
  /// not retryable. 0 disables.
  uint64_t FailAtWrite = 0;
  /// Hard failure at an absolute stream offset: bytes up to the offset
  /// are accepted, everything after is refused non-retryably — a torn
  /// socket connection at byte N, independent of write batching.
  /// 0 disables.
  uint64_t FailAtByte = 0;
  /// Transient failure: calls [TransientAtWrite, TransientAtWrite +
  /// TransientCount) accept nothing but report Transient, then writes
  /// succeed again. 0 disables.
  uint64_t TransientAtWrite = 0;
  unsigned TransientCount = 1;
  /// Nonzero: each call accepts at most this many bytes (a permanent
  /// short-write regime; the remainder is retryable).
  size_t MaxWriteBytes = 0;
  /// Nonzero: corrupt the stream by flipping roughly one bit per
  /// BitFlipEveryBytes bytes, at positions drawn from BitFlipSeed.
  uint64_t BitFlipEveryBytes = 0;
  uint64_t BitFlipSeed = 1;
};

/// ByteOutput decorator injecting the faults described by a FaultPlan
/// into an underlying output. Used by tests and bench/fault_recovery.
class FaultySink : public ByteOutput {
public:
  /// \p Under must outlive this decorator.
  FaultySink(ByteOutput &Under, const FaultPlan &Plan);

  WriteResult write(const void *Data, size_t Size) override;
  bool flush() override { return Under.flush(); }
  void close() override { Under.close(); }
  bool ok() const override;

  /// Number of write() calls observed (including failed ones).
  uint64_t writesAttempted() const { return Attempts; }
  /// Number of bits flipped so far.
  uint64_t bitsFlipped() const { return BitsFlipped; }

private:
  ByteOutput &Under;
  FaultPlan Plan;
  SplitMix64 Rng;
  uint64_t Attempts = 0;
  uint64_t StreamOffset = 0;
  uint64_t NextFlipAt = 0;
  uint64_t BitsFlipped = 0;
  std::vector<uint8_t> Scratch;
};

//===----------------------------------------------------------------------===//
// Resumable collector stream protocol (docs/ROBUSTNESS.md)
//===----------------------------------------------------------------------===//
//
// On every (re)connect of a fault-tolerant client:
//
//   client ── HELLO "LRH1" + 16-byte run id ─────────────► daemon
//   client ◄─ ACK   "LRA1" + u64 LE stream position ────── daemon
//   client ── RESUME "LRR1" + u64 LE resume offset ──────► daemon
//   client ── raw v2 segment bytes from the resume offset ► daemon
//   client ◄─ unsolicited ACK frames as bytes are journaled daemon
//
// The daemon acks the stream position it has durably journaled for the
// run id, so bytes survive both a torn connection *and* a daemon
// restart; the client resumes at max(ack, spool start) and reports a
// RESUME above the ack only when its spool cap already shed the gap.
// Legacy clients never send HELLO — the first bytes of a v2 stream are
// the file magic, which cannot collide with "LRH1" — and keep the plain
// fire-and-forget path.

/// Sizes of the fixed handshake frames.
constexpr size_t StreamHelloSize = 20; ///< "LRH1" + 16-byte run id
constexpr size_t StreamAckSize = 12;   ///< "LRA1" + u64 LE position
constexpr size_t StreamResumeSize = 12; ///< "LRR1" + u64 LE offset

/// True if \p First4 opens a HELLO frame (vs. a raw v2 stream).
bool isStreamHello(const uint8_t *First4);
/// Encodes a HELLO into \p Out (StreamHelloSize bytes).
void encodeStreamHello(uint64_t RunIdHi, uint64_t RunIdLo, uint8_t *Out);
/// Decodes the run id out of a full HELLO frame. False on bad magic.
bool decodeStreamHello(const uint8_t *Buf, uint64_t &RunIdHi,
                       uint64_t &RunIdLo);
/// Encodes an ACK carrying stream position \p Received.
void encodeStreamAck(uint64_t Received, uint8_t *Out);
bool decodeStreamAck(const uint8_t *Buf, uint64_t &Received);
/// Encodes a RESUME carrying the client's chosen resume offset.
void encodeStreamResume(uint64_t Offset, uint8_t *Out);
bool decodeStreamResume(const uint8_t *Buf, uint64_t &Offset);

/// poll(2)-bounded full-buffer send on \p Fd; false once \p DeadlineMs
/// elapses or the peer goes away. Never raises SIGPIPE.
bool sendAllDeadline(int Fd, const void *Data, size_t Size, int DeadlineMs);
/// poll(2)-bounded full-buffer recv on \p Fd; false on deadline or EOF.
bool recvAllDeadline(int Fd, void *Data, size_t Size, int DeadlineMs);

/// Fault-tolerant collector transport: the `--connect` secondary that
/// never dies. Every byte written is appended to a bounded on-disk spool
/// before (and independent of) the live send, so a torn connection, a
/// slow daemon, or a daemon restart costs nothing until the spool cap is
/// hit: the client reconnects with capped exponential backoff + jitter,
/// learns from the handshake ack how far the daemon's journal got, and
/// replays the spool from there before resuming live tee. write() always
/// accepts (ok() stays true), so a TeeByteOutput above never degrades —
/// loss is possible only when the cap forces a trim, and every shed byte
/// is accounted (gapBytes / undeliveredBytes).
///
/// The clock, sleeper, and transport are injectable so the robustness
/// tests drive reconnect schedules deterministically; send faults are
/// injected per connection via FaultPlan (FailAtByte = torn connection
/// at a seeded byte offset).
class SpoolingSocketOutput : public ByteOutput {
public:
  struct Options {
    /// AF_UNIX socket of the collector (used by the default connector).
    std::string SocketPath;
    /// On-disk spool file (required). Created/truncated; unlinked on
    /// close.
    std::string SpoolPath;
    /// Retained-unacked spool budget. When exceeded the whole unacked
    /// extent is trimmed (counted in trimmedBytes/capHits) and the
    /// resulting stream gap is realized at the next handshake.
    uint64_t SpoolCapBytes = 64ull << 20;
    /// Reconnect backoff: first delay, cap, and jitter seed.
    uint64_t BackoffInitialMs = 50;
    uint64_t BackoffMaxMs = 2000;
    uint64_t JitterSeed = 1;
    /// Budget for each handshake round-trip.
    uint64_t HandshakeTimeoutMs = 2000;
    /// close() keeps reconnecting/draining this long before giving up
    /// and counting the tail as undelivered.
    uint64_t DrainDeadlineMs = 5000;
    /// Run identity for resume; 0/0 derives one from pid + seed.
    uint64_t RunIdHi = 0;
    uint64_t RunIdLo = 0;
    /// Injectable monotonic millisecond clock (tests use a fake).
    std::function<uint64_t()> NowMs;
    /// Injectable sleeper for the close() drain loop.
    std::function<void(uint64_t)> SleepMs;
    /// Injectable transport: returns a connected fd or -1. Default
    /// connects to SocketPath.
    std::function<int()> ConnectFd;
    /// Per-connection fault plans: plan[i] decorates the i-th
    /// connection's sends (the last plan repeats). Empty = no faults.
    std::vector<FaultPlan> SendFaults;
  };

  explicit SpoolingSocketOutput(Options Opts);
  ~SpoolingSocketOutput() override;

  WriteResult write(const void *Data, size_t Size) override;
  bool flush() override;
  void close() override;
  /// Always true until close(): a broken connection spools, it does not
  /// fail the stream.
  bool ok() const override { return !Closed; }

  /// True while a handshaken connection is live.
  bool connected() const { return Fd >= 0; }
  /// Successful connections beyond the first.
  uint64_t reconnects() const { return Connects ? Connects - 1 : 0; }
  /// Bytes appended to the spool while the live send was broken/behind.
  uint64_t spooledBytes() const { return Spooled; }
  /// Backlog bytes replayed from the spool after (re)connects.
  uint64_t replayedBytes() const { return Replayed; }
  /// Times the cap forced a trim, and the bytes those trims shed.
  uint64_t capHits() const { return CapHits; }
  uint64_t trimmedBytes() const { return Trimmed; }
  /// Stream bytes the daemon asked for that the spool no longer held.
  uint64_t gapBytes() const { return Gap; }
  /// Bytes never handed to a live connection (valid after close()).
  uint64_t undeliveredBytes() const { return Undelivered; }
  /// Unrecovered loss this transport admits to: trimmed-away gaps plus
  /// the undrained tail at close.
  uint64_t bytesLost() const { return Gap + Undelivered; }
  /// Spool append failures (disk full); the stream degrades to
  /// live-send-only.
  uint64_t spoolErrors() const { return SpoolErrors; }
  uint64_t runIdHi() const { return Opts.RunIdHi; }
  uint64_t runIdLo() const { return Opts.RunIdLo; }

private:
  bool spoolAppend(const uint8_t *Data, size_t Size);
  void spoolFailed();
  void compactSpool();
  bool maybeConnect();
  void scheduleRetry();
  void dropConnection();
  void drainAcks();
  void pump();

  Options Opts;
  SplitMix64 Jitter;
  int SpoolFd = -1;
  int Fd = -1;
  std::unique_ptr<SocketByteOutput> Sock;
  std::unique_ptr<FaultySink> Faulty;
  ByteOutput *Wire = nullptr;

  uint64_t Written = 0;    ///< stream bytes accepted from the writer
  uint64_t SpoolStart = 0; ///< stream offset of spool file byte 0
  uint64_t Acked = 0;      ///< daemon-journaled stream position
  uint64_t Sent = 0;       ///< next stream offset to send when live
  uint64_t ReplayHigh = 0; ///< sends below this count as replayed
  bool SpoolDead = false;
  bool Closed = false;

  uint64_t Connects = 0;
  unsigned ConsecFails = 0;
  uint64_t NextAttemptMs = 0;
  uint8_t AckBuf[StreamAckSize];
  size_t AckFill = 0;

  uint64_t Spooled = 0;
  uint64_t Replayed = 0;
  uint64_t CapHits = 0;
  uint64_t Trimmed = 0;
  uint64_t Gap = 0;
  uint64_t Undelivered = 0;
  uint64_t SpoolErrors = 0;
};

} // namespace literace

#endif // LITERACE_SUPPORT_BYTEOUTPUT_H
