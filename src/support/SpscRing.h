//===-- support/SpscRing.h - Bounded SPSC ring buffer -----------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded single-producer/single-consumer queue used by the sharded
/// offline detector (docs/DETECTOR.md) to stream events from the replay
/// fan-out thread to per-shard analysis workers.
///
/// The fast path is the classic lock-free ring: head and tail are
/// published with release stores and each side caches the other side's
/// last observed position, so an uncontended push or pop costs one relaxed
/// load, one slot copy, and one release store. When a side cannot make
/// progress (queue full for the producer — that is the backpressure bound
/// — or empty for the consumer) it spins briefly, then parks on a
/// condition variable with a short timeout. The peer nudges parked waiters
/// after completing an operation; the timeout makes a missed nudge cost
/// bounded latency rather than liveness, which keeps the wakeup protocol
/// simple and obviously correct. On a single-core host the queue therefore
/// degrades to alternating timeslices instead of burning the whole core in
/// a spin loop.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_SUPPORT_SPSCRING_H
#define LITERACE_SUPPORT_SPSCRING_H

#include "support/Compiler.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace literace {

/// Occupancy/stall telemetry of one SpscRing (see SpscRing::stats()).
struct SpscRingStats {
  /// Highest occupancy ever observed by the producer. A mark near
  /// capacity means the consumer is the bottleneck (backpressure).
  size_t DepthHighWater = 0;
  /// Times the producer exhausted its spin budget and parked (ring full).
  uint64_t ProducerParks = 0;
  /// Times the consumer exhausted its spin budget and parked (ring
  /// empty — it outpaces the producer).
  uint64_t ConsumerParks = 0;
};

/// Bounded SPSC FIFO. Exactly one thread may push and exactly one thread
/// may pop; close() is called by the producer to signal end-of-stream.
template <typename T> class SpscRing {
public:
  /// Capacity is rounded up to a power of two, minimum 16.
  explicit SpscRing(size_t CapacityHint) {
    size_t Capacity = 16;
    while (Capacity < CapacityHint)
      Capacity <<= 1;
    Buffer.resize(Capacity);
    Mask = Capacity - 1;
  }

  SpscRing(const SpscRing &) = delete;
  SpscRing &operator=(const SpscRing &) = delete;

  /// Non-blocking push; false if the ring is full.
  bool tryPush(const T &Value) {
    const size_t H = Head.load(std::memory_order_relaxed);
    if (H - CachedTail > Mask) {
      CachedTail = Tail.load(std::memory_order_acquire);
      if (H - CachedTail > Mask)
        return false;
    }
    Buffer[H & Mask] = Value;
    Head.store(H + 1, std::memory_order_release);
    // High-water telemetry. Occupancy against the producer's stale view
    // of Tail overestimates the true depth, so refresh the real Tail
    // before raising the mark; once the mark plateaus (steady state)
    // this branch stops being taken and the push fast path is unchanged.
    if (LR_UNLIKELY(H + 1 - CachedTail > HighWaterLocal)) {
      CachedTail = Tail.load(std::memory_order_acquire);
      const size_t Depth = H + 1 - CachedTail;
      if (Depth > HighWaterLocal) {
        HighWaterLocal = Depth;
        HighWater.store(Depth, std::memory_order_relaxed);
      }
    }
    return true;
  }

  /// Blocking push (producer only). Applies backpressure: waits until the
  /// consumer has freed a slot.
  void push(const T &Value) {
    for (unsigned Attempt = 0; !tryPush(Value); ++Attempt) {
      if (Attempt < SpinLimit) {
        std::this_thread::yield();
        continue;
      }
      ProducerParks.store(
          ProducerParks.load(std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      parkUntil([&] {
        const size_t H = Head.load(std::memory_order_relaxed);
        return H - Tail.load(std::memory_order_acquire) <= Mask;
      });
    }
    nudge();
  }

  /// Non-blocking pop; false if the ring is empty.
  bool tryPop(T &Out) {
    const size_t Tl = Tail.load(std::memory_order_relaxed);
    if (Tl == CachedHead) {
      CachedHead = Head.load(std::memory_order_acquire);
      if (Tl == CachedHead)
        return false;
    }
    Out = Buffer[Tl & Mask];
    Tail.store(Tl + 1, std::memory_order_release);
    return true;
  }

  /// Blocking pop (consumer only). Returns false only at end-of-stream:
  /// the producer closed the ring and everything pushed was consumed.
  bool pop(T &Out) {
    for (unsigned Attempt = 0; !tryPop(Out); ++Attempt) {
      if (Closed.load(std::memory_order_acquire)) {
        // Re-check after observing the close so no trailing push is lost.
        if (tryPop(Out))
          break;
        return false;
      }
      if (Attempt < SpinLimit) {
        std::this_thread::yield();
        continue;
      }
      ConsumerParks.store(
          ConsumerParks.load(std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      parkUntil([&] {
        return Tail.load(std::memory_order_relaxed) !=
                   Head.load(std::memory_order_acquire) ||
               Closed.load(std::memory_order_acquire);
      });
    }
    nudge();
    return true;
  }

  /// Signals end-of-stream (producer only). Idempotent.
  void close() {
    Closed.store(true, std::memory_order_release);
    nudge();
  }

  /// Number of slots, after power-of-two rounding.
  size_t capacity() const { return Mask + 1; }

  /// Occupancy/stall telemetry. Safe to read from any thread at any time
  /// (values are published relaxed; each is written by one side only).
  SpscRingStats stats() const {
    SpscRingStats S;
    S.DepthHighWater = HighWater.load(std::memory_order_relaxed);
    S.ProducerParks = ProducerParks.load(std::memory_order_relaxed);
    S.ConsumerParks = ConsumerParks.load(std::memory_order_relaxed);
    return S;
  }

private:
  static constexpr unsigned SpinLimit = 64;

  /// Parks on the shared condition variable until \p ReadyFn holds or a
  /// short timeout elapses (whichever first); the caller re-polls either
  /// way, so a lost nudge is only latency.
  template <typename Fn> void parkUntil(Fn ReadyFn) {
    std::unique_lock<std::mutex> Guard(ParkLock);
    if (ReadyFn())
      return;
    Parked.store(true, std::memory_order_seq_cst);
    ParkCv.wait_for(Guard, std::chrono::milliseconds(1));
    Parked.store(false, std::memory_order_seq_cst);
  }

  /// Wakes a parked peer, if any.
  void nudge() {
    if (!Parked.load(std::memory_order_seq_cst))
      return;
    std::lock_guard<std::mutex> Guard(ParkLock);
    ParkCv.notify_all();
  }

  std::vector<T> Buffer;
  size_t Mask = 0;

  // Producer side (Head is written by push, read by pop).
  alignas(64) std::atomic<size_t> Head{0};
  size_t CachedTail = 0;     // producer-private cache of Tail
  size_t HighWaterLocal = 0; // producer-private copy of HighWater
  std::atomic<size_t> HighWater{0};
  std::atomic<uint64_t> ProducerParks{0};

  // Consumer side.
  alignas(64) std::atomic<size_t> Tail{0};
  size_t CachedHead = 0; // consumer-private cache of Head
  std::atomic<uint64_t> ConsumerParks{0};

  alignas(64) std::atomic<bool> Closed{false};
  std::atomic<bool> Parked{false};
  std::mutex ParkLock;
  std::condition_variable ParkCv;
};

} // namespace literace

#endif // LITERACE_SUPPORT_SPSCRING_H
