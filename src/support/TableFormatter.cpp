//===-- support/TableFormatter.cpp - Console table rendering -------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/TableFormatter.h"

#include <algorithm>
#include <cstdarg>

using namespace literace;

TableFormatter::TableFormatter(std::string Title) : Title(std::move(Title)) {}

void TableFormatter::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

void TableFormatter::addSeparator() { Rows.push_back({SeparatorMarker}); }

static std::string formatPrintf(const char *Fmt, ...) {
  char Buf[64];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  return Buf;
}

std::string TableFormatter::num(double Value, int Decimals) {
  return formatPrintf("%.*f", Decimals, Value);
}

std::string TableFormatter::percent(double Fraction, int Decimals) {
  return formatPrintf("%.*f%%", Decimals, Fraction * 100.0);
}

std::string TableFormatter::times(double Factor, int Decimals) {
  return formatPrintf("%.*fx", Decimals, Factor);
}

std::string TableFormatter::str() const {
  // Compute column widths over all non-separator rows.
  std::vector<size_t> Widths;
  for (const auto &Row : Rows) {
    if (!Row.empty() && Row[0] == SeparatorMarker)
      continue;
    if (Row.size() > Widths.size())
      Widths.resize(Row.size(), 0);
    for (size_t I = 0; I != Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  }

  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W + 2;
  TotalWidth = TotalWidth > 2 ? TotalWidth - 2 : 0;

  std::string Out;
  if (!Title.empty()) {
    Out += "== " + Title + " ==\n";
  }
  bool PrintedHeader = false;
  for (const auto &Row : Rows) {
    if (!Row.empty() && Row[0] == SeparatorMarker) {
      Out.append(TotalWidth, '-');
      Out += '\n';
      continue;
    }
    std::string Line;
    for (size_t I = 0; I != Row.size(); ++I) {
      std::string Cell = Row[I];
      Cell.resize(Widths[I], ' ');
      Line += Cell;
      if (I + 1 != Row.size())
        Line += "  ";
    }
    // Trim trailing padding spaces.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    Out += Line;
    Out += '\n';
    if (!PrintedHeader) {
      Out.append(TotalWidth, '-');
      Out += '\n';
      PrintedHeader = true;
    }
  }
  return Out;
}

void TableFormatter::print(std::FILE *OutFile) const {
  std::string S = str();
  std::fwrite(S.data(), 1, S.size(), OutFile);
  std::fflush(OutFile);
}
