//===-- support/Compiler.h - Compiler portability helpers ------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability macros used throughout the library: branch hints for
/// the sampling fast path and an unreachable marker for covered switches.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_SUPPORT_COMPILER_H
#define LITERACE_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define LR_LIKELY(x) (__builtin_expect(!!(x), 1))
#define LR_UNLIKELY(x) (__builtin_expect(!!(x), 0))
#define LR_ALWAYS_INLINE inline __attribute__((always_inline))
#define LR_NOINLINE __attribute__((noinline))
/// Pins a hot function to a cache-line boundary so its cost does not
/// swing with incidental code-layout changes elsewhere in the TU.
#define LR_CACHE_ALIGNED_FN __attribute__((aligned(64)))
#else
#define LR_LIKELY(x) (x)
#define LR_UNLIKELY(x) (x)
#define LR_ALWAYS_INLINE inline
#define LR_NOINLINE
#define LR_CACHE_ALIGNED_FN
#endif

namespace literace {

/// Marks a point in the code that must never be reached if the program
/// invariants hold. Prints the message and aborts.
[[noreturn]] inline void literaceUnreachable(const char *Msg) {
  std::fprintf(stderr, "literace: unreachable executed: %s\n", Msg);
  std::abort();
}

} // namespace literace

#endif // LITERACE_SUPPORT_COMPILER_H
