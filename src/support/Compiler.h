//===-- support/Compiler.h - Compiler portability helpers ------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability macros used throughout the library: branch hints for
/// the sampling fast path and an unreachable marker for covered switches.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_SUPPORT_COMPILER_H
#define LITERACE_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define LR_LIKELY(x) (__builtin_expect(!!(x), 1))
#define LR_UNLIKELY(x) (__builtin_expect(!!(x), 0))
#define LR_ALWAYS_INLINE inline __attribute__((always_inline))
#define LR_NOINLINE __attribute__((noinline))
#else
#define LR_LIKELY(x) (x)
#define LR_UNLIKELY(x) (x)
#define LR_ALWAYS_INLINE inline
#define LR_NOINLINE
#endif

namespace literace {

/// Marks a point in the code that must never be reached if the program
/// invariants hold. Prints the message and aborts.
[[noreturn]] inline void literaceUnreachable(const char *Msg) {
  std::fprintf(stderr, "literace: unreachable executed: %s\n", Msg);
  std::abort();
}

} // namespace literace

#endif // LITERACE_SUPPORT_COMPILER_H
