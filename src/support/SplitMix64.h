//===-- support/SplitMix64.h - Deterministic PRNG ---------------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny deterministic pseudo-random generator (splitmix64). Used by the
/// random samplers and by the workload drivers, so that experiments are
/// reproducible for a fixed seed regardless of the standard library.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_SUPPORT_SPLITMIX64_H
#define LITERACE_SUPPORT_SPLITMIX64_H

#include <cassert>
#include <cstdint>

namespace literace {

/// splitmix64: passes BigCrush, one add + three shifts per draw. Not
/// cryptographic; plenty for sampling decisions and workload shuffling.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed = 0x853c49e6748fea9bULL) : State(Seed) {}

  /// Returns the next 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns a value uniformly distributed in [0, Bound). \p Bound must be
  /// nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow requires a nonzero bound");
    // Multiply-shift range reduction; bias is negligible for our bounds.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBernoulli(double P) {
    if (P <= 0.0)
      return false;
    if (P >= 1.0)
      return true;
    return nextDouble() < P;
  }

private:
  uint64_t State;
};

} // namespace literace

#endif // LITERACE_SUPPORT_SPLITMIX64_H
