//===-- support/ByteOutput.cpp - Byte-level output with fault surface -----===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ByteOutput.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace literace;

ByteOutput::~ByteOutput() = default;

bool ByteOutput::flush() { return true; }

FileByteOutput::FileByteOutput(const std::string &Path) {
  Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
}

FileByteOutput::FileByteOutput(const std::string &Path, bool Append) {
  Fd = ::open(Path.c_str(),
              O_WRONLY | O_CREAT | (Append ? O_APPEND : O_TRUNC), 0644);
}

FileByteOutput::~FileByteOutput() { close(); }

WriteResult FileByteOutput::write(const void *Data, size_t Size) {
  WriteResult Result;
  if (Fd < 0)
    return Result;
  while (Result.Written < Size) {
    ssize_t N = ::write(Fd, static_cast<const uint8_t *>(Data) + Result.Written,
                        Size - Result.Written);
    if (N > 0) {
      Result.Written += static_cast<size_t>(N);
      continue;
    }
    // A signal or a momentarily full pipe/disk queue: report the rest as
    // retryable and let the caller decide on backoff.
    Result.Transient = (N < 0 && (errno == EINTR || errno == EAGAIN));
    break;
  }
  return Result;
}

void FileByteOutput::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

SocketByteOutput::SocketByteOutput(const std::string &Path) {
  if (Path.size() >= sizeof(sockaddr_un{}.sun_path))
    return;
  int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0)
    return;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(S);
    return;
  }
  Fd = S;
}

SocketByteOutput::SocketByteOutput(int ConnectedFd) : Fd(ConnectedFd) {}

SocketByteOutput::~SocketByteOutput() { close(); }

WriteResult SocketByteOutput::write(const void *Data, size_t Size) {
  WriteResult Result;
  if (Fd < 0)
    return Result;
  while (Result.Written < Size) {
    // MSG_NOSIGNAL: a daemon that vanished mid-stream must surface as a
    // failed send, not a SIGPIPE killing the traced program.
    ssize_t N = ::send(Fd, static_cast<const uint8_t *>(Data) + Result.Written,
                       Size - Result.Written, MSG_NOSIGNAL);
    if (N > 0) {
      Result.Written += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EINTR || errno == EAGAIN)) {
      Result.Transient = true;
      break;
    }
    // Connection gone: every later write would fail the same way.
    close();
    break;
  }
  return Result;
}

void SocketByteOutput::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

TeeByteOutput::TeeByteOutput(ByteOutput &Primary, ByteOutput &Secondary)
    : Primary(Primary), Secondary(Secondary) {
  SecondaryDead = !Secondary.ok();
}

WriteResult TeeByteOutput::write(const void *Data, size_t Size) {
  WriteResult Result = Primary.write(Data, Size);
  if (SecondaryDead) {
    SecondaryLost += Result.Written;
    return Result;
  }
  // Forward exactly the primary-accepted prefix, retrying transient
  // secondary stalls a few times so a briefly busy daemon does not break
  // stream equality; a persistent stall or hard failure kills the tee.
  size_t Sent = 0;
  unsigned Stalls = 0;
  while (Sent < Result.Written) {
    WriteResult R = Secondary.write(
        static_cast<const uint8_t *>(Data) + Sent, Result.Written - Sent);
    Sent += R.Written;
    if (R.Written != 0)
      continue;
    if (!R.Transient || ++Stalls > 64) {
      SecondaryDead = true;
      SecondaryLost += Result.Written - Sent;
      break;
    }
  }
  return Result;
}

bool TeeByteOutput::flush() {
  bool Ok = Primary.flush();
  if (!SecondaryDead && !Secondary.flush())
    SecondaryDead = true;
  return Ok;
}

void TeeByteOutput::close() {
  Primary.close();
  Secondary.close();
}

FaultySink::FaultySink(ByteOutput &Under, const FaultPlan &Plan)
    : Under(Under), Plan(Plan), Rng(Plan.BitFlipSeed) {
  if (Plan.BitFlipEveryBytes)
    NextFlipAt = Rng.nextBelow(Plan.BitFlipEveryBytes) + 1;
}

bool FaultySink::ok() const {
  return Under.ok() &&
         (Plan.FailAtWrite == 0 || Attempts + 1 < Plan.FailAtWrite) &&
         (Plan.FailAtByte == 0 || StreamOffset < Plan.FailAtByte);
}

WriteResult FaultySink::write(const void *Data, size_t Size) {
  ++Attempts;
  if (Plan.FailAtWrite && Attempts >= Plan.FailAtWrite)
    return WriteResult{}; // Hard failure, nothing accepted, not retryable.
  if (Plan.FailAtByte && StreamOffset >= Plan.FailAtByte)
    return WriteResult{}; // Torn at the seeded byte offset.
  if (Plan.TransientAtWrite && Attempts >= Plan.TransientAtWrite &&
      Attempts < Plan.TransientAtWrite + Plan.TransientCount)
    return WriteResult{0, /*Transient=*/true};

  size_t Accept = Size;
  bool AtTear = false;
  if (Plan.FailAtByte && StreamOffset + Accept > Plan.FailAtByte) {
    // Accept exactly up to the tear so the break lands at the same
    // stream byte no matter how the writer batches.
    Accept = static_cast<size_t>(Plan.FailAtByte - StreamOffset);
    AtTear = true;
  }
  if (Plan.MaxWriteBytes && Accept > Plan.MaxWriteBytes) {
    Accept = Plan.MaxWriteBytes;
    AtTear = false; // the short-write regime cut first; still retryable
  }

  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  if (Plan.BitFlipEveryBytes) {
    // Flip bits at absolute stream offsets, independent of how the
    // writes are segmented, so a fault plan corrupts the same on-disk
    // bytes no matter how the writer batches.
    Scratch.assign(Bytes, Bytes + Accept);
    while (NextFlipAt < StreamOffset + Accept) {
      if (NextFlipAt >= StreamOffset) {
        Scratch[NextFlipAt - StreamOffset] ^=
            static_cast<uint8_t>(1u << Rng.nextBelow(8));
        ++BitsFlipped;
      }
      NextFlipAt += Rng.nextBelow(Plan.BitFlipEveryBytes) + 1;
    }
    Bytes = Scratch.data();
  }

  WriteResult Result = Under.write(Bytes, Accept);
  StreamOffset += Result.Written;
  // A plan-induced short write leaves a retryable remainder, like a
  // partially accepted write(2) — unless the tear boundary cut it, in
  // which case the remainder is gone for good (connection torn).
  if (Result.Written == Accept && Accept < Size)
    Result.Transient = !AtTear;
  return Result;
}

//===----------------------------------------------------------------------===//
// Resumable collector stream protocol
//===----------------------------------------------------------------------===//

namespace {

void putU64Le(uint8_t *Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out[I] = static_cast<uint8_t>(V >> (8 * I));
}

uint64_t getU64Le(const uint8_t *In) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(In[I]) << (8 * I);
  return V;
}

uint64_t steadyNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int connectUnixFd(const std::string &Path) {
  if (Path.empty() || Path.size() >= sizeof(sockaddr_un{}.sun_path))
    return -1;
  int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(S);
    return -1;
  }
  return S;
}

} // namespace

bool literace::isStreamHello(const uint8_t *First4) {
  return std::memcmp(First4, "LRH1", 4) == 0;
}

void literace::encodeStreamHello(uint64_t RunIdHi, uint64_t RunIdLo,
                                 uint8_t *Out) {
  std::memcpy(Out, "LRH1", 4);
  putU64Le(Out + 4, RunIdHi);
  putU64Le(Out + 12, RunIdLo);
}

bool literace::decodeStreamHello(const uint8_t *Buf, uint64_t &RunIdHi,
                                 uint64_t &RunIdLo) {
  if (std::memcmp(Buf, "LRH1", 4) != 0)
    return false;
  RunIdHi = getU64Le(Buf + 4);
  RunIdLo = getU64Le(Buf + 12);
  return true;
}

void literace::encodeStreamAck(uint64_t Received, uint8_t *Out) {
  std::memcpy(Out, "LRA1", 4);
  putU64Le(Out + 4, Received);
}

bool literace::decodeStreamAck(const uint8_t *Buf, uint64_t &Received) {
  if (std::memcmp(Buf, "LRA1", 4) != 0)
    return false;
  Received = getU64Le(Buf + 4);
  return true;
}

void literace::encodeStreamResume(uint64_t Offset, uint8_t *Out) {
  std::memcpy(Out, "LRR1", 4);
  putU64Le(Out + 4, Offset);
}

bool literace::decodeStreamResume(const uint8_t *Buf, uint64_t &Offset) {
  if (std::memcmp(Buf, "LRR1", 4) != 0)
    return false;
  Offset = getU64Le(Buf + 4);
  return true;
}

bool literace::sendAllDeadline(int Fd, const void *Data, size_t Size,
                               int DeadlineMs) {
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  const uint64_t Start = steadyNowMs();
  size_t Off = 0;
  while (Off < Size) {
    const uint64_t Elapsed = steadyNowMs() - Start;
    if (Elapsed >= static_cast<uint64_t>(DeadlineMs))
      return false;
    pollfd P{Fd, POLLOUT, 0};
    const int R =
        ::poll(&P, 1, static_cast<int>(DeadlineMs - Elapsed));
    if (R < 0 && errno == EINTR)
      continue;
    if (R <= 0 || (P.revents & (POLLERR | POLLHUP | POLLNVAL)))
      return false;
    const ssize_t N = ::send(Fd, Bytes + Off, Size - Off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EINTR || errno == EAGAIN))
      continue;
    return false;
  }
  return true;
}

bool literace::recvAllDeadline(int Fd, void *Data, size_t Size,
                               int DeadlineMs) {
  uint8_t *Bytes = static_cast<uint8_t *>(Data);
  const uint64_t Start = steadyNowMs();
  size_t Off = 0;
  while (Off < Size) {
    const uint64_t Elapsed = steadyNowMs() - Start;
    if (Elapsed >= static_cast<uint64_t>(DeadlineMs))
      return false;
    pollfd P{Fd, POLLIN, 0};
    const int R =
        ::poll(&P, 1, static_cast<int>(DeadlineMs - Elapsed));
    if (R < 0 && errno == EINTR)
      continue;
    if (R <= 0)
      return false;
    const ssize_t N = ::recv(Fd, Bytes + Off, Size - Off, MSG_DONTWAIT);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EINTR || errno == EAGAIN))
      continue;
    return false; // EOF or hard error
  }
  return true;
}

//===----------------------------------------------------------------------===//
// SpoolingSocketOutput
//===----------------------------------------------------------------------===//

SpoolingSocketOutput::SpoolingSocketOutput(Options OptsIn)
    : Opts(std::move(OptsIn)), Jitter(Opts.JitterSeed) {
  if (!Opts.NowMs)
    Opts.NowMs = steadyNowMs;
  if (!Opts.SleepMs)
    Opts.SleepMs = [](uint64_t Ms) { ::usleep(Ms * 1000); };
  if (Opts.RunIdHi == 0 && Opts.RunIdLo == 0) {
    SplitMix64 R(Opts.JitterSeed ^
                 (static_cast<uint64_t>(::getpid()) << 32) ^ steadyNowMs());
    Opts.RunIdHi = R.next();
    Opts.RunIdLo = R.next();
  }
  SpoolFd = ::open(Opts.SpoolPath.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (SpoolFd < 0) {
    SpoolDead = true;
    ++SpoolErrors;
  } else {
    pump(); // first connection attempt, so the session exists from byte 0
  }
}

SpoolingSocketOutput::~SpoolingSocketOutput() { close(); }

bool SpoolingSocketOutput::spoolAppend(const uint8_t *Data, size_t Size) {
  size_t Off = 0;
  while (Off < Size) {
    const ssize_t N =
        ::pwrite(SpoolFd, Data + Off, Size - Off,
                 static_cast<off_t>(Written - SpoolStart + Off));
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
  return true;
}

void SpoolingSocketOutput::spoolFailed() {
  // The spool is the durability story; without it the secondary cannot
  // keep its exactly-once resume accounting, so give up on delivery and
  // account every unsent byte as lost (the tee stays alive regardless).
  ++SpoolErrors;
  SpoolDead = true;
  Gap += Written - Sent;
  Sent = Written;
  SpoolStart = Written;
  dropConnection();
}

void SpoolingSocketOutput::compactSpool() {
  // Slide the unacked tail to the front of the file so a long healthy
  // run keeps the spool near the unacked working set, not the full
  // stream.
  uint8_t Buf[1 << 16];
  uint64_t From = Acked - SpoolStart;
  const uint64_t End = Written - SpoolStart;
  uint64_t To = 0;
  while (From < End) {
    const ssize_t Got =
        ::pread(SpoolFd, Buf, std::min<uint64_t>(sizeof(Buf), End - From),
                static_cast<off_t>(From));
    if (Got <= 0) {
      spoolFailed();
      return;
    }
    if (::pwrite(SpoolFd, Buf, static_cast<size_t>(Got),
                 static_cast<off_t>(To)) != Got) {
      spoolFailed();
      return;
    }
    From += static_cast<uint64_t>(Got);
    To += static_cast<uint64_t>(Got);
  }
  if (::ftruncate(SpoolFd, static_cast<off_t>(To)) != 0) {
    spoolFailed();
    return;
  }
  SpoolStart = Acked;
}

void SpoolingSocketOutput::scheduleRetry() {
  ++ConsecFails;
  uint64_t Delay = Opts.BackoffInitialMs
                   << std::min<unsigned>(ConsecFails - 1, 16);
  if (Delay > Opts.BackoffMaxMs)
    Delay = Opts.BackoffMaxMs;
  // Jitter into [Delay/2, Delay] so a fleet of clients does not stampede
  // a restarting daemon in lockstep.
  const uint64_t Low = Delay / 2;
  Delay = Low + Jitter.nextBelow(Delay - Low + 1);
  NextAttemptMs = Opts.NowMs() + Delay;
}

void SpoolingSocketOutput::dropConnection() {
  Faulty.reset();
  Wire = nullptr;
  Sock.reset(); // closes the fd
  Fd = -1;
  AckFill = 0;
}

bool SpoolingSocketOutput::maybeConnect() {
  if (SpoolDead || Opts.NowMs() < NextAttemptMs)
    return false;
  const int NewFd =
      Opts.ConnectFd ? Opts.ConnectFd() : connectUnixFd(Opts.SocketPath);
  if (NewFd < 0) {
    scheduleRetry();
    return false;
  }
  const int Deadline = static_cast<int>(Opts.HandshakeTimeoutMs);
  uint8_t Hello[StreamHelloSize];
  encodeStreamHello(Opts.RunIdHi, Opts.RunIdLo, Hello);
  uint8_t Ack[StreamAckSize];
  uint64_t R = 0;
  if (!sendAllDeadline(NewFd, Hello, sizeof(Hello), Deadline) ||
      !recvAllDeadline(NewFd, Ack, sizeof(Ack), Deadline) ||
      !decodeStreamAck(Ack, R)) {
    ::close(NewFd);
    scheduleRetry();
    return false;
  }
  if (R > Written)
    R = Written; // never trust an ack beyond our own accounting
  uint64_t Resume = std::max(R, SpoolStart);
  uint8_t ResumeFrame[StreamResumeSize];
  encodeStreamResume(Resume, ResumeFrame);
  if (!sendAllDeadline(NewFd, ResumeFrame, sizeof(ResumeFrame), Deadline)) {
    ::close(NewFd);
    scheduleRetry();
    return false;
  }
  // Handshake complete: only now realize the accounting, so a failed
  // attempt never double-counts a gap.
  if (R > Acked)
    Acked = R;
  if (Resume > R)
    Gap += Resume - R; // the spool cap already shed these bytes
  Fd = NewFd;
  Sock = std::make_unique<SocketByteOutput>(NewFd);
  Wire = Sock.get();
  if (!Opts.SendFaults.empty()) {
    const size_t I =
        std::min<size_t>(static_cast<size_t>(Connects),
                         Opts.SendFaults.size() - 1);
    Faulty = std::make_unique<FaultySink>(*Sock, Opts.SendFaults[I]);
    Wire = Faulty.get();
  }
  ++Connects;
  ConsecFails = 0;
  NextAttemptMs = 0;
  AckFill = 0;
  Sent = Resume;
  ReplayHigh = Written; // backlog below here counts as replayed
  return true;
}

void SpoolingSocketOutput::drainAcks() {
  while (Fd >= 0) {
    const ssize_t N = ::recv(Fd, AckBuf + AckFill, sizeof(AckBuf) - AckFill,
                             MSG_DONTWAIT);
    if (N <= 0)
      break; // empty, or peer death that the next send will surface
    AckFill += static_cast<size_t>(N);
    if (AckFill == sizeof(AckBuf)) {
      uint64_t R = 0;
      if (decodeStreamAck(AckBuf, R)) {
        if (R > Acked && R <= Written)
          Acked = R;
        AckFill = 0;
      } else {
        // Torn/unknown frame: slide one byte and rescan for the magic.
        std::memmove(AckBuf, AckBuf + 1, sizeof(AckBuf) - 1);
        AckFill = sizeof(AckBuf) - 1;
      }
    }
  }
  if (!SpoolDead && Acked > SpoolStart &&
      Acked - SpoolStart >=
          std::max<uint64_t>(Opts.SpoolCapBytes / 2, 1 << 20))
    compactSpool();
}

void SpoolingSocketOutput::pump() {
  if (Closed || SpoolDead)
    return;
  if (Fd < 0 && !maybeConnect())
    return;
  drainAcks();
  unsigned Stalls = 0;
  uint8_t Buf[1 << 16];
  while (Fd >= 0 && Sent < Written) {
    const size_t Want =
        static_cast<size_t>(std::min<uint64_t>(sizeof(Buf), Written - Sent));
    const ssize_t Got = ::pread(SpoolFd, Buf, Want,
                                static_cast<off_t>(Sent - SpoolStart));
    if (Got <= 0) {
      spoolFailed();
      return;
    }
    const WriteResult W = Wire->write(Buf, static_cast<size_t>(Got));
    if (Sent < ReplayHigh)
      Replayed += std::min<uint64_t>(W.Written, ReplayHigh - Sent);
    Sent += W.Written;
    if (W.complete(static_cast<size_t>(Got)))
      continue;
    if (W.Transient) {
      if (W.Written == 0 && ++Stalls > 2)
        return; // briefly busy daemon: retry on the next write/flush
      continue;
    }
    // Hard failure: the connection tore. The spool keeps the tail; back
    // off and resume at the next handshake.
    dropConnection();
    scheduleRetry();
    return;
  }
}

WriteResult SpoolingSocketOutput::write(const void *Data, size_t Size) {
  if (Closed)
    return WriteResult{};
  if (Size == 0)
    return WriteResult{0, false};
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  if (SpoolDead) {
    // Degraded: no durable resume accounting is possible, so the
    // secondary admits the loss instead of guessing at offsets.
    Written += Size;
    Gap += Size;
    Sent = Written;
    SpoolStart = Written;
    return WriteResult{Size, false};
  }
  const uint64_t Retained = Written - std::max(Acked, SpoolStart);
  if (Retained > 0 && Retained + Size > Opts.SpoolCapBytes) {
    // Cap hit: shed the whole unacked extent. If the live cursor was
    // inside it, tear the connection so the gap is declared through the
    // handshake RESUME rather than silently skipped mid-stream.
    ++CapHits;
    Trimmed += Retained;
    const bool HoleUnderCursor = Fd >= 0 && Sent < Written;
    if (::ftruncate(SpoolFd, 0) != 0) {
      spoolFailed();
      Written += Size;
      Gap += Size;
      Sent = Written;
      SpoolStart = Written;
      return WriteResult{Size, false};
    }
    SpoolStart = Written;
    if (HoleUnderCursor) {
      dropConnection();
      scheduleRetry();
    }
  }
  if (!spoolAppend(Bytes, Size)) {
    spoolFailed();
    Written += Size;
    Gap += Size;
    Sent = Written;
    SpoolStart = Written;
    return WriteResult{Size, false};
  }
  const bool Behind = Fd < 0 || Sent < Written;
  Written += Size;
  if (Behind)
    Spooled += Size;
  pump();
  return WriteResult{Size, false};
}

bool SpoolingSocketOutput::flush() {
  if (!Closed)
    pump();
  return true;
}

void SpoolingSocketOutput::close() {
  if (Closed)
    return;
  // Final drain: keep reconnecting and replaying until the tail is out
  // or the deadline expires; whatever remains is admitted as loss.
  const uint64_t Deadline = Opts.NowMs() + Opts.DrainDeadlineMs;
  while (!SpoolDead && Sent < Written) {
    pump();
    if (Sent >= Written || Opts.NowMs() >= Deadline)
      break;
    Opts.SleepMs(1);
  }
  Undelivered = Written - Sent;
  dropConnection();
  if (SpoolFd >= 0) {
    ::close(SpoolFd);
    SpoolFd = -1;
  }
  if (!Opts.SpoolPath.empty())
    ::unlink(Opts.SpoolPath.c_str());
  Closed = true;
}
