//===-- support/ByteOutput.cpp - Byte-level output with fault surface -----===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ByteOutput.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace literace;

ByteOutput::~ByteOutput() = default;

bool ByteOutput::flush() { return true; }

FileByteOutput::FileByteOutput(const std::string &Path) {
  Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
}

FileByteOutput::~FileByteOutput() { close(); }

WriteResult FileByteOutput::write(const void *Data, size_t Size) {
  WriteResult Result;
  if (Fd < 0)
    return Result;
  while (Result.Written < Size) {
    ssize_t N = ::write(Fd, static_cast<const uint8_t *>(Data) + Result.Written,
                        Size - Result.Written);
    if (N > 0) {
      Result.Written += static_cast<size_t>(N);
      continue;
    }
    // A signal or a momentarily full pipe/disk queue: report the rest as
    // retryable and let the caller decide on backoff.
    Result.Transient = (N < 0 && (errno == EINTR || errno == EAGAIN));
    break;
  }
  return Result;
}

void FileByteOutput::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

SocketByteOutput::SocketByteOutput(const std::string &Path) {
  if (Path.size() >= sizeof(sockaddr_un{}.sun_path))
    return;
  int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0)
    return;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(S);
    return;
  }
  Fd = S;
}

SocketByteOutput::SocketByteOutput(int ConnectedFd) : Fd(ConnectedFd) {}

SocketByteOutput::~SocketByteOutput() { close(); }

WriteResult SocketByteOutput::write(const void *Data, size_t Size) {
  WriteResult Result;
  if (Fd < 0)
    return Result;
  while (Result.Written < Size) {
    // MSG_NOSIGNAL: a daemon that vanished mid-stream must surface as a
    // failed send, not a SIGPIPE killing the traced program.
    ssize_t N = ::send(Fd, static_cast<const uint8_t *>(Data) + Result.Written,
                       Size - Result.Written, MSG_NOSIGNAL);
    if (N > 0) {
      Result.Written += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EINTR || errno == EAGAIN)) {
      Result.Transient = true;
      break;
    }
    // Connection gone: every later write would fail the same way.
    close();
    break;
  }
  return Result;
}

void SocketByteOutput::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

TeeByteOutput::TeeByteOutput(ByteOutput &Primary, ByteOutput &Secondary)
    : Primary(Primary), Secondary(Secondary) {
  SecondaryDead = !Secondary.ok();
}

WriteResult TeeByteOutput::write(const void *Data, size_t Size) {
  WriteResult Result = Primary.write(Data, Size);
  if (SecondaryDead) {
    SecondaryLost += Result.Written;
    return Result;
  }
  // Forward exactly the primary-accepted prefix, retrying transient
  // secondary stalls a few times so a briefly busy daemon does not break
  // stream equality; a persistent stall or hard failure kills the tee.
  size_t Sent = 0;
  unsigned Stalls = 0;
  while (Sent < Result.Written) {
    WriteResult R = Secondary.write(
        static_cast<const uint8_t *>(Data) + Sent, Result.Written - Sent);
    Sent += R.Written;
    if (R.Written != 0)
      continue;
    if (!R.Transient || ++Stalls > 64) {
      SecondaryDead = true;
      SecondaryLost += Result.Written - Sent;
      break;
    }
  }
  return Result;
}

bool TeeByteOutput::flush() {
  bool Ok = Primary.flush();
  if (!SecondaryDead && !Secondary.flush())
    SecondaryDead = true;
  return Ok;
}

void TeeByteOutput::close() {
  Primary.close();
  Secondary.close();
}

FaultySink::FaultySink(ByteOutput &Under, const FaultPlan &Plan)
    : Under(Under), Plan(Plan), Rng(Plan.BitFlipSeed) {
  if (Plan.BitFlipEveryBytes)
    NextFlipAt = Rng.nextBelow(Plan.BitFlipEveryBytes) + 1;
}

bool FaultySink::ok() const {
  return Under.ok() &&
         (Plan.FailAtWrite == 0 || Attempts + 1 < Plan.FailAtWrite);
}

WriteResult FaultySink::write(const void *Data, size_t Size) {
  ++Attempts;
  if (Plan.FailAtWrite && Attempts >= Plan.FailAtWrite)
    return WriteResult{}; // Hard failure, nothing accepted, not retryable.
  if (Plan.TransientAtWrite && Attempts >= Plan.TransientAtWrite &&
      Attempts < Plan.TransientAtWrite + Plan.TransientCount)
    return WriteResult{0, /*Transient=*/true};

  size_t Accept = Size;
  if (Plan.MaxWriteBytes && Accept > Plan.MaxWriteBytes)
    Accept = Plan.MaxWriteBytes;

  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  if (Plan.BitFlipEveryBytes) {
    // Flip bits at absolute stream offsets, independent of how the
    // writes are segmented, so a fault plan corrupts the same on-disk
    // bytes no matter how the writer batches.
    Scratch.assign(Bytes, Bytes + Accept);
    while (NextFlipAt < StreamOffset + Accept) {
      if (NextFlipAt >= StreamOffset) {
        Scratch[NextFlipAt - StreamOffset] ^=
            static_cast<uint8_t>(1u << Rng.nextBelow(8));
        ++BitsFlipped;
      }
      NextFlipAt += Rng.nextBelow(Plan.BitFlipEveryBytes) + 1;
    }
    Bytes = Scratch.data();
  }

  WriteResult Result = Under.write(Bytes, Accept);
  StreamOffset += Result.Written;
  // A plan-induced short write leaves a retryable remainder, like a
  // partially accepted write(2).
  if (Result.Written == Accept && Accept < Size)
    Result.Transient = true;
  return Result;
}
