//===-- support/SmallVector.h - Inline-capacity vector ----------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal vector with inline storage for its first N elements,
/// restricted to trivially copyable element types. The detectors keep
/// per-address access lists that hold one or two entries for almost every
/// address; storing those inline keeps the whole per-address shadow state
/// in one or two cache lines and avoids a heap allocation per address
/// (std::vector allocates on the first push_back). Not a general-purpose
/// container: no insert/erase middle operations, no exception guarantees
/// beyond new throwing, and the inline buffer means moves are O(N).
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_SUPPORT_SMALLVECTOR_H
#define LITERACE_SUPPORT_SMALLVECTOR_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace literace {

template <typename T, unsigned N> class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is restricted to trivially copyable types");
  static_assert(N > 0, "inline capacity must be nonzero");

public:
  SmallVector() = default;
  SmallVector(const SmallVector &) = delete;
  SmallVector &operator=(const SmallVector &) = delete;
  ~SmallVector() {
    if (Cap != N)
      delete[] Heap;
  }

  T *begin() { return data(); }
  T *end() { return data() + Sz; }
  const T *begin() const { return data(); }
  const T *end() const { return data() + Sz; }

  T &operator[](uint32_t I) {
    assert(I < Sz);
    return data()[I];
  }
  const T &operator[](uint32_t I) const {
    assert(I < Sz);
    return data()[I];
  }

  T &front() { return (*this)[0]; }
  const T &front() const { return (*this)[0]; }

  uint32_t size() const { return Sz; }
  bool empty() const { return Sz == 0; }

  void push_back(const T &V) {
    if (Sz == Cap)
      grow(Sz + 1);
    data()[Sz++] = V;
  }

  /// Drops all elements past \p NewSize (which must not exceed size()).
  void truncate(uint32_t NewSize) {
    assert(NewSize <= Sz);
    Sz = NewSize;
  }

  void clear() { Sz = 0; }

  /// Grows to \p NewSize, value-initializing new elements.
  void resize(uint32_t NewSize) {
    if (NewSize > Sz) {
      if (NewSize > Cap)
        grow(NewSize);
      std::memset(reinterpret_cast<void *>(data() + Sz), 0,
                  (NewSize - Sz) * sizeof(T));
    }
    Sz = NewSize;
  }

  /// Removes every element for which \p Pred returns true, preserving the
  /// relative order of the survivors (the detectors' report determinism
  /// depends on stable list order).
  template <typename PredFn> void removeIf(PredFn &&Pred) {
    T *D = data();
    uint32_t Out = 0;
    for (uint32_t I = 0; I != Sz; ++I) {
      if (!Pred(D[I])) {
        if (Out != I)
          D[Out] = D[I];
        ++Out;
      }
    }
    Sz = Out;
  }

private:
  T *data() { return Cap == N ? reinterpret_cast<T *>(Inline) : Heap; }
  const T *data() const {
    return Cap == N ? reinterpret_cast<const T *>(Inline) : Heap;
  }

  void grow(uint32_t Need) {
    uint32_t NewCap = Cap * 2;
    while (NewCap < Need)
      NewCap *= 2;
    T *NewData = new T[NewCap];
    std::memcpy(reinterpret_cast<void *>(NewData), data(), Sz * sizeof(T));
    if (Cap != N)
      delete[] Heap;
    Heap = NewData;
    Cap = NewCap;
  }

  uint32_t Sz = 0;
  uint32_t Cap = N;
  union {
    alignas(T) unsigned char Inline[N * sizeof(T)];
    T *Heap;
  };
};

} // namespace literace

#endif // LITERACE_SUPPORT_SMALLVECTOR_H
