//===-- support/TableFormatter.h - Console table rendering -----*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders aligned plain-text tables. The benchmark harness uses this to
/// print the rows of the paper's tables and figures in a diff-friendly,
/// monospace-aligned form.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_SUPPORT_TABLEFORMATTER_H
#define LITERACE_SUPPORT_TABLEFORMATTER_H

#include <cstdio>
#include <string>
#include <vector>

namespace literace {

/// Accumulates rows of string cells and renders them with columns padded to
/// the widest cell. The first addRow() call after construction is treated as
/// the header and is underlined when printed.
class TableFormatter {
public:
  explicit TableFormatter(std::string Title = "");

  /// Appends one row. Rows may have differing cell counts; missing cells
  /// render empty.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders the table to a string.
  std::string str() const;

  /// Renders the table to \p Out (stdout by default).
  void print(std::FILE *Out = stdout) const;

  /// Formats a double with \p Decimals fraction digits.
  static std::string num(double Value, int Decimals = 1);

  /// Formats a ratio as a percentage string like "71.4%".
  static std::string percent(double Fraction, int Decimals = 1);

  /// Formats a slowdown multiple like "2.4x".
  static std::string times(double Factor, int Decimals = 2);

private:
  std::string Title;
  std::vector<std::vector<std::string>> Rows;
  static constexpr const char *SeparatorMarker = "\x01--";
};

} // namespace literace

#endif // LITERACE_SUPPORT_TABLEFORMATTER_H
