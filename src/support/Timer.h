//===-- support/Timer.h - Wall clock timing ---------------------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock timer used by the overhead experiments (paper §5.4).
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_SUPPORT_TIMER_H
#define LITERACE_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace literace {

/// Measures elapsed wall time from construction or the last restart().
class WallTimer {
public:
  WallTimer() : Start(Clock::now()) {}

  /// Resets the start point to now.
  void restart() { Start = Clock::now(); }

  /// Returns seconds elapsed since the start point.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Returns nanoseconds elapsed since the start point.
  uint64_t nanoseconds() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             Start)
            .count());
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace literace

#endif // LITERACE_SUPPORT_TIMER_H
