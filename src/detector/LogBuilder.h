//===-- detector/LogBuilder.h - Synthetic trace construction --*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fluent construction of synthetic traces for tests and examples. The
/// builder plays the role of the runtime: it draws logical timestamps from
/// its own counter bank in the order builder calls are made, so the call
/// sequence IS the interleaving being described. This makes it easy to
/// write down the scenarios from the paper's figures (e.g. Fig. 1's
/// properly- and improperly-synchronized executions, Fig. 2's missed-sync
/// false positive) as deterministic unit tests.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_DETECTOR_LOGBUILDER_H
#define LITERACE_DETECTOR_LOGBUILDER_H

#include "runtime/EventLog.h"
#include "runtime/TimestampManager.h"

#include <vector>

namespace literace {

/// Builds a Trace event by event. Switch the current thread with
/// onThread(); every subsequent call appends to that thread's stream.
class LogBuilder {
public:
  explicit LogBuilder(unsigned NumTimestampCounters = 16);

  /// Selects the thread receiving subsequent events (created on demand).
  LogBuilder &onThread(ThreadId Tid);

  LogBuilder &threadStart();
  LogBuilder &threadEnd();

  /// Memory accesses. \p Mask defaults to "in the full log only".
  LogBuilder &read(uint64_t Addr, Pc Site = 0,
                   uint16_t Mask = FullLogMaskBit);
  LogBuilder &write(uint64_t Addr, Pc Site = 0,
                    uint16_t Mask = FullLogMaskBit);

  /// Sync operations; the timestamp is drawn now, so the relative order of
  /// builder calls on the same SyncVar is the recorded serialization.
  LogBuilder &acquire(SyncVar S, Pc Site = 0);
  LogBuilder &release(SyncVar S, Pc Site = 0);
  LogBuilder &acqRel(SyncVar S, Pc Site = 0);
  LogBuilder &alloc(SyncVar PageVar);
  LogBuilder &free(SyncVar PageVar);

  /// Mutex-flavoured aliases matching the runtime's timestamp placement.
  LogBuilder &lock(SyncVar Mutex) { return acquire(Mutex); }
  LogBuilder &unlock(SyncVar Mutex) { return release(Mutex); }

  /// Appends a fully custom record (timestamp NOT drawn; caller controls
  /// it). For malformed-log tests.
  LogBuilder &raw(EventRecord R);

  /// Draws and discards \p N timestamps on \p S's counter without logging
  /// anything — exactly what a dropped log segment containing N sync
  /// operations on \p S looks like to the replay. For coverage-gap tests.
  LogBuilder &skipTimestamps(SyncVar S, unsigned N = 1);

  /// Finalizes and returns the trace. The builder may keep being used; the
  /// returned trace is a snapshot.
  Trace build() const;

private:
  LogBuilder &append(EventKind K, uint64_t Addr, Pc Site, uint16_t Mask,
                     bool DrawTs);

  TimestampManager Timestamps;
  unsigned NumCounters;
  ThreadId Current = 0;
  std::vector<std::vector<EventRecord>> Streams;
};

} // namespace literace

#endif // LITERACE_DETECTOR_LOGBUILDER_H
