//===-- detector/VectorClock.h - Vector clocks ------------------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vector clocks for happens-before tracking (§2.1). Components are
/// indexed by dense ThreadId; a clock grows on demand and missing
/// components read as zero.
///
/// This is the hottest data structure in the offline detectors, so the
/// representation is tuned rather than delegated to std::vector:
///
///   - Small-size inline storage: clocks of up to 4 threads (the common
///     case for the paper's workloads) live entirely inside the object
///     and never touch the heap.
///   - Zeroed-slack invariant: every component in [size(), capacity())
///     is kept zero and the capacity is always a multiple of 4, so
///     joinWith/dominates/operator== can run whole 4-lane SIMD blocks
///     without tail masking — trailing components read as zero whether
///     they are allocated or not, exactly matching the scalar semantics
///     on length-mismatched clocks.
///   - Compile-time SIMD dispatch: AVX2 when the TU is compiled with it,
///     an SSE2 path on baseline x86-64 (unsigned 64-bit compares are
///     emulated with 32-bit half compares), and a portable scalar
///     fallback everywhere else. All three paths are semantically
///     identical, including for components >= 2^63.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_DETECTOR_VECTORCLOCK_H
#define LITERACE_DETECTOR_VECTORCLOCK_H

#include "runtime/Ids.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>

#if defined(__AVX2__)
#include <immintrin.h>
#define LITERACE_VECTORCLOCK_SIMD "avx2"
#elif defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#define LITERACE_VECTORCLOCK_SIMD "sse2"
#else
#define LITERACE_VECTORCLOCK_SIMD "scalar"
#endif

namespace literace {

namespace vcsimd {

#if defined(__AVX2__)

/// Per-64-bit-lane mask of unsigned A > B (AVX2 has only signed 64-bit
/// compares; biasing both operands by 2^63 makes the signed compare
/// order unsigned values correctly).
LR_ALWAYS_INLINE __m256i gtEpu64(__m256i A, __m256i B) {
  const __m256i Bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  return _mm256_cmpgt_epi64(_mm256_xor_si256(A, Bias),
                            _mm256_xor_si256(B, Bias));
}

/// A[0..Words) = max(A, B) pointwise. Words must be a multiple of 4.
LR_ALWAYS_INLINE void joinMax(uint64_t *A, const uint64_t *B,
                              uint32_t Words) {
  for (uint32_t I = 0; I < Words; I += 4) {
    __m256i Va = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I));
    __m256i Vb = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I));
    __m256i TakeB = gtEpu64(Vb, Va);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(A + I),
                        _mm256_blendv_epi8(Va, Vb, TakeB));
  }
}

/// True if some lane of A[0..Words) is unsigned-less-than the matching
/// lane of B. Words must be a multiple of 4.
LR_ALWAYS_INLINE bool anyLess(const uint64_t *A, const uint64_t *B,
                              uint32_t Words) {
  for (uint32_t I = 0; I < Words; I += 4) {
    __m256i Va = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I));
    __m256i Vb = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I));
    if (_mm256_movemask_epi8(gtEpu64(Vb, Va)) != 0)
      return true;
  }
  return false;
}

/// True if some word of A[0..Words) is nonzero. Words: multiple of 4.
LR_ALWAYS_INLINE bool anyNonZero(const uint64_t *A, uint32_t Words) {
  __m256i Acc = _mm256_setzero_si256();
  for (uint32_t I = 0; I < Words; I += 4)
    Acc = _mm256_or_si256(
        Acc, _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I)));
  return _mm256_testz_si256(Acc, Acc) == 0;
}

/// True if A[0..Words) == B[0..Words). Words: multiple of 4.
LR_ALWAYS_INLINE bool allEqual(const uint64_t *A, const uint64_t *B,
                               uint32_t Words) {
  for (uint32_t I = 0; I < Words; I += 4) {
    __m256i Va = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I));
    __m256i Vb = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi64(Va, Vb)) != -1)
      return false;
  }
  return true;
}

#elif defined(__SSE2__) || defined(_M_X64)

/// Per-64-bit-lane mask of unsigned A > B using only SSE2: compare the
/// 32-bit halves (biased so signed compares order them unsigned) and
/// combine as HighGt | (HighEq & LowGt), broadcast to the whole lane.
LR_ALWAYS_INLINE __m128i gtEpu64(__m128i A, __m128i B) {
  const __m128i Bias = _mm_set1_epi32(static_cast<int>(0x80000000U));
  __m128i Gt32 = _mm_cmpgt_epi32(_mm_xor_si128(A, Bias),
                                 _mm_xor_si128(B, Bias));
  __m128i Eq32 = _mm_cmpeq_epi32(A, B);
  __m128i HighGt = _mm_shuffle_epi32(Gt32, _MM_SHUFFLE(3, 3, 1, 1));
  __m128i LowGt = _mm_shuffle_epi32(Gt32, _MM_SHUFFLE(2, 2, 0, 0));
  __m128i HighEq = _mm_shuffle_epi32(Eq32, _MM_SHUFFLE(3, 3, 1, 1));
  return _mm_or_si128(HighGt, _mm_and_si128(HighEq, LowGt));
}

LR_ALWAYS_INLINE void joinMax(uint64_t *A, const uint64_t *B,
                              uint32_t Words) {
  for (uint32_t I = 0; I < Words; I += 2) {
    __m128i Va = _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + I));
    __m128i Vb = _mm_loadu_si128(reinterpret_cast<const __m128i *>(B + I));
    __m128i TakeB = gtEpu64(Vb, Va);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(A + I),
                     _mm_or_si128(_mm_and_si128(TakeB, Vb),
                                  _mm_andnot_si128(TakeB, Va)));
  }
}

LR_ALWAYS_INLINE bool anyLess(const uint64_t *A, const uint64_t *B,
                              uint32_t Words) {
  for (uint32_t I = 0; I < Words; I += 2) {
    __m128i Va = _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + I));
    __m128i Vb = _mm_loadu_si128(reinterpret_cast<const __m128i *>(B + I));
    if (_mm_movemask_epi8(gtEpu64(Vb, Va)) != 0)
      return true;
  }
  return false;
}

LR_ALWAYS_INLINE bool anyNonZero(const uint64_t *A, uint32_t Words) {
  __m128i Acc = _mm_setzero_si128();
  for (uint32_t I = 0; I < Words; I += 2)
    Acc = _mm_or_si128(
        Acc, _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + I)));
  return _mm_movemask_epi8(_mm_cmpeq_epi32(Acc, _mm_setzero_si128())) !=
         0xffff;
}

LR_ALWAYS_INLINE bool allEqual(const uint64_t *A, const uint64_t *B,
                               uint32_t Words) {
  for (uint32_t I = 0; I < Words; I += 2) {
    __m128i Va = _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + I));
    __m128i Vb = _mm_loadu_si128(reinterpret_cast<const __m128i *>(B + I));
    if (_mm_movemask_epi8(_mm_cmpeq_epi32(Va, Vb)) != 0xffff)
      return false;
  }
  return true;
}

#else

LR_ALWAYS_INLINE void joinMax(uint64_t *A, const uint64_t *B,
                              uint32_t Words) {
  for (uint32_t I = 0; I != Words; ++I)
    A[I] = std::max(A[I], B[I]);
}

LR_ALWAYS_INLINE bool anyLess(const uint64_t *A, const uint64_t *B,
                              uint32_t Words) {
  for (uint32_t I = 0; I != Words; ++I)
    if (A[I] < B[I])
      return true;
  return false;
}

LR_ALWAYS_INLINE bool anyNonZero(const uint64_t *A, uint32_t Words) {
  for (uint32_t I = 0; I != Words; ++I)
    if (A[I] != 0)
      return true;
  return false;
}

LR_ALWAYS_INLINE bool allEqual(const uint64_t *A, const uint64_t *B,
                               uint32_t Words) {
  return std::memcmp(A, B, Words * sizeof(uint64_t)) == 0;
}

#endif

} // namespace vcsimd

/// A growable vector clock over dense thread ids.
class VectorClock {
public:
  /// Components stored inside the object itself; one SIMD block, and
  /// enough that the common <= 4-thread clock never heap-allocates.
  static constexpr uint32_t InlineCapacity = 4;

  VectorClock() = default;

  VectorClock(const VectorClock &Other) { copyFrom(Other); }

  VectorClock(VectorClock &&Other) noexcept { moveFrom(Other); }

  VectorClock &operator=(const VectorClock &Other) {
    if (this != &Other) {
      assignFrom(Other);
    }
    return *this;
  }

  VectorClock &operator=(VectorClock &&Other) noexcept {
    if (this != &Other) {
      releaseHeap();
      moveFrom(Other);
    }
    return *this;
  }

  ~VectorClock() { releaseHeap(); }

  /// Component for thread \p T (zero if never set).
  uint64_t get(ThreadId T) const { return T < Sz ? data()[T] : 0; }

  /// Sets the component for thread \p T.
  void set(ThreadId T, uint64_t V) {
    ensure(T + 1);
    data()[T] = V;
  }

  /// Increments the component for thread \p T. Single pass: one bounds
  /// check and one in-place increment (no get-then-set round trip).
  void tick(ThreadId T) {
    ensure(T + 1);
    ++data()[T];
  }

  /// Pointwise maximum with \p Other. Trailing components of the shorter
  /// clock read as zero.
  void joinWith(const VectorClock &Other) {
    if (Other.Sz == 0)
      return;
    ensure(Other.Sz);
    // Both buffers hold >= roundUp4(Other.Sz) words and the slack beyond
    // each logical size is zero, so whole SIMD blocks are exact:
    // max(x, 0) == x keeps our slack zeroed.
    vcsimd::joinMax(data(), Other.data(), roundUpBlock(Other.Sz));
  }

  /// True if every component of this clock is >= the corresponding
  /// component of \p Other (i.e. Other happened-before-or-equals this).
  bool dominates(const VectorClock &Other) const {
    if (Other.Sz == 0)
      return true;
    const uint32_t Common = roundUpBlock(std::min(Sz, Other.Sz));
    if (vcsimd::anyLess(data(), Other.data(), Common))
      return false;
    // Components of Other beyond our allocation read as zero on our
    // side, so any nonzero one there breaks dominance. Other's slack is
    // zero, so whole blocks are safe to scan.
    const uint32_t OtherWords = roundUpBlock(Other.Sz);
    if (OtherWords > Common &&
        vcsimd::anyNonZero(Other.data() + Common, OtherWords - Common))
      return false;
    return true;
  }

  /// Number of allocated components (trailing zeros may be omitted).
  size_t size() const { return Sz; }

  bool operator==(const VectorClock &Other) const {
    const uint32_t Common = roundUpBlock(std::min(Sz, Other.Sz));
    if (!vcsimd::allEqual(data(), Other.data(), Common))
      return false;
    // The longer clock's surplus must be all zero (trailing explicit
    // zeros equal omitted components).
    const VectorClock &Longer = Sz >= Other.Sz ? *this : Other;
    const uint32_t LongWords = roundUpBlock(Longer.Sz);
    return LongWords == Common ||
           !vcsimd::anyNonZero(Longer.data() + Common, LongWords - Common);
  }

  /// True when the components live in the object itself (no heap
  /// allocation happened). Exposed for tests.
  bool isInline() const { return Cap == InlineCapacity; }

  /// Debug rendering like "[3, 0, 7]".
  std::string str() const;

private:
  /// Rounds \p N up to a whole SIMD block (multiple of 4 words). Every
  /// buffer capacity is a multiple of 4, so rounded spans never read
  /// out of bounds.
  static constexpr uint32_t roundUpBlock(uint32_t N) {
    return (N + 3u) & ~3u;
  }

  uint64_t *data() { return Cap == InlineCapacity ? Inline : Heap; }
  const uint64_t *data() const {
    return Cap == InlineCapacity ? Inline : Heap;
  }

  /// Grows the logical size to at least \p N, keeping the zeroed-slack
  /// invariant (all words in [Sz, Cap) are zero).
  LR_ALWAYS_INLINE void ensure(uint32_t N) {
    if (LR_LIKELY(N <= Sz))
      return;
    if (LR_UNLIKELY(N > Cap))
      grow(N);
    Sz = N;
  }

  void grow(uint32_t N); // Out of line: the rare reallocation slow path.

  void releaseHeap() {
    if (Cap != InlineCapacity)
      delete[] Heap;
  }

  /// Initializes *this (assumed raw/inline-empty) from \p Other.
  void copyFrom(const VectorClock &Other) {
    if (Other.Cap == InlineCapacity) {
      std::memcpy(Inline, Other.Inline, sizeof(Inline));
    } else {
      Heap = new uint64_t[Other.Cap];
      Cap = Other.Cap;
      std::memcpy(Heap, Other.Heap, Other.Cap * sizeof(uint64_t));
    }
    Sz = Other.Sz;
  }

  /// Copy assignment into a possibly-allocated *this, reusing the
  /// existing buffer when it is large enough.
  void assignFrom(const VectorClock &Other) {
    if (Other.Sz <= Cap) {
      uint64_t *D = data();
      std::memcpy(D, Other.data(), Other.Sz * sizeof(uint64_t));
      if (Sz > Other.Sz) // Re-zero our surplus to keep the invariant.
        std::memset(D + Other.Sz, 0, (Sz - Other.Sz) * sizeof(uint64_t));
      Sz = Other.Sz;
      return;
    }
    releaseHeap();
    Cap = InlineCapacity;
    copyFrom(Other);
  }

  /// Initializes *this (assumed raw) by stealing \p Other's storage.
  /// Leaves \p Other valid, empty, and inline.
  void moveFrom(VectorClock &Other) noexcept {
    if (Other.Cap == InlineCapacity) {
      std::memcpy(Inline, Other.Inline, sizeof(Inline));
      Cap = InlineCapacity;
    } else {
      Heap = Other.Heap;
      Cap = Other.Cap;
    }
    Sz = Other.Sz;
    Other.Cap = InlineCapacity;
    Other.Sz = 0;
    std::memset(Other.Inline, 0, sizeof(Other.Inline));
  }

  uint32_t Sz = 0;
  uint32_t Cap = InlineCapacity;
  union {
    uint64_t Inline[InlineCapacity] = {0, 0, 0, 0};
    uint64_t *Heap;
  };
};

} // namespace literace

#endif // LITERACE_DETECTOR_VECTORCLOCK_H
