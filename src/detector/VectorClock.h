//===-- detector/VectorClock.h - Vector clocks ------------------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vector clocks for happens-before tracking (§2.1). Components are
/// indexed by dense ThreadId; a clock grows on demand and missing
/// components read as zero.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_DETECTOR_VECTORCLOCK_H
#define LITERACE_DETECTOR_VECTORCLOCK_H

#include "runtime/Ids.h"

#include <cstdint>
#include <string>
#include <vector>

namespace literace {

/// A growable vector clock over dense thread ids.
class VectorClock {
public:
  VectorClock() = default;

  /// Component for thread \p T (zero if never set).
  uint64_t get(ThreadId T) const {
    return T < Clocks.size() ? Clocks[T] : 0;
  }

  /// Sets the component for thread \p T.
  void set(ThreadId T, uint64_t V);

  /// Increments the component for thread \p T.
  void tick(ThreadId T) { set(T, get(T) + 1); }

  /// Pointwise maximum with \p Other.
  void joinWith(const VectorClock &Other);

  /// True if every component of this clock is >= the corresponding
  /// component of \p Other (i.e. Other happened-before-or-equals this).
  bool dominates(const VectorClock &Other) const;

  /// Number of allocated components (trailing zeros may be omitted).
  size_t size() const { return Clocks.size(); }

  bool operator==(const VectorClock &Other) const;

  /// Debug rendering like "[3, 0, 7]".
  std::string str() const;

private:
  std::vector<uint64_t> Clocks;
};

} // namespace literace

#endif // LITERACE_DETECTOR_VECTORCLOCK_H
