//===-- detector/FastTrackDetector.h - Epoch-optimized HB -----*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FastTrack-style happens-before detector (Flanagan & Freund, PLDI
/// 2009 — the same conference as LiteRace; §6 discusses the vector-clock
/// cost it addresses). Where HBDetector keeps per-thread last-access maps
/// per address, FastTrack observes that most variables are accessed in
/// ways that need only a single epoch (thread, clock):
///
///   - the last write epoch suffices for write checks, because writes to
///     a data-race-free variable are totally ordered;
///   - reads need a full per-thread view only while a variable is read
///     shared; an exclusive or ordered read keeps a single epoch.
///
/// The result detects a race on an address if and only if HBDetector does
/// (the equivalence is exercised by the test suite), while doing O(1)
/// work for the overwhelmingly common access patterns. Reported pc pairs
/// can differ: both detectors report *a* witness pair per racy address,
/// not all pairs.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_DETECTOR_FASTTRACKDETECTOR_H
#define LITERACE_DETECTOR_FASTTRACKDETECTOR_H

#include "detector/RaceReport.h"
#include "detector/Replay.h"
#include "detector/VectorClock.h"

#include <unordered_map>
#include <vector>

namespace literace {

/// Epoch-based happens-before detector over replayed event streams.
class FastTrackDetector : public TraceConsumer {
public:
  explicit FastTrackDetector(RaceReport &Report);

  void onEvent(const EventRecord &R) override;

  /// Coverage gap: installs the same conservative ordering barrier as
  /// HBDetector::onCoverageGap(), so both detectors stay equivalent on
  /// salvaged traces.
  void onCoverageGap() override;

  /// Number of coverage gaps barriered so far.
  uint64_t coverageGaps() const { return CoverageGaps; }

  /// Number of addresses whose read state was ever promoted to a full
  /// per-thread view (the slow path; exposed for tests and benches).
  uint64_t readSharePromotions() const { return Promotions; }

  uint64_t memoryEventsProcessed() const { return MemoryEvents; }

private:
  /// A (thread, clock) pair plus the access site for reporting. Clock 0
  /// means "none".
  struct Epoch {
    ThreadId Tid = 0;
    uint64_t Clock = 0;
    Pc Site = 0;
  };

  struct AddressState {
    Epoch Write;
    /// Exclusive/ordered read epoch; unused once SharedRead.
    Epoch Read;
    bool SharedRead = false;
    /// Per-thread read epochs while read shared.
    std::vector<Epoch> ReadShared;
  };

  VectorClock &clockOf(ThreadId T);
  void acquire(ThreadId T, SyncVar S);
  void release(ThreadId T, SyncVar S);
  void onRead(const EventRecord &R);
  void onWrite(const EventRecord &R);
  void report(const Epoch &Old, const EventRecord &New, bool OldIsWrite);

  RaceReport &Report;
  std::vector<VectorClock> ThreadClocks;
  std::unordered_map<SyncVar, VectorClock> SyncClocks;
  std::unordered_map<uint64_t, AddressState> Shadow;
  /// See HBDetector::GapBarrier.
  VectorClock GapBarrier;
  uint64_t CoverageGaps = 0;
  uint64_t Promotions = 0;
  uint64_t MemoryEvents = 0;
};

/// Convenience wrapper mirroring detectRaces().
bool detectRacesFastTrack(const Trace &T, RaceReport &Report,
                          const ReplayOptions &Options = ReplayOptions());

} // namespace literace

#endif // LITERACE_DETECTOR_FASTTRACKDETECTOR_H
