//===-- detector/FastTrackDetector.h - Epoch-optimized HB -----*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FastTrack-style happens-before detector (Flanagan & Freund, PLDI
/// 2009 — the same conference as LiteRace; §6 discusses the vector-clock
/// cost it addresses). Where HBDetector keeps per-thread last-access maps
/// per address, FastTrack observes that most variables are accessed in
/// ways that need only a single epoch (thread, clock):
///
///   - the last write epoch suffices for write checks, because writes to
///     a data-race-free variable are totally ordered;
///   - reads need a full per-thread view only while a variable is read
///     shared; an exclusive or ordered read keeps a single epoch.
///
/// The result detects a race on an address if and only if HBDetector does
/// (the equivalence is exercised by the test suite), while doing O(1)
/// work for the overwhelmingly common access patterns. Reported pc pairs
/// can differ: both detectors report *a* witness pair per racy address,
/// not all pairs.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_DETECTOR_FASTTRACKDETECTOR_H
#define LITERACE_DETECTOR_FASTTRACKDETECTOR_H

#include "detector/RaceReport.h"
#include "detector/Replay.h"
#include "detector/VectorClock.h"
#include "support/Hashing.h"
#include "support/ShadowMap.h"
#include "support/SmallVector.h"

#include <unordered_map>
#include <vector>

namespace literace {

/// Epoch-based happens-before detector over replayed event streams.
/// `final` so replayTraceWith devirtualizes onEvent (see HBDetector).
class FastTrackDetector final : public TraceConsumer {
public:
  explicit FastTrackDetector(RaceReport &Report);

  void onEvent(const EventRecord &R) override;

  /// Coverage gap: installs the same conservative ordering barrier as
  /// HBDetector::onCoverageGap(), so both detectors stay equivalent on
  /// salvaged traces.
  void onCoverageGap() override;

  /// Number of coverage gaps barriered so far.
  uint64_t coverageGaps() const { return CoverageGaps; }

  /// Number of addresses whose read state was ever promoted to a full
  /// per-thread view (the slow path; exposed for tests and benches).
  uint64_t readSharePromotions() const { return Promotions; }

  /// Number of read-shared address states demoted back to a single-epoch
  /// representation by a write (W_x := E_t supersedes the read set).
  /// Promotions and demotions together account for every transition of
  /// the read representation, so promotions - demotions is the number of
  /// addresses currently read shared.
  uint64_t readShareDemotions() const { return Demotions; }

  uint64_t memoryEventsProcessed() const { return MemoryEvents; }

  /// Batch entry point used by replayTraceWith (see
  /// HBDetector::onMemoryRun): consumes the maximal leading run of
  /// memory events with the clock and epoch hoisted out of the loop,
  /// returning how many records it took.
  size_t onMemoryRun(const EventRecord *Records, size_t MaxCount);

private:
  /// A (thread, clock) pair plus the access site for reporting. Clock 0
  /// means "none".
  struct Epoch {
    ThreadId Tid = 0;
    uint64_t Clock = 0;
    Pc Site = 0;
  };

  struct AddressState {
    Epoch Write;
    /// Exclusive/ordered read epoch; unused once SharedRead.
    Epoch Read;
    bool SharedRead = false;
    /// Per-thread read epochs while read shared, indexed by ThreadId.
    /// Two entries inline: a just-promoted address holds exactly the two
    /// threads whose concurrent reads forced the promotion.
    SmallVector<Epoch, 2> ReadShared;
  };

  VectorClock &clockOf(ThreadId T);
  void acquire(ThreadId T, SyncVar S);
  void release(ThreadId T, SyncVar S);
  void onRead(const EventRecord &R, const VectorClock &Clock,
              uint64_t OwnEpoch);
  void onWrite(const EventRecord &R, const VectorClock &Clock,
               uint64_t OwnEpoch);
  void report(const Epoch &Old, const EventRecord &New, bool OldIsWrite);

  RaceReport &Report;
  std::vector<VectorClock> ThreadClocks;
  std::unordered_map<SyncVar, VectorClock, Mix64Hash> SyncClocks;
  ShadowMap<AddressState> Shadow;
  /// See HBDetector::GapBarrier.
  VectorClock GapBarrier;
  uint64_t CoverageGaps = 0;
  uint64_t Promotions = 0;
  uint64_t Demotions = 0;
  uint64_t MemoryEvents = 0;
};

/// Convenience wrapper mirroring detectRaces().
bool detectRacesFastTrack(const Trace &T, RaceReport &Report,
                          const ReplayOptions &Options = ReplayOptions());

} // namespace literace

#endif // LITERACE_DETECTOR_FASTTRACKDETECTOR_H
