//===-- detector/OnlineDetector.cpp - Concurrent detection ---------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/OnlineDetector.h"

#include "telemetry/Metrics.h"

#include <algorithm>

using namespace literace;

OnlineDetector::OnlineDetector(unsigned NumTimestampCounters,
                               RaceReport &Report, ReplayOptions Options,
                               DetectorOptions Detector)
    : Scheduler(NumTimestampCounters, Options), Options(Options),
      Report(Report) {
  if (Detector.Shards > 1)
    Sharded = std::make_unique<ShardedHBDetector>(Detector);
  else
    Serial = std::make_unique<HBDetector>(Report);
  Worker = std::thread([this] { workerLoop(); });
}

OnlineDetector::~OnlineDetector() { finish(); }

void OnlineDetector::writeChunk(ThreadId Tid, const EventRecord *Records,
                                size_t Count) {
  addBytes(Count * sizeof(EventRecord));
  {
    std::lock_guard<std::mutex> Guard(Lock);
    Queue.emplace_back(Tid,
                       std::vector<EventRecord>(Records, Records + Count));
    ChunkQueueHw = std::max(ChunkQueueHw, Queue.size());
    ++Chunks;
  }
  Ready.notify_one();
}

size_t OnlineDetector::chunkQueueHighWater() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return ChunkQueueHw;
}

uint64_t OnlineDetector::chunksReceived() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Chunks;
}

uint64_t OnlineDetector::timestampGaps() const {
  return Scheduler.timestampGaps();
}

bool OnlineDetector::finish() {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    if (Done && !Worker.joinable())
      return Consistent;
    Done = true;
  }
  Ready.notify_one();
  if (Worker.joinable())
    Worker.join();
  // With gap tolerance, events blocked on timestamps that never arrived
  // (the producer crashed, or segments were lost) are drained past
  // coverage gaps now that end-of-stream is certain. The worker is
  // joined, so the scheduler and detectors are safe to touch here.
  if (Options.AllowTimestampGaps && !Scheduler.fullyDrained())
    Processed.fetch_add(Scheduler.drainAllowingGaps(consumer()),
                        std::memory_order_relaxed);
  // The sharded fan-out has its own workers to stop and a merge to run.
  if (Sharded)
    Sharded->finish(Report);
  // Anything still pending means some timestamp never arrived: the stream
  // was inconsistent (or truncated).
  {
    std::lock_guard<std::mutex> Guard(Lock);
    Consistent = Scheduler.fullyDrained();
  }
  // Online-plane telemetry, folded once per detector (the first finish()
  // to get here joined the worker, so the counts are final).
  if (telemetry::MetricsRegistry *M = telemetry::resolveRegistry(nullptr)) {
    telemetry::ThreadSlab &Slab = M->threadSlab();
    Slab.add(M->counter("online.events"), eventsProcessed());
    Slab.add(M->counter("online.chunks"), chunksReceived());
    Slab.gaugeMax(M->gaugeMax("online.chunk_queue_highwater"),
                  chunkQueueHighWater());
  }
  return Consistent;
}

void OnlineDetector::workerLoop() {
  std::vector<std::pair<ThreadId, std::vector<EventRecord>>> Batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> Guard(Lock);
      Ready.wait(Guard, [&] { return !Queue.empty() || Done; });
      Batch.swap(Queue);
      if (Batch.empty() && Done)
        return;
    }
    for (auto &Chunk : Batch)
      Scheduler.addEvents(Chunk.first, Chunk.second.data(),
                          Chunk.second.size());
    Batch.clear();
    Processed.fetch_add(Scheduler.drain(consumer()),
                        std::memory_order_relaxed);
  }
}
