//===-- detector/OnlineDetector.cpp - Concurrent detection ---------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/OnlineDetector.h"

using namespace literace;

OnlineDetector::OnlineDetector(unsigned NumTimestampCounters,
                               RaceReport &Report, ReplayOptions Options)
    : Scheduler(NumTimestampCounters, Options), Detector(Report),
      Worker([this] { workerLoop(); }) {}

OnlineDetector::~OnlineDetector() { finish(); }

void OnlineDetector::writeChunk(ThreadId Tid, const EventRecord *Records,
                                size_t Count) {
  addBytes(Count * sizeof(EventRecord));
  {
    std::lock_guard<std::mutex> Guard(Lock);
    Queue.emplace_back(Tid,
                       std::vector<EventRecord>(Records, Records + Count));
  }
  Ready.notify_one();
}

bool OnlineDetector::finish() {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    if (Done && !Worker.joinable())
      return Consistent;
    Done = true;
  }
  Ready.notify_one();
  if (Worker.joinable())
    Worker.join();
  // Anything still pending means some timestamp never arrived: the stream
  // was inconsistent (or truncated).
  std::lock_guard<std::mutex> Guard(Lock);
  Consistent = Scheduler.fullyDrained();
  return Consistent;
}

void OnlineDetector::workerLoop() {
  std::vector<std::pair<ThreadId, std::vector<EventRecord>>> Batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> Guard(Lock);
      Ready.wait(Guard, [&] { return !Queue.empty() || Done; });
      Batch.swap(Queue);
      if (Batch.empty() && Done)
        return;
    }
    for (auto &Chunk : Batch)
      Scheduler.addEvents(Chunk.first, Chunk.second.data(),
                          Chunk.second.size());
    Batch.clear();
    Processed.fetch_add(Scheduler.drain(Detector),
                        std::memory_order_relaxed);
  }
}
