//===-- detector/OnlineDetector.h - Concurrent detection -------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Online race detection (§4.4 / §7): the paper logs to disk and analyzes
/// offline, but notes that the same stream could be consumed by a detector
/// running concurrently on a spare core. OnlineDetector implements that: it
/// is a LogSink, so a Runtime can write straight into it; a worker thread
/// drains arriving chunks through the incremental ReplayScheduler into an
/// HBDetector while the instrumented program keeps running.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_DETECTOR_ONLINEDETECTOR_H
#define LITERACE_DETECTOR_ONLINEDETECTOR_H

#include "detector/HBDetector.h"
#include "detector/Replay.h"
#include "detector/ShardedDetector.h"
#include "runtime/EventLog.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace literace {

/// A LogSink that performs happens-before detection concurrently with the
/// instrumented execution.
class OnlineDetector : public LogSink {
public:
  /// \p NumTimestampCounters must match the producing Runtime's
  /// configuration. Races accumulate into \p Report; do not read it until
  /// finish() has returned. With Detector.Shards > 1 the drain fans out
  /// to parallel per-shard analysis workers (see ShardedDetector.h).
  OnlineDetector(unsigned NumTimestampCounters, RaceReport &Report,
                 ReplayOptions Options = ReplayOptions(),
                 DetectorOptions Detector = DetectorOptions());
  ~OnlineDetector() override;

  void writeChunk(ThreadId Tid, const EventRecord *Records,
                  size_t Count) override;

  /// Signals end-of-stream, waits for the worker to process everything,
  /// and returns true if the whole stream was consistent and fully
  /// processed. With ReplayOptions::AllowTimestampGaps, events blocked on
  /// timestamps that never arrived (a crashed producer) are drained past
  /// coverage gaps instead of failing, and finish() returns true as long
  /// as everything was delivered. Idempotent.
  bool finish();

  /// Timestamp gaps skipped during the final drain (0 unless
  /// AllowTimestampGaps was set and the stream had holes).
  uint64_t timestampGaps() const;

  /// Events processed so far (approximate while running).
  uint64_t eventsProcessed() const {
    return Processed.load(std::memory_order_relaxed);
  }

  /// Peak number of chunks waiting in the hand-off queue — how far the
  /// drain worker fell behind the instrumented producers.
  size_t chunkQueueHighWater() const;

  /// Chunks accepted from producers so far.
  uint64_t chunksReceived() const;

private:
  void workerLoop();

  /// The consumer the drain worker feeds: the serial detector or the
  /// sharded fan-out (exactly one is non-null).
  TraceConsumer &consumer() {
    return Sharded ? static_cast<TraceConsumer &>(*Sharded)
                   : static_cast<TraceConsumer &>(*Serial);
  }

  ReplayScheduler Scheduler;
  ReplayOptions Options;
  RaceReport &Report;
  std::unique_ptr<HBDetector> Serial;
  std::unique_ptr<ShardedHBDetector> Sharded;

  mutable std::mutex Lock;
  std::condition_variable Ready;
  std::vector<std::pair<ThreadId, std::vector<EventRecord>>> Queue;
  size_t ChunkQueueHw = 0; // guarded by Lock
  uint64_t Chunks = 0;     // guarded by Lock
  bool Done = false;
  bool Consistent = true;
  std::atomic<uint64_t> Processed{0};
  std::thread Worker;
};

} // namespace literace

#endif // LITERACE_DETECTOR_ONLINEDETECTOR_H
