//===-- detector/LocksetDetector.h - Eraser-style lockset -----*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An Eraser-style lockset detector (Savage et al., the paper's [38]).
/// Included as the comparison baseline the paper discusses in §2 and §4.4:
/// lockset analysis can predict races that did not manifest, but it only
/// understands mutual-exclusion locks, so executions synchronized with
/// events, fork/join, or atomics produce FALSE positives — which is exactly
/// why LiteRace uses happens-before detection. The test suite demonstrates
/// this difference directly.
///
/// Implements the classic state machine: Virgin → Exclusive(owner) →
/// Shared (read by a second thread) → Shared-Modified (written by a second
/// thread). The candidate set C(v) is refined on every access after the
/// exclusive phase; a report is issued when C(v) becomes empty in the
/// Shared-Modified state.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_DETECTOR_LOCKSETDETECTOR_H
#define LITERACE_DETECTOR_LOCKSETDETECTOR_H

#include "detector/RaceReport.h"
#include "detector/Replay.h"
#include "support/ShadowMap.h"

#include <set>
#include <vector>

namespace literace {

/// Lockset-based race detector over replayed event streams.
/// `final` so replayTraceWith devirtualizes onEvent (see HBDetector).
class LocksetDetector final : public TraceConsumer {
public:
  /// Warnings (potential races) are recorded into \p Report; the "first"
  /// site of the sighting is the access that emptied the lockset.
  explicit LocksetDetector(RaceReport &Report);

  void onEvent(const EventRecord &R) override;

  /// Coverage gap: acquire/release events may be missing from here on, so
  /// candidate locksets computed across the gap would be meaningless (a
  /// dropped acquire would spuriously empty C(v)). The detector restarts
  /// its per-address state machines; already-issued warnings stand.
  void onCoverageGap() override;

  /// Number of coverage gaps observed.
  uint64_t coverageGaps() const { return CoverageGaps; }

  /// Addresses currently flagged (lockset empty in Shared-Modified).
  size_t numFlaggedAddresses() const { return Flagged.size(); }

private:
  enum class AddressStateKind : uint8_t {
    Virgin,
    Exclusive,
    Shared,
    SharedModified,
  };

  struct AddressState {
    AddressStateKind Kind = AddressStateKind::Virgin;
    ThreadId Owner = 0;
    Pc LastSite = 0;
    /// Candidate lockset C(v); meaningful after the Exclusive phase.
    std::set<SyncVar> Candidates;
    bool Reported = false;
  };

  void onMemory(const EventRecord &R);
  const std::set<SyncVar> &locksHeld(ThreadId T);

  RaceReport &Report;
  std::vector<std::set<SyncVar>> LocksHeldByThread;
  ShadowMap<AddressState> States;
  std::set<uint64_t> Flagged;
  uint64_t CoverageGaps = 0;
};

/// Convenience wrapper mirroring detectRaces() for the lockset baseline.
bool detectLocksetViolations(const Trace &T, RaceReport &Report,
                             const ReplayOptions &Options = ReplayOptions());

} // namespace literace

#endif // LITERACE_DETECTOR_LOCKSETDETECTOR_H
