//===-- detector/ShardedDetector.cpp - Parallel sharded detection --------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/ShardedDetector.h"

#include "support/Hashing.h"

#include <cassert>

using namespace literace;

unsigned literace::shardOfAddress(uint64_t Addr, unsigned Shards) {
  assert(Shards != 0 && "need at least one shard");
  return static_cast<unsigned>(mix64(Addr) % Shards);
}

ShardedHBDetector::ShardedHBDetector(const DetectorOptions &Options) {
  const unsigned N = Options.Shards == 0 ? 1 : Options.Shards;
  Shards.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Shards.push_back(std::make_unique<Shard>(Options.ShardQueueCapacity));
  // Spawn after the vector is fully built: workers only touch their own
  // shard, but keeping construction complete first is cheap insurance.
  for (auto &S : Shards) {
    Shard *Mine = S.get();
    S->Worker = std::thread([this, Mine] { workerLoop(*Mine); });
  }
}

ShardedHBDetector::~ShardedHBDetector() {
  // finish() may not have been called (e.g. replay failed and the caller
  // bailed); make sure the workers terminate either way.
  for (auto &S : Shards)
    S->Queue.close();
  for (auto &S : Shards)
    if (S->Worker.joinable())
      S->Worker.join();
}

void ShardedHBDetector::onEvent(const EventRecord &R) {
  const uint64_t Seq = NextSeq++;
  if (isMemoryKind(R.Kind)) {
    Shards[shardOfAddress(R.Addr, numShards())]->Queue.push({R, Seq});
    return;
  }
  // Sync and lifetime events carry the happens-before structure every
  // shard needs; broadcast them so each worker's clocks stay exact.
  for (auto &S : Shards)
    S->Queue.push({R, Seq});
}

void ShardedHBDetector::workerLoop(Shard &S) {
  Item I;
  while (S.Queue.pop(I))
    S.Detector.onEventAt(I.Record, I.Seq);
}

void ShardedHBDetector::finish(RaceReport &Report) {
  for (auto &S : Shards)
    S->Queue.close();
  for (auto &S : Shards)
    if (S->Worker.joinable())
      S->Worker.join();
  if (Finished)
    return;
  Finished = true;
  // The per-key first-occurrence bookkeeping makes this independent of
  // merge order; iterating in shard order keeps it obviously so.
  for (auto &S : Shards)
    Report.merge(S->Local);
}

uint64_t ShardedHBDetector::memoryEventsProcessed() const {
  uint64_t Total = 0;
  for (const auto &S : Shards)
    Total += S->Detector.memoryEventsProcessed();
  return Total;
}

uint64_t ShardedHBDetector::syncEventsProcessed() const {
  return Shards.empty() ? 0 : Shards.front()->Detector.syncEventsProcessed();
}

bool literace::detectRacesSharded(const Trace &T, RaceReport &Report,
                                  const DetectorOptions &Options,
                                  const ReplayOptions &Replay) {
  ShardedHBDetector Detector(Options);
  bool Ok = replayTrace(T, Detector, Replay);
  Detector.finish(Report);
  return Ok;
}
