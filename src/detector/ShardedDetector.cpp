//===-- detector/ShardedDetector.cpp - Parallel sharded detection --------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/ShardedDetector.h"

#include "support/Hashing.h"
#include "support/Timer.h"
#include "telemetry/Metrics.h"
#include "telemetry/Timeline.h"

#include <algorithm>
#include <cassert>

using namespace literace;

unsigned literace::shardOfAddress(uint64_t Addr, unsigned Shards) {
  assert(Shards != 0 && "need at least one shard");
  return static_cast<unsigned>(mix64(Addr) % Shards);
}

ShardedHBDetector::ShardedHBDetector(const DetectorOptions &Options) {
  const unsigned N = Options.Shards == 0 ? 1 : Options.Shards;
  Shards.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Shards.push_back(std::make_unique<Shard>(I, Options.ShardQueueCapacity));
  // Spawn after the vector is fully built: workers only touch their own
  // shard, but keeping construction complete first is cheap insurance.
  for (auto &S : Shards) {
    Shard *Mine = S.get();
    S->Worker = std::thread([this, Mine] { workerLoop(*Mine); });
  }
}

ShardedHBDetector::~ShardedHBDetector() {
  // finish() may not have been called (e.g. replay failed and the caller
  // bailed); make sure the workers terminate either way.
  for (auto &S : Shards)
    S->Queue.close();
  for (auto &S : Shards)
    if (S->Worker.joinable())
      S->Worker.join();
}

void ShardedHBDetector::onEvent(const EventRecord &R) {
  const uint64_t Seq = NextSeq++;
  if (isMemoryKind(R.Kind)) {
    Shards[shardOfAddress(R.Addr, numShards())]->Queue.push({R, Seq});
    return;
  }
  // Sync and lifetime events carry the happens-before structure every
  // shard needs; broadcast them so each worker's clocks stay exact.
  for (auto &S : Shards)
    S->Queue.push({R, Seq, false});
}

void ShardedHBDetector::onCoverageGap() {
  // Gap markers consume no sequence number: the serial detector does not
  // number gaps either, so per-shard sighting indices stay identical.
  for (auto &S : Shards)
    S->Queue.push({EventRecord{}, NextSeq, true});
}

void ShardedHBDetector::workerLoop(Shard &S) {
  telemetry::TraceRecorder &Rec = telemetry::TraceRecorder::global();
  const uint64_t StartUs = Rec.enabled() ? Rec.nowUs() : 0;
  WallTimer Timer;
  Item I;
  while (S.Queue.pop(I)) {
    if (I.IsGap)
      S.Detector.onCoverageGap();
    else
      S.Detector.onEventAt(I.Record, I.Seq);
  }
  S.WorkerNs = Timer.nanoseconds();
  if (Rec.enabled())
    Rec.addSpan("shard worker", "detector.shard",
                telemetry::TimelinePidDetector, S.Index, StartUs,
                std::max<uint64_t>(S.WorkerNs / 1000, 1),
                {{"memory_events", S.Detector.memoryEventsProcessed()},
                 {"sync_events", S.Detector.syncEventsProcessed()}});
}

void ShardedHBDetector::finish(RaceReport &Report) {
  for (auto &S : Shards)
    S->Queue.close();
  for (auto &S : Shards)
    if (S->Worker.joinable())
      S->Worker.join();
  if (Finished)
    return;
  Finished = true;
  telemetry::TraceRecorder &Rec = telemetry::TraceRecorder::global();
  const uint64_t MergeStartUs = Rec.enabled() ? Rec.nowUs() : 0;
  WallTimer MergeTimer;
  // The per-key first-occurrence bookkeeping makes this independent of
  // merge order; iterating in shard order keeps it obviously so.
  for (auto &S : Shards)
    Report.merge(S->Local);
  MergeNs = MergeTimer.nanoseconds();
  if (Rec.enabled())
    Rec.addSpan("merge shard reports", "detector.merge",
                telemetry::TimelinePidDetector, numShards(), MergeStartUs,
                std::max<uint64_t>(MergeNs / 1000, 1),
                {{"shards", numShards()}});
  publishTelemetry();
}

void ShardedHBDetector::publishTelemetry() {
  telemetry::MetricsRegistry *M = telemetry::resolveRegistry(nullptr);
  if (!M)
    return;
  telemetry::ThreadSlab &Slab = M->threadSlab();
  const telemetry::CounterId MemEvents =
      M->counter("detector.events.memory");
  const telemetry::CounterId SyncEvents = M->counter("detector.events.sync");
  const telemetry::CounterId ProdParks =
      M->counter("detector.queue.producer_parks");
  const telemetry::CounterId ConsParks =
      M->counter("detector.queue.consumer_parks");
  const telemetry::GaugeId QueueHw =
      M->gaugeMax("detector.queue.depth_highwater");
  const telemetry::HistogramId WorkerNs =
      M->histogram("detector.worker_ns");
  for (unsigned I = 0; I != numShards(); ++I) {
    const ShardTelemetry T = shardTelemetry(I);
    Slab.add(MemEvents, T.MemoryEvents);
    Slab.add(SyncEvents, T.SyncEvents);
    Slab.add(ProdParks, T.ProducerParks);
    Slab.add(ConsParks, T.ConsumerParks);
    Slab.gaugeMax(QueueHw, T.QueueDepthHighWater);
    Slab.record(WorkerNs, T.WorkerNs);
  }
  Slab.gaugeMax(M->gaugeMax("detector.shards"), numShards());
  Slab.record(M->histogram("detector.merge_ns"), MergeNs);
}

uint64_t ShardedHBDetector::memoryEventsProcessed() const {
  uint64_t Total = 0;
  for (const auto &S : Shards)
    Total += S->Detector.memoryEventsProcessed();
  return Total;
}

uint64_t ShardedHBDetector::syncEventsProcessed() const {
  return Shards.empty() ? 0 : Shards.front()->Detector.syncEventsProcessed();
}

ShardedHBDetector::ShardTelemetry
ShardedHBDetector::shardTelemetry(unsigned ShardIndex) const {
  assert(ShardIndex < Shards.size() && "shard index out of range");
  const Shard &S = *Shards[ShardIndex];
  const SpscRingStats Q = S.Queue.stats();
  ShardTelemetry T;
  T.MemoryEvents = S.Detector.memoryEventsProcessed();
  T.SyncEvents = S.Detector.syncEventsProcessed();
  T.QueueDepthHighWater = Q.DepthHighWater;
  T.ProducerParks = Q.ProducerParks;
  T.ConsumerParks = Q.ConsumerParks;
  T.WorkerNs = S.WorkerNs;
  return T;
}

bool literace::detectRacesSharded(const Trace &T, RaceReport &Report,
                                  const DetectorOptions &Options,
                                  const ReplayOptions &Replay) {
  ShardedHBDetector Detector(Options);
  bool Ok = replayTraceWith(T, Detector, Replay);
  Detector.finish(Report);
  return Ok;
}
