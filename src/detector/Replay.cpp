//===-- detector/Replay.cpp - Log replay scheduling ----------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/Replay.h"

#include "runtime/TimestampManager.h"

#include <cassert>

using namespace literace;

TraceConsumer::~TraceConsumer() = default;

namespace {

/// Returns true if \p R should be handed to the consumer under \p Options.
bool passesFilter(const EventRecord &R, const ReplayOptions &Options) {
  if (!isMemoryKind(R.Kind) || Options.SamplerSlot < 0)
    return true;
  return (R.Mask & (1u << Options.SamplerSlot)) != 0;
}

} // namespace

bool literace::replayTrace(const Trace &T, TraceConsumer &Consumer,
                           const ReplayOptions &Options) {
  const unsigned NumCounters = T.NumTimestampCounters;
  const size_t NumThreads = T.PerThread.size();
  std::vector<size_t> Cursor(NumThreads, 0);
  std::vector<uint64_t> NextTs(NumCounters, 1);

  size_t Remaining = T.totalEvents();
  bool Progress = true;
  while (Remaining > 0 && Progress) {
    Progress = false;
    for (size_t Tid = 0; Tid != NumThreads; ++Tid) {
      const auto &Stream = T.PerThread[Tid];
      size_t &C = Cursor[Tid];
      while (C < Stream.size()) {
        const EventRecord &R = Stream[C];
        if (isSyncKind(R.Kind)) {
          if (R.Ts == 0)
            return false; // Malformed: sync event without a timestamp.
          unsigned Counter = counterForSyncVar(R.Addr, NumCounters);
          if (R.Ts != NextTs[Counter]) {
            if (R.Ts < NextTs[Counter])
              return false; // Duplicate timestamp: inconsistent log.
            break;          // Not yet enabled; try another thread.
          }
          ++NextTs[Counter];
          Consumer.onEvent(R);
        } else if (passesFilter(R, Options)) {
          Consumer.onEvent(R);
        }
        ++C;
        --Remaining;
        Progress = true;
      }
    }
  }
  // If no thread could make progress, a timestamp is missing from the log
  // (e.g. a sync operation whose record was lost).
  return Remaining == 0;
}

ReplayScheduler::ReplayScheduler(unsigned NumTimestampCounters,
                                 ReplayOptions Options)
    : NumCounters(NumTimestampCounters), Options(Options),
      NextTs(NumTimestampCounters, 1) {}

void ReplayScheduler::addEvents(ThreadId Tid, const EventRecord *Records,
                                size_t Count) {
  if (Tid >= Streams.size())
    Streams.resize(Tid + 1);
  Streams[Tid].insert(Streams[Tid].end(), Records, Records + Count);
  Pending += Count;
}

size_t ReplayScheduler::drain(TraceConsumer &Consumer) {
  size_t Delivered = 0;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (auto &Stream : Streams) {
      while (!Stream.empty()) {
        const EventRecord &R = Stream.front();
        if (isSyncKind(R.Kind)) {
          assert(R.Ts != 0 && "sync event without timestamp");
          unsigned Counter = counterForSyncVar(R.Addr, NumCounters);
          if (R.Ts != NextTs[Counter])
            break; // Waits for earlier timestamps, possibly not yet added.
          ++NextTs[Counter];
          Consumer.onEvent(R);
        } else if (passesFilter(R, Options)) {
          Consumer.onEvent(R);
        }
        Stream.pop_front();
        --Pending;
        ++Delivered;
        Progress = true;
      }
    }
  }
  return Delivered;
}
