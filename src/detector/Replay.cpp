//===-- detector/Replay.cpp - Log replay scheduling ----------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/Replay.h"

#include <cassert>

using namespace literace;

TraceConsumer::~TraceConsumer() = default;

void TraceConsumer::onCoverageGap() {}

bool literace::replayTrace(const Trace &T, TraceConsumer &Consumer,
                           const ReplayOptions &Options) {
  // The base-class instantiation of the shared loop: one virtual call
  // per event. Detection wrappers use replayTraceWith<ConcreteDetector>
  // directly so the per-event dispatch inlines away.
  return replayTraceWith(T, Consumer, Options);
}

ReplayScheduler::ReplayScheduler(unsigned NumTimestampCounters,
                                 ReplayOptions Options)
    : NumCounters(NumTimestampCounters), Options(Options),
      NextTs(NumTimestampCounters, 1) {}

void ReplayScheduler::addEvents(ThreadId Tid, const EventRecord *Records,
                                size_t Count) {
  if (Tid >= Streams.size())
    Streams.resize(Tid + 1);
  Streams[Tid].insert(Streams[Tid].end(), Records, Records + Count);
  Pending += Count;
}

size_t ReplayScheduler::drainImpl(TraceConsumer &Consumer, bool AllowStale) {
  size_t Delivered = 0;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (auto &Stream : Streams) {
      while (!Stream.empty()) {
        const EventRecord &R = Stream.front();
        if (isSyncKind(R.Kind)) {
          if (R.Ts == 0) {
            // Salvage mode delivers timestamp-less sync events without a
            // constraint; incremental strict mode leaves them queued (the
            // stream is inconsistent and finish() will say so).
            if (!AllowStale)
              break;
            Consumer.onEvent(R);
          } else {
            unsigned Counter = counterForSyncVar(R.Addr, NumCounters);
            if (R.Ts == NextTs[Counter]) {
              ++NextTs[Counter];
              Consumer.onEvent(R);
            } else if (AllowStale && R.Ts < NextTs[Counter]) {
              // Counter was gap-advanced past this event; the gap
              // barrier already covers its ordering.
              Consumer.onEvent(R);
            } else {
              break; // Waits for timestamps possibly not yet added.
            }
          }
        } else if (replay_detail::passesFilter(R, Options)) {
          Consumer.onEvent(R);
        }
        Stream.pop_front();
        --Pending;
        ++Delivered;
        Progress = true;
      }
    }
  }
  return Delivered;
}

size_t ReplayScheduler::drain(TraceConsumer &Consumer) {
  return drainImpl(Consumer, /*AllowStale=*/false);
}

size_t ReplayScheduler::drainAllowingGaps(TraceConsumer &Consumer) {
  size_t Delivered = drainImpl(Consumer, /*AllowStale=*/true);
  while (Pending > 0) {
    // No more input is coming: whatever each stream is blocked on was
    // lost with a dropped segment. Skip the earliest gap and keep going,
    // through the helper shared with the batch replayTrace path.
    auto Skip = replay_detail::findEarliestBlockedEvent(
        [&](auto &&Visit) {
          for (const auto &Stream : Streams)
            if (!Stream.empty())
              Visit(Stream.front());
        },
        NextTs, NumCounters);
    if (!Skip)
      break; // Defensive; drainImpl(AllowStale) consumes everything else.
    NextTs[Skip->Counter] = Skip->Ts;
    ++Gaps;
    if (Options.OutTimestampGaps)
      ++*Options.OutTimestampGaps;
    Consumer.onCoverageGap();
    Delivered += drainImpl(Consumer, /*AllowStale=*/true);
  }
  return Delivered;
}
