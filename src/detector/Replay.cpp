//===-- detector/Replay.cpp - Log replay scheduling ----------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/Replay.h"

#include "runtime/TimestampManager.h"

#include <cassert>
#include <limits>
#include <optional>

using namespace literace;

TraceConsumer::~TraceConsumer() = default;

void TraceConsumer::onCoverageGap() {}

namespace {

/// Returns true if \p R should be handed to the consumer under \p Options.
bool passesFilter(const EventRecord &R, const ReplayOptions &Options) {
  if (!isMemoryKind(R.Kind) || Options.SamplerSlot < 0)
    return true;
  return (R.Mask & (1u << Options.SamplerSlot)) != 0;
}

/// The gap to skip when every stream is stalled: which counter to
/// advance, and to what timestamp.
struct GapSkip {
  unsigned Counter = 0;
  uint64_t Ts = 0;
};

/// Shared earliest-blocked-event scan used by both gap-tolerant replay
/// paths (batch replayTrace and incremental drainAllowingGaps), so their
/// skip decisions — and therefore the delivered event sequences — cannot
/// diverge. \p ForEachFront invokes its callback once per non-empty
/// stream with that stream's front record. A front only blocks replay if
/// it is a sync event with a real timestamp strictly ahead of its
/// counter; among those the smallest timestamp wins, which makes the
/// choice deterministic regardless of stream enumeration order (two
/// fronts with equal Ts on the same counter pick the same skip; equal Ts
/// on different counters cannot both be minimal more than once per
/// round, and the next round handles the other).
template <typename ForEachFrontFn>
std::optional<GapSkip>
findEarliestBlockedEvent(ForEachFrontFn &&ForEachFront,
                         const std::vector<uint64_t> &NextTs,
                         unsigned NumCounters) {
  GapSkip Best;
  Best.Ts = std::numeric_limits<uint64_t>::max();
  bool Found = false;
  ForEachFront([&](const EventRecord &R) {
    // Non-sync and timestamp-less fronts never block (gap-tolerant
    // drains deliver them unconditionally); a sync front at or behind
    // its counter is deliverable, not blocked.
    if (!isSyncKind(R.Kind) || R.Ts == 0)
      return;
    const unsigned Counter = counterForSyncVar(R.Addr, NumCounters);
    if (R.Ts > NextTs[Counter] && R.Ts < Best.Ts) {
      Best.Ts = R.Ts;
      Best.Counter = Counter;
      Found = true;
    }
  });
  if (!Found)
    return std::nullopt;
  return Best;
}

} // namespace

bool literace::replayTrace(const Trace &T, TraceConsumer &Consumer,
                           const ReplayOptions &Options) {
  const unsigned NumCounters = T.NumTimestampCounters;
  const size_t NumThreads = T.PerThread.size();
  std::vector<size_t> Cursor(NumThreads, 0);
  std::vector<uint64_t> NextTs(NumCounters, 1);

  size_t Remaining = T.totalEvents();
  while (Remaining > 0) {
    bool Progress = false;
    for (size_t Tid = 0; Tid != NumThreads; ++Tid) {
      const auto &Stream = T.PerThread[Tid];
      size_t &C = Cursor[Tid];
      while (C < Stream.size()) {
        const EventRecord &R = Stream[C];
        if (isSyncKind(R.Kind)) {
          if (R.Ts == 0) {
            // Malformed: sync event without a timestamp. A salvaged trace
            // is delivered without an ordering constraint (the gap
            // machinery keeps detectors conservative); a trusted one is
            // rejected.
            if (!Options.AllowTimestampGaps)
              return false;
            Consumer.onEvent(R);
          } else {
            unsigned Counter = counterForSyncVar(R.Addr, NumCounters);
            if (R.Ts < NextTs[Counter]) {
              // Duplicate (strict: inconsistent log) or an event whose
              // counter was gap-advanced past it; cross-gap order for
              // this counter is already conservatively barriered, so
              // deliver without touching the counter.
              if (!Options.AllowTimestampGaps)
                return false;
              Consumer.onEvent(R);
            } else if (R.Ts == NextTs[Counter]) {
              ++NextTs[Counter];
              Consumer.onEvent(R);
            } else {
              break; // Not yet enabled; try another thread.
            }
          }
        } else if (passesFilter(R, Options)) {
          Consumer.onEvent(R);
        }
        ++C;
        --Remaining;
        Progress = true;
      }
    }
    if (Progress || Remaining == 0)
      continue;
    // Every unfinished thread is blocked on a timestamp that never
    // arrives: with a trusted log that means it is inconsistent; with a
    // salvaged one, the timestamps died with a dropped segment.
    if (!Options.AllowTimestampGaps)
      return false;
    // Skip the smallest missing range: advance the counter of the
    // earliest blocked event straight to that event's timestamp, using
    // the same helper as the incremental path so both deliver identical
    // sequences on the same gapped trace.
    auto Skip = findEarliestBlockedEvent(
        [&](auto &&Visit) {
          for (size_t Tid = 0; Tid != NumThreads; ++Tid) {
            const auto &Stream = T.PerThread[Tid];
            if (Cursor[Tid] < Stream.size())
              Visit(Stream[Cursor[Tid]]);
          }
        },
        NextTs, NumCounters);
    if (!Skip)
      return false; // Defensive; cannot happen while Remaining > 0.
    NextTs[Skip->Counter] = Skip->Ts;
    if (Options.OutTimestampGaps)
      ++*Options.OutTimestampGaps;
    Consumer.onCoverageGap();
  }
  return true;
}

ReplayScheduler::ReplayScheduler(unsigned NumTimestampCounters,
                                 ReplayOptions Options)
    : NumCounters(NumTimestampCounters), Options(Options),
      NextTs(NumTimestampCounters, 1) {}

void ReplayScheduler::addEvents(ThreadId Tid, const EventRecord *Records,
                                size_t Count) {
  if (Tid >= Streams.size())
    Streams.resize(Tid + 1);
  Streams[Tid].insert(Streams[Tid].end(), Records, Records + Count);
  Pending += Count;
}

size_t ReplayScheduler::drainImpl(TraceConsumer &Consumer, bool AllowStale) {
  size_t Delivered = 0;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (auto &Stream : Streams) {
      while (!Stream.empty()) {
        const EventRecord &R = Stream.front();
        if (isSyncKind(R.Kind)) {
          if (R.Ts == 0) {
            // Salvage mode delivers timestamp-less sync events without a
            // constraint; incremental strict mode leaves them queued (the
            // stream is inconsistent and finish() will say so).
            if (!AllowStale)
              break;
            Consumer.onEvent(R);
          } else {
            unsigned Counter = counterForSyncVar(R.Addr, NumCounters);
            if (R.Ts == NextTs[Counter]) {
              ++NextTs[Counter];
              Consumer.onEvent(R);
            } else if (AllowStale && R.Ts < NextTs[Counter]) {
              // Counter was gap-advanced past this event; the gap
              // barrier already covers its ordering.
              Consumer.onEvent(R);
            } else {
              break; // Waits for timestamps possibly not yet added.
            }
          }
        } else if (passesFilter(R, Options)) {
          Consumer.onEvent(R);
        }
        Stream.pop_front();
        --Pending;
        ++Delivered;
        Progress = true;
      }
    }
  }
  return Delivered;
}

size_t ReplayScheduler::drain(TraceConsumer &Consumer) {
  return drainImpl(Consumer, /*AllowStale=*/false);
}

size_t ReplayScheduler::drainAllowingGaps(TraceConsumer &Consumer) {
  size_t Delivered = drainImpl(Consumer, /*AllowStale=*/true);
  while (Pending > 0) {
    // No more input is coming: whatever each stream is blocked on was
    // lost with a dropped segment. Skip the earliest gap and keep going,
    // through the helper shared with the batch replayTrace path.
    auto Skip = findEarliestBlockedEvent(
        [&](auto &&Visit) {
          for (const auto &Stream : Streams)
            if (!Stream.empty())
              Visit(Stream.front());
        },
        NextTs, NumCounters);
    if (!Skip)
      break; // Defensive; drainImpl(AllowStale) consumes everything else.
    NextTs[Skip->Counter] = Skip->Ts;
    ++Gaps;
    if (Options.OutTimestampGaps)
      ++*Options.OutTimestampGaps;
    Consumer.onCoverageGap();
    Delivered += drainImpl(Consumer, /*AllowStale=*/true);
  }
  return Delivered;
}
