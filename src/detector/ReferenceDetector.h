//===-- detector/ReferenceDetector.h - Brute-force HB oracle --*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately naive happens-before oracle used to verify the
/// production detectors. It stores a full vector clock for EVERY memory
/// event and, at the end, checks EVERY pair of conflicting accesses for
/// ordering — O(events × threads) memory and O(events² per address)
/// time. Nothing is pruned and no witness is chosen: the result is the
/// complete set of racing access pairs of the execution.
///
/// Intended exclusively for tests and cross-validation (see
/// ModelCheckTest): the production detectors must report
///   - only pairs the oracle confirms unordered (soundness — no false
///     positives), and
///   - a race on exactly the addresses the oracle finds racy
///     (address-completeness; witness pairs may legitimately differ).
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_DETECTOR_REFERENCEDETECTOR_H
#define LITERACE_DETECTOR_REFERENCEDETECTOR_H

#include "detector/RaceReport.h"
#include "detector/Replay.h"
#include "detector/VectorClock.h"
#include "support/Hashing.h"

#include <set>
#include <unordered_map>
#include <vector>

namespace literace {

/// Collects every memory access with its full vector clock, then
/// enumerates all racing pairs on demand.
class ReferenceDetector final : public TraceConsumer {
public:
  /// One recorded access with its complete happens-before knowledge.
  struct Access {
    ThreadId Tid = 0;
    Pc Site = 0;
    bool IsWrite = false;
    /// The executing thread's own clock at the access.
    uint64_t OwnClock = 0;
    VectorClock Clock;
  };

  void onEvent(const EventRecord &R) override;

  /// All-pairs race enumeration; call after the replay finished.
  /// \returns every unordered conflicting pair as (earlier-processed,
  /// later-processed) sightings recorded into \p Report.
  void enumerateRaces(RaceReport &Report) const;

  /// The set of addresses with at least one racing pair.
  std::set<uint64_t> racyAddresses() const;

  /// True iff accesses \p A then \p B (processing order) are ordered by
  /// happens-before.
  static bool ordered(const Access &A, const Access &B) {
    return B.Clock.get(A.Tid) >= A.OwnClock;
  }

  size_t accessesRecorded() const;

private:
  VectorClock &clockOf(ThreadId T);

  std::vector<VectorClock> ThreadClocks;
  std::unordered_map<SyncVar, VectorClock, Mix64Hash> SyncClocks;
  std::unordered_map<uint64_t, std::vector<Access>, Mix64Hash> Accesses;
};

/// Replays \p T through a ReferenceDetector and enumerates all races.
/// Returns false on an inconsistent log.
bool detectRacesReference(const Trace &T, RaceReport &Report);

} // namespace literace

#endif // LITERACE_DETECTOR_REFERENCEDETECTOR_H
