//===-- detector/ReferenceDetector.cpp - Brute-force HB oracle ------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/ReferenceDetector.h"

#include "support/Compiler.h"

#include <algorithm>

using namespace literace;

VectorClock &ReferenceDetector::clockOf(ThreadId T) {
  if (T >= ThreadClocks.size())
    ThreadClocks.resize(T + 1);
  VectorClock &Clock = ThreadClocks[T];
  if (Clock.get(T) == 0)
    Clock.set(T, 1);
  return Clock;
}

void ReferenceDetector::onEvent(const EventRecord &R) {
  switch (R.Kind) {
  case EventKind::ThreadStart:
  case EventKind::ThreadEnd:
    (void)clockOf(R.Tid);
    return;
  case EventKind::PolicyMeta:
    // Elision-policy stamp; carries no access and no HB edge.
    return;
  case EventKind::Read:
  case EventKind::Write: {
    const VectorClock &Clock = clockOf(R.Tid);
    Access A;
    A.Tid = R.Tid;
    A.Site = R.Pc;
    A.IsWrite = R.Kind == EventKind::Write;
    A.OwnClock = Clock.get(R.Tid);
    A.Clock = Clock; // Full snapshot: the whole point of the oracle.
    Accesses[R.Addr].push_back(std::move(A));
    return;
  }
  case EventKind::Acquire:
    clockOf(R.Tid).joinWith(SyncClocks[R.Addr]);
    return;
  case EventKind::Release: {
    VectorClock &Thread = clockOf(R.Tid);
    SyncClocks[R.Addr].joinWith(Thread);
    Thread.tick(R.Tid);
    return;
  }
  case EventKind::AcqRel:
  case EventKind::Alloc:
  case EventKind::Free: {
    VectorClock &Thread = clockOf(R.Tid);
    Thread.joinWith(SyncClocks[R.Addr]);
    SyncClocks[R.Addr].joinWith(Thread);
    Thread.tick(R.Tid);
    return;
  }
  }
  literaceUnreachable("invalid event kind");
}

void ReferenceDetector::enumerateRaces(RaceReport &Report) const {
  // Enumerate in ascending address order so the oracle's report does not
  // depend on hash-table iteration order (the map's hash is an
  // implementation detail; the enumeration result must not be).
  std::vector<const std::pair<const uint64_t, std::vector<Access>> *> Sorted;
  Sorted.reserve(Accesses.size());
  for (const auto &Entry : Accesses)
    Sorted.push_back(&Entry);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const auto *A, const auto *B) { return A->first < B->first; });
  for (const auto *EntryPtr : Sorted) {
    const auto &Entry = *EntryPtr;
    const std::vector<Access> &List = Entry.second;
    for (size_t I = 0; I != List.size(); ++I) {
      for (size_t J = I + 1; J != List.size(); ++J) {
        const Access &A = List[I];
        const Access &B = List[J];
        if (A.Tid == B.Tid)
          continue; // Program order (HB1).
        if (!A.IsWrite && !B.IsWrite)
          continue; // Read/read pairs never conflict.
        if (ordered(A, B))
          continue;
        RaceSighting Sighting;
        Sighting.FirstPc = A.Site;
        Sighting.SecondPc = B.Site;
        Sighting.Addr = Entry.first;
        Sighting.FirstTid = A.Tid;
        Sighting.SecondTid = B.Tid;
        Sighting.FirstIsWrite = A.IsWrite;
        Sighting.SecondIsWrite = B.IsWrite;
        Report.record(Sighting);
      }
    }
  }
}

std::set<uint64_t> ReferenceDetector::racyAddresses() const {
  std::set<uint64_t> Out;
  for (const auto &Entry : Accesses) {
    const std::vector<Access> &List = Entry.second;
    bool Racy = false;
    for (size_t I = 0; I != List.size() && !Racy; ++I)
      for (size_t J = I + 1; J != List.size() && !Racy; ++J)
        Racy = List[I].Tid != List[J].Tid &&
               (List[I].IsWrite || List[J].IsWrite) &&
               !ordered(List[I], List[J]);
    if (Racy)
      Out.insert(Entry.first);
  }
  return Out;
}

size_t ReferenceDetector::accessesRecorded() const {
  size_t N = 0;
  for (const auto &Entry : Accesses)
    N += Entry.second.size();
  return N;
}

bool literace::detectRacesReference(const Trace &T, RaceReport &Report) {
  ReferenceDetector Oracle;
  if (!replayTraceWith(T, Oracle))
    return false;
  Oracle.enumerateRaces(Report);
  return true;
}
