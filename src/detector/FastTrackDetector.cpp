//===-- detector/FastTrackDetector.cpp - Epoch-optimized HB ---------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/FastTrackDetector.h"

#include "support/Compiler.h"

#include <algorithm>

using namespace literace;

FastTrackDetector::FastTrackDetector(RaceReport &Report) : Report(Report) {}

VectorClock &FastTrackDetector::clockOf(ThreadId T) {
  if (T >= ThreadClocks.size())
    ThreadClocks.resize(T + 1);
  VectorClock &Clock = ThreadClocks[T];
  if (Clock.get(T) == 0) {
    // Threads first seen after a coverage gap start behind the barrier.
    Clock.joinWith(GapBarrier);
    Clock.set(T, Clock.get(T) + 1);
  }
  return Clock;
}

void FastTrackDetector::onCoverageGap() {
  ++CoverageGaps;
  // Same conservative barrier as HBDetector::onCoverageGap(): cross-gap
  // access pairs become ordered, so missing sync edges can only hide
  // races, never fabricate them.
  for (const VectorClock &Clock : ThreadClocks)
    GapBarrier.joinWith(Clock);
  for (size_t T = 0; T != ThreadClocks.size(); ++T) {
    VectorClock &Clock = ThreadClocks[T];
    if (Clock.get(static_cast<ThreadId>(T)) == 0)
      continue;
    Clock.joinWith(GapBarrier);
    Clock.tick(static_cast<ThreadId>(T));
  }
}

void FastTrackDetector::acquire(ThreadId T, SyncVar S) {
  auto It = SyncClocks.find(S);
  if (It != SyncClocks.end())
    clockOf(T).joinWith(It->second);
}

void FastTrackDetector::release(ThreadId T, SyncVar S) {
  VectorClock &Thread = clockOf(T);
  SyncClocks[S].joinWith(Thread);
  Thread.tick(T);
}

void FastTrackDetector::onEvent(const EventRecord &R) {
  switch (R.Kind) {
  case EventKind::ThreadStart:
  case EventKind::ThreadEnd:
    (void)clockOf(R.Tid);
    return;
  case EventKind::PolicyMeta:
    // Elision-policy stamp; carries no access and no HB edge.
    return;
  case EventKind::Read: {
    ++MemoryEvents;
    const VectorClock &Clock = clockOf(R.Tid);
    onRead(R, Clock, Clock.get(R.Tid));
    return;
  }
  case EventKind::Write: {
    ++MemoryEvents;
    const VectorClock &Clock = clockOf(R.Tid);
    onWrite(R, Clock, Clock.get(R.Tid));
    return;
  }
  case EventKind::Acquire:
    acquire(R.Tid, R.Addr);
    return;
  case EventKind::Release:
    release(R.Tid, R.Addr);
    return;
  case EventKind::AcqRel:
  case EventKind::Alloc:
  case EventKind::Free:
    acquire(R.Tid, R.Addr);
    release(R.Tid, R.Addr);
    return;
  }
  literaceUnreachable("invalid event kind");
}

void FastTrackDetector::report(const Epoch &Old, const EventRecord &New,
                               bool OldIsWrite) {
  RaceSighting Sighting;
  Sighting.FirstPc = Old.Site;
  Sighting.SecondPc = New.Pc;
  Sighting.Addr = New.Addr;
  Sighting.FirstTid = Old.Tid;
  Sighting.SecondTid = New.Tid;
  Sighting.FirstIsWrite = OldIsWrite;
  Sighting.SecondIsWrite = New.Kind == EventKind::Write;
  Report.record(Sighting);
}

void FastTrackDetector::onRead(const EventRecord &R,
                               const VectorClock &Clock,
                               uint64_t OwnEpoch) {
  const ThreadId T = R.Tid;
  AddressState &State = Shadow.ref(R.Addr);

  // Read-write check against the single write epoch.
  if (State.Write.Clock != 0 && State.Write.Tid != T &&
      Clock.get(State.Write.Tid) < State.Write.Clock)
    report(State.Write, R, /*OldIsWrite=*/true);

  const Epoch Mine{T, OwnEpoch, R.Pc};
  if (State.SharedRead) {
    // Slow path: per-thread read epochs.
    if (T >= State.ReadShared.size())
      State.ReadShared.resize(T + 1);
    State.ReadShared[T] = Mine;
    return;
  }
  // Exclusive / same-epoch fast paths.
  if (State.Read.Clock == 0 || State.Read.Tid == T ||
      Clock.get(State.Read.Tid) >= State.Read.Clock) {
    State.Read = Mine;
    return;
  }
  // Concurrent reads by two threads: promote to read-shared.
  ++Promotions;
  State.SharedRead = true;
  State.ReadShared.clear();
  State.ReadShared.resize(std::max<size_t>(T, State.Read.Tid) + 1);
  State.ReadShared[State.Read.Tid] = State.Read;
  State.ReadShared[T] = Mine;
  State.Read = Epoch();
}

void FastTrackDetector::onWrite(const EventRecord &R,
                                const VectorClock &Clock,
                                uint64_t OwnEpoch) {
  const ThreadId T = R.Tid;
  AddressState &State = Shadow.ref(R.Addr);

  // Write-write check against the single write epoch: writes to a
  // race-free variable are totally ordered, so one epoch suffices.
  if (State.Write.Clock != 0 && State.Write.Tid != T &&
      Clock.get(State.Write.Tid) < State.Write.Clock)
    report(State.Write, R, /*OldIsWrite=*/true);

  // Write-read checks.
  if (State.SharedRead) {
    for (const Epoch &Old : State.ReadShared)
      if (Old.Clock != 0 && Old.Tid != T &&
          Clock.get(Old.Tid) < Old.Clock)
        report(Old, R, /*OldIsWrite=*/false);
    // Demotion (FastTrack's W_x := E_t rule): the write supersedes the
    // read set. Ordered reads are published; racing ones were just
    // reported — either way future conflicts are caught against this
    // write, so the expensive per-thread view is dropped and subsequent
    // reads restart on the exclusive-epoch fast path.
    ++Demotions;
    State.SharedRead = false;
    State.ReadShared.clear();
  } else if (State.Read.Clock != 0 && State.Read.Tid != T &&
             Clock.get(State.Read.Tid) < State.Read.Clock) {
    report(State.Read, R, /*OldIsWrite=*/false);
    State.Read = Epoch();
  } else if (State.Read.Clock != 0 &&
             (State.Read.Tid == T ||
              Clock.get(State.Read.Tid) >= State.Read.Clock)) {
    State.Read = Epoch();
  }

  State.Write = Epoch{T, OwnEpoch, R.Pc};
}

size_t FastTrackDetector::onMemoryRun(const EventRecord *Records,
                                      size_t MaxCount) {
  // One thread, no intervening sync within the run: clock and epoch
  // hold until the first non-memory record, where the walk stops.
  const VectorClock &Clock = clockOf(Records[0].Tid);
  const uint64_t OwnEpoch = Clock.get(Records[0].Tid);
  size_t I = 0;
  do {
    const EventRecord &R = Records[I];
    if (R.Kind == EventKind::Write)
      onWrite(R, Clock, OwnEpoch);
    else
      onRead(R, Clock, OwnEpoch);
    ++I;
  } while (I != MaxCount && isMemoryKind(Records[I].Kind));
  MemoryEvents += I;
  return I;
}

bool literace::detectRacesFastTrack(const Trace &T, RaceReport &Report,
                                    const ReplayOptions &Options) {
  FastTrackDetector Detector(Report);
  return replayTraceWith(T, Detector, Options);
}
