//===-- detector/HBDetector.h - Happens-before race detection -*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline happens-before data-race detector (§2.1, §4.4).
///
/// The detector consumes a replayed event stream. It maintains a vector
/// clock per thread and per SyncVar; synchronization events create the HB2
/// edges, program order within a thread's stream is HB1, and transitivity
/// falls out of the vector-clock algebra. For every memory address it
/// keeps, per thread, the epoch (thread, clock) and site of the most
/// recent logged read and write — the DJIT+ scheme: a new access races
/// with some prior access of thread u iff it races with u's most recent
/// one, and that is a single epoch comparison.
///
/// Because the replayed stream contains ALL synchronization operations
/// regardless of sampling, no happens-before edge is ever missing, so the
/// detector reports only true races of the execution (no false positives);
/// sampling can only hide races (§3.2).
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_DETECTOR_HBDETECTOR_H
#define LITERACE_DETECTOR_HBDETECTOR_H

#include "detector/RaceReport.h"
#include "detector/Replay.h"
#include "detector/VectorClock.h"
#include "support/Hashing.h"
#include "support/ShadowMap.h"
#include "support/SmallVector.h"

#include <unordered_map>
#include <vector>

namespace literace {

/// Vector-clock happens-before detector over replayed event streams.
/// `final` so the statically typed replay loop (replayTraceWith) and the
/// sharded workers devirtualize onEvent into a direct, inlinable call.
class HBDetector final : public TraceConsumer {
public:
  /// Detected races are recorded into \p Report (owned by the caller).
  explicit HBDetector(RaceReport &Report);

  void onEvent(const EventRecord &R) override;

  /// Coverage gap (dropped log segments): synchronization edges may be
  /// missing from here on, so install a conservative ordering barrier —
  /// every access after the gap is treated as happening-after everything
  /// before it. That can only suppress reports, never invent them, so
  /// races reported on a salvaged trace are a subset of the full-trace
  /// report (docs/ROBUSTNESS.md).
  void onCoverageGap() override;

  /// Number of coverage gaps barriered so far.
  uint64_t coverageGaps() const { return CoverageGaps; }

  /// Delivers \p R as the event with global replay sequence number
  /// \p EventIndex. onEvent() numbers events itself (0, 1, 2, ... in
  /// delivery order); the sharded pipeline numbers events at fan-out time
  /// and calls this from per-shard workers, so sightings carry the same
  /// indices a serial replay would assign.
  void onEventAt(const EventRecord &R, uint64_t EventIndex);

  /// Batch entry point used by replayTraceWith: \p Records[0] is a
  /// memory event, and the detector consumes the maximal leading run of
  /// memory events (capped at \p MaxCount), returning how many it took.
  /// Within a run there is no intervening sync event of the thread, so
  /// its vector clock — and hence its epoch — is loop-invariant and
  /// looked up once for the whole run. Event numbering and reports are
  /// identical to delivering each record through onEvent().
  size_t onMemoryRun(const EventRecord *Records, size_t MaxCount);

  /// Number of memory events processed (the detection workload).
  uint64_t memoryEventsProcessed() const { return MemoryEvents; }

  /// Number of sync events processed.
  uint64_t syncEventsProcessed() const { return SyncEvents; }

  /// Current clock of thread \p T (exposed for tests).
  const VectorClock &threadClock(ThreadId T);

  /// Number of addresses with shadow state (exposed for tests/benches).
  size_t shadowAddressCount() const { return Shadow.size(); }

private:
  /// Most recent logged access of one thread to one address.
  struct AccessRecord {
    uint64_t Clock;
    Pc Site;
    ThreadId Tid;
  };

  /// Per-address list of live last-access records. One entry lives
  /// inline in the shadow slot itself: most addresses have a single live
  /// reader/writer at a time, and one inline entry per list keeps the
  /// whole AddressState at 64 bytes — exactly one cache line per
  /// address, which measures faster than a larger inline capacity even
  /// though two-thread addresses then spill to the heap.
  using AccessList = SmallVector<AccessRecord, 1>;

  /// Shadow state of one address: per-thread last read and last write.
  struct AddressState {
    AccessList Writes;
    AccessList Reads;
  };

  VectorClock &clockOf(ThreadId T);
  void acquire(ThreadId T, SyncVar S);
  void release(ThreadId T, SyncVar S);
  void onMemory(const EventRecord &R);

  /// The fused per-access step: checks \p R against both lists and
  /// updates the one matching its kind, in a single pass per list.
  /// \p Clock must be the accessing thread's current clock and \p Epoch
  /// its own component (hoisted by onMemoryRun for whole runs).
  void onMemoryWith(const EventRecord &R, const VectorClock &Clock,
                    uint64_t Epoch);

  /// Builds and records a sighting (off the hot path; rare).
  void reportRace(const AccessRecord &Old, const EventRecord &New,
                  bool OldIsWrite);

  RaceReport &Report;
  std::vector<VectorClock> ThreadClocks;
  std::unordered_map<SyncVar, VectorClock, Mix64Hash> SyncClocks;
  ShadowMap<AddressState> Shadow;
  /// Join of every thread clock at the last coverage gap; threads first
  /// seen later start behind it so cross-gap pairs stay ordered.
  VectorClock GapBarrier;
  uint64_t CoverageGaps = 0;
  uint64_t MemoryEvents = 0;
  uint64_t SyncEvents = 0;
  /// Sequence number assigned to the next self-numbered event, and the
  /// index of the event currently being processed (stamped on sightings).
  uint64_t NextEventIndex = 0;
  uint64_t CurrentEventIndex = 0;
};

/// Convenience wrapper: replays \p T (optionally filtered to one sampler's
/// view) through a fresh HBDetector into \p Report. With
/// DetectorOptions::Shards > 1 the replay is fanned out to parallel
/// per-shard workers (see ShardedDetector.h); the report is byte-identical
/// either way. Returns false if the log was inconsistent.
bool detectRaces(const Trace &T, RaceReport &Report,
                 const ReplayOptions &Options = ReplayOptions(),
                 const DetectorOptions &Detector = DetectorOptions());

} // namespace literace

#endif // LITERACE_DETECTOR_HBDETECTOR_H
