//===-- detector/RaceReport.cpp - Race aggregation -------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/RaceReport.h"

#include "runtime/FunctionRegistry.h"

#include <algorithm>
#include <cstdio>

using namespace literace;

namespace {

/// The canonical report order: site pair first, then first occurrence.
bool reportOrder(const StaticRace &A, const StaticRace &B) {
  if (A.Key != B.Key)
    return A.Key < B.Key;
  return A.FirstEventIndex < B.FirstEventIndex;
}

} // namespace

void RaceReport::record(const RaceSighting &Sighting) {
  StaticRaceKey Key = makeStaticRaceKey(Sighting.FirstPc, Sighting.SecondPc);
  StaticRace &Race = Races[Key];
  if (Race.DynamicCount == 0 ||
      Sighting.EventIndex < Race.FirstEventIndex) {
    Race.Key = Key;
    Race.ExampleAddr = Sighting.Addr;
    Race.FirstEventIndex = Sighting.EventIndex;
  }
  ++Race.DynamicCount;
  Race.SawWriteWrite |= Sighting.FirstIsWrite && Sighting.SecondIsWrite;
  SightingAddresses.insert(Sighting.Addr);
  ++TotalSightings;
}

void RaceReport::merge(const RaceReport &Other) {
  for (const auto &Entry : Other.Races) {
    const StaticRace &In = Entry.second;
    StaticRace &Race = Races[Entry.first];
    if (Race.DynamicCount == 0 || In.FirstEventIndex < Race.FirstEventIndex) {
      Race.Key = In.Key;
      Race.ExampleAddr = In.ExampleAddr;
      Race.FirstEventIndex = In.FirstEventIndex;
    }
    Race.DynamicCount += In.DynamicCount;
    Race.SawWriteWrite |= In.SawWriteWrite;
  }
  SightingAddresses.insert(Other.SightingAddresses.begin(),
                           Other.SightingAddresses.end());
  TotalSightings += Other.TotalSightings;
}

std::vector<StaticRace> RaceReport::staticRaces() const {
  std::vector<StaticRace> Out;
  Out.reserve(Races.size());
  for (const auto &Entry : Races)
    Out.push_back(Entry.second);
  std::stable_sort(Out.begin(), Out.end(), reportOrder);
  return Out;
}

std::vector<StaticRace> RaceReport::staticRacesExcluding(
    const std::set<Pc> &SuppressedSites) const {
  std::vector<StaticRace> Out;
  for (const StaticRace &Race : staticRaces()) {
    if (SuppressedSites.count(Race.Key.first) ||
        SuppressedSites.count(Race.Key.second))
      continue;
    Out.push_back(Race);
  }
  return Out;
}

std::set<StaticRaceKey> RaceReport::keys() const {
  std::set<StaticRaceKey> Out;
  for (const auto &Entry : Races)
    Out.insert(Entry.first);
  return Out;
}

bool RaceReport::isRare(const StaticRace &Race, uint64_t TotalMemOps) {
  double Threshold =
      RarePerMillionMemOps * static_cast<double>(TotalMemOps) / 1e6;
  return static_cast<double>(Race.DynamicCount) < Threshold;
}

std::pair<std::set<StaticRaceKey>, std::set<StaticRaceKey>>
RaceReport::splitRareFrequent(uint64_t TotalMemOps) const {
  std::set<StaticRaceKey> Rare, Frequent;
  for (const auto &Entry : Races) {
    if (isRare(Entry.second, TotalMemOps))
      Rare.insert(Entry.first);
    else
      Frequent.insert(Entry.first);
  }
  return {std::move(Rare), std::move(Frequent)};
}

std::string RaceReport::describe(const FunctionRegistry *Registry) const {
  auto SiteName = [&](Pc P) {
    char Buf[256];
    FunctionId F = pcFunction(P);
    if (Registry && F < Registry->size())
      std::snprintf(Buf, sizeof(Buf), "%s:%u", Registry->name(F).c_str(),
                    pcSite(P));
    else
      std::snprintf(Buf, sizeof(Buf), "fn%u:%u", F, pcSite(P));
    return std::string(Buf);
  };

  std::string Out;
  char Line[512];
  std::snprintf(Line, sizeof(Line),
                "%zu static race(s), %llu dynamic sighting(s)\n",
                Races.size(),
                static_cast<unsigned long long>(TotalSightings));
  Out += Line;
  for (const StaticRace &Race : staticRaces()) {
    std::snprintf(Line, sizeof(Line), "  %s <-> %s  x%llu%s\n",
                  SiteName(Race.Key.first).c_str(),
                  SiteName(Race.Key.second).c_str(),
                  static_cast<unsigned long long>(Race.DynamicCount),
                  Race.SawWriteWrite ? "  [write/write]" : "");
    Out += Line;
  }
  return Out;
}
