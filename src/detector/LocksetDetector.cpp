//===-- detector/LocksetDetector.cpp - Eraser-style lockset --------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/LocksetDetector.h"

#include <algorithm>

using namespace literace;

LocksetDetector::LocksetDetector(RaceReport &Report) : Report(Report) {}

void LocksetDetector::onCoverageGap() {
  ++CoverageGaps;
  // Dropped segments may contain acquires/releases; both the held-lock
  // sets and the per-address candidate sets are stale. Restart the state
  // machines rather than emit warnings based on phantom-empty locksets.
  for (auto &Held : LocksHeldByThread)
    Held.clear();
  States.clear();
  Flagged.clear();
}

const std::set<SyncVar> &LocksetDetector::locksHeld(ThreadId T) {
  if (T >= LocksHeldByThread.size())
    LocksHeldByThread.resize(T + 1);
  return LocksHeldByThread[T];
}

void LocksetDetector::onEvent(const EventRecord &R) {
  switch (R.Kind) {
  case EventKind::Acquire:
    // Only mutual-exclusion locks enter the lockset; that blindness to
    // other synchronization is the source of Eraser's false positives.
    if (syncVarKind(R.Addr) == SyncObjectKind::Mutex) {
      if (R.Tid >= LocksHeldByThread.size())
        LocksHeldByThread.resize(R.Tid + 1);
      LocksHeldByThread[R.Tid].insert(R.Addr);
    }
    return;
  case EventKind::Release:
    if (syncVarKind(R.Addr) == SyncObjectKind::Mutex &&
        R.Tid < LocksHeldByThread.size())
      LocksHeldByThread[R.Tid].erase(R.Addr);
    return;
  case EventKind::Read:
  case EventKind::Write:
    onMemory(R);
    return;
  case EventKind::ThreadStart:
  case EventKind::ThreadEnd:
  case EventKind::PolicyMeta:
  case EventKind::AcqRel:
  case EventKind::Alloc:
  case EventKind::Free:
    return;
  }
}

void LocksetDetector::onMemory(const EventRecord &R) {
  AddressState &State = States.ref(R.Addr);
  const std::set<SyncVar> &Held = locksHeld(R.Tid);
  const bool IsWrite = R.Kind == EventKind::Write;

  switch (State.Kind) {
  case AddressStateKind::Virgin:
    State.Kind = AddressStateKind::Exclusive;
    State.Owner = R.Tid;
    State.Candidates = Held;
    State.LastSite = R.Pc;
    return;
  case AddressStateKind::Exclusive:
    if (R.Tid == State.Owner) {
      // Still single-threaded: keep refreshing the candidate set without
      // refining (Eraser's initialization-tolerance).
      State.Candidates = Held;
      State.LastSite = R.Pc;
      return;
    }
    State.Kind = IsWrite ? AddressStateKind::SharedModified
                         : AddressStateKind::Shared;
    break;
  case AddressStateKind::Shared:
    if (IsWrite)
      State.Kind = AddressStateKind::SharedModified;
    break;
  case AddressStateKind::SharedModified:
    break;
  }

  // Refine C(v) with the locks held at this access.
  std::set<SyncVar> Intersection;
  std::set_intersection(State.Candidates.begin(), State.Candidates.end(),
                        Held.begin(), Held.end(),
                        std::inserter(Intersection, Intersection.begin()));
  State.Candidates = std::move(Intersection);

  if (State.Kind == AddressStateKind::SharedModified &&
      State.Candidates.empty() && !State.Reported) {
    State.Reported = true;
    Flagged.insert(R.Addr);
    RaceSighting Sighting;
    Sighting.FirstPc = State.LastSite;
    Sighting.SecondPc = R.Pc;
    Sighting.Addr = R.Addr;
    Sighting.FirstTid = State.Owner;
    Sighting.SecondTid = R.Tid;
    Sighting.FirstIsWrite = true; // Unknown; conservative.
    Sighting.SecondIsWrite = IsWrite;
    Report.record(Sighting);
  }
  State.LastSite = R.Pc;
}

bool literace::detectLocksetViolations(const Trace &T, RaceReport &Report,
                                       const ReplayOptions &Options) {
  LocksetDetector Detector(Report);
  return replayTraceWith(T, Detector, Options);
}
