//===-- detector/ShardedDetector.h - Parallel sharded detection -*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel offline detection: the paper pushes all detection cost off the
/// instrumented run (§2.1, §4.4) precisely so it can be scaled
/// independently; this is that scaling step. The address space is
/// partitioned into N shards by a hash of the accessed address. One
/// fan-out thread (the replay scheduler, which is inherently sequential —
/// it reconstructs the logged serialization) assigns every delivered event
/// a global sequence number and routes it over bounded SPSC queues:
/// memory events go to the one shard owning their address, while
/// synchronization (and thread-lifetime) events are broadcast to every
/// shard. Each shard worker runs a private, unmodified HBDetector.
///
/// Why this is exact: a memory access's vector-clock view depends only on
/// the synchronization events delivered before it, and every shard
/// receives ALL synchronization events in exactly the serial replay order
/// relative to its own memory events (FIFO queues, one consumer). So each
/// shard's thread/SyncVar clocks evolve identically to the serial
/// detector's, and the per-address shadow state — which only ever meets
/// accesses to the same address, all of which hash to the same shard — is
/// byte-for-byte the serial one. Each shard therefore reports exactly the
/// sightings the serial detector would report for its addresses, stamped
/// with the same global sequence numbers; RaceReport::merge folds the
/// per-shard reports into an aggregate that is bit-identical to the
/// serial report at any shard count. See docs/DETECTOR.md.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_DETECTOR_SHARDEDDETECTOR_H
#define LITERACE_DETECTOR_SHARDEDDETECTOR_H

#include "detector/HBDetector.h"
#include "detector/RaceReport.h"
#include "detector/Replay.h"
#include "support/SpscRing.h"

#include <memory>
#include <thread>
#include <vector>

namespace literace {

/// Shard owning memory address \p Addr when the space is split \p Shards
/// ways. Stable across runs and machines (pure arithmetic hash).
unsigned shardOfAddress(uint64_t Addr, unsigned Shards);

/// TraceConsumer that fans a replayed stream out to per-shard HBDetector
/// workers. Feed it events (from replayTrace or a ReplayScheduler), then
/// call finish() to stop the workers and collect the merged report.
class ShardedHBDetector final : public TraceConsumer {
public:
  explicit ShardedHBDetector(const DetectorOptions &Options);
  ~ShardedHBDetector() override;

  /// Producer side: numbers \p R and routes it to its shard (memory
  /// events) or to every shard (all other kinds). Blocks briefly when a
  /// shard queue is full (bounded-queue backpressure).
  void onEvent(const EventRecord &R) override;

  /// Coverage gap: broadcast to every shard (like sync events, and in
  /// the same queue order), so each worker barriers its private detector
  /// at the same point in its stream as the serial detector would.
  void onCoverageGap() override;

  /// Closes the queues, joins the workers, and folds the per-shard
  /// reports into \p Report in deterministic first-occurrence order.
  /// Idempotent; the merge happens only on the first call.
  void finish(RaceReport &Report);

  unsigned numShards() const {
    return static_cast<unsigned>(Shards.size());
  }

  /// Memory events analyzed, summed over shards (valid after finish();
  /// equals the serial detector's count on the same replay).
  uint64_t memoryEventsProcessed() const;

  /// Sync events analyzed per shard (every shard sees all of them).
  uint64_t syncEventsProcessed() const;

  /// Pipeline telemetry of one shard. Queue stats are live; the event
  /// counts and worker time are exact once finish() returned.
  struct ShardTelemetry {
    uint64_t MemoryEvents = 0;        ///< memory events this shard analyzed
    uint64_t SyncEvents = 0;          ///< broadcast sync events it analyzed
    size_t QueueDepthHighWater = 0;   ///< peak SPSC queue occupancy
    uint64_t ProducerParks = 0;       ///< fan-out stalls on this queue
    uint64_t ConsumerParks = 0;       ///< worker waits on an empty queue
    uint64_t WorkerNs = 0;            ///< worker thread lifetime
  };
  ShardTelemetry shardTelemetry(unsigned ShardIndex) const;

  /// Wall time finish() spent merging the per-shard reports.
  uint64_t mergeNanos() const { return MergeNs; }

private:
  /// One queued event with its global replay sequence number, or a
  /// coverage-gap marker (no sequence number of its own).
  struct Item {
    EventRecord Record;
    uint64_t Seq = 0;
    bool IsGap = false;
  };

  /// One shard: queue, private detector state, and its worker thread.
  struct Shard {
    Shard(unsigned Index, size_t QueueCapacity)
        : Index(Index), Queue(QueueCapacity), Detector(Local) {}

    unsigned Index;
    SpscRing<Item> Queue;
    RaceReport Local;
    HBDetector Detector;
    std::thread Worker;
    /// Worker thread lifetime (written by the worker at exit, read after
    /// the join in finish()).
    uint64_t WorkerNs = 0;
  };

  void workerLoop(Shard &S);

  /// Folds pipeline telemetry into the process metrics registry and
  /// emits worker/merge spans; called once from finish().
  void publishTelemetry();

  std::vector<std::unique_ptr<Shard>> Shards;
  uint64_t NextSeq = 0;
  uint64_t MergeNs = 0;
  bool Finished = false;
};

/// Replays \p T through a sharded detector and merges into \p Report.
/// Equivalent to detectRaces() with the same options; exposed for tests
/// and benches that want the explicit form.
bool detectRacesSharded(const Trace &T, RaceReport &Report,
                        const DetectorOptions &Options,
                        const ReplayOptions &Replay = ReplayOptions());

} // namespace literace

#endif // LITERACE_DETECTOR_SHARDEDDETECTOR_H
