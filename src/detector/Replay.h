//===-- detector/Replay.h - Log replay scheduling ---------------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reconstructs a processing order for a logged execution.
///
/// The log contains one program-order stream per thread. Cross-thread
/// ordering is recoverable only through the logical timestamps drawn by
/// synchronization operations: all operations hashing to the same counter
/// drew strictly increasing timestamps in their real serialization order
/// (§4.2). The replay scheduler therefore interleaves the per-thread
/// streams subject to one constraint: a sync event with timestamp k on
/// counter c is processed only after every timestamp < k on counter c.
/// Memory events have no constraint beyond program order.
///
/// Replay optionally filters memory events by sampler slot, implementing
/// the §5.3 methodology of running detection over each sampler's view of
/// one and the same execution. Sync events are never filtered.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_DETECTOR_REPLAY_H
#define LITERACE_DETECTOR_REPLAY_H

#include "runtime/EventLog.h"
#include "runtime/TimestampManager.h"

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <vector>

namespace literace {

/// Receiver of replayed events, in a happens-before-consistent order.
class TraceConsumer {
public:
  virtual ~TraceConsumer();

  /// Called once per delivered event.
  virtual void onEvent(const EventRecord &R) = 0;

  /// Called when the replay skips over a timestamp gap left by dropped
  /// log segments (salvaged traces, ReplayOptions::AllowTimestampGaps).
  /// Synchronization edges may be missing from that point on; detectors
  /// should degrade conservatively (e.g. install an ordering barrier so
  /// cross-gap pairs are never reported as races). Default: no-op.
  virtual void onCoverageGap();
};

/// Replay configuration.
struct ReplayOptions {
  /// If in [0, MaxSamplerSlots), deliver only memory events whose mask has
  /// that sampler's bit. Negative: deliver all memory events.
  int SamplerSlot = -1;
  /// Tolerate missing timestamps (dropped segments of a salvaged trace):
  /// instead of declaring the log inconsistent, the replay advances the
  /// stalled counter to the next surviving timestamp and notifies the
  /// consumer via onCoverageGap(). Replay then never deadlocks on a
  /// salvaged trace.
  bool AllowTimestampGaps = false;
  /// When non-null, incremented once per skipped timestamp gap.
  uint64_t *OutTimestampGaps = nullptr;
};

/// Detection-pipeline configuration, shared by detectRaces(), the online
/// detector, the tools, and the harness (see docs/DETECTOR.md).
struct DetectorOptions {
  /// Number of address-space shards analyzed by parallel worker threads.
  /// 1 (the default) runs the classic single-threaded detector; the
  /// merged report is byte-identical at every shard count.
  unsigned Shards = 1;
  /// Capacity, in event records, of each shard's bounded SPSC queue.
  size_t ShardQueueCapacity = 4096;
};

namespace replay_detail {

/// Returns true if \p R should be handed to the consumer under \p Options.
inline bool passesFilter(const EventRecord &R, const ReplayOptions &Options) {
  if (!isMemoryKind(R.Kind) || Options.SamplerSlot < 0)
    return true;
  return (R.Mask & (1u << Options.SamplerSlot)) != 0;
}

/// The gap to skip when every stream is stalled: which counter to
/// advance, and to what timestamp.
struct GapSkip {
  unsigned Counter = 0;
  uint64_t Ts = 0;
};

/// Shared earliest-blocked-event scan used by both gap-tolerant replay
/// paths (batch replayTrace and incremental drainAllowingGaps), so their
/// skip decisions — and therefore the delivered event sequences — cannot
/// diverge. \p ForEachFront invokes its callback once per non-empty
/// stream with that stream's front record. A front only blocks replay if
/// it is a sync event with a real timestamp strictly ahead of its
/// counter; among those the smallest timestamp wins, which makes the
/// choice deterministic regardless of stream enumeration order (two
/// fronts with equal Ts on the same counter pick the same skip; equal Ts
/// on different counters cannot both be minimal more than once per
/// round, and the next round handles the other).
template <typename ForEachFrontFn>
std::optional<GapSkip>
findEarliestBlockedEvent(ForEachFrontFn &&ForEachFront,
                         const std::vector<uint64_t> &NextTs,
                         unsigned NumCounters) {
  GapSkip Best;
  Best.Ts = std::numeric_limits<uint64_t>::max();
  bool Found = false;
  ForEachFront([&](const EventRecord &R) {
    // Non-sync and timestamp-less fronts never block (gap-tolerant
    // drains deliver them unconditionally); a sync front at or behind
    // its counter is deliverable, not blocked.
    if (!isSyncKind(R.Kind) || R.Ts == 0)
      return;
    const unsigned Counter = counterForSyncVar(R.Addr, NumCounters);
    if (R.Ts > NextTs[Counter] && R.Ts < Best.Ts) {
      Best.Ts = R.Ts;
      Best.Counter = Counter;
      Found = true;
    }
  });
  if (!Found)
    return std::nullopt;
  return Best;
}

} // namespace replay_detail

/// Statically typed replay loop: identical delivery order and gap
/// semantics to replayTrace(), but templated on the concrete consumer so
/// that a `final` detector's onEvent()/onCoverageGap() devirtualize and
/// inline straight into the loop — the replay-dispatch overhead on the
/// serial detection hot path disappears. replayTrace() below is this
/// template instantiated at the TraceConsumer base (one virtual call per
/// event), kept for heterogeneous consumers.
template <typename ConsumerT>
bool replayTraceWith(const Trace &T, ConsumerT &Consumer,
                     const ReplayOptions &Options = ReplayOptions()) {
  const unsigned NumCounters = T.NumTimestampCounters;
  const size_t NumThreads = T.PerThread.size();
  std::vector<size_t> Cursor(NumThreads, 0);
  std::vector<uint64_t> NextTs(NumCounters, 1);

  // Detectors that expose onMemoryRun(records, max) take unfiltered
  // memory events a whole program-order run at a time (everything up to
  // the next sync event of the same thread), letting them hoist the
  // per-thread clock lookup and event dispatch out of their hot loop.
  // The consumer walks the slice itself and returns how many leading
  // memory events it consumed, so each record is touched exactly once.
  // The delivered event sequence is identical to per-event delivery: a
  // run is exactly the consecutive slice this loop would have handed to
  // onEvent one record at a time.
  constexpr bool HasRunSink =
      requires(ConsumerT &C, const EventRecord *P, size_t N) {
        { C.onMemoryRun(P, N) } -> std::convertible_to<size_t>;
      };

  size_t Remaining = T.totalEvents();
  while (Remaining > 0) {
    bool Progress = false;
    for (size_t Tid = 0; Tid != NumThreads; ++Tid) {
      const auto &Stream = T.PerThread[Tid];
      size_t &C = Cursor[Tid];
      while (C < Stream.size()) {
        const EventRecord &R = Stream[C];
        if constexpr (HasRunSink) {
          if (isMemoryKind(R.Kind) && Options.SamplerSlot < 0) {
            const size_t Consumed =
                Consumer.onMemoryRun(&Stream[C], Stream.size() - C);
            Remaining -= Consumed;
            C += Consumed;
            Progress = true;
            continue;
          }
        }
        if (isSyncKind(R.Kind)) {
          if (R.Ts == 0) {
            // Malformed: sync event without a timestamp. A salvaged trace
            // is delivered without an ordering constraint (the gap
            // machinery keeps detectors conservative); a trusted one is
            // rejected.
            if (!Options.AllowTimestampGaps)
              return false;
            Consumer.onEvent(R);
          } else {
            unsigned Counter = counterForSyncVar(R.Addr, NumCounters);
            if (R.Ts < NextTs[Counter]) {
              // Duplicate (strict: inconsistent log) or an event whose
              // counter was gap-advanced past it; cross-gap order for
              // this counter is already conservatively barriered, so
              // deliver without touching the counter.
              if (!Options.AllowTimestampGaps)
                return false;
              Consumer.onEvent(R);
            } else if (R.Ts == NextTs[Counter]) {
              ++NextTs[Counter];
              Consumer.onEvent(R);
            } else {
              break; // Not yet enabled; try another thread.
            }
          }
        } else if (replay_detail::passesFilter(R, Options)) {
          Consumer.onEvent(R);
        }
        ++C;
        --Remaining;
        Progress = true;
      }
    }
    if (Progress || Remaining == 0)
      continue;
    // Every unfinished thread is blocked on a timestamp that never
    // arrives: with a trusted log that means it is inconsistent; with a
    // salvaged one, the timestamps died with a dropped segment.
    if (!Options.AllowTimestampGaps)
      return false;
    // Skip the smallest missing range: advance the counter of the
    // earliest blocked event straight to that event's timestamp, using
    // the same helper as the incremental path so both deliver identical
    // sequences on the same gapped trace.
    auto Skip = replay_detail::findEarliestBlockedEvent(
        [&](auto &&Visit) {
          for (size_t Tid = 0; Tid != NumThreads; ++Tid) {
            const auto &Stream = T.PerThread[Tid];
            if (Cursor[Tid] < Stream.size())
              Visit(Stream[Cursor[Tid]]);
          }
        },
        NextTs, NumCounters);
    if (!Skip)
      return false; // Defensive; cannot happen while Remaining > 0.
    NextTs[Skip->Counter] = Skip->Ts;
    if (Options.OutTimestampGaps)
      ++*Options.OutTimestampGaps;
    Consumer.onCoverageGap();
  }
  return true;
}

/// Replays \p T into \p Consumer. Returns false if the log is inconsistent
/// (a timestamp is missing or duplicated, so no valid order exists); in
/// that case a prefix may already have been delivered.
bool replayTrace(const Trace &T, TraceConsumer &Consumer,
                 const ReplayOptions &Options = ReplayOptions());

/// Incremental version of replayTrace for online detection (§4.4): events
/// arrive chunk by chunk while the program runs, and drain() delivers
/// whatever has become processable. Not thread-safe; callers serialize.
class ReplayScheduler {
public:
  explicit ReplayScheduler(unsigned NumTimestampCounters,
                           ReplayOptions Options = ReplayOptions());

  /// Appends \p Count records of thread \p Tid's stream (program order).
  void addEvents(ThreadId Tid, const EventRecord *Records, size_t Count);

  /// Delivers every event that is currently processable. Returns the
  /// number delivered.
  size_t drain(TraceConsumer &Consumer);

  /// End-of-stream drain for salvaged traces: like drain(), but when no
  /// more input is coming, pending events blocked on timestamps that were
  /// lost with dropped segments are unblocked by skipping each gap
  /// (notifying \p Consumer via onCoverageGap()). Call only after the
  /// last addEvents(); afterwards fullyDrained() is true.
  size_t drainAllowingGaps(TraceConsumer &Consumer);

  /// True if every added event has been delivered.
  bool fullyDrained() const { return Pending == 0; }

  /// Number of added-but-undelivered events.
  size_t pendingEvents() const { return Pending; }

  /// Timestamp gaps skipped by drainAllowingGaps().
  uint64_t timestampGaps() const { return Gaps; }

private:
  size_t drainImpl(TraceConsumer &Consumer, bool AllowStale);

  unsigned NumCounters;
  ReplayOptions Options;
  std::vector<std::deque<EventRecord>> Streams;
  std::vector<uint64_t> NextTs;
  size_t Pending = 0;
  uint64_t Gaps = 0;
};

} // namespace literace

#endif // LITERACE_DETECTOR_REPLAY_H
