//===-- detector/Replay.h - Log replay scheduling ---------------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reconstructs a processing order for a logged execution.
///
/// The log contains one program-order stream per thread. Cross-thread
/// ordering is recoverable only through the logical timestamps drawn by
/// synchronization operations: all operations hashing to the same counter
/// drew strictly increasing timestamps in their real serialization order
/// (§4.2). The replay scheduler therefore interleaves the per-thread
/// streams subject to one constraint: a sync event with timestamp k on
/// counter c is processed only after every timestamp < k on counter c.
/// Memory events have no constraint beyond program order.
///
/// Replay optionally filters memory events by sampler slot, implementing
/// the §5.3 methodology of running detection over each sampler's view of
/// one and the same execution. Sync events are never filtered.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_DETECTOR_REPLAY_H
#define LITERACE_DETECTOR_REPLAY_H

#include "runtime/EventLog.h"

#include <cstdint>
#include <deque>
#include <vector>

namespace literace {

/// Receiver of replayed events, in a happens-before-consistent order.
class TraceConsumer {
public:
  virtual ~TraceConsumer();

  /// Called once per delivered event.
  virtual void onEvent(const EventRecord &R) = 0;

  /// Called when the replay skips over a timestamp gap left by dropped
  /// log segments (salvaged traces, ReplayOptions::AllowTimestampGaps).
  /// Synchronization edges may be missing from that point on; detectors
  /// should degrade conservatively (e.g. install an ordering barrier so
  /// cross-gap pairs are never reported as races). Default: no-op.
  virtual void onCoverageGap();
};

/// Replay configuration.
struct ReplayOptions {
  /// If in [0, MaxSamplerSlots), deliver only memory events whose mask has
  /// that sampler's bit. Negative: deliver all memory events.
  int SamplerSlot = -1;
  /// Tolerate missing timestamps (dropped segments of a salvaged trace):
  /// instead of declaring the log inconsistent, the replay advances the
  /// stalled counter to the next surviving timestamp and notifies the
  /// consumer via onCoverageGap(). Replay then never deadlocks on a
  /// salvaged trace.
  bool AllowTimestampGaps = false;
  /// When non-null, incremented once per skipped timestamp gap.
  uint64_t *OutTimestampGaps = nullptr;
};

/// Detection-pipeline configuration, shared by detectRaces(), the online
/// detector, the tools, and the harness (see docs/DETECTOR.md).
struct DetectorOptions {
  /// Number of address-space shards analyzed by parallel worker threads.
  /// 1 (the default) runs the classic single-threaded detector; the
  /// merged report is byte-identical at every shard count.
  unsigned Shards = 1;
  /// Capacity, in event records, of each shard's bounded SPSC queue.
  size_t ShardQueueCapacity = 4096;
};

/// Replays \p T into \p Consumer. Returns false if the log is inconsistent
/// (a timestamp is missing or duplicated, so no valid order exists); in
/// that case a prefix may already have been delivered.
bool replayTrace(const Trace &T, TraceConsumer &Consumer,
                 const ReplayOptions &Options = ReplayOptions());

/// Incremental version of replayTrace for online detection (§4.4): events
/// arrive chunk by chunk while the program runs, and drain() delivers
/// whatever has become processable. Not thread-safe; callers serialize.
class ReplayScheduler {
public:
  explicit ReplayScheduler(unsigned NumTimestampCounters,
                           ReplayOptions Options = ReplayOptions());

  /// Appends \p Count records of thread \p Tid's stream (program order).
  void addEvents(ThreadId Tid, const EventRecord *Records, size_t Count);

  /// Delivers every event that is currently processable. Returns the
  /// number delivered.
  size_t drain(TraceConsumer &Consumer);

  /// End-of-stream drain for salvaged traces: like drain(), but when no
  /// more input is coming, pending events blocked on timestamps that were
  /// lost with dropped segments are unblocked by skipping each gap
  /// (notifying \p Consumer via onCoverageGap()). Call only after the
  /// last addEvents(); afterwards fullyDrained() is true.
  size_t drainAllowingGaps(TraceConsumer &Consumer);

  /// True if every added event has been delivered.
  bool fullyDrained() const { return Pending == 0; }

  /// Number of added-but-undelivered events.
  size_t pendingEvents() const { return Pending; }

  /// Timestamp gaps skipped by drainAllowingGaps().
  uint64_t timestampGaps() const { return Gaps; }

private:
  size_t drainImpl(TraceConsumer &Consumer, bool AllowStale);

  unsigned NumCounters;
  ReplayOptions Options;
  std::vector<std::deque<EventRecord>> Streams;
  std::vector<uint64_t> NextTs;
  size_t Pending = 0;
  uint64_t Gaps = 0;
};

} // namespace literace

#endif // LITERACE_DETECTOR_REPLAY_H
