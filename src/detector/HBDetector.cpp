//===-- detector/HBDetector.cpp - Happens-before race detection ----------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/HBDetector.h"

#include "detector/ShardedDetector.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cassert>

using namespace literace;

HBDetector::HBDetector(RaceReport &Report) : Report(Report) {}

VectorClock &HBDetector::clockOf(ThreadId T) {
  if (T >= ThreadClocks.size())
    ThreadClocks.resize(T + 1);
  VectorClock &Clock = ThreadClocks[T];
  // A thread's own component starts at 1 so that its accesses have a
  // nonzero epoch distinguishable from "never accessed". A thread first
  // seen after a coverage gap starts behind the barrier: its fork edge
  // may have been in a dropped segment.
  if (Clock.get(T) == 0) {
    Clock.joinWith(GapBarrier);
    Clock.set(T, Clock.get(T) + 1);
  }
  return Clock;
}

void HBDetector::onCoverageGap() {
  ++CoverageGaps;
  // Conservative barrier: order everything before the gap before
  // everything after it. Missing HB edges then make the detector report
  // fewer races, never more — preserving "no false positives" on
  // salvaged traces.
  for (const VectorClock &Clock : ThreadClocks)
    GapBarrier.joinWith(Clock);
  for (size_t T = 0; T != ThreadClocks.size(); ++T) {
    VectorClock &Clock = ThreadClocks[T];
    if (Clock.get(static_cast<ThreadId>(T)) == 0)
      continue; // Not materialized; clockOf() applies the barrier later.
    Clock.joinWith(GapBarrier);
    // Tick so post-gap accesses are distinguishable from the pre-gap
    // knowledge just folded in.
    Clock.tick(static_cast<ThreadId>(T));
  }
}

const VectorClock &HBDetector::threadClock(ThreadId T) { return clockOf(T); }

void HBDetector::acquire(ThreadId T, SyncVar S) {
  auto It = SyncClocks.find(S);
  if (It != SyncClocks.end())
    clockOf(T).joinWith(It->second);
}

void HBDetector::release(ThreadId T, SyncVar S) {
  VectorClock &Thread = clockOf(T);
  SyncClocks[S].joinWith(Thread);
  // Tick so that accesses after the release are not confused with the
  // knowledge just published.
  Thread.tick(T);
}

void HBDetector::onEvent(const EventRecord &R) {
  onEventAt(R, NextEventIndex++);
}

void HBDetector::onEventAt(const EventRecord &R, uint64_t EventIndex) {
  CurrentEventIndex = EventIndex;
  switch (R.Kind) {
  case EventKind::ThreadStart:
  case EventKind::ThreadEnd:
    // Lifetime markers; fork/join edges arrive as sync events.
    (void)clockOf(R.Tid);
    return;
  case EventKind::PolicyMeta:
    // Elision-policy stamp; carries no access and no HB edge.
    return;
  case EventKind::Read:
  case EventKind::Write:
    onMemory(R);
    return;
  case EventKind::Acquire:
    ++SyncEvents;
    acquire(R.Tid, R.Addr);
    return;
  case EventKind::Release:
    ++SyncEvents;
    release(R.Tid, R.Addr);
    return;
  case EventKind::AcqRel:
  case EventKind::Alloc:
  case EventKind::Free:
    // Allocation events are §4.3 page synchronization: acquire+release.
    ++SyncEvents;
    acquire(R.Tid, R.Addr);
    release(R.Tid, R.Addr);
    return;
  }
  literaceUnreachable("invalid event kind");
}

void HBDetector::checkAgainst(const std::vector<AccessRecord> &Prior,
                              const EventRecord &New,
                              const VectorClock &NewClock,
                              bool PriorAreWrites) {
  const bool NewIsWrite = New.Kind == EventKind::Write;
  for (const AccessRecord &Old : Prior) {
    if (Old.Tid == New.Tid)
      continue;
    if (!PriorAreWrites && !NewIsWrite)
      continue; // Read/read pairs never conflict.
    if (NewClock.get(Old.Tid) >= Old.Clock)
      continue; // Ordered: Old happens-before New.
    RaceSighting Sighting;
    Sighting.FirstPc = Old.Site;
    Sighting.SecondPc = New.Pc;
    Sighting.Addr = New.Addr;
    Sighting.FirstTid = Old.Tid;
    Sighting.SecondTid = New.Tid;
    Sighting.FirstIsWrite = PriorAreWrites;
    Sighting.SecondIsWrite = NewIsWrite;
    Sighting.EventIndex = CurrentEventIndex;
    Report.record(Sighting);
  }
}

void HBDetector::updateAccessList(std::vector<AccessRecord> &List,
                                  ThreadId T, uint64_t Clock, Pc Site,
                                  const VectorClock &NewClock) {
  // Drop entries the new access happens-after: any future access racing a
  // dropped entry also races the new one (and with a conflicting kind,
  // because the new entry's kind matches or strengthens the list's kind).
  List.erase(std::remove_if(List.begin(), List.end(),
                            [&](const AccessRecord &Old) {
                              return NewClock.get(Old.Tid) >= Old.Clock;
                            }),
             List.end());
  List.push_back(AccessRecord{T, Clock, Site});
}

void HBDetector::onMemory(const EventRecord &R) {
  ++MemoryEvents;
  const ThreadId T = R.Tid;
  const VectorClock &Clock = clockOf(T);
  const uint64_t Epoch = Clock.get(T);
  AddressState &State = Shadow[R.Addr];

  // A read conflicts with prior writes; a write conflicts with both.
  checkAgainst(State.Writes, R, Clock, /*PriorAreWrites=*/true);
  if (R.Kind == EventKind::Write) {
    checkAgainst(State.Reads, R, Clock, /*PriorAreWrites=*/false);
    updateAccessList(State.Writes, T, Epoch, R.Pc, Clock);
    // A write that happens-after a read subsumes it: future accesses
    // unordered with that read are also unordered with this write, and
    // every access kind conflicts with a write.
    State.Reads.erase(std::remove_if(State.Reads.begin(), State.Reads.end(),
                                     [&](const AccessRecord &Old) {
                                       return Clock.get(Old.Tid) >=
                                              Old.Clock;
                                     }),
                      State.Reads.end());
  } else {
    // Reads must never prune writes: a later read racing a pruned write
    // would go unreported (read/read pairs do not conflict).
    updateAccessList(State.Reads, T, Epoch, R.Pc, Clock);
  }
}

bool literace::detectRaces(const Trace &T, RaceReport &Report,
                           const ReplayOptions &Options,
                           const DetectorOptions &DetOpts) {
  if (DetOpts.Shards <= 1) {
    HBDetector Detector(Report);
    return replayTrace(T, Detector, Options);
  }
  ShardedHBDetector Sharded(DetOpts);
  bool Ok = replayTrace(T, Sharded, Options);
  Sharded.finish(Report);
  return Ok;
}
