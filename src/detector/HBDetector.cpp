//===-- detector/HBDetector.cpp - Happens-before race detection ----------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/HBDetector.h"

#include "detector/ShardedDetector.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cassert>

using namespace literace;

HBDetector::HBDetector(RaceReport &Report) : Report(Report) {}

VectorClock &HBDetector::clockOf(ThreadId T) {
  if (T >= ThreadClocks.size())
    ThreadClocks.resize(T + 1);
  VectorClock &Clock = ThreadClocks[T];
  // A thread's own component starts at 1 so that its accesses have a
  // nonzero epoch distinguishable from "never accessed". A thread first
  // seen after a coverage gap starts behind the barrier: its fork edge
  // may have been in a dropped segment.
  if (Clock.get(T) == 0) {
    Clock.joinWith(GapBarrier);
    Clock.set(T, Clock.get(T) + 1);
  }
  return Clock;
}

void HBDetector::onCoverageGap() {
  ++CoverageGaps;
  // Conservative barrier: order everything before the gap before
  // everything after it. Missing HB edges then make the detector report
  // fewer races, never more — preserving "no false positives" on
  // salvaged traces.
  for (const VectorClock &Clock : ThreadClocks)
    GapBarrier.joinWith(Clock);
  for (size_t T = 0; T != ThreadClocks.size(); ++T) {
    VectorClock &Clock = ThreadClocks[T];
    if (Clock.get(static_cast<ThreadId>(T)) == 0)
      continue; // Not materialized; clockOf() applies the barrier later.
    Clock.joinWith(GapBarrier);
    // Tick so post-gap accesses are distinguishable from the pre-gap
    // knowledge just folded in.
    Clock.tick(static_cast<ThreadId>(T));
  }
}

const VectorClock &HBDetector::threadClock(ThreadId T) { return clockOf(T); }

void HBDetector::acquire(ThreadId T, SyncVar S) {
  auto It = SyncClocks.find(S);
  if (It != SyncClocks.end())
    clockOf(T).joinWith(It->second);
}

void HBDetector::release(ThreadId T, SyncVar S) {
  VectorClock &Thread = clockOf(T);
  SyncClocks[S].joinWith(Thread);
  // Tick so that accesses after the release are not confused with the
  // knowledge just published.
  Thread.tick(T);
}

void HBDetector::onEvent(const EventRecord &R) {
  onEventAt(R, NextEventIndex++);
}

void HBDetector::onEventAt(const EventRecord &R, uint64_t EventIndex) {
  CurrentEventIndex = EventIndex;
  switch (R.Kind) {
  case EventKind::ThreadStart:
  case EventKind::ThreadEnd:
    // Lifetime markers; fork/join edges arrive as sync events.
    (void)clockOf(R.Tid);
    return;
  case EventKind::PolicyMeta:
    // Elision-policy stamp; carries no access and no HB edge.
    return;
  case EventKind::Read:
  case EventKind::Write:
    onMemory(R);
    return;
  case EventKind::Acquire:
    ++SyncEvents;
    acquire(R.Tid, R.Addr);
    return;
  case EventKind::Release:
    ++SyncEvents;
    release(R.Tid, R.Addr);
    return;
  case EventKind::AcqRel:
  case EventKind::Alloc:
  case EventKind::Free:
    // Allocation events are §4.3 page synchronization: acquire+release.
    ++SyncEvents;
    acquire(R.Tid, R.Addr);
    release(R.Tid, R.Addr);
    return;
  }
  literaceUnreachable("invalid event kind");
}

LR_NOINLINE void HBDetector::reportRace(const AccessRecord &Old,
                                        const EventRecord &New,
                                        bool OldIsWrite) {
  RaceSighting Sighting;
  Sighting.FirstPc = Old.Site;
  Sighting.SecondPc = New.Pc;
  Sighting.Addr = New.Addr;
  Sighting.FirstTid = Old.Tid;
  Sighting.SecondTid = New.Tid;
  Sighting.FirstIsWrite = OldIsWrite;
  Sighting.SecondIsWrite = New.Kind == EventKind::Write;
  Sighting.EventIndex = CurrentEventIndex;
  Report.record(Sighting);
}

LR_ALWAYS_INLINE void HBDetector::onMemoryWith(const EventRecord &R,
                                               const VectorClock &Clock,
                                               uint64_t Epoch) {
  ++MemoryEvents;
  AddressState &State = Shadow.ref(R.Addr);

  // Each list is walked once: races are reported and the surviving
  // entries compacted in the same pass. Survivor order matches the old
  // checkAgainst + removeIf pair (both preserved relative order), so
  // reports are byte-identical.
  if (R.Kind == EventKind::Write) {
    // A write checks against both lists, replaces its own write entry,
    // and prunes every entry it happens-after: any future access racing
    // a pruned entry also races this write (and every kind conflicts
    // with a write), so nothing reportable is lost.
    uint32_t Out = 0;
    for (AccessRecord &Old : State.Writes) {
      if (Old.Tid != R.Tid && Clock.get(Old.Tid) < Old.Clock) {
        reportRace(Old, R, /*OldIsWrite=*/true);
        State.Writes[Out++] = Old; // Unordered: survives the prune.
      }
      // Ordered entries (own included: the thread's component is
      // monotone) are happens-before this write — pruned.
    }
    State.Writes.truncate(Out);
    State.Writes.push_back(AccessRecord{Epoch, R.Pc, R.Tid});
    Out = 0;
    for (AccessRecord &Old : State.Reads) {
      if (Old.Tid != R.Tid && Clock.get(Old.Tid) < Old.Clock) {
        reportRace(Old, R, /*OldIsWrite=*/false);
        State.Reads[Out++] = Old;
      }
    }
    State.Reads.truncate(Out);
  } else {
    for (const AccessRecord &Old : State.Writes)
      if (Old.Tid != R.Tid && Clock.get(Old.Tid) < Old.Clock)
        reportRace(Old, R, /*OldIsWrite=*/true);
    // Reads must never prune writes: a later read racing a pruned write
    // would go unreported (read/read pairs do not conflict). The read
    // list is updated in place; common case is the thread overwriting
    // its own previous entry.
    if (State.Reads.size() == 1 && State.Reads.front().Tid == R.Tid) {
      State.Reads.front() = AccessRecord{Epoch, R.Pc, R.Tid};
    } else {
      uint32_t Out = 0;
      for (AccessRecord &Old : State.Reads)
        if (Clock.get(Old.Tid) < Old.Clock)
          State.Reads[Out++] = Old; // Unordered with the new read.
      State.Reads.truncate(Out);
      State.Reads.push_back(AccessRecord{Epoch, R.Pc, R.Tid});
    }
  }
}

void HBDetector::onMemory(const EventRecord &R) {
  const VectorClock &Clock = clockOf(R.Tid);
  onMemoryWith(R, Clock, Clock.get(R.Tid));
}

size_t HBDetector::onMemoryRun(const EventRecord *Records, size_t MaxCount) {
  // One thread, no intervening sync within the run: the clock and epoch
  // hold until the first non-memory record, where the walk stops.
  const VectorClock &Clock = clockOf(Records[0].Tid);
  const uint64_t Epoch = Clock.get(Records[0].Tid);
  size_t I = 0;
  do {
    CurrentEventIndex = NextEventIndex++;
    onMemoryWith(Records[I], Clock, Epoch);
    ++I;
  } while (I != MaxCount && isMemoryKind(Records[I].Kind));
  return I;
}

bool literace::detectRaces(const Trace &T, RaceReport &Report,
                           const ReplayOptions &Options,
                           const DetectorOptions &DetOpts) {
  if (DetOpts.Shards <= 1) {
    HBDetector Detector(Report);
    return replayTraceWith(T, Detector, Options);
  }
  ShardedHBDetector Sharded(DetOpts);
  bool Ok = replayTraceWith(T, Sharded, Options);
  Sharded.finish(Report);
  return Ok;
}
