//===-- detector/VectorClock.cpp - Vector clocks --------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/VectorClock.h"

using namespace literace;

void VectorClock::grow(uint32_t N) {
  // Capacity stays a multiple of the SIMD block so rounded-up spans are
  // always in bounds; doubling keeps growth amortized-constant.
  uint32_t NewCap = std::max(Cap * 2, roundUpBlock(N));
  uint64_t *NewData = new uint64_t[NewCap](); // Zeroed: slack invariant.
  std::memcpy(NewData, data(), Sz * sizeof(uint64_t));
  releaseHeap();
  Heap = NewData;
  Cap = NewCap;
}

std::string VectorClock::str() const {
  std::string Out = "[";
  for (size_t I = 0; I != Sz; ++I) {
    if (I)
      Out += ", ";
    Out += std::to_string(data()[I]);
  }
  Out += "]";
  return Out;
}
