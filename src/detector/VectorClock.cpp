//===-- detector/VectorClock.cpp - Vector clocks --------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/VectorClock.h"

#include <algorithm>

using namespace literace;

void VectorClock::set(ThreadId T, uint64_t V) {
  if (T >= Clocks.size())
    Clocks.resize(T + 1, 0);
  Clocks[T] = V;
}

void VectorClock::joinWith(const VectorClock &Other) {
  if (Other.Clocks.size() > Clocks.size())
    Clocks.resize(Other.Clocks.size(), 0);
  for (size_t I = 0; I != Other.Clocks.size(); ++I)
    Clocks[I] = std::max(Clocks[I], Other.Clocks[I]);
}

bool VectorClock::dominates(const VectorClock &Other) const {
  for (size_t I = 0; I != Other.Clocks.size(); ++I)
    if (get(static_cast<ThreadId>(I)) < Other.Clocks[I])
      return false;
  return true;
}

bool VectorClock::operator==(const VectorClock &Other) const {
  size_t N = std::max(Clocks.size(), Other.Clocks.size());
  for (size_t I = 0; I != N; ++I)
    if (get(static_cast<ThreadId>(I)) != Other.get(static_cast<ThreadId>(I)))
      return false;
  return true;
}

std::string VectorClock::str() const {
  std::string Out = "[";
  for (size_t I = 0; I != Clocks.size(); ++I) {
    if (I)
      Out += ", ";
    Out += std::to_string(Clocks[I]);
  }
  Out += "]";
  return Out;
}
