//===-- detector/RaceReport.h - Race aggregation ----------------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregation of detected races. Following §5.3, every dynamic race
/// sighting is grouped by the unordered pair of static instructions
/// (program counters) involved; each group is a *static data race*, which
/// roughly corresponds to one synchronization bug. Static races are
/// classified rare/frequent by how often they manifest per million memory
/// operations (§5.3.1).
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_DETECTOR_RACEREPORT_H
#define LITERACE_DETECTOR_RACEREPORT_H

#include "runtime/Ids.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace literace {

class FunctionRegistry;

/// One dynamic observation of a race: two conflicting, unordered accesses.
struct RaceSighting {
  Pc FirstPc = 0;
  Pc SecondPc = 0;
  uint64_t Addr = 0;
  ThreadId FirstTid = 0;
  ThreadId SecondTid = 0;
  bool FirstIsWrite = false;
  bool SecondIsWrite = false;
  /// Global replay sequence number of the access that completed the pair
  /// (the later of the two). Sightings recorded by one serial replay carry
  /// nondecreasing indices; the sharded pipeline stamps each event with its
  /// serial-replay number before fan-out, so first-occurrence bookkeeping
  /// is identical no matter how the work was partitioned.
  uint64_t EventIndex = 0;
};

/// Unordered pair of access sites identifying a static race.
using StaticRaceKey = std::pair<Pc, Pc>;

/// Builds the canonical (sorted) key for a pair of access sites.
inline StaticRaceKey makeStaticRaceKey(Pc A, Pc B) {
  return A <= B ? StaticRaceKey{A, B} : StaticRaceKey{B, A};
}

/// Aggregated information about one static race.
struct StaticRace {
  StaticRaceKey Key;
  /// Number of dynamic sightings.
  uint64_t DynamicCount = 0;
  /// Address of the first sighting (for triage).
  uint64_t ExampleAddr = 0;
  /// Replay sequence number of the first sighting; with ExampleAddr it
  /// makes aggregation independent of recording/merge order.
  uint64_t FirstEventIndex = 0;
  /// True if any sighting was write/write.
  bool SawWriteWrite = false;
};

/// Collects race sightings and aggregates them into static races.
class RaceReport {
public:
  /// The §5.3.1 threshold: a static race is rare if it manifested fewer
  /// than this many times per million memory operations.
  static constexpr double RarePerMillionMemOps = 3.0;

  /// Records one dynamic sighting.
  void record(const RaceSighting &Sighting);

  /// Folds \p Other into this report. Per-key counts add, write/write
  /// flags OR, and the first-occurrence fields (ExampleAddr,
  /// FirstEventIndex) are taken from whichever sighting has the smaller
  /// EventIndex — so merging the per-shard reports of a sharded detection
  /// run yields the same aggregate in any merge order, byte-identical to
  /// a serial run over the same replay.
  void merge(const RaceReport &Other);

  /// Number of distinct static races.
  size_t numStaticRaces() const { return Races.size(); }

  /// Total dynamic sightings.
  uint64_t numDynamicSightings() const { return TotalSightings; }

  /// True if the pair (A, B) was reported (order-insensitive).
  bool contains(Pc A, Pc B) const {
    return Races.count(makeStaticRaceKey(A, B)) != 0;
  }

  /// All static races in the canonical report order: an explicit stable
  /// sort by (site pair, first event index). Every consumer that renders
  /// or compares reports goes through this, so output never depends on
  /// container iteration order.
  std::vector<StaticRace> staticRaces() const;

  /// Static races with neither site in \p SuppressedSites. The paper
  /// notes that some detected races are benign or intentional (Table 4's
  /// caption, §3.4); suppressions let a user retire triaged sites so
  /// reruns surface only new findings.
  std::vector<StaticRace>
  staticRacesExcluding(const std::set<Pc> &SuppressedSites) const;

  /// The set of static race keys (for detection-rate comparisons).
  std::set<StaticRaceKey> keys() const;

  /// The set of addresses any sighting occurred on (used to compare
  /// detector backends, which agree on racy addresses but may pick
  /// different witness pc pairs).
  const std::set<uint64_t> &racyAddresses() const {
    return SightingAddresses;
  }

  /// True if \p Race is rare for an execution of \p TotalMemOps logged
  /// memory operations (§5.3.1: fewer than 3 manifestations per million).
  static bool isRare(const StaticRace &Race, uint64_t TotalMemOps);

  /// Splits keys() into (rare, frequent) for an execution of
  /// \p TotalMemOps memory operations.
  std::pair<std::set<StaticRaceKey>, std::set<StaticRaceKey>>
  splitRareFrequent(uint64_t TotalMemOps) const;

  /// Human-readable multi-line summary; resolves function names through
  /// \p Registry if provided.
  std::string describe(const FunctionRegistry *Registry = nullptr) const;

private:
  std::map<StaticRaceKey, StaticRace> Races;
  std::set<uint64_t> SightingAddresses;
  uint64_t TotalSightings = 0;
};

} // namespace literace

#endif // LITERACE_DETECTOR_RACEREPORT_H
