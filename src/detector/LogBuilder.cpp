//===-- detector/LogBuilder.cpp - Synthetic trace construction -----------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "detector/LogBuilder.h"

using namespace literace;

LogBuilder::LogBuilder(unsigned NumTimestampCounters)
    : Timestamps(NumTimestampCounters), NumCounters(NumTimestampCounters) {
  Streams.resize(1);
}

LogBuilder &LogBuilder::onThread(ThreadId Tid) {
  if (Tid >= Streams.size())
    Streams.resize(Tid + 1);
  Current = Tid;
  return *this;
}

LogBuilder &LogBuilder::append(EventKind K, uint64_t Addr, Pc Site,
                               uint16_t Mask, bool DrawTs) {
  EventRecord R;
  R.Addr = Addr;
  R.Pc = Site;
  R.Tid = Current;
  R.Kind = K;
  R.Mask = Mask;
  if (DrawTs)
    R.Ts = Timestamps.draw(Addr);
  Streams[Current].push_back(R);
  return *this;
}

LogBuilder &LogBuilder::threadStart() {
  return append(EventKind::ThreadStart, 0, 0, 0, false);
}

LogBuilder &LogBuilder::threadEnd() {
  return append(EventKind::ThreadEnd, 0, 0, 0, false);
}

LogBuilder &LogBuilder::read(uint64_t Addr, Pc Site, uint16_t Mask) {
  return append(EventKind::Read, Addr, Site, Mask, false);
}

LogBuilder &LogBuilder::write(uint64_t Addr, Pc Site, uint16_t Mask) {
  return append(EventKind::Write, Addr, Site, Mask, false);
}

LogBuilder &LogBuilder::acquire(SyncVar S, Pc Site) {
  return append(EventKind::Acquire, S, Site, 0, true);
}

LogBuilder &LogBuilder::release(SyncVar S, Pc Site) {
  return append(EventKind::Release, S, Site, 0, true);
}

LogBuilder &LogBuilder::acqRel(SyncVar S, Pc Site) {
  return append(EventKind::AcqRel, S, Site, 0, true);
}

LogBuilder &LogBuilder::alloc(SyncVar PageVar) {
  return append(EventKind::Alloc, PageVar, 0, 0, true);
}

LogBuilder &LogBuilder::free(SyncVar PageVar) {
  return append(EventKind::Free, PageVar, 0, 0, true);
}

LogBuilder &LogBuilder::raw(EventRecord R) {
  Streams[Current].push_back(R);
  return *this;
}

LogBuilder &LogBuilder::skipTimestamps(SyncVar S, unsigned N) {
  for (unsigned I = 0; I != N; ++I)
    Timestamps.draw(S);
  return *this;
}

Trace LogBuilder::build() const {
  Trace T;
  T.NumTimestampCounters = NumCounters;
  T.PerThread = Streams;
  return T;
}
