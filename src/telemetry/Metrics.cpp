//===-- telemetry/Metrics.cpp - Lock-free metrics registry ----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Metrics.h"

#include "telemetry/Json.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

using namespace literace;
using namespace literace::telemetry;

bool literace::telemetry::parseTelemetryEnabled(const char *Value) {
  if (!Value)
    return true;
  std::string Lower;
  for (const char *P = Value; *P; ++P)
    Lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*P)));
  return Lower != "off" && Lower != "0" && Lower != "false";
}

bool literace::telemetry::telemetryEnabled() {
  static const bool Enabled =
      parseTelemetryEnabled(std::getenv("LITERACE_TELEMETRY"));
  return Enabled;
}

uint64_t literace::telemetry::histogramBucketUpperBound(unsigned B) {
  if (B == 0)
    return 0;
  if (B >= HistogramBuckets - 1)
    return UINT64_MAX;
  return (uint64_t{1} << B) - 1;
}

MetricsRegistry *literace::telemetry::resolveRegistry(MetricsRegistry *Override,
                                                      bool ForceOff) {
  if (ForceOff)
    return nullptr;
  if (Override)
    return Override;
  return telemetryEnabled() ? &MetricsRegistry::global() : nullptr;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

namespace {

uint64_t nextRegistryUid() {
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local cache of (registry uid -> slab) so threadSlab() is one
/// vector scan (typically one entry) after the first call. Entries for
/// destroyed registries never match again: uids are process-unique.
struct SlabCacheEntry {
  uint64_t Uid;
  ThreadSlab *Slab;
};

thread_local std::vector<SlabCacheEntry> TlsSlabCache;

} // namespace

MetricsRegistry::MetricsRegistry() : Uid(nextRegistryUid()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry &MetricsRegistry::global() {
  // Leaked intentionally: worker threads may bump cells during process
  // teardown, after static destructors would have run.
  static MetricsRegistry *G = new MetricsRegistry();
  return *G;
}

uint32_t MetricsRegistry::registerMetric(std::string_view Name, Kind K,
                                         uint32_t Cells) {
  std::lock_guard<std::mutex> Guard(Lock);
  for (const Metric &M : Metrics)
    if (M.Name == Name) {
      assert(M.MetricKind == K && "metric re-registered with another kind");
      return M.Cell;
    }
  assert(NextCell + Cells <= SlabCells &&
         "metric catalogue outgrew SlabCells; raise it");
  uint32_t Cell = NextCell;
  NextCell += Cells;
  Metrics.push_back({std::string(Name), K, Cell});
  return Cell;
}

CounterId MetricsRegistry::counter(std::string_view Name) {
  return CounterId{registerMetric(Name, Kind::Counter, 1)};
}

GaugeId MetricsRegistry::gaugeMax(std::string_view Name) {
  return GaugeId{registerMetric(Name, Kind::GaugeMax, 1)};
}

HistogramId MetricsRegistry::histogram(std::string_view Name) {
  return HistogramId{registerMetric(Name, Kind::Histogram, HistogramCells)};
}

ThreadSlab &MetricsRegistry::threadSlab() {
  for (const SlabCacheEntry &E : TlsSlabCache)
    if (E.Uid == Uid)
      return *E.Slab;
  ThreadSlab *Slab;
  {
    std::lock_guard<std::mutex> Guard(Lock);
    Slabs.push_back(std::make_unique<ThreadSlab>());
    Slab = Slabs.back().get();
  }
  TlsSlabCache.push_back({Uid, Slab});
  return *Slab;
}

size_t MetricsRegistry::numSlabs() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Slabs.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Guard(Lock);
  MetricsSnapshot Snap;
  for (const Metric &M : Metrics) {
    switch (M.MetricKind) {
    case Kind::Counter: {
      uint64_t Sum = 0;
      for (const auto &S : Slabs)
        Sum += S->read(M.Cell);
      Snap.Counters.emplace_back(M.Name, Sum);
      break;
    }
    case Kind::GaugeMax: {
      uint64_t Max = 0;
      for (const auto &S : Slabs)
        Max = std::max(Max, S->read(M.Cell));
      Snap.Gauges.emplace_back(M.Name, Max);
      break;
    }
    case Kind::Histogram: {
      HistogramValue H;
      H.Name = M.Name;
      for (const auto &S : Slabs) {
        for (unsigned B = 0; B != HistogramBuckets; ++B)
          H.Buckets[B] += S->read(M.Cell + B);
        H.Count += S->read(M.Cell + HistogramBuckets);
        H.Sum += S->read(M.Cell + HistogramBuckets + 1);
      }
      Snap.Histograms.push_back(std::move(H));
      break;
    }
    }
  }
  auto ByName = [](const auto &A, const auto &B) { return A.first < B.first; };
  std::sort(Snap.Counters.begin(), Snap.Counters.end(), ByName);
  std::sort(Snap.Gauges.begin(), Snap.Gauges.end(), ByName);
  std::sort(Snap.Histograms.begin(), Snap.Histograms.end(),
            [](const HistogramValue &A, const HistogramValue &B) {
              return A.Name < B.Name;
            });
  return Snap;
}

//===----------------------------------------------------------------------===//
// HistogramValue / MetricsSnapshot
//===----------------------------------------------------------------------===//

uint64_t HistogramValue::quantileUpperBound(double Q) const {
  if (Count == 0)
    return 0;
  uint64_t Target = static_cast<uint64_t>(
      Q * static_cast<double>(Count) + 0.5);
  if (Target == 0)
    Target = 1;
  uint64_t Seen = 0;
  for (unsigned B = 0; B != HistogramBuckets; ++B) {
    Seen += Buckets[B];
    if (Seen >= Target)
      return histogramBucketUpperBound(B);
  }
  return histogramBucketUpperBound(HistogramBuckets - 1);
}

namespace {

template <typename VecT>
const typename VecT::value_type *findByName(const VecT &V,
                                            std::string_view Name) {
  for (const auto &E : V)
    if (E.first == Name)
      return &E;
  return nullptr;
}

template <typename VecT>
void setSorted(VecT &V, std::string_view Name, uint64_t Value) {
  for (auto &E : V)
    if (E.first == Name) {
      E.second = Value;
      return;
    }
  V.emplace_back(std::string(Name), Value);
  std::sort(V.begin(), V.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
}

} // namespace

uint64_t MetricsSnapshot::counter(std::string_view Name,
                                  uint64_t Default) const {
  const auto *E = findByName(Counters, Name);
  return E ? E->second : Default;
}

uint64_t MetricsSnapshot::gauge(std::string_view Name,
                                uint64_t Default) const {
  const auto *E = findByName(Gauges, Name);
  return E ? E->second : Default;
}

const HistogramValue *
MetricsSnapshot::histogram(std::string_view Name) const {
  for (const HistogramValue &H : Histograms)
    if (H.Name == Name)
      return &H;
  return nullptr;
}

void MetricsSnapshot::setCounter(std::string_view Name, uint64_t Value) {
  setSorted(Counters, Name, Value);
}

void MetricsSnapshot::setGauge(std::string_view Name, uint64_t Value) {
  setSorted(Gauges, Name, Value);
}

void MetricsSnapshot::setHistogram(HistogramValue Value) {
  for (HistogramValue &H : Histograms)
    if (H.Name == Value.Name) {
      H = std::move(Value);
      return;
    }
  Histograms.push_back(std::move(Value));
  std::sort(Histograms.begin(), Histograms.end(),
            [](const HistogramValue &A, const HistogramValue &B) {
              return A.Name < B.Name;
            });
}

void MetricsSnapshot::stampCapture(uint64_t UnixMillis, uint64_t Pid) {
  if (UnixMillis == 0)
    UnixMillis = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  if (Pid == 0)
    Pid = static_cast<uint64_t>(::getpid());
  CaptureUnixMillis = UnixMillis;
  EmitterPid = Pid;
}

void MetricsSnapshot::merge(const MetricsSnapshot &Other) {
  // Capture metadata: the merged snapshot is as fresh as its freshest
  // input; the pid survives only when every input agrees (a merge across
  // processes has no single emitter).
  CaptureUnixMillis = std::max(CaptureUnixMillis, Other.CaptureUnixMillis);
  if (EmitterPid == 0)
    EmitterPid = Other.EmitterPid;
  else if (Other.EmitterPid != 0 && Other.EmitterPid != EmitterPid)
    EmitterPid = 0;
  for (const auto &[Name, Value] : Other.Counters)
    setCounter(Name, counter(Name) + Value);
  for (const auto &[Name, Value] : Other.Gauges)
    setGauge(Name, std::max(gauge(Name), Value));
  for (const HistogramValue &H : Other.Histograms) {
    if (const HistogramValue *Mine = histogram(H.Name)) {
      HistogramValue Merged = *Mine;
      Merged.Count += H.Count;
      Merged.Sum += H.Sum;
      for (unsigned B = 0; B != HistogramBuckets; ++B)
        Merged.Buckets[B] += H.Buckets[B];
      setHistogram(std::move(Merged));
    } else {
      setHistogram(H);
    }
  }
}

std::string MetricsSnapshot::toJson() const {
  std::string Out = "{\n  \"schema\": \"literace.metrics.v1\",\n";
  char Buf[64];

  // Additive capture metadata: emitted only when stamped, so documents
  // from pre-stamp writers and unstamped snapshots are byte-identical to
  // the original schema.
  if (CaptureUnixMillis != 0 || EmitterPid != 0) {
    Out += "  \"meta\": {";
    bool First = true;
    if (CaptureUnixMillis != 0) {
      std::snprintf(Buf, sizeof(Buf), "\"captured_unix_ms\": %llu",
                    static_cast<unsigned long long>(CaptureUnixMillis));
      Out += Buf;
      First = false;
    }
    if (EmitterPid != 0) {
      if (!First)
        Out += ", ";
      std::snprintf(Buf, sizeof(Buf), "\"pid\": %llu",
                    static_cast<unsigned long long>(EmitterPid));
      Out += Buf;
    }
    Out += "},\n";
  }

  auto EmitMap = [&](const char *Key, const auto &Entries) {
    Out += "  \"";
    Out += Key;
    Out += "\": {";
    bool First = true;
    for (const auto &[Name, Value] : Entries) {
      if (!First)
        Out += ",";
      First = false;
      Out += "\n    \"" + jsonEscape(Name) + "\": ";
      std::snprintf(Buf, sizeof(Buf), "%llu",
                    static_cast<unsigned long long>(Value));
      Out += Buf;
    }
    Out += Entries.empty() ? "}" : "\n  }";
  };

  EmitMap("counters", Counters);
  Out += ",\n";
  EmitMap("gauges", Gauges);
  Out += ",\n  \"histograms\": {";
  bool First = true;
  for (const HistogramValue &H : Histograms) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n    \"" + jsonEscape(H.Name) + "\": {\"count\": ";
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(H.Count));
    Out += Buf;
    Out += ", \"sum\": ";
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(H.Sum));
    Out += Buf;
    Out += ", \"buckets\": [";
    for (unsigned B = 0; B != HistogramBuckets; ++B) {
      if (B)
        Out += ",";
      std::snprintf(Buf, sizeof(Buf), "%llu",
                    static_cast<unsigned long long>(H.Buckets[B]));
      Out += Buf;
    }
    Out += "]}";
  }
  Out += Histograms.empty() ? "}" : "\n  }";
  Out += "\n}\n";
  return Out;
}

std::optional<MetricsSnapshot>
MetricsSnapshot::fromJson(std::string_view Json) {
  std::optional<JsonValue> Doc = parseJson(Json);
  if (!Doc || !Doc->isObject())
    return std::nullopt;
  const JsonValue *Schema = Doc->find("schema");
  if (!Schema || !Schema->isString() ||
      Schema->Str != "literace.metrics.v1")
    return std::nullopt;

  MetricsSnapshot Snap;
  if (const JsonValue *Meta = Doc->find("meta")) {
    if (!Meta->isObject())
      return std::nullopt;
    if (const JsonValue *Ts = Meta->find("captured_unix_ms")) {
      if (!Ts->IsUInt)
        return std::nullopt;
      Snap.CaptureUnixMillis = Ts->UInt;
    }
    if (const JsonValue *Pid = Meta->find("pid")) {
      if (!Pid->IsUInt)
        return std::nullopt;
      Snap.EmitterPid = Pid->UInt;
    }
  }
  auto ReadMap = [](const JsonValue *Map,
                    std::vector<std::pair<std::string, uint64_t>> &Out) {
    if (!Map)
      return true; // absent section = empty
    if (!Map->isObject())
      return false;
    for (const auto &[Name, V] : Map->Object) {
      if (!V.isNumber() || !V.IsUInt)
        return false;
      Out.emplace_back(Name, V.UInt);
    }
    return true;
  };
  if (!ReadMap(Doc->find("counters"), Snap.Counters) ||
      !ReadMap(Doc->find("gauges"), Snap.Gauges))
    return std::nullopt;

  if (const JsonValue *Hists = Doc->find("histograms")) {
    if (!Hists->isObject())
      return std::nullopt;
    for (const auto &[Name, V] : Hists->Object) {
      const JsonValue *Count = V.find("count");
      const JsonValue *Sum = V.find("sum");
      const JsonValue *Buckets = V.find("buckets");
      if (!Count || !Count->IsUInt || !Sum || !Sum->IsUInt || !Buckets ||
          !Buckets->isArray() ||
          Buckets->Array.size() != HistogramBuckets)
        return std::nullopt;
      HistogramValue H;
      H.Name = Name;
      H.Count = Count->UInt;
      H.Sum = Sum->UInt;
      for (unsigned B = 0; B != HistogramBuckets; ++B) {
        if (!Buckets->Array[B].IsUInt)
          return std::nullopt;
        H.Buckets[B] = Buckets->Array[B].UInt;
      }
      Snap.Histograms.push_back(std::move(H));
    }
  }
  auto ByName = [](const auto &A, const auto &B) { return A.first < B.first; };
  std::sort(Snap.Counters.begin(), Snap.Counters.end(), ByName);
  std::sort(Snap.Gauges.begin(), Snap.Gauges.end(), ByName);
  std::sort(Snap.Histograms.begin(), Snap.Histograms.end(),
            [](const HistogramValue &A, const HistogramValue &B) {
              return A.Name < B.Name;
            });
  return Snap;
}

std::string MetricsSnapshot::describe() const {
  std::string Out;
  char Line[192];
  if (CaptureUnixMillis != 0 || EmitterPid != 0) {
    std::snprintf(Line, sizeof(Line),
                  "  captured at unix_ms=%llu by pid=%llu\n",
                  static_cast<unsigned long long>(CaptureUnixMillis),
                  static_cast<unsigned long long>(EmitterPid));
    Out += Line;
  }
  for (const auto &[Name, Value] : Counters) {
    std::snprintf(Line, sizeof(Line), "  %-36s %14llu\n", Name.c_str(),
                  static_cast<unsigned long long>(Value));
    Out += Line;
  }
  for (const auto &[Name, Value] : Gauges) {
    std::snprintf(Line, sizeof(Line), "  %-36s %14llu (max)\n",
                  Name.c_str(), static_cast<unsigned long long>(Value));
    Out += Line;
  }
  for (const HistogramValue &H : Histograms) {
    std::snprintf(Line, sizeof(Line),
                  "  %-36s n=%llu mean=%.1f p50<=%llu p99<=%llu\n",
                  H.Name.c_str(),
                  static_cast<unsigned long long>(H.Count), H.mean(),
                  static_cast<unsigned long long>(H.quantileUpperBound(0.5)),
                  static_cast<unsigned long long>(
                      H.quantileUpperBound(0.99)));
    Out += Line;
  }
  return Out;
}
