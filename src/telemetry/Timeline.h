//===-- telemetry/Timeline.h - Chrome/Perfetto trace export ----*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chrome trace-event (Perfetto-loadable) timeline export
/// (docs/TELEMETRY.md). Two producers feed the same JSON shape:
///
///   - buildTraceTimeline(): renders a logged Trace offline. The time
///     axis is *virtual* — one microsecond-unit tick per event in the
///     thread's stream — because EventRecords carry no wall clock. Each
///     thread becomes a lane of "burst" slices (contiguous memory ops
///     from one function, i.e. sampled activations) plus counter tracks
///     of cumulative memory/sync ops.
///
///   - TraceRecorder: live wall-clock spans recorded by running
///     components (per-thread log flushes, shard worker lifetimes, merge
///     phases). Gated on the LITERACE_TELEMETRY kill switch; bounded.
///
/// A structural validator for the emitted JSON backs the tests, so any
/// file we write is mechanically checked to load in ui.perfetto.dev.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_TELEMETRY_TIMELINE_H
#define LITERACE_TELEMETRY_TIMELINE_H

#include "runtime/EventLog.h"
#include "support/Timer.h"

#include <mutex>
#include <string>
#include <vector>

namespace literace {

class FunctionRegistry;

namespace telemetry {

/// Process lane ids used on the shared timeline.
constexpr uint32_t TimelinePidRuntime = 1;  ///< instrumented app threads
constexpr uint32_t TimelinePidDetector = 2; ///< analysis pipeline

/// One Chrome trace-event entry. Only the phases we emit are modeled:
/// 'X' (complete slice), 'C' (counter sample), 'i' (instant), 'M'
/// (metadata, e.g. thread_name).
struct TraceEvent {
  std::string Name;
  std::string Cat;
  char Phase = 'X';
  uint64_t TsUs = 0;
  uint64_t DurUs = 0; // 'X' only
  uint32_t Pid = 0;
  uint32_t Tid = 0;
  /// Numeric args ('C' counters sample these; 'X'/'i' annotate).
  std::vector<std::pair<std::string, uint64_t>> Args;
  /// String args ('M' thread_name uses {"name": ...}).
  std::vector<std::pair<std::string, std::string>> StrArgs;
};

/// Collects trace events and serializes them as Chrome trace-event JSON.
class TraceWriter {
public:
  void add(TraceEvent E) { Events.push_back(std::move(E)); }

  /// Convenience: metadata event naming a thread lane.
  void nameThread(uint32_t Pid, uint32_t Tid, std::string Name);

  /// Convenience: metadata event naming a process lane.
  void nameProcess(uint32_t Pid, std::string Name);

  /// Appends every event of \p Other (merging producers onto the shared
  /// timeline).
  void append(const TraceWriter &Other);

  size_t size() const { return Events.size(); }
  bool empty() const { return Events.empty(); }
  const std::vector<TraceEvent> &events() const { return Events; }

  /// Serializes to {"traceEvents": [...], ...}. Deterministic given the
  /// insertion order.
  std::string toJson() const;

  /// Writes toJson() to \p Path; false on I/O failure.
  bool writeFile(const std::string &Path) const;

private:
  std::vector<TraceEvent> Events;
};

/// Structurally validates Chrome trace-event JSON: a top-level object
/// with a "traceEvents" array whose entries carry the keys Perfetto
/// requires for their phase. On failure returns false and, when \p Error
/// is non-null, stores a diagnostic.
bool validateChromeTraceJson(std::string_view Json,
                             std::string *Error = nullptr);

/// Renders a logged trace on the virtual-time axis described in the file
/// comment. \p Registry resolves function names when provided. At most
/// \p MaxSlicesPerThread burst slices are kept per thread (adjacent
/// bursts merge beyond it, so long logs still render).
TraceWriter buildTraceTimeline(const Trace &T,
                               const FunctionRegistry *Registry = nullptr,
                               size_t MaxSlicesPerThread = 4096);

/// Thread-safe live span recorder for low-frequency pipeline events
/// (flushes, shard worker lifetimes, merges). Spans are dropped past a
/// fixed cap so a runaway producer cannot exhaust memory; the drop count
/// is reported by drainWriter().
class TraceRecorder {
public:
  /// The process-global recorder. Recording is a no-op when the
  /// LITERACE_TELEMETRY kill switch is off.
  static TraceRecorder &global();

  TraceRecorder() = default;

  /// Microseconds since this recorder was constructed (the live
  /// timeline's epoch).
  uint64_t nowUs() const {
    return Epoch.nanoseconds() / 1000;
  }

  /// Records a completed span. No-op when disabled or at capacity.
  void addSpan(std::string Name, std::string Cat, uint32_t Pid,
               uint32_t Tid, uint64_t StartUs, uint64_t DurUs,
               std::vector<std::pair<std::string, uint64_t>> Args = {});

  /// Records an instant event.
  void addInstant(std::string Name, std::string Cat, uint32_t Pid,
                  uint32_t Tid, uint64_t TsUs);

  bool enabled() const;
  size_t size() const;

  /// Copies everything recorded so far into a TraceWriter (with process
  /// lane names and a dropped-span annotation when the cap was hit).
  TraceWriter drainWriter() const;

  static constexpr size_t MaxSpans = 100000;

private:
  WallTimer Epoch;
  mutable std::mutex Lock;
  std::vector<TraceEvent> Spans;
  uint64_t Dropped = 0;
};

} // namespace telemetry
} // namespace literace

#endif // LITERACE_TELEMETRY_TIMELINE_H
