//===-- telemetry/Timeline.cpp - Chrome/Perfetto trace export -------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Timeline.h"

#include "runtime/FunctionRegistry.h"
#include "telemetry/Json.h"
#include "telemetry/Metrics.h"

#include <algorithm>
#include <cstdio>

using namespace literace;
using namespace literace::telemetry;

//===----------------------------------------------------------------------===//
// TraceWriter
//===----------------------------------------------------------------------===//

void TraceWriter::nameThread(uint32_t Pid, uint32_t Tid, std::string Name) {
  TraceEvent E;
  E.Name = "thread_name";
  E.Phase = 'M';
  E.Pid = Pid;
  E.Tid = Tid;
  E.StrArgs.emplace_back("name", std::move(Name));
  add(std::move(E));
}

void TraceWriter::nameProcess(uint32_t Pid, std::string Name) {
  TraceEvent E;
  E.Name = "process_name";
  E.Phase = 'M';
  E.Pid = Pid;
  E.StrArgs.emplace_back("name", std::move(Name));
  add(std::move(E));
}

void TraceWriter::append(const TraceWriter &Other) {
  Events.insert(Events.end(), Other.Events.begin(), Other.Events.end());
}

std::string TraceWriter::toJson() const {
  std::string Out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  char Buf[64];
  bool First = true;
  for (const TraceEvent &E : Events) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n{\"name\": \"" + jsonEscape(E.Name) + "\", \"ph\": \"";
    Out += E.Phase;
    Out += "\"";
    if (!E.Cat.empty())
      Out += ", \"cat\": \"" + jsonEscape(E.Cat) + "\"";
    std::snprintf(Buf, sizeof(Buf),
                  ", \"ts\": %llu, \"pid\": %u, \"tid\": %u",
                  static_cast<unsigned long long>(E.TsUs), E.Pid, E.Tid);
    Out += Buf;
    if (E.Phase == 'X') {
      std::snprintf(Buf, sizeof(Buf), ", \"dur\": %llu",
                    static_cast<unsigned long long>(E.DurUs));
      Out += Buf;
    }
    if (E.Phase == 'i')
      Out += ", \"s\": \"t\""; // thread-scoped instant
    if (!E.Args.empty() || !E.StrArgs.empty()) {
      Out += ", \"args\": {";
      bool FirstArg = true;
      for (const auto &[K, V] : E.Args) {
        if (!FirstArg)
          Out += ", ";
        FirstArg = false;
        Out += "\"" + jsonEscape(K) + "\": ";
        std::snprintf(Buf, sizeof(Buf), "%llu",
                      static_cast<unsigned long long>(V));
        Out += Buf;
      }
      for (const auto &[K, V] : E.StrArgs) {
        if (!FirstArg)
          Out += ", ";
        FirstArg = false;
        Out += "\"" + jsonEscape(K) + "\": \"" + jsonEscape(V) + "\"";
      }
      Out += "}";
    }
    Out += "}";
  }
  Out += "\n]}\n";
  return Out;
}

bool TraceWriter::writeFile(const std::string &Path) const {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return false;
  std::string Json = toJson();
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), File);
  return std::fclose(File) == 0 && Written == Json.size();
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

bool literace::telemetry::validateChromeTraceJson(std::string_view Json,
                                                  std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  std::optional<JsonValue> Doc = parseJson(Json);
  if (!Doc)
    return Fail("not valid JSON");
  if (!Doc->isObject())
    return Fail("top level is not an object");
  const JsonValue *Events = Doc->find("traceEvents");
  if (!Events || !Events->isArray())
    return Fail("missing traceEvents array");
  for (size_t I = 0; I != Events->Array.size(); ++I) {
    const JsonValue &E = Events->Array[I];
    std::string Where = "traceEvents[" + std::to_string(I) + "]";
    if (!E.isObject())
      return Fail(Where + " is not an object");
    const JsonValue *Ph = E.find("ph");
    if (!Ph || !Ph->isString() || Ph->Str.size() != 1)
      return Fail(Where + " has no one-character ph");
    const JsonValue *Name = E.find("name");
    if (!Name || !Name->isString())
      return Fail(Where + " has no name");
    for (const char *Key : {"pid", "tid"}) {
      const JsonValue *V = E.find(Key);
      if (!V || !V->isNumber())
        return Fail(Where + " has no numeric " + Key);
    }
    char Phase = Ph->Str[0];
    if (Phase != 'M') {
      const JsonValue *Ts = E.find("ts");
      if (!Ts || !Ts->isNumber())
        return Fail(Where + " has no numeric ts");
    }
    if (Phase == 'X') {
      const JsonValue *Dur = E.find("dur");
      if (!Dur || !Dur->isNumber())
        return Fail(Where + " is a complete event without dur");
    }
    if (Phase == 'C') {
      const JsonValue *Args = E.find("args");
      if (!Args || !Args->isObject() || Args->Object.empty())
        return Fail(Where + " is a counter event without args");
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Offline timeline from a logged Trace
//===----------------------------------------------------------------------===//

namespace {

/// One contiguous run of memory ops from the same function in one
/// thread's stream (i.e. one or more back-to-back sampled activations).
struct Burst {
  FunctionId F = 0;
  uint64_t StartTick = 0;
  uint64_t EndTick = 0; // exclusive
  uint64_t MemOps = 0;
  uint64_t SampledOps = 0; // mask has a sampler-slot bit
};

std::string functionName(const FunctionRegistry *Registry, FunctionId F) {
  if (Registry && F < Registry->size())
    return Registry->name(F);
  return "fn" + std::to_string(F);
}

} // namespace

TraceWriter literace::telemetry::buildTraceTimeline(
    const Trace &T, const FunctionRegistry *Registry,
    size_t MaxSlicesPerThread) {
  TraceWriter W;
  W.nameProcess(TimelinePidRuntime, "literace runtime (virtual time)");

  for (size_t Tid = 0; Tid != T.PerThread.size(); ++Tid) {
    const std::vector<EventRecord> &Stream = T.PerThread[Tid];
    W.nameThread(TimelinePidRuntime, static_cast<uint32_t>(Tid),
                 "thread " + std::to_string(Tid));

    // Pass 1: collect bursts of contiguous memory ops per function.
    std::vector<Burst> Bursts;
    for (uint64_t Tick = 0; Tick != Stream.size(); ++Tick) {
      const EventRecord &R = Stream[Tick];
      if (!isMemoryKind(R.Kind))
        continue;
      FunctionId F = pcFunction(R.Pc);
      bool Sampled = (R.Mask & ~FullLogMaskBit) != 0;
      if (!Bursts.empty() && Bursts.back().F == F &&
          Bursts.back().EndTick == Tick) {
        Bursts.back().EndTick = Tick + 1;
        ++Bursts.back().MemOps;
        Bursts.back().SampledOps += Sampled ? 1 : 0;
      } else {
        Burst B;
        B.F = F;
        B.StartTick = Tick;
        B.EndTick = Tick + 1;
        B.MemOps = 1;
        B.SampledOps = Sampled ? 1 : 0;
        Bursts.push_back(B);
      }
    }

    // Coarsen if over budget: merge adjacent bursts pairwise until the
    // lane fits. Keeps the overall activity shape; names become windows.
    while (Bursts.size() > MaxSlicesPerThread) {
      std::vector<Burst> Coarse;
      Coarse.reserve((Bursts.size() + 1) / 2);
      for (size_t I = 0; I < Bursts.size(); I += 2) {
        Burst B = Bursts[I];
        if (I + 1 < Bursts.size()) {
          B.EndTick = Bursts[I + 1].EndTick;
          B.MemOps += Bursts[I + 1].MemOps;
          B.SampledOps += Bursts[I + 1].SampledOps;
          B.F = static_cast<FunctionId>(~0u); // window of mixed functions
        }
        Coarse.push_back(B);
      }
      Bursts.swap(Coarse);
    }

    for (const Burst &B : Bursts) {
      TraceEvent E;
      E.Name = B.F == static_cast<FunctionId>(~0u)
                   ? "activity window"
                   : functionName(Registry, B.F);
      E.Cat = "burst";
      E.Phase = 'X';
      E.TsUs = B.StartTick;
      E.DurUs = B.EndTick - B.StartTick;
      E.Pid = TimelinePidRuntime;
      E.Tid = static_cast<uint32_t>(Tid);
      E.Args.emplace_back("mem_ops", B.MemOps);
      E.Args.emplace_back("sampled_ops", B.SampledOps);
      W.add(std::move(E));
    }

    // Counter track: cumulative memory/sync ops sampled every stride
    // ticks (and at stream end), so log growth is visible per thread.
    const uint64_t Stride =
        std::max<uint64_t>(1, Stream.size() / 256);
    uint64_t MemOps = 0, SyncOps = 0;
    for (uint64_t Tick = 0; Tick != Stream.size(); ++Tick) {
      const EventRecord &R = Stream[Tick];
      if (isMemoryKind(R.Kind))
        ++MemOps;
      else if (isSyncKind(R.Kind))
        ++SyncOps;
      if ((Tick + 1) % Stride == 0 || Tick + 1 == Stream.size()) {
        TraceEvent E;
        E.Name = "thread " + std::to_string(Tid) + " ops";
        E.Cat = "log";
        E.Phase = 'C';
        E.TsUs = Tick + 1;
        E.Pid = TimelinePidRuntime;
        E.Tid = static_cast<uint32_t>(Tid);
        E.Args.emplace_back("mem_ops", MemOps);
        E.Args.emplace_back("sync_ops", SyncOps);
        W.add(std::move(E));
      }
    }
  }
  return W;
}

//===----------------------------------------------------------------------===//
// TraceRecorder
//===----------------------------------------------------------------------===//

TraceRecorder &TraceRecorder::global() {
  // Leaked for the same reason as MetricsRegistry::global().
  static TraceRecorder *G = new TraceRecorder();
  return *G;
}

bool TraceRecorder::enabled() const {
  return this != &global() || telemetryEnabled();
}

void TraceRecorder::addSpan(
    std::string Name, std::string Cat, uint32_t Pid, uint32_t Tid,
    uint64_t StartUs, uint64_t DurUs,
    std::vector<std::pair<std::string, uint64_t>> Args) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Guard(Lock);
  if (Spans.size() >= MaxSpans) {
    ++Dropped;
    return;
  }
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = std::move(Cat);
  E.Phase = 'X';
  E.TsUs = StartUs;
  E.DurUs = DurUs;
  E.Pid = Pid;
  E.Tid = Tid;
  E.Args = std::move(Args);
  Spans.push_back(std::move(E));
}

void TraceRecorder::addInstant(std::string Name, std::string Cat,
                               uint32_t Pid, uint32_t Tid, uint64_t TsUs) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Guard(Lock);
  if (Spans.size() >= MaxSpans) {
    ++Dropped;
    return;
  }
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = std::move(Cat);
  E.Phase = 'i';
  E.TsUs = TsUs;
  E.Pid = Pid;
  E.Tid = Tid;
  Spans.push_back(std::move(E));
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Spans.size();
}

TraceWriter TraceRecorder::drainWriter() const {
  TraceWriter W;
  W.nameProcess(TimelinePidRuntime, "literace runtime");
  W.nameProcess(TimelinePidDetector, "literace detector pipeline");
  std::lock_guard<std::mutex> Guard(Lock);
  for (const TraceEvent &E : Spans)
    W.add(E);
  if (Dropped) {
    TraceEvent Note;
    Note.Name = "spans dropped (recorder cap)";
    Note.Cat = "telemetry";
    Note.Phase = 'i';
    Note.Pid = TimelinePidRuntime;
    Note.Tid = 0;
    Note.TsUs = 0;
    Note.Args.emplace_back("dropped", Dropped);
    W.add(std::move(Note));
  }
  return W;
}
