//===-- telemetry/Json.h - Minimal JSON reader ------------------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON reader, just enough for the telemetry
/// subsystem's own documents: metrics.json round-trips and structural
/// validation of Chrome trace-event files. Integers that fit uint64 are
/// preserved exactly (doubles would lose counter precision past 2^53).
/// Not a general-purpose parser: no \uXXXX decoding beyond pass-through,
/// recursion depth is bounded.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_TELEMETRY_JSON_H
#define LITERACE_TELEMETRY_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace literace {
namespace telemetry {

/// One parsed JSON value.
struct JsonValue {
  enum class Type : uint8_t { Null, Bool, Number, String, Array, Object };

  Type Kind = Type::Null;
  bool BoolValue = false;
  double Number = 0.0;
  /// Exact value when the token was a non-negative integer <= UINT64_MAX.
  uint64_t UInt = 0;
  bool IsUInt = false;
  std::string Str;
  std::vector<JsonValue> Array;
  std::vector<std::pair<std::string, JsonValue>> Object;

  bool isObject() const { return Kind == Type::Object; }
  bool isArray() const { return Kind == Type::Array; }
  bool isString() const { return Kind == Type::String; }
  bool isNumber() const { return Kind == Type::Number; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue *find(std::string_view Key) const {
    if (Kind != Type::Object)
      return nullptr;
    for (const auto &[K, V] : Object)
      if (K == Key)
        return &V;
    return nullptr;
  }
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Returns std::nullopt on malformed input.
std::optional<JsonValue> parseJson(std::string_view Text);

/// Escapes \p S for embedding inside a JSON string literal.
std::string jsonEscape(std::string_view S);

} // namespace telemetry
} // namespace literace

#endif // LITERACE_TELEMETRY_JSON_H
