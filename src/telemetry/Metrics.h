//===-- telemetry/Metrics.h - Lock-free metrics registry -------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Always-on, lock-free runtime telemetry (docs/TELEMETRY.md). A
/// MetricsRegistry names counters, max-gauges, and power-of-two-bucketed
/// histograms; every metric maps to a fixed cell range inside a per-thread
/// ThreadSlab of relaxed atomics. Each slab is written by exactly one
/// thread, so updates compile to plain memory increments (no lock prefix,
/// no contention, no false sharing: slabs are cache-line aligned and owned
/// whole). Snapshots sum the slabs; because every cell is a 64-bit atomic,
/// a snapshot taken mid-update is torn-free per cell, and once the writing
/// threads are quiescent the totals are exact.
///
/// The registry is process-global by default (MetricsRegistry::global());
/// tests and benches construct private instances. The LITERACE_TELEMETRY
/// environment variable ("off" / "0" / "false") is the process kill
/// switch: components resolve their registry through
/// resolveRegistry(Override) which returns null when telemetry is off, and
/// every instrumented hot path guards on that null — the disabled path is
/// one well-predicted branch.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_TELEMETRY_METRICS_H
#define LITERACE_TELEMETRY_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace literace {
namespace telemetry {

/// Parses a LITERACE_TELEMETRY-style value: "off", "0", and "false"
/// (case-insensitive) disable telemetry; everything else (including null,
/// i.e. the variable being unset) leaves it enabled.
bool parseTelemetryEnabled(const char *Value);

/// Process kill switch: reads LITERACE_TELEMETRY once and caches it.
bool telemetryEnabled();

/// Number of buckets in every histogram. Bucket 0 counts the value 0;
/// bucket b (1 <= b < 31) counts values v with 2^(b-1) <= v < 2^b; the
/// last bucket absorbs everything larger.
constexpr unsigned HistogramBuckets = 32;

/// Bucket index for a recorded value (see HistogramBuckets).
constexpr unsigned histogramBucket(uint64_t Value) {
  unsigned Width = 0;
  while (Value != 0) {
    ++Width;
    Value >>= 1;
  }
  return Width < HistogramBuckets ? Width : HistogramBuckets - 1;
}

/// Inclusive upper bound of bucket \p B (UINT64_MAX for the overflow
/// bucket); used when rendering histograms.
uint64_t histogramBucketUpperBound(unsigned B);

/// Cells a histogram occupies in a slab: buckets plus count plus sum.
constexpr uint32_t HistogramCells = HistogramBuckets + 2;

/// Total cells per thread slab. Registration asserts against overflow;
/// raise if the metric catalogue outgrows it.
constexpr uint32_t SlabCells = 512;

constexpr uint32_t InvalidCell = ~0u;

/// Handle to a registered counter (monotonic sum across threads).
struct CounterId {
  uint32_t Cell = InvalidCell;
  bool valid() const { return Cell != InvalidCell; }
};

/// Handle to a registered max-gauge (snapshot takes the max over threads;
/// used for high-water marks).
struct GaugeId {
  uint32_t Cell = InvalidCell;
  bool valid() const { return Cell != InvalidCell; }
};

/// Handle to a registered histogram (first cell of its block).
struct HistogramId {
  uint32_t Cell = InvalidCell;
  bool valid() const { return Cell != InvalidCell; }
};

/// Single-writer increment of a relaxed atomic cell. Exactly one thread
/// writes any given cell, so load-add-store is exact and compiles to a
/// plain memory add — this is the "~1 relaxed increment" hot-path cost.
inline void bumpCell(std::atomic<uint64_t> &Cell, uint64_t N = 1) {
  Cell.store(Cell.load(std::memory_order_relaxed) + N,
             std::memory_order_relaxed);
}

/// Single-writer max update of a relaxed atomic cell.
inline void maxCell(std::atomic<uint64_t> &Cell, uint64_t V) {
  if (V > Cell.load(std::memory_order_relaxed))
    Cell.store(V, std::memory_order_relaxed);
}

/// One thread's private block of metric cells. Allocated and owned by the
/// registry; written only by the owning thread; read (relaxed) by
/// snapshots at any time.
class alignas(64) ThreadSlab {
public:
  void add(CounterId Id, uint64_t N = 1) {
    if (Id.valid())
      bumpCell(Cells[Id.Cell], N);
  }

  void gaugeMax(GaugeId Id, uint64_t V) {
    if (Id.valid())
      maxCell(Cells[Id.Cell], V);
  }

  void record(HistogramId Id, uint64_t Value) {
    if (!Id.valid())
      return;
    bumpCell(Cells[Id.Cell + histogramBucket(Value)]);
    bumpCell(Cells[Id.Cell + HistogramBuckets]);        // count
    bumpCell(Cells[Id.Cell + HistogramBuckets + 1], Value); // sum
  }

  /// Direct cell pointer for hot paths that cache it (ThreadContext).
  std::atomic<uint64_t> *cell(uint32_t Index) {
    return Index < SlabCells ? &Cells[Index] : nullptr;
  }

  /// Snapshot-side read of one cell.
  uint64_t read(uint32_t Index) const {
    return Cells[Index].load(std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Cells[SlabCells] = {};
};

/// One histogram's aggregated state in a snapshot.
struct HistogramValue {
  std::string Name;
  uint64_t Count = 0;
  uint64_t Sum = 0;
  std::array<uint64_t, HistogramBuckets> Buckets = {};

  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count)
                 : 0.0;
  }

  /// Inclusive upper bound of the bucket containing the \p Q quantile
  /// (0 < Q <= 1) — a cheap p50/p99 for triage output.
  uint64_t quantileUpperBound(double Q) const;
};

/// Point-in-time aggregation of a registry (or a hand-built collection —
/// literace-stat merges trace-derived and runtime-reported metrics into
/// one snapshot before serializing). Entries are sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, uint64_t>> Gauges;
  std::vector<HistogramValue> Histograms;

  /// Capture metadata (schema-additive; 0 = unknown, omitted from JSON).
  /// Multi-process sidecars stamped with these merge and order
  /// unambiguously: the capture time says which snapshot is newer, the
  /// pid says which process emitted it.
  uint64_t CaptureUnixMillis = 0;
  uint64_t EmitterPid = 0;

  /// Stamps this snapshot with its capture wall-clock time (Unix epoch
  /// milliseconds) and the emitting process id. Pass 0/0 to read the
  /// current time and pid from the system.
  void stampCapture(uint64_t UnixMillis = 0, uint64_t Pid = 0);

  /// Looks up a counter / gauge value by name (Default when absent).
  uint64_t counter(std::string_view Name, uint64_t Default = 0) const;
  uint64_t gauge(std::string_view Name, uint64_t Default = 0) const;
  /// Looks up a histogram by name (null when absent).
  const HistogramValue *histogram(std::string_view Name) const;

  /// Inserts or replaces an entry, keeping name order.
  void setCounter(std::string_view Name, uint64_t Value);
  void setGauge(std::string_view Name, uint64_t Value);
  void setHistogram(HistogramValue Value);

  /// Folds \p Other into this snapshot: counters add, gauges max,
  /// histograms merge bucket-wise.
  void merge(const MetricsSnapshot &Other);

  bool empty() const {
    return Counters.empty() && Gauges.empty() && Histograms.empty();
  }

  /// Serializes to the literace.metrics.v1 JSON schema
  /// (docs/TELEMETRY.md). Deterministic: entries are name-sorted.
  std::string toJson() const;

  /// Parses a document produced by toJson(). Returns std::nullopt on
  /// malformed input or a wrong schema marker.
  static std::optional<MetricsSnapshot> fromJson(std::string_view Json);

  /// Compact human-readable triage rendering (counters and gauges one per
  /// line, histograms as count/mean/p50/p99).
  std::string describe() const;
};

/// Process-wide registry of named metrics. Registration is idempotent by
/// name (same name + kind returns the same handle) and cheap but locked;
/// do it at component construction, not on hot paths.
class MetricsRegistry {
public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// The default process-global registry.
  static MetricsRegistry &global();

  CounterId counter(std::string_view Name);
  GaugeId gaugeMax(std::string_view Name);
  HistogramId histogram(std::string_view Name);

  /// The calling thread's slab for this registry, created on first use
  /// and cached thread-locally. The slab outlives the thread (the
  /// registry owns it), so totals from exited threads stay in snapshots.
  ThreadSlab &threadSlab();

  /// Sums every slab into a snapshot. Safe to call while writers run;
  /// per-cell values are torn-free, and after writers quiesce the totals
  /// are exact.
  MetricsSnapshot snapshot() const;

  /// Unique id of this registry instance (never reused within a
  /// process); used to validate thread-local slab caches.
  uint64_t id() const { return Uid; }

  /// Number of slabs handed out so far (one per participating thread).
  size_t numSlabs() const;

private:
  enum class Kind : uint8_t { Counter, GaugeMax, Histogram };

  struct Metric {
    std::string Name;
    Kind MetricKind;
    uint32_t Cell;
  };

  uint32_t registerMetric(std::string_view Name, Kind K, uint32_t Cells);

  mutable std::mutex Lock;
  std::vector<Metric> Metrics;
  std::vector<std::unique_ptr<ThreadSlab>> Slabs;
  uint32_t NextCell = 0;
  uint64_t Uid;
};

/// Registry resolution used by every instrumented component: an explicit
/// override wins; otherwise the global registry unless the kill switch
/// (or \p ForceOff) disables telemetry, in which case null — callers
/// treat null as "telemetry off".
MetricsRegistry *resolveRegistry(MetricsRegistry *Override,
                                 bool ForceOff = false);

} // namespace telemetry
} // namespace literace

#endif // LITERACE_TELEMETRY_METRICS_H
