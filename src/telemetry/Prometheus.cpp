//===-- telemetry/Prometheus.cpp - Text exposition writer ----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Prometheus.h"

#include "telemetry/Metrics.h"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <vector>

using namespace literace;
using namespace literace::telemetry;

namespace {

bool nameStartChar(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' ||
         C == ':';
}

bool nameChar(char C) { return nameStartChar(C) || (C >= '0' && C <= '9'); }

void appendU64(std::string &Out, uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(V));
  Out += Buf;
}

/// Curated HELP catalog. An operator staring at a dashboard during an
/// incident should not have to read source to learn what a counter
/// means, so the durability plane (sink.tee.*, collector.journal.*,
/// collector.spill.*, checkpoints, gaps) gets precise one-liners;
/// accounting identities are stated where they exist. Keep entries
/// sorted by name within each plane.
struct HelpEntry {
  std::string_view Name;
  const char *Help;
};

constexpr HelpEntry HelpCatalog[] = {
    // Client spool-and-reconnect transport (SpoolingSocketOutput).
    {"sink.tee.cap_hits",
     "Times the client spool hit its byte cap and shed oldest bytes."},
    {"sink.tee.gap_bytes",
     "Bytes declared lost to the daemon via the resume handshake after "
     "spool-cap trims; gap + undelivered = lost."},
    {"sink.tee.lost_bytes",
     "Bytes the client could not deliver: realized gaps plus bytes still "
     "undelivered at close."},
    {"sink.tee.reconnects",
     "Socket reconnect attempts that completed a resume handshake."},
    {"sink.tee.replayed_bytes",
     "Spooled bytes re-sent after a reconnect, from the daemon's acked "
     "position."},
    {"sink.tee.spool_errors",
     "Client spool file I/O failures (writes continue, durability "
     "degrades)."},
    {"sink.tee.spooled_bytes",
     "Bytes appended to the client's on-disk spool while the collector "
     "was unreachable."},
    {"sink.tee.trimmed_bytes",
     "Bytes evicted from the client spool at its cap; they become "
     "gap_bytes at the next resume handshake."},
    {"sink.tee.undelivered_bytes",
     "Bytes neither acked nor declared as a gap when the sink closed."},
    // Daemon ingest, journaling, checkpointing, recovery.
    {"collector.bytes.ingested", "Stream bytes accepted from clients."},
    {"collector.checkpoint.errors",
     "Triage checkpoint commits that failed (recovery falls back to "
     "journal replay)."},
    {"collector.checkpoints.written",
     "Triage checkpoints committed to the spool directory."},
    {"collector.events.ingested",
     "Events decoded from client streams and forwarded to triage."},
    {"collector.http.io_timeouts",
     "Status/metrics connections cut off by the per-connection I/O "
     "deadline."},
    {"collector.http.requests", "HTTP status/metrics requests served."},
    {"collector.ingest.gap_bytes",
     "Bytes clients declared shed at their spool cap; equals the sum of "
     "resume offsets past the acked positions."},
    {"collector.journal.bytes",
     "Bytes appended to per-session write-ahead journals."},
    {"collector.journal.errors",
     "Journal append failures (the session keeps ingesting, replay "
     "coverage shrinks)."},
    {"collector.races.distinct", "Distinct races after triage dedup."},
    {"collector.races.sightings",
     "Race sightings reported by detectors before dedup."},
    {"collector.segments.dropped",
     "Damage episodes in client streams (corrupt regions and declared "
     "gaps; one resync each)."},
    {"collector.segments.recovered",
     "Segment frames decoded intact from client streams."},
    {"collector.sessions.accepted", "Client connections accepted."},
    {"collector.sessions.clean",
     "Sessions that ended with a decoded v2 footer."},
    {"collector.sessions.completed", "Sessions that reached end of "
                                     "stream."},
    {"collector.sessions.detached",
     "Sessions whose connection dropped with resumable state retained."},
    {"collector.sessions.idle_timeout",
     "Detached sessions reaped after the idle timeout."},
    {"collector.sessions.recovered",
     "Sessions rebuilt from journals after a daemon restart."},
    {"collector.sessions.resumed",
     "Reconnects that resumed a detached session via the handshake."},
    // Overload spill.
    {"collector.spill.events",
     "Events diverted to the journal while the triage queue was "
     "saturated (status reports degraded)."},
    {"collector.spill.replayed_events",
     "Spilled events replayed through triage once pressure eased."},
    {"collector.spill.sessions", "Sessions that entered spill mode."},
};

} // namespace

const char *literace::telemetry::metricHelp(std::string_view Name) {
  for (const HelpEntry &E : HelpCatalog)
    if (E.Name == Name)
      return E.Help;
  return nullptr;
}

std::string literace::telemetry::prometheusName(std::string_view Name) {
  std::string Out;
  Out.reserve(Name.size());
  for (char C : Name)
    Out += nameChar(C) ? C : '_';
  if (Out.empty() || !nameStartChar(Out[0]))
    Out.insert(Out.begin(), '_');
  return Out;
}

std::string literace::telemetry::toPrometheusText(const MetricsSnapshot &Snap,
                                                  std::string_view Prefix) {
  const std::string P = prometheusName(Prefix) + "_";
  std::string Out;
  Out.reserve(4096);

  auto Family = [&](const std::string &Name, const char *Type,
                    const char *Help) {
    Out += "# HELP " + Name + " " + Help + "\n";
    Out += "# TYPE " + Name + " ";
    Out += Type;
    Out += "\n";
  };

  if (Snap.CaptureUnixMillis != 0 || Snap.EmitterPid != 0) {
    const std::string Name = P + "capture_info";
    Family(Name, "gauge", "Capture timestamp and emitting process.");
    Out += Name + "{captured_unix_ms=\"";
    appendU64(Out, Snap.CaptureUnixMillis);
    Out += "\",pid=\"";
    appendU64(Out, Snap.EmitterPid);
    Out += "\"} 1\n";
  }

  for (const auto &[Name, Value] : Snap.Counters) {
    const std::string Fam = P + prometheusName(Name) + "_total";
    const char *Help = metricHelp(Name);
    Family(Fam, "counter", Help ? Help : "literace counter.");
    Out += Fam + " ";
    appendU64(Out, Value);
    Out += "\n";
  }

  for (const auto &[Name, Value] : Snap.Gauges) {
    const std::string Fam = P + prometheusName(Name);
    const char *Help = metricHelp(Name);
    Family(Fam, "gauge",
           Help ? Help : "literace max-gauge (high-water mark).");
    Out += Fam + " ";
    appendU64(Out, Value);
    Out += "\n";
  }

  for (const HistogramValue &H : Snap.Histograms) {
    const std::string Fam = P + prometheusName(H.Name);
    Family(Fam, "histogram", "literace pow2-bucket histogram.");
    // Buckets are cumulative and keyed by their inclusive upper bound;
    // the overflow bucket renders as +Inf, matching _count exactly.
    uint64_t Cumulative = 0;
    for (unsigned B = 0; B != HistogramBuckets; ++B) {
      Cumulative += H.Buckets[B];
      Out += Fam + "_bucket{le=\"";
      if (B == HistogramBuckets - 1)
        Out += "+Inf";
      else
        appendU64(Out, histogramBucketUpperBound(B));
      Out += "\"} ";
      appendU64(Out, Cumulative);
      Out += "\n";
    }
    Out += Fam + "_sum ";
    appendU64(Out, H.Sum);
    Out += "\n" + Fam + "_count ";
    appendU64(Out, H.Count);
    Out += "\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Validator
//===----------------------------------------------------------------------===//

namespace {

struct SampleLine {
  std::string Family;  ///< family name (suffixes stripped for histograms)
  std::string Metric;  ///< full metric name as written
  std::string LeLabel; ///< value of an `le` label, if present
  double Value = 0;
  bool HasLe = false;
};

bool fail(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
  return false;
}

/// Parses a metric name starting at \p I; advances \p I past it.
bool parseName(std::string_view Line, size_t &I, std::string &Out) {
  const size_t Begin = I;
  if (I >= Line.size() || !nameStartChar(Line[I]))
    return false;
  while (I < Line.size() && nameChar(Line[I]))
    ++I;
  Out = std::string(Line.substr(Begin, I - Begin));
  return true;
}

/// Parses an optional {label="value",...} block; records an `le` value.
bool parseLabels(std::string_view Line, size_t &I, SampleLine &S) {
  if (I >= Line.size() || Line[I] != '{')
    return true;
  ++I;
  bool First = true;
  while (I < Line.size() && Line[I] != '}') {
    if (!First) {
      if (Line[I] != ',')
        return false;
      ++I;
    }
    First = false;
    std::string Label;
    if (!parseName(Line, I, Label))
      return false;
    if (I >= Line.size() || Line[I] != '=')
      return false;
    ++I;
    if (I >= Line.size() || Line[I] != '"')
      return false;
    ++I;
    std::string Value;
    while (I < Line.size() && Line[I] != '"') {
      if (Line[I] == '\\') {
        ++I;
        if (I >= Line.size())
          return false;
      }
      Value += Line[I];
      ++I;
    }
    if (I >= Line.size())
      return false;
    ++I; // closing quote
    if (Label == "le") {
      S.HasLe = true;
      S.LeLabel = Value;
    }
  }
  if (I >= Line.size())
    return false;
  ++I; // closing brace
  return true;
}

double parseLe(const std::string &Le) {
  if (Le == "+Inf")
    return std::numeric_limits<double>::infinity();
  return std::strtod(Le.c_str(), nullptr);
}

} // namespace

bool literace::telemetry::validatePrometheusText(std::string_view Text,
                                                 std::string *Error) {
  // family -> declared type ("counter" / "gauge" / "histogram")
  std::map<std::string, std::string> Types;
  std::map<std::string, std::vector<SampleLine>> Samples;
  std::set<std::string> SeenMetrics; // duplicate plain samples are invalid

  size_t LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string_view::npos) {
      if (Pos == Text.size())
        break;
      return fail(Error, "document must end with a newline");
    }
    std::string_view Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    const std::string Where = "line " + std::to_string(LineNo) + ": ";
    if (Line.empty())
      continue;
    if (Line[0] == '#') {
      // "# TYPE <name> <type>" or "# HELP <name> <text>".
      size_t I = 1;
      while (I < Line.size() && Line[I] == ' ')
        ++I;
      std::string Keyword;
      if (!parseName(Line, I, Keyword))
        continue; // a plain comment
      if (Keyword != "TYPE" && Keyword != "HELP")
        continue;
      if (I >= Line.size() || Line[I] != ' ')
        return fail(Error, Where + "malformed " + Keyword + " line");
      ++I;
      std::string Fam;
      if (!parseName(Line, I, Fam))
        return fail(Error, Where + Keyword + " names no metric family");
      if (Keyword == "HELP")
        continue;
      if (I >= Line.size() || Line[I] != ' ')
        return fail(Error, Where + "TYPE line has no type");
      ++I;
      std::string Type(Line.substr(I));
      if (Type != "counter" && Type != "gauge" && Type != "histogram" &&
          Type != "summary" && Type != "untyped")
        return fail(Error, Where + "unknown type '" + Type + "'");
      if (!Types.emplace(Fam, Type).second)
        return fail(Error, Where + "family '" + Fam + "' declared twice");
      continue;
    }

    // A sample line: name[{labels}] value
    SampleLine S;
    size_t I = 0;
    if (!parseName(Line, I, S.Metric))
      return fail(Error, Where + "does not start with a metric name");
    if (!parseLabels(Line, I, S))
      return fail(Error, Where + "malformed label block");
    if (I >= Line.size() || Line[I] != ' ')
      return fail(Error, Where + "missing sample value");
    ++I;
    char *ValEnd = nullptr;
    const std::string ValueText(Line.substr(I));
    S.Value = std::strtod(ValueText.c_str(), &ValEnd);
    if (ValEnd == ValueText.c_str() || *ValEnd != '\0')
      return fail(Error, Where + "sample value '" + ValueText +
                             "' is not a number");

    // Resolve the family: histogram series use _bucket/_sum/_count
    // suffixes on the declared family name.
    S.Family = S.Metric;
    for (const char *Suffix : {"_bucket", "_sum", "_count"}) {
      const std::string Sfx = Suffix;
      if (S.Metric.size() > Sfx.size() &&
          S.Metric.compare(S.Metric.size() - Sfx.size(), Sfx.size(), Sfx) ==
              0) {
        const std::string Base =
            S.Metric.substr(0, S.Metric.size() - Sfx.size());
        auto It = Types.find(Base);
        if (It != Types.end() && It->second == "histogram") {
          S.Family = Base;
          break;
        }
      }
    }
    auto It = Types.find(S.Family);
    if (It == Types.end())
      return fail(Error, Where + "sample '" + S.Metric +
                             "' precedes its TYPE declaration");
    if (It->second == "histogram") {
      if (S.Family == S.Metric)
        return fail(Error, Where + "histogram '" + S.Family +
                               "' has a bare sample");
      if (S.Metric == S.Family + "_bucket" && !S.HasLe)
        return fail(Error, Where + "bucket sample without an le label");
    } else {
      if (S.HasLe)
        return fail(Error, Where + "le label on a non-histogram sample");
      if (!SeenMetrics.insert(S.Metric).second)
        return fail(Error, Where + "duplicate sample '" + S.Metric + "'");
    }
    Samples[S.Family].push_back(S);
  }

  // Per-histogram structural checks: le strictly increasing, counts
  // cumulative, +Inf bucket present and equal to _count.
  for (const auto &[Fam, Type] : Types) {
    const auto &Rows = Samples[Fam];
    if (Type != "histogram") {
      if (Rows.empty())
        return fail(Error, "family '" + Fam + "' declared but has no "
                                              "samples");
      continue;
    }
    double PrevLe = -std::numeric_limits<double>::infinity();
    double PrevCount = -1;
    bool SawInf = false;
    double InfCount = 0, Count = -1;
    bool SawSum = false, SawCount = false;
    for (const SampleLine &S : Rows) {
      if (S.Metric == Fam + "_sum") {
        SawSum = true;
      } else if (S.Metric == Fam + "_count") {
        SawCount = true;
        Count = S.Value;
      } else {
        const double Le = parseLe(S.LeLabel);
        if (Le <= PrevLe)
          return fail(Error, "histogram '" + Fam +
                                 "': le bounds not increasing");
        if (S.Value < PrevCount)
          return fail(Error, "histogram '" + Fam +
                                 "': bucket counts not cumulative");
        PrevLe = Le;
        PrevCount = S.Value;
        if (S.LeLabel == "+Inf") {
          SawInf = true;
          InfCount = S.Value;
        }
      }
    }
    if (!SawInf)
      return fail(Error, "histogram '" + Fam + "' lacks a +Inf bucket");
    if (!SawSum || !SawCount)
      return fail(Error, "histogram '" + Fam + "' lacks _sum or _count");
    if (InfCount != Count)
      return fail(Error, "histogram '" + Fam +
                             "': +Inf bucket disagrees with _count");
  }
  return true;
}
