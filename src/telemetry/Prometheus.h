//===-- telemetry/Prometheus.h - Text exposition writer ---------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prometheus text-exposition rendering of a MetricsSnapshot
/// (docs/COLLECTOR.md). Counters become `<prefix>_<name>_total` counter
/// families, max-gauges become gauge families, and the pow2-bucketed
/// histograms become native Prometheus histograms with cumulative
/// `_bucket{le="..."}` series plus `_sum` and `_count`. Metric names are
/// sanitized to the Prometheus grammar (dots and dashes collapse to
/// underscores).
///
/// The companion validator checks a document against the exposition-format
/// grammar (one TYPE per family, samples under their family, `le` bounds
/// strictly increasing and cumulative, `+Inf` bucket equal to `_count`).
/// It is what the collector tests — and the acceptance criterion that
/// `/metrics` output parses — run against.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_TELEMETRY_PROMETHEUS_H
#define LITERACE_TELEMETRY_PROMETHEUS_H

#include <string>
#include <string_view>

namespace literace {
namespace telemetry {

struct MetricsSnapshot;

/// Sanitizes one metric name to the Prometheus grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]*; every other character becomes '_'.
std::string prometheusName(std::string_view Name);

/// Returns the curated HELP text for a known metric \p Name (the raw
/// registry name, before prometheusName sanitization), or nullptr when
/// the metric has no catalog entry. toPrometheusText falls back to a
/// generic per-kind help line for uncataloged metrics, so new counters
/// never break the exposition — they just scrape with less context.
const char *metricHelp(std::string_view Name);

/// Renders \p Snap in Prometheus text-exposition format. \p Prefix is
/// prepended to every family name ("literace" by default). When the
/// snapshot carries capture metadata (CaptureUnixMillis / EmitterPid),
/// it is exposed as the `<prefix>_capture_info` gauge's labels.
std::string toPrometheusText(const MetricsSnapshot &Snap,
                             std::string_view Prefix = "literace");

/// Validates \p Text against the text-exposition grammar. Returns true on
/// success; otherwise false with a diagnostic in \p Error (if non-null).
bool validatePrometheusText(std::string_view Text,
                            std::string *Error = nullptr);

} // namespace telemetry
} // namespace literace

#endif // LITERACE_TELEMETRY_PROMETHEUS_H
