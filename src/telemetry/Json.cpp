//===-- telemetry/Json.cpp - Minimal JSON reader --------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace literace;
using namespace literace::telemetry;

namespace {

constexpr unsigned MaxDepth = 64;

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  std::optional<JsonValue> run() {
    skipSpace();
    JsonValue V;
    if (!parseValue(V, 0))
      return std::nullopt;
    skipSpace();
    if (Pos != Text.size())
      return std::nullopt; // trailing garbage
    return V;
  }

private:
  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return false;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C == '\\') {
        if (Pos >= Text.size())
          return false;
        char E = Text[Pos++];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          // Pass \uXXXX through unmodified (telemetry docs are ASCII).
          if (Pos + 4 > Text.size())
            return false;
          Out += "\\u";
          Out += Text.substr(Pos, 4);
          Pos += 4;
          break;
        }
        default:
          return false;
        }
        continue;
      }
      Out += C;
    }
    return false; // unterminated
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    bool Negative = consume('-');
    bool Integral = true;
    if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return false;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos < Text.size() && Text[Pos] == '.') {
      Integral = false;
      ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Integral = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    std::string Token(Text.substr(Start, Pos - Start));
    Out.Kind = JsonValue::Type::Number;
    Out.Number = std::strtod(Token.c_str(), nullptr);
    if (Integral && !Negative) {
      errno = 0;
      char *End = nullptr;
      uint64_t U = std::strtoull(Token.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0') {
        Out.UInt = U;
        Out.IsUInt = true;
      }
    }
    return true;
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return false;
    skipSpace();
    if (Pos >= Text.size())
      return false;
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out.Kind = JsonValue::Type::Object;
      skipSpace();
      if (consume('}'))
        return true;
      for (;;) {
        skipSpace();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipSpace();
        if (!consume(':'))
          return false;
        JsonValue V;
        if (!parseValue(V, Depth + 1))
          return false;
        Out.Object.emplace_back(std::move(Key), std::move(V));
        skipSpace();
        if (consume(','))
          continue;
        return consume('}');
      }
    }
    if (C == '[') {
      ++Pos;
      Out.Kind = JsonValue::Type::Array;
      skipSpace();
      if (consume(']'))
        return true;
      for (;;) {
        JsonValue V;
        if (!parseValue(V, Depth + 1))
          return false;
        Out.Array.push_back(std::move(V));
        skipSpace();
        if (consume(','))
          continue;
        return consume(']');
      }
    }
    if (C == '"') {
      Out.Kind = JsonValue::Type::String;
      return parseString(Out.Str);
    }
    if (C == 't') {
      Out.Kind = JsonValue::Type::Bool;
      Out.BoolValue = true;
      return literal("true");
    }
    if (C == 'f') {
      Out.Kind = JsonValue::Type::Bool;
      Out.BoolValue = false;
      return literal("false");
    }
    if (C == 'n') {
      Out.Kind = JsonValue::Type::Null;
      return literal("null");
    }
    return parseNumber(Out);
  }

  std::string_view Text;
  size_t Pos = 0;
};

} // namespace

std::optional<JsonValue> literace::telemetry::parseJson(std::string_view Text) {
  return Parser(Text).run();
}

std::string literace::telemetry::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}
