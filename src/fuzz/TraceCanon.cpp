//===-- fuzz/TraceCanon.cpp - Canonical trace form for replay ------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/TraceCanon.h"

#include "support/Crc32.h"
#include "support/Hashing.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace literace;

namespace {

constexpr uint64_t SyncKindTagMask = 0xffULL << 56;

} // namespace

CanonicalTrace literace::canonicalizeTrace(const Trace &T) {
  // Pass 1 (streams scanned in thread-id order): assign dense ids to
  // memory addresses and sync-variable identities by first appearance,
  // and collect each canonical sync variable's raw timestamps.
  // Mix64Hash: raw trace addresses are often aligned (strided) and
  // libstdc++'s identity std::hash chains them into shared buckets.
  std::unordered_map<uint64_t, uint64_t, Mix64Hash> MemIds, SyncIds;
  std::unordered_map<uint64_t, std::vector<uint64_t>, Mix64Hash> SyncTs;
  for (const auto &Stream : T.PerThread) {
    for (const EventRecord &R : Stream) {
      if (isMemoryKind(R.Kind)) {
        MemIds.emplace(R.Addr, MemIds.size() + 1);
      } else if (isSyncKind(R.Kind)) {
        auto It = SyncIds.emplace(R.Addr, SyncIds.size() + 1).first;
        const uint64_t Canon = (R.Addr & SyncKindTagMask) | It->second;
        SyncTs[Canon].push_back(R.Ts);
      }
    }
  }
  // Rank each variable's timestamps. Raw Ts values of one variable are
  // drawn from a monotone counter, so they are distinct and their sorted
  // order is exactly the order the draws happened in.
  std::unordered_map<uint64_t, std::map<uint64_t, uint64_t>, Mix64Hash>
      TsRank;
  for (auto &KV : SyncTs) {
    std::sort(KV.second.begin(), KV.second.end());
    std::map<uint64_t, uint64_t> &Ranks = TsRank[KV.first];
    for (uint64_t I = 0; I != KV.second.size(); ++I)
      Ranks[KV.second[I]] = I + 1;
  }
  // Pass 2: rewrite.
  CanonicalTrace Out;
  Out.Records.reserve(T.totalEvents());
  for (const auto &Stream : T.PerThread) {
    for (const EventRecord &R : Stream) {
      EventRecord C = R;
      if (isMemoryKind(R.Kind)) {
        C.Addr = MemIds[R.Addr];
      } else if (isSyncKind(R.Kind)) {
        C.Addr = (R.Addr & SyncKindTagMask) | SyncIds[R.Addr];
        C.Ts = TsRank[C.Addr][R.Ts];
      }
      Out.Records.push_back(C);
    }
  }
  Out.Digest = crc32c(Out.Records.data(),
                      Out.Records.size() * sizeof(EventRecord));
  return Out;
}
