//===-- fuzz/TraceCanon.h - Canonical trace form for replay ----*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonicalization of a Trace for the fuzz harness's determinism check.
///
/// Under the ScheduleEngine a given seed fixes the interleaving exactly,
/// but two runs of the same seed still differ in OS-provided bits that the
/// log happens to capture: heap addresses move under ASLR (changing every
/// Read/Write Addr and every SyncVar identity), and because the timestamp
/// manager hashes the raw SyncVar to pick a counter, the raw Ts values
/// shift too. None of that is schedule state. canonicalizeTrace() strips
/// it: memory addresses and sync-variable identities are densely
/// renumbered by order of first appearance (scanning the per-thread
/// streams in thread-id order; sync vars keep their kind tag byte), and
/// each sync event's Ts is replaced by its rank among the sync events of
/// the same canonical variable — well-defined because a variable's raw
/// timestamps strictly increase. Two same-seed runs then produce
/// byte-identical canonical records, and any difference in the digest
/// means the interleaving itself diverged.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_FUZZ_TRACECANON_H
#define LITERACE_FUZZ_TRACECANON_H

#include "runtime/EventLog.h"

#include <cstdint>
#include <vector>

namespace literace {

/// A trace with run-variant bits (ASLR addresses, hashed-counter timestamp
/// values) replaced by schedule-determined equivalents.
struct CanonicalTrace {
  /// Canonical records, all threads concatenated in thread-id order.
  std::vector<EventRecord> Records;
  /// CRC32C over the record bytes; equal digests <=> equal canonical form.
  uint32_t Digest = 0;
};

/// Produces the canonical form of \p T. Pure function of the trace
/// content; see the file comment for what is normalized.
CanonicalTrace canonicalizeTrace(const Trace &T);

} // namespace literace

#endif // LITERACE_FUZZ_TRACECANON_H
