//===-- fuzz/ScheduleEngine.h - Deterministic schedule fuzzer --*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seeded schedule-perturbation engine. All attached
/// threads serialize on a single execution token; at every perturbation
/// point the token holder consults one seeded PRNG (under the engine lock,
/// so draws are globally ordered) and may
///
///   - preempt itself: hand the token to another runnable thread,
///   - delay itself: go ineligible for the next k scheduling decisions,
///   - priority-invert itself: become a last-resort candidate for the next
///     k decisions, scheduled only when no normal candidate exists.
///
/// Because exactly one thread runs at a time and every scheduling decision
/// is a deterministic function of (seed, sequence of perturbation points),
/// the same seed reproduces the same interleaving — and therefore the same
/// trace (after fuzz/TraceCanon address/timestamp canonicalization) and
/// the same race reports. Token handoff goes through a mutex + condition
/// variable, which creates real happens-before edges between consecutive
/// quanta; a fuzzed execution is thus TSan-clean even when the workload
/// seeds intentional data races, letting recall tests run in the sanitizer
/// CI tier.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_FUZZ_SCHEDULEENGINE_H
#define LITERACE_FUZZ_SCHEDULEENGINE_H

#include "fuzz/SchedulePerturber.h"
#include "support/SplitMix64.h"

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>

namespace literace {

/// Perturbation policy knobs. Probabilities are per perturbation point.
struct PerturbOptions {
  uint64_t Seed = 1;
  /// Probability of handing the token to another thread at a point.
  double PreemptProb = 0.10;
  /// Probability of self-delaying; the thread sits out the next
  /// 1..DelayStepsMax scheduling decisions.
  double DelayProb = 0.04;
  uint32_t DelayStepsMax = 12;
  /// Probability of self-inverting; the thread becomes a last-resort
  /// candidate for the next InvertSteps decisions.
  double InvertProb = 0.02;
  uint32_t InvertSteps = 32;
  /// Which instrumentation points participate.
  bool AtFunctionEntry = true;
  bool AtMemoryOps = true;
  bool AtSyncOps = true;
};

/// Counters describing what the engine did during one run.
struct PerturbStats {
  uint64_t Points = 0;        ///< perturbation points observed
  uint64_t Switches = 0;      ///< token handoffs (all causes)
  uint64_t Preemptions = 0;   ///< switches caused by preemption draws
  uint64_t Delays = 0;        ///< self-delay draws
  uint64_t Inversions = 0;    ///< priority-inversion draws
  uint64_t BlockedYields = 0; ///< cooperative yields from blocked waits
  uint32_t MaxThreads = 0;    ///< peak simultaneously attached threads
};

/// The one SchedulePerturber implementation. Must outlive every
/// ThreadContext attached to the Runtime it is installed on.
class ScheduleEngine final : public SchedulePerturber {
public:
  explicit ScheduleEngine(const PerturbOptions &Options = PerturbOptions());
  ~ScheduleEngine() override;

  void attach(ThreadContext &TC) override;
  void detach(ThreadContext &TC) override;
  void perturb(PerturbPoint Point, ThreadContext &TC) override;
  uint64_t prepareFork(ThreadContext &Parent) override;
  ThreadId awaitAttach(ThreadContext &Parent, uint64_t Ticket) override;
  void yieldUntilDetached(ThreadContext &Waiter, ThreadId Child) override;
  void blockedYield(ThreadContext &TC) override;

  const PerturbOptions &options() const { return Opts; }
  PerturbStats stats() const;

private:
  struct ThreadState {
    ThreadId Tid = 0;
    bool Granted = false;       ///< holds (or has been handed) the token
    bool Finished = false;      ///< detached; never scheduled again
    uint32_t DelaySteps = 0;    ///< decisions left to sit out
    uint32_t DemotedSteps = 0;  ///< decisions left as last-resort candidate
  };

  ThreadState &stateOf(ThreadId Tid);
  /// Picks the next thread and hands over the token; if \p MustSwitch,
  /// delay credits are ignored rather than leave the token with \p Self.
  /// Blocks until \p Self is granted again (unless no candidate existed).
  void reschedule(std::unique_lock<std::mutex> &L, ThreadState &Self,
                  bool MustSwitch);

  mutable std::mutex Mu;
  std::condition_variable Cv;       ///< token grants
  std::condition_variable AttachCv; ///< fork protocol
  /// Ordered by Tid so candidate enumeration is deterministic. std::map
  /// gives stable addresses across inserts (threads hold no iterators,
  /// but reschedule keeps a ThreadState& across waits).
  std::map<ThreadId, ThreadState> Threads;
  ThreadState *Owner = nullptr;
  SplitMix64 Rng;
  PerturbOptions Opts;
  PerturbStats Stats;
  uint64_t AttachGen = 0;
  ThreadId LastAttached = 0;
};

} // namespace literace

#endif // LITERACE_FUZZ_SCHEDULEENGINE_H
