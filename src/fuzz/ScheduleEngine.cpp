//===-- fuzz/ScheduleEngine.cpp - Deterministic schedule fuzzer ----------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ScheduleEngine.h"

#include "runtime/ThreadContext.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace literace;

SchedulePerturber::~SchedulePerturber() = default;

ScheduleEngine::ScheduleEngine(const PerturbOptions &Options)
    : Rng(Options.Seed), Opts(Options) {}

ScheduleEngine::~ScheduleEngine() = default;

ScheduleEngine::ThreadState &ScheduleEngine::stateOf(ThreadId Tid) {
  auto It = Threads.find(Tid);
  assert(It != Threads.end() && "thread not attached to the engine");
  return It->second;
}

// Picks the next thread for one scheduling decision and hands it the
// token, then (in reschedule) blocks until Self is granted again. Penalty
// counters of every other runnable thread age by one per decision, so a
// delayed/demoted thread rejoins the normal pool after its steps elapse.
//
// Candidate preference: normal > demoted (priority-inverted) > delayed,
// where the delayed pool is touched only when the caller must give the
// token away (blocked waits, self-delay, detach). The pick within a pool
// is a PRNG draw; pools are built in Tid order, so the whole decision is
// a deterministic function of the seed and the point sequence.
void ScheduleEngine::reschedule(std::unique_lock<std::mutex> &L,
                                ThreadState &Self, bool MustSwitch) {
  std::vector<ThreadState *> Normal, Demoted, Delayed;
  for (auto &KV : Threads) {
    ThreadState &S = KV.second;
    if (&S == &Self || S.Finished)
      continue;
    const bool WasDelayed = S.DelaySteps > 0;
    const bool WasDemoted = S.DemotedSteps > 0;
    if (S.DelaySteps)
      --S.DelaySteps;
    if (S.DemotedSteps)
      --S.DemotedSteps;
    (WasDelayed ? Delayed : WasDemoted ? Demoted : Normal).push_back(&S);
  }
  std::vector<ThreadState *> *Pool =
      !Normal.empty()                  ? &Normal
      : !Demoted.empty()               ? &Demoted
      : (MustSwitch && !Delayed.empty()) ? &Delayed
                                         : nullptr;
  if (!Pool)
    return; // Nobody else runnable: the token stays with Self.
  ThreadState &Next =
      *(*Pool)[Pool->size() == 1 ? 0 : Rng.nextBelow(Pool->size())];
  ++Stats.Switches;
  Self.Granted = false;
  Next.Granted = true;
  Owner = &Next;
  Cv.notify_all();
  Cv.wait(L, [&] { return Self.Granted; });
}

void ScheduleEngine::attach(ThreadContext &TC) {
  std::unique_lock<std::mutex> L(Mu);
  ThreadState &S = Threads[TC.tid()];
  S.Tid = TC.tid();
  ++AttachGen;
  LastAttached = TC.tid();
  uint32_t Live = 0;
  for (const auto &KV : Threads)
    if (!KV.second.Finished)
      ++Live;
  Stats.MaxThreads = std::max(Stats.MaxThreads, Live);
  AttachCv.notify_all();
  if (!Owner) {
    S.Granted = true;
    Owner = &S;
    return;
  }
  Cv.wait(L, [&] { return S.Granted; });
}

void ScheduleEngine::detach(ThreadContext &TC) {
  std::unique_lock<std::mutex> L(Mu);
  ThreadState &S = stateOf(TC.tid());
  S.Finished = true;
  if (Owner == &S) {
    // Hand the token on without waiting to be rescheduled: this thread is
    // leaving. If nobody is runnable the engine goes idle until the next
    // attach (or a joiner's cooperative wait notices the detach).
    S.Granted = false;
    Owner = nullptr;
    std::vector<ThreadState *> Runnable;
    for (auto &KV : Threads)
      if (!KV.second.Finished)
        Runnable.push_back(&KV.second);
    if (!Runnable.empty()) {
      ThreadState &Next =
          *Runnable[Runnable.size() == 1 ? 0 : Rng.nextBelow(Runnable.size())];
      ++Stats.Switches;
      Next.Granted = true;
      Owner = &Next;
    }
  }
  Cv.notify_all();
}

void ScheduleEngine::perturb(PerturbPoint Point, ThreadContext &TC) {
  switch (Point) {
  case PerturbPoint::FunctionEntry:
    if (!Opts.AtFunctionEntry)
      return;
    break;
  case PerturbPoint::MemoryOp:
    if (!Opts.AtMemoryOps)
      return;
    break;
  case PerturbPoint::SyncOp:
    if (!Opts.AtSyncOps)
      return;
    break;
  }
  std::unique_lock<std::mutex> L(Mu);
  ThreadState &S = stateOf(TC.tid());
  assert(Owner == &S && "perturbation point from a thread without the token");
  ++Stats.Points;
  if (Rng.nextBernoulli(Opts.DelayProb)) {
    ++Stats.Delays;
    S.DelaySteps =
        1 + (Opts.DelayStepsMax ? static_cast<uint32_t>(
                                      Rng.nextBelow(Opts.DelayStepsMax))
                                : 0);
    reschedule(L, S, /*MustSwitch=*/true);
  } else if (Rng.nextBernoulli(Opts.InvertProb)) {
    ++Stats.Inversions;
    S.DemotedSteps = Opts.InvertSteps;
    reschedule(L, S, /*MustSwitch=*/true);
  } else if (Rng.nextBernoulli(Opts.PreemptProb)) {
    ++Stats.Preemptions;
    reschedule(L, S, /*MustSwitch=*/false);
  }
}

uint64_t ScheduleEngine::prepareFork(ThreadContext &Parent) {
  (void)Parent;
  std::unique_lock<std::mutex> L(Mu);
  return AttachGen;
}

ThreadId ScheduleEngine::awaitAttach(ThreadContext &Parent, uint64_t Ticket) {
  (void)Parent;
  std::unique_lock<std::mutex> L(Mu);
  // The ticket was taken before the OS thread was spawned, so a child that
  // attached before we got here already satisfies the predicate — no
  // wakeup can be lost.
  AttachCv.wait(L, [&] { return AttachGen != Ticket; });
  return LastAttached;
}

void ScheduleEngine::yieldUntilDetached(ThreadContext &Waiter,
                                        ThreadId Child) {
  std::unique_lock<std::mutex> L(Mu);
  ThreadState &Self = stateOf(Waiter.tid());
  for (;;) {
    auto It = Threads.find(Child);
    if (It != Threads.end() && It->second.Finished)
      return;
    ++Stats.BlockedYields;
    reschedule(L, Self, /*MustSwitch=*/true);
  }
}

void ScheduleEngine::blockedYield(ThreadContext &TC) {
  std::unique_lock<std::mutex> L(Mu);
  ThreadState &S = stateOf(TC.tid());
  ++Stats.BlockedYields;
  reschedule(L, S, /*MustSwitch=*/true);
}

PerturbStats ScheduleEngine::stats() const {
  std::unique_lock<std::mutex> L(Mu);
  return Stats;
}
