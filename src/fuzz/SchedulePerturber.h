//===-- fuzz/SchedulePerturber.h - Schedule perturbation hook --*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime-side interface of the schedule fuzzer. A perturber installed
/// on a Runtime (Runtime::installPerturber) is consulted by every attached
/// ThreadContext at instrumentation-site granularity: function entry
/// (the dispatch check), each logged memory operation, and each
/// synchronization primitive entry. The hooks live in the existing dispatch
/// path, so workloads need no changes to become fuzzable.
///
/// The interface is cooperative: threads attach on ThreadContext
/// construction and detach on destruction, and the sync primitives replace
/// their blocking waits with try + blockedYield() loops when a perturber is
/// present, so the engine can hold the whole execution on a single token
/// and pick the next runnable thread deterministically (fuzz/ScheduleEngine
/// is the one implementation). Fork/join get explicit protocol calls so
/// thread-id assignment stays deterministic: the parent keeps the token
/// while the child attaches (awaitAttach), and join spins cooperatively
/// until the child has detached before touching the real OS join.
///
/// Hook placement rule: never inside ThreadContext::logSync — the AtomicU64
/// primitive calls it while holding its spinlock, and parking the token
/// there would deadlock the engine.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_FUZZ_SCHEDULEPERTURBER_H
#define LITERACE_FUZZ_SCHEDULEPERTURBER_H

#include "runtime/Ids.h"

namespace literace {

class ThreadContext;

/// Where in the instrumentation path a perturbation point fired.
enum class PerturbPoint : uint8_t {
  FunctionEntry = 0, ///< ThreadContext dispatch check (computeSampleMask)
  MemoryOp = 1,      ///< each logged memory access (logMemory)
  SyncOp = 2,        ///< entry of a sync primitive (src/sync)
};

/// Abstract schedule perturber. All methods are called from the thread
/// being scheduled; implementations serialize internally.
class SchedulePerturber {
public:
  virtual ~SchedulePerturber();

  /// Registers \p TC and blocks until it is granted the execution token.
  /// Called at the end of ThreadContext's constructor.
  virtual void attach(ThreadContext &TC) = 0;

  /// Unregisters \p TC and passes the token on. Called first thing in
  /// ThreadContext's destructor; after this the thread runs free (its
  /// remaining work — buffer flush, stats accumulation — is lock-protected
  /// and carries no instrumentation points).
  virtual void detach(ThreadContext &TC) = 0;

  /// One perturbation point: may delay, preempt, or priority-invert the
  /// calling thread. The caller must hold the token (i.e. be attached).
  virtual void perturb(PerturbPoint Point, ThreadContext &TC) = 0;

  /// Fork protocol, step 1: called by the parent (token holder)
  /// immediately before spawning the OS thread. Returns a ticket naming
  /// the current attach generation, so awaitAttach can tell whether the
  /// child has already registered — the child does not need the token to
  /// attach and may win the race to the engine lock.
  virtual uint64_t prepareFork(ThreadContext &Parent) = 0;

  /// Fork protocol, step 2: blocks the parent — without releasing the
  /// token — until one attach newer than \p Ticket has happened (which may
  /// already be the case on entry), and returns the new thread's id.
  /// Serializing forks this way makes dense thread-id assignment
  /// deterministic.
  virtual ThreadId awaitAttach(ThreadContext &Parent, uint64_t Ticket) = 0;

  /// Join protocol: cooperatively schedules other threads until \p Child
  /// has detached, so the caller's subsequent OS-level join cannot park
  /// the token holder on a thread the engine would never schedule.
  virtual void yieldUntilDetached(ThreadContext &Waiter, ThreadId Child) = 0;

  /// Called by a sync primitive whose try-acquire failed: yields the token
  /// so another thread can make the awaited state change. The caller
  /// retries its try-acquire when rescheduled.
  virtual void blockedYield(ThreadContext &TC) = 0;
};

} // namespace literace

#endif // LITERACE_FUZZ_SCHEDULEPERTURBER_H
