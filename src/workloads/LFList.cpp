//===-- workloads/LFList.cpp - Lock-free list micro-benchmark -------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/LFList.h"

#include "support/SplitMix64.h"
#include "sync/MonitoredAllocator.h"
#include "sync/Primitives.h"

#include <cassert>

using namespace literace;

/// A list node. Next holds a pointer with the low bit as the Harris
/// "logically deleted" mark. The payload is written before the node is
/// published by CAS, so readers that reach it through an atomic load are
/// ordered after the writes.
struct LFListWorkload::Node {
  explicit Node(uint64_t Key, uint64_t Next) : Key(Key), Next(Next) {}

  uint64_t Key;
  uint8_t Payload[64] = {};
  AtomicU64 Next;
};

namespace {

constexpr uint64_t MarkBit = 1;

uint64_t toBits(LFListWorkload::Node *N) {
  return reinterpret_cast<uint64_t>(N);
}

bool isMarked(uint64_t Bits) { return (Bits & MarkBit) != 0; }

uint64_t clearMark(uint64_t Bits) { return Bits & ~MarkBit; }

} // namespace

struct LFListWorkload::SharedState {
  static constexpr unsigned NumThreads = 3;
  static constexpr uint64_t KeySpace = 32;

  SharedState() : Head(0, 0) {}

  Node Head; ///< Sentinel; Head.Next is the list entry point.
  MonitoredAllocator Allocator;
};

std::string LFListWorkload::name() const { return "LFList"; }

void LFListWorkload::bind(Runtime &RT) {
  assert(!Bound && "workload bound twice");
  FnInsert = RT.registry().registerFunction("lfl.insert");
  FnRemove = RT.registry().registerFunction("lfl.remove");
  FnContains = RT.registry().registerFunction("lfl.contains");

  // Access model: node keys and payloads ARE race-free in the program,
  // but only via publication ordering through the CAS chains — a fact
  // none of the three static analyses (escape, read-only, lockset) can
  // express. Declared honestly (shared, written, lock-free), so those
  // passes keep every site logged. The one elidable access is the
  // publish-block recheck below: a sync-free re-read of the key the same
  // activation just wrote, which the redundancy pass may drop.
  AccessModel &M = RT.accessModel();
  const RoleId Worker = M.declareRole("lfl-worker", 3);

  // All instrumented sites run in worker threads between fork and join;
  // init (list construction) and teardown (deferred reclamation) touch
  // the structure without tracers, so no site carries those tags.
  const PhaseId Init = M.declarePhase("init");
  const PhaseId Steady = M.declarePhase("steady");
  const PhaseId Teardown = M.declarePhase("teardown");
  M.orderPhases(Init, Steady, PhaseOrderKind::ForkJoin);
  M.orderPhases(Steady, Teardown, PhaseOrderKind::ForkJoin);

  const VarId Keys = M.declareVar("lfl.node-keys");
  M.declareSite(makePc(FnInsert, SiteKeyRead), SiteAccess::Read, Keys,
                {Worker}, {}, Steady);
  M.declareSite(makePc(FnRemove, SiteKeyRead), SiteAccess::Read, Keys,
                {Worker}, {}, Steady);
  M.declareSite(makePc(FnContains, SiteKeyRead), SiteAccess::Read, Keys,
                {Worker}, {}, Steady);
  M.declareSite(makePc(FnInsert, SiteKeyWrite), SiteAccess::Write, Keys,
                {Worker}, {}, Steady);
  M.declareSite(makePc(FnInsert, SiteKeyRecheck), SiteAccess::Read, Keys,
                {Worker}, {}, Steady);
  const VarId Payloads = M.declareVar("lfl.node-payloads");
  M.declareSite(makePc(FnInsert, SitePayloadWrite), SiteAccess::Write,
                Payloads, {Worker}, {}, Steady);
  M.declareSite(makePc(FnContains, SitePayloadRead), SiteAccess::Read,
                Payloads, {Worker}, {}, Steady);

  // Publish block: the key store and its recheck hit the same node field
  // back to back with no synchronization between them.
  M.declareRegion("lfl.publish-block", {makePc(FnInsert, SiteKeyWrite),
                                        makePc(FnInsert, SiteKeyRecheck)});
  Bound = true;
}

namespace {

/// Finds the first unmarked node with Key >= Target, physically unlinking
/// any marked nodes encountered (the unlinking CAS's winner retires the
/// node). Returns (Pred, Curr); Curr may be null (end of list). All
/// pointer loads and CASes are logged atomics; key reads are sampled
/// memory operations.
template <typename TracerT>
void searchList(ThreadContext &TC, TracerT &T, LFListWorkload::Node &Head,
                uint64_t Target, LFListWorkload::Node *&Pred,
                LFListWorkload::Node *&Curr,
                std::vector<LFListWorkload::Node *> &Retired,
                uint32_t KeyReadSite) {
  using Node = LFListWorkload::Node;
retry:
  Pred = &Head;
  uint64_t CurrBits = clearMark(Pred->Next.load(TC));
  while (CurrBits != 0) {
    Curr = reinterpret_cast<Node *>(CurrBits);
    uint64_t NextBits = Curr->Next.load(TC);
    if (isMarked(NextBits)) {
      // Unlink the logically deleted node; on contention, restart.
      uint64_t Expected = CurrBits;
      if (!Pred->Next.compareExchange(TC, Expected, clearMark(NextBits)))
        goto retry;
      Retired.push_back(Curr);
      CurrBits = clearMark(NextBits);
      continue;
    }
    if (T.load(&Curr->Key, KeyReadSite) >= Target)
      return;
    Pred = Curr;
    CurrBits = clearMark(NextBits);
  }
  Curr = nullptr;
}

} // namespace

void LFListWorkload::threadMain(ThreadContext &TC, SharedState &S,
                                uint64_t Seed, uint32_t Ops,
                                std::vector<Node *> &Retired) {
  SplitMix64 Rng(Seed);
  uint64_t Sink = 0;
  for (uint32_t I = 0; I != Ops; ++I) {
    uint64_t Key = Rng.nextBelow(SharedState::KeySpace) + 1;
    uint64_t Dice = Rng.nextBelow(10);

    if (Dice < 4) {
      // Insert (40%).
      TC.run(FnInsert, [&](auto &T) {
        for (;;) {
          Node *Pred = nullptr;
          Node *Curr = nullptr;
          searchList(TC, T, S.Head, Key, Pred, Curr, Retired, SiteKeyRead);
          if (Curr && T.load(&Curr->Key, SiteKeyRead) == Key)
            return; // Already present.
          Node *Fresh = S.Allocator.create<Node>(TC, Key, toBits(Curr));
          // Payload written before publication; readers are ordered by
          // the acquire chain through Pred->Next.
          for (unsigned K = 0; K != sizeof(Fresh->Payload); ++K)
            T.store(&Fresh->Payload[K], static_cast<uint8_t>(Key + K),
                    SitePayloadWrite);
          T.store(&Fresh->Key, Key, SiteKeyWrite);
          // Redundant readback of the just-written key (publish-block
          // region): dominated by the store, so the redundancy pass may
          // elide it without losing a race.
          (void)T.load(&Fresh->Key, SiteKeyRecheck);
          uint64_t Expected = toBits(Curr);
          if (Pred->Next.compareExchange(TC, Expected, toBits(Fresh)))
            return;
          // Lost the race to another structural change: retire the
          // unpublished node and retry.
          Retired.push_back(Fresh);
        }
      });
    } else if (Dice < 6) {
      // Remove (20%).
      TC.run(FnRemove, [&](auto &T) {
        for (;;) {
          Node *Pred = nullptr;
          Node *Curr = nullptr;
          searchList(TC, T, S.Head, Key, Pred, Curr, Retired, SiteKeyRead);
          if (!Curr || T.load(&Curr->Key, SiteKeyRead) != Key)
            return; // Absent.
          uint64_t NextBits = Curr->Next.load(TC);
          if (isMarked(NextBits))
            continue; // Someone else is deleting it; re-search.
          uint64_t Expected = NextBits;
          if (!Curr->Next.compareExchange(TC, Expected,
                                          NextBits | MarkBit))
            continue; // Mark contention; re-search.
          // Best-effort immediate unlink; a later search will otherwise
          // do it.
          uint64_t PredExpected = toBits(Curr);
          if (Pred->Next.compareExchange(TC, PredExpected,
                                         clearMark(NextBits)))
            Retired.push_back(Curr);
          return;
        }
      });
    } else {
      // Contains (40%), verifying the payload on a hit.
      TC.run(FnContains, [&](auto &T) {
        Node *Pred = nullptr;
        Node *Curr = nullptr;
        searchList(TC, T, S.Head, Key, Pred, Curr, Retired, SiteKeyRead);
        if (Curr && T.load(&Curr->Key, SiteKeyRead) == Key)
          for (unsigned K = 0; K != sizeof(Curr->Payload); ++K)
            Sink ^= T.load(&Curr->Payload[K], SitePayloadRead);
      });
    }
  }
  (void)Sink;
}

void LFListWorkload::run(Runtime &RT, const WorkloadParams &Params) {
  assert(Bound && "bind() must run before run()");
  SharedState S;
  ThreadContext Main(RT);
  const uint32_t Ops = Params.scaled(60000, 300);

  std::vector<std::vector<Node *>> Retired(SharedState::NumThreads);
  std::vector<std::unique_ptr<Thread>> Threads;
  for (unsigned I = 0; I != SharedState::NumThreads; ++I)
    Threads.push_back(std::make_unique<Thread>(
        RT, Main, [this, &S, I, Ops, &Params, &Retired](ThreadContext &TC) {
          threadMain(TC, S, Params.Seed + I * 31, Ops, Retired[I]);
        }));
  for (auto &Th : Threads)
    Th->join(Main);

  // Deferred reclamation: all workers have joined, so freeing is ordered
  // after every access.
  for (auto &List : Retired)
    for (Node *N : List)
      S.Allocator.destroy(Main, N);
  uint64_t HeadBits = clearMark(S.Head.Next.peek());
  while (HeadBits != 0) {
    Node *N = reinterpret_cast<Node *>(HeadBits);
    HeadBits = clearMark(N->Next.peek());
    S.Allocator.destroy(Main, N);
  }
}

std::vector<SeededRaceSpec> LFListWorkload::seededRaces() const {
  // Properly synchronized on purpose: the detector must stay silent.
  return {};
}
