//===-- workloads/Httpd.h - Web-server workload ---------------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "Apache" benchmark equivalent (§5.1): a worker-pool web server
/// processing synthetic requests. Two inputs match the paper's:
///
///   Apache-1  a mixed workload of small static pages, larger pages, and
///             CGI requests (3000 / 3000 / 1000, scaled)
///   Apache-2  10,000 requests for a small static page (scaled)
///
/// The listener (main thread) enqueues parsed requests to a bounded queue;
/// four workers serve them: static requests checksum a shared read-only
/// page buffer into a freshly allocated response (MonitoredAllocator →
/// §4.3 page events), CGI requests run extra compute with scratch
/// allocations. A striped-lock response cache provides properly
/// synchronized shared-write traffic that the detector must stay silent
/// about. A monitor thread polls statistics bare, and a late cache
/// scrubber reads eviction diagnostics unordered with the workers.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_WORKLOADS_HTTPD_H
#define LITERACE_WORKLOADS_HTTPD_H

#include "sync/MonitoredAllocator.h"
#include "workloads/Workload.h"

namespace literace {

/// "Apache-1" / "Apache-2" benchmark-input pair.
class HttpdWorkload : public Workload {
public:
  enum class Input { Mixed1, SmallStatic2 };

  explicit HttpdWorkload(Input In);

  std::string name() const override;
  void bind(Runtime &RT) override;
  void run(Runtime &RT, const WorkloadParams &Params) override;
  std::vector<SeededRaceSpec> seededRaces() const override;

  /// Stable site labels.
  enum Site : uint32_t {
    // http.parse
    SiteMimeReadyRead = 1,
    SiteMimeReadyWrite = 2,
    SiteMimeTableWrite = 3,
    SiteMimeProbeRead = 4,
    SiteErrorCodeWrite = 5,
    SiteReqFieldRead = 6,
    // http.serveStatic
    SitePageLoad = 20,
    SiteResponseStore = 21,
    SiteServedRead = 22,
    SiteServedWrite = 23,
    SiteBytesRead = 24,
    SiteBytesWrite = 25,
    SiteLastUrlWrite = 26,
    SiteCacheKeyRead = 27,
    SiteCacheKeyWrite = 28,
    SiteCacheDigestRead = 29,
    SiteCacheDigestWrite = 30,
    SiteGenerationWrite = 31,
    SiteServedRecheck = 32,
    SiteBytesRecheck = 33,
    // http.serveCgi
    SiteCgiScratch = 50,
    SiteCgiEnvLoad = 51,
    // http.logAccess
    SiteTzReadyRead = 70,
    SiteTzReadyWrite = 71,
    SiteTzTableWrite = 72,
    SiteTzProbeRead = 73,
    SiteLogBufWrite = 74,
    // srv.enqueue / srv.dequeue
    SiteQueueStore = 90,
    SiteQueueLoad = 91,
    // srv.workerStart / srv.workerFinish
    SiteStartOrderWrite = 110,
    SiteFinalCountWrite = 111,
    // srv.monitor
    SiteMonStop = 130,
    SiteMonServed = 131,
    SiteMonBytes = 132,
    SiteMonLastUrl = 133,
    SiteMonErrorCode = 134,
    SiteMonGeneration = 135,
    // srv.scrub
    SiteScrubGenerationRead = 150,
    SiteScrubCacheRead = 151,
    // srv.stop
    SiteStopWrite = 170,
  };

private:
  struct SharedState;

  void workerMain(ThreadContext &TC, SharedState &S);
  void monitorMain(ThreadContext &TC, SharedState &S);
  void scrubberMain(ThreadContext &TC, SharedState &S);
  void declareModel(AccessModel &M);

  Input In;
  bool Bound = false;

  FunctionId FnParse = 0;
  FunctionId FnServeStatic = 0;
  FunctionId FnServeCgi = 0;
  FunctionId FnLogAccess = 0;
  FunctionId FnEnqueue = 0;
  FunctionId FnDequeue = 0;
  FunctionId FnWorkerStart = 0;
  FunctionId FnWorkerFinish = 0;
  FunctionId FnMonitor = 0;
  FunctionId FnScrub = 0;
  FunctionId FnStop = 0;
};

} // namespace literace

#endif // LITERACE_WORKLOADS_HTTPD_H
