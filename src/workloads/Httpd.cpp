//===-- workloads/Httpd.cpp - Web-server workload --------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Httpd.h"

#include "support/Hashing.h"
#include "support/SplitMix64.h"

#include <cassert>
#include <chrono>
#include <thread>

using namespace literace;

namespace {

/// A parsed request travelling through the queue (by value).
struct Request {
  enum Type : uint32_t { SmallStatic = 0, LargeStatic = 1, Cgi = 2,
                         Shutdown = 3 };
  uint32_t Kind = SmallStatic;
  uint32_t Size = 0;
  uint64_t UrlHash = 0;
};

} // namespace

struct HttpdWorkload::SharedState {
  static constexpr unsigned NumWorkers = 4;
  static constexpr uint32_t QueueCapacity = 128;
  static constexpr unsigned CacheEntries = 64;
  static constexpr unsigned CacheStripes = 8;

  // Request queue (properly synchronized).
  Request Ring[QueueCapacity];
  uint32_t Head = 0;
  uint32_t Tail = 0;
  Mutex QueueLock;
  Semaphore Slots{QueueCapacity};
  Semaphore Items{0};

  // Read-only document store, initialized before any fork.
  uint8_t Page[512] = {};
  uint8_t CgiEnv[64] = {};

  // Response cache with striped locks (properly synchronized).
  uint64_t CacheKey[CacheEntries] = {};
  uint64_t CacheDigest[CacheEntries] = {};
  Mutex CacheLocks[CacheStripes];

  MonitoredAllocator Allocator;

  // -- Intentionally racy diagnostics. --
  bool MimeReady = false;            // httpd-mime-flag / -table (rare)
  uint64_t MimeTable[4] = {};
  bool TzReady = false;              // httpd-tz-flag / -table (rare)
  uint64_t TzTable[4] = {};
  uint64_t StartOrder = 0;           // httpd-start-order (rare)
  uint64_t FinalRequestCount = 0;    // httpd-final-count (rare)
  uint64_t CacheGeneration = 0;      // httpd-cache-generation (rare)
  uint64_t LastErrorCode = 0;        // httpd-error-code (rare-in-hot)
  uint8_t MonStop = 0;               // httpd-stop-flag (rare)
  uint64_t ServedSlots[8] = {};      // httpd-served (frequent)
  uint64_t BytesSlots[8] = {};       // httpd-bytes (frequent)
  uint64_t LastUrlHash = 0;          // httpd-last-url (frequent)
};

HttpdWorkload::HttpdWorkload(Input In) : In(In) {}

std::string HttpdWorkload::name() const {
  return In == Input::Mixed1 ? "Apache-1" : "Apache-2";
}

void HttpdWorkload::bind(Runtime &RT) {
  assert(!Bound && "workload bound twice; create a fresh instance per run");
  FunctionRegistry &Reg = RT.registry();
  FnParse = Reg.registerFunction("http.parse");
  FnServeStatic = Reg.registerFunction("http.serveStatic");
  FnServeCgi = Reg.registerFunction("http.serveCgi");
  FnLogAccess = Reg.registerFunction("http.logAccess");
  FnEnqueue = Reg.registerFunction("srv.enqueue");
  FnDequeue = Reg.registerFunction("srv.dequeue");
  FnWorkerStart = Reg.registerFunction("srv.workerStart");
  FnWorkerFinish = Reg.registerFunction("srv.workerFinish");
  FnMonitor = Reg.registerFunction("srv.monitor");
  FnScrub = Reg.registerFunction("srv.scrub");
  FnStop = Reg.registerFunction("srv.stop");
  declareModel(RT.accessModel());
  Bound = true;
}

void HttpdWorkload::declareModel(AccessModel &M) {
  auto P = [&](FunctionId F, uint32_t Site) { return makePc(F, Site); };
  const RoleId Main = M.declareRole("main", 1);
  const RoleId Worker = M.declareRole("worker", SharedState::NumWorkers);
  const RoleId Monitor = M.declareRole("monitor", 1);
  const RoleId Scrubber = M.declareRole("scrubber", 1);
  const LockId QueueLock = M.declareLock("httpd.queue-lock");
  // The cache entry's stripe is a pure function of the entry index, so one
  // abstract lock soundly models the whole CacheLocks array.
  const LockId CacheLock = M.declareLock("httpd.cache-stripe-lock");

  // Document store: filled by main before any fork (untraced), only ever
  // loaded afterwards. Read-only elision covers the hottest sites in the
  // server (a page load per response byte, an env load per CGI byte).
  const VarId Page = M.declareVar("httpd.page");
  M.declareSite(P(FnParse, SiteReqFieldRead), SiteAccess::Read, Page,
                {Worker});
  M.declareSite(P(FnServeStatic, SitePageLoad), SiteAccess::Read, Page,
                {Worker});
  const VarId CgiEnv = M.declareVar("httpd.cgi-env");
  M.declareSite(P(FnServeCgi, SiteCgiEnvLoad), SiteAccess::Read, CgiEnv,
                {Worker});

  // Per-request heap/stack buffers: each lives and dies inside one
  // worker's serve call, so the addresses never escape their thread.
  const VarId Response = M.declareVar("httpd.response", VarScope::PerThread);
  M.declareSite(P(FnServeStatic, SiteResponseStore), SiteAccess::Write,
                Response, {Worker});
  const VarId CgiScratch =
      M.declareVar("httpd.cgi-scratch", VarScope::PerThread);
  M.declareSite(P(FnServeCgi, SiteCgiScratch), SiteAccess::Write, CgiScratch,
                {Worker});
  const VarId LogLine = M.declareVar("httpd.log-line", VarScope::PerThread);
  M.declareSite(P(FnLogAccess, SiteLogBufWrite), SiteAccess::Write, LogLine,
                {Worker});

  // Request queue: every access holds QueueLock. Both sites mix loads and
  // stores, so both are declared as writes (the stronger access).
  const VarId Queue = M.declareVar("httpd.queue");
  M.declareSite(P(FnEnqueue, SiteQueueStore), SiteAccess::Write, Queue,
                {Main}, {QueueLock});
  M.declareSite(P(FnDequeue, SiteQueueLoad), SiteAccess::Write, Queue,
                {Worker}, {QueueLock});

  // Response cache: probe/update and scrub all hold the entry's stripe.
  const VarId Cache = M.declareVar("httpd.cache");
  M.declareSite(P(FnServeStatic, SiteCacheKeyRead), SiteAccess::Read, Cache,
                {Worker}, {CacheLock});
  M.declareSite(P(FnServeStatic, SiteCacheKeyWrite), SiteAccess::Write,
                Cache, {Worker}, {CacheLock});
  M.declareSite(P(FnServeStatic, SiteCacheDigestWrite), SiteAccess::Write,
                Cache, {Worker}, {CacheLock});
  M.declareSite(P(FnScrub, SiteScrubCacheRead), SiteAccess::Read, Cache,
                {Scrubber}, {CacheLock});

  // ---- Seeded racy diagnostics: declared honestly (shared, written, no
  // common lock) so every analysis rejects them and logging is kept. ----
  const VarId MimeFlag = M.declareVar("httpd.mime-flag");
  M.declareSite(P(FnParse, SiteMimeReadyRead), SiteAccess::Read, MimeFlag,
                {Worker});
  M.declareSite(P(FnParse, SiteMimeReadyWrite), SiteAccess::Write, MimeFlag,
                {Worker});
  const VarId MimeTable = M.declareVar("httpd.mime-table");
  M.declareSite(P(FnParse, SiteMimeTableWrite), SiteAccess::Write, MimeTable,
                {Worker});
  M.declareSite(P(FnParse, SiteMimeProbeRead), SiteAccess::Read, MimeTable,
                {Worker});
  const VarId TzFlag = M.declareVar("httpd.tz-flag");
  M.declareSite(P(FnLogAccess, SiteTzReadyRead), SiteAccess::Read, TzFlag,
                {Worker});
  M.declareSite(P(FnLogAccess, SiteTzReadyWrite), SiteAccess::Write, TzFlag,
                {Worker});
  const VarId TzTable = M.declareVar("httpd.tz-table");
  M.declareSite(P(FnLogAccess, SiteTzTableWrite), SiteAccess::Write, TzTable,
                {Worker});
  M.declareSite(P(FnLogAccess, SiteTzProbeRead), SiteAccess::Read, TzTable,
                {Worker});
  const VarId StartOrder = M.declareVar("httpd.start-order");
  M.declareSite(P(FnWorkerStart, SiteStartOrderWrite), SiteAccess::Write,
                StartOrder, {Worker});
  const VarId FinalCount = M.declareVar("httpd.final-count");
  M.declareSite(P(FnWorkerFinish, SiteFinalCountWrite), SiteAccess::Write,
                FinalCount, {Worker});
  const VarId Generation = M.declareVar("httpd.cache-generation");
  M.declareSite(P(FnServeStatic, SiteGenerationWrite), SiteAccess::Write,
                Generation, {Worker});
  M.declareSite(P(FnScrub, SiteScrubGenerationRead), SiteAccess::Read,
                Generation, {Scrubber});
  M.declareSite(P(FnMonitor, SiteMonGeneration), SiteAccess::Read,
                Generation, {Monitor});
  const VarId ErrorCode = M.declareVar("httpd.error-code");
  M.declareSite(P(FnParse, SiteErrorCodeWrite), SiteAccess::Write, ErrorCode,
                {Worker});
  M.declareSite(P(FnMonitor, SiteMonErrorCode), SiteAccess::Read, ErrorCode,
                {Monitor});
  const VarId StopFlag = M.declareVar("httpd.stop-flag");
  M.declareSite(P(FnStop, SiteStopWrite), SiteAccess::Write, StopFlag,
                {Main});
  M.declareSite(P(FnMonitor, SiteMonStop), SiteAccess::Read, StopFlag,
                {Monitor});
  const VarId Served = M.declareVar("httpd.served");
  M.declareSite(P(FnServeStatic, SiteServedRead), SiteAccess::Read, Served,
                {Worker});
  M.declareSite(P(FnServeStatic, SiteServedWrite), SiteAccess::Write, Served,
                {Worker});
  M.declareSite(P(FnServeStatic, SiteServedRecheck), SiteAccess::Read,
                Served, {Worker});
  M.declareSite(P(FnMonitor, SiteMonServed), SiteAccess::Read, Served,
                {Monitor});
  const VarId Bytes = M.declareVar("httpd.bytes");
  M.declareSite(P(FnServeStatic, SiteBytesRead), SiteAccess::Read, Bytes,
                {Worker});
  M.declareSite(P(FnServeStatic, SiteBytesWrite), SiteAccess::Write, Bytes,
                {Worker});
  M.declareSite(P(FnServeStatic, SiteBytesRecheck), SiteAccess::Read, Bytes,
                {Worker});
  M.declareSite(P(FnMonitor, SiteMonBytes), SiteAccess::Read, Bytes,
                {Monitor});
  const VarId LastUrl = M.declareVar("httpd.last-url");
  M.declareSite(P(FnServeStatic, SiteLastUrlWrite), SiteAccess::Write,
                LastUrl, {Worker});
  M.declareSite(P(FnMonitor, SiteMonLastUrl), SiteAccess::Read, LastUrl,
                {Monitor});

  // Sync-free regions over the bare statistics block: the stripe lock is
  // released before the first counter access, so the four counter sites
  // plus the two rechecks run with no synchronization in between. The
  // redundancy pass elides only the rechecks — the variables stay racy.
  M.declareRegion("http.served-block",
                  {P(FnServeStatic, SiteServedRead),
                   P(FnServeStatic, SiteServedWrite),
                   P(FnServeStatic, SiteServedRecheck)});
  M.declareRegion("http.bytes-block",
                  {P(FnServeStatic, SiteBytesRead),
                   P(FnServeStatic, SiteBytesWrite),
                   P(FnServeStatic, SiteBytesRecheck)});
}

void HttpdWorkload::workerMain(ThreadContext &TC, SharedState &S) {
  // RACE (rare, httpd-start-order): sibling workers stamp the shared cell
  // before anything orders them.
  TC.run(FnWorkerStart, [&](auto &T) {
    T.store(&S.StartOrder, static_cast<uint64_t>(TC.tid()),
            SiteStartOrderWrite);
  });

  bool WroteGeneration = false;
  bool WroteError = false;
  uint64_t Served = 0;

  // Warm up the parser and log formatter BEFORE touching the request
  // queue: the lazy inits below run while sibling workers are still
  // mutually unordered (only fork edges exist), so the init races
  // manifest on every schedule.
  TC.run(FnParse, [&](auto &T) {
    // RACE (rare, httpd-mime-flag / httpd-mime-table).
    if (!T.load(&S.MimeReady, SiteMimeReadyRead)) {
      for (unsigned K = 0; K != 4; ++K)
        T.store(&S.MimeTable[K], mix64(K + 7), SiteMimeTableWrite);
      T.store(&S.MimeReady, true, SiteMimeReadyWrite);
    }
    (void)T.load(&S.MimeTable[0], SiteMimeProbeRead);
  });
  TC.run(FnLogAccess, [&](auto &T) {
    // RACE (rare, httpd-tz-flag / httpd-tz-table).
    if (!T.load(&S.TzReady, SiteTzReadyRead)) {
      for (unsigned K = 0; K != 4; ++K)
        T.store(&S.TzTable[K], mix64(K + 77), SiteTzTableWrite);
      T.store(&S.TzReady, true, SiteTzReadyWrite);
    }
    (void)T.load(&S.TzTable[0], SiteTzProbeRead);
  });

  for (;;) {
    // Dequeue a request (properly synchronized).
    S.Items.acquire(TC);
    Request Req;
    TC.run(FnDequeue, [&](auto &T) {
      S.QueueLock.lock(TC);
      uint32_t Head = T.load(&S.Head, SiteQueueLoad);
      Request &SlotRef = S.Ring[Head % SharedState::QueueCapacity];
      Req.Kind = T.load(&SlotRef.Kind, SiteQueueLoad);
      Req.Size = T.load(&SlotRef.Size, SiteQueueLoad);
      Req.UrlHash = T.load(&SlotRef.UrlHash, SiteQueueLoad);
      T.store(&S.Head, Head + 1, SiteQueueLoad);
      S.QueueLock.unlock(TC);
    });
    S.Slots.release(TC);
    if (Req.Kind == Request::Shutdown)
      break;

    // Parse: rare malformed-request branch.
    TC.run(FnParse, [&](auto &T) {
      (void)T.load(&S.Page[Req.UrlHash & 511], SiteReqFieldRead);
      // RACE (rare-in-hot, httpd-error-code): a malformed request (about
      // one in 900) records a diagnostic, once per worker; the monitor
      // reads it once, deep in both functions' back-off gaps.
      if ((Req.UrlHash % 901) == 0 && !WroteError) {
        T.store(&S.LastErrorCode, Req.UrlHash, SiteErrorCodeWrite);
        WroteError = true;
      }
    });

    // Serve.
    if (Req.Kind == Request::Cgi) {
      TC.run(FnServeCgi, [&](auto &T) {
        uint8_t *Scratch =
            static_cast<uint8_t *>(S.Allocator.allocate(TC, 256));
        uint64_t Acc = Req.UrlHash;
        for (unsigned K = 0; K != 256; ++K) {
          Acc = Acc * 131 + T.load(&S.CgiEnv[K & 63], SiteCgiEnvLoad);
          T.store(&Scratch[K], static_cast<uint8_t>(Acc), SiteCgiScratch);
        }
        S.Allocator.deallocate(TC, Scratch, 256);
      });
    } else {
      TC.run(FnServeStatic, [&](auto &T) {
        const uint32_t Bytes = Req.Size;
        uint8_t *Response =
            static_cast<uint8_t *>(S.Allocator.allocate(TC, Bytes / 4));
        uint64_t Digest = 1469598103934665603ULL;
        for (uint32_t K = 0; K != Bytes; ++K)
          Digest =
              (Digest ^ T.load(&S.Page[K & 511], SitePageLoad)) *
              1099511628211ULL;
        for (uint32_t K = 0; K != Bytes / 4; ++K)
          T.store(&Response[K], static_cast<uint8_t>(Digest >> (K & 7)),
                  SiteResponseStore);
        S.Allocator.deallocate(TC, Response, Bytes / 4);

        // Response cache probe/update under the stripe lock: properly
        // synchronized shared writes the detector must not flag.
        unsigned Entry = Req.UrlHash % SharedState::CacheEntries;
        Mutex &Stripe =
            S.CacheLocks[Entry % SharedState::CacheStripes];
        Stripe.lock(TC);
        uint64_t Key = T.load(&S.CacheKey[Entry], SiteCacheKeyRead);
        bool Evict = Key != 0 && Key != Req.UrlHash;
        T.store(&S.CacheKey[Entry], Req.UrlHash, SiteCacheKeyWrite);
        T.store(&S.CacheDigest[Entry], Digest, SiteCacheDigestWrite);
        Stripe.unlock(TC);
        // RACE (rare, httpd-cache-generation): one-shot eviction
        // diagnostic written OUTSIDE the stripe lock, read bare by the
        // late scrubber.
        if (Evict && !WroteGeneration) {
          T.store(&S.CacheGeneration, Req.UrlHash, SiteGenerationWrite);
          WroteGeneration = true;
        }

        // RACE (frequent, httpd-served / httpd-bytes / httpd-last-url):
        // bare statistics polled by the monitor.
        unsigned Slot = TC.tid() & 7u;
        uint64_t N = T.load(&S.ServedSlots[Slot], SiteServedRead);
        T.store(&S.ServedSlots[Slot], N + 1, SiteServedWrite);
        // Redundant recheck in the same sync-free region: elided by the
        // redundancy pass (the read above already logged this address).
        (void)T.load(&S.ServedSlots[Slot], SiteServedRecheck);
        uint64_t B = T.load(&S.BytesSlots[Slot], SiteBytesRead);
        T.store(&S.BytesSlots[Slot], B + Bytes, SiteBytesWrite);
        // Redundant recheck, same story as the served counter.
        (void)T.load(&S.BytesSlots[Slot], SiteBytesRecheck);
        T.store(&S.LastUrlHash, Req.UrlHash, SiteLastUrlWrite);
      });
    }

    // Access log formatting: private buffer writes.
    TC.run(FnLogAccess, [&](auto &T) {
      char Line[48];
      for (unsigned K = 0; K != sizeof(Line); ++K)
        T.store(&Line[K], static_cast<char>('a' + (Req.UrlHash >> (K & 7))),
                SiteLogBufWrite);
    });

    ++Served;
  }

  // RACE (rare, httpd-final-count): last unsynchronized act of each
  // worker.
  TC.run(FnWorkerFinish, [&](auto &T) {
    T.store(&S.FinalRequestCount, Served, SiteFinalCountWrite);
  });
}

void HttpdWorkload::monitorMain(ThreadContext &TC, SharedState &S) {
  uint32_t Poll = 0;
  uint64_t Sink = 0;
  bool ReadError = false;
  bool ReadGeneration = false;
  for (;;) {
    bool Stop = false;
    TC.run(FnMonitor, [&](auto &T) {
      Stop = T.load(&S.MonStop, SiteMonStop) != 0;
      for (unsigned Slot = 0; Slot != 8; ++Slot)
        Sink ^= T.load(&S.ServedSlots[Slot], SiteMonServed);
      for (unsigned Slot = 0; Slot != 8; ++Slot)
        Sink ^= T.load(&S.BytesSlots[Slot], SiteMonBytes);
      Sink ^= T.load(&S.LastUrlHash, SiteMonLastUrl);
      if ((Poll == 211 || Stop) && !ReadError) {
        // RACE (rare-in-hot, httpd-error-code): single diagnostic read.
        Sink ^= T.load(&S.LastErrorCode, SiteMonErrorCode);
        ReadError = true;
      }
      if ((Poll == 157 || Stop) && !ReadGeneration) {
        // RACE (rare, httpd-cache-generation): single bare read of the
        // one-shot eviction diagnostics; the monitor never synchronizes
        // with the workers, so the pair is unordered on any schedule.
        Sink ^= T.load(&S.CacheGeneration, SiteMonGeneration);
        ReadGeneration = true;
      }
    });
    ++Poll;
    if (Stop || Poll > 200000)
      break;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void HttpdWorkload::scrubberMain(ThreadContext &TC, SharedState &S) {
  TC.run(FnScrub, [&](auto &T) {
    // RACE (rare, httpd-cache-generation): the scrubber starts late and
    // reads the eviction diagnostic bare.
    (void)T.load(&S.CacheGeneration, SiteScrubGenerationRead);
    // Proper scan of the cache under the stripe locks.
    for (unsigned Entry = 0; Entry != SharedState::CacheEntries; ++Entry) {
      Mutex &Stripe = S.CacheLocks[Entry % SharedState::CacheStripes];
      Stripe.lock(TC);
      (void)T.load(&S.CacheKey[Entry], SiteScrubCacheRead);
      (void)T.load(&S.CacheDigest[Entry], SiteScrubCacheRead);
      Stripe.unlock(TC);
    }
  });
}

void HttpdWorkload::run(Runtime &RT, const WorkloadParams &Params) {
  assert(Bound && "bind() must run before run()");
  SharedState S;
  SplitMix64 Rng(Params.Seed);
  for (unsigned K = 0; K != 512; ++K)
    S.Page[K] = static_cast<uint8_t>(Rng.next());
  for (unsigned K = 0; K != 64; ++K)
    S.CgiEnv[K] = static_cast<uint8_t>(Rng.next());

  ThreadContext Main(RT);

  Thread Monitor(RT, Main,
                 [this, &S](ThreadContext &TC) { monitorMain(TC, S); });
  std::vector<std::unique_ptr<Thread>> Workers;
  for (unsigned I = 0; I != SharedState::NumWorkers; ++I)
    Workers.push_back(std::make_unique<Thread>(
        RT, Main, [this, &S, I](ThreadContext &TC) {
          // Staggered starts (see ChannelWorkload): later workers warm up
          // their parsers when http.parse is already globally hot, which
          // is what separates thread-local from global samplers.
          std::this_thread::sleep_for(std::chrono::milliseconds(25 * I));
          workerMain(TC, S);
        }));

  // Build the request schedule.
  std::vector<Request> Schedule;
  if (In == Input::Mixed1) {
    uint32_t Small = Params.scaled(3000, 30);
    uint32_t Large = Params.scaled(3000, 30);
    uint32_t Cgi = Params.scaled(1000, 10);
    for (uint32_t I = 0; I != Small; ++I)
      Schedule.push_back({Request::SmallStatic, 128, 0});
    for (uint32_t I = 0; I != Large; ++I)
      Schedule.push_back({Request::LargeStatic, 384, 0});
    for (uint32_t I = 0; I != Cgi; ++I)
      Schedule.push_back({Request::Cgi, 0, 0});
    // Deterministic shuffle for a mixed arrival order.
    for (size_t I = Schedule.size(); I > 1; --I)
      std::swap(Schedule[I - 1], Schedule[Rng.nextBelow(I)]);
  } else {
    uint32_t Small = Params.scaled(10000, 100);
    for (uint32_t I = 0; I != Small; ++I)
      Schedule.push_back({Request::SmallStatic, 128, 0});
  }
  for (size_t I = 0; I != Schedule.size(); ++I)
    Schedule[I].UrlHash = mix64(Params.Seed ^ (I * 2654435761ULL)) | 1;
  // Guarantee at least one malformed request (httpd-error-code trigger:
  // UrlHash divisible by 901) at every scale: 2703 = 3 * 901, odd.
  if (!Schedule.empty())
    Schedule[Schedule.size() / 2].UrlHash = 2703;

  // Serve the schedule, then one shutdown request per worker.
  for (unsigned I = 0; I != SharedState::NumWorkers; ++I)
    Schedule.push_back({Request::Shutdown, 0, 0});
  for (const Request &Req : Schedule) {
    S.Slots.acquire(Main);
    Main.run(FnEnqueue, [&](auto &T) {
      S.QueueLock.lock(Main);
      uint32_t Tail = T.load(&S.Tail, SiteQueueStore);
      Request &SlotRef = S.Ring[Tail % SharedState::QueueCapacity];
      T.store(&SlotRef.Kind, Req.Kind, SiteQueueStore);
      T.store(&SlotRef.Size, Req.Size, SiteQueueStore);
      T.store(&SlotRef.UrlHash, Req.UrlHash, SiteQueueStore);
      T.store(&S.Tail, Tail + 1, SiteQueueStore);
      S.QueueLock.unlock(Main);
    });
    S.Items.release(Main);
  }

  // Fork the scrubber BEFORE joining the workers so its bare read stays
  // unordered with their eviction diagnostics.
  Thread Scrubber(RT, Main,
                  [this, &S](ThreadContext &TC) { scrubberMain(TC, S); });
  for (auto &W : Workers)
    W->join(Main);
  Scrubber.join(Main);

  Main.run(FnStop, [&](auto &T) {
    // RACE (frequent, httpd-stop-flag).
    T.store(&S.MonStop, uint8_t{1}, SiteStopWrite);
  });
  Monitor.join(Main);
}

std::vector<SeededRaceSpec> HttpdWorkload::seededRaces() const {
  assert(Bound && "manifest valid only after bind()");
  auto P = [&](FunctionId F, uint32_t Site) { return makePc(F, Site); };
  std::vector<SeededRaceSpec> Races;
  auto Add = [&](const char *Label, std::vector<Pc> Sites, bool Frequent) {
    Races.push_back(SeededRaceSpec{Label, std::move(Sites), Frequent});
  };

  Add("httpd-mime-flag",
      {P(FnParse, SiteMimeReadyRead), P(FnParse, SiteMimeReadyWrite)},
      false);
  Add("httpd-mime-table",
      {P(FnParse, SiteMimeTableWrite), P(FnParse, SiteMimeProbeRead)},
      false);
  Add("httpd-tz-flag",
      {P(FnLogAccess, SiteTzReadyRead), P(FnLogAccess, SiteTzReadyWrite)},
      false);
  Add("httpd-tz-table",
      {P(FnLogAccess, SiteTzTableWrite), P(FnLogAccess, SiteTzProbeRead)},
      false);
  Add("httpd-start-order", {P(FnWorkerStart, SiteStartOrderWrite)}, false);
  Add("httpd-final-count", {P(FnWorkerFinish, SiteFinalCountWrite)}, false);
  Add("httpd-cache-generation",
      {P(FnServeStatic, SiteGenerationWrite),
       P(FnScrub, SiteScrubGenerationRead),
       P(FnMonitor, SiteMonGeneration)},
      false);
  Add("httpd-error-code",
      {P(FnParse, SiteErrorCodeWrite), P(FnMonitor, SiteMonErrorCode)},
      false);
  Add("httpd-stop-flag",
      {P(FnStop, SiteStopWrite), P(FnMonitor, SiteMonStop)}, false);
  Add("httpd-served",
      {P(FnServeStatic, SiteServedRead), P(FnServeStatic, SiteServedWrite),
       P(FnServeStatic, SiteServedRecheck), P(FnMonitor, SiteMonServed)},
      true);
  Add("httpd-bytes",
      {P(FnServeStatic, SiteBytesRead), P(FnServeStatic, SiteBytesWrite),
       P(FnServeStatic, SiteBytesRecheck), P(FnMonitor, SiteMonBytes)},
      true);
  Add("httpd-last-url",
      {P(FnServeStatic, SiteLastUrlWrite), P(FnMonitor, SiteMonLastUrl)},
      true);
  return Races;
}
