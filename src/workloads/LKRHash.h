//===-- workloads/LKRHash.h - Hash-table micro-benchmark ------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "LKRHash" micro-benchmark equivalent (§5.4): a striped hash table
/// combining lock-free techniques (atomic version/statistics counters)
/// with high-level synchronization (per-stripe mutexes). Three threads
/// hammer insert/lookup operations with tiny per-operation compute, so
/// synchronization operations dominate — the adverse case for LiteRace,
/// which must log every one of them (§3.2). Used only in the overhead
/// study (Table 5 / Fig. 6); it contains no seeded races, and the
/// detector must stay silent on its logs.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_WORKLOADS_LKRHASH_H
#define LITERACE_WORKLOADS_LKRHASH_H

#include "workloads/Workload.h"

namespace literace {

/// "LKRHash" micro-benchmark.
class LKRHashWorkload : public Workload {
public:
  LKRHashWorkload() = default;

  std::string name() const override;
  void bind(Runtime &RT) override;
  void run(Runtime &RT, const WorkloadParams &Params) override;
  std::vector<SeededRaceSpec> seededRaces() const override;

  enum Site : uint32_t {
    SiteProbeKey = 1,
    SiteSlotKeyWrite = 2,
    SiteSlotValWrite = 3,
    SiteSlotValRead = 4,
    SitePayloadMix = 5,
    /// Re-read of the key just stored, still under the stripe lock; the
    /// redundancy pass elides it via the slot-block region (the lockset
    /// pass would elide it anyway — the passes must agree).
    SiteSlotKeyRecheck = 6,
  };

private:
  struct SharedState;

  void threadMain(ThreadContext &TC, SharedState &S, uint64_t Seed,
                  uint32_t Ops);

  bool Bound = false;
  FunctionId FnInsert = 0;
  FunctionId FnLookup = 0;
};

} // namespace literace

#endif // LITERACE_WORKLOADS_LKRHASH_H
