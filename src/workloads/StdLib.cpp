//===-- workloads/StdLib.cpp - Instrumented utility library --------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/StdLib.h"

#include "support/Hashing.h"

#include <cassert>

using namespace literace;

template <typename BodyT>
void InstrumentedStdLib::dispatch(ThreadContext &TC, FunctionId F,
                                  BodyT &&Body) {
  if (Bound) {
    TC.run(F, Body);
  } else {
    // Library not instrumented (plain "Dryad Channel" configuration): the
    // same code runs, but its memory accesses never reach the log.
    NullTracer T;
    Body(T);
  }
}

void InstrumentedStdLib::bind(Runtime &RT) {
  assert(!Bound && "stdlib bound twice");
  FnChecksum = RT.registry().registerFunction("stdlib.checksum");
  FnFormatUint = RT.registry().registerFunction("stdlib.formatUint");
  FnFill = RT.registry().registerFunction("stdlib.fill");
  FnPollStats = RT.registry().registerFunction("stdlib.pollStats");
  FnFlushSession = RT.registry().registerFunction("stdlib.flushSession");

  // Access model for the pre-execution analysis. Everything here is
  // intentionally racy except the caller-provided format buffer (always a
  // stack buffer in our workloads, hence per-thread) — fill/checksum
  // caller buffers DO cross threads (channel records), so they stay
  // logged.
  AccessModel &M = RT.accessModel();
  auto P = [&](FunctionId F, uint32_t Site) { return makePc(F, Site); };
  const RoleId Worker = M.declareRole("stdlib-worker", 6);
  const RoleId Poller = M.declareRole("stdlib-poller", 1);
  constexpr auto Rd = SiteAccess::Read;
  constexpr auto Wr = SiteAccess::Write;

  const VarId FormatBuf =
      M.declareVar("stdlib.format-buffer", VarScope::PerThread);
  M.declareSite(P(FnFormatUint, SiteFormatBufWrite), Wr, FormatBuf,
                {Worker});

  const VarId CallerBuf = M.declareVar("stdlib.caller-buffer");
  M.declareSite(P(FnFill, SiteFillStore), Wr, CallerBuf, {Worker});
  M.declareSite(P(FnChecksum, SiteDataLoad), Rd, CallerBuf, {Worker});

  const VarId ApiVer = M.declareVar("stdlib.api-version");
  M.declareSite(P(FnChecksum, SiteApiVersionRead), Rd, ApiVer, {Worker});
  M.declareSite(P(FnChecksum, SiteApiVersionWrite), Wr, ApiVer, {Worker});

  const VarId SeedFlag = M.declareVar("stdlib.seed-flag");
  M.declareSite(P(FnChecksum, SiteSeedReadyRead), Rd, SeedFlag, {Worker});
  M.declareSite(P(FnChecksum, SiteSeedReadyWrite), Wr, SeedFlag, {Worker});
  const VarId SeedTab = M.declareVar("stdlib.seed-table");
  M.declareSite(P(FnChecksum, SiteSeedTableWrite), Wr, SeedTab, {Worker});
  M.declareSite(P(FnChecksum, SiteSeedProbeRead), Rd, SeedTab, {Worker});

  const VarId DigitFlag = M.declareVar("stdlib.digit-flag");
  M.declareSite(P(FnFormatUint, SiteDigitReadyRead), Rd, DigitFlag,
                {Worker});
  M.declareSite(P(FnFormatUint, SiteDigitReadyWrite), Wr, DigitFlag,
                {Worker});
  const VarId DigitTab = M.declareVar("stdlib.digit-table");
  M.declareSite(P(FnFormatUint, SiteDigitTableWrite), Wr, DigitTab,
                {Worker});
  M.declareSite(P(FnFormatUint, SiteDigitProbeRead), Rd, DigitTab,
                {Worker});

  const VarId PatternFlag = M.declareVar("stdlib.pattern-flag");
  M.declareSite(P(FnFill, SitePatternReadyRead), Rd, PatternFlag, {Worker});
  M.declareSite(P(FnFill, SitePatternReadyWrite), Wr, PatternFlag,
                {Worker});
  const VarId PatternTab = M.declareVar("stdlib.pattern-table");
  M.declareSite(P(FnFill, SitePatternTableWrite), Wr, PatternTab, {Worker});
  M.declareSite(P(FnFill, SitePatternProbeRead), Rd, PatternTab, {Worker});

  const VarId MaxFmt = M.declareVar("stdlib.max-formatted");
  M.declareSite(P(FnFormatUint, SiteMaxFormattedRead), Rd, MaxFmt,
                {Worker});
  M.declareSite(P(FnFormatUint, SiteMaxFormattedWrite), Wr, MaxFmt,
                {Worker});
  M.declareSite(P(FnPollStats, SitePollMaxFormatted), Rd, MaxFmt, {Poller});

  const VarId LastSum = M.declareVar("stdlib.last-checksum");
  M.declareSite(P(FnChecksum, SiteLastChecksumWrite), Wr, LastSum,
                {Worker});
  M.declareSite(P(FnPollStats, SitePollLastChecksum), Rd, LastSum,
                {Poller});

  const VarId Calls = M.declareVar("stdlib.checksum-calls");
  M.declareSite(P(FnChecksum, SiteSeedLocalUse), Rd, Calls, {Worker});
  M.declareSite(P(FnChecksum, SiteChecksumCallsWrite), Wr, Calls, {Worker});
  M.declareSite(P(FnPollStats, SitePollChecksumCalls), Rd, Calls, {Poller});

  const VarId LastFill = M.declareVar("stdlib.last-fill-byte");
  M.declareSite(P(FnFill, SiteLastFillByteWrite), Wr, LastFill, {Worker});
  M.declareSite(P(FnPollStats, SitePollLastFillByte), Rd, LastFill,
                {Poller});

  const VarId FlushMarkVar = M.declareVar("stdlib.flush-mark");
  M.declareSite(P(FnFlushSession, SiteFlushMarkWrite), Wr, FlushMarkVar,
                {Worker});

  Bound = true;
}

uint64_t InstrumentedStdLib::checksum(ThreadContext &TC,
                                      StdLibSession &Session,
                                      const uint8_t *Data, size_t Size) {
  uint64_t Result = 0;
  dispatch(TC, FnChecksum, [&](auto &T) {
    // RACE (rare, stdlib-api-version): the first caller "negotiates" the
    // API version without synchronization; other threads read it on their
    // first call.
    if (!Session.CheckedApiVersion) {
      if (T.load(&ApiVersion, SiteApiVersionRead) == 0)
        T.store(&ApiVersion, 7u, SiteApiVersionWrite);
      Session.CheckedApiVersion = true;
    }
    // RACE (rare, stdlib-seed-flag / stdlib-seed-table): unsynchronized
    // lazy initialization of the seed table. The per-session cache bounds
    // each thread to one probe, keeping manifestation counts tiny.
    if (!Session.SeenChecksumSeed) {
      if (!T.load(&SeedReady, SiteSeedReadyRead)) {
        for (unsigned I = 0; I != 4; ++I)
          T.store(&SeedTable[I], mix64(0x5eed + I), SiteSeedTableWrite);
        T.store(&SeedReady, true, SiteSeedReadyWrite);
      }
      Session.SeedProbe = T.load(&SeedTable[0], SiteSeedProbeRead);
      Session.SeenChecksumSeed = true;
    }

    uint64_t Hash = 1469598103934665603ULL ^ Session.SeedProbe;
    for (size_t I = 0; I != Size; ++I)
      Hash = (Hash ^ T.load(&Data[I], SiteDataLoad)) * 1099511628211ULL;

    // RACE (frequent, stdlib-last-checksum): last-value diagnostic,
    // written by every worker and read by the unsynchronized poller.
    T.store(&LastChecksum, Hash, SiteLastChecksumWrite);
    // RACE (frequent, stdlib-checksum-calls): per-thread-slot call
    // counters; single writer per slot, but the poller reads them bare.
    unsigned Slot = TC.tid() & 7u;
    uint64_t Count = T.load(&ChecksumCalls[Slot], SiteSeedLocalUse);
    T.store(&ChecksumCalls[Slot], Count + 1, SiteChecksumCallsWrite);
    Result = Hash;
  });
  return Result;
}

size_t InstrumentedStdLib::formatUint(ThreadContext &TC,
                                      StdLibSession &Session, uint64_t Value,
                                      char *Out, size_t Cap) {
  size_t Length = 0;
  dispatch(TC, FnFormatUint, [&](auto &T) {
    // RACE (rare, stdlib-digit-flag / stdlib-digit-table): same lazy-init
    // pattern as the checksum seed.
    if (!Session.SeenDigitTable) {
      if (!T.load(&DigitReady, SiteDigitReadyRead)) {
        for (unsigned I = 0; I != 4; ++I)
          T.store(&DigitTable[I], 1000ULL * (I + 1), SiteDigitTableWrite);
        T.store(&DigitReady, true, SiteDigitReadyWrite);
      }
      Session.DigitProbe = T.load(&DigitTable[0], SiteDigitProbeRead);
      Session.SeenDigitTable = true;
    }

    char Tmp[24];
    size_t N = 0;
    uint64_t V = Value;
    do {
      Tmp[N++] = static_cast<char>('0' + V % 10);
      V /= 10;
    } while (V != 0 && N < sizeof(Tmp));
    Length = N < Cap ? N : (Cap ? Cap - 1 : 0);
    for (size_t I = 0; I != Length; ++I)
      T.store(&Out[I], Tmp[Length - 1 - I], SiteFormatBufWrite);
    if (Cap)
      Out[Length] = '\0';

    // RACE (frequent, stdlib-max-formatted): unsynchronized
    // high-watermark. Writes are rare (new maxima only) but the poller's
    // bare reads keep the family manifesting.
    if (Length > T.load(&MaxFormatted, SiteMaxFormattedRead))
      T.store(&MaxFormatted, static_cast<uint64_t>(Length),
              SiteMaxFormattedWrite);
  });
  return Length;
}

void InstrumentedStdLib::fill(ThreadContext &TC, StdLibSession &Session,
                              uint8_t *Dst, size_t Size, uint8_t Key) {
  dispatch(TC, FnFill, [&](auto &T) {
    // RACE (rare, stdlib-pattern-flag / stdlib-pattern-table).
    if (!Session.SeenFillPattern) {
      if (!T.load(&PatternReady, SitePatternReadyRead)) {
        for (unsigned I = 0; I != 8; ++I)
          T.store(&PatternTable[I], static_cast<uint8_t>(0x9e + 31 * I),
                  SitePatternTableWrite);
        T.store(&PatternReady, true, SitePatternReadyWrite);
      }
      Session.PatternProbe = T.load(&PatternTable[0], SitePatternProbeRead);
      Session.SeenFillPattern = true;
    }

    uint8_t Last = 0;
    for (size_t I = 0; I != Size; ++I) {
      Last = static_cast<uint8_t>(Key + I * Session.PatternProbe);
      T.store(&Dst[I], Last, SiteFillStore);
    }
    // RACE (frequent, stdlib-last-fill-byte): diagnostic read bare by the
    // poller.
    T.store(&LastFillByte, static_cast<uint64_t>(Last),
            SiteLastFillByteWrite);
  });
}

uint64_t InstrumentedStdLib::pollStats(ThreadContext &TC) {
  uint64_t Digest = 0;
  dispatch(TC, FnPollStats, [&](auto &T) {
    // The poller deliberately shares no synchronization with the workers:
    // every read below is the "second half" of a frequent race family.
    Digest ^= T.load(&LastChecksum, SitePollLastChecksum);
    for (unsigned Slot = 0; Slot != 4; ++Slot)
      Digest ^= T.load(&ChecksumCalls[Slot], SitePollChecksumCalls);
    Digest ^= T.load(&LastFillByte, SitePollLastFillByte);
    Digest ^= T.load(&MaxFormatted, SitePollMaxFormatted);
  });
  return Digest;
}

void InstrumentedStdLib::flushSession(ThreadContext &TC,
                                      StdLibSession &Session) {
  (void)Session;
  dispatch(TC, FnFlushSession, [&](auto &T) {
    // RACE (rare, stdlib-flush-mark): teardown diagnostic; each worker
    // writes once, and workers never synchronize with each other directly
    // (only with the queue and the joining parent).
    T.store(&FlushMark, TC.tid(), SiteFlushMarkWrite);
  });
}

std::vector<SeededRaceSpec> InstrumentedStdLib::seededRaces() const {
  if (!Bound)
    return {}; // Invisible without instrumentation, as in the paper.

  auto P = [&](FunctionId F, uint32_t Site) { return makePc(F, Site); };
  std::vector<SeededRaceSpec> Races;
  auto Add = [&](const char *Label, std::vector<Pc> Sites, bool Frequent) {
    Races.push_back(SeededRaceSpec{Label, std::move(Sites), Frequent});
  };

  Add("stdlib-api-version",
      {P(FnChecksum, SiteApiVersionRead), P(FnChecksum, SiteApiVersionWrite)},
      false);
  Add("stdlib-seed-flag",
      {P(FnChecksum, SiteSeedReadyRead), P(FnChecksum, SiteSeedReadyWrite)},
      false);
  Add("stdlib-seed-table",
      {P(FnChecksum, SiteSeedTableWrite), P(FnChecksum, SiteSeedProbeRead)},
      false);
  Add("stdlib-digit-flag",
      {P(FnFormatUint, SiteDigitReadyRead),
       P(FnFormatUint, SiteDigitReadyWrite)},
      false);
  Add("stdlib-digit-table",
      {P(FnFormatUint, SiteDigitTableWrite),
       P(FnFormatUint, SiteDigitProbeRead)},
      false);
  Add("stdlib-pattern-flag",
      {P(FnFill, SitePatternReadyRead), P(FnFill, SitePatternReadyWrite)},
      false);
  Add("stdlib-pattern-table",
      {P(FnFill, SitePatternTableWrite), P(FnFill, SitePatternProbeRead)},
      false);
  Add("stdlib-flush-mark", {P(FnFlushSession, SiteFlushMarkWrite)}, false);
  Add("stdlib-last-checksum",
      {P(FnChecksum, SiteLastChecksumWrite),
       P(FnPollStats, SitePollLastChecksum)},
      true);
  Add("stdlib-checksum-calls",
      {P(FnChecksum, SiteChecksumCallsWrite),
       P(FnChecksum, SiteSeedLocalUse),
       P(FnPollStats, SitePollChecksumCalls)},
      true);
  Add("stdlib-last-fill-byte",
      {P(FnFill, SiteLastFillByteWrite), P(FnPollStats, SitePollLastFillByte)},
      true);
  Add("stdlib-max-formatted",
      {P(FnFormatUint, SiteMaxFormattedRead),
       P(FnFormatUint, SiteMaxFormattedWrite),
       P(FnPollStats, SitePollMaxFormatted)},
      true);
  return Races;
}
