//===-- workloads/LFList.h - Lock-free list micro-benchmark ---*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "LFList" micro-benchmark equivalent (§5.4): a sorted lock-free
/// linked list (Harris-style) built on logged atomic compare-and-exchange.
/// Every pointer traversal step is an atomic load and every structural
/// update a CAS, so the run is dominated by exactly the user-level atomic
/// operations that LiteRace must wrap in a timestamping critical section
/// (§4.2). Node payloads provide the memory-op traffic that full logging
/// pays for and LiteRace samples away.
///
/// Physical node reclamation is deferred until after all worker threads
/// join (a simple epoch scheme), so the structure is properly synchronized
/// end to end: the detector must stay silent, and the manifest is empty.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_WORKLOADS_LFLIST_H
#define LITERACE_WORKLOADS_LFLIST_H

#include "workloads/Workload.h"

namespace literace {

/// "LFList" micro-benchmark.
class LFListWorkload : public Workload {
public:
  LFListWorkload() = default;

  std::string name() const override;
  void bind(Runtime &RT) override;
  void run(Runtime &RT, const WorkloadParams &Params) override;
  std::vector<SeededRaceSpec> seededRaces() const override;

  enum Site : uint32_t {
    SiteKeyRead = 1,
    SiteKeyWrite = 2,
    SitePayloadWrite = 3,
    SitePayloadRead = 4,
    /// Re-read of the key just written, inside the publish block; the
    /// redundancy pass elides it (same address, sync-free straight line).
    SiteKeyRecheck = 5,
  };

  struct Node;

private:
  struct SharedState;

  void threadMain(ThreadContext &TC, SharedState &S, uint64_t Seed,
                  uint32_t Ops, std::vector<Node *> &Retired);

  bool Bound = false;
  FunctionId FnInsert = 0;
  FunctionId FnRemove = 0;
  FunctionId FnContains = 0;
};

} // namespace literace

#endif // LITERACE_WORKLOADS_LFLIST_H
