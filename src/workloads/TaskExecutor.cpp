//===-- workloads/TaskExecutor.cpp - Work-stealing executor --------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/TaskExecutor.h"

#include "fuzz/SchedulePerturber.h"
#include "support/Hashing.h"
#include "support/SplitMix64.h"
#include "sync/Primitives.h"

#include <cassert>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

using namespace literace;

/// One task. Input is filled before the fork (read-only at runtime);
/// Result is written exactly once, by the executing worker. NextIdx is
/// the Treiber-stack link (plain 1-based index, 0 = null).
struct TaskExecutorWorkload::Task {
  uint64_t Input = 0;
  uint64_t Result = 0;
  AtomicU64 NextIdx;
};

namespace {

/// Stack heads are tagged references — generation counter in the high
/// half, 1-based task index in the low half — so a pop CAS can never
/// succeed against a head that was popped and re-pushed in between.
uint64_t makeRef(uint64_t Tag, uint64_t Idx) { return (Tag << 32) | Idx; }

uint32_t idxOf(uint64_t Ref) { return static_cast<uint32_t>(Ref); }

uint64_t tagOf(uint64_t Ref) { return Ref >> 32; }

/// Each worker fires the rare-mark RMW exactly once, on this step of its
/// task loop — deep enough into the hot phase that the accesses key off
/// per-worker progress, not off any shared synchronization.
constexpr uint64_t PoisonStep = 7;

/// Backoff for waiting-for-progress polls. Under the fuzz engine the
/// token MUST be yielded (a spinning holder stalls the whole schedule);
/// free-running, a short sleep keeps the idle poll from flooding the log
/// with sync ops while other workers finish.
void pollBackoff(ThreadContext &TC) {
  if (SchedulePerturber *P = TC.perturber())
    P->blockedYield(TC);
  else
    std::this_thread::sleep_for(std::chrono::microseconds(50));
}

} // namespace

struct TaskExecutorWorkload::SharedState {
  static constexpr unsigned NumWorkers = 3;

  SharedState(uint32_t NumTasks, uint64_t Seed) : Tasks(NumTasks) {
    // Plain pre-fork writes, never through instrumentation: the inputs
    // are genuinely read-only once the workers exist.
    for (uint32_t I = 0; I != NumTasks; ++I)
      Tasks[I].Input = mix64(Seed + I);
  }

  uint32_t numTasks() const { return static_cast<uint32_t>(Tasks.size()); }

  Task &task(uint32_t Idx) {
    assert(Idx >= 1 && Idx <= Tasks.size() && "task index out of pool");
    return Tasks[Idx - 1];
  }

  std::vector<Task> Tasks;
  AtomicU64 StackHead[NumWorkers]; ///< Per-worker tagged Treiber stacks.
  AtomicU64 ExecutedCount;         ///< Tasks completed, all workers.

  /// Deliberately bare shared fields — the seeded races.
  uint64_t ExecTally = 0;    ///< Hot: RMW once per task.
  uint64_t DeadlineHint = 0; ///< Cold: main writes post-fork, workers read.
  uint64_t IdleMark = 0;     ///< Rare: first-idle marker per worker.
  uint64_t GrandTotal = 0;   ///< Cold: per-worker totals, RMW at exit.
  uint64_t RareMark = 0;     ///< Rare-in-hot: poisoned-step marker.
};

std::string TaskExecutorWorkload::name() const { return "Task Executor"; }

void TaskExecutorWorkload::bind(Runtime &RT) {
  assert(!Bound && "workload bound twice");
  FnInit = RT.registry().registerFunction("exec.init");
  FnTask = RT.registry().registerFunction("exec.task");
  FnIdle = RT.registry().registerFunction("exec.idle");
  FnWarmup = RT.registry().registerFunction("exec.warmup");
  FnTune = RT.registry().registerFunction("exec.tune");
  FnFinish = RT.registry().registerFunction("exec.finish");
  FnTeardown = RT.registry().registerFunction("exec.teardown");

  AccessModel &M = RT.accessModel();
  const RoleId Worker = M.declareRole("exec-worker", 3);
  const RoleId MainRole = M.declareRole("exec-main", 1);

  const PhaseId Init = M.declarePhase("init");
  const PhaseId Steady = M.declarePhase("steady");
  const PhaseId Teardown = M.declarePhase("teardown");
  M.orderPhases(Init, Steady, PhaseOrderKind::ForkJoin);
  M.orderPhases(Steady, Teardown, PhaseOrderKind::ForkJoin);

  auto P = [](FunctionId F, uint32_t Site) { return makePc(F, Site); };

  // Inputs: reads only — written before the fork, outside instrumentation
  // — so the read-only analysis soundly elides this site.
  const VarId Inputs = M.declareVar("exec.task-inputs");
  M.declareSite(P(FnTask, SiteInputRead), SiteAccess::Read, Inputs,
                {Worker}, {}, Steady);

  // Results: written once per task by its executor, ordered by the stack
  // publication chains. Race-free in reality, but only via lock-free
  // publication, so every site stays logged.
  const VarId Results = M.declareVar("exec.task-results");
  M.declareSite(P(FnTask, SiteResultWrite), SiteAccess::Write, Results,
                {Worker}, {}, Steady);
  M.declareSite(P(FnTask, SiteResultRecheck), SiteAccess::Read, Results,
                {Worker}, {}, Steady);
  M.declareSite(P(FnTeardown, SiteFinalResultRead), SiteAccess::Read,
                Results, {MainRole}, {}, Teardown);

  const VarId Tally = M.declareVar("exec.tally");
  M.declareSite(P(FnTask, SiteTallyRead), SiteAccess::Read, Tally,
                {Worker}, {}, Steady);
  M.declareSite(P(FnTask, SiteTallyWrite), SiteAccess::Write, Tally,
                {Worker}, {}, Steady);

  const VarId Hint = M.declareVar("exec.deadline-hint");
  M.declareSite(P(FnInit, SiteInitHintWrite), SiteAccess::Write, Hint,
                {MainRole}, {}, Init);
  M.declareSite(P(FnWarmup, SiteHintRead), SiteAccess::Read, Hint,
                {Worker}, {}, Steady);
  M.declareSite(P(FnTune, SiteHintWrite), SiteAccess::Write, Hint,
                {MainRole}, {}, Steady);

  const VarId Idle = M.declareVar("exec.idle-mark");
  M.declareSite(P(FnIdle, SiteIdleRead), SiteAccess::Read, Idle, {Worker},
                {}, Steady);
  M.declareSite(P(FnIdle, SiteIdleWrite), SiteAccess::Write, Idle,
                {Worker}, {}, Steady);

  const VarId Total = M.declareVar("exec.grand-total");
  M.declareSite(P(FnFinish, SiteTotalRead), SiteAccess::Read, Total,
                {Worker}, {}, Steady);
  M.declareSite(P(FnFinish, SiteTotalWrite), SiteAccess::Write, Total,
                {Worker}, {}, Steady);
  M.declareSite(P(FnTeardown, SiteFinalTotalRead), SiteAccess::Read, Total,
                {MainRole}, {}, Teardown);

  const VarId Rare = M.declareVar("exec.rare-mark");
  M.declareSite(P(FnTask, SiteRareRead), SiteAccess::Read, Rare, {Worker},
                {}, Steady);
  M.declareSite(P(FnTask, SiteRareWrite), SiteAccess::Write, Rare,
                {Worker}, {}, Steady);

  // The result block re-reads the slot it just wrote — same task, no
  // synchronization in between (the child pushes come after) — so the
  // redundancy pass elides the recheck.
  M.declareRegion("exec.result-block", {P(FnTask, SiteResultWrite),
                                        P(FnTask, SiteResultRecheck)});
  Bound = true;
}

void TaskExecutorWorkload::pushTask(ThreadContext &TC, SharedState &S,
                                    unsigned Stack, uint32_t Idx) {
  for (;;) {
    uint64_t Head = S.StackHead[Stack].load(TC);
    S.task(Idx).NextIdx.store(TC, idxOf(Head));
    uint64_t Expected = Head;
    if (S.StackHead[Stack].compareExchange(TC, Expected,
                                           makeRef(tagOf(Head) + 1, Idx)))
      return;
  }
}

uint32_t TaskExecutorWorkload::popTask(ThreadContext &TC, SharedState &S,
                                       unsigned Stack) {
  for (;;) {
    uint64_t Head = S.StackHead[Stack].load(TC);
    uint32_t Idx = idxOf(Head);
    if (Idx == 0)
      return 0;
    uint64_t Next = S.task(Idx).NextIdx.load(TC);
    uint64_t Expected = Head;
    if (S.StackHead[Stack].compareExchange(TC, Expected,
                                           makeRef(tagOf(Head) + 1, Next)))
      return Idx;
  }
}

void TaskExecutorWorkload::workerMain(ThreadContext &TC, SharedState &S,
                                      unsigned Worker, uint64_t Seed,
                                      uint64_t &Executed) {
  // Thread-cold seeded race: one bare hint read in the worker's first
  // activation, against the main thread's post-fork tune write.
  TC.run(FnWarmup,
         [&](auto &T) { (void)T.load(&S.DeadlineHint, SiteHintRead); });
  SplitMix64 Rng(Seed);
  uint64_t LocalExec = 0;
  bool IdleMarked = false;
  const uint32_t NumTasks = S.numTasks();
  while (S.ExecutedCount.load(TC) < NumTasks) {
    uint32_t Idx = popTask(TC, S, Worker);
    if (Idx == 0) {
      // Steal from a random victim, then sweep the rest.
      unsigned Start =
          static_cast<unsigned>(Rng.nextBelow(SharedState::NumWorkers));
      for (unsigned K = 0; K != SharedState::NumWorkers && Idx == 0; ++K) {
        unsigned Victim = (Start + K) % SharedState::NumWorkers;
        if (Victim != Worker)
          Idx = popTask(TC, S, Victim);
      }
    }
    if (Idx == 0) {
      // Rare seeded race: mark the first time this worker runs dry. Two
      // workers typically hit this at startup, before any steal has
      // chained their clocks together.
      if (!IdleMarked) {
        IdleMarked = true;
        TC.run(FnIdle, [&](auto &T) {
          uint64_t Mark = T.load(&S.IdleMark, SiteIdleRead);
          T.store(&S.IdleMark, Mark + 1, SiteIdleWrite);
        });
      }
      pollBackoff(TC);
      continue;
    }
    TC.run(FnTask, [&](auto &T) {
      // Hot seeded race: one bare tally RMW per task.
      uint64_t Tally = T.load(&S.ExecTally, SiteTallyRead);
      T.store(&S.ExecTally, Tally + 1, SiteTallyWrite);
      // Rare-in-hot seeded race: fires on exactly one step per worker.
      if (LocalExec == PoisonStep) {
        uint64_t Mark = T.load(&S.RareMark, SiteRareRead);
        T.store(&S.RareMark, Mark + 1, SiteRareWrite);
      }
      Task &Tk = S.task(Idx);
      uint64_t In = T.load(&Tk.Input, SiteInputRead);
      T.store(&Tk.Result, mix64(In), SiteResultWrite);
      (void)T.load(&Tk.Result, SiteResultRecheck);
      // Spawn the children onto our own stack (heap numbering: the tree
      // covers every task exactly once).
      uint32_t Child = 2 * Idx;
      if (Child <= NumTasks)
        pushTask(TC, S, Worker, Child);
      if (Child + 1 <= NumTasks)
        pushTask(TC, S, Worker, Child + 1);
    });
    S.ExecutedCount.fetchAdd(TC, 1);
    ++LocalExec;
  }
  // Cold seeded race: every worker folds its total after its last
  // ExecutedCount access, so no chain can order two of these RMWs — the
  // write-write race manifests under every schedule.
  TC.run(FnFinish, [&](auto &T) {
    uint64_t Total = T.load(&S.GrandTotal, SiteTotalRead);
    T.store(&S.GrandTotal, Total + LocalExec, SiteTotalWrite);
  });
  Executed = LocalExec;
}

void TaskExecutorWorkload::run(Runtime &RT, const WorkloadParams &Params) {
  assert(Bound && "bind() must run before run()");
  const uint32_t NumTasks = Params.scaled(60000, 150);
  auto S = std::make_unique<SharedState>(NumTasks, Params.Seed);
  ThreadContext Main(RT);

  Main.run(FnInit, [&](auto &T) {
    T.store(&S->DeadlineHint, Params.Seed & 0xff, SiteInitHintWrite);
  });
  // Seed the root task onto worker 0's stack (logged atomics, pre-fork).
  pushTask(Main, *S, 0, 1);

  std::vector<uint64_t> Executed(SharedState::NumWorkers, 0);
  std::vector<std::unique_ptr<Thread>> Threads;
  for (unsigned W = 0; W != SharedState::NumWorkers; ++W)
    Threads.push_back(std::make_unique<Thread>(
        RT, Main, [this, &S, W, &Params, &Executed](ThreadContext &TC) {
          workerMain(TC, *S, W, Params.Seed + W * 131, Executed[W]);
        }));

  // The seeded hint race: written after every fork, read by each worker's
  // warmup, with no later release of ours that a worker acquires.
  Main.run(FnTune, [&](auto &T) {
    T.store(&S->DeadlineHint, 1 + ((Params.Seed >> 8) & 0xff),
            SiteHintWrite);
  });

  for (auto &Th : Threads)
    Th->join(Main);

  Main.run(FnTeardown, [&](auto &T) {
    (void)T.load(&S->GrandTotal, SiteFinalTotalRead);
    (void)T.load(&S->task(1).Result, SiteFinalResultRead);
  });

  // Every task in the tree executed exactly once.
  uint64_t TotalExecuted = 0;
  for (uint64_t E : Executed)
    TotalExecuted += E;
  assert(TotalExecuted == NumTasks);
  assert(S->task(1).Result == mix64(S->task(1).Input));
  (void)TotalExecuted;
}

std::vector<SeededRaceSpec> TaskExecutorWorkload::seededRaces() const {
  assert(Bound && "seededRaces() requires bind()");
  auto P = [](FunctionId F, uint32_t Site) { return makePc(F, Site); };
  return {
      {"exec-tally",
       {P(FnTask, SiteTallyRead), P(FnTask, SiteTallyWrite)},
       /*ExpectFrequent=*/true},
      {"exec-deadline-hint",
       {P(FnInit, SiteInitHintWrite), P(FnWarmup, SiteHintRead),
        P(FnTune, SiteHintWrite)},
       /*ExpectFrequent=*/false},
      {"exec-idle-flag",
       {P(FnIdle, SiteIdleRead), P(FnIdle, SiteIdleWrite)},
       /*ExpectFrequent=*/false},
      {"exec-grand-total",
       {P(FnFinish, SiteTotalRead), P(FnFinish, SiteTotalWrite),
        P(FnTeardown, SiteFinalTotalRead)},
       /*ExpectFrequent=*/false},
      {"exec-rare-mark",
       {P(FnTask, SiteRareRead), P(FnTask, SiteRareWrite)},
       /*ExpectFrequent=*/false},
  };
}
