//===-- workloads/MpmcQueue.cpp - Lock-free MPMC queue workload ----------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/MpmcQueue.h"

#include "fuzz/SchedulePerturber.h"
#include "sync/Primitives.h"

#include <cassert>
#include <chrono>
#include <memory>
#include <thread>

using namespace literace;

/// A pool node. Value is sampled application memory; Next is queue
/// structure (a plain 1-based pool index, 0 = null) and doubles as the
/// free-stack link while the node is unallocated.
struct MpmcQueueWorkload::Node {
  uint64_t Value = 0;
  AtomicU64 Next;
};

namespace {

/// Head/Tail/FreeHead hold tagged references: a 32-bit generation counter
/// in the high half and the 1-based node index in the low half. Every
/// successful CAS bumps the tag, so a pointer that leaves and comes back
/// (the classic ABA scenario of pool-recycling queues) never compares
/// equal to a stale snapshot.
uint64_t makeRef(uint64_t Tag, uint64_t Idx) { return (Tag << 32) | Idx; }

uint32_t idxOf(uint64_t Ref) { return static_cast<uint32_t>(Ref); }

uint64_t tagOf(uint64_t Ref) { return Ref >> 32; }

/// Consumers retire dequeued sentinels locally and scan hazards only once
/// this many have piled up, keeping the scan off the per-op fast path.
constexpr size_t ReclaimThreshold = 3;

/// Backoff for waiting-for-progress polls. Under the fuzz engine the
/// token MUST be yielded (a spinning holder stalls the whole schedule);
/// free-running, a short sleep keeps the poll from flooding the log with
/// millions of sync ops while another thread catches up.
void pollBackoff(ThreadContext &TC) {
  if (SchedulePerturber *P = TC.perturber())
    P->blockedYield(TC);
  else
    std::this_thread::sleep_for(std::chrono::microseconds(50));
}

} // namespace

struct MpmcQueueWorkload::SharedState {
  static constexpr unsigned NumProducers = 2;
  static constexpr unsigned NumConsumers = 2;
  /// Two hazard slots per worker (producers use only their first).
  static constexpr unsigned NumHazardSlots =
      2 * (NumProducers + NumConsumers);
  /// Small enough to force free-list pressure (producers back off when it
  /// drains), large enough that two consumers' retired backlogs plus the
  /// in-queue nodes never exhaust it.
  static constexpr uint32_t NumNodes = 96;

  Node &node(uint32_t Idx) {
    assert(Idx >= 1 && Idx <= NumNodes && "node index out of pool");
    return Pool[Idx - 1];
  }

  Node Pool[NumNodes];
  AtomicU64 Head;     ///< Tagged ref; node 1 is the initial sentinel.
  AtomicU64 Tail;     ///< Tagged ref.
  AtomicU64 FreeHead; ///< Tagged Treiber stack of free node indices.
  AtomicU64 Hazard[NumHazardSlots]; ///< Published node index, 0 = none.
  AtomicU64 DoneCount;              ///< Producers that have finished.

  /// Deliberately bare shared fields — the seeded races.
  uint64_t EnqTally = 0;     ///< Hot: RMW per enqueue, read per dequeue.
  uint64_t TuningHint = 0;   ///< Cold: main writes post-fork, workers read.
  uint64_t ProducersDone = 0; ///< Cold: bare mirror of DoneCount.
  uint64_t LastScanSize = 0; ///< Rare: reclamation-scan diagnostic.
};

std::string MpmcQueueWorkload::name() const { return "MPMC Queue"; }

void MpmcQueueWorkload::bind(Runtime &RT) {
  assert(!Bound && "workload bound twice");
  FnInit = RT.registry().registerFunction("mpmc.init");
  FnEnqueue = RT.registry().registerFunction("mpmc.enqueue");
  FnDequeue = RT.registry().registerFunction("mpmc.dequeue");
  FnReclaim = RT.registry().registerFunction("mpmc.reclaim");
  FnWarmup = RT.registry().registerFunction("mpmc.warmup");
  FnTune = RT.registry().registerFunction("mpmc.tune");
  FnFinish = RT.registry().registerFunction("mpmc.finish");
  FnDrain = RT.registry().registerFunction("mpmc.drain");
  FnTeardown = RT.registry().registerFunction("mpmc.teardown");

  AccessModel &M = RT.accessModel();
  const RoleId Producer = M.declareRole("mpmc-producer", 2);
  const RoleId Consumer = M.declareRole("mpmc-consumer", 2);
  const RoleId MainRole = M.declareRole("mpmc-main", 1);

  // Phase structure: the init block runs on the main thread before any
  // worker is forked, teardown after every join. The tune write runs
  // between the forks and the joins, so it is steady — that is the point
  // of the seeded hint race.
  const PhaseId Init = M.declarePhase("init");
  const PhaseId Steady = M.declarePhase("steady");
  const PhaseId Teardown = M.declarePhase("teardown");
  M.orderPhases(Init, Steady, PhaseOrderKind::ForkJoin);
  M.orderPhases(Steady, Teardown, PhaseOrderKind::ForkJoin);

  auto P = [](FunctionId F, uint32_t Site) { return makePc(F, Site); };

  // Node values ARE race-free, but only via the hazard-pointer protocol:
  // reader's value load → hazard clear (release) → scanner's hazard load
  // (acquire) → free-stack push → allocator's pop → next value write.
  // No static analysis can express that chain; declared honestly (shared,
  // written, lock-free) so every site stays logged.
  const VarId Values = M.declareVar("mpmc.node-values");
  M.declareSite(P(FnEnqueue, SiteValueWrite), SiteAccess::Write, Values,
                {Producer}, {}, Steady);
  M.declareSite(P(FnEnqueue, SiteValueRecheck), SiteAccess::Read, Values,
                {Producer}, {}, Steady);
  M.declareSite(P(FnDequeue, SiteValueRead), SiteAccess::Read, Values,
                {Consumer}, {}, Steady);

  const VarId Tally = M.declareVar("mpmc.enq-tally");
  M.declareSite(P(FnInit, SiteInitTallyWrite), SiteAccess::Write, Tally,
                {MainRole}, {}, Init);
  M.declareSite(P(FnEnqueue, SiteEnqTallyRead), SiteAccess::Read, Tally,
                {Producer}, {}, Steady);
  M.declareSite(P(FnEnqueue, SiteEnqTallyWrite), SiteAccess::Write, Tally,
                {Producer}, {}, Steady);
  M.declareSite(P(FnDequeue, SiteDeqTallyRead), SiteAccess::Read, Tally,
                {Consumer}, {}, Steady);
  M.declareSite(P(FnTeardown, SiteFinalTallyRead), SiteAccess::Read, Tally,
                {MainRole}, {}, Teardown);

  const VarId Hint = M.declareVar("mpmc.tuning-hint");
  M.declareSite(P(FnInit, SiteInitHintWrite), SiteAccess::Write, Hint,
                {MainRole}, {}, Init);
  M.declareSite(P(FnWarmup, SiteHintRead), SiteAccess::Read, Hint,
                {Producer, Consumer}, {}, Steady);
  M.declareSite(P(FnTune, SiteHintWrite), SiteAccess::Write, Hint,
                {MainRole}, {}, Steady);

  const VarId DoneFlag = M.declareVar("mpmc.drain-flag");
  M.declareSite(P(FnFinish, SiteDoneRead), SiteAccess::Read, DoneFlag,
                {Producer}, {}, Steady);
  M.declareSite(P(FnFinish, SiteDoneWrite), SiteAccess::Write, DoneFlag,
                {Producer}, {}, Steady);
  M.declareSite(P(FnDrain, SiteDrainDoneRead), SiteAccess::Read, DoneFlag,
                {Consumer}, {}, Steady);

  const VarId ScanSize = M.declareVar("mpmc.scan-size");
  M.declareSite(P(FnReclaim, SiteScanSizeRead), SiteAccess::Read, ScanSize,
                {Consumer}, {}, Steady);
  M.declareSite(P(FnReclaim, SiteScanSizeWrite), SiteAccess::Write,
                ScanSize, {Consumer}, {}, Steady);
  M.declareSite(P(FnTeardown, SiteFinalScanRead), SiteAccess::Read,
                ScanSize, {MainRole}, {}, Teardown);

  // The publish block re-reads the value it just wrote — same node, no
  // synchronization in between — so the redundancy pass elides the
  // recheck even though the variable stays logged everywhere else.
  M.declareRegion("mpmc.publish-block", {P(FnEnqueue, SiteValueWrite),
                                         P(FnEnqueue, SiteValueRecheck)});
  Bound = true;
}

void MpmcQueueWorkload::enqueueOne(ThreadContext &TC, SharedState &S,
                                   unsigned HazardSlot, uint64_t Value) {
  TC.run(FnEnqueue, [&](auto &T) {
    // Hot seeded race, placed before the first atomic of the activation so
    // the two producers' first tallies are provably unordered.
    uint64_t Tally = T.load(&S.EnqTally, SiteEnqTallyRead);
    T.store(&S.EnqTally, Tally + 1, SiteEnqTallyWrite);

    // Pop a node off the free stack; an empty stack means consumers are
    // behind, so back off (cooperatively under the fuzz engine — a token
    // holder that spins without yielding would stall the whole schedule).
    uint32_t Idx = 0;
    for (;;) {
      uint64_t FreeRef = S.FreeHead.load(TC);
      uint32_t FreeIdx = idxOf(FreeRef);
      if (FreeIdx == 0) {
        pollBackoff(TC);
        continue;
      }
      uint64_t NextIdx = S.node(FreeIdx).Next.load(TC);
      uint64_t Expected = FreeRef;
      if (S.FreeHead.compareExchange(
              TC, Expected, makeRef(tagOf(FreeRef) + 1, NextIdx))) {
        Idx = FreeIdx;
        break;
      }
    }

    // Publish block: the node is private here (just popped), so the write
    // and the recheck form a sync-free region.
    Node &N = S.node(Idx);
    T.store(&N.Value, Value, SiteValueWrite);
    (void)T.load(&N.Value, SiteValueRecheck);
    N.Next.store(TC, 0);

    // Michael-Scott enqueue with a hazard on the observed tail: the
    // hazard keeps the node from being recycled between the validation
    // re-read and the link CAS, so Next can never be reset to 0 under us
    // (the tag bump catches recycling before the validation).
    for (;;) {
      uint64_t TailRef = S.Tail.load(TC);
      uint32_t TailIdx = idxOf(TailRef);
      S.Hazard[HazardSlot].store(TC, TailIdx);
      if (S.Tail.load(TC) != TailRef)
        continue;
      uint64_t NextIdx = S.node(TailIdx).Next.load(TC);
      if (NextIdx != 0) {
        // Tail lags behind the real last node; help it forward.
        uint64_t Expected = TailRef;
        S.Tail.compareExchange(TC, Expected,
                               makeRef(tagOf(TailRef) + 1, NextIdx));
        continue;
      }
      uint64_t Expected = 0;
      if (S.node(TailIdx).Next.compareExchange(TC, Expected, Idx)) {
        uint64_t ExpTail = TailRef;
        S.Tail.compareExchange(TC, ExpTail,
                               makeRef(tagOf(TailRef) + 1, Idx));
        break;
      }
    }
    S.Hazard[HazardSlot].store(TC, 0);
  });
}

bool MpmcQueueWorkload::dequeueOne(ThreadContext &TC, SharedState &S,
                                   unsigned HazardBase,
                                   std::vector<uint32_t> &Retired,
                                   uint64_t &ValueOut) {
  bool Got = false;
  TC.run(FnDequeue, [&](auto &T) {
    for (;;) {
      uint64_t HeadRef = S.Head.load(TC);
      uint32_t HeadIdx = idxOf(HeadRef);
      S.Hazard[HazardBase].store(TC, HeadIdx);
      if (S.Head.load(TC) != HeadRef)
        continue;
      uint32_t NextIdx =
          static_cast<uint32_t>(S.node(HeadIdx).Next.load(TC));
      if (NextIdx == 0)
        break; // Head validated and has no successor: genuinely empty.
      // Protect the successor too, then re-validate: only if the head is
      // STILL unchanged is the successor guaranteed un-recycled, making
      // the value read below safe.
      S.Hazard[HazardBase + 1].store(TC, NextIdx);
      if (S.Head.load(TC) != HeadRef)
        continue;
      uint64_t TailRef = S.Tail.load(TC);
      if (idxOf(TailRef) == HeadIdx) {
        // Tail lags; help before swinging Head past it.
        uint64_t Expected = TailRef;
        S.Tail.compareExchange(TC, Expected,
                               makeRef(tagOf(TailRef) + 1, NextIdx));
        continue;
      }
      uint64_t Expected = HeadRef;
      if (S.Head.compareExchange(TC, Expected,
                                 makeRef(tagOf(HeadRef) + 1, NextIdx))) {
        // The successor is the new sentinel; its hazard keeps it alive
        // for this read even if another consumer retires it immediately.
        ValueOut = T.load(&S.node(NextIdx).Value, SiteValueRead);
        Retired.push_back(HeadIdx);
        (void)T.load(&S.EnqTally, SiteDeqTallyRead);
        Got = true;
        break;
      }
    }
    S.Hazard[HazardBase].store(TC, 0);
    S.Hazard[HazardBase + 1].store(TC, 0);
  });
  return Got;
}

void MpmcQueueWorkload::reclaim(ThreadContext &TC, SharedState &S,
                                std::vector<uint32_t> &Retired) {
  TC.run(FnReclaim, [&](auto &T) {
    // Rare seeded race: a bare scan-size diagnostic on a branch the hot
    // dequeue path takes only once per ReclaimThreshold retirements.
    (void)T.load(&S.LastScanSize, SiteScanSizeRead);
    T.store(&S.LastScanSize, static_cast<uint64_t>(Retired.size()),
            SiteScanSizeWrite);

    // Snapshot every hazard slot, then push unprotected nodes back onto
    // the free stack. A node whose hazard store we miss stays retired —
    // reclamation is delayed, never unsafe.
    uint64_t Hazards[SharedState::NumHazardSlots];
    for (unsigned I = 0; I != SharedState::NumHazardSlots; ++I)
      Hazards[I] = S.Hazard[I].load(TC);
    std::vector<uint32_t> Kept;
    for (uint32_t Idx : Retired) {
      bool InUse = false;
      for (unsigned I = 0; I != SharedState::NumHazardSlots; ++I)
        InUse |= (Hazards[I] == Idx);
      if (InUse) {
        Kept.push_back(Idx);
        continue;
      }
      for (;;) {
        uint64_t FreeRef = S.FreeHead.load(TC);
        S.node(Idx).Next.store(TC, idxOf(FreeRef));
        uint64_t Expected = FreeRef;
        if (S.FreeHead.compareExchange(TC, Expected,
                                       makeRef(tagOf(FreeRef) + 1, Idx)))
          break;
      }
    }
    Retired = std::move(Kept);
  });
}

void MpmcQueueWorkload::producerMain(ThreadContext &TC, SharedState &S,
                                     unsigned Worker, uint32_t Ops) {
  // Thread-cold seeded race: one bare hint read in each worker's first
  // activation, against the main thread's post-fork tune write.
  TC.run(FnWarmup,
         [&](auto &T) { (void)T.load(&S.TuningHint, SiteHintRead); });
  const unsigned HazardSlot = 2 * Worker;
  for (uint32_t I = 0; I != Ops; ++I)
    enqueueOne(TC, S, HazardSlot,
               (static_cast<uint64_t>(Worker + 1) << 32) | (I + 1));
  // Cold seeded race: a bare done-mirror RMW. Both producers run it after
  // their last enqueue and before their only DoneCount access, so no
  // release→acquire chain can order the two RMWs — the write-write race
  // manifests under every schedule.
  TC.run(FnFinish, [&](auto &T) {
    uint64_t Done = T.load(&S.ProducersDone, SiteDoneRead);
    T.store(&S.ProducersDone, Done + 1, SiteDoneWrite);
  });
  S.DoneCount.fetchAdd(TC, 1);
}

void MpmcQueueWorkload::consumerMain(ThreadContext &TC, SharedState &S,
                                     unsigned HazardBase, uint64_t &Popped,
                                     uint64_t &Sum) {
  TC.run(FnWarmup,
         [&](auto &T) { (void)T.load(&S.TuningHint, SiteHintRead); });
  std::vector<uint32_t> Retired;
  for (;;) {
    uint64_t Value = 0;
    if (dequeueOne(TC, S, HazardBase, Retired, Value)) {
      ++Popped;
      Sum += Value;
      if (Retired.size() >= ReclaimThreshold)
        reclaim(TC, S, Retired);
      continue;
    }
    // Queue looked empty: read the bare done mirror (racy with the
    // producers' finish RMWs until the DoneCount acquire below orders
    // later reads), then check the real counter.
    TC.run(FnDrain, [&](auto &T) {
      (void)T.load(&S.ProducersDone, SiteDrainDoneRead);
    });
    if (S.DoneCount.load(TC) == SharedState::NumProducers) {
      // Every enqueue happened before the last producer's DoneCount
      // release, which this load acquired: one final sweep sees them all.
      while (dequeueOne(TC, S, HazardBase, Retired, Value)) {
        ++Popped;
        Sum += Value;
        if (Retired.size() >= ReclaimThreshold)
          reclaim(TC, S, Retired);
      }
      break;
    }
    pollBackoff(TC);
  }
}

void MpmcQueueWorkload::run(Runtime &RT, const WorkloadParams &Params) {
  assert(Bound && "bind() must run before run()");
  auto S = std::make_unique<SharedState>();
  ThreadContext Main(RT);
  const uint32_t Ops = Params.scaled(40000, 60);

  // Structural init: logged atomics, main thread, pre-fork. Node 1 is the
  // sentinel; nodes 2..N chain into the free stack.
  S->Head.store(Main, makeRef(0, 1));
  S->Tail.store(Main, makeRef(0, 1));
  for (uint32_t I = 2; I != SharedState::NumNodes; ++I)
    S->node(I).Next.store(Main, I + 1);
  S->node(SharedState::NumNodes).Next.store(Main, 0);
  S->FreeHead.store(Main, makeRef(0, 2));

  Main.run(FnInit, [&](auto &T) {
    T.store(&S->EnqTally, uint64_t{0}, SiteInitTallyWrite);
    T.store(&S->TuningHint, Params.Seed & 0xff, SiteInitHintWrite);
  });

  std::vector<uint64_t> Popped(SharedState::NumConsumers, 0);
  std::vector<uint64_t> Sums(SharedState::NumConsumers, 0);
  std::vector<std::unique_ptr<Thread>> Threads;
  for (unsigned W = 0; W != SharedState::NumProducers; ++W)
    Threads.push_back(std::make_unique<Thread>(
        RT, Main, [this, &S, W, Ops](ThreadContext &TC) {
          producerMain(TC, *S, W, Ops);
        }));
  for (unsigned W = 0; W != SharedState::NumConsumers; ++W) {
    const unsigned HazardBase = 2 * (SharedState::NumProducers + W);
    Threads.push_back(std::make_unique<Thread>(
        RT, Main,
        [this, &S, HazardBase, &Popped, &Sums, W](ThreadContext &TC) {
          consumerMain(TC, *S, HazardBase, Popped[W], Sums[W]);
        }));
  }

  // The seeded hint race: written after every fork, read by each worker's
  // warmup, and no release of ours after this point is ever acquired by a
  // worker — unordered under every schedule.
  Main.run(FnTune, [&](auto &T) {
    T.store(&S->TuningHint, 1 + ((Params.Seed >> 8) & 0xff),
            SiteHintWrite);
  });

  for (auto &Th : Threads)
    Th->join(Main);

  Main.run(FnTeardown, [&](auto &T) {
    (void)T.load(&S->EnqTally, SiteFinalTallyRead);
    (void)T.load(&S->LastScanSize, SiteFinalScanRead);
  });

  // Linearizability check: every enqueued item was dequeued exactly once.
  uint64_t TotalPopped = 0;
  uint64_t TotalSum = 0;
  for (unsigned W = 0; W != SharedState::NumConsumers; ++W) {
    TotalPopped += Popped[W];
    TotalSum += Sums[W];
  }
  uint64_t ExpectedSum = 0;
  for (unsigned W = 0; W != SharedState::NumProducers; ++W)
    for (uint32_t I = 0; I != Ops; ++I)
      ExpectedSum += (static_cast<uint64_t>(W + 1) << 32) | (I + 1);
  assert(TotalPopped ==
         static_cast<uint64_t>(SharedState::NumProducers) * Ops);
  assert(TotalSum == ExpectedSum);
  (void)TotalPopped;
  (void)TotalSum;
  (void)ExpectedSum;
}

std::vector<SeededRaceSpec> MpmcQueueWorkload::seededRaces() const {
  assert(Bound && "seededRaces() requires bind()");
  auto P = [](FunctionId F, uint32_t Site) { return makePc(F, Site); };
  return {
      {"mpmc-enq-tally",
       {P(FnInit, SiteInitTallyWrite), P(FnEnqueue, SiteEnqTallyRead),
        P(FnEnqueue, SiteEnqTallyWrite), P(FnDequeue, SiteDeqTallyRead),
        P(FnTeardown, SiteFinalTallyRead)},
       /*ExpectFrequent=*/true},
      {"mpmc-tuning-hint",
       {P(FnInit, SiteInitHintWrite), P(FnWarmup, SiteHintRead),
        P(FnTune, SiteHintWrite)},
       /*ExpectFrequent=*/false},
      {"mpmc-drain-flag",
       {P(FnFinish, SiteDoneRead), P(FnFinish, SiteDoneWrite),
        P(FnDrain, SiteDrainDoneRead)},
       /*ExpectFrequent=*/false},
      {"mpmc-reclaim-scan",
       {P(FnReclaim, SiteScanSizeRead), P(FnReclaim, SiteScanSizeWrite),
        P(FnTeardown, SiteFinalScanRead)},
       /*ExpectFrequent=*/false},
  };
}
