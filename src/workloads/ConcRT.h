//===-- workloads/ConcRT.h - Concurrency-runtime workload -----*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "ConcRT" benchmark equivalent (§5.1): a lightweight task/agent
/// runtime exercised by two inputs from its concurrency test suite:
///
///   Messaging           four agents in a ring exchange messages through
///                       mailboxes (mutex + semaphore per mailbox); very
///                       high sync-to-compute ratio.
///   ExplicitScheduling  a phase-structured scheduler: the driver enqueues
///                       task batches to explicit per-worker queues with a
///                       barrier between phases.
///
/// Both inputs are synchronization-heavy: most of their instrumentation
/// cost is the mandatory sync logging, which is why the paper's ConcRT
/// Explicit Scheduling row shows micro-benchmark-like overhead (Fig. 6).
///
/// The paper does not include ConcRT in the rare/frequent split (Table 4);
/// neither do we — these runs execute too few memory operations for the
/// per-million threshold to be meaningful. Races are still seeded (and
/// appear in Fig. 4 detection rates): init races, one-shot start/shutdown
/// races, monitor-read races, and a rare branch in the hot dequeue path.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_WORKLOADS_CONCRT_H
#define LITERACE_WORKLOADS_CONCRT_H

#include "sync/MonitoredAllocator.h"
#include "workloads/Workload.h"

namespace literace {

/// "ConcRT Messaging" / "ConcRT Explicit Scheduling" benchmark-input pair.
class ConcRTWorkload : public Workload {
public:
  enum class Input { Messaging, ExplicitScheduling };

  explicit ConcRTWorkload(Input In);

  std::string name() const override;
  void bind(Runtime &RT) override;
  void run(Runtime &RT, const WorkloadParams &Params) override;
  std::vector<SeededRaceSpec> seededRaces() const override;

  /// Stable site labels.
  enum Site : uint32_t {
    // rt.enqueue
    SiteDepthWrite = 1,
    SiteSlotStore = 2,
    // rt.dequeue
    SiteSlotLoad = 20,
    SiteTunablesReadyRead = 21,
    SiteTunablesReadyWrite = 22,
    SiteTunablesTableWrite = 23,
    SiteTunablesProbeRead = 24,
    SiteStealHintWrite = 25,
    SiteStealHintRead = 26,
    // rt.execute
    SiteTaskPayload = 40,
    SiteRetiredRead = 41,
    SiteRetiredWrite = 42,
    SiteResultWrite = 43,
    SiteRetiredRecheck = 44,
    // rt.monitor
    SiteMonStopRead = 60,
    SiteMonRetired = 61,
    SiteMonDepth = 62,
    SiteMonLastAgent = 63,
    SiteMonCongestion = 64,
    SiteMonInFlight = 65,
    // agent.send
    SiteMailboxStore = 80,
    SiteInFlightRead = 81,
    SiteInFlightWrite = 82,
    SiteCongestionWrite = 83,
    SiteInFlightRecheck = 84,
    // agent.receive
    SiteMailboxLoad = 100,
    SiteLastAgentWrite = 101,
    // agent.start / worker.start
    SiteStartStampWrite = 120,
    // agent.finish / worker.finish
    SiteFinalSeqWrite = 140,
    // sched.openPhase
    SitePhaseLabelWrite = 160,
    // worker.beginPhase
    SitePhaseLabelRead = 180,
    // sched.spotCheck
    SiteSpotCheckRead = 200,
    // sched.stop
    SiteMonStopWrite = 220,
  };

private:
  struct Mailbox;
  struct TaskQueue;
  struct SharedState;

  void monitorMain(ThreadContext &TC, SharedState &S);
  void runMessaging(Runtime &RT, SharedState &S, const WorkloadParams &P);
  void runExplicit(Runtime &RT, SharedState &S, const WorkloadParams &P);
  void declareModel(AccessModel &M);

  Input In;
  bool Bound = false;

  FunctionId FnEnqueue = 0;
  FunctionId FnDequeue = 0;
  FunctionId FnExecute = 0;
  FunctionId FnMonitor = 0;
  FunctionId FnSend = 0;
  FunctionId FnReceive = 0;
  FunctionId FnAgentStart = 0;
  FunctionId FnAgentFinish = 0;
  FunctionId FnOpenPhase = 0;
  FunctionId FnBeginPhase = 0;
  FunctionId FnSpotCheck = 0;
  FunctionId FnStop = 0;
};

} // namespace literace

#endif // LITERACE_WORKLOADS_CONCRT_H
