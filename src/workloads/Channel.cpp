//===-- workloads/Channel.cpp - Dryad-channel workload --------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Channel.h"

#include "support/SplitMix64.h"

#include <cassert>
#include <chrono>
#include <thread>

using namespace literace;

/// A fixed-size data record flowing through the channel.
struct ChannelWorkload::Record {
  uint8_t Payload[64] = {};
  uint64_t Checksum = 0;
  uint32_t Seq = 0;
  uint8_t Oversize = 0;
};

/// The bounded MPMC channel: ring of record pointers guarded by a mutex,
/// with counting semaphores for slots and items. All internal accesses are
/// properly synchronized (and logged), so the detector must stay silent
/// about them.
struct ChannelWorkload::QueueState {
  static constexpr uint32_t Capacity = 64;
  Record *Ring[Capacity] = {};
  uint32_t Head = 0;
  uint32_t Tail = 0;
  Mutex Lock;
  Semaphore Slots{Capacity};
  Semaphore Items{0};
};

struct ChannelWorkload::SharedState {
  QueueState Queue;
  MonitoredAllocator Allocator;

  // -- Properly synchronized validation state (guarded by StatsLock). --
  Mutex StatsLock;
  uint64_t ValidatedItems = 0;

  // -- Intentionally racy diagnostics (see the seeded-race manifest). --
  uint64_t TuningHint = 0;          // rare: channel-tuning-hint
  uint64_t FinalTotal = 0;          // rare: channel-final-total
  uint64_t ReporterHeartbeat = 0;   // rare: channel-drain-heartbeat
  uint64_t OversizeSeq = 0;         // rare: channel-oversize-once
  uint8_t StopRequested = 0;        // rare: channel-stop-flag
  uint64_t PushCountSlots[8] = {};  // frequent: channel-push-count
  uint64_t PopCountSlots[8] = {};   // frequent: channel-pop-count
  uint64_t LastPushSize = 0;        // frequent: channel-last-size
};

ChannelWorkload::ChannelWorkload(bool WithStdLib) : WithStdLib(WithStdLib) {}

std::string ChannelWorkload::name() const {
  return WithStdLib ? "Dryad Channel + stdlib" : "Dryad Channel";
}

void ChannelWorkload::bind(Runtime &RT) {
  assert(!Bound && "workload bound twice; create a fresh instance per run");
  FunctionRegistry &Reg = RT.registry();
  FnPush = Reg.registerFunction("chan.push");
  FnPop = Reg.registerFunction("chan.pop");
  FnSetup = Reg.registerFunction("pipeline.setup");
  FnTune = Reg.registerFunction("pipeline.tune");
  FnProduce = Reg.registerFunction("pipeline.produce");
  FnConsume = Reg.registerFunction("pipeline.consume");
  FnFinishProducer = Reg.registerFunction("pipeline.finishProducer");
  FnTeardown = Reg.registerFunction("pipeline.teardown");
  FnPoll = Reg.registerFunction("reporter.poll");
  FnDrain = Reg.registerFunction("pipeline.drain");
  if (WithStdLib)
    StdLib.bind(RT);
  declareModel(RT.accessModel());
  Bound = true;
}

void ChannelWorkload::declareModel(AccessModel &M) {
  auto P = [](FunctionId F, uint32_t Site) { return makePc(F, Site); };
  const RoleId Main = M.declareRole("main", 1);
  const RoleId Producer = M.declareRole("producer", 3);
  const RoleId Consumer = M.declareRole("consumer", 2);
  const RoleId Reporter = M.declareRole("reporter", 1);
  const RoleId Drainer = M.declareRole("drainer", 1);
  const LockId QueueLock = M.declareLock("chan.queue-lock");
  const LockId StatsLock = M.declareLock("chan.stats-lock");
  constexpr auto Rd = SiteAccess::Read;
  constexpr auto Wr = SiteAccess::Write;

  // Happens-before skeleton: the setup loop runs before any worker is
  // forked, and the final teardown block runs after every join. The
  // stop-flag store lives in FnTeardown but executes while the reporter
  // is still running, so it is tagged steady, NOT teardown — phases
  // describe the synchronization structure, not source layout.
  const PhaseId Init = M.declarePhase("init");
  const PhaseId Steady = M.declarePhase("steady");
  const PhaseId Teardown = M.declarePhase("teardown");
  M.orderPhases(Init, Steady, PhaseOrderKind::ForkJoin);
  M.orderPhases(Steady, Teardown, PhaseOrderKind::ForkJoin);

  // Queue cursors: every site runs inside the queue lock, so the lockset
  // analysis elides them. Push runs on producers plus the main thread
  // (sentinels); pop on consumers plus the drainer.
  const VarId Tail = M.declareVar("chan.tail");
  M.declareSite(P(FnPush, SiteTailRead), Rd, Tail, {Producer, Main},
                {QueueLock}, Steady);
  M.declareSite(P(FnPush, SiteTailWrite), Wr, Tail, {Producer, Main},
                {QueueLock}, Steady);
  const VarId Head = M.declareVar("chan.head");
  M.declareSite(P(FnPop, SiteHeadRead), Rd, Head, {Consumer, Drainer},
                {QueueLock}, Steady);
  M.declareSite(P(FnPop, SiteHeadWrite), Wr, Head, {Consumer, Drainer},
                {QueueLock}, Steady);

  // The ring: the setup loop clears the slots before the lock discipline
  // starts, so the lockset analysis alone cannot prove it. The MHP pass
  // can: the init-phase stores are fork-ordered before every steady
  // access, and the steady pairs share the queue lock.
  const VarId Ring = M.declareVar("chan.ring");
  M.declareSite(P(FnPush, SiteRingWrite), Wr, Ring, {Producer, Main},
                {QueueLock}, Steady);
  M.declareSite(P(FnPop, SiteRingRead), Rd, Ring, {Consumer, Drainer},
                {QueueLock}, Steady);
  M.declareSite(P(FnSetup, SiteSetupInit), Wr, Ring, {Main}, {}, Init);

  // Validated-item aggregate: consistently guarded inside consume, and
  // the bare teardown check is join-ordered after every consumer — a
  // fork/join fact the phase skeleton expresses, so the MHP pass elides
  // the consume sites (the teardown site still logs: it shares a Pc with
  // the racy final-total check).
  const VarId Validated = M.declareVar("chan.validated-items");
  M.declareSite(P(FnConsume, SiteValidRead), Rd, Validated, {Consumer},
                {StatsLock}, Steady);
  M.declareSite(P(FnConsume, SiteValidWrite), Wr, Validated, {Consumer},
                {StatsLock}, Steady);
  M.declareSite(P(FnTeardown, SiteFinalTotalCheck), Rd, Validated, {Main},
                {}, Teardown);

  // Record fields cross the producer/consumer boundary through the
  // channel; the handoff ordering is real but neither lock-shaped nor
  // phase-shaped (producers and consumers share the steady phase), so
  // they stay logged (conservative).
  const VarId RecFields = M.declareVar("chan.record-fields");
  M.declareSite(P(FnProduce, SiteRecSeqWrite), Wr, RecFields, {Producer},
                {}, Steady);
  M.declareSite(P(FnProduce, SiteRecChecksumWrite), Wr, RecFields,
                {Producer}, {}, Steady);
  M.declareSite(P(FnProduce, SiteRecOversizeWrite), Wr, RecFields,
                {Producer}, {}, Steady);
  M.declareSite(P(FnConsume, SiteRecSeqRead), Rd, RecFields, {Consumer}, {},
                Steady);
  M.declareSite(P(FnConsume, SiteRecChecksumRead), Rd, RecFields,
                {Consumer}, {}, Steady);
  M.declareSite(P(FnConsume, SiteRecOversizeRead), Rd, RecFields,
                {Consumer}, {}, Steady);

  // Payload folds: in the plain configuration no instrumented site ever
  // writes the payload bytes (the stdlib's fill runs uninstrumented), so
  // the read-only analysis elides the hot fold loops. With the stdlib
  // instrumented its fill sites DO write these addresses under the
  // stdlib's own caller-buffer variable, and declaring the folds
  // read-only here would alias that variable unsoundly — so they stay
  // undeclared (and logged) in that configuration.
  if (!WithStdLib) {
    const VarId Payload = M.declareVar("chan.record-payload");
    M.declareSite(P(FnProduce, SitePayloadFold), Rd, Payload, {Producer});
    M.declareSite(P(FnConsume, SiteConsumeFold), Rd, Payload, {Consumer});
  }

  // Seeded racy diagnostics: declared honestly so the analysis proves
  // nothing about them and every keeper site keeps logging. The steady
  // phase tags are honest too — the conflicting pairs all share the
  // steady phase, so the MHP pass cannot discharge them.
  const VarId Tuning = M.declareVar("chan.tuning-hint");
  M.declareSite(P(FnTune, SiteTuneWrite), Wr, Tuning, {Main}, {}, Steady);
  M.declareSite(P(FnProduce, SiteTuningRead), Rd, Tuning, {Producer}, {},
                Steady);

  const VarId FinalTotal = M.declareVar("chan.final-total");
  M.declareSite(P(FnFinishProducer, SiteFinalTotalWrite), Wr, FinalTotal,
                {Producer}, {}, Steady);
  M.declareSite(P(FnTeardown, SiteFinalTotalCheck), Rd, FinalTotal, {Main},
                {}, Teardown);

  const VarId Heartbeat = M.declareVar("chan.reporter-heartbeat");
  M.declareSite(P(FnPoll, SiteHeartbeatWrite), Wr, Heartbeat, {Reporter},
                {}, Steady);
  M.declareSite(P(FnDrain, SiteHeartbeatRead), Rd, Heartbeat, {Drainer}, {},
                Steady);

  const VarId Oversize = M.declareVar("chan.oversize-seq");
  M.declareSite(P(FnPush, SiteOversizeWrite), Wr, Oversize,
                {Producer, Main}, {}, Steady);
  M.declareSite(P(FnPoll, SiteOversizeRead), Rd, Oversize, {Reporter}, {},
                Steady);

  // The stop store runs in FnTeardown while the reporter still polls:
  // steady phase, hence the write/read pair stays undischarged (seeded
  // channel-stop-flag).
  const VarId Stop = M.declareVar("chan.stop-flag");
  M.declareSite(P(FnTeardown, SiteStopWrite), Wr, Stop, {Main}, {}, Steady);
  M.declareSite(P(FnPoll, SiteStopRead), Rd, Stop, {Reporter}, {}, Steady);
  M.declareSite(P(FnSetup, SiteSetupInit), Wr, Stop, {Main}, {}, Init);

  const VarId PushCounts = M.declareVar("chan.push-counts");
  M.declareSite(P(FnPush, SitePushCountRead), Rd, PushCounts,
                {Producer, Main}, {}, Steady);
  M.declareSite(P(FnPush, SitePushCountWrite), Wr, PushCounts,
                {Producer, Main}, {}, Steady);
  M.declareSite(P(FnPush, SitePushCountRecheck), Rd, PushCounts,
                {Producer, Main}, {}, Steady);
  M.declareSite(P(FnPoll, SitePollPushCount), Rd, PushCounts, {Reporter},
                {}, Steady);

  const VarId PopCounts = M.declareVar("chan.pop-counts");
  M.declareSite(P(FnPop, SitePopCountRead), Rd, PopCounts,
                {Consumer, Drainer}, {}, Steady);
  M.declareSite(P(FnPop, SitePopCountWrite), Wr, PopCounts,
                {Consumer, Drainer}, {}, Steady);
  M.declareSite(P(FnPop, SitePopCountRecheck), Rd, PopCounts,
                {Consumer, Drainer}, {}, Steady);
  M.declareSite(P(FnPoll, SitePollPopCount), Rd, PopCounts, {Reporter}, {},
                Steady);

  const VarId LastSize = M.declareVar("chan.last-push-size");
  M.declareSite(P(FnPush, SiteLastSizeWrite), Wr, LastSize,
                {Producer, Main}, {}, Steady);
  M.declareSite(P(FnPoll, SitePollLastSize), Rd, LastSize, {Reporter}, {},
                Steady);
  M.declareSite(P(FnSetup, SiteSetupInit), Wr, LastSize, {Main}, {}, Init);

  // Sync-free regions: the slot-counter blocks re-read the counter they
  // just wrote — same address, no synchronization in between — so the
  // redundancy pass elides the recheck even though the variables stay
  // racy (the first read and the write still log).
  M.declareRegion("chan.push-count-block",
                  {P(FnPush, SitePushCountRead),
                   P(FnPush, SitePushCountWrite),
                   P(FnPush, SitePushCountRecheck)});
  M.declareRegion("chan.pop-count-block",
                  {P(FnPop, SitePopCountRead), P(FnPop, SitePopCountWrite),
                   P(FnPop, SitePopCountRecheck)});
}

void ChannelWorkload::chanPush(ThreadContext &TC, SharedState &S,
                               Record *Rec, uint32_t Size, bool FromProducer,
                               bool *WroteOversize) {
  S.Queue.Slots.acquire(TC);
  TC.run(FnPush, [&](auto &T) {
    S.Queue.Lock.lock(TC);
    uint32_t Tail = T.load(&S.Queue.Tail, SiteTailRead);
    T.store(&S.Queue.Ring[Tail % QueueState::Capacity], Rec, SiteRingWrite);
    T.store(&S.Queue.Tail, Tail + 1, SiteTailWrite);
    S.Queue.Lock.unlock(TC);

    // RACE (frequent, channel-push-count): per-thread slot counters kept
    // outside the lock; the reporter reads them bare.
    unsigned Slot = TC.tid() & 7u;
    uint64_t Count = T.load(&S.PushCountSlots[Slot], SitePushCountRead);
    T.store(&S.PushCountSlots[Slot], Count + 1, SitePushCountWrite);
    // Redundant recheck in the same sync-free region: the read above
    // already logged this address, so the redundancy pass elides it.
    (void)T.load(&S.PushCountSlots[Slot], SitePushCountRecheck);
    // RACE (frequent, channel-last-size): last-writer diagnostic.
    T.store(&S.LastPushSize, static_cast<uint64_t>(Size), SiteLastSizeWrite);
    // RACE (rare, channel-oversize-once): one-shot diagnostic on a rarely
    // taken branch of a hot function — the population every sampler,
    // LiteRace included, usually misses (§5.3).
    if (FromProducer && Rec && Rec->Oversize && WroteOversize &&
        !*WroteOversize) {
      T.store(&S.OversizeSeq, static_cast<uint64_t>(Rec->Seq),
              SiteOversizeWrite);
      *WroteOversize = true;
    }
  });
  S.Queue.Items.release(TC);
}

ChannelWorkload::Record *ChannelWorkload::chanPop(ThreadContext &TC,
                                                  SharedState &S) {
  S.Queue.Items.acquire(TC);
  Record *Rec = nullptr;
  TC.run(FnPop, [&](auto &T) {
    S.Queue.Lock.lock(TC);
    uint32_t Head = T.load(&S.Queue.Head, SiteHeadRead);
    Rec = T.load(&S.Queue.Ring[Head % QueueState::Capacity], SiteRingRead);
    T.store(&S.Queue.Head, Head + 1, SiteHeadWrite);
    S.Queue.Lock.unlock(TC);

    // RACE (frequent, channel-pop-count): mirror of the push counters.
    unsigned Slot = TC.tid() & 7u;
    uint64_t Count = T.load(&S.PopCountSlots[Slot], SitePopCountRead);
    T.store(&S.PopCountSlots[Slot], Count + 1, SitePopCountWrite);
    // Redundant recheck (see chanPush): elided by the redundancy pass.
    (void)T.load(&S.PopCountSlots[Slot], SitePopCountRecheck);
  });
  S.Queue.Slots.release(TC);
  return Rec;
}

void ChannelWorkload::producerMain(ThreadContext &TC, SharedState &S,
                                   unsigned Index, uint32_t Items,
                                   uint64_t Seed) {
  (void)Seed;
  StdLibSession Session;
  bool WroteOversize = false;
  uint64_t Total = 0;

  // Warm-up BEFORE the first synchronization operation of this thread
  // (including allocator page events): the stdlib lazy inits and the
  // tuning-hint read execute while the producers are still mutually
  // unordered, so those races manifest on every schedule.
  TC.run(FnProduce, [&](auto &T) {
    // RACE (rare, channel-tuning-hint): the parent publishes the hint
    // after spawning us; we read it once, unsynchronized.
    Total ^= T.load(&S.TuningHint, SiteTuningRead);
    uint8_t Warm[16];
    StdLib.fill(TC, Session, Warm, sizeof(Warm), 1);
    Total ^= StdLib.checksum(TC, Session, Warm, sizeof(Warm));
    char Buf[8];
    StdLib.formatUint(TC, Session, 7, Buf, sizeof(Buf));
  });

  for (uint32_t I = 0; I != Items; ++I) {
    Record *Rec = S.Allocator.create<Record>(TC);
    uint32_t Seq = Index * 1000000u + I;
    // Deterministic "oversize" items: rare at full scale, but at least one
    // exists at any scale the tests run at.
    bool Oversize = (I % 997) == 499 || I == 13;

    TC.run(FnProduce, [&](auto &T) {
      StdLib.fill(TC, Session, Rec->Payload, sizeof(Rec->Payload),
                  static_cast<uint8_t>(Seq * 131));
      uint64_t Sum =
          StdLib.checksum(TC, Session, Rec->Payload, sizeof(Rec->Payload));
      char Buf[24];
      StdLib.formatUint(TC, Session, Seq, Buf, sizeof(Buf));

      // Local fold over the payload: application-side memory traffic that
      // stays visible in the plain (stdlib-uninstrumented) configuration.
      uint64_t Fold = 0;
      for (size_t K = 0; K != sizeof(Rec->Payload); ++K)
        Fold += T.load(&Rec->Payload[K], SitePayloadFold);

      T.store(&Rec->Seq, Seq, SiteRecSeqWrite);
      T.store(&Rec->Checksum, Sum ^ Fold, SiteRecChecksumWrite);
      T.store(&Rec->Oversize, static_cast<uint8_t>(Oversize),
              SiteRecOversizeWrite);
      Total += Sum;
    });

    chanPush(TC, S, Rec, Oversize ? 4096u : 64u, /*FromProducer=*/true,
             &WroteOversize);
  }

  // RACE (rare, channel-final-total): each producer's last acts before
  // exiting are unsynchronized writes; nothing orders the producers'
  // writes with each other (only the eventual join orders them with the
  // parent). The stdlib session flush is racy the same way
  // (stdlib-flush-mark).
  TC.run(FnFinishProducer, [&](auto &T) {
    T.store(&S.FinalTotal, Total, SiteFinalTotalWrite);
  });
  StdLib.flushSession(TC, Session);
}

void ChannelWorkload::consumerMain(ThreadContext &TC, SharedState &S) {
  StdLibSession Session;
  for (;;) {
    Record *Rec = chanPop(TC, S);
    if (!Rec)
      break; // Sentinel: channel closed.
    TC.run(FnConsume, [&](auto &T) {
      uint32_t Seq = T.load(&Rec->Seq, SiteRecSeqRead);
      uint64_t Expect = T.load(&Rec->Checksum, SiteRecChecksumRead);
      (void)T.load(&Rec->Oversize, SiteRecOversizeRead);
      uint64_t Sum =
          StdLib.checksum(TC, Session, Rec->Payload, sizeof(Rec->Payload));
      uint64_t Fold = 0;
      for (size_t K = 0; K != sizeof(Rec->Payload); ++K)
        Fold += T.load(&Rec->Payload[K], SiteConsumeFold);
      bool Valid = Expect == (Sum ^ Fold);
      (void)Seq;

      // Properly synchronized aggregate: must never be reported.
      S.StatsLock.lock(TC);
      uint64_t N = T.load(&S.ValidatedItems, SiteValidRead);
      T.store(&S.ValidatedItems, N + (Valid ? 1 : 0), SiteValidWrite);
      S.StatsLock.unlock(TC);
    });
    S.Allocator.destroy(TC, Rec);
  }
}

void ChannelWorkload::reporterMain(ThreadContext &TC, SharedState &S) {
  uint32_t Poll = 0;
  bool ReadOversize = false;
  uint64_t Sink = 0;
  for (;;) {
    bool Stop = false;
    TC.run(FnPoll, [&](auto &T) {
      // RACE (frequent, channel-stop-flag): polled bare instead of using
      // an event.
      Stop = T.load(&S.StopRequested, SiteStopRead) != 0;
      for (unsigned Slot = 0; Slot != 8; ++Slot)
        Sink ^= T.load(&S.PushCountSlots[Slot], SitePollPushCount);
      for (unsigned Slot = 0; Slot != 8; ++Slot)
        Sink ^= T.load(&S.PopCountSlots[Slot], SitePollPopCount);
      Sink ^= T.load(&S.LastPushSize, SitePollLastSize);
      // RACE (rare, channel-drain-heartbeat): one-shot partner write for
      // the drainer's one-shot read. The drainer is forked before the
      // reporter is joined, so no fork/join chain ever orders the two.
      if (Poll == 0)
        T.store(&S.ReporterHeartbeat, uint64_t{1}, SiteHeartbeatWrite);
      // RACE (rare, channel-oversize-once): single diagnostic read. Also
      // fires on the stop poll so short (test-scale) runs still read it.
      if ((Poll == 137 || Stop) && !ReadOversize) {
        Sink ^= T.load(&S.OversizeSeq, SiteOversizeRead);
        ReadOversize = true;
      }
    });
    Sink ^= StdLib.pollStats(TC);
    ++Poll;
    if (Stop || Poll > 200000)
      break;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void ChannelWorkload::drainerMain(ThreadContext &TC, SharedState &S) {
  TC.run(FnDrain, [&](auto &T) {
    // RACE (rare, channel-drain-heartbeat): late-entrant thread reads the
    // (long dead) reporter's heartbeat; nothing ever ordered the two.
    (void)T.load(&S.ReporterHeartbeat, SiteHeartbeatRead);
  });
  for (;;) {
    Record *Rec = chanPop(TC, S);
    if (!Rec)
      break;
    S.Allocator.destroy(TC, Rec);
  }
}

void ChannelWorkload::run(Runtime &RT, const WorkloadParams &Params) {
  assert(Bound && "bind() must run before run()");
  SharedState S;
  ThreadContext Main(RT);
  const uint32_t Items = Params.scaled(2500, 50);

  Main.run(FnSetup, [&](auto &T) {
    for (auto &SlotPtr : S.Queue.Ring)
      T.store(&SlotPtr, static_cast<Record *>(nullptr), SiteSetupInit);
    T.store(&S.StopRequested, uint8_t{0}, SiteSetupInit);
    T.store(&S.LastPushSize, uint64_t{0}, SiteSetupInit);
  });

  Thread Reporter(RT, Main,
                  [this, &S](ThreadContext &TC) { reporterMain(TC, S); });

  std::vector<std::unique_ptr<Thread>> Producers;
  for (unsigned I = 0; I != 3; ++I)
    Producers.push_back(std::make_unique<Thread>(
        RT, Main, [this, &S, I, Items, &Params](ThreadContext &TC) {
          // Staggered starts: by the time a later producer executes the
          // (globally hot) produce/stdlib functions for the FIRST time,
          // a global sampler has already backed off — only a
          // thread-local sampler still samples them (§3.4's rationale).
          // A sleep creates no happens-before edge, so the init races
          // stay unordered.
          std::this_thread::sleep_for(std::chrono::milliseconds(25 * I));
          producerMain(TC, S, I, Items, Params.Seed + I);
        }));

  std::vector<std::unique_ptr<Thread>> Consumers;
  for (unsigned I = 0; I != 2; ++I)
    Consumers.push_back(std::make_unique<Thread>(
        RT, Main, [this, &S](ThreadContext &TC) { consumerMain(TC, S); }));

  // RACE (rare, channel-tuning-hint): published after the producers
  // already started.
  Main.run(FnTune, [&](auto &T) {
    T.store(&S.TuningHint, uint64_t{42}, SiteTuneWrite);
  });

  for (auto &P : Producers)
    P->join(Main);

  // RACE (frequent, channel-stop-flag): stop the reporter with a bare
  // store instead of an event.
  Main.run(FnTeardown, [&](auto &T) {
    T.store(&S.StopRequested, uint8_t{1}, SiteStopWrite);
  });

  // Close the channel: one sentinel per consumer.
  bool Unused = false;
  chanPush(Main, S, nullptr, 0, /*FromProducer=*/false, &Unused);
  chanPush(Main, S, nullptr, 0, /*FromProducer=*/false, &Unused);
  for (auto &C : Consumers)
    C->join(Main);

  // Late drainer: one more sentinel, then drain. The drainer is forked
  // BEFORE the reporter is joined, so its heartbeat read stays unordered
  // with the reporter's heartbeat write (the channel-drain-heartbeat
  // race); joining the reporter first would order the pair through the
  // join→fork chain.
  chanPush(Main, S, nullptr, 0, /*FromProducer=*/false, &Unused);
  Thread Drainer(RT, Main,
                 [this, &S](ThreadContext &TC) { drainerMain(TC, S); });
  Drainer.join(Main);
  Reporter.join(Main);

  Main.run(FnTeardown, [&](auto &T) {
    // Ordered reads (after the joins); must not be reported.
    (void)T.load(&S.FinalTotal, SiteFinalTotalCheck);
    (void)T.load(&S.ValidatedItems, SiteFinalTotalCheck);
  });
}

std::vector<SeededRaceSpec> ChannelWorkload::seededRaces() const {
  assert(Bound && "manifest valid only after bind()");
  auto P = [&](FunctionId F, uint32_t Site) { return makePc(F, Site); };
  std::vector<SeededRaceSpec> Races;
  auto Add = [&](const char *Label, std::vector<Pc> Sites, bool Frequent) {
    Races.push_back(SeededRaceSpec{Label, std::move(Sites), Frequent});
  };

  Add("channel-tuning-hint",
      {P(FnTune, SiteTuneWrite), P(FnProduce, SiteTuningRead)}, false);
  Add("channel-final-total",
      {P(FnFinishProducer, SiteFinalTotalWrite)}, false);
  Add("channel-drain-heartbeat",
      {P(FnPoll, SiteHeartbeatWrite), P(FnDrain, SiteHeartbeatRead)}, false);
  Add("channel-oversize-once",
      {P(FnPush, SiteOversizeWrite), P(FnPoll, SiteOversizeRead)}, false);
  Add("channel-stop-flag",
      {P(FnTeardown, SiteStopWrite), P(FnPoll, SiteStopRead)}, false);
  Add("channel-push-count",
      {P(FnPush, SitePushCountRead), P(FnPush, SitePushCountWrite),
       P(FnPush, SitePushCountRecheck), P(FnPoll, SitePollPushCount)},
      true);
  Add("channel-pop-count",
      {P(FnPop, SitePopCountRead), P(FnPop, SitePopCountWrite),
       P(FnPop, SitePopCountRecheck), P(FnPoll, SitePollPopCount)},
      true);
  Add("channel-last-size",
      {P(FnPush, SiteLastSizeWrite), P(FnPoll, SitePollLastSize)}, true);

  for (SeededRaceSpec &Spec : StdLib.seededRaces())
    Races.push_back(std::move(Spec));
  return Races;
}
