//===-- workloads/Workload.h - Benchmark workload framework ---*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark workloads of §5.1, rebuilt as synthetic equivalents (see
/// DESIGN.md §1 for the substitution rationale). Every workload:
///
///  - registers its instrumented functions against a Runtime (bind()),
///  - runs a multi-threaded scenario through the instrumentation API
///    (run()), and
///  - publishes a manifest of the data races intentionally seeded into it
///    (seededRaces()), so detection results can be validated against
///    ground truth — something the paper could not do with Dryad/Firefox,
///    but which a reproduction should.
///
/// Races are seeded in three populations, chosen to express the paper's
/// cold-region hypothesis:
///  - thread-cold races: both sides execute in some thread's first few
///    entries of a function (init, late-entrant threads, teardown);
///  - hot frequent races: unsynchronized hot-path accesses where the two
///    threads share no synchronization at all, manifesting constantly;
///  - rare-in-hot races: rarely taken branches of hot functions — the
///    population every sampler (including LiteRace) mostly misses.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_WORKLOADS_WORKLOAD_H
#define LITERACE_WORKLOADS_WORKLOAD_H

#include "runtime/Runtime.h"
#include "runtime/ThreadContext.h"
#include "sync/Primitives.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace literace {

/// Size/seed knobs for a workload execution.
struct WorkloadParams {
  /// Multiplies item counts; 1 is the paper-shaped default (~1-2M memory
  /// operations per run).
  double Scale = 1.0;
  /// Seed for workload-internal randomness (request mixes, key choices).
  uint64_t Seed = 0x5eedf00dULL;

  /// Scales an item count, keeping at least \p Min.
  uint32_t scaled(uint32_t N, uint32_t Min = 1) const {
    double V = static_cast<double>(N) * Scale;
    return V < Min ? Min : static_cast<uint32_t>(V);
  }
};

/// Ground-truth record of one intentionally seeded race family: all
/// access sites touching one racy variable (or set of variables that share
/// sites). A family is "detected" when some reported static race has both
/// of its sites inside the family, and every reported race must fall
/// inside some family (no false positives beyond the seeded ones).
struct SeededRaceSpec {
  /// Human-readable label ("channel-tuning-hint").
  std::string Label;
  /// All access sites of the racy variable(s). Valid after bind().
  std::vector<Pc> Sites;
  /// True if the family manifests often enough that at least one of its
  /// races classifies frequent under the §5.3.1 rule at default scale.
  bool ExpectFrequent = false;
};

/// A benchmark-input pair (one row of the paper's tables).
class Workload {
public:
  virtual ~Workload();

  /// Row name, e.g. "Dryad Channel + stdlib".
  virtual std::string name() const = 0;

  /// Registers this workload's functions with \p RT. Must be called
  /// exactly once per Runtime, before run().
  virtual void bind(Runtime &RT) = 0;

  /// Executes the scenario. Spawns its own threads and joins them; all
  /// thread contexts are destroyed (and their logs flushed) on return.
  virtual void run(Runtime &RT, const WorkloadParams &Params) = 0;

  /// Manifest of seeded races. Valid after bind().
  virtual std::vector<SeededRaceSpec> seededRaces() const = 0;
};

/// Factory selector for the individual workloads.
enum class WorkloadKind {
  ChannelWithStdLib, ///< "Dryad Channel + stdlib"
  Channel,           ///< "Dryad Channel"
  ConcRTMessaging,   ///< "ConcRT Messaging"
  ConcRTScheduling,  ///< "ConcRT Explicit Scheduling"
  Httpd1,            ///< "Apache-1" (mixed request sizes + CGI)
  Httpd2,            ///< "Apache-2" (uniform small static)
  BrowserStart,      ///< "Firefox Start"
  BrowserRender,     ///< "Firefox Render"
  LKRHash,           ///< micro-benchmark: striped hash table
  LFList,            ///< micro-benchmark: lock-free list
  SciComputeFn,      ///< §7 extension: loop-heavy kernel, function-level
  SciComputeLoop,    ///< §7 extension: same kernel with loop hints
  MpmcQueue,         ///< adversarial: lock-free MPMC queue + hazard
                     ///< pointers (schedule-fuzz target)
  TaskExecutor,      ///< adversarial: work-stealing async executor
                     ///< (schedule-fuzz target)
};

/// Creates one workload instance.
std::unique_ptr<Workload> makeWorkload(WorkloadKind Kind);

/// One row of the command-line workload registry shared by the tools
/// (literace-run, literace-analyze): the stable CLI name for a kind.
struct WorkloadNameEntry {
  const char *Name;
  WorkloadKind Kind;
};

/// All CLI workload names, in display order.
const std::vector<WorkloadNameEntry> &workloadNameTable();

/// Parses a CLI workload name ("httpd-1"); nullopt when unknown.
std::optional<WorkloadKind> workloadKindByName(const std::string &Name);

/// All CLI names joined with spaces and wrapped to usage-message width,
/// each line prefixed with \p Indent.
std::string workloadNameList(const std::string &Indent = "  ");

/// The eight benchmark-input pairs of the §5.3 detection study (Fig. 4).
std::vector<std::unique_ptr<Workload>> makeDetectionSuite();

/// The six non-ConcRT pairs used for Table 4 / Fig. 5 (the paper reports
/// rare/frequent splits for these only).
std::vector<std::unique_ptr<Workload>> makeRareFrequentSuite();

/// The ten rows of the §5.4 overhead study (Table 5): the detection suite
/// plus the two synchronization-heavy micro-benchmarks.
std::vector<std::unique_ptr<Workload>> makeOverheadSuite();

} // namespace literace

#endif // LITERACE_WORKLOADS_WORKLOAD_H
