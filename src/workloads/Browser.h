//===-- workloads/Browser.h - Browser workload ----------------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "Firefox" benchmark equivalent (§5.1), with the paper's two inputs:
///
///   Start   browser start-up: three service threads (preferences, fonts,
///           extensions) bring up subsystems concurrently, registering
///           components in a shared, properly locked registry, while a UI
///           thread polls splash-screen progress bare.
///   Render  layout of a page with 2500 positioned boxes: the main thread
///           builds the box tree, two layout threads reflow disjoint
///           halves through a striped-lock style cache, and a UI thread
///           polls repaint progress bare. The layout measure loop uses
///           the loop-granularity sampling hint (§7 extension).
///
/// Start is dominated by per-thread-cold initialization code (the
/// cold-region hypothesis' home turf); Render by hot layout loops.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_WORKLOADS_BROWSER_H
#define LITERACE_WORKLOADS_BROWSER_H

#include "workloads/Workload.h"

namespace literace {

/// "Firefox Start" / "Firefox Render" benchmark-input pair.
class BrowserWorkload : public Workload {
public:
  enum class Input { Start, Render };

  explicit BrowserWorkload(Input In);

  std::string name() const override;
  void bind(Runtime &RT) override;
  void run(Runtime &RT, const WorkloadParams &Params) override;
  std::vector<SeededRaceSpec> seededRaces() const override;

  /// Stable site labels.
  enum Site : uint32_t {
    // svc.serviceStart
    SiteStartStampWrite = 1,
    SitePrefsVersionRead = 2,
    SitePrefsVersionWrite = 3,
    // svc.loadItem (prefs/fonts/extensions item processing)
    SiteBlobLoad = 20,
    SiteScratchStore = 21,
    SiteProgressRead = 22,
    SiteProgressWrite = 23,
    SiteProgressRecheck = 24,
    // reg.registerComponent
    SiteRegistryKeyWrite = 40,
    SiteRegistryValWrite = 41,
    SiteLastComponentWrite = 42,
    SiteDepthWrite = 43,
    SiteSplashHintWrite = 44,
    // reg.lookup
    SiteRegistryKeyRead = 60,
    SiteThemeReadyRead = 61,
    SiteThemeReadyWrite = 62,
    SiteThemeTableWrite = 63,
    SiteThemeProbeRead = 64,
    // svc.serviceFinish
    SiteFallbackFontWrite = 80,
    SiteFallbackFontRead = 81,
    SiteDoneMarkWrite = 82,
    // ui.progress
    SiteUiStopRead = 100,
    SiteUiProgress = 101,
    SiteUiLastComponent = 102,
    SiteUiDepth = 103,
    SiteUiSplashHint = 104,
    SiteUiDirty = 105,
    SiteUiBoxesDone = 106,
    SiteUiLastStyle = 107,
    SiteUiOverflow = 108,
    // app.shutdown
    SiteStopWrite = 120,
    // dom.buildNode
    SiteNodeInit = 140,
    // layout.reflowBox
    SiteBoxRead = 160,
    SiteBoxWrite = 161,
    SiteDirtyWrite = 162,
    SiteBoxesDoneRead = 163,
    SiteBoxesDoneWrite = 164,
    SiteOverflowWrite = 165,
    SiteFirstPaintWrite = 166,
    SiteBoxesDoneRecheck = 167,
    // layout.measureText
    SiteGlyphLoad = 180,
    SiteMeasureWrite = 181,
    // render.paint
    SitePaintTile = 190,
    SitePaintSrc = 191,
    // style.resolve
    SiteStyleKeyRead = 200,
    SiteStyleKeyWrite = 201,
    SiteStyleValWrite = 202,
    SiteLastStyleWrite = 203,
    // layout.workerFinish
    SiteFinishStampWrite = 220,
  };

private:
  struct SharedState;

  void uiMain(ThreadContext &TC, SharedState &S);
  void serviceMain(ThreadContext &TC, SharedState &S, unsigned Kind,
                   uint32_t Items);
  void layoutMain(ThreadContext &TC, SharedState &S, unsigned Index,
                  uint32_t Begin, uint32_t End);
  void runStart(Runtime &RT, SharedState &S, const WorkloadParams &P);
  void runRender(Runtime &RT, SharedState &S, const WorkloadParams &P);
  void declareModel(AccessModel &M);

  Input In;
  bool Bound = false;

  FunctionId FnServiceStart = 0;
  FunctionId FnLoadItem = 0;
  FunctionId FnRegister = 0;
  FunctionId FnLookup = 0;
  FunctionId FnServiceFinish = 0;
  FunctionId FnUiProgress = 0;
  FunctionId FnShutdown = 0;
  FunctionId FnBuildNode = 0;
  FunctionId FnReflowBox = 0;
  FunctionId FnMeasureText = 0;
  FunctionId FnStyleResolve = 0;
  FunctionId FnPaint = 0;
  FunctionId FnWorkerFinish = 0;
};

} // namespace literace

#endif // LITERACE_WORKLOADS_BROWSER_H
