//===-- workloads/Workload.cpp - Benchmark workload framework -------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Compiler.h"
#include "workloads/Browser.h"
#include "workloads/Channel.h"
#include "workloads/ConcRT.h"
#include "workloads/Httpd.h"
#include "workloads/LFList.h"
#include "workloads/LKRHash.h"
#include "workloads/MpmcQueue.h"
#include "workloads/SciCompute.h"
#include "workloads/TaskExecutor.h"

using namespace literace;

Workload::~Workload() = default;

std::unique_ptr<Workload> literace::makeWorkload(WorkloadKind Kind) {
  switch (Kind) {
  case WorkloadKind::ChannelWithStdLib:
    return std::make_unique<ChannelWorkload>(/*WithStdLib=*/true);
  case WorkloadKind::Channel:
    return std::make_unique<ChannelWorkload>(/*WithStdLib=*/false);
  case WorkloadKind::ConcRTMessaging:
    return std::make_unique<ConcRTWorkload>(ConcRTWorkload::Input::Messaging);
  case WorkloadKind::ConcRTScheduling:
    return std::make_unique<ConcRTWorkload>(
        ConcRTWorkload::Input::ExplicitScheduling);
  case WorkloadKind::Httpd1:
    return std::make_unique<HttpdWorkload>(HttpdWorkload::Input::Mixed1);
  case WorkloadKind::Httpd2:
    return std::make_unique<HttpdWorkload>(
        HttpdWorkload::Input::SmallStatic2);
  case WorkloadKind::BrowserStart:
    return std::make_unique<BrowserWorkload>(BrowserWorkload::Input::Start);
  case WorkloadKind::BrowserRender:
    return std::make_unique<BrowserWorkload>(BrowserWorkload::Input::Render);
  case WorkloadKind::LKRHash:
    return std::make_unique<LKRHashWorkload>();
  case WorkloadKind::LFList:
    return std::make_unique<LFListWorkload>();
  case WorkloadKind::SciComputeFn:
    return std::make_unique<SciComputeWorkload>(/*UseLoopHints=*/false);
  case WorkloadKind::SciComputeLoop:
    return std::make_unique<SciComputeWorkload>(/*UseLoopHints=*/true);
  case WorkloadKind::MpmcQueue:
    return std::make_unique<MpmcQueueWorkload>();
  case WorkloadKind::TaskExecutor:
    return std::make_unique<TaskExecutorWorkload>();
  }
  literaceUnreachable("invalid workload kind");
}

const std::vector<WorkloadNameEntry> &literace::workloadNameTable() {
  static const std::vector<WorkloadNameEntry> Table = {
      {"channel-stdlib", WorkloadKind::ChannelWithStdLib},
      {"channel", WorkloadKind::Channel},
      {"concrt-messaging", WorkloadKind::ConcRTMessaging},
      {"concrt-scheduling", WorkloadKind::ConcRTScheduling},
      {"httpd-1", WorkloadKind::Httpd1},
      {"httpd-2", WorkloadKind::Httpd2},
      {"browser-start", WorkloadKind::BrowserStart},
      {"browser-render", WorkloadKind::BrowserRender},
      {"lkrhash", WorkloadKind::LKRHash},
      {"lflist", WorkloadKind::LFList},
      {"scicompute", WorkloadKind::SciComputeFn},
      {"scicompute-loop", WorkloadKind::SciComputeLoop},
      {"mpmc-queue", WorkloadKind::MpmcQueue},
      {"task-executor", WorkloadKind::TaskExecutor},
  };
  return Table;
}

std::optional<WorkloadKind>
literace::workloadKindByName(const std::string &Name) {
  for (const WorkloadNameEntry &Entry : workloadNameTable())
    if (Name == Entry.Name)
      return Entry.Kind;
  return std::nullopt;
}

std::string literace::workloadNameList(const std::string &Indent) {
  std::string Out = Indent;
  size_t LineLen = Indent.size();
  bool First = true;
  for (const WorkloadNameEntry &Entry : workloadNameTable()) {
    size_t Len = std::string(Entry.Name).size();
    if (!First && LineLen + 1 + Len > 72) {
      Out += "\n" + Indent;
      LineLen = Indent.size();
    } else if (!First) {
      Out += " ";
      ++LineLen;
    }
    Out += Entry.Name;
    LineLen += Len;
    First = false;
  }
  return Out;
}

std::vector<std::unique_ptr<Workload>> literace::makeDetectionSuite() {
  std::vector<std::unique_ptr<Workload>> Suite;
  Suite.push_back(makeWorkload(WorkloadKind::ChannelWithStdLib));
  Suite.push_back(makeWorkload(WorkloadKind::Channel));
  Suite.push_back(makeWorkload(WorkloadKind::ConcRTMessaging));
  Suite.push_back(makeWorkload(WorkloadKind::ConcRTScheduling));
  Suite.push_back(makeWorkload(WorkloadKind::Httpd1));
  Suite.push_back(makeWorkload(WorkloadKind::Httpd2));
  Suite.push_back(makeWorkload(WorkloadKind::BrowserStart));
  Suite.push_back(makeWorkload(WorkloadKind::BrowserRender));
  return Suite;
}

std::vector<std::unique_ptr<Workload>> literace::makeRareFrequentSuite() {
  // The paper's Table 4 / Fig. 5 exclude ConcRT: its runs execute too few
  // memory operations for the per-million rare threshold to separate
  // anything.
  std::vector<std::unique_ptr<Workload>> Suite;
  Suite.push_back(makeWorkload(WorkloadKind::ChannelWithStdLib));
  Suite.push_back(makeWorkload(WorkloadKind::Channel));
  Suite.push_back(makeWorkload(WorkloadKind::Httpd1));
  Suite.push_back(makeWorkload(WorkloadKind::Httpd2));
  Suite.push_back(makeWorkload(WorkloadKind::BrowserStart));
  Suite.push_back(makeWorkload(WorkloadKind::BrowserRender));
  return Suite;
}

std::vector<std::unique_ptr<Workload>> literace::makeOverheadSuite() {
  std::vector<std::unique_ptr<Workload>> Suite;
  Suite.push_back(makeWorkload(WorkloadKind::LKRHash));
  Suite.push_back(makeWorkload(WorkloadKind::LFList));
  Suite.push_back(makeWorkload(WorkloadKind::ChannelWithStdLib));
  Suite.push_back(makeWorkload(WorkloadKind::Channel));
  Suite.push_back(makeWorkload(WorkloadKind::ConcRTMessaging));
  Suite.push_back(makeWorkload(WorkloadKind::ConcRTScheduling));
  Suite.push_back(makeWorkload(WorkloadKind::Httpd1));
  Suite.push_back(makeWorkload(WorkloadKind::Httpd2));
  Suite.push_back(makeWorkload(WorkloadKind::BrowserStart));
  Suite.push_back(makeWorkload(WorkloadKind::BrowserRender));
  return Suite;
}
