//===-- workloads/Workload.cpp - Benchmark workload framework -------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Compiler.h"
#include "workloads/Browser.h"
#include "workloads/Channel.h"
#include "workloads/ConcRT.h"
#include "workloads/Httpd.h"
#include "workloads/LFList.h"
#include "workloads/LKRHash.h"
#include "workloads/SciCompute.h"

using namespace literace;

Workload::~Workload() = default;

std::unique_ptr<Workload> literace::makeWorkload(WorkloadKind Kind) {
  switch (Kind) {
  case WorkloadKind::ChannelWithStdLib:
    return std::make_unique<ChannelWorkload>(/*WithStdLib=*/true);
  case WorkloadKind::Channel:
    return std::make_unique<ChannelWorkload>(/*WithStdLib=*/false);
  case WorkloadKind::ConcRTMessaging:
    return std::make_unique<ConcRTWorkload>(ConcRTWorkload::Input::Messaging);
  case WorkloadKind::ConcRTScheduling:
    return std::make_unique<ConcRTWorkload>(
        ConcRTWorkload::Input::ExplicitScheduling);
  case WorkloadKind::Httpd1:
    return std::make_unique<HttpdWorkload>(HttpdWorkload::Input::Mixed1);
  case WorkloadKind::Httpd2:
    return std::make_unique<HttpdWorkload>(
        HttpdWorkload::Input::SmallStatic2);
  case WorkloadKind::BrowserStart:
    return std::make_unique<BrowserWorkload>(BrowserWorkload::Input::Start);
  case WorkloadKind::BrowserRender:
    return std::make_unique<BrowserWorkload>(BrowserWorkload::Input::Render);
  case WorkloadKind::LKRHash:
    return std::make_unique<LKRHashWorkload>();
  case WorkloadKind::LFList:
    return std::make_unique<LFListWorkload>();
  case WorkloadKind::SciComputeFn:
    return std::make_unique<SciComputeWorkload>(/*UseLoopHints=*/false);
  case WorkloadKind::SciComputeLoop:
    return std::make_unique<SciComputeWorkload>(/*UseLoopHints=*/true);
  }
  literaceUnreachable("invalid workload kind");
}

std::vector<std::unique_ptr<Workload>> literace::makeDetectionSuite() {
  std::vector<std::unique_ptr<Workload>> Suite;
  Suite.push_back(makeWorkload(WorkloadKind::ChannelWithStdLib));
  Suite.push_back(makeWorkload(WorkloadKind::Channel));
  Suite.push_back(makeWorkload(WorkloadKind::ConcRTMessaging));
  Suite.push_back(makeWorkload(WorkloadKind::ConcRTScheduling));
  Suite.push_back(makeWorkload(WorkloadKind::Httpd1));
  Suite.push_back(makeWorkload(WorkloadKind::Httpd2));
  Suite.push_back(makeWorkload(WorkloadKind::BrowserStart));
  Suite.push_back(makeWorkload(WorkloadKind::BrowserRender));
  return Suite;
}

std::vector<std::unique_ptr<Workload>> literace::makeRareFrequentSuite() {
  // The paper's Table 4 / Fig. 5 exclude ConcRT: its runs execute too few
  // memory operations for the per-million rare threshold to separate
  // anything.
  std::vector<std::unique_ptr<Workload>> Suite;
  Suite.push_back(makeWorkload(WorkloadKind::ChannelWithStdLib));
  Suite.push_back(makeWorkload(WorkloadKind::Channel));
  Suite.push_back(makeWorkload(WorkloadKind::Httpd1));
  Suite.push_back(makeWorkload(WorkloadKind::Httpd2));
  Suite.push_back(makeWorkload(WorkloadKind::BrowserStart));
  Suite.push_back(makeWorkload(WorkloadKind::BrowserRender));
  return Suite;
}

std::vector<std::unique_ptr<Workload>> literace::makeOverheadSuite() {
  std::vector<std::unique_ptr<Workload>> Suite;
  Suite.push_back(makeWorkload(WorkloadKind::LKRHash));
  Suite.push_back(makeWorkload(WorkloadKind::LFList));
  Suite.push_back(makeWorkload(WorkloadKind::ChannelWithStdLib));
  Suite.push_back(makeWorkload(WorkloadKind::Channel));
  Suite.push_back(makeWorkload(WorkloadKind::ConcRTMessaging));
  Suite.push_back(makeWorkload(WorkloadKind::ConcRTScheduling));
  Suite.push_back(makeWorkload(WorkloadKind::Httpd1));
  Suite.push_back(makeWorkload(WorkloadKind::Httpd2));
  Suite.push_back(makeWorkload(WorkloadKind::BrowserStart));
  Suite.push_back(makeWorkload(WorkloadKind::BrowserRender));
  return Suite;
}
