//===-- workloads/SciCompute.cpp - Loop-heavy scientific kernel -----------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/SciCompute.h"

#include "sync/Primitives.h"

#include <cassert>

using namespace literace;

struct SciComputeWorkload::SharedState {
  static constexpr unsigned NumWorkers = 3;
  static constexpr uint32_t Rows = 48;
  static constexpr uint32_t Cols = 1024;

  /// The grid; each worker owns a contiguous band of rows. Band interiors
  /// are private; the halo rows at band boundaries are deliberately
  /// exchanged WITHOUT synchronization (sci-halo race).
  uint64_t Grid[Rows][Cols] = {};

  Barrier IterationBarrier{NumWorkers};

  // RACE (sci-converged): bare convergence flag, read/written outside
  // the sweep loops once per iteration per worker.
  uint8_t Converged = 0;
};

SciComputeWorkload::SciComputeWorkload(bool UseLoopHints)
    : UseLoopHints(UseLoopHints) {}

std::string SciComputeWorkload::name() const {
  return UseLoopHints ? "SciCompute (loop hints)"
                      : "SciCompute (function granularity)";
}

void SciComputeWorkload::bind(Runtime &RT) {
  assert(!Bound && "workload bound twice");
  FnSweep = RT.registry().registerFunction("sci.sweep");
  FnCheck = RT.registry().registerFunction("sci.checkConverged");

  // Access model: the grid is MOSTLY band-private, but the halo exchange
  // deliberately races through the same sites (sci-halo lists
  // SiteGridLoad/SiteGridStore in its manifest), so the whole grid must
  // stay logged — shared, written, lock-free. Zero elision by design;
  // this workload is the audit's canary for over-eager models.
  AccessModel &M = RT.accessModel();
  const RoleId Worker = M.declareRole("sci-worker", 3);
  const VarId Grid = M.declareVar("sci.grid");
  M.declareSite(makePc(FnSweep, SiteGridLoad), SiteAccess::Read, Grid,
                {Worker});
  M.declareSite(makePc(FnSweep, SiteGridStore), SiteAccess::Write, Grid,
                {Worker});
  M.declareSite(makePc(FnSweep, SiteHaloRead), SiteAccess::Read, Grid,
                {Worker});
  M.declareSite(makePc(FnSweep, SiteHaloWrite), SiteAccess::Write, Grid,
                {Worker});
  const VarId Converged = M.declareVar("sci.converged");
  M.declareSite(makePc(FnCheck, SiteConvergedRead), SiteAccess::Read,
                Converged, {Worker});
  M.declareSite(makePc(FnCheck, SiteConvergedWrite), SiteAccess::Write,
                Converged, {Worker});
  Bound = true;
}

void SciComputeWorkload::workerMain(ThreadContext &TC, SharedState &S,
                                    unsigned Index, uint32_t Iterations) {
  const uint32_t BandRows = SharedState::Rows / SharedState::NumWorkers;
  const uint32_t First = Index * BandRows;
  const uint32_t Last = First + BandRows - 1; // Inclusive.

  for (uint32_t Iter = 0; Iter != Iterations; ++Iter) {
    // One sweep over the band: a single function activation containing a
    // high-trip-count loop — the §7 scenario.
    TC.run(FnSweep, [&](auto &T) {
      for (uint32_t Row = First; Row <= Last; ++Row) {
        for (uint32_t Col = 1; Col + 1 < SharedState::Cols; ++Col) {
          if (UseLoopHints)
            T.loopIteration();
          uint64_t Left = T.load(&S.Grid[Row][Col - 1], SiteGridLoad);
          uint64_t Right = T.load(&S.Grid[Row][Col + 1], SiteGridLoad);
          T.store(&S.Grid[Row][Col], (Left + Right) / 2 + Iter,
                  SiteGridStore);
        }
        // RACE (sci-halo): the band's edge rows are read by the
        // neighbouring worker's sweep without synchronization (hot,
        // inside the loop).
        if (Row == Last && Index + 1 != SharedState::NumWorkers) {
          uint64_t Spill = T.load(&S.Grid[Row + 1][5], SiteHaloRead);
          T.store(&S.Grid[Row][5], Spill, SiteHaloWrite);
        }
      }
    });

    // Convergence check: cold code outside the loops, with a bare
    // shared flag (sci-converged race).
    TC.run(FnCheck, [&](auto &T) {
      if (T.load(&S.Converged, SiteConvergedRead) == 0 &&
          Iter + 1 == Iterations)
        T.store(&S.Converged, uint8_t{1}, SiteConvergedWrite);
    });

    // The barrier makes iterations well-ordered EXCEPT for the seeded
    // races above (halo accesses within one iteration are concurrent).
    S.IterationBarrier.arriveAndWait(TC);
  }
}

void SciComputeWorkload::run(Runtime &RT, const WorkloadParams &Params) {
  assert(Bound && "bind() must run before run()");
  SharedState S;
  ThreadContext Main(RT);
  const uint32_t Iterations = Params.scaled(20, 3);

  std::vector<std::unique_ptr<Thread>> Workers;
  for (unsigned I = 0; I != SharedState::NumWorkers; ++I)
    Workers.push_back(std::make_unique<Thread>(
        RT, Main, [this, &S, I, Iterations](ThreadContext &TC) {
          workerMain(TC, S, I, Iterations);
        }));
  for (auto &W : Workers)
    W->join(Main);
}

std::vector<SeededRaceSpec> SciComputeWorkload::seededRaces() const {
  assert(Bound && "manifest valid only after bind()");
  auto P = [&](FunctionId F, uint32_t Site) { return makePc(F, Site); };
  std::vector<SeededRaceSpec> Races;
  Races.push_back(SeededRaceSpec{
      "sci-halo",
      {P(FnSweep, SiteHaloRead), P(FnSweep, SiteHaloWrite),
       P(FnSweep, SiteGridLoad), P(FnSweep, SiteGridStore)},
      true});
  Races.push_back(SeededRaceSpec{
      "sci-converged",
      {P(FnCheck, SiteConvergedRead), P(FnCheck, SiteConvergedWrite)},
      false});
  return Races;
}
