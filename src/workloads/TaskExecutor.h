//===-- workloads/TaskExecutor.h - Work-stealing executor -----*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adversarial workload: an async task executor with work stealing. Three
/// workers process a binary tree of tasks; each task's execution pushes
/// its children onto the executor's own lock-free stack, and an
/// out-of-work worker steals from a random victim. All deque structure is
/// logged AtomicU64 (tagged Treiber stacks), so task inputs/results are
/// ordered purely by the push/pop publication chains.
///
/// The input array is filled before any worker is forked and never
/// written through instrumentation afterwards, so its only declared sites
/// are reads — the one workload where the read-only static analysis gets
/// to elide something real.
///
/// Seeded races (see seededRaces()):
///  - exec-tally         hot/frequent: bare executed-ops tally, RMW once
///                       per task by every worker
///  - exec-deadline-hint thread-cold: main writes a bare hint after
///                       forking; every worker reads it once in warmup
///  - exec-idle-flag     rare: bare idle marker, RMW the first time a
///                       worker finds all stacks empty
///  - exec-grand-total   cold: bare per-run total, RMW once per worker at
///                       exit with no ordering chain between workers
///  - exec-rare-mark     rare-in-hot: bare marker on one poisoned step of
///                       each worker's hot task loop
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_WORKLOADS_TASKEXECUTOR_H
#define LITERACE_WORKLOADS_TASKEXECUTOR_H

#include "workloads/Workload.h"

namespace literace {

/// "Task Executor" adversarial workload.
class TaskExecutorWorkload : public Workload {
public:
  TaskExecutorWorkload() = default;

  std::string name() const override;
  void bind(Runtime &RT) override;
  void run(Runtime &RT, const WorkloadParams &Params) override;
  std::vector<SeededRaceSpec> seededRaces() const override;

  enum Site : uint32_t {
    // exec.task
    SiteTallyRead = 1,
    SiteTallyWrite = 2,
    SiteRareRead = 3,
    SiteRareWrite = 4,
    SiteInputRead = 5,
    SiteResultWrite = 6,
    SiteResultRecheck = 7,
    // exec.warmup / exec.tune / exec.init
    SiteHintRead = 20,
    SiteHintWrite = 21,
    SiteInitHintWrite = 22,
    // exec.idle
    SiteIdleRead = 30,
    SiteIdleWrite = 31,
    // exec.finish
    SiteTotalRead = 40,
    SiteTotalWrite = 41,
    // exec.teardown (main thread, phase-ordered)
    SiteFinalTotalRead = 50,
    SiteFinalResultRead = 51,
  };

  struct Task;
  struct SharedState;

private:
  void pushTask(ThreadContext &TC, SharedState &S, unsigned Stack,
                uint32_t Idx);
  uint32_t popTask(ThreadContext &TC, SharedState &S, unsigned Stack);
  void workerMain(ThreadContext &TC, SharedState &S, unsigned Worker,
                  uint64_t Seed, uint64_t &Executed);

  bool Bound = false;
  FunctionId FnInit = 0;
  FunctionId FnTask = 0;
  FunctionId FnIdle = 0;
  FunctionId FnWarmup = 0;
  FunctionId FnTune = 0;
  FunctionId FnFinish = 0;
  FunctionId FnTeardown = 0;
};

} // namespace literace

#endif // LITERACE_WORKLOADS_TASKEXECUTOR_H
