//===-- workloads/ConcRT.cpp - Concurrency-runtime workload ---------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/ConcRT.h"

#include "support/Hashing.h"

#include <cassert>
#include <chrono>
#include <thread>

using namespace literace;

/// A bounded single-slot-ring mailbox (mutex + semaphores), the agent
/// messaging primitive.
struct ConcRTWorkload::Mailbox {
  static constexpr uint32_t Capacity = 32;
  uint64_t Ring[Capacity] = {};
  uint32_t Head = 0;
  uint32_t Tail = 0;
  Mutex Lock;
  Semaphore Slots{Capacity};
  Semaphore Items{0};
};

/// An explicit per-worker task queue.
struct ConcRTWorkload::TaskQueue {
  static constexpr uint32_t Capacity = 256;
  uint64_t Ring[Capacity] = {};
  uint32_t Head = 0;
  uint32_t Tail = 0;
  Mutex Lock;
  Semaphore Slots{Capacity};
  Semaphore Items{0};
};

struct ConcRTWorkload::SharedState {
  static constexpr unsigned NumAgents = 4;
  static constexpr unsigned NumWorkers = 3;

  Mailbox Boxes[NumAgents];
  TaskQueue Queues[NumWorkers];
  Barrier PhaseBarrier{NumWorkers + 1};

  /// Read-only task input, initialized before any thread is forked.
  uint64_t ReadOnly[64] = {};
  /// Result cells; each task id owns one cell, and phases are separated by
  /// the barrier, so writes are properly ordered.
  uint64_t Results[4096] = {};

  // -- Intentionally racy diagnostics. --
  uint8_t MonStop = 0;              // rare: concrt-stop-flag
  uint64_t TasksRetiredSlots[8] = {}; // concrt-tasks-retired
  uint64_t InFlightSlots[8] = {};   // concrt-in-flight
  uint64_t DepthEstimate = 0;       // concrt-depth-estimate
  uint64_t LastAgentActive = 0;     // concrt-last-agent
  uint64_t CongestionMark = 0;      // concrt-congestion (rare-in-hot)
  uint64_t StealHint = 0;           // concrt-steal-hint (rare-in-hot)
  uint64_t StartStamp = 0;          // concrt-start-stamp (rare)
  uint64_t FinalSeq = 0;            // concrt-final-seq (rare)
  uint64_t PhaseLabel = 0;          // concrt-phase-label (rare)
  bool TunablesReady = false;       // concrt-tunables (rare lazy init)
  uint64_t Tunables[4] = {};
};

ConcRTWorkload::ConcRTWorkload(Input In) : In(In) {}

std::string ConcRTWorkload::name() const {
  return In == Input::Messaging ? "ConcRT Messaging"
                                : "ConcRT Explicit Scheduling";
}

void ConcRTWorkload::bind(Runtime &RT) {
  assert(!Bound && "workload bound twice; create a fresh instance per run");
  FunctionRegistry &Reg = RT.registry();
  FnEnqueue = Reg.registerFunction("rt.enqueue");
  FnDequeue = Reg.registerFunction("rt.dequeue");
  FnExecute = Reg.registerFunction("rt.execute");
  FnMonitor = Reg.registerFunction("rt.monitor");
  FnSend = Reg.registerFunction("agent.send");
  FnReceive = Reg.registerFunction("agent.receive");
  FnAgentStart = Reg.registerFunction("rt.workerStart");
  FnAgentFinish = Reg.registerFunction("rt.workerFinish");
  FnOpenPhase = Reg.registerFunction("sched.openPhase");
  FnBeginPhase = Reg.registerFunction("worker.beginPhase");
  FnSpotCheck = Reg.registerFunction("sched.spotCheck");
  FnStop = Reg.registerFunction("sched.stop");
  declareModel(RT.accessModel());
  Bound = true;
}

void ConcRTWorkload::declareModel(AccessModel &M) {
  auto P = [](FunctionId F, uint32_t Site) { return makePc(F, Site); };
  const RoleId Main = M.declareRole("main", 1);
  const RoleId Agent = M.declareRole("agent", 4);
  const RoleId Worker = M.declareRole("worker", 3);
  const RoleId Monitor = M.declareRole("monitor", 1);
  const LockId BoxLock = M.declareLock("rt.mailbox-lock");
  const LockId QueueLock = M.declareLock("rt.taskqueue-lock");
  constexpr auto Rd = SiteAccess::Read;
  constexpr auto Wr = SiteAccess::Write;

  // Mailbox and task-queue rings/cursors: a mailbox's cells are only ever
  // touched under that mailbox's lock (same for the per-worker queues), so
  // the lockset analysis elides the agent messaging and scheduling hot
  // paths. The mixed load/store sites are declared as writes (the stronger
  // direction).
  const VarId Mailboxes = M.declareVar("rt.mailboxes");
  M.declareSite(P(FnSend, SiteMailboxStore), Wr, Mailboxes, {Agent},
                {BoxLock});
  M.declareSite(P(FnReceive, SiteMailboxLoad), Wr, Mailboxes, {Agent},
                {BoxLock});
  const VarId Queues = M.declareVar("rt.taskqueues");
  M.declareSite(P(FnEnqueue, SiteSlotStore), Wr, Queues, {Main},
                {QueueLock});
  M.declareSite(P(FnDequeue, SiteSlotLoad), Wr, Queues, {Worker},
                {QueueLock});

  // Task input: written raw before any worker forks, never by an
  // instrumented site — the read-only analysis elides the execute loop's
  // 32 loads per task.
  const VarId Input = M.declareVar("rt.readonly-input");
  M.declareSite(P(FnExecute, SiteTaskPayload), Rd, Input, {Worker});

  // Result cells are phase-ordered in reality, but the mid-run spot check
  // races with the owning worker's write (seeded concrt-spot-check), so
  // both sites stay logged.
  const VarId Results = M.declareVar("rt.results");
  M.declareSite(P(FnExecute, SiteResultWrite), Wr, Results, {Worker});
  M.declareSite(P(FnSpotCheck, SiteSpotCheckRead), Rd, Results, {Main});

  // Seeded racy diagnostics: declared honestly, all stay logged.
  const VarId Stop = M.declareVar("concrt.stop-flag");
  M.declareSite(P(FnStop, SiteMonStopWrite), Wr, Stop, {Main});
  M.declareSite(P(FnMonitor, SiteMonStopRead), Rd, Stop, {Monitor});

  const VarId StartStamp = M.declareVar("concrt.start-stamp");
  M.declareSite(P(FnAgentStart, SiteStartStampWrite), Wr, StartStamp,
                {Agent, Worker});
  const VarId FinalSeq = M.declareVar("concrt.final-seq");
  M.declareSite(P(FnAgentFinish, SiteFinalSeqWrite), Wr, FinalSeq,
                {Agent, Worker});

  const VarId InFlight = M.declareVar("concrt.in-flight");
  M.declareSite(P(FnSend, SiteInFlightRead), Rd, InFlight, {Agent});
  M.declareSite(P(FnSend, SiteInFlightWrite), Wr, InFlight, {Agent});
  M.declareSite(P(FnSend, SiteInFlightRecheck), Rd, InFlight, {Agent});
  M.declareSite(P(FnMonitor, SiteMonInFlight), Rd, InFlight, {Monitor});

  const VarId LastAgent = M.declareVar("concrt.last-agent");
  M.declareSite(P(FnReceive, SiteLastAgentWrite), Wr, LastAgent, {Agent});
  M.declareSite(P(FnMonitor, SiteMonLastAgent), Rd, LastAgent, {Monitor});

  const VarId Congestion = M.declareVar("concrt.congestion");
  M.declareSite(P(FnSend, SiteCongestionWrite), Wr, Congestion, {Agent});
  M.declareSite(P(FnMonitor, SiteMonCongestion), Rd, Congestion,
                {Monitor});

  const VarId Depth = M.declareVar("concrt.depth-estimate");
  M.declareSite(P(FnEnqueue, SiteDepthWrite), Wr, Depth, {Main});
  M.declareSite(P(FnMonitor, SiteMonDepth), Rd, Depth, {Monitor});

  const VarId Retired = M.declareVar("concrt.tasks-retired");
  M.declareSite(P(FnExecute, SiteRetiredRead), Rd, Retired, {Worker});
  M.declareSite(P(FnExecute, SiteRetiredWrite), Wr, Retired, {Worker});
  M.declareSite(P(FnExecute, SiteRetiredRecheck), Rd, Retired, {Worker});
  M.declareSite(P(FnMonitor, SiteMonRetired), Rd, Retired, {Monitor});

  const VarId Phase = M.declareVar("concrt.phase-label");
  M.declareSite(P(FnOpenPhase, SitePhaseLabelWrite), Wr, Phase, {Main});
  M.declareSite(P(FnBeginPhase, SitePhaseLabelRead), Rd, Phase, {Worker});

  const VarId TunFlag = M.declareVar("concrt.tunables-flag");
  M.declareSite(P(FnBeginPhase, SiteTunablesReadyRead), Rd, TunFlag,
                {Worker});
  M.declareSite(P(FnBeginPhase, SiteTunablesReadyWrite), Wr, TunFlag,
                {Worker});
  const VarId TunTable = M.declareVar("concrt.tunables-table");
  M.declareSite(P(FnBeginPhase, SiteTunablesTableWrite), Wr, TunTable,
                {Worker});
  M.declareSite(P(FnBeginPhase, SiteTunablesProbeRead), Rd, TunTable,
                {Worker});

  const VarId Steal = M.declareVar("concrt.steal-hint");
  M.declareSite(P(FnDequeue, SiteStealHintWrite), Wr, Steal, {Worker});
  M.declareSite(P(FnMonitor, SiteStealHintRead), Rd, Steal, {Monitor});

  // No phase declarations here on purpose: the scheduling input's barrier
  // epochs RECUR (open-phase / begin-phase cycles), so no static total
  // order over them would be honest — a phase tag would claim ordering
  // the program does not have. The sync-free slot-counter blocks are
  // still fair game for the redundancy pass, though.
  M.declareRegion("agent.in-flight-block",
                  {P(FnSend, SiteInFlightRead), P(FnSend, SiteInFlightWrite),
                   P(FnSend, SiteInFlightRecheck)});
  M.declareRegion("rt.retired-block",
                  {P(FnExecute, SiteRetiredRead),
                   P(FnExecute, SiteRetiredWrite),
                   P(FnExecute, SiteRetiredRecheck)});
}

void ConcRTWorkload::monitorMain(ThreadContext &TC, SharedState &S) {
  uint32_t Poll = 0;
  uint64_t Sink = 0;
  bool ReadSteal = false;
  bool ReadCongestion = false;
  for (;;) {
    bool Stop = false;
    TC.run(FnMonitor, [&](auto &T) {
      // RACE (concrt-stop-flag): polled bare.
      Stop = T.load(&S.MonStop, SiteMonStopRead) != 0;
      for (unsigned Slot = 0; Slot != 8; ++Slot)
        Sink ^= T.load(&S.TasksRetiredSlots[Slot], SiteMonRetired);
      for (unsigned Slot = 0; Slot != 8; ++Slot)
        Sink ^= T.load(&S.InFlightSlots[Slot], SiteMonInFlight);
      Sink ^= T.load(&S.DepthEstimate, SiteMonDepth);
      Sink ^= T.load(&S.LastAgentActive, SiteMonLastAgent);
      // RACE (concrt-steal-hint, rare-in-hot): single diagnostic read at
      // a poll index that falls in the sampler's back-off gap (or at the
      // stop poll, so short test-scale runs still read it).
      if ((Poll == 61 || Stop) && !ReadSteal) {
        Sink ^= T.load(&S.StealHint, SiteStealHintRead);
        ReadSteal = true;
      }
      // RACE (concrt-congestion, rare-in-hot): same shape.
      if ((Poll == 97 || Stop) && !ReadCongestion) {
        Sink ^= T.load(&S.CongestionMark, SiteMonCongestion);
        ReadCongestion = true;
      }
    });
    ++Poll;
    if (Stop || Poll > 200000)
      break;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void ConcRTWorkload::runMessaging(Runtime &RT, SharedState &S,
                                  const WorkloadParams &Params) {
  ThreadContext Main(RT);
  const uint32_t Messages = Params.scaled(2500, 40);

  Thread Monitor(RT, Main,
                 [this, &S](ThreadContext &TC) { monitorMain(TC, S); });

  std::vector<std::unique_ptr<Thread>> Agents;
  for (unsigned Index = 0; Index != SharedState::NumAgents; ++Index) {
    Agents.push_back(std::make_unique<Thread>(
        RT, Main, [this, &S, Index, Messages](ThreadContext &TC) {
          // RACE (concrt-start-stamp): sibling threads stamp a shared
          // cell before any synchronization has ordered them.
          TC.run(FnAgentStart, [&](auto &T) {
            T.store(&S.StartStamp, static_cast<uint64_t>(TC.tid()),
                    SiteStartStampWrite);
          });

          Mailbox &Out = S.Boxes[(Index + 1) % SharedState::NumAgents];
          Mailbox &Inbox = S.Boxes[Index];
          uint64_t Sink = 0;
          for (uint32_t I = 0; I != Messages; ++I) {
            uint64_t Token = mix64((uint64_t(Index) << 32) | I);
            Out.Slots.acquire(TC);
            TC.run(FnSend, [&](auto &T) {
              Out.Lock.lock(TC);
              uint32_t Tail = T.load(&Out.Tail, SiteMailboxStore);
              T.store(&Out.Ring[Tail % Mailbox::Capacity], Token,
                      SiteMailboxStore);
              T.store(&Out.Tail, Tail + 1, SiteMailboxStore);
              Out.Lock.unlock(TC);
              // RACE (concrt-in-flight): per-thread slot estimate read
              // bare by the monitor.
              unsigned Slot = TC.tid() & 7u;
              uint64_t N = T.load(&S.InFlightSlots[Slot], SiteInFlightRead);
              T.store(&S.InFlightSlots[Slot], N + 1, SiteInFlightWrite);
              // Redundant recheck in the same sync-free region: elided
              // by the redundancy pass (the read above already logged).
              (void)T.load(&S.InFlightSlots[Slot], SiteInFlightRecheck);
              // RACE (concrt-congestion): one-shot diagnostic on a rare
              // iteration of a hot function (11 exists at any scale).
              if (I == 777 || I == 11)
                T.store(&S.CongestionMark, Token, SiteCongestionWrite);
            });
            Out.Items.release(TC);

            Inbox.Items.acquire(TC);
            TC.run(FnReceive, [&](auto &T) {
              Inbox.Lock.lock(TC);
              uint32_t Head = T.load(&Inbox.Head, SiteMailboxLoad);
              uint64_t Received =
                  T.load(&Inbox.Ring[Head % Mailbox::Capacity],
                         SiteMailboxLoad);
              T.store(&Inbox.Head, Head + 1, SiteMailboxLoad);
              Inbox.Lock.unlock(TC);
              Sink ^= Received;
              // RACE (concrt-last-agent): read bare by the monitor.
              T.store(&S.LastAgentActive, static_cast<uint64_t>(TC.tid()),
                      SiteLastAgentWrite);
            });
            Inbox.Slots.release(TC);
          }

          // RACE (concrt-final-seq): each agent's last unsynchronized act.
          TC.run(FnAgentFinish, [&](auto &T) {
            T.store(&S.FinalSeq, Sink, SiteFinalSeqWrite);
          });
        }));
  }

  for (auto &A : Agents)
    A->join(Main);

  Main.run(FnStop, [&](auto &T) {
    // RACE (concrt-stop-flag).
    T.store(&S.MonStop, uint8_t{1}, SiteMonStopWrite);
  });
  Monitor.join(Main);
}

void ConcRTWorkload::runExplicit(Runtime &RT, SharedState &S,
                                 const WorkloadParams &Params) {
  ThreadContext Main(RT);
  const uint32_t TasksPerWorkerPhase = Params.scaled(500, 10);
  constexpr unsigned Phases = 6;
  constexpr uint64_t EndMarker = ~0ULL;

  for (unsigned I = 0; I != 64; ++I)
    S.ReadOnly[I] = mix64(Params.Seed + I);

  Thread Monitor(RT, Main,
                 [this, &S](ThreadContext &TC) { monitorMain(TC, S); });

  std::vector<std::unique_ptr<Thread>> Workers;
  for (unsigned Index = 0; Index != SharedState::NumWorkers; ++Index) {
    Workers.push_back(std::make_unique<Thread>(
        RT, Main, [this, &S, Index](ThreadContext &TC) {
          TC.run(FnAgentStart, [&](auto &T) {
            // RACE (concrt-start-stamp).
            T.store(&S.StartStamp, static_cast<uint64_t>(TC.tid()),
                    SiteStartStampWrite);
          });

          TaskQueue &Q = S.Queues[Index];
          bool SeenTunables = false;
          uint32_t Dequeues = 0;
          for (unsigned Phase = 0; Phase != Phases; ++Phase) {
            S.PhaseBarrier.arriveAndWait(TC);
            TC.run(FnBeginPhase, [&](auto &T) {
              // RACE (concrt-phase-label): the scheduler publishes the
              // label after the barrier, concurrently with this read.
              (void)T.load(&S.PhaseLabel, SitePhaseLabelRead);
              // RACE (concrt-tunables): unsynchronized lazy init, done
              // right after the barrier opens — the initializing worker
              // and its sibling readers share no synchronization between
              // the barrier and these accesses, on any schedule.
              if (!SeenTunables) {
                if (!T.load(&S.TunablesReady, SiteTunablesReadyRead)) {
                  for (unsigned K = 0; K != 4; ++K)
                    T.store(&S.Tunables[K], mix64(K + 99),
                            SiteTunablesTableWrite);
                  T.store(&S.TunablesReady, true, SiteTunablesReadyWrite);
                }
                (void)T.load(&S.Tunables[0], SiteTunablesProbeRead);
                SeenTunables = true;
              }
            });
            for (;;) {
              Q.Items.acquire(TC);
              uint64_t Task = 0;
              TC.run(FnDequeue, [&](auto &T) {
                Q.Lock.lock(TC);
                uint32_t Head = T.load(&Q.Head, SiteSlotLoad);
                Task = T.load(&Q.Ring[Head % TaskQueue::Capacity],
                              SiteSlotLoad);
                T.store(&Q.Head, Head + 1, SiteSlotLoad);
                Q.Lock.unlock(TC);
                // RACE (concrt-steal-hint): one-shot write deep in the
                // hot dequeue path, read once by the monitor (the early
                // trigger exists at any scale).
                ++Dequeues;
                if (Dequeues == 512 || Dequeues == 7)
                  T.store(&S.StealHint, static_cast<uint64_t>(TC.tid()),
                          SiteStealHintWrite);
              });
              Q.Slots.release(TC);
              if (Task == EndMarker)
                break;

              TC.run(FnExecute, [&](auto &T) {
                uint64_t Acc = 0;
                for (unsigned K = 0; K != 32; ++K)
                  Acc += T.load(&S.ReadOnly[(Task + K) & 63],
                                SiteTaskPayload);
                T.store(&S.Results[Task & 4095], Acc, SiteResultWrite);
                // RACE (concrt-tasks-retired): slot counters read bare by
                // the monitor.
                unsigned Slot = TC.tid() & 7u;
                uint64_t N =
                    T.load(&S.TasksRetiredSlots[Slot], SiteRetiredRead);
                T.store(&S.TasksRetiredSlots[Slot], N + 1, SiteRetiredWrite);
                // Redundant recheck (see agent.send): elided by the
                // redundancy pass.
                (void)T.load(&S.TasksRetiredSlots[Slot],
                             SiteRetiredRecheck);
              });
            }
          }

          TC.run(FnAgentFinish, [&](auto &T) {
            // RACE (concrt-final-seq).
            T.store(&S.FinalSeq, static_cast<uint64_t>(Dequeues),
                    SiteFinalSeqWrite);
          });
        }));
  }

  uint64_t NextTask = 1;
  for (unsigned Phase = 0; Phase != Phases; ++Phase) {
    S.PhaseBarrier.arriveAndWait(Main);
    Main.run(FnOpenPhase, [&](auto &T) {
      // RACE (concrt-phase-label): published after the barrier opens.
      T.store(&S.PhaseLabel, static_cast<uint64_t>(Phase + 1),
              SitePhaseLabelWrite);
    });
    for (uint32_t I = 0; I != TasksPerWorkerPhase; ++I) {
      for (unsigned W = 0; W != SharedState::NumWorkers; ++W) {
        TaskQueue &Q = S.Queues[W];
        Q.Slots.acquire(Main);
        Main.run(FnEnqueue, [&](auto &T) {
          Q.Lock.lock(Main);
          uint32_t Tail = T.load(&Q.Tail, SiteSlotStore);
          T.store(&Q.Ring[Tail % TaskQueue::Capacity], NextTask,
                  SiteSlotStore);
          T.store(&Q.Tail, Tail + 1, SiteSlotStore);
          Q.Lock.unlock(Main);
          // RACE (concrt-depth-estimate): read bare by the monitor.
          T.store(&S.DepthEstimate, static_cast<uint64_t>(Tail),
                  SiteDepthWrite);
        });
        Q.Items.release(Main);
        ++NextTask;
      }
    }
    // One phase-end marker per worker.
    for (unsigned W = 0; W != SharedState::NumWorkers; ++W) {
      TaskQueue &Q = S.Queues[W];
      Q.Slots.acquire(Main);
      Main.run(FnEnqueue, [&](auto &T) {
        Q.Lock.lock(Main);
        uint32_t Tail = T.load(&Q.Tail, SiteSlotStore);
        T.store(&Q.Ring[Tail % TaskQueue::Capacity], EndMarker,
                SiteSlotStore);
        T.store(&Q.Tail, Tail + 1, SiteSlotStore);
        Q.Lock.unlock(Main);
      });
      Q.Items.release(Main);
    }
    if (Phase == 3) {
      // RACE (concrt-spot-check): bare mid-run peek at the cell of the
      // LAST task just enqueued. The worker cannot have published that
      // cell's write back to us yet (we do not acquire anything between
      // the enqueue and this read), so read and write are unordered.
      const uint64_t LastTask = NextTask - 1;
      Main.run(FnSpotCheck, [&](auto &T) {
        (void)T.load(&S.Results[LastTask & 4095], SiteSpotCheckRead);
      });
    }
  }

  for (auto &W : Workers)
    W->join(Main);

  Main.run(FnStop, [&](auto &T) {
    T.store(&S.MonStop, uint8_t{1}, SiteMonStopWrite);
  });
  Monitor.join(Main);
}

void ConcRTWorkload::run(Runtime &RT, const WorkloadParams &Params) {
  assert(Bound && "bind() must run before run()");
  SharedState S;
  if (In == Input::Messaging)
    runMessaging(RT, S, Params);
  else
    runExplicit(RT, S, Params);
}

std::vector<SeededRaceSpec> ConcRTWorkload::seededRaces() const {
  assert(Bound && "manifest valid only after bind()");
  auto P = [&](FunctionId F, uint32_t Site) { return makePc(F, Site); };
  std::vector<SeededRaceSpec> Races;
  auto Add = [&](const char *Label, std::vector<Pc> Sites, bool Frequent) {
    Races.push_back(SeededRaceSpec{Label, std::move(Sites), Frequent});
  };

  // Shared by both inputs.
  Add("concrt-stop-flag",
      {P(FnStop, SiteMonStopWrite), P(FnMonitor, SiteMonStopRead)}, false);
  Add("concrt-start-stamp", {P(FnAgentStart, SiteStartStampWrite)}, false);
  Add("concrt-final-seq", {P(FnAgentFinish, SiteFinalSeqWrite)}, false);

  if (In == Input::Messaging) {
    Add("concrt-in-flight",
        {P(FnSend, SiteInFlightRead), P(FnSend, SiteInFlightWrite),
         P(FnSend, SiteInFlightRecheck), P(FnMonitor, SiteMonInFlight)},
        true);
    Add("concrt-last-agent",
        {P(FnReceive, SiteLastAgentWrite), P(FnMonitor, SiteMonLastAgent)},
        true);
    Add("concrt-congestion",
        {P(FnSend, SiteCongestionWrite), P(FnMonitor, SiteMonCongestion)},
        false);
  } else {
    Add("concrt-tasks-retired",
        {P(FnExecute, SiteRetiredRead), P(FnExecute, SiteRetiredWrite),
         P(FnExecute, SiteRetiredRecheck), P(FnMonitor, SiteMonRetired)},
        true);
    Add("concrt-depth-estimate",
        {P(FnEnqueue, SiteDepthWrite), P(FnMonitor, SiteMonDepth)}, true);
    Add("concrt-phase-label",
        {P(FnOpenPhase, SitePhaseLabelWrite),
         P(FnBeginPhase, SitePhaseLabelRead)},
        false);
    Add("concrt-tunables-flag",
        {P(FnBeginPhase, SiteTunablesReadyRead),
         P(FnBeginPhase, SiteTunablesReadyWrite)},
        false);
    Add("concrt-tunables-table",
        {P(FnBeginPhase, SiteTunablesTableWrite),
         P(FnBeginPhase, SiteTunablesProbeRead)},
        false);
    Add("concrt-steal-hint",
        {P(FnDequeue, SiteStealHintWrite),
         P(FnMonitor, SiteStealHintRead)},
        false);
    Add("concrt-spot-check",
        {P(FnExecute, SiteResultWrite), P(FnSpotCheck, SiteSpotCheckRead)},
        false);
  }
  return Races;
}
