//===-- workloads/LKRHash.cpp - Hash-table micro-benchmark ----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/LKRHash.h"

#include "support/Hashing.h"
#include "support/SplitMix64.h"
#include "sync/Primitives.h"

#include <cassert>

using namespace literace;

struct LKRHashWorkload::SharedState {
  static constexpr unsigned NumSlots = 4096;
  static constexpr unsigned NumStripes = 64;
  static constexpr unsigned NumThreads = 3;

  uint64_t Keys[NumSlots] = {};
  uint64_t Vals[NumSlots] = {};
  Mutex Stripes[NumStripes];
  AtomicU64 Version{0};
  AtomicU64 Collisions{0};
};

std::string LKRHashWorkload::name() const { return "LKRHash"; }

void LKRHashWorkload::bind(Runtime &RT) {
  assert(!Bound && "workload bound twice");
  FnInsert = RT.registry().registerFunction("lkr.insert");
  FnLookup = RT.registry().registerFunction("lkr.lookup");

  // Access model: a slot's stripe is a pure function of its index (probes
  // step by NumStripes), so every access to Keys/Vals holds that slot's
  // stripe mutex — the lockset analysis elides the whole table. The
  // atomic counters go through src/sync and are never tracer-logged, so
  // nothing else needs declaring.
  AccessModel &M = RT.accessModel();
  const RoleId Worker = M.declareRole("lkr-worker", 3);
  const LockId Stripe = M.declareLock("lkr.stripe-lock");

  // Every instrumented site runs in a worker between fork and join; the
  // table itself is built (zero-initialized) before the spawn and read
  // by nobody after the joins, so only steady carries sites.
  const PhaseId Init = M.declarePhase("init");
  const PhaseId Steady = M.declarePhase("steady");
  const PhaseId Teardown = M.declarePhase("teardown");
  M.orderPhases(Init, Steady, PhaseOrderKind::ForkJoin);
  M.orderPhases(Steady, Teardown, PhaseOrderKind::ForkJoin);

  const VarId Keys = M.declareVar("lkr.keys");
  M.declareSite(makePc(FnInsert, SiteProbeKey), SiteAccess::Read, Keys,
                {Worker}, {Stripe}, Steady);
  M.declareSite(makePc(FnInsert, SiteSlotKeyWrite), SiteAccess::Write, Keys,
                {Worker}, {Stripe}, Steady);
  M.declareSite(makePc(FnInsert, SiteSlotKeyRecheck), SiteAccess::Read,
                Keys, {Worker}, {Stripe}, Steady);
  M.declareSite(makePc(FnLookup, SiteProbeKey), SiteAccess::Read, Keys,
                {Worker}, {Stripe}, Steady);
  const VarId Vals = M.declareVar("lkr.vals");
  M.declareSite(makePc(FnInsert, SiteSlotValWrite), SiteAccess::Write, Vals,
                {Worker}, {Stripe}, Steady);
  M.declareSite(makePc(FnLookup, SiteSlotValRead), SiteAccess::Read, Vals,
                {Worker}, {Stripe}, Steady);

  // Slot block: key store and recheck hit the same slot back to back,
  // with the stripe lock held throughout and no sync between them.
  M.declareRegion("lkr.slot-block",
                  {makePc(FnInsert, SiteSlotKeyWrite),
                   makePc(FnInsert, SiteSlotKeyRecheck)});
  Bound = true;
}

void LKRHashWorkload::threadMain(ThreadContext &TC, SharedState &S,
                                 uint64_t Seed, uint32_t Ops) {
  SplitMix64 Rng(Seed);
  uint64_t Sink = 0;
  for (uint32_t I = 0; I != Ops; ++I) {
    uint64_t Key = (Rng.nextBelow(SharedState::NumSlots * 2)) | 1;
    unsigned Home = static_cast<unsigned>(mix64(Key)) %
                    SharedState::NumSlots;
    Mutex &Stripe =
        S.Stripes[Home % SharedState::NumStripes];

    if (Rng.nextBelow(10) < 3) {
      // Insert (30%): probe within the stripe-aligned window.
      TC.run(FnInsert, [&](auto &T) {
        uint64_t Payload = Key;
        for (unsigned K = 0; K != 16; ++K)
          Payload = Payload * 131 + (Payload >> 7);
        Sink ^= Payload; // Keep the compute alive.

        Stripe.lock(TC);
        bool Placed = false;
        for (unsigned Probe = 0; Probe != 8 && !Placed; ++Probe) {
          unsigned Slot =
              (Home + Probe * SharedState::NumStripes) %
              SharedState::NumSlots;
          uint64_t Existing = T.load(&S.Keys[Slot], SiteProbeKey);
          if (Existing == 0 || Existing == Key) {
            T.store(&S.Keys[Slot], Key, SiteSlotKeyWrite);
            // Redundant readback (slot-block region): dominated by the
            // store it follows, so the redundancy pass may elide it.
            (void)T.load(&S.Keys[Slot], SiteSlotKeyRecheck);
            T.store(&S.Vals[Slot], Payload, SiteSlotValWrite);
            Placed = true;
          }
        }
        Stripe.unlock(TC);
        // Lock-free global version bump (logged atomic, §4.2).
        S.Version.fetchAdd(TC, 1);
        if (!Placed)
          S.Collisions.fetchAdd(TC, 1);
      });
    } else {
      // Lookup (70%).
      TC.run(FnLookup, [&](auto &T) {
        Stripe.lock(TC);
        for (unsigned Probe = 0; Probe != 8; ++Probe) {
          unsigned Slot =
              (Home + Probe * SharedState::NumStripes) %
              SharedState::NumSlots;
          if (T.load(&S.Keys[Slot], SiteProbeKey) == Key) {
            Sink ^= T.load(&S.Vals[Slot], SiteSlotValRead);
            break;
          }
        }
        Stripe.unlock(TC);
        // Lock-free read of the version counter.
        Sink ^= S.Version.load(TC);
      });
    }
  }
  (void)Sink;
}

void LKRHashWorkload::run(Runtime &RT, const WorkloadParams &Params) {
  assert(Bound && "bind() must run before run()");
  SharedState S;
  ThreadContext Main(RT);
  const uint32_t Ops = Params.scaled(150000, 500);

  std::vector<std::unique_ptr<Thread>> Threads;
  for (unsigned I = 0; I != SharedState::NumThreads; ++I)
    Threads.push_back(std::make_unique<Thread>(
        RT, Main, [this, &S, I, Ops, &Params](ThreadContext &TC) {
          threadMain(TC, S, Params.Seed + I * 17, Ops);
        }));
  for (auto &Th : Threads)
    Th->join(Main);
}

std::vector<SeededRaceSpec> LKRHashWorkload::seededRaces() const {
  // Properly synchronized on purpose: the detector must stay silent.
  return {};
}
