//===-- workloads/StdLib.h - Instrumented utility library -----*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small utility library (checksums, formatting, buffer fills) standing
/// in for the statically linked C library of the paper's "Dryad + stdlib"
/// configuration. The paper found 19 races in Dryad with the stdlib
/// instrumented versus 8 without: the extra races live in library code and
/// are invisible unless the library's memory accesses are logged.
///
/// This class reproduces that mechanism: when bind() has been called, the
/// library's functions dispatch through the instrumentation runtime like
/// any application code; when not bound, the same bodies run with the
/// NullTracer, so their accesses (and the races among them) never reach
/// the log — just as uninstrumented libc was invisible to the paper's
/// tool.
///
/// The library carries its own seeded races: several lazy-initialization
/// races (flag + table-contents pairs, bounded to a handful of
/// manifestations by per-thread session caching — i.e. rare), a
/// last-writer statistics race against an unsynchronized poller
/// (frequent), and a session-teardown write/write race (rare).
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_WORKLOADS_STDLIB_H
#define LITERACE_WORKLOADS_STDLIB_H

#include "workloads/Workload.h"

#include <cstddef>
#include <cstdint>

namespace literace {

/// Per-thread session state. Caches the library's lazily initialized
/// shared tables so each thread touches the shared (racy) copies only on
/// first use — which is what bounds the init races to a few
/// manifestations.
struct StdLibSession {
  bool CheckedApiVersion = false;
  bool SeenDigitTable = false;
  bool SeenChecksumSeed = false;
  bool SeenFillPattern = false;
  uint64_t DigitProbe = 0;
  uint64_t SeedProbe = 0;
  uint8_t PatternProbe = 0;
};

/// The utility library. One instance is shared by all threads of a
/// workload run.
class InstrumentedStdLib {
public:
  /// Stable per-function site labels (used in Pc values and manifests).
  enum Site : uint32_t {
    // checksum()
    SiteSeedReadyRead = 1,
    SiteSeedReadyWrite = 2,
    SiteSeedTableWrite = 3,
    SiteSeedProbeRead = 4,
    SiteSeedLocalUse = 5,
    SiteDataLoad = 6,
    SiteLastChecksumWrite = 7,
    SiteChecksumCallsWrite = 8,
    // formatUint()
    SiteDigitReadyRead = 20,
    SiteDigitReadyWrite = 21,
    SiteDigitTableWrite = 22,
    SiteDigitProbeRead = 23,
    SiteMaxFormattedRead = 24,
    SiteMaxFormattedWrite = 25,
    SiteFormatBufWrite = 26,
    // fill()
    SitePatternReadyRead = 40,
    SitePatternReadyWrite = 41,
    SitePatternTableWrite = 42,
    SitePatternProbeRead = 43,
    SiteFillStore = 44,
    SiteLastFillByteWrite = 45,
    // pollStats()
    SitePollLastChecksum = 60,
    SitePollChecksumCalls = 61,
    SitePollLastFillByte = 62,
    SitePollMaxFormatted = 63,
    // flushSession()
    SiteFlushMarkWrite = 80,
    // shared by all entry points
    SiteApiVersionRead = 90,
    SiteApiVersionWrite = 91,
  };

  /// Registers the library's functions with \p RT and declares their
  /// access model. Without this call the library runs uninstrumented (the
  /// plain "Dryad Channel" variant).
  void bind(Runtime &RT);

  bool isBound() const { return Bound; }

  /// FNV-style checksum of \p Data. The dominant memory-op generator of
  /// the channel workload.
  uint64_t checksum(ThreadContext &TC, StdLibSession &Session,
                    const uint8_t *Data, size_t Size);

  /// Formats \p Value in decimal into \p Out (capacity \p Cap); returns
  /// the length.
  size_t formatUint(ThreadContext &TC, StdLibSession &Session,
                    uint64_t Value, char *Out, size_t Cap);

  /// Fills \p Dst with a keyed pattern derived from \p Key.
  void fill(ThreadContext &TC, StdLibSession &Session, uint8_t *Dst,
            size_t Size, uint8_t Key);

  /// Reads the library's statistics WITHOUT synchronization; meant to be
  /// called from a monitoring thread. Returns a digest of what it saw.
  uint64_t pollStats(ThreadContext &TC);

  /// Tears down a session, marking the shared flush record (racy on
  /// purpose: last-writer-wins diagnostics, a classic shutdown race).
  void flushSession(ThreadContext &TC, StdLibSession &Session);

  /// Ground-truth manifest of the races seeded in this library. Valid
  /// after bind(); empty when unbound (unlogged races are invisible).
  std::vector<SeededRaceSpec> seededRaces() const;

private:
  template <typename BodyT> void dispatch(ThreadContext &TC, FunctionId F,
                                          BodyT &&Body);

  bool Bound = false;
  FunctionId FnChecksum = 0;
  FunctionId FnFormatUint = 0;
  FunctionId FnFill = 0;
  FunctionId FnPollStats = 0;
  FunctionId FnFlushSession = 0;

  // ---- Shared library state. Fields below are intentionally accessed
  // without synchronization where the manifest says so. ----
  uint32_t ApiVersion = 0;     // Lazily "negotiated"; racy init.
  bool SeedReady = false;      // Racy lazy-init flag (checksum).
  uint64_t SeedTable[4] = {};  // Racy lazy-init contents.
  bool DigitReady = false;     // Racy lazy-init flag (formatUint).
  uint64_t DigitTable[4] = {}; // Racy lazy-init contents.
  bool PatternReady = false;   // Racy lazy-init flag (fill).
  uint8_t PatternTable[8] = {};// Racy lazy-init contents.
  uint64_t MaxFormatted = 0;   // Racy high-watermark.
  uint64_t LastChecksum = 0;   // Racy last-value diagnostic (frequent).
  uint64_t ChecksumCalls[8] = {}; // Racy per-thread-slot counters.
  uint64_t LastFillByte = 0;   // Racy last-value diagnostic (frequent).
  uint32_t FlushMark = 0;      // Racy teardown diagnostic.
};

} // namespace literace

#endif // LITERACE_WORKLOADS_STDLIB_H
