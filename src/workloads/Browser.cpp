//===-- workloads/Browser.cpp - Browser workload ---------------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Browser.h"

#include "support/Hashing.h"
#include "support/SplitMix64.h"
#include "sync/Primitives.h"

#include <cassert>
#include <chrono>
#include <thread>

using namespace literace;

namespace {

/// One layout box of the Render input.
struct BoxNode {
  uint32_t X = 0;
  uint32_t Y = 0;
  uint32_t Width = 0;
  uint32_t Height = 0;
  uint64_t StyleKey = 0;
  uint64_t Measure = 0;
};

} // namespace

struct BrowserWorkload::SharedState {
  static constexpr unsigned RegistryEntries = 256;
  static constexpr unsigned StyleEntries = 128;
  static constexpr unsigned StyleStripes = 8;
  static constexpr uint32_t MaxBoxes = 8192;

  // Read-only input blobs, initialized before any fork.
  uint8_t Blob[1024] = {};
  uint8_t Glyphs[256] = {};

  // Component registry (properly locked).
  Mutex RegistryLock;
  uint64_t RegistryKey[RegistryEntries] = {};
  uint64_t RegistryVal[RegistryEntries] = {};

  // Style cache (striped locks, properly synchronized).
  Mutex StyleLocks[StyleStripes];
  uint64_t StyleKey[StyleEntries] = {};
  uint64_t StyleVal[StyleEntries] = {};

  // Box tree: built by main before forking the layout threads, reflowed
  // in disjoint halves — properly ordered.
  std::vector<BoxNode> Boxes;

  // -- Intentionally racy diagnostics. --
  uint64_t StartStamp = 0;       // browser-start-stamp (rare)
  uint32_t PrefsVersion = 0;     // browser-prefs-version (rare)
  bool ThemeReady = false;       // browser-theme-flag / -table (rare)
  uint64_t ThemeTable[4] = {};
  uint64_t FallbackFont = 0;     // browser-fallback-font (rare)
  uint64_t DoneMark = 0;         // browser-done-mark (rare)
  uint64_t SplashHint = 0;       // browser-splash-hint (rare-in-hot)
  uint64_t ProgressSlots[8] = {};// browser-progress (frequent)
  uint64_t LastComponent = 0;    // browser-last-component (frequent)
  uint64_t RegistryDepth = 0;    // browser-registry-depth (frequent)
  uint8_t UiStop = 0;            // browser-stop-flag (rare)
  uint64_t DirtyRegion = 0;      // render-dirty-region (frequent)
  uint64_t BoxesDoneSlots[8] = {}; // render-boxes-done (frequent)
  uint64_t LastStyle = 0;        // render-last-style (frequent)
  uint64_t OverflowMark = 0;     // render-overflow-mark (rare-in-hot)
  uint64_t FirstPaint = 0;       // render-first-paint (rare)
  uint64_t FinishStamp = 0;      // render-finish-stamp (rare)
};

BrowserWorkload::BrowserWorkload(Input In) : In(In) {}

std::string BrowserWorkload::name() const {
  return In == Input::Start ? "Firefox Start" : "Firefox Render";
}

void BrowserWorkload::bind(Runtime &RT) {
  assert(!Bound && "workload bound twice; create a fresh instance per run");
  FunctionRegistry &Reg = RT.registry();
  FnServiceStart = Reg.registerFunction("svc.serviceStart");
  FnLoadItem = Reg.registerFunction("svc.loadItem");
  FnRegister = Reg.registerFunction("reg.registerComponent");
  FnLookup = Reg.registerFunction("reg.lookup");
  FnServiceFinish = Reg.registerFunction("svc.serviceFinish");
  FnUiProgress = Reg.registerFunction("ui.progress");
  FnShutdown = Reg.registerFunction("app.shutdown");
  FnBuildNode = Reg.registerFunction("dom.buildNode");
  FnReflowBox = Reg.registerFunction("layout.reflowBox");
  FnMeasureText = Reg.registerFunction("layout.measureText");
  FnStyleResolve = Reg.registerFunction("style.resolve");
  FnPaint = Reg.registerFunction("render.paint");
  FnWorkerFinish = Reg.registerFunction("layout.workerFinish");
  declareModel(RT.accessModel());
  Bound = true;
}

void BrowserWorkload::declareModel(AccessModel &M) {
  // One model covers both inputs (Start and Render share bind()); sites
  // belonging to the input that does not run simply never fire.
  auto P = [&](FunctionId F, uint32_t Site) { return makePc(F, Site); };
  const RoleId Main = M.declareRole("main", 1);
  const RoleId Service = M.declareRole("service", 3);
  const RoleId Layout = M.declareRole("layout-worker", 2);
  const RoleId Ui = M.declareRole("ui", 1);
  const LockId RegistryLock = M.declareLock("browser.registry-lock");
  // A style entry's stripe is a pure function of the entry index, so one
  // abstract lock soundly models the StyleLocks array.
  const LockId StyleLock = M.declareLock("browser.style-stripe-lock");

  // Input blobs: filled by main before any fork (untraced), loaded only
  // afterwards. These are the hottest sites of both inputs.
  const VarId Blob = M.declareVar("browser.blob");
  M.declareSite(P(FnLoadItem, SiteBlobLoad), SiteAccess::Read, Blob,
                {Service});
  const VarId Glyphs = M.declareVar("browser.glyphs");
  M.declareSite(P(FnMeasureText, SiteGlyphLoad), SiteAccess::Read, Glyphs,
                {Layout});
  M.declareSite(P(FnPaint, SitePaintSrc), SiteAccess::Read, Glyphs,
                {Layout});

  // Stack-local scratch and paint tiles: never escape their frame.
  const VarId Scratch = M.declareVar("browser.scratch", VarScope::PerThread);
  M.declareSite(P(FnLoadItem, SiteScratchStore), SiteAccess::Write, Scratch,
                {Service});
  const VarId Tile = M.declareVar("browser.paint-tile", VarScope::PerThread);
  M.declareSite(P(FnPaint, SitePaintTile), SiteAccess::Write, Tile,
                {Layout});

  // Component registry: every access holds RegistryLock.
  const VarId Registry = M.declareVar("browser.registry");
  M.declareSite(P(FnRegister, SiteRegistryKeyWrite), SiteAccess::Write,
                Registry, {Service}, {RegistryLock});
  M.declareSite(P(FnRegister, SiteRegistryValWrite), SiteAccess::Write,
                Registry, {Service}, {RegistryLock});
  M.declareSite(P(FnLookup, SiteRegistryKeyRead), SiteAccess::Read, Registry,
                {Service}, {RegistryLock});

  // Style cache: probe and fill hold the entry's stripe.
  const VarId StyleCache = M.declareVar("browser.style-cache");
  M.declareSite(P(FnStyleResolve, SiteStyleKeyRead), SiteAccess::Read,
                StyleCache, {Layout}, {StyleLock});
  M.declareSite(P(FnStyleResolve, SiteStyleKeyWrite), SiteAccess::Write,
                StyleCache, {Layout}, {StyleLock});
  M.declareSite(P(FnStyleResolve, SiteStyleValWrite), SiteAccess::Write,
                StyleCache, {Layout}, {StyleLock});

  // Box tree: race-free in the program (main builds it before the fork,
  // the workers reflow disjoint halves, fork/join orders everything).
  // Even the phase-aware MHP pass cannot express the disjoint-halves
  // partitioning — the workers' steady-state writes share a phase, a
  // role with two instances, and no lock — so it stays the honest canary:
  // shared, written, unprovable; logging is kept.
  const VarId Boxes = M.declareVar("browser.boxes");
  M.declareSite(P(FnBuildNode, SiteNodeInit), SiteAccess::Write, Boxes,
                {Main});
  M.declareSite(P(FnMeasureText, SiteMeasureWrite), SiteAccess::Write, Boxes,
                {Layout});
  M.declareSite(P(FnReflowBox, SiteBoxRead), SiteAccess::Read, Boxes,
                {Layout});
  M.declareSite(P(FnReflowBox, SiteBoxWrite), SiteAccess::Write, Boxes,
                {Layout});

  // ---- Seeded racy diagnostics: declared honestly so logging is kept.
  const VarId StartStamp = M.declareVar("browser.start-stamp");
  M.declareSite(P(FnServiceStart, SiteStartStampWrite), SiteAccess::Write,
                StartStamp, {Service});
  const VarId PrefsVersion = M.declareVar("browser.prefs-version");
  M.declareSite(P(FnServiceStart, SitePrefsVersionWrite), SiteAccess::Write,
                PrefsVersion, {Service});
  M.declareSite(P(FnServiceStart, SitePrefsVersionRead), SiteAccess::Read,
                PrefsVersion, {Service});
  const VarId ThemeFlag = M.declareVar("browser.theme-flag");
  M.declareSite(P(FnLookup, SiteThemeReadyRead), SiteAccess::Read, ThemeFlag,
                {Service});
  M.declareSite(P(FnLookup, SiteThemeReadyWrite), SiteAccess::Write,
                ThemeFlag, {Service});
  const VarId ThemeTable = M.declareVar("browser.theme-table");
  M.declareSite(P(FnLookup, SiteThemeTableWrite), SiteAccess::Write,
                ThemeTable, {Service});
  M.declareSite(P(FnLookup, SiteThemeProbeRead), SiteAccess::Read,
                ThemeTable, {Service});
  const VarId FallbackFont = M.declareVar("browser.fallback-font");
  M.declareSite(P(FnServiceFinish, SiteFallbackFontWrite), SiteAccess::Write,
                FallbackFont, {Service});
  M.declareSite(P(FnServiceFinish, SiteFallbackFontRead), SiteAccess::Read,
                FallbackFont, {Service});
  const VarId DoneMark = M.declareVar("browser.done-mark");
  M.declareSite(P(FnServiceFinish, SiteDoneMarkWrite), SiteAccess::Write,
                DoneMark, {Service});
  const VarId SplashHint = M.declareVar("browser.splash-hint");
  M.declareSite(P(FnRegister, SiteSplashHintWrite), SiteAccess::Write,
                SplashHint, {Service});
  M.declareSite(P(FnUiProgress, SiteUiSplashHint), SiteAccess::Read,
                SplashHint, {Ui});
  const VarId Progress = M.declareVar("browser.progress");
  M.declareSite(P(FnLoadItem, SiteProgressRead), SiteAccess::Read, Progress,
                {Service});
  M.declareSite(P(FnLoadItem, SiteProgressWrite), SiteAccess::Write,
                Progress, {Service});
  M.declareSite(P(FnLoadItem, SiteProgressRecheck), SiteAccess::Read,
                Progress, {Service});
  M.declareSite(P(FnUiProgress, SiteUiProgress), SiteAccess::Read, Progress,
                {Ui});
  const VarId LastComponent = M.declareVar("browser.last-component");
  M.declareSite(P(FnRegister, SiteLastComponentWrite), SiteAccess::Write,
                LastComponent, {Service});
  M.declareSite(P(FnUiProgress, SiteUiLastComponent), SiteAccess::Read,
                LastComponent, {Ui});
  const VarId Depth = M.declareVar("browser.registry-depth");
  M.declareSite(P(FnRegister, SiteDepthWrite), SiteAccess::Write, Depth,
                {Service});
  M.declareSite(P(FnUiProgress, SiteUiDepth), SiteAccess::Read, Depth, {Ui});
  const VarId StopFlag = M.declareVar("browser.stop-flag");
  M.declareSite(P(FnShutdown, SiteStopWrite), SiteAccess::Write, StopFlag,
                {Main});
  M.declareSite(P(FnUiProgress, SiteUiStopRead), SiteAccess::Read, StopFlag,
                {Ui});
  const VarId Dirty = M.declareVar("render.dirty-region");
  M.declareSite(P(FnReflowBox, SiteDirtyWrite), SiteAccess::Write, Dirty,
                {Layout});
  M.declareSite(P(FnUiProgress, SiteUiDirty), SiteAccess::Read, Dirty, {Ui});
  const VarId BoxesDone = M.declareVar("render.boxes-done");
  M.declareSite(P(FnReflowBox, SiteBoxesDoneRead), SiteAccess::Read,
                BoxesDone, {Layout});
  M.declareSite(P(FnReflowBox, SiteBoxesDoneWrite), SiteAccess::Write,
                BoxesDone, {Layout});
  M.declareSite(P(FnReflowBox, SiteBoxesDoneRecheck), SiteAccess::Read,
                BoxesDone, {Layout});
  M.declareSite(P(FnUiProgress, SiteUiBoxesDone), SiteAccess::Read,
                BoxesDone, {Ui});
  const VarId LastStyle = M.declareVar("render.last-style");
  M.declareSite(P(FnStyleResolve, SiteLastStyleWrite), SiteAccess::Write,
                LastStyle, {Layout});
  M.declareSite(P(FnUiProgress, SiteUiLastStyle), SiteAccess::Read,
                LastStyle, {Ui});
  const VarId Overflow = M.declareVar("render.overflow-mark");
  M.declareSite(P(FnReflowBox, SiteOverflowWrite), SiteAccess::Write,
                Overflow, {Layout});
  M.declareSite(P(FnUiProgress, SiteUiOverflow), SiteAccess::Read, Overflow,
                {Ui});
  const VarId FirstPaint = M.declareVar("render.first-paint");
  M.declareSite(P(FnReflowBox, SiteFirstPaintWrite), SiteAccess::Write,
                FirstPaint, {Layout});
  const VarId FinishStamp = M.declareVar("render.finish-stamp");
  M.declareSite(P(FnWorkerFinish, SiteFinishStampWrite), SiteAccess::Write,
                FinishStamp, {Layout});

  // Sync-free regions over the slot-counter blocks: each recheck re-reads
  // the address the block just read and wrote with no synchronization in
  // between, so the redundancy pass elides it (the variables stay racy).
  M.declareRegion("svc.progress-block",
                  {P(FnLoadItem, SiteProgressRead),
                   P(FnLoadItem, SiteProgressWrite),
                   P(FnLoadItem, SiteProgressRecheck)});
  M.declareRegion("layout.boxes-done-block",
                  {P(FnReflowBox, SiteBoxesDoneRead),
                   P(FnReflowBox, SiteBoxesDoneWrite),
                   P(FnReflowBox, SiteBoxesDoneRecheck)});
}

void BrowserWorkload::uiMain(ThreadContext &TC, SharedState &S) {
  uint32_t Poll = 0;
  uint64_t Sink = 0;
  bool ReadSplash = false;
  bool ReadOverflow = false;
  for (;;) {
    bool Stop = false;
    TC.run(FnUiProgress, [&](auto &T) {
      // RACE (frequent, browser-stop-flag).
      Stop = T.load(&S.UiStop, SiteUiStopRead) != 0;
      for (unsigned Slot = 0; Slot != 8; ++Slot)
        Sink ^= T.load(&S.ProgressSlots[Slot], SiteUiProgress);
      Sink ^= T.load(&S.LastComponent, SiteUiLastComponent);
      Sink ^= T.load(&S.RegistryDepth, SiteUiDepth);
      Sink ^= T.load(&S.DirtyRegion, SiteUiDirty);
      for (unsigned Slot = 0; Slot != 8; ++Slot)
        Sink ^= T.load(&S.BoxesDoneSlots[Slot], SiteUiBoxesDone);
      Sink ^= T.load(&S.LastStyle, SiteUiLastStyle);
      // RACE (rare-in-hot, browser-splash-hint): single diagnostic read.
      if ((Poll == 43 || Stop) && !ReadSplash) {
        Sink ^= T.load(&S.SplashHint, SiteUiSplashHint);
        ReadSplash = true;
      }
      // RACE (rare-in-hot, render-overflow-mark): single diagnostic read.
      if ((Poll == 83 || Stop) && !ReadOverflow) {
        Sink ^= T.load(&S.OverflowMark, SiteUiOverflow);
        ReadOverflow = true;
      }
    });
    ++Poll;
    if (Stop || Poll > 200000)
      break;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void BrowserWorkload::serviceMain(ThreadContext &TC, SharedState &S,
                                  unsigned Kind, uint32_t Items) {
  // Service bring-up happens before any synchronization, so the sibling
  // services are mutually unordered here on every schedule.
  TC.run(FnServiceStart, [&](auto &T) {
    // RACE (rare, browser-start-stamp).
    T.store(&S.StartStamp, static_cast<uint64_t>(TC.tid()),
            SiteStartStampWrite);
    // RACE (rare, browser-prefs-version): the prefs service negotiates
    // the version; its siblings read it bare, once each.
    if (Kind == 0)
      T.store(&S.PrefsVersion, 11u, SitePrefsVersionWrite);
    else
      (void)T.load(&S.PrefsVersion, SitePrefsVersionRead);
  });

  // Warm-up lookup BEFORE the first registry lock: the theme table's lazy
  // init runs while the services are still mutually unordered (only fork
  // edges exist), so the init races manifest on every schedule. Taking a
  // lock first would let the lock chains order the init against the
  // other services' probes.
  TC.run(FnLookup, [&](auto &T) {
    // RACE (rare, browser-theme-flag / browser-theme-table).
    if (!T.load(&S.ThemeReady, SiteThemeReadyRead)) {
      for (unsigned K = 0; K != 4; ++K)
        T.store(&S.ThemeTable[K], mix64(K + 5), SiteThemeTableWrite);
      T.store(&S.ThemeReady, true, SiteThemeReadyWrite);
    }
    (void)T.load(&S.ThemeTable[0], SiteThemeProbeRead);
  });

  bool WroteSplash = false;
  uint64_t Registered = 0;
  for (uint32_t I = 0; I != Items; ++I) {
    uint64_t ComponentId = mix64((uint64_t(Kind) << 40) | I);

    // Parse/import the item: read-only blob traffic + private scratch.
    TC.run(FnLoadItem, [&](auto &T) {
      uint8_t Scratch[32];
      uint64_t Acc = ComponentId;
      for (unsigned K = 0; K != 160; ++K)
        Acc = Acc * 131 + T.load(&S.Blob[(ComponentId + K) & 1023],
                                 SiteBlobLoad);
      for (unsigned K = 0; K != 32; ++K)
        T.store(&Scratch[K], static_cast<uint8_t>(Acc >> (K & 7)),
                SiteScratchStore);
      // RACE (frequent, browser-progress): per-thread slot counters read
      // bare by the UI thread.
      unsigned Slot = TC.tid() & 7u;
      uint64_t N = T.load(&S.ProgressSlots[Slot], SiteProgressRead);
      T.store(&S.ProgressSlots[Slot], N + 1, SiteProgressWrite);
      // Redundant recheck in the same sync-free region: elided by the
      // redundancy pass (the read above already logged this address).
      (void)T.load(&S.ProgressSlots[Slot], SiteProgressRecheck);
    });

    // Register the component (properly locked) + racy diagnostics.
    TC.run(FnRegister, [&](auto &T) {
      unsigned Entry = ComponentId % SharedState::RegistryEntries;
      S.RegistryLock.lock(TC);
      T.store(&S.RegistryKey[Entry], ComponentId, SiteRegistryKeyWrite);
      T.store(&S.RegistryVal[Entry], ComponentId * 3, SiteRegistryValWrite);
      S.RegistryLock.unlock(TC);
      // RACE (frequent, browser-last-component / browser-registry-depth).
      T.store(&S.LastComponent, ComponentId, SiteLastComponentWrite);
      T.store(&S.RegistryDepth, ++Registered, SiteDepthWrite);
      // RACE (rare-in-hot, browser-splash-hint): one-shot write per
      // service on a rarely satisfied predicate of a hot function (the
      // I == 7 trigger exists at any scale).
      if ((ComponentId % 511 == 77 || I == 7) && !WroteSplash) {
        T.store(&S.SplashHint, ComponentId, SiteSplashHintWrite);
        WroteSplash = true;
      }
    });

    // Occasional lookups (properly locked).
    if (I % 8 == 3) {
      TC.run(FnLookup, [&](auto &T) {
        unsigned Entry = ComponentId % SharedState::RegistryEntries;
        S.RegistryLock.lock(TC);
        (void)T.load(&S.RegistryKey[Entry], SiteRegistryKeyRead);
        S.RegistryLock.unlock(TC);
      });
    }
  }

  TC.run(FnServiceFinish, [&](auto &T) {
    // RACE (rare, browser-fallback-font): the font service publishes its
    // fallback choice as its last act; the extension service reads it as
    // its last act. Neither ever synchronizes with the other.
    if (Kind == 1)
      T.store(&S.FallbackFont, Registered, SiteFallbackFontWrite);
    if (Kind == 2)
      (void)T.load(&S.FallbackFont, SiteFallbackFontRead);
    // RACE (rare, browser-done-mark): one-shot write/write at teardown.
    T.store(&S.DoneMark, static_cast<uint64_t>(TC.tid()), SiteDoneMarkWrite);
  });
}

void BrowserWorkload::layoutMain(ThreadContext &TC, SharedState &S,
                                 unsigned Index, uint32_t Begin,
                                 uint32_t End) {
  // RACE (rare, render-first-paint): one-shot per worker, written BEFORE
  // the first style-cache lock so the workers are still mutually
  // unordered on every schedule.
  TC.run(FnReflowBox, [&](auto &T) {
    T.store(&S.FirstPaint, static_cast<uint64_t>(TC.tid()),
            SiteFirstPaintWrite);
  });

  for (uint32_t B = Begin; B != End; ++B) {
    BoxNode &Box = S.Boxes[B];

    // Measure text: a high-trip-count loop using the §7 loop-granularity
    // sampling hint — after 64 iterations of one activation, only every
    // 16th iteration's accesses are logged.
    uint64_t Measure = 0;
    TC.run(FnMeasureText, [&](auto &T) {
      uint64_t Key = Box.StyleKey;
      for (unsigned K = 0; K != 96; ++K) {
        T.loopIteration();
        Measure += T.load(&S.Glyphs[(Key + K) & 255], SiteGlyphLoad);
      }
      T.store(&Box.Measure, Measure, SiteMeasureWrite);
    });

    // Resolve style through the striped cache (properly locked).
    uint64_t Style = 0;
    TC.run(FnStyleResolve, [&](auto &T) {
      unsigned Entry = Box.StyleKey % SharedState::StyleEntries;
      Mutex &Stripe = S.StyleLocks[Entry % SharedState::StyleStripes];
      Stripe.lock(TC);
      uint64_t Key = T.load(&S.StyleKey[Entry], SiteStyleKeyRead);
      if (Key != Box.StyleKey) {
        T.store(&S.StyleKey[Entry], Box.StyleKey, SiteStyleKeyWrite);
        T.store(&S.StyleVal[Entry], mix64(Box.StyleKey), SiteStyleValWrite);
      }
      Style = mix64(Box.StyleKey);
      Stripe.unlock(TC);
      // RACE (frequent, render-last-style): read bare by the UI thread.
      T.store(&S.LastStyle, Style, SiteLastStyleWrite);
    });

    // Reflow: writes the box geometry (disjoint halves, properly ordered
    // by fork/join) plus racy repaint diagnostics.
    TC.run(FnReflowBox, [&](auto &T) {
      uint32_t W = static_cast<uint32_t>((Style >> 8) & 1023) + 16;
      uint32_t H = static_cast<uint32_t>((Box.Measure >> 4) & 255) + 12;
      uint32_t X = T.load(&Box.X, SiteBoxRead);
      T.store(&Box.Width, W, SiteBoxWrite);
      T.store(&Box.Height, H, SiteBoxWrite);
      T.store(&Box.Y, X + W, SiteBoxWrite);
      // RACE (frequent, render-dirty-region): last-writer diagnostic.
      T.store(&S.DirtyRegion, (uint64_t(X) << 32) | W, SiteDirtyWrite);
      // RACE (frequent, render-boxes-done): slot counters.
      unsigned Slot = TC.tid() & 7u;
      uint64_t N = T.load(&S.BoxesDoneSlots[Slot], SiteBoxesDoneRead);
      T.store(&S.BoxesDoneSlots[Slot], N + 1, SiteBoxesDoneWrite);
      // Redundant recheck (see svc.loadItem): elided by the redundancy
      // pass.
      (void)T.load(&S.BoxesDoneSlots[Slot], SiteBoxesDoneRecheck);
      // RACE (rare-in-hot, render-overflow-mark): a single box in the
      // whole tree triggers the overflow diagnostic.
      if (B == 5)
        T.store(&S.OverflowMark, (uint64_t(W) << 32) | H,
                SiteOverflowWrite);
    });

    // Paint the box into a thread-private tile (the bulk of Render's
    // memory-operation volume, as rasterization is in a real browser).
    TC.run(FnPaint, [&](auto &T) {
      uint8_t Tile[256];
      uint64_t Brush = Style ^ Measure;
      for (unsigned K = 0; K != 64; ++K)
        Brush = Brush * 131 + T.load(&S.Glyphs[(Brush + K) & 255],
                                     SitePaintSrc);
      for (unsigned K = 0; K != sizeof(Tile); ++K)
        T.store(&Tile[K], static_cast<uint8_t>(Brush >> (K & 7)),
                SitePaintTile);
    });
  }

  TC.run(FnWorkerFinish, [&](auto &T) {
    // RACE (rare, render-finish-stamp): last unsynchronized act.
    T.store(&S.FinishStamp, static_cast<uint64_t>(Index), SiteFinishStampWrite);
  });
}

void BrowserWorkload::runStart(Runtime &RT, SharedState &S,
                               const WorkloadParams &Params) {
  ThreadContext Main(RT);
  Thread Ui(RT, Main, [this, &S](ThreadContext &TC) { uiMain(TC, S); });

  const uint32_t ItemCounts[3] = {Params.scaled(2500, 40),
                                  Params.scaled(1800, 30),
                                  Params.scaled(1400, 30)};
  std::vector<std::unique_ptr<Thread>> Services;
  for (unsigned Kind = 0; Kind != 3; ++Kind)
    Services.push_back(std::make_unique<Thread>(
        RT, Main, [this, &S, Kind, &ItemCounts](ThreadContext &TC) {
          // Staggered bring-up (see ChannelWorkload): later services run
          // their first (thread-cold) registry/theme code when those
          // functions are already globally hot.
          std::this_thread::sleep_for(std::chrono::milliseconds(20 * Kind));
          serviceMain(TC, S, Kind, ItemCounts[Kind]);
        }));
  for (auto &Svc : Services)
    Svc->join(Main);

  Main.run(FnShutdown, [&](auto &T) {
    // RACE (frequent, browser-stop-flag).
    T.store(&S.UiStop, uint8_t{1}, SiteStopWrite);
  });
  Ui.join(Main);
}

void BrowserWorkload::runRender(Runtime &RT, SharedState &S,
                                const WorkloadParams &Params) {
  ThreadContext Main(RT);
  const uint32_t NumBoxes =
      std::min(Params.scaled(2500, 64), SharedState::MaxBoxes);
  S.Boxes.resize(NumBoxes);

  // Build the box tree (single-threaded, before the layout forks).
  SplitMix64 Rng(Params.Seed);
  for (uint32_t B = 0; B != NumBoxes; ++B) {
    Main.run(FnBuildNode, [&](auto &T) {
      BoxNode &Box = S.Boxes[B];
      T.store(&Box.X, static_cast<uint32_t>(Rng.nextBelow(1024)),
              SiteNodeInit);
      T.store(&Box.Y, uint32_t{0}, SiteNodeInit);
      T.store(&Box.StyleKey, Rng.nextBelow(400) + 1, SiteNodeInit);
    });
  }

  Thread Ui(RT, Main, [this, &S](ThreadContext &TC) { uiMain(TC, S); });
  const uint32_t Half = NumBoxes / 2;
  Thread Worker0(RT, Main, [this, &S, Half](ThreadContext &TC) {
    layoutMain(TC, S, 0, 0, Half);
  });
  Thread Worker1(RT, Main, [this, &S, Half, NumBoxes](ThreadContext &TC) {
    // Staggered start (see ChannelWorkload): this worker's first-paint
    // write happens when the layout functions are already globally hot.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    layoutMain(TC, S, 1, Half, NumBoxes);
  });
  Worker0.join(Main);
  Worker1.join(Main);

  Main.run(FnShutdown, [&](auto &T) {
    T.store(&S.UiStop, uint8_t{1}, SiteStopWrite);
  });
  Ui.join(Main);
}

void BrowserWorkload::run(Runtime &RT, const WorkloadParams &Params) {
  assert(Bound && "bind() must run before run()");
  SharedState S;
  SplitMix64 Rng(Params.Seed ^ 0xb20055e2ULL);
  for (unsigned K = 0; K != 1024; ++K)
    S.Blob[K] = static_cast<uint8_t>(Rng.next());
  for (unsigned K = 0; K != 256; ++K)
    S.Glyphs[K] = static_cast<uint8_t>(Rng.next());

  if (In == Input::Start)
    runStart(RT, S, Params);
  else
    runRender(RT, S, Params);
}

std::vector<SeededRaceSpec> BrowserWorkload::seededRaces() const {
  assert(Bound && "manifest valid only after bind()");
  auto P = [&](FunctionId F, uint32_t Site) { return makePc(F, Site); };
  std::vector<SeededRaceSpec> Races;
  auto Add = [&](const char *Label, std::vector<Pc> Sites, bool Frequent) {
    Races.push_back(SeededRaceSpec{Label, std::move(Sites), Frequent});
  };

  Add("browser-stop-flag",
      {P(FnShutdown, SiteStopWrite), P(FnUiProgress, SiteUiStopRead)},
      false);

  if (In == Input::Start) {
    Add("browser-start-stamp", {P(FnServiceStart, SiteStartStampWrite)},
        false);
    Add("browser-prefs-version",
        {P(FnServiceStart, SitePrefsVersionWrite),
         P(FnServiceStart, SitePrefsVersionRead)},
        false);
    Add("browser-theme-flag",
        {P(FnLookup, SiteThemeReadyRead), P(FnLookup, SiteThemeReadyWrite)},
        false);
    Add("browser-theme-table",
        {P(FnLookup, SiteThemeTableWrite), P(FnLookup, SiteThemeProbeRead)},
        false);
    Add("browser-fallback-font",
        {P(FnServiceFinish, SiteFallbackFontWrite),
         P(FnServiceFinish, SiteFallbackFontRead)},
        false);
    Add("browser-done-mark", {P(FnServiceFinish, SiteDoneMarkWrite)}, false);
    Add("browser-splash-hint",
        {P(FnRegister, SiteSplashHintWrite),
         P(FnUiProgress, SiteUiSplashHint)},
        false);
    Add("browser-progress",
        {P(FnLoadItem, SiteProgressRead), P(FnLoadItem, SiteProgressWrite),
         P(FnLoadItem, SiteProgressRecheck), P(FnUiProgress, SiteUiProgress)},
        true);
    Add("browser-last-component",
        {P(FnRegister, SiteLastComponentWrite),
         P(FnUiProgress, SiteUiLastComponent)},
        true);
    Add("browser-registry-depth",
        {P(FnRegister, SiteDepthWrite), P(FnUiProgress, SiteUiDepth)}, true);
  } else {
    Add("render-first-paint", {P(FnReflowBox, SiteFirstPaintWrite)}, false);
    Add("render-finish-stamp", {P(FnWorkerFinish, SiteFinishStampWrite)},
        false);
    Add("render-overflow-mark",
        {P(FnReflowBox, SiteOverflowWrite), P(FnUiProgress, SiteUiOverflow)},
        false);
    Add("render-dirty-region",
        {P(FnReflowBox, SiteDirtyWrite), P(FnUiProgress, SiteUiDirty)},
        true);
    Add("render-boxes-done",
        {P(FnReflowBox, SiteBoxesDoneRead),
         P(FnReflowBox, SiteBoxesDoneWrite),
         P(FnReflowBox, SiteBoxesDoneRecheck),
         P(FnUiProgress, SiteUiBoxesDone)},
        true);
    Add("render-last-style",
        {P(FnStyleResolve, SiteLastStyleWrite),
         P(FnUiProgress, SiteUiLastStyle)},
        true);
  }
  return Races;
}
