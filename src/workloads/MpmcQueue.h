//===-- workloads/MpmcQueue.h - Lock-free MPMC queue workload -*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adversarial workload: a Michael-Scott-style lock-free multi-producer
/// multi-consumer queue over a fixed node pool, with hazard-pointer-style
/// deferred reclamation. Every structural pointer (queue head/tail, node
/// next links, the free-list head, the hazard slots) is a logged AtomicU64,
/// so the payload traffic is race-free purely through publication and
/// hazard-scan ordering — the hardest kind of protocol for a sampling race
/// detector to stay silent on. Tagged references (generation counter in the
/// high half) guard the CAS loops against ABA.
///
/// Seeded races (see seededRaces()):
///  - mpmc-enq-tally   hot/frequent: bare operation tally, producers RMW
///                     per enqueue, consumers read per dequeue
///  - mpmc-tuning-hint thread-cold: main writes a bare hint after forking;
///                     every worker reads it once in its warmup
///  - mpmc-drain-flag  cold: bare producers-done counter, RMW once per
///                     producer at exit, read by draining consumers
///  - mpmc-reclaim-scan rare/schedule-dependent: bare last-scan-size
///                     diagnostic in the reclamation scan, a rarely taken
///                     branch of the hot dequeue path
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_WORKLOADS_MPMCQUEUE_H
#define LITERACE_WORKLOADS_MPMCQUEUE_H

#include "workloads/Workload.h"

namespace literace {

/// "MPMC Queue" adversarial workload.
class MpmcQueueWorkload : public Workload {
public:
  MpmcQueueWorkload() = default;

  std::string name() const override;
  void bind(Runtime &RT) override;
  void run(Runtime &RT, const WorkloadParams &Params) override;
  std::vector<SeededRaceSpec> seededRaces() const override;

  enum Site : uint32_t {
    // mpmc.enqueue
    SiteValueWrite = 1,
    SiteValueRecheck = 2,
    SiteEnqTallyRead = 3,
    SiteEnqTallyWrite = 4,
    // mpmc.dequeue
    SiteValueRead = 20,
    SiteDeqTallyRead = 21,
    // mpmc.warmup
    SiteHintRead = 40,
    // mpmc.tune
    SiteHintWrite = 41,
    // mpmc.finish
    SiteDoneRead = 50,
    SiteDoneWrite = 51,
    // mpmc.drain
    SiteDrainDoneRead = 52,
    // mpmc.reclaim
    SiteScanSizeRead = 60,
    SiteScanSizeWrite = 61,
    // mpmc.init / mpmc.teardown (main thread, phase-ordered)
    SiteInitTallyWrite = 70,
    SiteInitHintWrite = 71,
    SiteFinalTallyRead = 80,
    SiteFinalScanRead = 81,
  };

  struct Node;
  struct SharedState;

private:
  void enqueueOne(ThreadContext &TC, SharedState &S, unsigned HazardSlot,
                  uint64_t Value);
  bool dequeueOne(ThreadContext &TC, SharedState &S, unsigned HazardBase,
                  std::vector<uint32_t> &Retired, uint64_t &ValueOut);
  void reclaim(ThreadContext &TC, SharedState &S,
               std::vector<uint32_t> &Retired);
  void producerMain(ThreadContext &TC, SharedState &S, unsigned Worker,
                    uint32_t Ops);
  void consumerMain(ThreadContext &TC, SharedState &S, unsigned HazardBase,
                    uint64_t &Popped, uint64_t &Sum);

  bool Bound = false;
  FunctionId FnInit = 0;
  FunctionId FnEnqueue = 0;
  FunctionId FnDequeue = 0;
  FunctionId FnReclaim = 0;
  FunctionId FnWarmup = 0;
  FunctionId FnTune = 0;
  FunctionId FnFinish = 0;
  FunctionId FnDrain = 0;
  FunctionId FnTeardown = 0;
};

} // namespace literace

#endif // LITERACE_WORKLOADS_MPMCQUEUE_H
