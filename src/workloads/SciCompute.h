//===-- workloads/SciCompute.h - Loop-heavy scientific kernel -*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §7 future-work scenario, built out: a PARSEC-style
/// compute-bound kernel whose threads call ONE function a handful of
/// times, each call sweeping a large array. Function-granularity sampling
/// degenerates here — the thread-local adaptive sampler logs the first
/// ten calls at 100%, and ten calls IS most of the program — so the
/// effective sampling rate stays enormous. The §7 fix is loop-granularity
/// decay (LoggingTracer::loopIteration): within one sampled activation,
/// logging backs off after the first iterations of a high-trip-count
/// loop.
///
/// The workload can be built with or without the loop hints
/// (UseLoopHints), so the ablation bench can quantify exactly what the
/// extension buys (log volume, runtime) and what it costs (which of the
/// seeded races survive).
///
/// Seeded races: an unsynchronized convergence flag (cold, outside the
/// loops) and a halo-row exchange between adjacent threads (hot, inside
/// the sweep — the worst case for loop decay).
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_WORKLOADS_SCICOMPUTE_H
#define LITERACE_WORKLOADS_SCICOMPUTE_H

#include "workloads/Workload.h"

namespace literace {

/// Loop-heavy scientific kernel (extension workload; not part of the
/// paper's benchmark suite).
class SciComputeWorkload : public Workload {
public:
  /// \p UseLoopHints enables the §7 loop-granularity sampling hints.
  explicit SciComputeWorkload(bool UseLoopHints);

  std::string name() const override;
  void bind(Runtime &RT) override;
  void run(Runtime &RT, const WorkloadParams &Params) override;
  std::vector<SeededRaceSpec> seededRaces() const override;

  enum Site : uint32_t {
    // sci.sweep
    SiteGridLoad = 1,
    SiteGridStore = 2,
    SiteHaloRead = 3,
    SiteHaloWrite = 4,
    // sci.checkConverged
    SiteConvergedRead = 20,
    SiteConvergedWrite = 21,
  };

private:
  struct SharedState;

  void workerMain(ThreadContext &TC, SharedState &S, unsigned Index,
                  uint32_t Iterations);

  bool UseLoopHints;
  bool Bound = false;
  FunctionId FnSweep = 0;
  FunctionId FnCheck = 0;
};

} // namespace literace

#endif // LITERACE_WORKLOADS_SCICOMPUTE_H
