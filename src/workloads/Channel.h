//===-- workloads/Channel.h - Dryad-channel workload ----------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "Dryad Channel" benchmark equivalent (§5.1): a shared-memory
/// channel library exercised by a coarse-grained data-parallel pipeline.
/// Three producers build fixed-size records (fill + checksum + formatted
/// sequence number via the stdlib), push them through a bounded MPMC
/// channel to two consumers that validate and free them, while an
/// unsynchronized statistics reporter polls shared diagnostics and a
/// late-starting drainer empties the channel at shutdown.
///
/// The WithStdLib variant instruments the bundled utility library too,
/// mirroring the paper's "Dryad + stdlib" configuration (more functions,
/// more memory ops, and the stdlib's own seeded races become visible).
///
/// Seeded races (see seededRaces() for the authoritative manifest):
///   rare:     tuning-hint init, producer final-total write/write at
///             teardown, drainer-vs-reporter heartbeat, one-shot oversize
///             diagnostic in the hot push path (designed to evade even
///             LiteRace's sampler most runs)
///   frequent: stop flag polled bare, per-producer push counters,
///             per-consumer pop counters, last-push-size diagnostic
///
//======---------------------------------------------------------------===//

#ifndef LITERACE_WORKLOADS_CHANNEL_H
#define LITERACE_WORKLOADS_CHANNEL_H

#include "sync/MonitoredAllocator.h"
#include "workloads/StdLib.h"
#include "workloads/Workload.h"

#include <array>

namespace literace {

/// "Dryad Channel" / "Dryad Channel + stdlib" benchmark-input pair.
class ChannelWorkload : public Workload {
public:
  /// \p WithStdLib selects the instrumented-stdlib configuration.
  explicit ChannelWorkload(bool WithStdLib);

  std::string name() const override;
  void bind(Runtime &RT) override;
  void run(Runtime &RT, const WorkloadParams &Params) override;
  std::vector<SeededRaceSpec> seededRaces() const override;

  /// Stable site labels.
  enum Site : uint32_t {
    // chan.push
    SiteTailRead = 1,
    SiteRingWrite = 2,
    SiteTailWrite = 3,
    SitePushCountRead = 4,
    SitePushCountWrite = 5,
    SiteLastSizeWrite = 6,
    SiteOversizeWrite = 7,
    SitePushCountRecheck = 8,
    // chan.pop
    SiteHeadRead = 20,
    SiteRingRead = 21,
    SiteHeadWrite = 22,
    SitePopCountRead = 23,
    SitePopCountWrite = 24,
    SitePopCountRecheck = 25,
    // pipeline.produce
    SiteTuningRead = 40,
    SitePayloadFold = 41,
    SiteRecSeqWrite = 42,
    SiteRecChecksumWrite = 43,
    SiteRecOversizeWrite = 44,
    // pipeline.consume
    SiteRecSeqRead = 60,
    SiteRecChecksumRead = 61,
    SiteRecOversizeRead = 62,
    SiteConsumeFold = 63,
    SiteValidRead = 64,
    SiteValidWrite = 65,
    // pipeline.setup
    SiteSetupInit = 80,
    // pipeline.tune
    SiteTuneWrite = 90,
    // pipeline.finishProducer
    SiteFinalTotalWrite = 100,
    // pipeline.teardown
    SiteStopWrite = 110,
    SiteFinalTotalCheck = 111,
    // reporter.poll
    SiteStopRead = 120,
    SitePollPushCount = 121,
    SitePollPopCount = 122,
    SitePollLastSize = 123,
    SiteHeartbeatWrite = 124,
    SiteOversizeRead = 125,
    // pipeline.drain
    SiteHeartbeatRead = 140,
  };

private:
  struct Record;
  struct QueueState;
  struct SharedState;

  void chanPush(ThreadContext &TC, SharedState &S, Record *Rec,
                uint32_t Size, bool FromProducer, bool *WroteOversize);
  Record *chanPop(ThreadContext &TC, SharedState &S);
  void producerMain(ThreadContext &TC, SharedState &S, unsigned Index,
                    uint32_t Items, uint64_t Seed);
  void consumerMain(ThreadContext &TC, SharedState &S);
  void reporterMain(ThreadContext &TC, SharedState &S);
  void drainerMain(ThreadContext &TC, SharedState &S);

  /// Declares the access model of the channel's sites (variables, roles,
  /// lock scopes) for the pre-execution analysis.
  void declareModel(AccessModel &M);

  bool WithStdLib;
  InstrumentedStdLib StdLib;
  bool Bound = false;

  FunctionId FnPush = 0;
  FunctionId FnPop = 0;
  FunctionId FnSetup = 0;
  FunctionId FnTune = 0;
  FunctionId FnProduce = 0;
  FunctionId FnConsume = 0;
  FunctionId FnFinishProducer = 0;
  FunctionId FnTeardown = 0;
  FunctionId FnPoll = 0;
  FunctionId FnDrain = 0;
};

} // namespace literace

#endif // LITERACE_WORKLOADS_CHANNEL_H
