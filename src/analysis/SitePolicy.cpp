//===-- analysis/SitePolicy.cpp - Per-site elision policy -----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/SitePolicy.h"

using namespace literace;

const char *literace::elisionClassName(ElisionClass C) {
  switch (C) {
  case ElisionClass::None:
    return "none";
  case ElisionClass::RaceFree:
    return "race-free";
  case ElisionClass::Redundant:
    return "redundant";
  }
  return "?";
}

void SitePolicy::markElidable(Pc Site, ElisionClass Class) {
  FunctionId F = pcFunction(Site);
  uint32_t Label = pcSite(Site);
  if (F >= PerFunction.size())
    PerFunction.resize(F + 1);
  std::vector<uint64_t> &Words = PerFunction[F];
  uint32_t Word = Label >> 6;
  if (Word >= Words.size())
    Words.resize(Word + 1, 0);
  uint64_t Bit = uint64_t{1} << (Label & 63u);
  if (!(Words[Word] & Bit)) {
    Words[Word] |= Bit;
    ++Count;
    Classes[Site] = Class;
    if (Class == ElisionClass::Redundant)
      ++RedundantCount;
    return;
  }
  // Re-marking: RaceFree beats Redundant (the stronger, region-independent
  // reason). A Redundant re-mark of a RaceFree site changes nothing.
  ElisionClass &Existing = Classes[Site];
  if (Existing == ElisionClass::Redundant && Class == ElisionClass::RaceFree) {
    Existing = ElisionClass::RaceFree;
    --RedundantCount;
  }
}

bool SitePolicy::elidable(Pc Site) const {
  return view(pcFunction(Site)).test(pcSite(Site));
}

ElisionClass SitePolicy::elisionClass(Pc Site) const {
  auto It = Classes.find(Site);
  return It == Classes.end() ? ElisionClass::None : It->second;
}

std::vector<Pc> SitePolicy::elidableSites() const {
  std::vector<Pc> Sites;
  Sites.reserve(Count);
  for (FunctionId F = 0; F != PerFunction.size(); ++F) {
    const std::vector<uint64_t> &Words = PerFunction[F];
    for (uint32_t Word = 0; Word != Words.size(); ++Word) {
      uint64_t Bits = Words[Word];
      while (Bits) {
        uint32_t Offset = static_cast<uint32_t>(__builtin_ctzll(Bits));
        Sites.push_back(makePc(F, (Word << 6) | Offset));
        Bits &= Bits - 1;
      }
    }
  }
  return Sites; // Already sorted: function-major, site-minor.
}

uint64_t SitePolicy::fingerprint() const {
  uint64_t Hash = 0xcbf29ce484222325ULL;
  for (Pc Site : elidableSites()) {
    for (unsigned Byte = 0; Byte != 8; ++Byte) {
      Hash ^= (Site >> (8 * Byte)) & 0xff;
      Hash *= 0x100000001b3ULL;
    }
    Hash ^= static_cast<uint8_t>(elisionClass(Site));
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}
