//===-- analysis/RedundancyPass.cpp - Redundant-check elimination ---------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/RedundancyPass.h"

#include <algorithm>
#include <map>
#include <set>

using namespace literace;

RedundancyResult literace::findRedundantSites(const AccessModel &M) {
  RedundancyResult Result;

  // Group declarations by site once; regions reference sites by Pc.
  std::map<Pc, std::vector<const SiteDecl *>> BySite;
  for (const SiteDecl &D : M.declarations())
    BySite[D.Site].push_back(&D);

  std::set<Pc> Marked;
  for (const RegionDecl &Region : M.regions()) {
    RegionRedundancy Detail;
    Detail.Region = Region.Name;

    // Walk the region in program order, tracking which variables it has
    // already read or written.
    std::set<VarId> SeenRead, SeenWrite;
    for (Pc Site : Region.Sites) {
      auto It = BySite.find(Site);
      if (It == BySite.end())
        continue; // No declarations (e.g. weakened by the fuzzer): skip.

      // The site is dominated only if EVERY declaration at it is.
      bool AllDominated = true;
      for (const SiteDecl *D : It->second) {
        bool Dominated =
            D->Access == SiteAccess::Read
                ? (SeenRead.count(D->Var) != 0 || SeenWrite.count(D->Var) != 0)
                : SeenWrite.count(D->Var) != 0;
        AllDominated &= Dominated;
      }
      if (AllDominated) {
        Detail.Redundant.push_back(Site);
        Marked.insert(Site);
      }

      // Only now does this site's own access count as "seen".
      for (const SiteDecl *D : It->second) {
        if (D->Access == SiteAccess::Read)
          SeenRead.insert(D->Var);
        else
          SeenWrite.insert(D->Var);
      }
    }
    Result.PerRegion.push_back(std::move(Detail));
  }

  Result.RedundantSites.assign(Marked.begin(), Marked.end());
  return Result;
}
