//===-- analysis/StaticAnalysis.h - Pre-execution site analysis -*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pre-execution static-analysis engine. Before any workload thread
/// runs, it classifies every declared variable with four race-freedom
/// passes, in priority order:
///
///   thread-escape     the variable never escapes one thread: either its
///                     scope is PerThread (a fresh instance per thread),
///                     or all its sites are executed by a single role with
///                     one instance;
///   read-only         no site anywhere writes the variable;
///   lockset           every site of the variable holds a common lock
///                     (non-empty intersection of declared held-lock
///                     sets);
///   mhp               every conflicting pair of the variable's accesses
///                     is ordered by the declared phase skeleton, a
///                     pairwise common lock, or a single executing thread
///                     (MhpPass.h).
///
/// A variable passing any pass cannot participate in a race, so its sites
/// need no logging: the detector only misses races on pairs that cannot
/// exist. A site is elided RaceFree only if EVERY variable it is declared
/// against is proven race-free, and undeclared sites are never elided.
///
/// A fifth pass — redundancy elimination (RedundancyPass.h) — elides
/// dominated duplicate sites inside declared synchronization-free regions
/// under the Redundant class, without needing the variable race-free.
///
/// Each pass can be disabled independently (AnalysisOptions), which is how
/// the differential audit attributes every elided site to the one pass
/// that proved it, and how the conservatism fuzzer checks monotonicity.
/// The soundness audit (harness/ElisionExperiment.h, literace-analyze
/// --audit) verifies every configuration against the seeded-race ground
/// truth.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_ANALYSIS_STATICANALYSIS_H
#define LITERACE_ANALYSIS_STATICANALYSIS_H

#include "analysis/AccessModel.h"
#include "analysis/SitePolicy.h"
#include "runtime/EventLog.h"

#include <string>
#include <vector>

namespace literace {

class Runtime;

/// The analysis passes, in verdict priority order (first proof wins for
/// the race-freedom passes; Redundancy is site- not variable-directed).
enum class AnalysisPass : uint8_t {
  ThreadEscape = 0,
  ReadOnly,
  Lockset,
  Mhp,
  Redundancy,
};

constexpr size_t kNumAnalysisPasses = 5;

/// Short pass name for flags and reports ("thread-escape", "mhp", ...).
const char *passName(AnalysisPass P);

/// Which passes an analysis run may use. Default: all of them.
struct AnalysisOptions {
  bool ThreadEscape = true;
  bool ReadOnly = true;
  bool Lockset = true;
  bool Mhp = true;
  bool Redundancy = true;

  bool enabled(AnalysisPass P) const;
  void set(AnalysisPass P, bool Value);

  /// All passes on except \p P — one leg of the differential audit.
  static AnalysisOptions allExcept(AnalysisPass P);
  /// Every pass disabled (build up with set()).
  static AnalysisOptions none();
};

/// Outcome of the per-variable classification, in verdict priority order.
enum class VarVerdictKind : uint8_t {
  Racy = 0,       ///< No analysis applies; all sites keep logging.
  ThreadLocal,    ///< Proven by the thread-escape pass.
  ReadOnly,       ///< Proven by the read-only pass.
  LockConsistent, ///< Proven by the lockset-consistency pass.
  PhaseOrdered,   ///< Proven by the static MHP pass.
};

/// Human-readable verdict name for reports.
const char *verdictName(VarVerdictKind Kind);

/// One variable's verdict with its justification.
struct VarVerdict {
  VarId Var = 0;
  VarVerdictKind Kind = VarVerdictKind::Racy;
  /// The pass that proved the verdict; meaningless while Kind == Racy.
  AnalysisPass ProvedBy = AnalysisPass::ThreadEscape;
  /// The common lock, when Kind == LockConsistent.
  LockId CommonLock = 0;
  /// One-line justification ("no write site declared", ...).
  std::string Why;
  /// One note per attempted pass, in pass order, recording what it
  /// concluded ("lockset: no common lock across 3 sites") — the proof
  /// chain literace-analyze --explain prints. Passes after the winning
  /// one are not attempted.
  std::vector<std::string> PassNotes;
  /// Distinct sites of this variable that ended up elidable.
  size_t SitesElided = 0;
};

/// Full result of one analysis run.
struct AnalysisResult {
  SitePolicy Policy;
  /// Per-variable verdicts, indexed by VarId.
  std::vector<VarVerdict> Vars;
  /// Distinct declared site Pcs.
  size_t DeclaredSites = 0;
  /// Distinct sites proven elidable (== Policy.numElidableSites()).
  size_t ElidableSites = 0;
  /// Subset of ElidableSites elided as Redundant rather than RaceFree.
  size_t RedundantSites = 0;
};

/// Runs the enabled passes over \p M and computes the elision policy.
AnalysisResult analyzeAccessModel(const AccessModel &M,
                                  const AnalysisOptions &Opts = {});

/// Differential attribution: the sites elidable under the full analysis
/// that stop being elidable when \p P is disabled — the elision only \p P
/// proves. Disabling a pass can never ADD elidable sites (each pass only
/// contributes proofs), so this difference is the pass's exact credit.
std::vector<Pc> passAttribution(const AccessModel &M, AnalysisPass P);

/// Convenience: analyzes \p RT's access model (populated by bind()) with
/// all passes and installs the resulting policy into the runtime. Honors
/// RuntimeConfig::DisableElision. Returns the analysis result either way.
AnalysisResult analyzeAndInstall(Runtime &RT);

/// Returns a copy of \p T with every memory record whose Pc is elidable
/// under \p Policy removed — the trace the runtime WOULD have produced
/// with the policy active, on the same interleaving. Sync records and
/// thread markers are preserved, so happens-before edges are intact. Used
/// by the soundness audit to compare detection results deterministically.
Trace filterTrace(const Trace &T, const SitePolicy &Policy);

} // namespace literace

#endif // LITERACE_ANALYSIS_STATICANALYSIS_H
