//===-- analysis/StaticAnalysis.h - Pre-execution site analysis -*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pre-execution static-analysis pass. Before any workload thread
/// runs, it classifies every declared variable with three analyses, in
/// priority order:
///
///   thread-escape     the variable never escapes one thread: either its
///                     scope is PerThread (a fresh instance per thread),
///                     or all its sites are executed by a single role with
///                     one instance;
///   read-only         no site anywhere writes the variable;
///   lockset           every site of the variable holds a common lock
///                     (non-empty intersection of declared held-lock
///                     sets).
///
/// A variable passing any analysis cannot participate in a race, so its
/// sites need no logging: the detector only misses races on pairs that
/// cannot exist. A site is elided only if EVERY variable it is declared
/// against is proven race-free, and undeclared sites are never elided —
/// both directions keep the pass conservative, which the soundness audit
/// (harness/ElisionExperiment.h) verifies against the seeded-race ground
/// truth.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_ANALYSIS_STATICANALYSIS_H
#define LITERACE_ANALYSIS_STATICANALYSIS_H

#include "analysis/AccessModel.h"
#include "analysis/SitePolicy.h"
#include "runtime/EventLog.h"

#include <string>
#include <vector>

namespace literace {

class Runtime;

/// Outcome of the per-variable classification, in verdict priority order.
enum class VarVerdictKind : uint8_t {
  Racy = 0,       ///< No analysis applies; all sites keep logging.
  ThreadLocal,    ///< Proven by the thread-escape analysis.
  ReadOnly,       ///< Proven by the read-only analysis.
  LockConsistent, ///< Proven by the lockset-consistency analysis.
};

/// Human-readable verdict name for reports.
const char *verdictName(VarVerdictKind Kind);

/// One variable's verdict with its justification.
struct VarVerdict {
  VarId Var = 0;
  VarVerdictKind Kind = VarVerdictKind::Racy;
  /// The common lock, when Kind == LockConsistent.
  LockId CommonLock = 0;
  /// One-line justification ("no write site declared", ...).
  std::string Why;
  /// Distinct sites of this variable that ended up elidable.
  size_t SitesElided = 0;
};

/// Full result of one analysis run.
struct AnalysisResult {
  SitePolicy Policy;
  /// Per-variable verdicts, indexed by VarId.
  std::vector<VarVerdict> Vars;
  /// Distinct declared site Pcs.
  size_t DeclaredSites = 0;
  /// Distinct sites proven elidable (== Policy.numElidableSites()).
  size_t ElidableSites = 0;
};

/// Runs the three analyses over \p M and computes the elision policy.
AnalysisResult analyzeAccessModel(const AccessModel &M);

/// Convenience: analyzes \p RT's access model (populated by bind()) and
/// installs the resulting policy into the runtime. Honors
/// RuntimeConfig::DisableElision. Returns the analysis result either way.
AnalysisResult analyzeAndInstall(Runtime &RT);

/// Returns a copy of \p T with every memory record whose Pc is elidable
/// under \p Policy removed — the trace the runtime WOULD have produced
/// with the policy active, on the same interleaving. Sync records and
/// thread markers are preserved, so happens-before edges are intact. Used
/// by the soundness audit to compare detection results deterministically.
Trace filterTrace(const Trace &T, const SitePolicy &Policy);

} // namespace literace

#endif // LITERACE_ANALYSIS_STATICANALYSIS_H
