//===-- analysis/SitePolicy.h - Per-site elision policy --------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The output of the static analysis pass: the set of instrumentation
/// sites whose logging is proven unnecessary. Stored as one bitset of site
/// labels per function so the tracer's hot path can test a site with two
/// loads and a shift (ElideView), no hashing.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_ANALYSIS_SITEPOLICY_H
#define LITERACE_ANALYSIS_SITEPOLICY_H

#include "runtime/Ids.h"

#include <cstddef>
#include <vector>

namespace literace {

/// Zero-cost view of one function's elidable-site bitset, captured by
/// LoggingTracer once per activation. An empty view (no policy installed,
/// or nothing proven for this function) elides nothing.
struct ElideView {
  const uint64_t *Words = nullptr;
  uint32_t NumWords = 0;

  bool test(uint32_t Site) const {
    uint32_t Word = Site >> 6;
    return Word < NumWords && ((Words[Word] >> (Site & 63u)) & 1u) != 0;
  }
};

/// The set of sites proven race-free by the pre-execution analysis.
class SitePolicy {
public:
  /// Marks \p Site as elidable. Idempotent.
  void markElidable(Pc Site);

  /// True if \p Site was marked elidable.
  bool elidable(Pc Site) const;

  /// View of function \p F's bitset; valid while the policy is alive.
  ElideView view(FunctionId F) const {
    if (F >= PerFunction.size())
      return ElideView{};
    const std::vector<uint64_t> &Words = PerFunction[F];
    return ElideView{Words.data(), static_cast<uint32_t>(Words.size())};
  }

  bool empty() const { return Count == 0; }
  size_t numElidableSites() const { return Count; }

  /// All elidable site Pcs, sorted.
  std::vector<Pc> elidableSites() const;

  /// Stable FNV-1a hash of the sorted elidable-site set; recorded in the
  /// log's policy-metadata record so a trace names the policy it was
  /// produced under.
  uint64_t fingerprint() const;

private:
  /// PerFunction[F] is a bitset over site labels of function F.
  std::vector<std::vector<uint64_t>> PerFunction;
  size_t Count = 0;
};

} // namespace literace

#endif // LITERACE_ANALYSIS_SITEPOLICY_H
