//===-- analysis/SitePolicy.h - Per-site elision policy --------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The output of the static analysis passes: the set of instrumentation
/// sites whose logging is proven unnecessary. Stored as one bitset of site
/// labels per function so the tracer's hot path can test a site with two
/// loads and a shift (ElideView), no hashing. Each elided site also
/// carries an elision class on the cold path: RaceFree sites touch only
/// variables proven race-free, Redundant sites are dominated duplicates
/// inside a synchronization-free region (the variable itself may still be
/// racy — an earlier site in the region already logs the access that
/// matters). Both classes drop the record the same way at runtime; the
/// class distinction feeds reports, the policy fingerprint, and the
/// per-pass audit.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_ANALYSIS_SITEPOLICY_H
#define LITERACE_ANALYSIS_SITEPOLICY_H

#include "runtime/Ids.h"

#include <cstddef>
#include <map>
#include <vector>

namespace literace {

/// Why a site may skip logging.
enum class ElisionClass : uint8_t {
  /// Not elidable (the default for any unmarked site).
  None = 0,
  /// Every variable the site touches is proven race-free.
  RaceFree = 1,
  /// Dominated duplicate access in a synchronization-free region; an
  /// earlier non-elided site already logs the first read/write.
  Redundant = 2,
};

/// Report label for an elision class.
const char *elisionClassName(ElisionClass C);

/// Zero-cost view of one function's elidable-site bitset, captured by
/// LoggingTracer once per activation. An empty view (no policy installed,
/// or nothing proven for this function) elides nothing.
struct ElideView {
  const uint64_t *Words = nullptr;
  uint32_t NumWords = 0;

  bool test(uint32_t Site) const {
    uint32_t Word = Site >> 6;
    return Word < NumWords && ((Words[Word] >> (Site & 63u)) & 1u) != 0;
  }
};

/// The set of sites the pre-execution analysis proved safe to skip.
class SitePolicy {
public:
  /// Marks \p Site as elidable with reason \p Class. Idempotent; if a
  /// site is marked under both classes the stronger RaceFree claim wins
  /// (it elides for a reason independent of any region contract).
  void markElidable(Pc Site, ElisionClass Class = ElisionClass::RaceFree);

  /// True if \p Site was marked elidable (either class).
  bool elidable(Pc Site) const;

  /// The class \p Site was marked under, or None.
  ElisionClass elisionClass(Pc Site) const;

  /// View of function \p F's bitset; valid while the policy is alive.
  ElideView view(FunctionId F) const {
    if (F >= PerFunction.size())
      return ElideView{};
    const std::vector<uint64_t> &Words = PerFunction[F];
    return ElideView{Words.data(), static_cast<uint32_t>(Words.size())};
  }

  bool empty() const { return Count == 0; }
  size_t numElidableSites() const { return Count; }
  /// Number of sites elided as Redundant (the rest are RaceFree).
  size_t numRedundantSites() const { return RedundantCount; }

  /// All elidable site Pcs, sorted.
  std::vector<Pc> elidableSites() const;

  /// Stable FNV-1a hash over the sorted (site, class) pairs; recorded in
  /// the log's policy-metadata record so a trace names the policy it was
  /// produced under. Changing a site's class changes the fingerprint.
  uint64_t fingerprint() const;

private:
  /// PerFunction[F] is a bitset over site labels of function F.
  std::vector<std::vector<uint64_t>> PerFunction;
  /// Cold-path class per elided site; hot-path tests never consult it.
  std::map<Pc, ElisionClass> Classes;
  size_t Count = 0;
  size_t RedundantCount = 0;
};

} // namespace literace

#endif // LITERACE_ANALYSIS_SITEPOLICY_H
