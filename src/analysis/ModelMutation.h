//===-- analysis/ModelMutation.h - Conservatism fuzzer ---------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The model-mutation conservatism fuzzer. The analysis engine's safety
/// story rests on one invariant: every pass treats a declaration as a FACT
/// it may exploit, never as an obligation — so FORGETTING a fact can only
/// shrink what the analysis proves. The fuzzer checks exactly that: it
/// applies random sequences of monotone weakenings to a copy of an
/// AccessModel (drop a held lock, clear a phase tag, drop a phase-order
/// edge, shrink or drop a region, widen a single-instance role, share a
/// per-thread variable) and asserts that the mutated model's elidable-site
/// set is a SUBSET of the original's. Any new elidable site means a pass
/// used the absence of a declaration as evidence — an unsoundness the
/// seeded-race audit might only catch on a lucky interleaving, but the
/// fuzzer catches structurally.
///
/// Deleting a whole SiteDecl is deliberately NOT a mutation: removing a
/// variable's only write genuinely makes it read-only, so whole-site
/// deletion is not monotone and says nothing about conservatism.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_ANALYSIS_MODELMUTATION_H
#define LITERACE_ANALYSIS_MODELMUTATION_H

#include "analysis/AccessModel.h"

#include <cstdint>
#include <string>
#include <vector>

namespace literace {

/// Outcome of one fuzzing campaign over one model.
struct MutationFuzzResult {
  /// Mutated models checked.
  size_t Trials = 0;
  /// Individual weakenings applied across all trials.
  size_t MutationsApplied = 0;
  /// Trials where the mutated model elided a site the original did not —
  /// must be zero for a conservative analysis.
  size_t Violations = 0;
  /// Human-readable description of the first violation, if any.
  std::string FirstViolation;

  bool passed() const { return Violations == 0; }
};

/// Runs \p Trials random weakening sequences (1..MaxMutations each) over
/// copies of \p M, comparing each mutant's elidable-site set against the
/// original's. Deterministic for a fixed \p Seed.
MutationFuzzResult fuzzModelConservatism(const AccessModel &M,
                                         size_t Trials = 64,
                                         size_t MaxMutations = 4,
                                         uint64_t Seed = 0x117e7ace5eedULL);

} // namespace literace

#endif // LITERACE_ANALYSIS_MODELMUTATION_H
