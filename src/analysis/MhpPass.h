//===-- analysis/MhpPass.h - Static may-happen-in-parallel pass -*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static MHP (may-happen-in-parallel) pass. It consumes the declared
/// happens-before skeleton of an AccessModel — named phases connected by
/// fork/join or barrier order edges, with each SiteDecl tagged by the
/// phase it executes in — and proves a variable race-free when every
/// conflicting pair of its declarations (at least one write) cannot run
/// concurrently. A pair is discharged when
///
///   - the two declarations carry distinct phases that the transitive
///     phase order relates (in either direction): every access of the
///     earlier phase happens-before every access of the later one;
///   - the union of the two declarations' roles is a single role with one
///     instance: a lone thread executes both sites, so program order
///     serializes them (this also discharges a write site against
///     itself); or
///   - the declarations share a held lock: the lock's release/acquire
///     edges order the pair even when phases cannot (a pairwise check —
///     strictly more precise than the lockset pass's global
///     intersection, since different pairs may be ordered by different
///     locks or mechanisms).
///
/// Accesses tagged kNoPhase may happen in parallel with everything, so a
/// missing phase fact can only prevent the phase discharge, never enable
/// it — deleting declarations keeps the pass conservative, which the
/// model-mutation fuzzer (ModelMutation.h) checks.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_ANALYSIS_MHPPASS_H
#define LITERACE_ANALYSIS_MHPPASS_H

#include "analysis/AccessModel.h"

#include <string>
#include <vector>

namespace literace {

/// Outcome of trying to prove one variable race-free by MHP reasoning.
struct MhpProof {
  bool Proven = false;
  /// Justification when proven ("4 conflicting pair(s): ...").
  std::string Why;
  /// The first undischarged conflicting pair when not proven, for
  /// --explain reports.
  std::string Obstacle;
};

/// Tries to prove the variable whose declarations are \p Decls race-free
/// under \p M's phase skeleton. Never consults verdicts of other passes.
MhpProof proveMhpFree(const AccessModel &M,
                      const std::vector<const SiteDecl *> &Decls);

} // namespace literace

#endif // LITERACE_ANALYSIS_MHPPASS_H
