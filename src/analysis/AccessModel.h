//===-- analysis/AccessModel.h - Instrumentation-site metadata -*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static metadata about a workload's instrumentation sites, declared in
/// Workload::bind() before any thread runs. The model names the abstract
/// variables a workload touches, the locks it takes, and the thread roles
/// that execute each site, then records one declaration per (site,
/// variable) access. On top of those per-site facts the model can carry a
/// happens-before skeleton — named phases ordered by fork/join or barrier
/// edges, with each declaration tagged by the phase it executes in — and
/// synchronization-free regions whose dominated duplicate accesses the
/// redundancy pass may elide. The pre-execution analysis passes
/// (StaticAnalysis.h) consume this model to prove sites safe to skip.
///
/// The model is a stand-in for what a compiler pass would recover from IR:
/// the paper's Phoenix instrumentation sees every access site and its
/// enclosing synchronization statically; our source-level workloads declare
/// the same facts explicitly. Declarations must be conservative — a site
/// that is not declared is never elided, and a site declared against
/// several variables is elidable only if every one of them is proven
/// race-free.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_ANALYSIS_ACCESSMODEL_H
#define LITERACE_ANALYSIS_ACCESSMODEL_H

#include "runtime/Ids.h"

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace literace {

/// Dense identifier of an abstract variable in an AccessModel.
using VarId = uint32_t;
/// Dense identifier of a declared lock.
using LockId = uint32_t;
/// Dense identifier of a thread role (producer, consumer, ...).
using RoleId = uint32_t;
/// Dense identifier of a declared execution phase.
using PhaseId = uint32_t;

/// Phase tag meaning "no phase fact is known for this declaration". A
/// declaration without a phase may-happen-in-parallel with everything.
constexpr PhaseId kNoPhase = 0xffffffffu;

/// Sharing scope of an abstract variable.
enum class VarScope : uint8_t {
  /// One instance visible to every thread that reaches a site naming it.
  Shared = 0,
  /// A fresh instance per executing thread (stack buffer, thread-private
  /// scratch): instances can never be shared, so the variable is
  /// trivially race-free.
  PerThread = 1,
};

/// Direction of one declared access.
enum class SiteAccess : uint8_t { Read = 0, Write = 1 };

/// The synchronization that orders one phase entirely before another.
enum class PhaseOrderKind : uint8_t {
  /// Thread fork or join: init before spawn, teardown after join.
  ForkJoin = 0,
  /// A barrier every participating thread passes between the phases.
  Barrier = 1,
};

/// One (site, variable) access declaration.
struct SiteDecl {
  /// The instrumentation site, as logged by the tracer.
  Pc Site = 0;
  SiteAccess Access = SiteAccess::Read;
  VarId Var = 0;
  /// Thread roles that execute this site.
  std::vector<RoleId> Roles;
  /// Locks provably held across the access (declared lock scopes).
  std::vector<LockId> Held;
  /// Phase this access executes in, or kNoPhase when unknown.
  PhaseId Phase = kNoPhase;
};

/// An edge of the declared phase order: every access in \p Before
/// happens-before every access in \p After.
struct PhaseOrder {
  PhaseId Before = 0;
  PhaseId After = 0;
  PhaseOrderKind Kind = PhaseOrderKind::ForkJoin;
};

/// A synchronization-free region: a straight-line run of sites executed in
/// the listed program order by one thread with no synchronization between
/// them, where (per variable) every listed site touches the same address
/// within one activation and an earlier site always executes when a later
/// one does. Under that contract only the first read and first write of
/// each variable matter for race detection; later ones are redundant.
struct RegionDecl {
  std::string Name;
  std::vector<Pc> Sites;
};

/// The full static model of one workload's instrumentation sites.
/// Populated single-threaded in bind(); read-only afterwards.
class AccessModel {
public:
  /// Declares an abstract variable. Names are for reports only.
  VarId declareVar(std::string Name, VarScope Scope = VarScope::Shared);

  /// Declares a lock that sites may hold.
  LockId declareLock(std::string Name);

  /// Declares a thread role with \p Instances concurrent executors.
  RoleId declareRole(std::string Name, uint32_t Instances = 1);

  /// Declares a named execution phase for the MHP pass.
  PhaseId declarePhase(std::string Name);

  /// Declares that every access tagged \p Before happens-before every
  /// access tagged \p After, ordered by \p Kind synchronization. The
  /// relation is transitive; the MHP pass computes the closure.
  void orderPhases(PhaseId Before, PhaseId After,
                   PhaseOrderKind Kind = PhaseOrderKind::ForkJoin);

  /// Declares that \p Site accesses \p Var with direction \p Access, run
  /// by \p Roles, holding \p Held, during \p Phase (kNoPhase when no
  /// phase fact is claimed). A site touching several variables gets one
  /// declaration per variable.
  void declareSite(Pc Site, SiteAccess Access, VarId Var,
                   std::initializer_list<RoleId> Roles,
                   std::initializer_list<LockId> Held = {},
                   PhaseId Phase = kNoPhase);

  /// Declares a synchronization-free region over \p Sites (in program
  /// order). Every listed site must already have a declaration, and a
  /// site may belong to at most one region.
  void declareRegion(std::string Name, std::initializer_list<Pc> Sites);

  bool empty() const { return Decls.empty(); }
  size_t numVars() const { return Vars.size(); }
  size_t numLocks() const { return Locks.size(); }
  size_t numRoles() const { return Roles.size(); }
  size_t numPhases() const { return Phases.size(); }
  size_t numRegions() const { return Regions.size(); }

  const std::vector<SiteDecl> &declarations() const { return Decls; }
  const std::vector<PhaseOrder> &phaseOrders() const { return Orders; }
  const std::vector<RegionDecl> &regions() const { return Regions; }

  const std::string &varName(VarId V) const { return Vars[V].Name; }
  VarScope varScope(VarId V) const { return Vars[V].Scope; }
  const std::string &lockName(LockId L) const { return Locks[L]; }
  const std::string &roleName(RoleId R) const { return Roles[R].Name; }
  uint32_t roleInstances(RoleId R) const { return Roles[R].Instances; }
  const std::string &phaseName(PhaseId P) const { return Phases[P]; }

  /// Distinct declared site Pcs, sorted.
  std::vector<Pc> declaredSites() const;

  /// \name Monotone weakenings (conservatism fuzzer)
  /// Each mutator removes or weakens ONE declared fact. Removing a fact
  /// must never let the analysis elide more: these are exactly the
  /// mutations ModelMutation.h applies to check that every pass uses
  /// declarations conservatively. (Deleting a whole SiteDecl is NOT
  /// monotone — dropping a variable's only write makes it read-only —
  /// so there is deliberately no mutator for it.)
  /// @{

  /// Forgets that declaration \p DeclIdx holds its \p HeldIdx-th lock.
  void weakenDropHeldLock(size_t DeclIdx, size_t HeldIdx);
  /// Forgets declaration \p DeclIdx's phase tag (resets to kNoPhase).
  void weakenClearPhase(size_t DeclIdx);
  /// Forgets the \p OrderIdx-th phase-order edge.
  void weakenDropPhaseOrder(size_t OrderIdx);
  /// Forgets that the \p SiteIdx-th site of region \p RegionIdx belongs
  /// to it (the remaining sites keep their relative program order).
  void weakenDropRegionSite(size_t RegionIdx, size_t SiteIdx);
  /// Forgets region \p RegionIdx entirely.
  void weakenDropRegion(size_t RegionIdx);
  /// Weakens role \p R from a single instance to two (its sites can no
  /// longer be proven single-threaded).
  void weakenWidenRole(RoleId R);
  /// Weakens variable \p V from PerThread to Shared scope.
  void weakenShareVar(VarId V);

  /// @}

private:
  struct VarInfo {
    std::string Name;
    VarScope Scope;
  };
  struct RoleInfo {
    std::string Name;
    uint32_t Instances;
  };

  std::vector<VarInfo> Vars;
  std::vector<std::string> Locks;
  std::vector<RoleInfo> Roles;
  std::vector<std::string> Phases;
  std::vector<PhaseOrder> Orders;
  std::vector<RegionDecl> Regions;
  std::vector<SiteDecl> Decls;
};

} // namespace literace

#endif // LITERACE_ANALYSIS_ACCESSMODEL_H
