//===-- analysis/AccessModel.h - Instrumentation-site metadata -*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static metadata about a workload's instrumentation sites, declared in
/// Workload::bind() before any thread runs. The model names the abstract
/// variables a workload touches, the locks it takes, and the thread roles
/// that execute each site, then records one declaration per (site,
/// variable) access. The pre-execution analysis pass (StaticAnalysis.h)
/// consumes this model to prove sites race-free and elide their logging.
///
/// The model is a stand-in for what a compiler pass would recover from IR:
/// the paper's Phoenix instrumentation sees every access site and its
/// enclosing synchronization statically; our source-level workloads declare
/// the same facts explicitly. Declarations must be conservative — a site
/// that is not declared is never elided, and a site declared against
/// several variables is elidable only if every one of them is proven
/// race-free.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_ANALYSIS_ACCESSMODEL_H
#define LITERACE_ANALYSIS_ACCESSMODEL_H

#include "runtime/Ids.h"

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace literace {

/// Dense identifier of an abstract variable in an AccessModel.
using VarId = uint32_t;
/// Dense identifier of a declared lock.
using LockId = uint32_t;
/// Dense identifier of a thread role (producer, consumer, ...).
using RoleId = uint32_t;

/// Sharing scope of an abstract variable.
enum class VarScope : uint8_t {
  /// One instance visible to every thread that reaches a site naming it.
  Shared = 0,
  /// A fresh instance per executing thread (stack buffer, thread-private
  /// scratch): instances can never be shared, so the variable is
  /// trivially race-free.
  PerThread = 1,
};

/// Direction of one declared access.
enum class SiteAccess : uint8_t { Read = 0, Write = 1 };

/// One (site, variable) access declaration.
struct SiteDecl {
  /// The instrumentation site, as logged by the tracer.
  Pc Site = 0;
  SiteAccess Access = SiteAccess::Read;
  VarId Var = 0;
  /// Thread roles that execute this site.
  std::vector<RoleId> Roles;
  /// Locks provably held across the access (declared lock scopes).
  std::vector<LockId> Held;
};

/// The full static model of one workload's instrumentation sites.
/// Populated single-threaded in bind(); read-only afterwards.
class AccessModel {
public:
  /// Declares an abstract variable. Names are for reports only.
  VarId declareVar(std::string Name, VarScope Scope = VarScope::Shared);

  /// Declares a lock that sites may hold.
  LockId declareLock(std::string Name);

  /// Declares a thread role with \p Instances concurrent executors.
  RoleId declareRole(std::string Name, uint32_t Instances = 1);

  /// Declares that \p Site accesses \p Var with direction \p Access, run
  /// by \p Roles, holding \p Held. A site touching several variables gets
  /// one declaration per variable.
  void declareSite(Pc Site, SiteAccess Access, VarId Var,
                   std::initializer_list<RoleId> Roles,
                   std::initializer_list<LockId> Held = {});

  bool empty() const { return Decls.empty(); }
  size_t numVars() const { return Vars.size(); }
  size_t numLocks() const { return Locks.size(); }
  size_t numRoles() const { return Roles.size(); }

  const std::vector<SiteDecl> &declarations() const { return Decls; }

  const std::string &varName(VarId V) const { return Vars[V].Name; }
  VarScope varScope(VarId V) const { return Vars[V].Scope; }
  const std::string &lockName(LockId L) const { return Locks[L]; }
  const std::string &roleName(RoleId R) const { return Roles[R].Name; }
  uint32_t roleInstances(RoleId R) const { return Roles[R].Instances; }

  /// Distinct declared site Pcs, sorted.
  std::vector<Pc> declaredSites() const;

private:
  struct VarInfo {
    std::string Name;
    VarScope Scope;
  };
  struct RoleInfo {
    std::string Name;
    uint32_t Instances;
  };

  std::vector<VarInfo> Vars;
  std::vector<std::string> Locks;
  std::vector<RoleInfo> Roles;
  std::vector<SiteDecl> Decls;
};

} // namespace literace

#endif // LITERACE_ANALYSIS_ACCESSMODEL_H
