//===-- analysis/RedundancyPass.h - Redundant-check elimination -*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The redundancy-elimination pass. Within a declared synchronization-free
/// region (AccessModel::declareRegion) the executing thread's vector clock
/// cannot change, so for race detection only the FIRST read and the FIRST
/// write of each variable matter: any concurrent access that races with a
/// later duplicate also races with the first one, at the same reported
/// site pair granularity once the duplicate's family membership is
/// accounted for. The pass walks each region in program order and marks a
/// site Redundant when every declaration at the site is dominated:
///
///   - a read is dominated once the region already read OR wrote the
///     variable (a prior write subsumes a prior read for reads);
///   - a write is dominated only once the region already WROTE the
///     variable — a write after only reads is NOT redundant, because a
///     write conflicts with concurrent reads that a read does not.
///
/// Unlike every other pass, redundancy elides sites of variables that are
/// NOT race-free: the dominating earlier site still logs, so detection
/// keeps one access per (variable, direction) per region activation. A
/// racy variable's first site in a region can never itself be elided
/// RaceFree (that would require the variable to be race-free) nor
/// Redundant (nothing dominates it), so the chain always bottoms out at a
/// logged access.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_ANALYSIS_REDUNDANCYPASS_H
#define LITERACE_ANALYSIS_REDUNDANCYPASS_H

#include "analysis/AccessModel.h"

#include <string>
#include <vector>

namespace literace {

/// One region's contribution, for reports.
struct RegionRedundancy {
  /// Region name as declared.
  std::string Region;
  /// Sites of this region proven dominated (in region program order).
  std::vector<Pc> Redundant;
};

/// Result of the redundancy walk over every declared region.
struct RedundancyResult {
  /// Distinct dominated sites across all regions, sorted.
  std::vector<Pc> RedundantSites;
  /// Per-region detail, in declaration order.
  std::vector<RegionRedundancy> PerRegion;
};

/// Walks \p M's declared regions and returns the dominated duplicate
/// sites. Independent of variable verdicts by design.
RedundancyResult findRedundantSites(const AccessModel &M);

} // namespace literace

#endif // LITERACE_ANALYSIS_REDUNDANCYPASS_H
