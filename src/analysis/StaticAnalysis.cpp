//===-- analysis/StaticAnalysis.cpp - Pre-execution site analysis ---------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"

#include "analysis/MhpPass.h"
#include "analysis/RedundancyPass.h"
#include "runtime/Runtime.h"

#include <algorithm>
#include <map>
#include <set>

using namespace literace;

const char *literace::verdictName(VarVerdictKind Kind) {
  switch (Kind) {
  case VarVerdictKind::Racy:
    return "racy";
  case VarVerdictKind::ThreadLocal:
    return "thread-local";
  case VarVerdictKind::ReadOnly:
    return "read-only";
  case VarVerdictKind::LockConsistent:
    return "lock-consistent";
  case VarVerdictKind::PhaseOrdered:
    return "phase-ordered";
  }
  return "?";
}

const char *literace::passName(AnalysisPass P) {
  switch (P) {
  case AnalysisPass::ThreadEscape:
    return "thread-escape";
  case AnalysisPass::ReadOnly:
    return "read-only";
  case AnalysisPass::Lockset:
    return "lockset";
  case AnalysisPass::Mhp:
    return "mhp";
  case AnalysisPass::Redundancy:
    return "redundancy";
  }
  return "?";
}

bool AnalysisOptions::enabled(AnalysisPass P) const {
  switch (P) {
  case AnalysisPass::ThreadEscape:
    return ThreadEscape;
  case AnalysisPass::ReadOnly:
    return ReadOnly;
  case AnalysisPass::Lockset:
    return Lockset;
  case AnalysisPass::Mhp:
    return Mhp;
  case AnalysisPass::Redundancy:
    return Redundancy;
  }
  return false;
}

void AnalysisOptions::set(AnalysisPass P, bool Value) {
  switch (P) {
  case AnalysisPass::ThreadEscape:
    ThreadEscape = Value;
    break;
  case AnalysisPass::ReadOnly:
    ReadOnly = Value;
    break;
  case AnalysisPass::Lockset:
    Lockset = Value;
    break;
  case AnalysisPass::Mhp:
    Mhp = Value;
    break;
  case AnalysisPass::Redundancy:
    Redundancy = Value;
    break;
  }
}

AnalysisOptions AnalysisOptions::allExcept(AnalysisPass P) {
  AnalysisOptions Opts;
  Opts.set(P, false);
  return Opts;
}

AnalysisOptions AnalysisOptions::none() {
  AnalysisOptions Opts;
  for (size_t I = 0; I != kNumAnalysisPasses; ++I)
    Opts.set(static_cast<AnalysisPass>(I), false);
  return Opts;
}

namespace {

/// Classifies one variable given all of its declarations, trying the
/// enabled race-freedom passes in priority order. Every attempted pass
/// leaves a note; the first proof wins.
VarVerdict classifyVar(const AccessModel &M, VarId Var,
                       const std::vector<const SiteDecl *> &Decls,
                       const AnalysisOptions &Opts) {
  VarVerdict Verdict;
  Verdict.Var = Var;

  auto Note = [&](AnalysisPass P, const std::string &Text) {
    Verdict.PassNotes.push_back(std::string(passName(P)) + ": " + Text);
  };
  auto Prove = [&](AnalysisPass P, VarVerdictKind Kind,
                   const std::string &Why) {
    Verdict.Kind = Kind;
    Verdict.ProvedBy = P;
    Verdict.Why = Why;
    Note(P, "PROVED — " + Why);
  };

  // Thread-escape: trivial form (each thread owns a fresh instance) or
  // role form (every site runs under one single-instance role).
  if (!Opts.ThreadEscape) {
    Note(AnalysisPass::ThreadEscape, "disabled");
  } else if (M.varScope(Var) == VarScope::PerThread) {
    Prove(AnalysisPass::ThreadEscape, VarVerdictKind::ThreadLocal,
          "per-thread scope: each instance belongs to one thread");
    return Verdict;
  } else {
    std::set<RoleId> TouchingRoles;
    for (const SiteDecl *D : Decls)
      TouchingRoles.insert(D->Roles.begin(), D->Roles.end());
    if (TouchingRoles.size() == 1 &&
        M.roleInstances(*TouchingRoles.begin()) == 1) {
      Prove(AnalysisPass::ThreadEscape, VarVerdictKind::ThreadLocal,
            "only touched by role '" + M.roleName(*TouchingRoles.begin()) +
                "' (1 instance)");
      return Verdict;
    }
    if (TouchingRoles.size() == 1)
      Note(AnalysisPass::ThreadEscape,
           "role '" + M.roleName(*TouchingRoles.begin()) + "' has " +
               std::to_string(M.roleInstances(*TouchingRoles.begin())) +
               " instances");
    else
      Note(AnalysisPass::ThreadEscape,
           "touched by " + std::to_string(TouchingRoles.size()) +
               " roles; escapes its thread");
  }

  // Read-only: no write site anywhere.
  size_t Writes = 0;
  for (const SiteDecl *D : Decls)
    Writes += D->Access == SiteAccess::Write ? 1 : 0;
  if (!Opts.ReadOnly) {
    Note(AnalysisPass::ReadOnly, "disabled");
  } else if (Writes == 0) {
    Prove(AnalysisPass::ReadOnly, VarVerdictKind::ReadOnly,
          "no write site declared across " + std::to_string(Decls.size()) +
              " declaration(s)");
    return Verdict;
  } else {
    Note(AnalysisPass::ReadOnly,
         std::to_string(Writes) + " write site(s) declared");
  }

  // Lockset consistency: a common lock across every site.
  if (!Opts.Lockset) {
    Note(AnalysisPass::Lockset, "disabled");
  } else {
    std::set<LockId> Common(Decls.front()->Held.begin(),
                            Decls.front()->Held.end());
    for (const SiteDecl *D : Decls) {
      std::set<LockId> Held(D->Held.begin(), D->Held.end());
      std::set<LockId> Next;
      std::set_intersection(Common.begin(), Common.end(), Held.begin(),
                            Held.end(), std::inserter(Next, Next.begin()));
      Common.swap(Next);
      if (Common.empty())
        break;
    }
    if (!Common.empty()) {
      Prove(AnalysisPass::Lockset, VarVerdictKind::LockConsistent,
            "every site holds lock '" + M.lockName(*Common.begin()) + "'");
      Verdict.CommonLock = *Common.begin();
      return Verdict;
    }
    Note(AnalysisPass::Lockset,
         "no common lock across " + std::to_string(Decls.size()) +
             " declaration(s)");
  }

  // Static MHP: every conflicting pair ordered by the phase skeleton, a
  // pairwise lock, or a single executing thread.
  if (!Opts.Mhp) {
    Note(AnalysisPass::Mhp, "disabled");
  } else {
    MhpProof Proof = proveMhpFree(M, Decls);
    if (Proof.Proven) {
      Prove(AnalysisPass::Mhp, VarVerdictKind::PhaseOrdered, Proof.Why);
      return Verdict;
    }
    Note(AnalysisPass::Mhp, Proof.Obstacle);
  }

  Verdict.Kind = VarVerdictKind::Racy;
  Verdict.Why = "no enabled pass proves the variable race-free";
  return Verdict;
}

} // namespace

AnalysisResult literace::analyzeAccessModel(const AccessModel &M,
                                            const AnalysisOptions &Opts) {
  AnalysisResult Result;

  // Group declarations by variable.
  std::vector<std::vector<const SiteDecl *>> ByVar(M.numVars());
  for (const SiteDecl &D : M.declarations())
    ByVar[D.Var].push_back(&D);

  Result.Vars.resize(M.numVars());
  for (VarId Var = 0; Var != M.numVars(); ++Var) {
    if (ByVar[Var].empty()) {
      // Declared but never accessed: nothing to elide, nothing to prove.
      Result.Vars[Var].Var = Var;
      Result.Vars[Var].Kind = VarVerdictKind::ReadOnly;
      Result.Vars[Var].ProvedBy = AnalysisPass::ReadOnly;
      Result.Vars[Var].Why = "no access site declared";
      continue;
    }
    Result.Vars[Var] = classifyVar(M, Var, ByVar[Var], Opts);
  }

  // A site is elidable RaceFree only if every variable it touches is
  // race-free.
  std::map<Pc, bool> SiteSafe;
  for (const SiteDecl &D : M.declarations()) {
    bool VarSafe = Result.Vars[D.Var].Kind != VarVerdictKind::Racy;
    auto [It, Inserted] = SiteSafe.emplace(D.Site, VarSafe);
    if (!Inserted)
      It->second &= VarSafe;
  }
  for (const auto &[Site, Safe] : SiteSafe)
    if (Safe)
      Result.Policy.markElidable(Site, ElisionClass::RaceFree);

  // Redundancy: dominated duplicates inside sync-free regions join the
  // policy under the weaker Redundant class (markElidable keeps RaceFree
  // when a site qualifies for both).
  if (Opts.Redundancy) {
    RedundancyResult Redundant = findRedundantSites(M);
    for (Pc Site : Redundant.RedundantSites)
      Result.Policy.markElidable(Site, ElisionClass::Redundant);
  }

  // Per-variable elided-site counts (a site shared with a racy variable
  // counts for neither unless redundancy dropped it).
  for (VarId Var = 0; Var != M.numVars(); ++Var) {
    std::set<Pc> Elided;
    for (const SiteDecl *D : ByVar[Var])
      if (Result.Policy.elidable(D->Site))
        Elided.insert(D->Site);
    Result.Vars[Var].SitesElided = Elided.size();
  }

  Result.DeclaredSites = SiteSafe.size();
  Result.ElidableSites = Result.Policy.numElidableSites();
  Result.RedundantSites = Result.Policy.numRedundantSites();
  return Result;
}

std::vector<Pc> literace::passAttribution(const AccessModel &M,
                                          AnalysisPass P) {
  std::vector<Pc> Full = analyzeAccessModel(M).Policy.elidableSites();
  std::vector<Pc> Without =
      analyzeAccessModel(M, AnalysisOptions::allExcept(P))
          .Policy.elidableSites();
  std::vector<Pc> Credit;
  std::set_difference(Full.begin(), Full.end(), Without.begin(),
                      Without.end(), std::back_inserter(Credit));
  return Credit;
}

AnalysisResult literace::analyzeAndInstall(Runtime &RT) {
  AnalysisResult Result = analyzeAccessModel(RT.accessModel());
  RT.installSitePolicy(Result.Policy);
  return Result;
}

Trace literace::filterTrace(const Trace &T, const SitePolicy &Policy) {
  Trace Out;
  Out.NumTimestampCounters = T.NumTimestampCounters;
  Out.PerThread.resize(T.PerThread.size());
  for (size_t Tid = 0; Tid != T.PerThread.size(); ++Tid) {
    Out.PerThread[Tid].reserve(T.PerThread[Tid].size());
    for (const EventRecord &R : T.PerThread[Tid]) {
      if (isMemoryKind(R.Kind) && Policy.elidable(R.Pc))
        continue;
      Out.PerThread[Tid].push_back(R);
    }
  }
  return Out;
}
