//===-- analysis/StaticAnalysis.cpp - Pre-execution site analysis ---------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"

#include "runtime/Runtime.h"

#include <algorithm>
#include <map>
#include <set>

using namespace literace;

const char *literace::verdictName(VarVerdictKind Kind) {
  switch (Kind) {
  case VarVerdictKind::Racy:
    return "racy";
  case VarVerdictKind::ThreadLocal:
    return "thread-local";
  case VarVerdictKind::ReadOnly:
    return "read-only";
  case VarVerdictKind::LockConsistent:
    return "lock-consistent";
  }
  return "?";
}

namespace {

/// Classifies one variable given all of its declarations.
VarVerdict classifyVar(const AccessModel &M, VarId Var,
                       const std::vector<const SiteDecl *> &Decls) {
  VarVerdict Verdict;
  Verdict.Var = Var;

  // Thread-escape, trivial form: each thread owns a fresh instance.
  if (M.varScope(Var) == VarScope::PerThread) {
    Verdict.Kind = VarVerdictKind::ThreadLocal;
    Verdict.Why = "per-thread scope: each instance belongs to one thread";
    return Verdict;
  }

  // Thread-escape, role form: every site runs under one single-instance
  // role, so exactly one thread ever touches the variable.
  std::set<RoleId> TouchingRoles;
  for (const SiteDecl *D : Decls)
    TouchingRoles.insert(D->Roles.begin(), D->Roles.end());
  if (TouchingRoles.size() == 1 &&
      M.roleInstances(*TouchingRoles.begin()) == 1) {
    Verdict.Kind = VarVerdictKind::ThreadLocal;
    Verdict.Why = "only touched by role '" +
                  M.roleName(*TouchingRoles.begin()) + "' (1 instance)";
    return Verdict;
  }

  // Read-only: no write site anywhere.
  bool AnyWrite = false;
  for (const SiteDecl *D : Decls)
    AnyWrite |= D->Access == SiteAccess::Write;
  if (!AnyWrite) {
    Verdict.Kind = VarVerdictKind::ReadOnly;
    Verdict.Why = "no write site declared across " +
                  std::to_string(Decls.size()) + " declaration(s)";
    return Verdict;
  }

  // Lockset consistency: a common lock across every site.
  std::set<LockId> Common(Decls.front()->Held.begin(),
                          Decls.front()->Held.end());
  for (const SiteDecl *D : Decls) {
    std::set<LockId> Held(D->Held.begin(), D->Held.end());
    std::set<LockId> Next;
    std::set_intersection(Common.begin(), Common.end(), Held.begin(),
                          Held.end(), std::inserter(Next, Next.begin()));
    Common.swap(Next);
    if (Common.empty())
      break;
  }
  if (!Common.empty()) {
    Verdict.Kind = VarVerdictKind::LockConsistent;
    Verdict.CommonLock = *Common.begin();
    Verdict.Why =
        "every site holds lock '" + M.lockName(*Common.begin()) + "'";
    return Verdict;
  }

  Verdict.Kind = VarVerdictKind::Racy;
  Verdict.Why = "escapes its thread, is written, and shares no common lock";
  return Verdict;
}

} // namespace

AnalysisResult literace::analyzeAccessModel(const AccessModel &M) {
  AnalysisResult Result;

  // Group declarations by variable.
  std::vector<std::vector<const SiteDecl *>> ByVar(M.numVars());
  for (const SiteDecl &D : M.declarations())
    ByVar[D.Var].push_back(&D);

  Result.Vars.resize(M.numVars());
  for (VarId Var = 0; Var != M.numVars(); ++Var) {
    if (ByVar[Var].empty()) {
      // Declared but never accessed: nothing to elide, nothing to prove.
      Result.Vars[Var].Var = Var;
      Result.Vars[Var].Kind = VarVerdictKind::ReadOnly;
      Result.Vars[Var].Why = "no access site declared";
      continue;
    }
    Result.Vars[Var] = classifyVar(M, Var, ByVar[Var]);
  }

  // A site is elidable only if every variable it touches is race-free.
  std::map<Pc, bool> SiteSafe;
  for (const SiteDecl &D : M.declarations()) {
    bool VarSafe = Result.Vars[D.Var].Kind != VarVerdictKind::Racy;
    auto [It, Inserted] = SiteSafe.emplace(D.Site, VarSafe);
    if (!Inserted)
      It->second &= VarSafe;
  }
  for (const auto &[Site, Safe] : SiteSafe)
    if (Safe)
      Result.Policy.markElidable(Site);

  // Per-variable elided-site counts (a site shared with a racy variable
  // counts for neither).
  for (VarId Var = 0; Var != M.numVars(); ++Var) {
    std::set<Pc> Elided;
    for (const SiteDecl *D : ByVar[Var])
      if (Result.Policy.elidable(D->Site))
        Elided.insert(D->Site);
    Result.Vars[Var].SitesElided = Elided.size();
  }

  Result.DeclaredSites = SiteSafe.size();
  Result.ElidableSites = Result.Policy.numElidableSites();
  return Result;
}

AnalysisResult literace::analyzeAndInstall(Runtime &RT) {
  AnalysisResult Result = analyzeAccessModel(RT.accessModel());
  RT.installSitePolicy(Result.Policy);
  return Result;
}

Trace literace::filterTrace(const Trace &T, const SitePolicy &Policy) {
  Trace Out;
  Out.NumTimestampCounters = T.NumTimestampCounters;
  Out.PerThread.resize(T.PerThread.size());
  for (size_t Tid = 0; Tid != T.PerThread.size(); ++Tid) {
    Out.PerThread[Tid].reserve(T.PerThread[Tid].size());
    for (const EventRecord &R : T.PerThread[Tid]) {
      if (isMemoryKind(R.Kind) && Policy.elidable(R.Pc))
        continue;
      Out.PerThread[Tid].push_back(R);
    }
  }
  return Out;
}
