//===-- analysis/MhpPass.cpp - Static may-happen-in-parallel pass ---------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/MhpPass.h"

#include <set>
#include <string>

using namespace literace;

namespace {

std::string siteLabel(Pc Site) {
  return std::to_string(pcFunction(Site)) + ":" + std::to_string(pcSite(Site));
}

std::string phaseLabel(const AccessModel &M, PhaseId P) {
  return P == kNoPhase ? std::string("<none>") : M.phaseName(P);
}

} // namespace

MhpProof literace::proveMhpFree(const AccessModel &M,
                                const std::vector<const SiteDecl *> &Decls) {
  MhpProof Proof;

  // Transitive closure of the declared phase order (models are tiny, so a
  // dense Floyd-Warshall closure is the simplest correct choice).
  size_t N = M.numPhases();
  std::vector<std::vector<bool>> Before(N, std::vector<bool>(N, false));
  for (const PhaseOrder &O : M.phaseOrders())
    Before[O.Before][O.After] = true;
  for (size_t K = 0; K != N; ++K)
    for (size_t I = 0; I != N; ++I)
      if (Before[I][K])
        for (size_t J = 0; J != N; ++J)
          if (Before[K][J])
            Before[I][J] = true;

  auto PhaseOrdered = [&](PhaseId A, PhaseId B) {
    return A != kNoPhase && B != kNoPhase && A != B &&
           (Before[A][B] || Before[B][A]);
  };
  auto SingleThread = [&](const SiteDecl *A, const SiteDecl *B) {
    std::set<RoleId> Union(A->Roles.begin(), A->Roles.end());
    Union.insert(B->Roles.begin(), B->Roles.end());
    return Union.size() == 1 && M.roleInstances(*Union.begin()) == 1;
  };
  auto CommonLock = [&](const SiteDecl *A, const SiteDecl *B) {
    for (LockId La : A->Held)
      for (LockId Lb : B->Held)
        if (La == Lb)
          return true;
    return false;
  };

  // Every conflicting pair — two declarations with at least one write,
  // including a write declaration against itself (two concurrent
  // activations of one site) — must be discharged.
  size_t ByPhase = 0, BySingle = 0, ByLock = 0;
  for (size_t I = 0; I != Decls.size(); ++I) {
    for (size_t J = I; J != Decls.size(); ++J) {
      const SiteDecl *A = Decls[I];
      const SiteDecl *B = Decls[J];
      if (A->Access != SiteAccess::Write && B->Access != SiteAccess::Write)
        continue;
      // Phase order never separates a site from itself.
      if (I != J && PhaseOrdered(A->Phase, B->Phase)) {
        ++ByPhase;
        continue;
      }
      if (SingleThread(A, B)) {
        ++BySingle;
        continue;
      }
      if (CommonLock(A, B)) {
        ++ByLock;
        continue;
      }
      Proof.Obstacle = "sites " + siteLabel(A->Site) + " and " +
                       siteLabel(B->Site) + " may happen in parallel "
                       "(phases '" +
                       phaseLabel(M, A->Phase) + "'/'" +
                       phaseLabel(M, B->Phase) +
                       "' unordered, no common lock, not single-threaded)";
      return Proof;
    }
  }

  Proof.Proven = true;
  size_t Pairs = ByPhase + BySingle + ByLock;
  if (Pairs == 0) {
    Proof.Why = "no conflicting access pairs";
  } else {
    Proof.Why = std::to_string(Pairs) + " conflicting pair(s) ordered: " +
                std::to_string(ByPhase) + " by phase order, " +
                std::to_string(ByLock) + " by common lock, " +
                std::to_string(BySingle) + " single-threaded";
  }
  return Proof;
}
