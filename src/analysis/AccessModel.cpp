//===-- analysis/AccessModel.cpp - Instrumentation-site metadata ----------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/AccessModel.h"

#include <algorithm>
#include <cassert>

using namespace literace;

VarId AccessModel::declareVar(std::string Name, VarScope Scope) {
  Vars.push_back(VarInfo{std::move(Name), Scope});
  return static_cast<VarId>(Vars.size() - 1);
}

LockId AccessModel::declareLock(std::string Name) {
  Locks.push_back(std::move(Name));
  return static_cast<LockId>(Locks.size() - 1);
}

RoleId AccessModel::declareRole(std::string Name, uint32_t Instances) {
  assert(Instances > 0 && "a role needs at least one instance");
  Roles.push_back(RoleInfo{std::move(Name), Instances});
  return static_cast<RoleId>(Roles.size() - 1);
}

void AccessModel::declareSite(Pc Site, SiteAccess Access, VarId Var,
                              std::initializer_list<RoleId> SiteRoles,
                              std::initializer_list<LockId> Held) {
  assert(Var < Vars.size() && "undeclared variable");
  assert(SiteRoles.size() > 0 && "a site needs at least one executing role");
  SiteDecl D;
  D.Site = Site;
  D.Access = Access;
  D.Var = Var;
  D.Roles.assign(SiteRoles.begin(), SiteRoles.end());
  D.Held.assign(Held.begin(), Held.end());
#ifndef NDEBUG
  for (RoleId R : D.Roles)
    assert(R < Roles.size() && "undeclared role");
  for (LockId L : D.Held)
    assert(L < Locks.size() && "undeclared lock");
#endif
  Decls.push_back(std::move(D));
}

std::vector<Pc> AccessModel::declaredSites() const {
  std::vector<Pc> Sites;
  Sites.reserve(Decls.size());
  for (const SiteDecl &D : Decls)
    Sites.push_back(D.Site);
  std::sort(Sites.begin(), Sites.end());
  Sites.erase(std::unique(Sites.begin(), Sites.end()), Sites.end());
  return Sites;
}
