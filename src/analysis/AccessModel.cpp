//===-- analysis/AccessModel.cpp - Instrumentation-site metadata ----------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/AccessModel.h"

#include <algorithm>
#include <cassert>

using namespace literace;

VarId AccessModel::declareVar(std::string Name, VarScope Scope) {
  Vars.push_back(VarInfo{std::move(Name), Scope});
  return static_cast<VarId>(Vars.size() - 1);
}

LockId AccessModel::declareLock(std::string Name) {
  Locks.push_back(std::move(Name));
  return static_cast<LockId>(Locks.size() - 1);
}

RoleId AccessModel::declareRole(std::string Name, uint32_t Instances) {
  assert(Instances > 0 && "a role needs at least one instance");
  Roles.push_back(RoleInfo{std::move(Name), Instances});
  return static_cast<RoleId>(Roles.size() - 1);
}

PhaseId AccessModel::declarePhase(std::string Name) {
  Phases.push_back(std::move(Name));
  return static_cast<PhaseId>(Phases.size() - 1);
}

void AccessModel::orderPhases(PhaseId Before, PhaseId After,
                              PhaseOrderKind Kind) {
  assert(Before < Phases.size() && "undeclared phase");
  assert(After < Phases.size() && "undeclared phase");
  assert(Before != After && "a phase cannot be ordered before itself");
  Orders.push_back(PhaseOrder{Before, After, Kind});
}

void AccessModel::declareSite(Pc Site, SiteAccess Access, VarId Var,
                              std::initializer_list<RoleId> SiteRoles,
                              std::initializer_list<LockId> Held,
                              PhaseId Phase) {
  assert(Var < Vars.size() && "undeclared variable");
  assert(SiteRoles.size() > 0 && "a site needs at least one executing role");
  assert((Phase == kNoPhase || Phase < Phases.size()) && "undeclared phase");
  SiteDecl D;
  D.Site = Site;
  D.Access = Access;
  D.Var = Var;
  D.Roles.assign(SiteRoles.begin(), SiteRoles.end());
  D.Held.assign(Held.begin(), Held.end());
  D.Phase = Phase;
#ifndef NDEBUG
  for (RoleId R : D.Roles)
    assert(R < Roles.size() && "undeclared role");
  for (LockId L : D.Held)
    assert(L < Locks.size() && "undeclared lock");
#endif
  Decls.push_back(std::move(D));
}

void AccessModel::declareRegion(std::string Name,
                                std::initializer_list<Pc> Sites) {
  assert(Sites.size() > 1 && "a region needs at least two sites");
#ifndef NDEBUG
  for (Pc Site : Sites) {
    bool Declared = false;
    for (const SiteDecl &D : Decls)
      Declared |= D.Site == Site;
    assert(Declared && "region site has no access declaration; declare "
                       "sites before regions");
    for (const RegionDecl &R : Regions)
      for (Pc Existing : R.Sites)
        assert(Existing != Site && "a site may belong to only one region");
  }
#endif
  RegionDecl R;
  R.Name = std::move(Name);
  R.Sites.assign(Sites.begin(), Sites.end());
  Regions.push_back(std::move(R));
}

std::vector<Pc> AccessModel::declaredSites() const {
  std::vector<Pc> Sites;
  Sites.reserve(Decls.size());
  for (const SiteDecl &D : Decls)
    Sites.push_back(D.Site);
  std::sort(Sites.begin(), Sites.end());
  Sites.erase(std::unique(Sites.begin(), Sites.end()), Sites.end());
  return Sites;
}

void AccessModel::weakenDropHeldLock(size_t DeclIdx, size_t HeldIdx) {
  assert(DeclIdx < Decls.size());
  std::vector<LockId> &Held = Decls[DeclIdx].Held;
  assert(HeldIdx < Held.size());
  Held.erase(Held.begin() + static_cast<ptrdiff_t>(HeldIdx));
}

void AccessModel::weakenClearPhase(size_t DeclIdx) {
  assert(DeclIdx < Decls.size());
  Decls[DeclIdx].Phase = kNoPhase;
}

void AccessModel::weakenDropPhaseOrder(size_t OrderIdx) {
  assert(OrderIdx < Orders.size());
  Orders.erase(Orders.begin() + static_cast<ptrdiff_t>(OrderIdx));
}

void AccessModel::weakenDropRegionSite(size_t RegionIdx, size_t SiteIdx) {
  assert(RegionIdx < Regions.size());
  std::vector<Pc> &Sites = Regions[RegionIdx].Sites;
  assert(SiteIdx < Sites.size());
  Sites.erase(Sites.begin() + static_cast<ptrdiff_t>(SiteIdx));
}

void AccessModel::weakenDropRegion(size_t RegionIdx) {
  assert(RegionIdx < Regions.size());
  Regions.erase(Regions.begin() + static_cast<ptrdiff_t>(RegionIdx));
}

void AccessModel::weakenWidenRole(RoleId R) {
  assert(R < Roles.size());
  Roles[R].Instances = std::max(Roles[R].Instances, 2u);
}

void AccessModel::weakenShareVar(VarId V) {
  assert(V < Vars.size());
  Vars[V].Scope = VarScope::Shared;
}
