//===-- analysis/ModelMutation.cpp - Conservatism fuzzer ------------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ModelMutation.h"

#include "analysis/StaticAnalysis.h"
#include "support/SplitMix64.h"

#include <algorithm>
#include <set>
#include <string>

using namespace literace;

namespace {

/// One applicable weakening of the model's current state. Candidates are
/// re-enumerated after every application because indices shift.
struct Candidate {
  enum Kind : uint8_t {
    DropHeldLock,
    ClearPhase,
    DropPhaseOrder,
    DropRegionSite,
    DropRegion,
    WidenRole,
    ShareVar,
  } Kind = DropHeldLock;
  size_t A = 0;
  size_t B = 0;
};

std::vector<Candidate> enumerateCandidates(const AccessModel &M) {
  std::vector<Candidate> Out;
  const std::vector<SiteDecl> &Decls = M.declarations();
  for (size_t I = 0; I != Decls.size(); ++I) {
    for (size_t H = 0; H != Decls[I].Held.size(); ++H)
      Out.push_back({Candidate::DropHeldLock, I, H});
    if (Decls[I].Phase != kNoPhase)
      Out.push_back({Candidate::ClearPhase, I, 0});
  }
  for (size_t I = 0; I != M.phaseOrders().size(); ++I)
    Out.push_back({Candidate::DropPhaseOrder, I, 0});
  const std::vector<RegionDecl> &Regions = M.regions();
  for (size_t R = 0; R != Regions.size(); ++R) {
    Out.push_back({Candidate::DropRegion, R, 0});
    for (size_t S = 0; S != Regions[R].Sites.size(); ++S)
      Out.push_back({Candidate::DropRegionSite, R, S});
  }
  for (RoleId R = 0; R != M.numRoles(); ++R)
    if (M.roleInstances(R) == 1)
      Out.push_back({Candidate::WidenRole, R, 0});
  for (VarId V = 0; V != M.numVars(); ++V)
    if (M.varScope(V) == VarScope::PerThread)
      Out.push_back({Candidate::ShareVar, V, 0});
  return Out;
}

void apply(AccessModel &M, const Candidate &C) {
  switch (C.Kind) {
  case Candidate::DropHeldLock:
    M.weakenDropHeldLock(C.A, C.B);
    break;
  case Candidate::ClearPhase:
    M.weakenClearPhase(C.A);
    break;
  case Candidate::DropPhaseOrder:
    M.weakenDropPhaseOrder(C.A);
    break;
  case Candidate::DropRegionSite:
    M.weakenDropRegionSite(C.A, C.B);
    break;
  case Candidate::DropRegion:
    M.weakenDropRegion(C.A);
    break;
  case Candidate::WidenRole:
    M.weakenWidenRole(static_cast<RoleId>(C.A));
    break;
  case Candidate::ShareVar:
    M.weakenShareVar(static_cast<VarId>(C.A));
    break;
  }
}

std::string describe(const AccessModel &M, const Candidate &C) {
  switch (C.Kind) {
  case Candidate::DropHeldLock:
    return "drop held lock #" + std::to_string(C.B) + " of declaration #" +
           std::to_string(C.A);
  case Candidate::ClearPhase:
    return "clear phase of declaration #" + std::to_string(C.A);
  case Candidate::DropPhaseOrder:
    return "drop phase-order edge #" + std::to_string(C.A);
  case Candidate::DropRegionSite:
    return "drop site #" + std::to_string(C.B) + " of region '" +
           M.regions()[C.A].Name + "'";
  case Candidate::DropRegion:
    return "drop region '" + M.regions()[C.A].Name + "'";
  case Candidate::WidenRole:
    return "widen role '" + M.roleName(static_cast<RoleId>(C.A)) + "'";
  case Candidate::ShareVar:
    return "share variable '" + M.varName(static_cast<VarId>(C.A)) + "'";
  }
  return "?";
}

} // namespace

MutationFuzzResult literace::fuzzModelConservatism(const AccessModel &M,
                                                   size_t Trials,
                                                   size_t MaxMutations,
                                                   uint64_t Seed) {
  MutationFuzzResult Result;
  std::vector<Pc> BaseVec = analyzeAccessModel(M).Policy.elidableSites();
  std::set<Pc> Baseline(BaseVec.begin(), BaseVec.end());

  SplitMix64 Rng(Seed);
  for (size_t Trial = 0; Trial != Trials; ++Trial) {
    AccessModel Mutant = M;
    std::vector<std::string> Applied;
    size_t Wanted = 1 + Rng.nextBelow(MaxMutations);
    for (size_t Step = 0; Step != Wanted; ++Step) {
      std::vector<Candidate> Candidates = enumerateCandidates(Mutant);
      if (Candidates.empty())
        break;
      const Candidate &C = Candidates[Rng.nextBelow(Candidates.size())];
      Applied.push_back(describe(Mutant, C));
      apply(Mutant, C);
      ++Result.MutationsApplied;
    }
    ++Result.Trials;

    for (Pc Site : analyzeAccessModel(Mutant).Policy.elidableSites()) {
      if (Baseline.count(Site))
        continue;
      ++Result.Violations;
      if (Result.FirstViolation.empty()) {
        std::string Sequence;
        for (const std::string &S : Applied)
          Sequence += (Sequence.empty() ? "" : "; ") + S;
        Result.FirstViolation =
            "trial " + std::to_string(Trial) + ": weakening [" + Sequence +
            "] made site " + std::to_string(pcFunction(Site)) + ":" +
            std::to_string(pcSite(Site)) + " newly elidable";
      }
      break;
    }
  }
  return Result;
}
