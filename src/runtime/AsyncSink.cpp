//===-- runtime/AsyncSink.cpp - Asynchronous trace-flush pipeline --------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/AsyncSink.h"

#include "telemetry/Metrics.h"

#include <cassert>

using namespace literace;

const char *literace::flushPolicyName(FlushPolicy P) {
  switch (P) {
  case FlushPolicy::Block:
    return "block";
  case FlushPolicy::Drop:
    return "drop";
  }
  return "unknown";
}

AsyncLogSink::AsyncLogSink(LogSink &Under, const Options &Opts)
    : Under(Under), Policy(Opts.Policy), FenceTimeout(Opts.FenceTimeout),
      Metrics(Opts.Metrics), Queue(Opts.QueueCapacityChunks) {
  Flusher = std::thread([this] { flusherLoop(); });
}

AsyncLogSink::AsyncLogSink(LogSink &Under)
    : AsyncLogSink(Under, Options()) {}

AsyncLogSink::~AsyncLogSink() { close(); }

void AsyncLogSink::flusherLoop() {
  // Mark this thread so the underlying sink's write-classification
  // telemetry (sink.writes.flusher_thread vs sink.writes.app_thread) can
  // prove application threads never touch the durable sink in async mode.
  setTraceFlusherThread(true);
  Chunk C;
  while (Queue.pop(C)) {
    Under.writeChunk(C.Tid, C.Records.data(), C.Records.size());
    // Publish completion after the underlying write returns: a fence
    // observing Completed >= its target knows those chunks are durable
    // as far as the underlying sink's own guarantees go.
    Completed.fetch_add(1, std::memory_order_release);
    recycle(std::move(C.Records));
  }
  setTraceFlusherThread(false);
}

std::vector<EventRecord> AsyncLogSink::grabBuffer() {
  std::unique_lock<std::mutex> Guard(FreeLock, std::try_to_lock);
  if (Guard.owns_lock() && !FreeList.empty()) {
    std::vector<EventRecord> Buf = std::move(FreeList.back());
    FreeList.pop_back();
    return Buf;
  }
  return {};
}

void AsyncLogSink::recycle(std::vector<EventRecord> Buf) {
  Buf.clear();
  std::unique_lock<std::mutex> Guard(FreeLock, std::try_to_lock);
  // Bound the pool at twice the queue: enough for every queued chunk plus
  // producers mid-copy; beyond that the memory would just sit idle.
  if (Guard.owns_lock() && FreeList.size() < 2 * Queue.capacity())
    FreeList.push_back(std::move(Buf));
}

void AsyncLogSink::noteLost(ThreadId Tid, size_t Count) {
  DroppedChunks.fetch_add(1, std::memory_order_relaxed);
  DroppedEvents.fetch_add(Count, std::memory_order_relaxed);
  // Tell the durable sink, so the loss lands in the v2 footer and the
  // reader classifies the trace as Salvaged (coverage-gap accounting).
  Under.noteLostChunk(Tid, Count);
}

void AsyncLogSink::writeChunk(ThreadId Tid, const EventRecord *Records,
                              size_t Count) {
  if (Count == 0)
    return;
  Chunk C;
  C.Tid = Tid;
  C.Records = grabBuffer();
  C.Records.assign(Records, Records + Count);
  const bool Accepted =
      Policy == FlushPolicy::Block ? Queue.push(C) : Queue.tryPush(C);
  if (!Accepted) {
    // Queue full under Drop policy, or closed under either policy.
    recycle(std::move(C.Records));
    noteLost(Tid, Count);
    return;
  }
  Enqueued.fetch_add(1, std::memory_order_release);
  addBytes(Count * sizeof(EventRecord));
}

bool AsyncLogSink::fence() {
  Fences.fetch_add(1, std::memory_order_relaxed);
  // Everything enqueued before this call is covered: writeChunk bumps
  // Enqueued before returning, so its chunk is below Target.
  const uint64_t Target = Enqueued.load(std::memory_order_acquire);
  const auto Deadline = std::chrono::steady_clock::now() + FenceTimeout;
  unsigned Attempt = 0;
  while (Completed.load(std::memory_order_acquire) < Target) {
    if (std::chrono::steady_clock::now() > Deadline) {
      FenceTimeouts.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Poll rather than park: this runs on the crash path (fatal-signal
    // handler), where taking the queue's condvar lock could deadlock
    // against the interrupted thread.
    if (Attempt++ < 64)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return true;
}

void AsyncLogSink::flush() {
  if (isTraceFlusherThread()) {
    // Called from inside the flusher (or from the underlying sink's own
    // machinery): fencing would wait on ourselves.
    Under.flush();
    return;
  }
  fence();
  Under.flush();
}

bool AsyncLogSink::close() {
  if (!ClosedFlag.exchange(true)) {
    // Reject new chunks; the flusher drains what was already accepted,
    // then pop() returns false and it exits.
    Queue.close();
    if (Flusher.joinable())
      Flusher.join();
    // After the join every accepted chunk has been written through. (>=
    // not ==: a producer racing close() may publish its Enqueued bump
    // late; the chunk itself was still drained.)
    assert(Completed.load(std::memory_order_relaxed) >=
               Enqueued.load(std::memory_order_relaxed) &&
           "flusher exited with accepted chunks unwritten");
    foldTelemetry();
  }
  return DroppedChunks.load(std::memory_order_relaxed) == 0;
}

void AsyncLogSink::foldTelemetry() {
  telemetry::MetricsRegistry *M = telemetry::resolveRegistry(Metrics);
  if (!M)
    return;
  const MpscQueueStats QS = Queue.stats();
  telemetry::ThreadSlab &Slab = M->threadSlab();
  Slab.add(M->counter("sink.async.chunks_enqueued"),
           Enqueued.load(std::memory_order_relaxed));
  Slab.gaugeMax(M->gaugeMax("sink.async.queue_depth_hw"), QS.DepthHighWater);
  Slab.add(M->counter("sink.async.producer_parks"), QS.ProducerParks);
  Slab.add(M->counter("sink.async.consumer_parks"), QS.ConsumerParks);
  Slab.add(M->counter("sink.async.flush_fences"),
           Fences.load(std::memory_order_relaxed));
  if (const uint64_t N = FenceTimeouts.load(std::memory_order_relaxed))
    Slab.add(M->counter("sink.async.fence_timeouts"), N);
  if (const uint64_t N = DroppedChunks.load(std::memory_order_relaxed))
    Slab.add(M->counter("sink.async.chunks_dropped"), N);
  if (const uint64_t N = DroppedEvents.load(std::memory_order_relaxed))
    Slab.add(M->counter("sink.async.events_dropped"), N);
}
