//===-- runtime/FunctionRegistry.cpp - Instrumented code regions ---------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/FunctionRegistry.h"

#include <cassert>

using namespace literace;

FunctionId FunctionRegistry::registerFunction(std::string Name) {
  std::lock_guard<std::mutex> Guard(Lock);
  Names.push_back(std::move(Name));
  return static_cast<FunctionId>(Names.size() - 1);
}

const std::string &FunctionRegistry::name(FunctionId F) const {
  std::lock_guard<std::mutex> Guard(Lock);
  assert(F < Names.size() && "unregistered function id");
  return Names[F];
}

size_t FunctionRegistry::size() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Names.size();
}
