//===-- runtime/CompressedLog.cpp - Delta/varint log encoding -------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/CompressedLog.h"

#include "support/Timer.h"
#include "telemetry/Metrics.h"

#include <cassert>
#include <cstdio>
#include <cstring>

using namespace literace;

namespace {

constexpr uint64_t CompressedMagic = 0x4C52436F6D7001ULL;

/// Per-event header byte: low 4 bits the kind, high bits flags.
constexpr uint8_t FlagHasMask = 0x10;

void putVarint(std::vector<uint8_t> &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<uint8_t>(V) | 0x80);
    V >>= 7;
  }
  Out.push_back(static_cast<uint8_t>(V));
}

bool getVarint(const uint8_t *&P, const uint8_t *End, uint64_t &V) {
  V = 0;
  unsigned Shift = 0;
  while (P != End) {
    uint8_t Byte = *P++;
    V |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
    if (!(Byte & 0x80))
      return true;
    Shift += 7;
    if (Shift >= 64)
      return false;
  }
  return false;
}

uint64_t zigzag(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63);
}

int64_t unzigzag(uint64_t V) {
  return static_cast<int64_t>(V >> 1) ^ -static_cast<int64_t>(V & 1);
}

} // namespace

size_t literace::compressEventStream(const std::vector<EventRecord> &Stream,
                                     std::vector<uint8_t> &Out) {
  size_t Before = Out.size();
  uint64_t PrevAddr = 0;
  uint64_t PrevPc = 0;
  uint64_t PrevTs = 0;
  uint16_t PrevMask = 0;
  for (const EventRecord &R : Stream) {
    uint8_t Header = static_cast<uint8_t>(R.Kind);
    assert(Header < 0x10 && "kind must fit the header's low bits");
    if (R.Mask != PrevMask)
      Header |= FlagHasMask;
    Out.push_back(Header);
    putVarint(Out, zigzag(static_cast<int64_t>(R.Addr - PrevAddr)));
    putVarint(Out, zigzag(static_cast<int64_t>(R.Pc - PrevPc)));
    if (isSyncKind(R.Kind))
      putVarint(Out, zigzag(static_cast<int64_t>(R.Ts - PrevTs)));
    if (Header & FlagHasMask) {
      putVarint(Out, R.Mask);
      PrevMask = R.Mask;
    }
    PrevAddr = R.Addr;
    PrevPc = R.Pc;
    if (isSyncKind(R.Kind))
      PrevTs = R.Ts;
  }
  return Out.size() - Before;
}

PartialDecode literace::decompressEventStreamPartial(const uint8_t *Data,
                                                     size_t Size,
                                                     ThreadId Tid) {
  PartialDecode Result;
  const uint8_t *P = Data;
  const uint8_t *End = Data + Size;
  uint64_t PrevAddr = 0;
  uint64_t PrevPc = 0;
  uint64_t PrevTs = 0;
  uint16_t PrevMask = 0;
  while (P != End) {
    const uint8_t *RecordStart = P;
    uint8_t Header = *P++;
    uint8_t KindBits = Header & 0x0f;
    if (KindBits > static_cast<uint8_t>(EventKind::PolicyMeta) ||
        (Header & ~uint8_t(0x0f | FlagHasMask))) {
      Result.BytesConsumed = static_cast<size_t>(RecordStart - Data);
      return Result;
    }
    EventRecord R;
    R.Kind = static_cast<EventKind>(KindBits);
    R.Tid = Tid;
    uint64_t V;
    bool Ok = getVarint(P, End, V);
    if (Ok)
      R.Addr = PrevAddr + static_cast<uint64_t>(unzigzag(V));
    if (Ok && (Ok = getVarint(P, End, V)))
      R.Pc = PrevPc + static_cast<uint64_t>(unzigzag(V));
    if (Ok && isSyncKind(R.Kind)) {
      if ((Ok = getVarint(P, End, V))) {
        R.Ts = PrevTs + static_cast<uint64_t>(unzigzag(V));
        PrevTs = R.Ts;
      }
    }
    if (Ok && (Header & FlagHasMask)) {
      Ok = getVarint(P, End, V) && V <= 0xffff;
      if (Ok)
        PrevMask = static_cast<uint16_t>(V);
    }
    if (!Ok) {
      // Truncated or malformed record: keep the prefix decoded so far.
      Result.BytesConsumed = static_cast<size_t>(RecordStart - Data);
      return Result;
    }
    R.Mask = PrevMask;
    PrevAddr = R.Addr;
    PrevPc = R.Pc;
    Result.Events.push_back(R);
  }
  Result.Complete = true;
  Result.BytesConsumed = Size;
  return Result;
}

std::optional<std::vector<EventRecord>>
literace::decompressEventStream(const uint8_t *Data, size_t Size,
                                ThreadId Tid) {
  PartialDecode Partial = decompressEventStreamPartial(Data, Size, Tid);
  if (!Partial.Complete)
    return std::nullopt;
  return std::move(Partial.Events);
}

CompressedFileSink::CompressedFileSink(const std::string &Path,
                                       unsigned NumTimestampCounters)
    : Path(Path), NumTimestampCounters(NumTimestampCounters) {}

CompressedFileSink::~CompressedFileSink() { close(); }

void CompressedFileSink::writeChunk(ThreadId Tid,
                                    const EventRecord *Records,
                                    size_t Count) {
  std::lock_guard<std::mutex> Guard(Lock);
  assert(!Closed && "writeChunk after close()");
  if (Tid >= PerThread.size())
    PerThread.resize(Tid + 1);
  PerThread[Tid].insert(PerThread[Tid].end(), Records, Records + Count);
  addBytes(Count * sizeof(EventRecord));
}

bool CompressedFileSink::close() {
  std::lock_guard<std::mutex> Guard(Lock);
  if (Closed)
    return true;
  Closed = true;

  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  bool Ok = true;
  uint64_t Magic = CompressedMagic;
  uint32_t Counters = NumTimestampCounters;
  uint32_t NumThreads = static_cast<uint32_t>(PerThread.size());
  Ok &= std::fwrite(&Magic, sizeof(Magic), 1, File) == 1;
  Ok &= std::fwrite(&Counters, sizeof(Counters), 1, File) == 1;
  Ok &= std::fwrite(&NumThreads, sizeof(NumThreads), 1, File) == 1;
  CompressedSize = sizeof(Magic) + sizeof(Counters) + sizeof(NumThreads);

  WallTimer EncodeTimer;
  std::vector<uint8_t> Buffer;
  for (const auto &Stream : PerThread) {
    Buffer.clear();
    compressEventStream(Stream, Buffer);
    uint64_t Size = Buffer.size();
    Ok &= std::fwrite(&Size, sizeof(Size), 1, File) == 1;
    if (Size)
      Ok &= std::fwrite(Buffer.data(), 1, Buffer.size(), File) ==
            Buffer.size();
    CompressedSize += sizeof(Size) + Buffer.size();
  }
  Ok &= std::fclose(File) == 0;

  // Logger-plane telemetry: raw vs. encoded volume and the ratio, folded
  // into the process registry once per file.
  if (telemetry::MetricsRegistry *M = telemetry::resolveRegistry(nullptr)) {
    telemetry::ThreadSlab &Slab = M->threadSlab();
    const uint64_t Raw = bytesWritten();
    Slab.add(M->counter("logger.raw_bytes"), Raw);
    Slab.add(M->counter("logger.compressed_bytes"), CompressedSize);
    Slab.add(M->counter("logger.files_closed"));
    Slab.record(M->histogram("logger.encode_ns"),
                EncodeTimer.nanoseconds());
    if (Raw)
      Slab.gaugeMax(M->gaugeMax("logger.compression_ratio_pct"),
                    CompressedSize * 100 / Raw);
  }
  return Ok;
}

std::optional<Trace>
literace::readCompressedTraceFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return std::nullopt;

  // Bound every on-disk length against the actual file size before
  // allocating: a corrupt 64-bit stream size must produce a clean reject,
  // not a multi-gigabyte resize.
  uint64_t FileSize = 0;
  if (std::fseek(File, 0, SEEK_END) == 0) {
    long Pos = std::ftell(File);
    if (Pos > 0)
      FileSize = static_cast<uint64_t>(Pos);
  }
  std::rewind(File);

  uint64_t Magic = 0;
  uint32_t Counters = 0;
  uint32_t NumThreads = 0;
  if (std::fread(&Magic, sizeof(Magic), 1, File) != 1 ||
      Magic != CompressedMagic ||
      std::fread(&Counters, sizeof(Counters), 1, File) != 1 ||
      std::fread(&NumThreads, sizeof(NumThreads), 1, File) != 1 ||
      Counters == 0 ||
      // Each thread needs at least its 8-byte size word in the file.
      static_cast<uint64_t>(NumThreads) * sizeof(uint64_t) > FileSize) {
    std::fclose(File);
    return std::nullopt;
  }
  Trace T;
  T.NumTimestampCounters = Counters;
  T.PerThread.resize(NumThreads);
  std::vector<uint8_t> Buffer;
  for (uint32_t Tid = 0; Tid != NumThreads; ++Tid) {
    uint64_t Size = 0;
    if (std::fread(&Size, sizeof(Size), 1, File) != 1 || Size > FileSize) {
      std::fclose(File);
      return std::nullopt;
    }
    Buffer.resize(Size);
    if (Size && std::fread(Buffer.data(), 1, Size, File) != Size) {
      std::fclose(File);
      return std::nullopt;
    }
    auto Stream = decompressEventStream(Buffer.data(), Size, Tid);
    if (!Stream) {
      std::fclose(File);
      return std::nullopt;
    }
    T.PerThread[Tid] = std::move(*Stream);
  }
  std::fclose(File);
  return T;
}
