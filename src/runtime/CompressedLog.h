//===-- runtime/CompressedLog.h - Delta/varint log encoding ----*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compressed on-disk event format. The paper reports log volume as a
/// first-class cost (Table 5: up to 1.9 GB/s of raw full-logging data on
/// LKRHash); the raw FileSink writes fixed 32-byte records. Event streams
/// are highly regular — addresses cluster, program counters repeat,
/// timestamps increase — so a simple per-thread model compresses well:
///
///   - one byte of kind + flag bits per event,
///   - zig-zag varint DELTAS from the same thread's previous event for
///     address and pc,
///   - varint delta from the previous timestamp on the same stream,
///   - mask only when it differs from the previous one.
///
/// Typical traces shrink 3-6x (see bench/log_encoding). The encoder and
/// decoder are exact: decode(encode(T)) == T, enforced by the tests.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_RUNTIME_COMPRESSEDLOG_H
#define LITERACE_RUNTIME_COMPRESSEDLOG_H

#include "runtime/EventLog.h"

#include <optional>
#include <string>
#include <vector>

namespace literace {

/// Encodes one thread's event stream (program order) into \p Out,
/// appending. Returns the number of bytes appended.
size_t compressEventStream(const std::vector<EventRecord> &Stream,
                           std::vector<uint8_t> &Out);

/// Decodes a stream previously produced by compressEventStream. \p Tid
/// is stamped into every record (it is not stored in the encoding).
/// Returns std::nullopt on malformed input.
std::optional<std::vector<EventRecord>>
decompressEventStream(const uint8_t *Data, size_t Size, ThreadId Tid);

/// Result of a salvaging decode: the records decoded before the first
/// malformed byte (all of them when Complete).
struct PartialDecode {
  std::vector<EventRecord> Events;
  /// True when the whole input decoded cleanly.
  bool Complete = false;
  /// Bytes consumed by the decoded prefix.
  size_t BytesConsumed = 0;
};

/// Like decompressEventStream but keeps the longest cleanly decoded
/// prefix instead of rejecting the whole stream. Never fails: a garbage
/// input just yields an empty, incomplete decode.
PartialDecode decompressEventStreamPartial(const uint8_t *Data, size_t Size,
                                           ThreadId Tid);

/// A LogSink that buffers each thread's stream and writes one compressed
/// file on close(). Unlike FileSink this is not incremental — it is meant
/// for bounded captures where log size matters most.
class CompressedFileSink : public LogSink {
public:
  explicit CompressedFileSink(const std::string &Path,
                              unsigned NumTimestampCounters = 128);
  ~CompressedFileSink() override;

  void writeChunk(ThreadId Tid, const EventRecord *Records,
                  size_t Count) override;

  /// Encodes and writes the file. Returns false on I/O failure.
  bool close();

  /// Compressed bytes written by close() (0 before).
  uint64_t compressedBytes() const { return CompressedSize; }

private:
  std::string Path;
  unsigned NumTimestampCounters;
  std::mutex Lock;
  std::vector<std::vector<EventRecord>> PerThread;
  uint64_t CompressedSize = 0;
  bool Closed = false;
};

/// Reads a compressed log file back into a Trace. Returns std::nullopt
/// if the file is missing or malformed.
std::optional<Trace> readCompressedTraceFile(const std::string &Path);

} // namespace literace

#endif // LITERACE_RUNTIME_COMPRESSEDLOG_H
