//===-- runtime/TraceStats.h - Trace profiling summaries -------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregate statistics over a logged trace: per-kind and per-thread
/// event counts, per-function memory-operation counts (which code regions
/// dominate the log), distinct addresses and SyncVars, and per-sampler
/// mask coverage. Used by `literace-report --stats` for triage — e.g.
/// spotting that one hot function produces 90% of a log — and by tests.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_RUNTIME_TRACESTATS_H
#define LITERACE_RUNTIME_TRACESTATS_H

#include "runtime/EventLog.h"

#include <map>
#include <string>
#include <vector>

namespace literace {

class FunctionRegistry;

/// Computed summary of one trace.
struct TraceStats {
  uint64_t TotalEvents = 0;
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t SyncOps = 0;
  uint64_t Allocations = 0;
  uint64_t Frees = 0;
  uint64_t DistinctAddresses = 0;
  uint64_t DistinctSyncVars = 0;
  uint32_t NumThreads = 0;

  /// Events per thread, indexed by ThreadId.
  std::vector<uint64_t> EventsPerThread;

  /// Memory operations per instrumented function.
  std::map<FunctionId, uint64_t> MemOpsPerFunction;

  /// Memory operations carrying each sampler slot's bit.
  uint64_t MemOpsPerSlot[MaxSamplerSlots] = {};

  /// Memory operations sampled by at least one sampler slot (the union
  /// of the per-slot sets, which overlap; summing MemOpsPerSlot would
  /// double-count).
  uint64_t MemOpsAnySlot = 0;

  /// Computes the statistics for \p T.
  static TraceStats compute(const Trace &T);

  /// Functions sorted by descending memory-op count.
  std::vector<std::pair<FunctionId, uint64_t>> hottestFunctions() const;

  /// Multi-line human-readable rendering; resolves function names via
  /// \p Registry when provided.
  std::string describe(const FunctionRegistry *Registry = nullptr) const;
};

} // namespace literace

#endif // LITERACE_RUNTIME_TRACESTATS_H
