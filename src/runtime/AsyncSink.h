//===-- runtime/AsyncSink.h - Asynchronous trace-flush pipeline -*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The asynchronous trace-flush pipeline. LiteRace's case for production
/// deployment (§4, Table 5) rests on application threads paying almost
/// nothing for instrumentation — yet a synchronous sink makes every
/// ThreadContext flush pay for CRC framing, optional compression, and an
/// unbuffered write(2) behind a mutex. AsyncLogSink moves all of that to
/// a dedicated flusher thread: writeChunk() copies the chunk into a
/// pooled buffer and hands it to a bounded MPSC queue
/// (support/MpscChunkQueue.h); the flusher is the only caller of the
/// underlying sink, so the durable format and its crash guarantees are
/// unchanged (docs/ROBUSTNESS.md).
///
/// Backpressure when the queue fills is a policy:
///
///  - FlushPolicy::Block — the producer waits for a slot. Lossless: the
///    trace is bit-identical to a synchronous run's.
///  - FlushPolicy::Drop — the chunk is discarded *whole* and accounted:
///    the underlying sink is told via LogSink::noteLostChunk(), so the
///    v2 footer records the loss, close() reports it, and readTrace()
///    classifies the file as Salvaged — dropped chunks ride the same
///    coverage-gap machinery as crash damage, preserving the
///    subset-of-full-report guarantee on detection results.
///
/// flush() is a *fence*: it waits (bounded) until everything enqueued
/// before the call has reached the underlying sink, then flushes it.
/// The literace-run fatal-signal path calls exactly this, so a crash
/// loses at most the chunk in flight at the flusher.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_RUNTIME_ASYNCSINK_H
#define LITERACE_RUNTIME_ASYNCSINK_H

#include "runtime/EventLog.h"
#include "support/MpscChunkQueue.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace literace {

namespace telemetry {
class MetricsRegistry;
}

/// What a producer does when the hand-off queue is full.
enum class FlushPolicy : uint8_t {
  Block, ///< wait for the flusher; lossless
  Drop,  ///< discard the whole chunk, accounted as writer-side loss
};

const char *flushPolicyName(FlushPolicy P);

/// Decorates any LogSink with an asynchronous hand-off stage. Producers
/// (application threads) only copy and enqueue; one flusher thread owns
/// every call into the underlying sink.
class AsyncLogSink : public LogSink {
public:
  struct Options {
    FlushPolicy Policy = FlushPolicy::Block;
    /// Hand-off queue capacity in chunks (rounded up to a power of two).
    /// With the runtime's default chunk of 1<<14 records this bounds the
    /// in-flight buffer memory at roughly Capacity * 512 KiB.
    size_t QueueCapacityChunks = 64;
    /// Upper bound a flush() fence will wait for the flusher to catch up
    /// before giving up (the crash path must not hang a dying process).
    std::chrono::milliseconds FenceTimeout{2000};
    /// Telemetry registry override (tests); null resolves the process
    /// registry unless the kill switch disables telemetry.
    telemetry::MetricsRegistry *Metrics = nullptr;
  };

  /// \p Under must outlive this sink (or at least outlive close()).
  AsyncLogSink(LogSink &Under, const Options &Opts);
  explicit AsyncLogSink(LogSink &Under);
  ~AsyncLogSink() override;

  /// Copies the chunk and enqueues it; never calls into the underlying
  /// sink. Under FlushPolicy::Block this waits when the queue is full;
  /// under FlushPolicy::Drop it discards the chunk and accounts the loss.
  void writeChunk(ThreadId Tid, const EventRecord *Records,
                  size_t Count) override;

  /// Fences (waits until everything enqueued before the call is written
  /// through, bounded by Options::FenceTimeout), then flushes the
  /// underlying sink. Safe to call from the flusher thread itself — it
  /// degrades to a plain underlying flush instead of self-deadlocking.
  void flush() override;

  /// Blocks until every chunk enqueued before the call has been written
  /// to the underlying sink, or the fence times out. Returns true if the
  /// pipeline fully drained.
  bool fence();

  /// Closes the queue, drains it, joins the flusher, and folds telemetry.
  /// Returns true iff no chunk was dropped. Idempotent; writeChunk calls
  /// racing with close() are counted as dropped, never lost silently.
  bool close();

  uint64_t chunksEnqueued() const {
    return Enqueued.load(std::memory_order_relaxed);
  }
  uint64_t chunksDropped() const {
    return DroppedChunks.load(std::memory_order_relaxed);
  }
  uint64_t eventsDropped() const {
    return DroppedEvents.load(std::memory_order_relaxed);
  }
  /// Fences that gave up at Options::FenceTimeout.
  uint64_t fenceTimeouts() const {
    return FenceTimeouts.load(std::memory_order_relaxed);
  }
  MpscQueueStats queueStats() const { return Queue.stats(); }

private:
  struct Chunk {
    ThreadId Tid = 0;
    std::vector<EventRecord> Records;
  };

  void flusherLoop();
  std::vector<EventRecord> grabBuffer();
  void recycle(std::vector<EventRecord> Buf);
  void noteLost(ThreadId Tid, size_t Count);
  void foldTelemetry();

  LogSink &Under;
  FlushPolicy Policy;
  std::chrono::milliseconds FenceTimeout;
  telemetry::MetricsRegistry *Metrics = nullptr;

  MpscChunkQueue<Chunk> Queue;

  /// Chunks accepted into the queue / chunks the flusher has fully
  /// written through. fence() waits for Completed to catch Enqueued.
  std::atomic<uint64_t> Enqueued{0};
  std::atomic<uint64_t> Completed{0};
  std::atomic<uint64_t> DroppedChunks{0};
  std::atomic<uint64_t> DroppedEvents{0};
  std::atomic<uint64_t> Fences{0};
  std::atomic<uint64_t> FenceTimeouts{0};
  std::atomic<bool> ClosedFlag{false};

  /// Buffer pool so steady-state writeChunk allocates nothing. try_lock
  /// only: contention falls back to a fresh allocation rather than making
  /// producers wait on each other.
  std::mutex FreeLock;
  std::vector<std::vector<EventRecord>> FreeList;

  std::thread Flusher;
};

} // namespace literace

#endif // LITERACE_RUNTIME_ASYNCSINK_H
