//===-- runtime/Samplers.cpp - Memory-access sampling strategies ---------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Samplers.h"

#include "runtime/ThreadContext.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace literace;

AdaptiveSchedule AdaptiveSchedule::threadLocalDefault() {
  AdaptiveSchedule S;
  S.Rates = {1.0, 0.1, 0.01, 0.001};
  S.BurstLength = 10;
  return S;
}

AdaptiveSchedule AdaptiveSchedule::globalDefault() {
  AdaptiveSchedule S;
  S.Rates.clear();
  // 100%, 50%, 25%, ... halving until the 0.1% floor.
  for (double Rate = 1.0; Rate > 0.001; Rate /= 2.0)
    S.Rates.push_back(Rate);
  S.Rates.push_back(0.001);
  S.BurstLength = 10;
  return S;
}

AdaptiveSchedule AdaptiveSchedule::fixedRate(double Rate,
                                             uint32_t BurstLength) {
  assert(Rate > 0.0 && Rate <= 1.0 && "sampling rate must be in (0, 1]");
  AdaptiveSchedule S;
  S.Rates = {Rate};
  S.BurstLength = BurstLength;
  return S;
}

uint32_t AdaptiveSchedule::gapAfterBurst(uint8_t RateIndex) const {
  assert(!Rates.empty() && "schedule needs at least one rate");
  if (RateIndex >= Rates.size())
    RateIndex = static_cast<uint8_t>(Rates.size() - 1);
  double Rate = Rates[RateIndex];
  assert(Rate > 0.0 && Rate <= 1.0 && "sampling rate must be in (0, 1]");
  // Sampling BurstLength consecutive calls then skipping Gap calls yields a
  // long-run rate of BurstLength / (BurstLength + Gap); solve for Gap.
  double Gap = BurstLength * (1.0 - Rate) / Rate;
  return static_cast<uint32_t>(std::llround(Gap));
}

Sampler::Sampler(std::string ShortName, std::string Description)
    : ShortName(std::move(ShortName)), Description(std::move(Description)) {}

Sampler::~Sampler() = default;

void Sampler::reset() {}

ThreadLocalBurstySampler::ThreadLocalBurstySampler(std::string ShortName,
                                                   std::string Description,
                                                   AdaptiveSchedule Sched)
    : Sampler(std::move(ShortName), std::move(Description)),
      Sched(std::move(Sched)) {}

bool ThreadLocalBurstySampler::shouldSample(ThreadContext &TC, FunctionId F) {
  return stepBurstySampler(TC.localSamplerState(slot(), F), Sched);
}

GlobalBurstySampler::GlobalBurstySampler(std::string ShortName,
                                         std::string Description,
                                         AdaptiveSchedule Sched)
    : Sampler(std::move(ShortName), std::move(Description)),
      Sched(std::move(Sched)) {}

GlobalBurstySampler::~GlobalBurstySampler() {
  for (std::atomic<SamplerFnState *> &B : Blocks)
    delete[] B.load(std::memory_order_relaxed);
}

SamplerFnState &GlobalBurstySampler::stateFor(FunctionId F) {
  size_t B = F / BlockSize;
  if (LR_UNLIKELY(B >= MaxBlocks)) {
    // Beyond the addressable range (4M functions) ids fold into the last
    // block: the sampler degrades to shared state there instead of
    // crashing. No real registry gets close.
    assert(false && "function id beyond GlobalBurstySampler capacity");
    B = MaxBlocks - 1;
    F = B * BlockSize + F % BlockSize;
  }
  SamplerFnState *Block = Blocks[B].load(std::memory_order_acquire);
  if (LR_UNLIKELY(!Block)) {
    std::lock_guard<std::mutex> Guard(GrowthLock);
    Block = Blocks[B].load(std::memory_order_relaxed);
    if (!Block) {
      Block = new SamplerFnState[BlockSize]();
      // Publish after construction; readers that acquire-load the
      // pointer see fully zeroed states. Blocks never move or shrink,
      // so the reference below stays valid for the sampler's lifetime.
      Blocks[B].store(Block, std::memory_order_release);
    }
  }
  return Block[F % BlockSize];
}

bool GlobalBurstySampler::shouldSample(ThreadContext &, FunctionId F) {
  SamplerFnState &State = stateFor(F);
  // Stripe by function id: same function => same mutex => the exact
  // decision sequence of the single-lock version; different functions
  // almost always take different stripes and run concurrently.
  std::lock_guard<std::mutex> Guard(Stripes[F % NumStripes].Lock);
  return stepBurstySampler(State, Sched);
}

void GlobalBurstySampler::reset() {
  // Exclude growth and every stripe so no concurrent shouldSample is
  // mid-step while its state is zeroed.
  std::lock_guard<std::mutex> Growth(GrowthLock);
  std::unique_lock<std::mutex> StripeGuards[NumStripes];
  for (size_t I = 0; I != NumStripes; ++I)
    StripeGuards[I] = std::unique_lock<std::mutex>(Stripes[I].Lock);
  for (std::atomic<SamplerFnState *> &B : Blocks)
    if (SamplerFnState *Block = B.load(std::memory_order_relaxed))
      std::fill(Block, Block + BlockSize, SamplerFnState{});
}

RandomSampler::RandomSampler(std::string ShortName, std::string Description,
                             double Rate)
    : Sampler(std::move(ShortName), std::move(Description)), Rate(Rate) {
  assert(Rate >= 0.0 && Rate <= 1.0 && "sampling rate must be in [0, 1]");
}

bool RandomSampler::shouldSample(ThreadContext &TC, FunctionId) {
  return TC.rng().nextBernoulli(Rate);
}

UnColdRegionSampler::UnColdRegionSampler(uint32_t ColdCalls)
    : Sampler("UCP", "first " + std::to_string(ColdCalls) +
                         " calls per function / per thread are NOT "
                         "sampled, all remaining calls are sampled"),
      ColdCalls(ColdCalls) {}

bool UnColdRegionSampler::shouldSample(ThreadContext &TC, FunctionId F) {
  SamplerFnState &State = TC.localSamplerState(slot(), F);
  // Decide on the pre-increment count (call #ColdCalls+1 is the first
  // sampled one), then bump saturating: after 2^32 calls the counter
  // parks at UINT32_MAX instead of wrapping to 0 and re-classifying a
  // hot function as cold for another ColdCalls entries.
  const bool Sampled = State.Calls >= ColdCalls;
  bumpCallsSaturating(State);
  return Sampled;
}

AlwaysSampler::AlwaysSampler() : Sampler("All", "samples every call") {}

bool AlwaysSampler::shouldSample(ThreadContext &, FunctionId) { return true; }

NeverSampler::NeverSampler() : Sampler("None", "samples no calls") {}

bool NeverSampler::shouldSample(ThreadContext &, FunctionId) { return false; }

std::vector<std::unique_ptr<Sampler>> literace::makeStandardSamplers() {
  std::vector<std::unique_ptr<Sampler>> Samplers;
  Samplers.push_back(std::make_unique<ThreadLocalBurstySampler>(
      "TL-Ad",
      "adaptive back-off per function / per thread "
      "(100%, 10%, 1%, 0.1%); bursty",
      AdaptiveSchedule::threadLocalDefault()));
  Samplers.push_back(std::make_unique<ThreadLocalBurstySampler>(
      "TL-Fx", "fixed 5% per function / per thread; bursty",
      AdaptiveSchedule::fixedRate(0.05)));
  Samplers.push_back(std::make_unique<GlobalBurstySampler>(
      "G-Ad",
      "adaptive back-off per function globally "
      "(100%, 50%, 25%, ..., 0.1%); bursty",
      AdaptiveSchedule::globalDefault()));
  Samplers.push_back(std::make_unique<GlobalBurstySampler>(
      "G-Fx", "fixed 10% per function globally; bursty",
      AdaptiveSchedule::fixedRate(0.10)));
  Samplers.push_back(std::make_unique<RandomSampler>(
      "Rnd10", "random 10% of dynamic calls chosen for sampling", 0.10));
  Samplers.push_back(std::make_unique<RandomSampler>(
      "Rnd25", "random 25% of dynamic calls chosen for sampling", 0.25));
  Samplers.push_back(std::make_unique<UnColdRegionSampler>(10));
  return Samplers;
}
