//===-- runtime/Runtime.h - LiteRace instrumentation runtime ---*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level instrumentation runtime. A Runtime owns everything shared
/// between the threads of one instrumented execution: the function
/// registry, the logical timestamp counters (§4.2), the log sink, the
/// sampler suite, and aggregate statistics.
///
/// The run mode selects which instrumentation layers are active, mirroring
/// the four measurement configurations of §5.4 plus the §5.3 multi-sampler
/// experiment configuration:
///
///   Baseline      no dispatch checks, no logging (uninstrumented app)
///   DispatchOnly  dispatch checks run, nothing is logged
///   SyncLogging   dispatch checks + synchronization operations logged
///   LiteRace      full LiteRace: sync ops + sampled memory ops logged
///   FullLogging   every memory and sync operation logged, no dispatch
///   Experiment    full logging + every attached sampler's dispatch
///                 decision recorded per memory op (§5.3 methodology)
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_RUNTIME_RUNTIME_H
#define LITERACE_RUNTIME_RUNTIME_H

#include "analysis/AccessModel.h"
#include "analysis/SitePolicy.h"
#include "runtime/EventLog.h"
#include "runtime/FunctionRegistry.h"
#include "runtime/Ids.h"
#include "runtime/Samplers.h"
#include "runtime/TimestampManager.h"
#include "telemetry/Metrics.h"

#include <atomic>
#include <memory>
#include <mutex>

namespace literace {

class SchedulePerturber;

/// Instrumentation configuration of one execution. See file comment.
enum class RunMode : uint8_t {
  Baseline = 0,
  DispatchOnly = 1,
  SyncLogging = 2,
  LiteRace = 3,
  FullLogging = 4,
  Experiment = 5,
};

/// Human-readable mode name for reports.
const char *runModeName(RunMode Mode);

/// Construction-time parameters of a Runtime.
struct RuntimeConfig {
  RunMode Mode = RunMode::Experiment;
  /// Number of hashed logical-timestamp counters (paper uses 128).
  unsigned TimestampCounters = 128;
  /// Schedule of the primary (LiteRace) sampler used by the DispatchOnly,
  /// SyncLogging, and LiteRace modes.
  AdaptiveSchedule PrimarySchedule = AdaptiveSchedule::threadLocalDefault();
  /// Seed for per-thread RNGs (random samplers, workload shuffling).
  uint64_t Seed = 0x11feaceULL;
  /// Records buffered per thread before flushing a chunk to the sink.
  size_t ThreadBufferRecords = 1 << 14;
  /// Escape hatch (--no-elide): when true, installSitePolicy() discards
  /// the policy, so every registered site logs as if the static analysis
  /// never ran.
  bool DisableElision = false;
  /// Telemetry registry override, mainly for tests and benches that want
  /// isolated counters. Null resolves to the process-global registry
  /// unless DisableTelemetry or the LITERACE_TELEMETRY kill switch is on.
  telemetry::MetricsRegistry *Metrics = nullptr;
  /// Forces telemetry off for this runtime regardless of the environment
  /// (the baseline arm of the telemetry-overhead microbench).
  bool DisableTelemetry = false;
};

/// Pre-registered telemetry handles of the runtime plane. Hot paths reach
/// them through the thread's cached slab; when telemetry is off the slab
/// pointer is null and nothing here is consulted.
struct RuntimeMetricIds {
  telemetry::CounterId DispatchChecks;       ///< runtime.dispatch_checks
  telemetry::CounterId SampledActivations;   ///< runtime.sampled_activations
  telemetry::CounterId UnsampledActivations; ///< runtime.unsampled_activations
  telemetry::CounterId MemOpsLogged;         ///< runtime.memops_logged
  telemetry::CounterId MemOpsElided;         ///< runtime.memops_elided
  telemetry::CounterId SyncOpsLogged;        ///< runtime.syncops_logged
  telemetry::CounterId LogFlushes;           ///< runtime.log.flushes
  telemetry::CounterId LogBytesWritten;      ///< runtime.log.bytes_written
  telemetry::HistogramId LogFlushNs;         ///< runtime.log.flush_ns
  telemetry::CounterId SamplerBackoffs;      ///< runtime.sampler.backoffs
  telemetry::HistogramId SamplerRateIndex;   ///< runtime.sampler.rate_index
  telemetry::GaugeId Threads;                ///< runtime.threads
};

/// Aggregate execution statistics, accumulated from thread-local counters
/// when each ThreadContext is destroyed.
struct RuntimeStats {
  /// Memory operations logged to the sink (in Experiment and FullLogging
  /// modes this equals the number of memory operations executed inside
  /// instrumented regions, because every one is logged).
  uint64_t MemOpsLogged = 0;
  /// Memory operations skipped because the static analysis proved their
  /// site race-free (counted only inside sampled activations, where the
  /// operation would otherwise have been logged).
  uint64_t MemOpsElided = 0;
  /// Synchronization operations logged.
  uint64_t SyncOps = 0;
  /// Memory operations each sampler slot chose to sample.
  uint64_t MemOpsPerSlot[MaxSamplerSlots] = {};

  /// Effective sampling rate of sampler \p Slot: the fraction of executed
  /// memory operations it chose to log (§5.2). Only meaningful in
  /// Experiment mode. Returns 0 if no memory ops were executed.
  double effectiveSamplingRate(unsigned Slot) const;

  void mergeFrom(const RuntimeStats &Other);
};

/// Shared state of one instrumented execution. Thread-safe; threads attach
/// by constructing a ThreadContext against this Runtime.
class Runtime {
public:
  /// \p Sink may be null only for modes that log nothing (Baseline,
  /// DispatchOnly).
  Runtime(const RuntimeConfig &Config, LogSink *Sink);
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  RunMode mode() const { return Config.Mode; }
  const RuntimeConfig &config() const { return Config; }
  FunctionRegistry &registry() { return Registry; }
  const FunctionRegistry &registry() const { return Registry; }
  TimestampManager &timestamps() { return Timestamps; }
  LogSink *sink() { return Sink; }

  /// True when synchronization operations are logged (SyncLogging mode and
  /// above). Sampling never applies to sync ops: missing one would create
  /// false races (§3.2, Fig. 2).
  bool syncLoggingEnabled() const {
    return Config.Mode >= RunMode::SyncLogging && Sink != nullptr;
  }

  /// The instrumentation-site access model, populated by Workload::bind()
  /// and consumed by the pre-execution analysis (analysis/StaticAnalysis.h).
  AccessModel &accessModel() { return Model; }
  const AccessModel &accessModel() const { return Model; }

  /// Installs the analysis pass's elision policy. Must run before any
  /// thread attaches. No-op when Config.DisableElision is set. Writes a
  /// PolicyMeta record to the sink (if logging) so the trace names the
  /// policy it was produced under.
  void installSitePolicy(SitePolicy Policy);

  /// The installed policy (empty if none was installed).
  const SitePolicy &sitePolicy() const { return Policy; }

  /// Elidable-site view for one function; captured by each sampled
  /// activation. Empty (elides nothing) when no policy is installed.
  ElideView elideView(FunctionId F) const { return Policy.view(F); }

  /// Installs a schedule-perturbation engine (fuzz/SchedulePerturber.h).
  /// Every ThreadContext constructed afterwards attaches to it and
  /// consults it at instrumentation-site granularity. Must be installed
  /// before any thread attaches and must outlive all of them. Null by
  /// default: the hot paths test one cached pointer and pay nothing.
  void installPerturber(SchedulePerturber *P) { Perturber = P; }

  /// The installed perturber, or null.
  SchedulePerturber *perturber() const { return Perturber; }

  /// Attaches a sampler to the Experiment-mode suite; returns its slot.
  unsigned addSampler(std::unique_ptr<Sampler> S);

  /// Attaches the seven Table 3 samplers in the paper's order.
  void addStandardSamplers();

  /// Number of attached samplers.
  unsigned numSamplers() const;

  /// Returns sampler at \p Slot.
  Sampler &sampler(unsigned Slot);
  const Sampler &sampler(unsigned Slot) const;

  /// Assigns the next dense thread id.
  ThreadId allocateThreadId() {
    return NextTid.fetch_add(1, std::memory_order_relaxed);
  }

  /// Number of thread ids handed out so far.
  uint32_t numThreads() const {
    return NextTid.load(std::memory_order_relaxed);
  }

  /// Folds a thread's local statistics into the global aggregate.
  void accumulateStats(const RuntimeStats &Local);

  /// Snapshot of the global aggregate statistics.
  RuntimeStats stats() const;

  /// Resolved telemetry registry; null when telemetry is off for this
  /// runtime (kill switch or Config.DisableTelemetry).
  telemetry::MetricsRegistry *metrics() const { return Metrics; }

  /// Handles of the runtime-plane metrics (valid only when metrics() is
  /// non-null).
  const RuntimeMetricIds &metricIds() const { return MetricIds; }

  /// Snapshot of the resolved registry; empty when telemetry is off.
  telemetry::MetricsSnapshot metricsSnapshot() const;

private:
  RuntimeConfig Config;
  LogSink *Sink;
  FunctionRegistry Registry;
  AccessModel Model;
  SitePolicy Policy;
  TimestampManager Timestamps;
  std::vector<std::unique_ptr<Sampler>> Samplers;
  std::atomic<uint32_t> NextTid{0};
  mutable std::mutex StatsLock;
  RuntimeStats GlobalStats;
  telemetry::MetricsRegistry *Metrics = nullptr;
  RuntimeMetricIds MetricIds;
  SchedulePerturber *Perturber = nullptr;
};

} // namespace literace

#endif // LITERACE_RUNTIME_RUNTIME_H
