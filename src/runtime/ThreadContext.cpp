//===-- runtime/ThreadContext.cpp - Per-thread runtime state -------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadContext.h"

#include "fuzz/SchedulePerturber.h"
#include "support/Hashing.h"
#include "support/Timer.h"
#include "telemetry/Timeline.h"

#include <algorithm>

using namespace literace;

ThreadContext::ThreadContext(Runtime &RT)
    : RT(RT), Tid(RT.allocateThreadId()),
      Rng(mix64(RT.config().Seed ^ (static_cast<uint64_t>(Tid) << 32))) {
  Buffer.reserve(RT.config().ThreadBufferRecords);
  if (telemetry::MetricsRegistry *M = RT.metrics()) {
    TelSlab = &M->threadSlab();
    const RuntimeMetricIds &Ids = RT.metricIds();
    SampledCell = TelSlab->cell(Ids.SampledActivations.Cell);
    UnsampledCell = TelSlab->cell(Ids.UnsampledActivations.Cell);
    TelSlab->gaugeMax(Ids.Threads, static_cast<uint64_t>(Tid) + 1);
  }
  if (RT.syncLoggingEnabled()) {
    EventRecord R;
    R.Kind = EventKind::ThreadStart;
    R.Tid = Tid;
    append(R);
  }
  // Attach to the fuzz engine last: attach() blocks until this thread is
  // granted the execution token, and everything above is thread-local.
  Perturber = RT.perturber();
  if (Perturber)
    Perturber->attach(*this);
}

ThreadContext::~ThreadContext() {
  // Leave the fuzz engine first so the token moves on; the remaining
  // teardown (buffer flush, stats fold) is mutex-protected and carries no
  // perturbation points, so it is safe to run off-token.
  if (Perturber)
    Perturber->detach(*this);
  if (RT.syncLoggingEnabled()) {
    EventRecord R;
    R.Kind = EventKind::ThreadEnd;
    R.Tid = Tid;
    append(R);
  }
  flush();
  if (TelSlab) {
    // Unsampled activations were credited a whole gap at a time when the
    // gap was scheduled (stepPrimary's hooks); give back the portions
    // of gaps this thread never consumed so the final counter is exact.
    uint64_t Unconsumed = 0;
    for (const SamplerFnState &S : PrimaryStates)
      Unconsumed += S.SkipRemaining;
    if (Unconsumed)
      UnsampledCell->store(
          UnsampledCell->load(std::memory_order_relaxed) - Unconsumed,
          std::memory_order_relaxed);
  }
  RT.accumulateStats(Stats);
}

void ThreadContext::flush() {
  if (Buffer.empty())
    return;
  const size_t Records = Buffer.size();
  if (!TelSlab) {
    if (LogSink *Sink = RT.sink())
      Sink->writeChunk(Tid, Buffer.data(), Records);
    Buffer.clear();
    return;
  }
  telemetry::TraceRecorder &Rec = telemetry::TraceRecorder::global();
  const bool Record = Rec.enabled();
  const uint64_t StartUs = Record ? Rec.nowUs() : 0;
  WallTimer Timer;
  if (LogSink *Sink = RT.sink())
    Sink->writeChunk(Tid, Buffer.data(), Records);
  const uint64_t Ns = Timer.nanoseconds();
  const RuntimeMetricIds &Ids = RT.metricIds();
  TelSlab->record(Ids.LogFlushNs, Ns);
  TelSlab->add(Ids.LogFlushes);
  TelSlab->add(Ids.LogBytesWritten, Records * sizeof(EventRecord));
  if (Record)
    Rec.addSpan("log flush", "runtime.log", telemetry::TimelinePidRuntime,
                Tid, StartUs, std::max<uint64_t>(Ns / 1000, 1),
                {{"records", Records}});
  Buffer.clear();
}

SamplerFnState &ThreadContext::localSamplerState(unsigned Slot,
                                                 FunctionId F) {
  assert(Slot < MaxSamplerSlots && "sampler slot out of range");
  if (Slot >= LocalStates.size())
    LocalStates.resize(Slot + 1);
  auto &Table = LocalStates[Slot];
  if (F >= Table.size())
    Table.resize(F + 1);
  return Table[F];
}

// Kept out of line so the vector-growth machinery does not get inlined
// into stepPrimary's hot path (which would force it to spill callee-saved
// registers on every call and lose the tail call into stepBurstySampler).
LR_NOINLINE SamplerFnState &ThreadContext::growPrimaryStates(FunctionId F) {
  PrimaryStates.resize(F + 1);
  return PrimaryStates[F];
}

// Force-inlined so the dispatch check is one call frame deep: entry,
// bounds check, inlined sampler step, return.
LR_ALWAYS_INLINE bool ThreadContext::stepPrimary(FunctionId F) {
  // Telemetry observer for the dispatch check. Every hook fires on a cold
  // sampler transition, never on the steady-state gap countdown: sampled
  // calls bump their counter directly (rare by construction — that is the
  // point of sampling), while unsampled calls are credited in bulk the
  // moment their gap is scheduled. The unsampled counter therefore leads
  // by up to one in-progress gap per (thread, function) state and is
  // exact at every burst boundary; ~ThreadContext subtracts the
  // unconsumed gap remainders so final totals are exact
  // (docs/TELEMETRY.md). Holding only `this` and testing TelSlab inside
  // each hook keeps the hot gap path free of telemetry instructions
  // entirely — telemetry on and off run the same code there, which is
  // what lets the microbench overhead guard hold a <5% budget.
  struct Hooks {
    ThreadContext &TC;

    void sampled() {
      if (TC.TelSlab)
        telemetry::bumpCell(*TC.SampledCell);
    }
    void gapScheduled(uint32_t Gap) {
      if (TC.TelSlab)
        telemetry::bumpCell(*TC.UnsampledCell, Gap);
    }
    void backedOff(uint8_t NewRateIndex) {
      // Rate-trajectory telemetry: each back-off records the new index so
      // the histogram captures the trajectory across all
      // (thread, function) state machines.
      if (!TC.TelSlab)
        return;
      const RuntimeMetricIds &Ids = TC.RT.metricIds();
      TC.TelSlab->add(Ids.SamplerBackoffs);
      TC.TelSlab->record(Ids.SamplerRateIndex, NewRateIndex);
    }
  };
  SamplerFnState &State = LR_UNLIKELY(F >= PrimaryStates.size())
                              ? growPrimaryStates(F)
                              : PrimaryStates[F];
  return stepBurstySamplerHooked(State, RT.config().PrimarySchedule,
                                 Hooks{*this});
}

LR_CACHE_ALIGNED_FN uint16_t ThreadContext::computeSampleMask(FunctionId F) {
  // Function entry is a perturbation point of the schedule fuzzer: the
  // dispatch check is exactly where the paper's instrumentation gains
  // control, so hooking here covers every workload with no changes.
  if (LR_UNLIKELY(Perturber != nullptr))
    Perturber->perturb(PerturbPoint::FunctionEntry, *this);
  switch (RT.mode()) {
  case RunMode::Baseline:
    return 0;
  case RunMode::DispatchOnly:
  case RunMode::SyncLogging:
    // The dispatch check runs (we are measuring its cost, §5.4 Fig. 6),
    // but memory logging stays off.
    (void)stepPrimary(F);
    return 0;
  case RunMode::LiteRace:
    return stepPrimary(F) ? uint16_t{1} : uint16_t{0};
  case RunMode::FullLogging:
    // No dispatch check exists in this mode; every activation runs the
    // instrumented copy — sampled by definition.
    if (TelSlab)
      telemetry::bumpCell(*SampledCell);
    return FullLogMaskBit;
  case RunMode::Experiment: {
    // §5.3 methodology: log everything, and additionally record each
    // attached sampler's dispatch decision for this activation.
    uint16_t Mask = FullLogMaskBit;
    const unsigned N = RT.numSamplers();
    for (unsigned Slot = 0; Slot != N; ++Slot)
      if (RT.sampler(Slot).shouldSample(*this, F))
        Mask |= static_cast<uint16_t>(1u << Slot);
    if (TelSlab)
      telemetry::bumpCell(*SampledCell);
    return Mask;
  }
  }
  literaceUnreachable("invalid RunMode");
}

void ThreadContext::logMemory(EventKind K, const void *Addr, Pc P,
                              uint16_t Mask) {
  assert(isMemoryKind(K) && "logMemory expects Read or Write");
  // Memory-op granularity perturbation (never in logSync: the AtomicU64
  // primitive calls that while holding its spinlock).
  if (LR_UNLIKELY(Perturber != nullptr))
    Perturber->perturb(PerturbPoint::MemoryOp, *this);
  EventRecord R;
  R.Addr = reinterpret_cast<uint64_t>(Addr);
  R.Pc = P;
  R.Tid = Tid;
  R.Kind = K;
  R.Mask = Mask;
  append(R);

  ++Stats.MemOpsLogged;
  if (TelSlab)
    TelSlab->add(RT.metricIds().MemOpsLogged);
  uint16_t SlotBits = static_cast<uint16_t>(Mask & ~FullLogMaskBit);
  while (SlotBits) {
    unsigned Slot = static_cast<unsigned>(__builtin_ctz(SlotBits));
    ++Stats.MemOpsPerSlot[Slot];
    SlotBits &= static_cast<uint16_t>(SlotBits - 1);
  }
}

void ThreadContext::logSync(EventKind K, SyncVar S, Pc P) {
  if (!RT.syncLoggingEnabled())
    return;
  EventRecord R;
  R.Addr = S;
  R.Pc = P;
  R.Ts = RT.timestamps().draw(S);
  R.Tid = Tid;
  R.Kind = K;
  append(R);
  ++Stats.SyncOps;
  if (TelSlab)
    TelSlab->add(RT.metricIds().SyncOpsLogged);
}

void ThreadContext::append(const EventRecord &R) {
  Buffer.push_back(R);
  if (LR_UNLIKELY(Buffer.size() >= RT.config().ThreadBufferRecords))
    flush();
}
