//===-- runtime/ThreadContext.cpp - Per-thread runtime state -------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadContext.h"

#include "support/Hashing.h"

using namespace literace;

ThreadContext::ThreadContext(Runtime &RT)
    : RT(RT), Tid(RT.allocateThreadId()),
      Rng(mix64(RT.config().Seed ^ (static_cast<uint64_t>(Tid) << 32))) {
  Buffer.reserve(RT.config().ThreadBufferRecords);
  if (RT.syncLoggingEnabled()) {
    EventRecord R;
    R.Kind = EventKind::ThreadStart;
    R.Tid = Tid;
    append(R);
  }
}

ThreadContext::~ThreadContext() {
  if (RT.syncLoggingEnabled()) {
    EventRecord R;
    R.Kind = EventKind::ThreadEnd;
    R.Tid = Tid;
    append(R);
  }
  flush();
  RT.accumulateStats(Stats);
}

void ThreadContext::flush() {
  if (Buffer.empty())
    return;
  if (LogSink *Sink = RT.sink())
    Sink->writeChunk(Tid, Buffer.data(), Buffer.size());
  Buffer.clear();
}

SamplerFnState &ThreadContext::localSamplerState(unsigned Slot,
                                                 FunctionId F) {
  assert(Slot < MaxSamplerSlots && "sampler slot out of range");
  if (Slot >= LocalStates.size())
    LocalStates.resize(Slot + 1);
  auto &Table = LocalStates[Slot];
  if (F >= Table.size())
    Table.resize(F + 1);
  return Table[F];
}

bool ThreadContext::stepPrimary(FunctionId F) {
  if (F >= PrimaryStates.size())
    PrimaryStates.resize(F + 1);
  return stepBurstySampler(PrimaryStates[F], RT.config().PrimarySchedule);
}

uint16_t ThreadContext::computeSampleMask(FunctionId F) {
  switch (RT.mode()) {
  case RunMode::Baseline:
    return 0;
  case RunMode::DispatchOnly:
  case RunMode::SyncLogging:
    // The dispatch check runs (we are measuring its cost, §5.4 Fig. 6),
    // but memory logging stays off.
    (void)stepPrimary(F);
    return 0;
  case RunMode::LiteRace:
    return stepPrimary(F) ? uint16_t{1} : uint16_t{0};
  case RunMode::FullLogging:
    return FullLogMaskBit;
  case RunMode::Experiment: {
    // §5.3 methodology: log everything, and additionally record each
    // attached sampler's dispatch decision for this activation.
    uint16_t Mask = FullLogMaskBit;
    const unsigned N = RT.numSamplers();
    for (unsigned Slot = 0; Slot != N; ++Slot)
      if (RT.sampler(Slot).shouldSample(*this, F))
        Mask |= static_cast<uint16_t>(1u << Slot);
    return Mask;
  }
  }
  literaceUnreachable("invalid RunMode");
}

void ThreadContext::logMemory(EventKind K, const void *Addr, Pc P,
                              uint16_t Mask) {
  assert(isMemoryKind(K) && "logMemory expects Read or Write");
  EventRecord R;
  R.Addr = reinterpret_cast<uint64_t>(Addr);
  R.Pc = P;
  R.Tid = Tid;
  R.Kind = K;
  R.Mask = Mask;
  append(R);

  ++Stats.MemOpsLogged;
  uint16_t SlotBits = static_cast<uint16_t>(Mask & ~FullLogMaskBit);
  while (SlotBits) {
    unsigned Slot = static_cast<unsigned>(__builtin_ctz(SlotBits));
    ++Stats.MemOpsPerSlot[Slot];
    SlotBits &= static_cast<uint16_t>(SlotBits - 1);
  }
}

void ThreadContext::logSync(EventKind K, SyncVar S, Pc P) {
  if (!RT.syncLoggingEnabled())
    return;
  EventRecord R;
  R.Addr = S;
  R.Pc = P;
  R.Ts = RT.timestamps().draw(S);
  R.Tid = Tid;
  R.Kind = K;
  append(R);
  ++Stats.SyncOps;
}

void ThreadContext::append(const EventRecord &R) {
  Buffer.push_back(R);
  if (LR_UNLIKELY(Buffer.size() >= RT.config().ThreadBufferRecords))
    flush();
}
