//===-- runtime/Samplers.h - Memory-access sampling strategies -*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sampling strategies evaluated in the paper (Table 3):
///
///   TL-Ad  thread-local adaptive bursty (the LiteRace sampler, §3.4)
///   TL-Fx  thread-local fixed-rate bursty (5%)
///   G-Ad   global adaptive bursty
///   G-Fx   global fixed-rate bursty (10%)
///   Rnd10  random 10% of dynamic calls
///   Rnd25  random 25% of dynamic calls
///   UCP    un-cold-region: everything except the first 10 calls per
///          function per thread
///
/// A sampler decides, at function entry, whether this call runs the
/// instrumented copy (memory operations logged) or the uninstrumented copy.
/// Bursty samplers sample several consecutive executions; adaptive samplers
/// progressively back off a region's sampling rate each time it is sampled,
/// down to a floor, implementing the cold-region hypothesis.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_RUNTIME_SAMPLERS_H
#define LITERACE_RUNTIME_SAMPLERS_H

#include "runtime/Ids.h"
#include "support/Compiler.h"
#include "support/SplitMix64.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace literace {

class ThreadContext;

/// Per-(sampler, function) counter block. Thread-local samplers keep one of
/// these per thread in the ThreadContext; global samplers keep a shared one
/// per function. Mirrors the paper's "frequency counter" (Calls) and
/// "sampling counter" (SkipRemaining/BurstRemaining) of §4.1.
struct SamplerFnState {
  /// Number of times this function has been entered (frequency counter).
  uint32_t Calls = 0;
  /// Calls left to skip before the next burst begins.
  uint32_t SkipRemaining = 0;
  /// Calls left in the current burst (0 when not in a burst).
  uint32_t BurstRemaining = 0;
  /// Index into the back-off schedule's rate list.
  uint8_t RateIndex = 0;
};

/// A bursty back-off schedule: Rates[i] is the sampling rate in effect
/// after i completed bursts (clamped to the last entry, the floor rate).
struct AdaptiveSchedule {
  std::vector<double> Rates{1.0};
  uint32_t BurstLength = 10;

  /// The paper's thread-local adaptive schedule: 100%, 10%, 1%, 0.1%.
  static AdaptiveSchedule threadLocalDefault();
  /// The paper's global adaptive schedule: 100%, 50%, 25%, ... down to
  /// a 0.1% floor (halving back-off, per §5.2).
  static AdaptiveSchedule globalDefault();
  /// A fixed-rate bursty schedule (single rate, no back-off).
  static AdaptiveSchedule fixedRate(double Rate, uint32_t BurstLength = 10);

  /// Number of calls to skip between bursts at rate Rates[RateIndex], so
  /// that the long-run sampling rate converges to that rate.
  uint32_t gapAfterBurst(uint8_t RateIndex) const;
};

/// Saturating bump of the frequency counter: Calls parks at UINT32_MAX
/// instead of wrapping to 0 after 2^32 entries. A wrap would make a
/// 4-billion-call function look freshly cold again — UnColdRegionSampler
/// would stop sampling it for ColdCalls entries, and any schedule keyed
/// off Calls would restart its back-off. Branch-free: the comparison
/// result (0 or 1) is the increment.
LR_ALWAYS_INLINE void bumpCallsSaturating(SamplerFnState &State) {
  State.Calls += (State.Calls != ~uint32_t{0});
}

/// No-op observer for stepBurstySamplerHooked: compiles away entirely,
/// leaving the plain state machine.
struct NoSamplerHooks {
  void sampled() {}
  void gapScheduled(uint32_t) {}
  void backedOff(uint8_t) {}
};

/// Advances one bursty-sampler state machine step for a function entry and
/// returns whether this call is sampled. Shared by the thread-local and
/// global bursty samplers and by the LiteRace fast path. Inline because it
/// IS the dispatch check's cost (§4.1: 8 instructions, 3 memory
/// references); the steady-state gap countdown compiles to a handful of
/// instructions while the back-off arithmetic stays out of line in
/// AdaptiveSchedule::gapAfterBurst.
///
/// \p Hooks observes the state machine's transitions without touching its
/// hot path: sampled() fires on every sampled call (rare by construction
/// once the schedule backs off), gapScheduled(Gap) fires when a gap of
/// \p Gap unsampled calls is scheduled (the cold burst-boundary moment),
/// and backedOff(NewRateIndex) fires when the adaptive rate steps down.
/// The gap countdown itself — the 99.9%+ steady-state path — runs no hook
/// at all, which is what lets the telemetry build keep the dispatch check
/// at its uninstrumented cost (docs/TELEMETRY.md).
template <typename HooksT>
LR_ALWAYS_INLINE bool stepBurstySamplerHooked(SamplerFnState &State,
                                              const AdaptiveSchedule &Sched,
                                              HooksT &&Hooks) {
  bumpCallsSaturating(State);

  // Continue an in-progress burst. Unlikely in steady state: once the
  // schedule backs off, gaps outnumber burst calls by orders of magnitude,
  // so the gap countdown below must be the straight-line path.
  if (LR_UNLIKELY(State.BurstRemaining > 0)) {
    if (--State.BurstRemaining == 0) {
      // Burst complete: back off the rate and schedule the next gap.
      if (State.RateIndex + 1u < Sched.Rates.size()) {
        ++State.RateIndex;
        Hooks.backedOff(State.RateIndex);
      }
      State.SkipRemaining = Sched.gapAfterBurst(State.RateIndex);
      Hooks.gapScheduled(State.SkipRemaining);
    }
    Hooks.sampled();
    return true;
  }

  // Inside the gap between bursts.
  if (LR_LIKELY(State.SkipRemaining > 0)) {
    --State.SkipRemaining;
    return false;
  }

  // Begin a new burst. This call is its first sampled execution, so a burst
  // of length L leaves L-1 further sampled calls.
  if (Sched.BurstLength <= 1) {
    if (State.RateIndex + 1u < Sched.Rates.size()) {
      ++State.RateIndex;
      Hooks.backedOff(State.RateIndex);
    }
    State.SkipRemaining = Sched.gapAfterBurst(State.RateIndex);
    Hooks.gapScheduled(State.SkipRemaining);
    Hooks.sampled();
    return true;
  }
  State.BurstRemaining = Sched.BurstLength - 1;
  Hooks.sampled();
  return true;
}

/// The plain (unobserved) bursty sampler step.
inline bool stepBurstySampler(SamplerFnState &State,
                              const AdaptiveSchedule &Sched) {
  return stepBurstySamplerHooked(State, Sched, NoSamplerHooks{});
}

/// Abstract sampling strategy, evaluated once per function entry.
class Sampler {
public:
  Sampler(std::string ShortName, std::string Description);
  virtual ~Sampler();

  /// Decides whether this entry of \p F by \p TC's thread is sampled.
  virtual bool shouldSample(ThreadContext &TC, FunctionId F) = 0;

  /// Clears any global state so the sampler can be reused for a fresh run.
  /// Thread-local state lives in ThreadContexts and dies with them.
  virtual void reset();

  const std::string &shortName() const { return ShortName; }
  const std::string &description() const { return Description; }

  /// Slot index within the runtime's sampler suite (set by Runtime).
  unsigned slot() const { return Slot; }
  void setSlot(unsigned S) { Slot = S; }

private:
  std::string ShortName;
  std::string Description;
  unsigned Slot = 0;
};

/// Bursty sampler with per-thread per-function state (TL-Ad, TL-Fx).
class ThreadLocalBurstySampler : public Sampler {
public:
  ThreadLocalBurstySampler(std::string ShortName, std::string Description,
                           AdaptiveSchedule Sched);

  bool shouldSample(ThreadContext &TC, FunctionId F) override;

  const AdaptiveSchedule &schedule() const { return Sched; }

private:
  AdaptiveSchedule Sched;
};

/// Bursty sampler with per-function state shared across threads (G-Ad,
/// G-Fx). This is the SWAT-style sampler the paper compares against: a
/// region hot in any thread is considered hot for all threads.
///
/// Concurrency: a single global mutex here serializes *every* function
/// entry of every thread — a lock convoy that distorts the Table 5
/// overhead comparison for the G-* samplers. Instead, per-function state
/// lives in lazily allocated fixed blocks (published once via an atomic
/// pointer and never moved, so readers need no lock to find a state) and
/// the state machine itself is guarded by one of NumStripes mutexes keyed
/// by function id. Entries of the same function still serialize — the
/// state machine demands it, and that preserves the exact per-function
/// decision sequence of the single-lock version — but entries of
/// different functions proceed in parallel with 1/NumStripes collision
/// probability.
class GlobalBurstySampler : public Sampler {
public:
  GlobalBurstySampler(std::string ShortName, std::string Description,
                      AdaptiveSchedule Sched);
  ~GlobalBurstySampler() override;

  bool shouldSample(ThreadContext &TC, FunctionId F) override;
  void reset() override;

private:
  /// Stripe count: power of two, enough that 8-16 threads rarely collide.
  static constexpr size_t NumStripes = 64;
  /// States per lazily-allocated block; blocks never move once published.
  static constexpr size_t BlockSize = 1024;
  /// Upper bound on function ids (BlockSize * MaxBlocks = 4M functions).
  static constexpr size_t MaxBlocks = 4096;

  struct alignas(64) Stripe {
    std::mutex Lock;
  };

  /// Returns the state cell for \p F, allocating its block on first use.
  SamplerFnState &stateFor(FunctionId F);

  AdaptiveSchedule Sched;
  Stripe Stripes[NumStripes];
  std::mutex GrowthLock;
  std::atomic<SamplerFnState *> Blocks[MaxBlocks] = {};
};

/// Samples each dynamic call independently with fixed probability; not
/// bursty (Rnd10, Rnd25).
class RandomSampler : public Sampler {
public:
  RandomSampler(std::string ShortName, std::string Description, double Rate);

  bool shouldSample(ThreadContext &TC, FunctionId F) override;

  double rate() const { return Rate; }

private:
  double Rate;
};

/// Logs everything EXCEPT the first \p ColdCalls calls of each function in
/// each thread (UCP). Evaluates the cold-region hypothesis by inverting it.
class UnColdRegionSampler : public Sampler {
public:
  explicit UnColdRegionSampler(uint32_t ColdCalls = 10);

  bool shouldSample(ThreadContext &TC, FunctionId F) override;

private:
  uint32_t ColdCalls;
};

/// Samples every call; reference sampler for tests.
class AlwaysSampler : public Sampler {
public:
  AlwaysSampler();
  bool shouldSample(ThreadContext &TC, FunctionId F) override;
};

/// Samples no calls; reference sampler for tests.
class NeverSampler : public Sampler {
public:
  NeverSampler();
  bool shouldSample(ThreadContext &TC, FunctionId F) override;
};

/// Builds the seven samplers of Table 3 in the paper's order: TL-Ad, TL-Fx,
/// G-Ad, G-Fx, Rnd10, Rnd25, UCP.
std::vector<std::unique_ptr<Sampler>> makeStandardSamplers();

} // namespace literace

#endif // LITERACE_RUNTIME_SAMPLERS_H
