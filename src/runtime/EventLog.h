//===-- runtime/EventLog.h - Event streams and log sinks --------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Log storage for the LiteRace profiler (paper §4.4). Each thread buffers
/// its events locally and flushes fixed-size chunks to a LogSink. Chunks
/// from one thread arrive in program order, so a sink can reassemble exact
/// per-thread event streams. Sinks: in-memory (for the detection
/// experiments), the legacy v1 file sink, the crash-consistent v2
/// segmented file sink, and a counting null sink.
///
/// Reading back goes through readTrace(), which accepts every on-disk
/// format and — unlike the strict legacy readers — salvages damaged
/// files: it recovers every intact checksummed segment, drops corrupt or
/// truncated ones, and reports exact per-thread coverage accounting in a
/// TraceReadResult instead of failing the whole file
/// (docs/ROBUSTNESS.md).
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_RUNTIME_EVENTLOG_H
#define LITERACE_RUNTIME_EVENTLOG_H

#include "runtime/Ids.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace literace {

class ByteOutput;
namespace telemetry {
class MetricsRegistry;
}

/// True on a thread that serves as a dedicated trace flusher (set by
/// AsyncLogSink around its consumer loop). Sinks use it to classify
/// writes as application-thread vs flusher-thread in telemetry, which is
/// how "async mode removes write() calls from application threads" is
/// verified rather than assumed.
bool isTraceFlusherThread();
void setTraceFlusherThread(bool Value);

/// A complete logged execution: one event stream per thread, in program
/// order, plus the runtime configuration the detector must agree on.
struct Trace {
  /// Number of timestamp counters the producing runtime used.
  unsigned NumTimestampCounters = 128;
  /// PerThread[Tid] is the program-order event stream of thread Tid.
  std::vector<std::vector<EventRecord>> PerThread;

  /// Total number of records across all threads.
  size_t totalEvents() const;
  /// Number of Read/Write records across all threads.
  size_t memoryOps() const;
  /// Number of sync records (Acquire/Release/AcqRel/Alloc/Free).
  size_t syncOps() const;
  /// Number of memory records whose mask includes sampler \p Slot.
  size_t memoryOpsForSlot(unsigned Slot) const;
};

/// Destination for flushed event chunks. Implementations must tolerate
/// concurrent writeChunk calls from different threads.
class LogSink {
public:
  virtual ~LogSink();

  /// Appends \p Count records produced by thread \p Tid. Successive calls
  /// with the same Tid carry consecutive slices of that thread's stream.
  virtual void writeChunk(ThreadId Tid, const EventRecord *Records,
                          size_t Count) = 0;

  /// Flushes any buffered state (no-op by default).
  virtual void flush();

  /// Tells the sink that \p Count records from thread \p Tid were lost
  /// upstream before reaching it (e.g. dropped by an AsyncLogSink under
  /// FlushPolicy::Drop). Durable sinks fold the loss into their own
  /// accounting so readers see the trace as incomplete; default no-op.
  virtual void noteLostChunk(ThreadId Tid, size_t Count);

  /// Total payload bytes accepted so far.
  uint64_t bytesWritten() const {
    return Bytes.load(std::memory_order_relaxed);
  }

protected:
  void addBytes(uint64_t N) { Bytes.fetch_add(N, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Bytes{0};
};

/// Collects the full trace in memory, for offline analysis in-process.
class MemorySink : public LogSink {
public:
  /// \p NumTimestampCounters is recorded into the produced Trace.
  explicit MemorySink(unsigned NumTimestampCounters = 128);

  void writeChunk(ThreadId Tid, const EventRecord *Records,
                  size_t Count) override;

  /// Moves the accumulated trace out of the sink. Call after all producing
  /// threads have finished.
  Trace takeTrace();

private:
  unsigned NumTimestampCounters;
  std::mutex Lock;
  std::vector<std::vector<EventRecord>> PerThread;
};

/// Streams chunks to a binary log file. Format: FileHeader, then a sequence
/// of ChunkHeader + records. Readable with readTraceFile().
class FileSink : public LogSink {
public:
  /// Opens \p Path for writing. Check ok() before use.
  FileSink(const std::string &Path, unsigned NumTimestampCounters = 128);
  ~FileSink() override;

  /// True if the file opened and the header was written.
  bool ok() const { return File != nullptr; }

  void writeChunk(ThreadId Tid, const EventRecord *Records,
                  size_t Count) override;
  void flush() override;

  /// Flushes and closes the file; further writes are invalid.
  void close();

private:
  std::mutex Lock;
  std::FILE *File = nullptr;
};

/// Discards all records but counts bytes; used to measure pure logging CPU
/// cost without filesystem noise.
class NullSink : public LogSink {
public:
  void writeChunk(ThreadId Tid, const EventRecord *Records,
                  size_t Count) override;
};

/// Streams chunks to a v2 *segmented* log file (docs/LOG_FORMAT.md): each
/// chunk becomes one or more self-describing frames carrying a magic,
/// thread id, event count, payload length, and CRC32C checksums over both
/// header and payload. Frames are written unbuffered, so every segment
/// that writeChunk() completed is durable even if the process is later
/// SIGKILLed; a footer frame is sealed only by a clean close(). Transient
/// write failures (EINTR, short writes) are retried with bounded
/// exponential backoff; a hard failure parks the sink (ok() turns false)
/// and subsequent chunks are counted as dropped rather than corrupting
/// the stream.
class SegmentedFileSink : public LogSink {
public:
  struct Options {
    /// Encode segment payloads with the per-segment delta/varint codec
    /// (each segment is self-contained; see CompressedLog.h).
    bool Compress = false;
    /// Retry budget for transient failures and short writes per frame.
    unsigned MaxRetries = 8;
    /// Byte-layer override for fault injection; null opens
    /// FileByteOutput(Path). Must outlive the sink.
    ByteOutput *Output = nullptr;
    /// Telemetry registry override (tests); null resolves the process
    /// registry unless the kill switch disables telemetry.
    telemetry::MetricsRegistry *Metrics = nullptr;
  };

  SegmentedFileSink(const std::string &Path, unsigned NumTimestampCounters,
                    const Options &Opts);
  explicit SegmentedFileSink(const std::string &Path,
                             unsigned NumTimestampCounters = 128);
  ~SegmentedFileSink() override;

  /// True if the output opened, the file header was written, and no hard
  /// write failure has occurred.
  bool ok() const;

  void writeChunk(ThreadId Tid, const EventRecord *Records,
                  size_t Count) override;
  void flush() override;
  /// Upstream loss (async Drop policy): folded into eventsDropped(), the
  /// footer's dropped-event count, and close()'s verdict.
  void noteLostChunk(ThreadId Tid, size_t Count) override;

  /// Seals the footer frame and closes the output. Returns false if any
  /// data was lost to write failures. Idempotent.
  bool close();

  /// Test hook simulating a crash: drops the output without sealing the
  /// footer. Everything already written stays on disk.
  void abandon();

  uint64_t segmentsWritten() const { return Segments; }
  uint64_t eventsWritten() const { return Events; }
  /// Transient-failure / short-write retries performed.
  uint64_t retries() const { return Retries; }
  /// Events dropped because the output hard-failed, plus upstream losses
  /// reported via noteLostChunk().
  uint64_t eventsDropped() const { return Dropped; }
  /// writeChunk() calls made by application threads vs dedicated flusher
  /// threads (isTraceFlusherThread()). In async mode the app count must
  /// be zero — bench/micro_dispatch --check-async-flush enforces it.
  uint64_t appThreadWrites() const { return AppWrites; }
  uint64_t flusherThreadWrites() const { return FlusherWrites; }

private:
  bool writeFrame(ThreadId Tid, const EventRecord *Records, size_t Count);
  bool writeAll(const void *Data, size_t Size);

  std::mutex Lock;
  std::unique_ptr<ByteOutput> Owned;
  ByteOutput *Out = nullptr;
  bool Compress;
  unsigned MaxRetries;
  bool HeaderOk = false;
  bool Failed = false;
  bool Closed = false;
  uint64_t Segments = 0;
  uint64_t Events = 0;
  uint64_t Retries = 0;
  uint64_t Dropped = 0;
  uint64_t AppWrites = 0;
  uint64_t FlusherWrites = 0;
  std::vector<uint8_t> Frame;
  std::vector<EventRecord> Slice;
  telemetry::MetricsRegistry *Metrics = nullptr;
};

/// On-disk format of a trace file, as sniffed by readTrace().
enum class TraceFormat : uint8_t {
  Unknown = 0,
  V1Raw,        ///< FileSink: unframed header + chunk stream
  V1Compressed, ///< CompressedFileSink: whole-file per-thread streams
  V2Segmented,  ///< SegmentedFileSink: checksummed frames + footer
};

const char *traceFormatName(TraceFormat F);

/// Coverage accounting of one read: what was recovered, what was
/// provably lost, and whether the producer shut down cleanly.
struct TraceReadStats {
  TraceFormat Format = TraceFormat::Unknown;
  /// Intact frames decoded (v2) or chunks/streams decoded (v1).
  uint64_t SegmentsRecovered = 0;
  /// Frames dropped for bad CRC, malformed records, or truncation; for
  /// v1, damaged-tail regions.
  uint64_t SegmentsDropped = 0;
  uint64_t EventsRecovered = 0;
  uint64_t BytesDropped = 0;
  /// v2: the footer frame was present and valid at end-of-file. v1 has
  /// no footer; set when the file parsed completely.
  bool CleanShutdown = false;
  /// The file ended inside a frame (producer died mid-write).
  bool TruncatedTail = false;
  /// v2: events the *writer* itself discarded (write failures or async
  /// Drop-policy backpressure), as recorded in the footer. These bytes
  /// never reached the file, so they appear in no other counter; any
  /// nonzero value makes the read Salvaged.
  uint64_t EventsDroppedByWriter = 0;
  /// v2: the footer's totals disagree with what an otherwise-clean read
  /// recovered — the file was tampered with or mis-assembled.
  bool FooterTotalsMismatch = false;
  /// The file header itself was damaged and segments were recovered by
  /// scanning (v2 only).
  bool SalvagedHeader = false;
  /// Events recovered / frames dropped, indexed by thread id.
  std::vector<uint64_t> PerThreadRecovered;
  std::vector<uint64_t> PerThreadDropped;
};

enum class TraceReadStatus : uint8_t {
  Ok,        ///< every byte accounted for, clean shutdown
  Salvaged,  ///< a coherent partial trace was recovered
  Unreadable ///< not a literace log, or salvage found nothing
};

/// Result of readTrace(): the recovered trace plus coverage accounting.
/// Never reports success with silently missing data — any loss shows up
/// in Stats and flips Status to Salvaged.
struct TraceReadResult {
  TraceReadStatus Status = TraceReadStatus::Unreadable;
  Trace T;
  TraceReadStats Stats;
  /// Human-readable reason when Unreadable (or the salvage note).
  std::string Error;

  bool readable() const { return Status != TraceReadStatus::Unreadable; }
};

struct TraceReadOptions {
  /// When false, any imperfection (bad CRC, truncation, missing footer)
  /// makes the read Unreadable instead of Salvaged.
  bool Salvage = true;
  /// Telemetry override; the reader folds trace.segments.recovered /
  /// trace.segments.dropped counters into the resolved registry.
  telemetry::MetricsRegistry *Metrics = nullptr;
};

/// Reads any literace log format back into a Trace, salvaging damaged v2
/// files frame by frame (and v1 files by longest valid prefix). Never
/// throws and never aborts on malformed bytes.
TraceReadResult readTrace(const std::string &Path,
                          const TraceReadOptions &Options = TraceReadOptions());

/// Incremental decoder for a v2 segmented byte *stream* (the same frames
/// SegmentedFileSink writes to disk, arriving over a socket or pipe in
/// arbitrary read sizes). Used by literace-collectd's per-connection
/// readers: feed() consumes bytes as they arrive, take() yields decoded
/// (thread, records) chunks in stream order, and the same salvage rules
/// as readTrace() apply — a damaged frame is dropped and resynced over
/// with exact accounting, never trusted into the decoded stream. finish()
/// closes the stream (connection EOF) and settles the coverage stats:
/// CleanShutdown is true iff the footer frame was the last bytes seen,
/// exactly like a cleanly closed file.
class SegmentStreamDecoder {
public:
  /// One decoded segment: a slice of thread \p Tid's program-order stream.
  struct Chunk {
    ThreadId Tid = 0;
    std::vector<EventRecord> Records;
  };

  SegmentStreamDecoder();
  ~SegmentStreamDecoder();

  /// Consumes \p Size bytes of the stream. Decoded chunks become
  /// available via take(); damaged regions fold into stats().
  void feed(const void *Data, size_t Size);

  /// Signals end-of-stream. Any buffered partial frame is accounted as a
  /// truncated tail. Idempotent; feed() after finish() is ignored.
  void finish();

  /// Declares an upstream hole of \p ShedBytes that will never arrive (a
  /// resuming client shed them at its spool cap; docs/ROBUSTNESS.md).
  /// The shed bytes fold into BytesDropped *exactly* — resyncing alone
  /// would only count the seam residue it happens to scan over — and any
  /// buffered partial frame is dropped with them, since its remainder is
  /// gone. The hole plus the following resync count as one damage
  /// episode, the same discipline a corrupt region gets.
  void noteGap(uint64_t ShedBytes);

  /// Pops the next decoded chunk (FIFO). False when none are pending.
  bool take(Chunk &Out);

  /// True once a valid v2 file header was consumed (or salvage gave up on
  /// one and started resyncing on frame magics).
  bool headerSeen() const { return HeaderSeen; }

  /// Timestamp-counter count from the stream header (128 if the header
  /// was damaged — the writer default).
  unsigned numTimestampCounters() const { return NumCounters; }

  /// True once the footer frame was decoded (clean writer shutdown).
  bool footerSeen() const { return FooterSeen; }

  /// Coverage accounting, live during the stream and settled by finish().
  const TraceReadStats &stats() const { return Stats; }

  /// Raw bytes accepted by feed() so far.
  uint64_t bytesConsumed() const { return BytesFed; }

private:
  void parse();

  std::vector<uint8_t> Buffer;
  size_t Offset = 0; ///< consumed prefix of Buffer
  std::vector<Chunk> Ready;
  size_t ReadyHead = 0;
  TraceReadStats Stats;
  unsigned NumCounters = 128;
  uint64_t BytesFed = 0;
  bool HeaderSeen = false;
  bool FooterSeen = false;
  bool LastDecodedWasFooter = false;
  bool ResyncOpen = false; ///< current damage episode already counted
  bool Finished = false;
  uint64_t FooterTotalEvents = 0;
  uint64_t FooterTotalSegments = 0;
  uint64_t FooterDroppedEvents = 0;
};

/// One frame of a v2 segmented file, as seen by the scanner
/// (literace-fsck's inventory).
struct SegmentInfo {
  uint64_t Offset = 0;
  uint32_t Tid = 0;
  uint32_t EventCount = 0;
  uint32_t PayloadBytes = 0;
  uint8_t Encoding = 0;
  bool IsFooter = false;
  bool HeaderOk = false;
  bool PayloadOk = false;
};

/// Scans a v2 segmented file and returns its frame inventory (empty for
/// other formats or unreadable files). Tolerates arbitrary damage.
std::vector<SegmentInfo> scanSegments(const std::string &Path);

/// Reads a log file written by FileSink back into a Trace. Returns
/// std::nullopt if the file is missing or malformed. Strict v1 reader;
/// prefer readTrace() for anything user-supplied.
std::optional<Trace> readTraceFile(const std::string &Path);

} // namespace literace

#endif // LITERACE_RUNTIME_EVENTLOG_H
