//===-- runtime/EventLog.h - Event streams and log sinks --------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Log storage for the LiteRace profiler (paper §4.4). Each thread buffers
/// its events locally and flushes fixed-size chunks to a LogSink. Chunks
/// from one thread arrive in program order, so a sink can reassemble exact
/// per-thread event streams. Three sinks are provided: in-memory (for the
/// detection experiments), file-backed (for the §5.4 log-size measurements),
/// and a counting null sink.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_RUNTIME_EVENTLOG_H
#define LITERACE_RUNTIME_EVENTLOG_H

#include "runtime/Ids.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace literace {

/// A complete logged execution: one event stream per thread, in program
/// order, plus the runtime configuration the detector must agree on.
struct Trace {
  /// Number of timestamp counters the producing runtime used.
  unsigned NumTimestampCounters = 128;
  /// PerThread[Tid] is the program-order event stream of thread Tid.
  std::vector<std::vector<EventRecord>> PerThread;

  /// Total number of records across all threads.
  size_t totalEvents() const;
  /// Number of Read/Write records across all threads.
  size_t memoryOps() const;
  /// Number of sync records (Acquire/Release/AcqRel/Alloc/Free).
  size_t syncOps() const;
  /// Number of memory records whose mask includes sampler \p Slot.
  size_t memoryOpsForSlot(unsigned Slot) const;
};

/// Destination for flushed event chunks. Implementations must tolerate
/// concurrent writeChunk calls from different threads.
class LogSink {
public:
  virtual ~LogSink();

  /// Appends \p Count records produced by thread \p Tid. Successive calls
  /// with the same Tid carry consecutive slices of that thread's stream.
  virtual void writeChunk(ThreadId Tid, const EventRecord *Records,
                          size_t Count) = 0;

  /// Flushes any buffered state (no-op by default).
  virtual void flush();

  /// Total payload bytes accepted so far.
  uint64_t bytesWritten() const {
    return Bytes.load(std::memory_order_relaxed);
  }

protected:
  void addBytes(uint64_t N) { Bytes.fetch_add(N, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Bytes{0};
};

/// Collects the full trace in memory, for offline analysis in-process.
class MemorySink : public LogSink {
public:
  /// \p NumTimestampCounters is recorded into the produced Trace.
  explicit MemorySink(unsigned NumTimestampCounters = 128);

  void writeChunk(ThreadId Tid, const EventRecord *Records,
                  size_t Count) override;

  /// Moves the accumulated trace out of the sink. Call after all producing
  /// threads have finished.
  Trace takeTrace();

private:
  unsigned NumTimestampCounters;
  std::mutex Lock;
  std::vector<std::vector<EventRecord>> PerThread;
};

/// Streams chunks to a binary log file. Format: FileHeader, then a sequence
/// of ChunkHeader + records. Readable with readTraceFile().
class FileSink : public LogSink {
public:
  /// Opens \p Path for writing. Check ok() before use.
  FileSink(const std::string &Path, unsigned NumTimestampCounters = 128);
  ~FileSink() override;

  /// True if the file opened and the header was written.
  bool ok() const { return File != nullptr; }

  void writeChunk(ThreadId Tid, const EventRecord *Records,
                  size_t Count) override;
  void flush() override;

  /// Flushes and closes the file; further writes are invalid.
  void close();

private:
  std::mutex Lock;
  std::FILE *File = nullptr;
};

/// Discards all records but counts bytes; used to measure pure logging CPU
/// cost without filesystem noise.
class NullSink : public LogSink {
public:
  void writeChunk(ThreadId Tid, const EventRecord *Records,
                  size_t Count) override;
};

/// Reads a log file written by FileSink back into a Trace. Returns
/// std::nullopt if the file is missing or malformed.
std::optional<Trace> readTraceFile(const std::string &Path);

} // namespace literace

#endif // LITERACE_RUNTIME_EVENTLOG_H
