//===-- runtime/TimestampManager.h - Hashed logical clocks ------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Logical timestamps for synchronization operations (paper §4.2).
///
/// A single global counter would serialize every synchronization operation
/// in the program; LiteRace instead uses one of 128 counters selected by a
/// hash of the SyncVar. Timestamps drawn from the same counter are totally
/// ordered, which is all the offline detector needs: operations on the same
/// SyncVar always hash to the same counter, so their logged timestamps
/// reflect their real serialization order.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_RUNTIME_TIMESTAMPMANAGER_H
#define LITERACE_RUNTIME_TIMESTAMPMANAGER_H

#include "runtime/Ids.h"
#include "support/Hashing.h"

#include <atomic>
#include <cassert>
#include <memory>

namespace literace {

/// Maps a SyncVar to its timestamp counter index. Shared between the
/// runtime (writing logs) and the offline detector (replaying them); the
/// two must agree or replay cannot reconstruct the serialization order.
inline unsigned counterForSyncVar(SyncVar S, unsigned NumCounters) {
  assert(NumCounters != 0 && (NumCounters & (NumCounters - 1)) == 0 &&
         "counter count must be a power of two");
  return static_cast<unsigned>(mix64(S)) & (NumCounters - 1);
}

/// A bank of atomic logical-timestamp counters indexed by hash(SyncVar).
class TimestampManager {
public:
  /// Creates \p NumCounters counters; must be a power of two. The paper
  /// uses 128; the ablation bench sweeps this.
  explicit TimestampManager(unsigned NumCounters = 128)
      : Count(NumCounters),
        Counters(std::make_unique<PaddedCounter[]>(NumCounters)) {
    assert(NumCounters != 0 && (NumCounters & (NumCounters - 1)) == 0 &&
           "counter count must be a power of two");
  }

  /// Returns the counter index a SyncVar maps to. The offline detector uses
  /// the same function to regroup sync events by counter.
  unsigned counterFor(SyncVar S) const {
    return counterForSyncVar(S, Count);
  }

  /// Atomically draws the next timestamp for \p S. Timestamps start at 1;
  /// 0 means "no timestamp" in event records.
  uint64_t draw(SyncVar S) {
    return Counters[counterFor(S)].Value.fetch_add(1,
                                                   std::memory_order_relaxed) +
           1;
  }

  /// Number of counters in the bank.
  unsigned numCounters() const { return Count; }

private:
  // Pad each counter to a cache line to avoid false sharing between
  // unrelated synchronization objects (the very contention §4.2 works
  // around).
  struct alignas(64) PaddedCounter {
    std::atomic<uint64_t> Value{0};
  };

  unsigned Count;
  std::unique_ptr<PaddedCounter[]> Counters;
};

} // namespace literace

#endif // LITERACE_RUNTIME_TIMESTAMPMANAGER_H
