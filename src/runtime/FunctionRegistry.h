//===-- runtime/FunctionRegistry.h - Instrumented code regions -*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of instrumented code regions. The paper instruments at function
/// granularity (§3.3): the Phoenix rewriter enumerates every function in the
/// binary. Our source-level equivalent registers each instrumented function
/// once and receives a dense FunctionId that indexes the per-thread sampler
/// counter tables.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_RUNTIME_FUNCTIONREGISTRY_H
#define LITERACE_RUNTIME_FUNCTIONREGISTRY_H

#include "runtime/Ids.h"

#include <mutex>
#include <string>
#include <vector>

namespace literace {

/// Maps instrumented functions to dense ids and back to names for reports.
/// Registration is thread-safe; lookups are safe concurrently with
/// registration only for already-registered ids.
class FunctionRegistry {
public:
  /// Registers a code region and returns its id. Duplicate names are
  /// allowed (they denote distinct regions, e.g. template instantiations).
  FunctionId registerFunction(std::string Name);

  /// Returns the name of \p F. \p F must have been registered.
  const std::string &name(FunctionId F) const;

  /// Number of registered functions.
  size_t size() const;

private:
  mutable std::mutex Lock;
  std::vector<std::string> Names;
};

} // namespace literace

#endif // LITERACE_RUNTIME_FUNCTIONREGISTRY_H
