//===-- runtime/ThreadContext.h - Per-thread runtime state -----*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread instrumentation state and the function-entry dispatch check.
///
/// The paper's instrumentation (§3.3, Fig. 3) creates two copies of every
/// function: an instrumented copy that logs memory operations, and an
/// uninstrumented copy that logs only synchronization. A dispatch check at
/// function entry picks a copy based on per-thread sampling counters. Our
/// source-level equivalent is ThreadContext::run(): the function body is a
/// generic callable, and run() instantiates it once with a LoggingTracer
/// and once with a NullTracer — two compiled copies — choosing between them
/// with the same counter scheme (§4.1).
///
/// Crucially, synchronization is logged through ThreadContext directly (by
/// the primitives in src/sync), not through the tracer, so BOTH copies log
/// every sync operation. Missing one would fabricate races (§3.2, Fig. 2).
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_RUNTIME_THREADCONTEXT_H
#define LITERACE_RUNTIME_THREADCONTEXT_H

#include "runtime/Runtime.h"
#include "support/Compiler.h"
#include "support/SplitMix64.h"

#include <cassert>
#include <vector>

namespace literace {

/// State of one application thread attached to a Runtime. Construct at
/// thread start, destroy at thread end (flushes the log buffer and folds
/// statistics into the Runtime). Not thread-safe: use from its own thread.
class ThreadContext {
public:
  explicit ThreadContext(Runtime &RT);
  ~ThreadContext();

  ThreadContext(const ThreadContext &) = delete;
  ThreadContext &operator=(const ThreadContext &) = delete;

  ThreadId tid() const { return Tid; }
  Runtime &runtime() { return RT; }
  SplitMix64 &rng() { return Rng; }

  /// The runtime's schedule perturber, cached at attach (null when no fuzz
  /// engine is installed). The sync primitives branch on this to swap
  /// their blocking waits for cooperative try + yield loops.
  SchedulePerturber *perturber() const { return Perturber; }

  /// Runs \p Body as an instrumented code region. \p Body must be callable
  /// with either tracer type; memory accesses inside it go through the
  /// tracer it receives. This is the dispatch check of Fig. 3.
  template <typename BodyT> void run(FunctionId F, BodyT &&Body);

  /// \name Synchronization logging (always-on; called by src/sync).
  /// Each call atomically draws a logical timestamp for \p S and appends a
  /// sync record. No-ops unless the mode enables sync logging.
  /// @{
  void logAcquire(SyncVar S, Pc P = 0) { logSync(EventKind::Acquire, S, P); }
  void logRelease(SyncVar S, Pc P = 0) { logSync(EventKind::Release, S, P); }
  void logAcqRel(SyncVar S, Pc P = 0) { logSync(EventKind::AcqRel, S, P); }
  /// Allocation-as-synchronization (§4.3); \p IsAlloc selects Alloc/Free.
  void logAllocation(SyncVar PageVar, bool IsAlloc) {
    logSync(IsAlloc ? EventKind::Alloc : EventKind::Free, PageVar, 0);
  }
  /// @}

  /// Appends a memory-access record (called by LoggingTracer).
  void logMemory(EventKind K, const void *Addr, Pc P, uint16_t Mask);

  /// Counts one memory operation elided by the static site policy
  /// (called by LoggingTracer instead of logMemory).
  void countElided() {
    ++Stats.MemOpsElided;
    if (TelSlab)
      TelSlab->add(RT.metricIds().MemOpsElided);
  }

  /// Flushes buffered records to the sink.
  void flush();

  /// Per-(sampler slot, function) counters of this thread; grown on demand.
  SamplerFnState &localSamplerState(unsigned Slot, FunctionId F);

  /// This thread's statistics so far (folded into the Runtime at
  /// destruction; exposed for tests).
  const RuntimeStats &localStats() const { return Stats; }

private:
  /// Evaluates the dispatch check for one entry of \p F and returns the
  /// sampler mask. Zero means: run the uninstrumented copy. Telemetry is
  /// observed only on cold sampler transitions (burst boundaries), so the
  /// steady-state gap countdown executes identical code whether telemetry
  /// is on or off (docs/TELEMETRY.md cost contract).
  uint16_t computeSampleMask(FunctionId F);

  /// Steps the primary (LiteRace TL-Ad) sampler's thread-local state,
  /// firing telemetry hooks on its cold transitions.
  bool stepPrimary(FunctionId F);

  /// Cold path of the primary-sampler table lookup; out of line so the
  /// vector-growth code does not bloat the dispatch check.
  SamplerFnState &growPrimaryStates(FunctionId F);

  void logSync(EventKind K, SyncVar S, Pc P);
  void append(const EventRecord &R);

  Runtime &RT;
  ThreadId Tid;
  SplitMix64 Rng;
  std::vector<EventRecord> Buffer;
  /// LocalStates[Slot][F]: per-sampler, per-function counters.
  std::vector<std::vector<SamplerFnState>> LocalStates;
  /// States of the primary sampler used by non-Experiment modes.
  std::vector<SamplerFnState> PrimaryStates;
  RuntimeStats Stats;
  /// This thread's telemetry slab (null when telemetry is off) and the
  /// direct dispatch-plane cell pointers hot paths bump through.
  telemetry::ThreadSlab *TelSlab = nullptr;
  std::atomic<uint64_t> *SampledCell = nullptr;
  std::atomic<uint64_t> *UnsampledCell = nullptr;
  /// Cached Runtime::perturber(); null outside fuzz runs.
  SchedulePerturber *Perturber = nullptr;
};

/// Tracer for the uninstrumented function copy: performs the accesses,
/// logs nothing, costs nothing.
class NullTracer {
public:
  static constexpr bool IsLogging = false;

  void read(const void *, uint32_t) {}
  void write(const void *, uint32_t) {}

  /// Reads *P (really) without logging.
  template <typename T> T load(const T *P, uint32_t) { return *P; }
  /// Writes *P (really) without logging.
  template <typename T, typename V> void store(T *P, V Val, uint32_t) {
    *P = static_cast<T>(Val);
  }

  /// Loop-granularity sampling hint (§7 extension); no-op here.
  void loopIteration() {}
};

/// Tracer for the instrumented function copy: logs every read and write
/// with this activation's sampler mask.
class LoggingTracer {
public:
  static constexpr bool IsLogging = true;

  /// \p Elide is the static analysis's elidable-site view for \p F
  /// (Runtime::elideView); the default view elides nothing.
  LoggingTracer(ThreadContext &TC, FunctionId F, uint16_t Mask,
                ElideView Elide = ElideView{})
      : TC(TC), PcFunction(F), Mask(Mask), Elide(Elide) {}

  void read(const void *Addr, uint32_t Site) {
    if (LR_UNLIKELY(Elide.test(Site))) {
      TC.countElided();
      return;
    }
    if (LR_LIKELY(Active))
      TC.logMemory(EventKind::Read, Addr, makePc(PcFunction, Site), Mask);
  }

  void write(const void *Addr, uint32_t Site) {
    if (LR_UNLIKELY(Elide.test(Site))) {
      TC.countElided();
      return;
    }
    if (LR_LIKELY(Active))
      TC.logMemory(EventKind::Write, Addr, makePc(PcFunction, Site), Mask);
  }

  /// Reads *P and logs the access.
  template <typename T> T load(const T *P, uint32_t Site) {
    read(P, Site);
    return *P;
  }

  /// Writes *P and logs the access.
  template <typename T, typename V> void store(T *P, V Val, uint32_t Site) {
    write(P, Site);
    *P = static_cast<T>(Val);
  }

  /// Loop-granularity sampling (§7 future-work extension): call once per
  /// iteration of a high-trip-count loop. After LoopFullIterations
  /// iterations of one activation, only every LoopDecayStride-th
  /// iteration's accesses are logged, bounding the cost of hot loops
  /// within a single sampled activation.
  void loopIteration() {
    ++LoopCount;
    if (LoopCount <= LoopFullIterations) {
      Active = true;
      return;
    }
    Active = (LoopCount % LoopDecayStride) == 0;
  }

  static constexpr uint32_t LoopFullIterations = 64;
  static constexpr uint32_t LoopDecayStride = 16;

private:
  ThreadContext &TC;
  FunctionId PcFunction;
  uint16_t Mask;
  ElideView Elide;
  bool Active = true;
  uint32_t LoopCount = 0;
};

template <typename BodyT>
void ThreadContext::run(FunctionId F, BodyT &&Body) {
  uint16_t Mask = computeSampleMask(F);
  if (Mask) {
    LoggingTracer T(*this, F, Mask, RT.elideView(F));
    Body(T);
  } else {
    NullTracer T;
    Body(T);
  }
}

} // namespace literace

#endif // LITERACE_RUNTIME_THREADCONTEXT_H
