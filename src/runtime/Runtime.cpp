//===-- runtime/Runtime.cpp - LiteRace instrumentation runtime -----------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include "support/Compiler.h"

#include <cassert>

using namespace literace;

const char *literace::runModeName(RunMode Mode) {
  switch (Mode) {
  case RunMode::Baseline:
    return "Baseline";
  case RunMode::DispatchOnly:
    return "DispatchOnly";
  case RunMode::SyncLogging:
    return "SyncLogging";
  case RunMode::LiteRace:
    return "LiteRace";
  case RunMode::FullLogging:
    return "FullLogging";
  case RunMode::Experiment:
    return "Experiment";
  }
  literaceUnreachable("invalid RunMode");
}

double RuntimeStats::effectiveSamplingRate(unsigned Slot) const {
  assert(Slot < MaxSamplerSlots && "slot out of range");
  if (MemOpsLogged == 0)
    return 0.0;
  return static_cast<double>(MemOpsPerSlot[Slot]) /
         static_cast<double>(MemOpsLogged);
}

void RuntimeStats::mergeFrom(const RuntimeStats &Other) {
  MemOpsLogged += Other.MemOpsLogged;
  MemOpsElided += Other.MemOpsElided;
  SyncOps += Other.SyncOps;
  for (unsigned I = 0; I != MaxSamplerSlots; ++I)
    MemOpsPerSlot[I] += Other.MemOpsPerSlot[I];
}

Runtime::Runtime(const RuntimeConfig &Config, LogSink *Sink)
    : Config(Config), Sink(Sink),
      Timestamps(Config.TimestampCounters),
      Metrics(telemetry::resolveRegistry(Config.Metrics,
                                         Config.DisableTelemetry)) {
  assert((Sink != nullptr || Config.Mode <= RunMode::DispatchOnly) &&
         "logging modes require a sink");
  if (Metrics) {
    MetricIds.DispatchChecks = Metrics->counter("runtime.dispatch_checks");
    MetricIds.SampledActivations =
        Metrics->counter("runtime.sampled_activations");
    MetricIds.UnsampledActivations =
        Metrics->counter("runtime.unsampled_activations");
    MetricIds.MemOpsLogged = Metrics->counter("runtime.memops_logged");
    MetricIds.MemOpsElided = Metrics->counter("runtime.memops_elided");
    MetricIds.SyncOpsLogged = Metrics->counter("runtime.syncops_logged");
    MetricIds.LogFlushes = Metrics->counter("runtime.log.flushes");
    MetricIds.LogBytesWritten =
        Metrics->counter("runtime.log.bytes_written");
    MetricIds.LogFlushNs = Metrics->histogram("runtime.log.flush_ns");
    MetricIds.SamplerBackoffs =
        Metrics->counter("runtime.sampler.backoffs");
    MetricIds.SamplerRateIndex =
        Metrics->histogram("runtime.sampler.rate_index");
    MetricIds.Threads = Metrics->gaugeMax("runtime.threads");
  }
}

Runtime::~Runtime() = default;

void Runtime::installSitePolicy(SitePolicy NewPolicy) {
  assert(NextTid.load() == 0 &&
         "install the site policy before any thread attaches");
  if (Config.DisableElision || NewPolicy.empty())
    return;
  Policy = std::move(NewPolicy);
  // Stamp the log so the trace names the policy it was produced under.
  if (Sink && Config.Mode >= RunMode::SyncLogging) {
    EventRecord R;
    R.Kind = EventKind::PolicyMeta;
    R.Addr = Policy.fingerprint();
    R.Pc = Policy.numElidableSites();
    R.Ts = Policy.numRedundantSites();
    Sink->writeChunk(0, &R, 1);
  }
}

unsigned Runtime::addSampler(std::unique_ptr<Sampler> S) {
  assert(S && "null sampler");
  assert(Samplers.size() < MaxSamplerSlots && "sampler suite is full");
  assert(NextTid.load() == 0 &&
         "attach all samplers before any thread starts");
  unsigned Slot = static_cast<unsigned>(Samplers.size());
  S->setSlot(Slot);
  Samplers.push_back(std::move(S));
  return Slot;
}

void Runtime::addStandardSamplers() {
  for (auto &S : makeStandardSamplers())
    addSampler(std::move(S));
}

unsigned Runtime::numSamplers() const {
  return static_cast<unsigned>(Samplers.size());
}

Sampler &Runtime::sampler(unsigned Slot) {
  assert(Slot < Samplers.size() && "sampler slot out of range");
  return *Samplers[Slot];
}

const Sampler &Runtime::sampler(unsigned Slot) const {
  assert(Slot < Samplers.size() && "sampler slot out of range");
  return *Samplers[Slot];
}

void Runtime::accumulateStats(const RuntimeStats &Local) {
  std::lock_guard<std::mutex> Guard(StatsLock);
  GlobalStats.mergeFrom(Local);
}

RuntimeStats Runtime::stats() const {
  std::lock_guard<std::mutex> Guard(StatsLock);
  return GlobalStats;
}

telemetry::MetricsSnapshot Runtime::metricsSnapshot() const {
  if (!Metrics)
    return {};
  telemetry::MetricsSnapshot Snap = Metrics->snapshot();
  // Every dispatch check resolves to exactly one sampled or unsampled
  // activation, so the total is derived here instead of paying a second
  // relaxed increment on the hot path (docs/TELEMETRY.md cost contract).
  Snap.setCounter("runtime.dispatch_checks",
                  Snap.counter("runtime.sampled_activations") +
                      Snap.counter("runtime.unsampled_activations"));
  return Snap;
}
