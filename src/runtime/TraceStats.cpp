//===-- runtime/TraceStats.cpp - Trace profiling summaries ----------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/TraceStats.h"

#include "runtime/FunctionRegistry.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

using namespace literace;

TraceStats TraceStats::compute(const Trace &T) {
  TraceStats Stats;
  Stats.NumThreads = static_cast<uint32_t>(T.PerThread.size());
  Stats.EventsPerThread.resize(T.PerThread.size(), 0);
  std::unordered_set<uint64_t> Addresses;
  std::unordered_set<uint64_t> SyncVars;

  for (size_t Tid = 0; Tid != T.PerThread.size(); ++Tid) {
    for (const EventRecord &R : T.PerThread[Tid]) {
      ++Stats.TotalEvents;
      ++Stats.EventsPerThread[Tid];
      switch (R.Kind) {
      case EventKind::Read:
        ++Stats.Reads;
        break;
      case EventKind::Write:
        ++Stats.Writes;
        break;
      case EventKind::Alloc:
        ++Stats.Allocations;
        ++Stats.SyncOps;
        break;
      case EventKind::Free:
        ++Stats.Frees;
        ++Stats.SyncOps;
        break;
      case EventKind::Acquire:
      case EventKind::Release:
      case EventKind::AcqRel:
        ++Stats.SyncOps;
        break;
      case EventKind::ThreadStart:
      case EventKind::ThreadEnd:
      case EventKind::PolicyMeta:
        break;
      }
      if (isMemoryKind(R.Kind)) {
        Addresses.insert(R.Addr);
        ++Stats.MemOpsPerFunction[pcFunction(R.Pc)];
        uint16_t Bits = static_cast<uint16_t>(R.Mask & ~FullLogMaskBit);
        if (Bits)
          ++Stats.MemOpsAnySlot;
        while (Bits) {
          unsigned Slot = static_cast<unsigned>(__builtin_ctz(Bits));
          ++Stats.MemOpsPerSlot[Slot];
          Bits &= static_cast<uint16_t>(Bits - 1);
        }
      } else if (isSyncKind(R.Kind)) {
        SyncVars.insert(R.Addr);
      }
    }
  }
  Stats.DistinctAddresses = Addresses.size();
  Stats.DistinctSyncVars = SyncVars.size();
  return Stats;
}

std::vector<std::pair<FunctionId, uint64_t>>
TraceStats::hottestFunctions() const {
  std::vector<std::pair<FunctionId, uint64_t>> Out(
      MemOpsPerFunction.begin(), MemOpsPerFunction.end());
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first; // Deterministic tie-break.
  });
  return Out;
}

std::string TraceStats::describe(const FunctionRegistry *Registry) const {
  char Line[256];
  std::string Out;
  std::snprintf(Line, sizeof(Line),
                "events: %llu (%llu reads, %llu writes, %llu sync, "
                "%llu alloc, %llu free)\n",
                static_cast<unsigned long long>(TotalEvents),
                static_cast<unsigned long long>(Reads),
                static_cast<unsigned long long>(Writes),
                static_cast<unsigned long long>(SyncOps),
                static_cast<unsigned long long>(Allocations),
                static_cast<unsigned long long>(Frees));
  Out += Line;
  std::snprintf(Line, sizeof(Line),
                "threads: %u; distinct addresses: %llu; distinct "
                "sync vars: %llu\n",
                NumThreads,
                static_cast<unsigned long long>(DistinctAddresses),
                static_cast<unsigned long long>(DistinctSyncVars));
  Out += Line;

  Out += "hottest functions by memory ops:\n";
  auto Hot = hottestFunctions();
  const uint64_t MemOps = Reads + Writes;
  size_t Shown = 0;
  for (const auto &[F, Count] : Hot) {
    if (++Shown > 8)
      break;
    std::string Name;
    if (Registry && F < Registry->size())
      Name = Registry->name(F);
    else
      Name = "fn" + std::to_string(F);
    std::snprintf(Line, sizeof(Line), "  %-28s %12llu  (%.1f%%)\n",
                  Name.c_str(), static_cast<unsigned long long>(Count),
                  MemOps ? 100.0 * static_cast<double>(Count) /
                               static_cast<double>(MemOps)
                         : 0.0);
    Out += Line;
  }

  bool AnySlot = false;
  for (unsigned Slot = 0; Slot != MaxSamplerSlots; ++Slot)
    AnySlot |= MemOpsPerSlot[Slot] != 0;
  if (AnySlot) {
    Out += "sampler mask coverage:\n";
    std::snprintf(Line, sizeof(Line), "  any slot %11llu  (%.2f%%)\n",
                  static_cast<unsigned long long>(MemOpsAnySlot),
                  MemOps ? 100.0 * static_cast<double>(MemOpsAnySlot) /
                               static_cast<double>(MemOps)
                         : 0.0);
    Out += Line;
    for (unsigned Slot = 0; Slot != MaxSamplerSlots; ++Slot) {
      if (!MemOpsPerSlot[Slot])
        continue;
      std::snprintf(Line, sizeof(Line), "  slot %-2u %12llu  (%.2f%%)\n",
                    Slot,
                    static_cast<unsigned long long>(MemOpsPerSlot[Slot]),
                    MemOps ? 100.0 * static_cast<double>(
                                         MemOpsPerSlot[Slot]) /
                                 static_cast<double>(MemOps)
                           : 0.0);
      Out += Line;
    }
  }
  return Out;
}
