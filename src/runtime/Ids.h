//===-- runtime/Ids.h - Core identifier types -------------------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifier types shared by the instrumentation runtime and the offline
/// detector: thread ids, function ids, program counters, synchronization
/// variables (paper Table 1), and the on-disk event record.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_RUNTIME_IDS_H
#define LITERACE_RUNTIME_IDS_H

#include <cstdint>

namespace literace {

/// Dense thread identifier assigned by the Runtime, starting at 0.
using ThreadId = uint32_t;

/// Dense identifier of an instrumented code region (a function, §3.3).
using FunctionId = uint32_t;

/// Identifier of a synchronization object (paper Table 1's SyncVar).
using SyncVar = uint64_t;

/// A synthetic program counter identifying a static access site. The paper
/// uses the x86 instruction address; we use (FunctionId, SiteId) where the
/// site is a stable per-function label (usually a line number).
using Pc = uint64_t;

/// Builds a Pc from a function id and a per-function site label.
constexpr Pc makePc(FunctionId F, uint32_t Site) {
  return (static_cast<uint64_t>(F) << 32) | Site;
}

/// Extracts the function id from a Pc.
constexpr FunctionId pcFunction(Pc P) {
  return static_cast<FunctionId>(P >> 32);
}

/// Extracts the site label from a Pc.
constexpr uint32_t pcSite(Pc P) { return static_cast<uint32_t>(P); }

/// Namespaces SyncVar values so that distinct kinds of synchronization
/// objects never collide even if they share an address (e.g. a mutex
/// allocated where a freed event used to live is still a fresh SyncVar
/// chain only per §4.3 allocation monitoring; the tag prevents accidental
/// cross-kind aliasing).
enum class SyncObjectKind : uint8_t {
  Mutex = 1,
  Event = 2,
  Semaphore = 3,
  Barrier = 4,
  ThreadFork = 5,
  ThreadExit = 6,
  Atomic = 7,
  Page = 8,
  User = 9,
};

/// Builds a tagged SyncVar from an object kind and a raw identity (usually
/// the object's address).
constexpr SyncVar makeSyncVar(SyncObjectKind K, uint64_t Identity) {
  return (static_cast<uint64_t>(K) << 56) ^
         (Identity & 0x00ffffffffffffffULL);
}

/// Extracts the kind tag of a SyncVar.
constexpr SyncObjectKind syncVarKind(SyncVar S) {
  return static_cast<SyncObjectKind>(S >> 56);
}

/// The kind of a logged event. Read/Write are the sampled memory
/// operations; Acquire/Release/AcqRel are synchronization operations that
/// are always logged (§3.2); Alloc/Free are the §4.3 allocation events
/// (treated as AcqRel on the containing page by the detector).
enum class EventKind : uint8_t {
  ThreadStart = 0,
  ThreadEnd = 1,
  Read = 2,
  Write = 3,
  Acquire = 4,
  Release = 5,
  AcqRel = 6,
  Alloc = 7,
  Free = 8,
  /// Policy-metadata marker written once at the head of a log produced
  /// under an elision policy: Addr is the policy fingerprint, Pc the
  /// number of elided sites, Ts the subset elided as Redundant rather
  /// than RaceFree (see docs/LOG_FORMAT.md). Creates no happens-before
  /// edge; detectors ignore it.
  PolicyMeta = 9,
};

/// Returns true for kinds that carry a logical timestamp and participate in
/// happens-before edges.
constexpr bool isSyncKind(EventKind K) {
  return K >= EventKind::Acquire && K <= EventKind::Free;
}

/// Returns true for sampled memory operations.
constexpr bool isMemoryKind(EventKind K) {
  return K == EventKind::Read || K == EventKind::Write;
}

/// Sampler mask bit reserved for "logged by the full (unsampled) log". Set
/// on every memory record written in Experiment and FullLogging modes.
constexpr uint16_t FullLogMaskBit = 0x8000;

/// Number of sampler slots available in Experiment mode (mask bits 0..14).
constexpr unsigned MaxSamplerSlots = 15;

/// One logged event. 32 bytes, written verbatim to log files (same-machine
/// format; not endian-portable).
struct EventRecord {
  /// Memory address for Read/Write; SyncVar for sync kinds; 0 otherwise.
  uint64_t Addr = 0;
  /// Synthetic program counter of the operation (memory ops and sync ops).
  uint64_t Pc = 0;
  /// Logical timestamp drawn from the hashed counter (sync kinds only).
  uint64_t Ts = 0;
  /// Thread that executed the operation.
  uint32_t Tid = 0;
  /// Event kind.
  EventKind Kind = EventKind::ThreadStart;
  uint8_t Pad = 0;
  /// Per-sampler decision bits (Experiment mode) plus FullLogMaskBit.
  uint16_t Mask = 0;
};

static_assert(sizeof(EventRecord) == 32, "event record layout is part of "
                                         "the log file format");

} // namespace literace

#endif // LITERACE_RUNTIME_IDS_H
