//===-- runtime/EventLog.cpp - Event streams and log sinks ---------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/EventLog.h"

#include <cassert>
#include <cstring>

using namespace literace;

namespace {

constexpr uint64_t FileMagic = 0x4C695465526163ULL; // "LiteRac"
constexpr uint32_t FileVersion = 1;

struct FileHeader {
  uint64_t Magic;
  uint32_t Version;
  uint32_t NumTimestampCounters;
};

struct ChunkHeader {
  uint32_t Tid;
  uint32_t Count;
};

} // namespace

size_t Trace::totalEvents() const {
  size_t N = 0;
  for (const auto &Stream : PerThread)
    N += Stream.size();
  return N;
}

size_t Trace::memoryOps() const {
  size_t N = 0;
  for (const auto &Stream : PerThread)
    for (const EventRecord &R : Stream)
      if (isMemoryKind(R.Kind))
        ++N;
  return N;
}

size_t Trace::syncOps() const {
  size_t N = 0;
  for (const auto &Stream : PerThread)
    for (const EventRecord &R : Stream)
      if (isSyncKind(R.Kind))
        ++N;
  return N;
}

size_t Trace::memoryOpsForSlot(unsigned Slot) const {
  assert(Slot < MaxSamplerSlots && "slot out of range");
  const uint16_t Bit = static_cast<uint16_t>(1u << Slot);
  size_t N = 0;
  for (const auto &Stream : PerThread)
    for (const EventRecord &R : Stream)
      if (isMemoryKind(R.Kind) && (R.Mask & Bit))
        ++N;
  return N;
}

LogSink::~LogSink() = default;

void LogSink::flush() {}

MemorySink::MemorySink(unsigned NumTimestampCounters)
    : NumTimestampCounters(NumTimestampCounters) {}

void MemorySink::writeChunk(ThreadId Tid, const EventRecord *Records,
                            size_t Count) {
  std::lock_guard<std::mutex> Guard(Lock);
  if (Tid >= PerThread.size())
    PerThread.resize(Tid + 1);
  PerThread[Tid].insert(PerThread[Tid].end(), Records, Records + Count);
  addBytes(Count * sizeof(EventRecord));
}

Trace MemorySink::takeTrace() {
  std::lock_guard<std::mutex> Guard(Lock);
  Trace T;
  T.NumTimestampCounters = NumTimestampCounters;
  T.PerThread = std::move(PerThread);
  PerThread.clear();
  return T;
}

FileSink::FileSink(const std::string &Path, unsigned NumTimestampCounters) {
  File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return;
  FileHeader Header{FileMagic, FileVersion, NumTimestampCounters};
  if (std::fwrite(&Header, sizeof(Header), 1, File) != 1) {
    std::fclose(File);
    File = nullptr;
  }
}

FileSink::~FileSink() { close(); }

void FileSink::writeChunk(ThreadId Tid, const EventRecord *Records,
                          size_t Count) {
  assert(File && "writeChunk on a closed or failed FileSink");
  ChunkHeader Header{Tid, static_cast<uint32_t>(Count)};
  std::lock_guard<std::mutex> Guard(Lock);
  std::fwrite(&Header, sizeof(Header), 1, File);
  std::fwrite(Records, sizeof(EventRecord), Count, File);
  addBytes(Count * sizeof(EventRecord));
}

void FileSink::flush() {
  std::lock_guard<std::mutex> Guard(Lock);
  if (File)
    std::fflush(File);
}

void FileSink::close() {
  std::lock_guard<std::mutex> Guard(Lock);
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
}

void NullSink::writeChunk(ThreadId, const EventRecord *, size_t Count) {
  addBytes(Count * sizeof(EventRecord));
}

std::optional<Trace> literace::readTraceFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return std::nullopt;

  Trace T;
  FileHeader Header;
  if (std::fread(&Header, sizeof(Header), 1, File) != 1 ||
      Header.Magic != FileMagic || Header.Version != FileVersion) {
    std::fclose(File);
    return std::nullopt;
  }
  T.NumTimestampCounters = Header.NumTimestampCounters;

  ChunkHeader Chunk;
  std::vector<EventRecord> Buffer;
  while (std::fread(&Chunk, sizeof(Chunk), 1, File) == 1) {
    Buffer.resize(Chunk.Count);
    if (std::fread(Buffer.data(), sizeof(EventRecord), Chunk.Count, File) !=
        Chunk.Count) {
      std::fclose(File);
      return std::nullopt; // Truncated chunk.
    }
    if (Chunk.Tid >= T.PerThread.size())
      T.PerThread.resize(Chunk.Tid + 1);
    auto &Stream = T.PerThread[Chunk.Tid];
    Stream.insert(Stream.end(), Buffer.begin(), Buffer.end());
  }
  std::fclose(File);
  return T;
}
