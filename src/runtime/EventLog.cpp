//===-- runtime/EventLog.cpp - Event streams and log sinks ---------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/EventLog.h"

#include "runtime/CompressedLog.h"
#include "support/ByteOutput.h"
#include "support/Crc32.h"
#include "telemetry/Metrics.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <thread>

using namespace literace;

namespace {

constexpr uint64_t FileMagic = 0x4C695465526163ULL; // "LiteRac"
constexpr uint32_t FileVersion = 1;
/// v2: same FileHeader, then checksummed segments (docs/LOG_FORMAT.md).
constexpr uint32_t SegmentedFileVersion = 2;

struct FileHeader {
  uint64_t Magic;
  uint32_t Version;
  uint32_t NumTimestampCounters;
};

struct ChunkHeader {
  uint32_t Tid;
  uint32_t Count;
};

/// v2 segment framing. Each frame is SegmentHeader + PayloadBytes of
/// payload. HeaderCrc covers the first 24 header bytes, so a reader can
/// trust the framing (and skip by PayloadBytes) before touching the
/// payload; PayloadCrc catches payload damage independently.
constexpr uint32_t SegmentMagic = 0x4753524Cu; // "LRSG" on disk
constexpr uint8_t SegEncodingRaw = 0;
constexpr uint8_t SegEncodingCompressed = 1;
constexpr uint8_t SegFlagFooter = 0x01;
/// Upper bound a reader believes for one payload; the writer stays far
/// below it (MaxRecordsPerSegment records).
constexpr uint32_t MaxSegmentPayload = 1u << 26;
/// Records per frame cap: bounds frame-buffer memory on both sides.
constexpr size_t MaxRecordsPerSegment = 1u << 16;
/// A CRC-valid header claiming a thread id above this is treated as
/// damage rather than trusted into a giant PerThread resize.
constexpr uint32_t MaxReasonableTid = 1u << 20;

struct SegmentHeader {
  uint32_t Magic;
  uint8_t Encoding;
  uint8_t Flags;
  uint16_t Reserved;
  uint32_t Tid;
  uint32_t EventCount;
  uint32_t PayloadBytes;
  uint32_t PayloadCrc;
  uint32_t HeaderCrc;
};
static_assert(sizeof(SegmentHeader) == 28,
              "segment header layout is part of the log file format");

constexpr size_t SegmentHeaderCrcBytes =
    sizeof(SegmentHeader) - sizeof(uint32_t);

/// Payload of the footer frame sealed by a clean close(). DroppedEvents
/// records writer-side loss (hard write failures, async Drop-policy
/// backpressure); a reader that sees it nonzero knows the file is an
/// accounted subset of the execution even though every byte present is
/// intact. Legacy footers are 16 bytes (no DroppedEvents field) and are
/// still accepted.
struct SegmentFooterPayload {
  uint64_t TotalEvents;
  uint64_t TotalSegments;
  uint64_t DroppedEvents;
};
static_assert(sizeof(SegmentFooterPayload) == 24,
              "footer payload layout is part of the log file format");
constexpr size_t LegacyFooterPayloadBytes = 16;

bool validKind(uint8_t K) {
  return K <= static_cast<uint8_t>(EventKind::PolicyMeta);
}

bool validRecords(const EventRecord *Records, size_t Count) {
  for (size_t I = 0; I != Count; ++I)
    if (!validKind(static_cast<uint8_t>(Records[I].Kind)))
      return false;
  return true;
}

std::optional<std::vector<uint8_t>> readWholeFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return std::nullopt;
  std::vector<uint8_t> Data;
  uint8_t Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Data.insert(Data.end(), Buf, Buf + N);
  std::fclose(File);
  return Data;
}

/// Parses and validates a segment header at \p P (magic, header CRC, and
/// sanity bounds). Returns false on anything a salvager should resync
/// over.
bool parseSegmentHeader(const uint8_t *P, size_t Avail, SegmentHeader &H) {
  if (Avail < sizeof(SegmentHeader))
    return false;
  std::memcpy(&H, P, sizeof(H));
  if (H.Magic != SegmentMagic)
    return false;
  if (crc32c(P, SegmentHeaderCrcBytes) != H.HeaderCrc)
    return false;
  if (H.PayloadBytes > MaxSegmentPayload || H.Tid > MaxReasonableTid ||
      H.Encoding > SegEncodingCompressed)
    return false;
  return true;
}

/// Finds the next offset >= \p From holding a CRC-valid segment header,
/// or \p Size if there is none.
size_t findNextHeader(const uint8_t *Data, size_t Size, size_t From) {
  SegmentHeader H;
  for (size_t O = From; O + sizeof(SegmentHeader) <= Size; ++O) {
    uint32_t Magic;
    std::memcpy(&Magic, Data + O, sizeof(Magic));
    if (Magic == SegmentMagic && parseSegmentHeader(Data + O, Size - O, H))
      return O;
  }
  return Size;
}

void noteThreadRecovered(TraceReadStats &S, uint32_t Tid, uint64_t Events) {
  if (Tid >= S.PerThreadRecovered.size())
    S.PerThreadRecovered.resize(Tid + 1);
  S.PerThreadRecovered[Tid] += Events;
}

void noteThreadDropped(TraceReadStats &S, uint32_t Tid) {
  if (Tid >= S.PerThreadDropped.size())
    S.PerThreadDropped.resize(Tid + 1);
  S.PerThreadDropped[Tid] += 1;
}

void appendStream(Trace &T, TraceReadStats &S, uint32_t Tid,
                  const EventRecord *Records, size_t Count) {
  if (Tid >= T.PerThread.size())
    T.PerThread.resize(Tid + 1);
  T.PerThread[Tid].insert(T.PerThread[Tid].end(), Records, Records + Count);
  S.EventsRecovered += Count;
  noteThreadRecovered(S, Tid, Count);
}

/// Walks v2 frames from \p O, recovering every intact one. Resyncs over
/// damaged headers by scanning for the next valid magic; trusts
/// CRC-valid headers for frame lengths, so a bad-payload frame costs
/// exactly itself.
void parseV2Segments(const uint8_t *Data, size_t Size, size_t O,
                     TraceReadResult &Res) {
  TraceReadStats &S = Res.Stats;
  bool FooterAtEnd = false;
  SegmentFooterPayload Footer{};
  std::vector<EventRecord> Records;
  while (O < Size) {
    SegmentHeader H;
    if (O + sizeof(SegmentHeader) > Size) {
      // The producer died mid-header.
      S.TruncatedTail = true;
      ++S.SegmentsDropped;
      S.BytesDropped += Size - O;
      break;
    }
    if (!parseSegmentHeader(Data + O, Size - O, H)) {
      // Damaged header: the frame length cannot be trusted, so resync by
      // scanning for the next frame whose header checks out.
      size_t Next = findNextHeader(Data, Size, O + 1);
      ++S.SegmentsDropped;
      S.BytesDropped += Next - O;
      if (Next == Size)
        S.TruncatedTail = true;
      O = Next;
      continue;
    }
    size_t End = O + sizeof(SegmentHeader) + H.PayloadBytes;
    if (End > Size) {
      // The producer died mid-payload; the header is trustworthy, so we
      // know exactly what was lost.
      S.TruncatedTail = true;
      ++S.SegmentsDropped;
      S.BytesDropped += Size - O;
      noteThreadDropped(S, H.Tid);
      break;
    }
    const uint8_t *Payload = Data + O + sizeof(SegmentHeader);
    bool Decoded = false;
    if (crc32c(Payload, H.PayloadBytes) == H.PayloadCrc) {
      if (H.Flags & SegFlagFooter) {
        if (H.PayloadBytes == sizeof(SegmentFooterPayload) ||
            H.PayloadBytes == LegacyFooterPayloadBytes) {
          FooterAtEnd = End == Size;
          Footer = SegmentFooterPayload{};
          // memcpy field-wise: legacy footers stop after TotalSegments.
          std::memcpy(&Footer, Payload, H.PayloadBytes);
          Decoded = true;
        }
      } else if (H.Encoding == SegEncodingRaw) {
        if (H.PayloadBytes ==
            static_cast<uint64_t>(H.EventCount) * sizeof(EventRecord)) {
          Records.resize(H.EventCount);
          // memcpy: the payload is only 4-byte aligned in the file.
          std::memcpy(Records.data(), Payload, H.PayloadBytes);
          if (validRecords(Records.data(), Records.size())) {
            appendStream(Res.T, S, H.Tid, Records.data(), Records.size());
            ++S.SegmentsRecovered;
            Decoded = true;
          }
        }
      } else {
        auto Stream =
            decompressEventStream(Payload, H.PayloadBytes, H.Tid);
        if (Stream && Stream->size() == H.EventCount) {
          appendStream(Res.T, S, H.Tid, Stream->data(), Stream->size());
          ++S.SegmentsRecovered;
          Decoded = true;
        }
      }
    }
    if (!Decoded) {
      ++S.SegmentsDropped;
      S.BytesDropped += End - O;
      if (!(H.Flags & SegFlagFooter))
        noteThreadDropped(S, H.Tid);
    }
    O = End;
  }
  S.CleanShutdown = FooterAtEnd;
  if (FooterAtEnd) {
    S.EventsDroppedByWriter = Footer.DroppedEvents;
    // Cross-check the footer's totals, but only when nothing else went
    // wrong — with dropped or truncated segments a disagreement is
    // already explained and accounted.
    if (S.SegmentsDropped == 0 && !S.TruncatedTail &&
        (Footer.TotalEvents != S.EventsRecovered ||
         Footer.TotalSegments != S.SegmentsRecovered))
      S.FooterTotalsMismatch = true;
  }
}

/// Salvages a v1 raw (FileSink) stream: keeps the longest prefix of
/// intact chunks. v1 framing has no magic to resync on, so damage to a
/// chunk header loses the tail.
void parseV1Raw(const uint8_t *Data, size_t Size, TraceReadResult &Res) {
  TraceReadStats &S = Res.Stats;
  size_t O = sizeof(FileHeader);
  bool Clean = true;
  std::vector<EventRecord> Records;
  while (O < Size) {
    ChunkHeader C;
    if (O + sizeof(ChunkHeader) > Size) {
      S.TruncatedTail = true;
      ++S.SegmentsDropped;
      S.BytesDropped += Size - O;
      Clean = false;
      break;
    }
    std::memcpy(&C, Data + O, sizeof(C));
    uint64_t Bytes = static_cast<uint64_t>(C.Count) * sizeof(EventRecord);
    if (C.Tid > MaxReasonableTid ||
        O + sizeof(ChunkHeader) + Bytes > Size) {
      // Either a truncated chunk or a corrupt count; the framing past
      // this point cannot be trusted either way.
      S.TruncatedTail = true;
      ++S.SegmentsDropped;
      S.BytesDropped += Size - O;
      Clean = false;
      break;
    }
    Records.resize(C.Count);
    std::memcpy(Records.data(), Data + O + sizeof(ChunkHeader), Bytes);
    if (validRecords(Records.data(), Records.size())) {
      appendStream(Res.T, S, C.Tid, Records.data(), Records.size());
      ++S.SegmentsRecovered;
    } else {
      // Undetectable-by-framing damage inside the chunk; the count is
      // still usable, so only this chunk is lost.
      ++S.SegmentsDropped;
      S.BytesDropped += sizeof(ChunkHeader) + Bytes;
      noteThreadDropped(S, C.Tid);
      Clean = false;
    }
    O += sizeof(ChunkHeader) + Bytes;
  }
  S.CleanShutdown = Clean && !S.TruncatedTail;
}

/// Salvages a v1 compressed (CompressedFileSink) file: per-thread
/// streams decode independently; a damaged stream keeps its cleanly
/// decoded prefix.
void parseV1Compressed(const uint8_t *Data, size_t Size,
                       TraceReadResult &Res) {
  TraceReadStats &S = Res.Stats;
  size_t O = sizeof(uint64_t);
  uint32_t Counters = 0;
  uint32_t NumThreads = 0;
  std::memcpy(&Counters, Data + O, sizeof(Counters));
  O += sizeof(Counters);
  std::memcpy(&NumThreads, Data + O, sizeof(NumThreads));
  O += sizeof(NumThreads);
  Res.T.NumTimestampCounters = Counters ? Counters : 128;
  if (static_cast<uint64_t>(NumThreads) * sizeof(uint64_t) > Size) {
    // Corrupt thread count; nothing downstream is trustworthy.
    ++S.SegmentsDropped;
    S.BytesDropped += Size - O;
    S.TruncatedTail = true;
    return;
  }
  bool Clean = Counters != 0;
  for (uint32_t Tid = 0; Tid != NumThreads; ++Tid) {
    if (O + sizeof(uint64_t) > Size) {
      S.TruncatedTail = true;
      ++S.SegmentsDropped;
      S.BytesDropped += Size - O;
      return;
    }
    uint64_t StreamSize = 0;
    std::memcpy(&StreamSize, Data + O, sizeof(StreamSize));
    O += sizeof(StreamSize);
    bool Truncated = StreamSize > Size - O;
    size_t Avail = Truncated ? Size - O : static_cast<size_t>(StreamSize);
    PartialDecode Partial =
        decompressEventStreamPartial(Data + O, Avail, Tid);
    if (!Partial.Events.empty())
      appendStream(Res.T, S, Tid, Partial.Events.data(),
                   Partial.Events.size());
    if (!Truncated && Partial.Complete) {
      ++S.SegmentsRecovered;
    } else {
      ++S.SegmentsDropped;
      S.BytesDropped += Avail - Partial.BytesConsumed;
      noteThreadDropped(S, Tid);
      if (Truncated) {
        S.TruncatedTail = true;
        return;
      }
    }
    O += Avail;
  }
  if (O < Size) {
    // Trailing garbage after the last declared stream.
    ++S.SegmentsDropped;
    S.BytesDropped += Size - O;
    Clean = false;
  }
  S.CleanShutdown = Clean && !S.TruncatedTail &&
                    S.SegmentsDropped == 0;
}

} // namespace

size_t Trace::totalEvents() const {
  size_t N = 0;
  for (const auto &Stream : PerThread)
    N += Stream.size();
  return N;
}

size_t Trace::memoryOps() const {
  size_t N = 0;
  for (const auto &Stream : PerThread)
    for (const EventRecord &R : Stream)
      if (isMemoryKind(R.Kind))
        ++N;
  return N;
}

size_t Trace::syncOps() const {
  size_t N = 0;
  for (const auto &Stream : PerThread)
    for (const EventRecord &R : Stream)
      if (isSyncKind(R.Kind))
        ++N;
  return N;
}

size_t Trace::memoryOpsForSlot(unsigned Slot) const {
  assert(Slot < MaxSamplerSlots && "slot out of range");
  const uint16_t Bit = static_cast<uint16_t>(1u << Slot);
  size_t N = 0;
  for (const auto &Stream : PerThread)
    for (const EventRecord &R : Stream)
      if (isMemoryKind(R.Kind) && (R.Mask & Bit))
        ++N;
  return N;
}

namespace {
/// Set by AsyncLogSink around its consumer loop; read by sinks to
/// classify writes (see isTraceFlusherThread() in EventLog.h).
thread_local bool TraceFlusherThread = false;
} // namespace

bool literace::isTraceFlusherThread() { return TraceFlusherThread; }

void literace::setTraceFlusherThread(bool Value) {
  TraceFlusherThread = Value;
}

LogSink::~LogSink() = default;

void LogSink::flush() {}

void LogSink::noteLostChunk(ThreadId, size_t) {}

MemorySink::MemorySink(unsigned NumTimestampCounters)
    : NumTimestampCounters(NumTimestampCounters) {}

void MemorySink::writeChunk(ThreadId Tid, const EventRecord *Records,
                            size_t Count) {
  std::lock_guard<std::mutex> Guard(Lock);
  if (Tid >= PerThread.size())
    PerThread.resize(Tid + 1);
  PerThread[Tid].insert(PerThread[Tid].end(), Records, Records + Count);
  addBytes(Count * sizeof(EventRecord));
}

Trace MemorySink::takeTrace() {
  std::lock_guard<std::mutex> Guard(Lock);
  Trace T;
  T.NumTimestampCounters = NumTimestampCounters;
  T.PerThread = std::move(PerThread);
  PerThread.clear();
  return T;
}

FileSink::FileSink(const std::string &Path, unsigned NumTimestampCounters) {
  File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return;
  FileHeader Header{FileMagic, FileVersion, NumTimestampCounters};
  if (std::fwrite(&Header, sizeof(Header), 1, File) != 1) {
    std::fclose(File);
    File = nullptr;
  }
}

FileSink::~FileSink() { close(); }

void FileSink::writeChunk(ThreadId Tid, const EventRecord *Records,
                          size_t Count) {
  assert(File && "writeChunk on a closed or failed FileSink");
  ChunkHeader Header{Tid, static_cast<uint32_t>(Count)};
  std::lock_guard<std::mutex> Guard(Lock);
  std::fwrite(&Header, sizeof(Header), 1, File);
  std::fwrite(Records, sizeof(EventRecord), Count, File);
  addBytes(Count * sizeof(EventRecord));
}

void FileSink::flush() {
  std::lock_guard<std::mutex> Guard(Lock);
  if (File)
    std::fflush(File);
}

void FileSink::close() {
  std::lock_guard<std::mutex> Guard(Lock);
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
}

void NullSink::writeChunk(ThreadId, const EventRecord *, size_t Count) {
  addBytes(Count * sizeof(EventRecord));
}

SegmentedFileSink::SegmentedFileSink(const std::string &Path,
                                     unsigned NumTimestampCounters,
                                     const Options &Opts)
    : Compress(Opts.Compress), MaxRetries(Opts.MaxRetries),
      Metrics(Opts.Metrics) {
  if (Opts.Output) {
    Out = Opts.Output;
  } else {
    Owned = std::make_unique<FileByteOutput>(Path);
    Out = Owned.get();
  }
  if (!Out->ok())
    return;
  FileHeader Header{FileMagic, SegmentedFileVersion, NumTimestampCounters};
  HeaderOk = writeAll(&Header, sizeof(Header));
  if (!HeaderOk)
    Failed = true;
}

SegmentedFileSink::SegmentedFileSink(const std::string &Path,
                                     unsigned NumTimestampCounters)
    : SegmentedFileSink(Path, NumTimestampCounters, Options()) {}

SegmentedFileSink::~SegmentedFileSink() { close(); }

bool SegmentedFileSink::ok() const { return HeaderOk && !Failed; }

bool SegmentedFileSink::writeAll(const void *Data, size_t Size) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  size_t Remaining = Size;
  unsigned Attempts = 0;
  while (Remaining) {
    WriteResult R = Out->write(P, Remaining);
    P += R.Written;
    Remaining -= R.Written;
    if (!Remaining)
      break;
    if (R.Written == 0) {
      if (!R.Transient || Attempts >= MaxRetries)
        return false;
      ++Attempts;
      ++Retries;
      // Escalating backoff; EINTR-class failures usually clear at once.
      std::this_thread::sleep_for(
          std::chrono::microseconds(1ull << std::min(Attempts, 10u)));
    } else {
      if (!R.Transient)
        return false;
      // Short write with progress: keep going without burning the
      // retry budget, which is for attempts that accept nothing.
      ++Retries;
      Attempts = 0;
    }
  }
  return true;
}

bool SegmentedFileSink::writeFrame(ThreadId Tid, const EventRecord *Records,
                                   size_t Count) {
  Frame.clear();
  Frame.resize(sizeof(SegmentHeader));
  if (Compress) {
    Slice.assign(Records, Records + Count);
    compressEventStream(Slice, Frame);
  } else {
    const uint8_t *Bytes = reinterpret_cast<const uint8_t *>(Records);
    Frame.insert(Frame.end(), Bytes, Bytes + Count * sizeof(EventRecord));
  }
  size_t PayloadSize = Frame.size() - sizeof(SegmentHeader);
  SegmentHeader H{};
  H.Magic = SegmentMagic;
  H.Encoding = Compress ? SegEncodingCompressed : SegEncodingRaw;
  H.Tid = Tid;
  H.EventCount = static_cast<uint32_t>(Count);
  H.PayloadBytes = static_cast<uint32_t>(PayloadSize);
  H.PayloadCrc = crc32c(Frame.data() + sizeof(SegmentHeader), PayloadSize);
  H.HeaderCrc = crc32c(&H, SegmentHeaderCrcBytes);
  std::memcpy(Frame.data(), &H, sizeof(H));
  if (!writeAll(Frame.data(), Frame.size()))
    return false;
  ++Segments;
  Events += Count;
  addBytes(Count * sizeof(EventRecord));
  return true;
}

void SegmentedFileSink::noteLostChunk(ThreadId, size_t Count) {
  std::lock_guard<std::mutex> Guard(Lock);
  Dropped += Count;
}

void SegmentedFileSink::writeChunk(ThreadId Tid, const EventRecord *Records,
                                   size_t Count) {
  std::lock_guard<std::mutex> Guard(Lock);
  if (isTraceFlusherThread())
    ++FlusherWrites;
  else
    ++AppWrites;
  if (Failed || Closed || !HeaderOk) {
    Dropped += Count;
    return;
  }
  size_t Off = 0;
  while (Off < Count) {
    size_t N = std::min(Count - Off, MaxRecordsPerSegment);
    if (!writeFrame(Tid, Records + Off, N)) {
      Failed = true;
      Dropped += Count - Off;
      return;
    }
    Off += N;
  }
}

void SegmentedFileSink::flush() {
  std::lock_guard<std::mutex> Guard(Lock);
  if (Out && !Closed)
    Out->flush();
}

bool SegmentedFileSink::close() {
  std::lock_guard<std::mutex> Guard(Lock);
  if (Closed)
    return HeaderOk && !Failed && Dropped == 0;
  Closed = true;
  bool Sealed = false;
  if (HeaderOk && !Failed) {
    SegmentFooterPayload Totals{Events, Segments, Dropped};
    Frame.clear();
    Frame.resize(sizeof(SegmentHeader) + sizeof(Totals));
    std::memcpy(Frame.data() + sizeof(SegmentHeader), &Totals,
                sizeof(Totals));
    SegmentHeader H{};
    H.Magic = SegmentMagic;
    H.Encoding = SegEncodingRaw;
    H.Flags = SegFlagFooter;
    H.PayloadBytes = sizeof(Totals);
    H.PayloadCrc = crc32c(&Totals, sizeof(Totals));
    H.HeaderCrc = crc32c(&H, SegmentHeaderCrcBytes);
    std::memcpy(Frame.data(), &H, sizeof(H));
    Sealed = writeAll(Frame.data(), Frame.size());
    if (Sealed)
      Out->flush();
    else
      Failed = true;
  }
  if (Out)
    Out->close();
  if (telemetry::MetricsRegistry *M = telemetry::resolveRegistry(Metrics)) {
    telemetry::ThreadSlab &Slab = M->threadSlab();
    Slab.add(M->counter("sink.retries"), Retries);
    Slab.add(M->counter("sink.segments_written"), Segments);
    Slab.add(M->counter("sink.writes.app_thread"), AppWrites);
    Slab.add(M->counter("sink.writes.flusher_thread"), FlusherWrites);
    if (Dropped)
      Slab.add(M->counter("sink.events_dropped"), Dropped);
  }
  return Sealed && Dropped == 0;
}

void SegmentedFileSink::abandon() {
  std::lock_guard<std::mutex> Guard(Lock);
  if (Closed)
    return;
  Closed = true;
  if (Out)
    Out->close();
}

const char *literace::traceFormatName(TraceFormat F) {
  switch (F) {
  case TraceFormat::Unknown:
    return "unknown";
  case TraceFormat::V1Raw:
    return "v1-raw";
  case TraceFormat::V1Compressed:
    return "v1-compressed";
  case TraceFormat::V2Segmented:
    return "v2-segmented";
  }
  return "unknown";
}

TraceReadResult literace::readTrace(const std::string &Path,
                                    const TraceReadOptions &Options) {
  TraceReadResult Res;
  auto DataOpt = readWholeFile(Path);
  if (!DataOpt) {
    Res.Error = "cannot open " + Path;
    return Res;
  }
  const uint8_t *Data = DataOpt->data();
  const size_t Size = DataOpt->size();
  TraceReadStats &S = Res.Stats;

  bool Parsed = false;
  if (Size >= sizeof(FileHeader)) {
    FileHeader Header;
    std::memcpy(&Header, Data, sizeof(Header));
    if (Header.Magic == FileMagic && Header.NumTimestampCounters != 0) {
      if (Header.Version == FileVersion) {
        S.Format = TraceFormat::V1Raw;
        Res.T.NumTimestampCounters = Header.NumTimestampCounters;
        parseV1Raw(Data, Size, Res);
        Parsed = true;
      } else if (Header.Version == SegmentedFileVersion) {
        S.Format = TraceFormat::V2Segmented;
        Res.T.NumTimestampCounters = Header.NumTimestampCounters;
        parseV2Segments(Data, Size, sizeof(FileHeader), Res);
        Parsed = true;
      }
    }
  }
  if (!Parsed && Size >= 2 * sizeof(uint64_t)) {
    uint64_t Magic;
    std::memcpy(&Magic, Data, sizeof(Magic));
    if (Magic == 0x4C52436F6D7001ULL) {
      S.Format = TraceFormat::V1Compressed;
      parseV1Compressed(Data, Size, Res);
      Parsed = true;
    }
  }
  if (!Parsed) {
    // The file header itself is damaged or missing. v2 frames are
    // self-describing, so scan for the first valid one and salvage.
    size_t First = findNextHeader(Data, Size, 0);
    if (First != Size) {
      S.Format = TraceFormat::V2Segmented;
      S.SalvagedHeader = true;
      if (First > 0) {
        ++S.SegmentsDropped;
        S.BytesDropped += First;
      }
      Res.T.NumTimestampCounters = 128;
      parseV2Segments(Data, Size, First, Res);
      Parsed = true;
    }
  }
  if (!Parsed) {
    Res.Error = "not a literace trace file: " + Path;
    return Res;
  }

  // Keep the per-thread accounting vectors the same length so callers
  // can iterate them together.
  size_t Threads = std::max({Res.T.PerThread.size(),
                             S.PerThreadRecovered.size(),
                             S.PerThreadDropped.size()});
  S.PerThreadRecovered.resize(Threads);
  S.PerThreadDropped.resize(Threads);

  if (telemetry::MetricsRegistry *M =
          telemetry::resolveRegistry(Options.Metrics)) {
    telemetry::ThreadSlab &Slab = M->threadSlab();
    Slab.add(M->counter("trace.segments.recovered"), S.SegmentsRecovered);
    Slab.add(M->counter("trace.segments.dropped"), S.SegmentsDropped);
  }

  const bool Loss = S.SegmentsDropped != 0 || S.TruncatedTail ||
                    S.SalvagedHeader || !S.CleanShutdown ||
                    S.EventsDroppedByWriter != 0 || S.FooterTotalsMismatch;
  if (!Loss) {
    Res.Status = TraceReadStatus::Ok;
    return Res;
  }
  std::string Note = "recovered " + std::to_string(S.EventsRecovered) +
                     " events in " + std::to_string(S.SegmentsRecovered) +
                     " segments; dropped " +
                     std::to_string(S.SegmentsDropped) + " segments (" +
                     std::to_string(S.BytesDropped) + " bytes)";
  if (S.TruncatedTail)
    Note += "; truncated tail";
  if (S.SalvagedHeader)
    Note += "; file header damaged";
  if (!S.CleanShutdown)
    Note += "; no clean shutdown marker";
  if (S.EventsDroppedByWriter != 0)
    Note += "; writer dropped " + std::to_string(S.EventsDroppedByWriter) +
            " event(s) before they reached the file";
  if (S.FooterTotalsMismatch)
    Note += "; footer totals disagree with recovered contents";
  if (Options.Salvage) {
    Res.Status = TraceReadStatus::Salvaged;
    Res.Error = Note;
  } else {
    Res.Status = TraceReadStatus::Unreadable;
    Res.Error = "strict mode refused damaged trace: " + Note;
    Res.T.PerThread.clear();
  }
  return Res;
}

std::vector<SegmentInfo> literace::scanSegments(const std::string &Path) {
  std::vector<SegmentInfo> Inventory;
  auto DataOpt = readWholeFile(Path);
  if (!DataOpt)
    return Inventory;
  const uint8_t *Data = DataOpt->data();
  const size_t Size = DataOpt->size();

  size_t O = 0;
  if (Size >= sizeof(FileHeader)) {
    FileHeader Header;
    std::memcpy(&Header, Data, sizeof(Header));
    if (Header.Magic == FileMagic &&
        Header.Version == SegmentedFileVersion)
      O = sizeof(FileHeader);
  }
  while (O < Size) {
    SegmentHeader H;
    if (O + sizeof(SegmentHeader) <= Size &&
        parseSegmentHeader(Data + O, Size - O, H)) {
      SegmentInfo Info;
      Info.Offset = O;
      Info.Tid = H.Tid;
      Info.EventCount = H.EventCount;
      Info.PayloadBytes = H.PayloadBytes;
      Info.Encoding = H.Encoding;
      Info.IsFooter = (H.Flags & SegFlagFooter) != 0;
      Info.HeaderOk = true;
      size_t End = O + sizeof(SegmentHeader) + H.PayloadBytes;
      Info.PayloadOk =
          End <= Size &&
          crc32c(Data + O + sizeof(SegmentHeader), H.PayloadBytes) ==
              H.PayloadCrc;
      Inventory.push_back(Info);
      O = End <= Size ? End : Size;
      continue;
    }
    // Record a damaged frame when the magic is present but the header
    // fails validation; then resync.
    uint32_t Magic = 0;
    if (O + sizeof(Magic) <= Size)
      std::memcpy(&Magic, Data + O, sizeof(Magic));
    if (Magic == SegmentMagic) {
      SegmentInfo Info;
      Info.Offset = O;
      Inventory.push_back(Info);
    }
    O = findNextHeader(Data, Size, O + 1);
  }
  return Inventory;
}

std::optional<Trace> literace::readTraceFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return std::nullopt;

  // Bound allocations against the real file size so a corrupt chunk
  // count fails cleanly instead of attempting a giant resize.
  uint64_t FileSize = 0;
  if (std::fseek(File, 0, SEEK_END) == 0) {
    long Pos = std::ftell(File);
    if (Pos > 0)
      FileSize = static_cast<uint64_t>(Pos);
  }
  std::rewind(File);

  Trace T;
  FileHeader Header;
  if (std::fread(&Header, sizeof(Header), 1, File) != 1 ||
      Header.Magic != FileMagic || Header.Version != FileVersion ||
      Header.NumTimestampCounters == 0) {
    std::fclose(File);
    return std::nullopt;
  }
  T.NumTimestampCounters = Header.NumTimestampCounters;

  ChunkHeader Chunk;
  std::vector<EventRecord> Buffer;
  while (std::fread(&Chunk, sizeof(Chunk), 1, File) == 1) {
    if (static_cast<uint64_t>(Chunk.Count) * sizeof(EventRecord) >
        FileSize) {
      std::fclose(File);
      return std::nullopt; // Corrupt count.
    }
    Buffer.resize(Chunk.Count);
    if (std::fread(Buffer.data(), sizeof(EventRecord), Chunk.Count, File) !=
        Chunk.Count) {
      std::fclose(File);
      return std::nullopt; // Truncated chunk.
    }
    if (!validRecords(Buffer.data(), Buffer.size())) {
      std::fclose(File);
      return std::nullopt; // Corrupt record kinds.
    }
    if (Chunk.Tid >= T.PerThread.size())
      T.PerThread.resize(Chunk.Tid + 1);
    auto &Stream = T.PerThread[Chunk.Tid];
    Stream.insert(Stream.end(), Buffer.begin(), Buffer.end());
  }
  std::fclose(File);
  return T;
}

//===----------------------------------------------------------------------===//
// SegmentStreamDecoder
//===----------------------------------------------------------------------===//

SegmentStreamDecoder::SegmentStreamDecoder() {
  Stats.Format = TraceFormat::V2Segmented;
}

SegmentStreamDecoder::~SegmentStreamDecoder() = default;

void SegmentStreamDecoder::feed(const void *Data, size_t Size) {
  if (Finished || Size == 0)
    return;
  BytesFed += Size;
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  Buffer.insert(Buffer.end(), P, P + Size);
  parse();
}

void SegmentStreamDecoder::parse() {
  const uint8_t *Data = Buffer.data();
  const size_t Size = Buffer.size();
  size_t O = Offset;

  if (!HeaderSeen) {
    if (Size - O < sizeof(FileHeader)) {
      Offset = O;
      return;
    }
    FileHeader Header;
    std::memcpy(&Header, Data + O, sizeof(Header));
    if (Header.Magic == FileMagic &&
        Header.Version == SegmentedFileVersion &&
        Header.NumTimestampCounters != 0) {
      NumCounters = Header.NumTimestampCounters;
      O += sizeof(FileHeader);
    } else {
      // Damaged or missing stream header. v2 frames are self-describing,
      // so fall through to the frame loop, which will resync on the first
      // CRC-valid frame magic — the same salvage readTrace() performs.
      Stats.SalvagedHeader = true;
    }
    HeaderSeen = true;
  }

  while (O < Size) {
    const size_t Avail = Size - O;
    if (Avail < sizeof(SegmentHeader))
      break; // Possibly a partial header; wait for more bytes.
    SegmentHeader H;
    if (!parseSegmentHeader(Data + O, Avail, H)) {
      // Damaged header: the frame length cannot be trusted, so resync by
      // scanning for the next frame whose header checks out. One damage
      // episode counts as one dropped segment no matter how many feed()
      // calls it spans (ResyncOpen carries that across calls).
      LastDecodedWasFooter = false;
      size_t Next = findNextHeader(Data, Size, O + 1);
      if (Next == Size) {
        // No validated header in the buffered bytes. A genuine header may
        // straddle the buffer end, so keep the final header-sized-minus-
        // one tail for re-examination once more bytes arrive.
        const size_t Keep = sizeof(SegmentHeader) - 1;
        const size_t Limit = Size - Keep;
        if (Limit <= O)
          break;
        Next = Limit;
      }
      if (!ResyncOpen) {
        ++Stats.SegmentsDropped;
        ResyncOpen = true;
      }
      Stats.BytesDropped += Next - O;
      O = Next;
      continue;
    }
    ResyncOpen = false;
    const size_t FrameBytes = sizeof(SegmentHeader) + H.PayloadBytes;
    if (Avail < FrameBytes)
      break; // Wait for the rest of the payload (finish() accounts it).

    const uint8_t *Payload = Data + O + sizeof(SegmentHeader);
    const bool IsFooter = (H.Flags & SegFlagFooter) != 0;
    bool Decoded = false;
    if (crc32c(Payload, H.PayloadBytes) == H.PayloadCrc) {
      if (IsFooter) {
        if (H.PayloadBytes == sizeof(SegmentFooterPayload) ||
            H.PayloadBytes == LegacyFooterPayloadBytes) {
          SegmentFooterPayload Footer{};
          std::memcpy(&Footer, Payload, H.PayloadBytes);
          FooterSeen = true;
          FooterTotalEvents = Footer.TotalEvents;
          FooterTotalSegments = Footer.TotalSegments;
          FooterDroppedEvents = Footer.DroppedEvents;
          Decoded = true;
        }
      } else if (H.Encoding == SegEncodingRaw) {
        if (H.PayloadBytes ==
            static_cast<uint64_t>(H.EventCount) * sizeof(EventRecord)) {
          Chunk C;
          C.Tid = H.Tid;
          C.Records.resize(H.EventCount);
          std::memcpy(C.Records.data(), Payload, H.PayloadBytes);
          if (validRecords(C.Records.data(), C.Records.size())) {
            Stats.EventsRecovered += C.Records.size();
            noteThreadRecovered(Stats, H.Tid, C.Records.size());
            ++Stats.SegmentsRecovered;
            Ready.push_back(std::move(C));
            Decoded = true;
          }
        }
      } else {
        auto Stream = decompressEventStream(Payload, H.PayloadBytes, H.Tid);
        if (Stream && Stream->size() == H.EventCount) {
          Chunk C;
          C.Tid = H.Tid;
          C.Records = std::move(*Stream);
          Stats.EventsRecovered += C.Records.size();
          noteThreadRecovered(Stats, H.Tid, C.Records.size());
          ++Stats.SegmentsRecovered;
          Ready.push_back(std::move(C));
          Decoded = true;
        }
      }
    }
    if (!Decoded) {
      ++Stats.SegmentsDropped;
      Stats.BytesDropped += FrameBytes;
      if (!IsFooter)
        noteThreadDropped(Stats, H.Tid);
    }
    LastDecodedWasFooter = Decoded && IsFooter;
    O += FrameBytes;
  }

  // Compact the consumed prefix; amortized so steady streaming does not
  // memmove on every feed.
  if (O == Size) {
    Buffer.clear();
    O = 0;
  } else if (O >= (64u << 10)) {
    Buffer.erase(Buffer.begin(), Buffer.begin() + O);
    O = 0;
  }
  Offset = O;
}

void SegmentStreamDecoder::noteGap(uint64_t ShedBytes) {
  if (Finished || ShedBytes == 0)
    return;
  const size_t Buffered = Buffer.size() - Offset;
  if (Buffered != 0) {
    // The buffered partial frame can never complete: its remainder is
    // inside the hole. A CRC-valid header in it still attributes the
    // loss to its thread, as in finish()'s truncated-tail accounting.
    SegmentHeader H;
    if (parseSegmentHeader(Buffer.data() + Offset, Buffered, H))
      noteThreadDropped(Stats, H.Tid);
    Stats.BytesDropped += Buffered;
    Buffer.clear();
    Offset = 0;
  }
  if (!ResyncOpen) {
    ++Stats.SegmentsDropped;
    ResyncOpen = true;
  }
  Stats.BytesDropped += ShedBytes;
  LastDecodedWasFooter = false;
}

void SegmentStreamDecoder::finish() {
  if (Finished)
    return;
  Finished = true;
  const size_t Leftover = Buffer.size() - Offset;
  if (Leftover != 0) {
    // The producer died (or the connection broke) mid-frame. A CRC-valid
    // header in the tail is trustworthy, so the loss is attributable to
    // its thread, exactly as in file salvage.
    Stats.TruncatedTail = true;
    if (!ResyncOpen)
      ++Stats.SegmentsDropped;
    Stats.BytesDropped += Leftover;
    SegmentHeader H;
    if (parseSegmentHeader(Buffer.data() + Offset, Leftover, H))
      noteThreadDropped(Stats, H.Tid);
    LastDecodedWasFooter = false;
  }
  Buffer.clear();
  Buffer.shrink_to_fit();
  Offset = 0;

  Stats.CleanShutdown = LastDecodedWasFooter;
  if (Stats.CleanShutdown) {
    Stats.EventsDroppedByWriter = FooterDroppedEvents;
    if (Stats.SegmentsDropped == 0 && !Stats.TruncatedTail &&
        (FooterTotalEvents != Stats.EventsRecovered ||
         FooterTotalSegments != Stats.SegmentsRecovered))
      Stats.FooterTotalsMismatch = true;
  }
  const size_t Threads = std::max(Stats.PerThreadRecovered.size(),
                                  Stats.PerThreadDropped.size());
  Stats.PerThreadRecovered.resize(Threads);
  Stats.PerThreadDropped.resize(Threads);
}

bool SegmentStreamDecoder::take(Chunk &Out) {
  if (ReadyHead == Ready.size()) {
    Ready.clear();
    ReadyHead = 0;
    return false;
  }
  Out = std::move(Ready[ReadyHead++]);
  if (ReadyHead == Ready.size()) {
    Ready.clear();
    ReadyHead = 0;
  }
  return true;
}
