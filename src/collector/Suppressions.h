//===-- collector/Suppressions.h - Race suppression files ------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Valgrind-style suppression files for the collector's triage pipeline
/// (docs/COLLECTOR.md). A suppression file is a sequence of brace-
/// delimited blocks, each naming the entry, the tool and error kind it
/// applies to, and one or two site patterns:
///
/// \code
///   # benign racy counter in the stats module
///   {
///     stats-counter
///     LiteRace:Race
///     site:fn3:7
///     site:fn3:*
///   }
/// \endcode
///
/// Site patterns match one side of a static race's site pair: `*` matches
/// any site, `0x<hex>` an exact encoded pc, `fnN` / `fnN:*` any site in
/// function N, and `fnN:S` one exact site. A block with one pattern
/// matches a race if either side matches; with two patterns both sides
/// must be covered, order-insensitively. Blocks whose tool list does not
/// include `LiteRace` (or `*`) belong to other tools and are skipped,
/// mirroring Valgrind's behavior for shared suppression files.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_COLLECTOR_SUPPRESSIONS_H
#define LITERACE_COLLECTOR_SUPPRESSIONS_H

#include "detector/RaceReport.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace literace {
namespace collector {

/// One site pattern of a suppression block.
struct SitePattern {
  enum class Kind : uint8_t {
    Any,          ///< `*`
    ExactPc,      ///< `0x<hex>` — an exact encoded pc
    Function,     ///< `fnN` or `fnN:*` — any site in function N
    FunctionSite, ///< `fnN:S`
  };

  Kind K = Kind::Any;
  Pc ExactPc = 0;
  uint32_t Function = 0;
  uint32_t Site = 0;

  bool matches(Pc P) const;
  std::string describe() const;
};

/// One parsed suppression block.
struct Suppression {
  std::string Name;
  std::vector<SitePattern> Sites; ///< one or two patterns

  /// True if this block covers the static race \p Key (see file comment
  /// for the one- vs two-pattern semantics).
  bool matches(const StaticRaceKey &Key) const;
};

/// A parsed suppression file with per-entry hit accounting.
class SuppressionSet {
public:
  /// Parses \p Text. On a grammar error, returns false with a line-
  /// numbered diagnostic in \p Error and leaves the set unchanged.
  bool parse(std::string_view Text, std::string *Error = nullptr);

  /// Reads and parses \p Path.
  bool loadFile(const std::string &Path, std::string *Error = nullptr);

  /// Index of the first entry matching \p Key, or -1. Does not count a
  /// hit — callers decide what one "hit" means (the collector counts
  /// suppressed dynamic updates).
  int match(const StaticRaceKey &Key) const;

  /// Counts \p N hits against entry \p Index (from match()).
  void countHit(int Index, uint64_t N = 1);

  /// Index of the entry named \p Name, or -1.
  int findByName(std::string_view Name) const;

  /// Sets (not adds) the hit count of the entry named \p Name; a no-op
  /// when no such entry exists. Used by collector checkpoint recovery,
  /// where the counts were accumulated by a previous daemon life.
  void restoreHits(std::string_view Name, uint64_t Hits);

  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }
  const Suppression &entry(size_t I) const { return Entries[I]; }
  uint64_t hits(size_t I) const { return HitCounts[I]; }

  /// "used suppression: <hits> <name>" lines, Valgrind-style; entries
  /// with zero hits are omitted.
  std::string describeUsed() const;

private:
  std::vector<Suppression> Entries;
  std::vector<uint64_t> HitCounts;
};

} // namespace collector
} // namespace literace

#endif // LITERACE_COLLECTOR_SUPPRESSIONS_H
