//===-- collector/Collector.h - Always-on collection daemon ----*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The literace-collectd ingestion server (docs/COLLECTOR.md). Many
/// concurrent `literace-run --connect` processes stream their v2
/// segmented event logs — the exact on-disk byte format, CRC frames and
/// all — over an AF_UNIX stream socket. One CollectorServer:
///
///   accept thread ──► per-connection reader threads
///        each: recv ─► journal (WAL) ─► SegmentStreamDecoder ─► queue
///                                                   │
///   detection thread ◄───────────────────── single consumer
///        per-session ReplayScheduler + HBDetector (or sharded)
///        race-count deltas ─► ReportTriage (dedup / suppress / limit)
///
/// Live observability rides on top: statusJson() / racesJson() /
/// metricsText() render the daemon state, and serveHttpUnix() /
/// serveHttpTcp() expose them as an HTTP/1.0 endpoint (`/status`,
/// `/races`, `/metrics` in Prometheus text exposition).
///
/// A connection is one *session*: its stream is decoded and detected
/// independently (threads from different processes never mix), and a
/// broken connection degrades to the same salvage semantics as reading a
/// crashed process's on-disk trace — intact frames are kept, the
/// truncated tail is accounted, and the session finishes with
/// gap-tolerant draining instead of hanging the daemon.
///
/// Crash-only operation (docs/ROBUSTNESS.md): with a --spool-dir
/// configured, every session's raw bytes are journaled *before*
/// detection sees them, triage state is checkpointed atomically as a
/// `literace.triage.v1` document, and start() recovers both — salvaging
/// partial journals through the same gap-tolerant path as file reads and
/// replaying only the per-race count deltas beyond what the checkpoint
/// already published, so a kill at any byte offset never double-counts.
/// Clients speaking the resumable stream protocol (support/ByteOutput.h)
/// reconnect mid-session and resume from the daemon's acked durable
/// position; when detection falls behind, a journaled session spills to
/// its journal instead of growing the queue and the daemon reports
/// itself `degraded` until the tail is replayed at session end.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_COLLECTOR_COLLECTOR_H
#define LITERACE_COLLECTOR_COLLECTOR_H

#include "collector/Checkpoint.h"
#include "collector/ReportTriage.h"
#include "collector/Suppressions.h"
#include "detector/HBDetector.h"
#include "detector/Replay.h"
#include "detector/ShardedDetector.h"
#include "runtime/EventLog.h"
#include "support/MpscChunkQueue.h"
#include "telemetry/Metrics.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace literace {
namespace collector {

/// Configuration of a CollectorServer.
struct CollectorConfig {
  /// Path of the AF_UNIX ingest socket to listen on (required; an
  /// existing socket file is replaced).
  std::string IngestSocketPath;
  /// Detection shards per session; 1 = serial HBDetector, which also
  /// surfaces race updates live mid-session (the sharded pipeline merges
  /// per-shard reports only at session end).
  unsigned Shards = 1;
  /// Ingest queue capacity (chunks); producers feel backpressure beyond.
  size_t QueueCapacity = 1024;
  /// Triage tuning (rate limit, injectable clock).
  TriageConfig Triage;
  /// Optional suppression set; must outlive the server.
  SuppressionSet *Suppressions = nullptr;
  /// Metrics override for tests (resolveRegistry semantics).
  telemetry::MetricsRegistry *Metrics = nullptr;

  /// Directory for write-ahead session journals and triage checkpoints
  /// (docs/ROBUSTNESS.md). Empty disables durability — no journals, no
  /// checkpoints, no recovery. Created on start() if missing.
  std::string SpoolDir;
  /// Write a triage checkpoint after this many emitted race updates
  /// (plus always at session finish and on resume gaps). 0 checkpoints
  /// only at session boundaries.
  uint64_t CheckpointEveryUpdates = 64;
  /// Ack journaled progress to resumable clients every this many
  /// logical-stream bytes (bounds their spool retention).
  uint64_t AckEveryBytes = 1 << 20;
  /// tryPush attempts (with yields) before a journaled session spills
  /// chunks to its journal instead of blocking the reader on the queue.
  unsigned SpillAfterRetries = 64;
  /// A detached resumable session (client reconnecting) is finalized
  /// with salvage semantics after this long with no connection.
  uint64_t SessionIdleTimeoutMs = 30000;
  /// Per-connection HTTP I/O deadline: a stalled scraper is cut off
  /// instead of wedging the serving thread.
  uint64_t HttpIoTimeoutMs = 5000;
  /// Deadline for each resumable-protocol handshake frame.
  uint64_t HandshakeTimeoutMs = 2000;
  /// Test hook: journaled sessions spill every chunk, so detection runs
  /// entirely from the journal replay at session end.
  bool TestForceSpill = false;
};

/// Point-in-time status of one ingest session (for /status).
struct SessionStatus {
  uint64_t Id = 0;
  bool Active = false;
  bool Clean = false; ///< stream ended with a footer at EOF
  uint64_t Bytes = 0;
  uint64_t Events = 0;
  uint64_t SegmentsRecovered = 0;
  uint64_t SegmentsDropped = 0;
  uint64_t BytesDropped = 0; ///< shed/corrupt bytes, declared gaps included
  uint64_t TimestampGaps = 0;
  uint64_t Races = 0; ///< distinct static races in this session
  bool Resumable = false; ///< spoke the resumable stream handshake
  bool Detached = false;  ///< live but currently between connections
  bool Spilling = false;  ///< overloaded: chunks deferred to journal
  bool Recovered = false; ///< re-created from a journal at startup
  uint64_t SpilledEvents = 0;
  uint64_t LogicalPos = 0; ///< client-stream offset acked as durable
};

/// The daemon core: socket ingestion, per-session incremental detection,
/// and the observability surface.
class CollectorServer {
public:
  explicit CollectorServer(CollectorConfig Config);
  ~CollectorServer();

  CollectorServer(const CollectorServer &) = delete;
  CollectorServer &operator=(const CollectorServer &) = delete;

  /// Binds the ingest socket, recovers spooled state (journals +
  /// checkpoint) when SpoolDir is set, and starts the accept, detection
  /// and housekeeping threads. False (with \p Error) if the socket
  /// cannot be bound.
  bool start(std::string *Error = nullptr);

  /// Graceful shutdown: stops accepting, ends live sessions with salvage
  /// semantics, drains the queue, and joins every thread. Idempotent.
  void stop();

  /// Simulated daemon crash for recovery tests: tears every thread down
  /// *without* final checkpoints, journal unlinks, or queue draining —
  /// whatever is on disk is exactly what a SIGKILL would have left.
  void crashForTest();

  /// Serves the HTTP endpoint on an AF_UNIX socket at \p Path.
  bool serveHttpUnix(const std::string &Path, std::string *Error = nullptr);

  /// Serves the HTTP endpoint on 127.0.0.1:\p Port (0 = ephemeral; the
  /// bound port is returned in \p BoundPort).
  bool serveHttpTcp(uint16_t Port, uint16_t *BoundPort = nullptr,
                    std::string *Error = nullptr);

  /// Blocks until \p N sessions have completed (connection closed and
  /// every event detected) or stop() is called.
  void waitForSessions(uint64_t N);

  uint64_t sessionsAccepted() const;
  uint64_t sessionsCompleted() const;

  /// Total bytes ingested across all sessions and lives, including
  /// recovery replay (drives literace-collectd --kill-after-bytes).
  uint64_t bytesIngested() const {
    return BytesIngestedTotal.load(std::memory_order_relaxed);
  }

  /// True while the daemon is shedding load (a session is spilling to
  /// its journal) or has lost durability (journal/checkpoint I/O error).
  bool degraded() const;

  /// Triage checkpoints committed to the spool directory.
  uint64_t checkpointsWritten() const {
    return CheckpointsWritten.load(std::memory_order_relaxed);
  }

  /// The triage pipeline (live race set, suppression/rate-limit state).
  ReportTriage &triage() { return Triage; }
  const ReportTriage &triage() const { return Triage; }

  /// Per-session detail in id order.
  std::vector<SessionStatus> sessionStatuses() const;

  /// The literace.status.v1 JSON document served at /status.
  std::string statusJson() const;

  /// The literace.races.v1 JSON document served at /races.
  std::string racesJson() const;

  /// The Prometheus text exposition served at /metrics.
  std::string metricsText() const;

  /// Routes one HTTP request path to its response body + content type;
  /// false for unknown paths. Exposed for direct testing.
  bool route(const std::string &Path, std::string &Body,
             std::string &ContentType) const;

private:
  /// One queued hand-off from a reader to the detection thread.
  struct IngestItem {
    enum class Kind : uint8_t { Chunk, End } K = Kind::Chunk;
    uint64_t SessionId = 0;
    ThreadId Tid = 0;
    std::vector<EventRecord> Records;
    unsigned NumCounters = 128;
    bool Clean = false;
    uint64_t SegmentsRecovered = 0;
    uint64_t SegmentsDropped = 0;
    /// End only: the session spilled chunks to its journal; re-read the
    /// journal and feed the tail beyond what was already queued.
    bool ReplayTail = false;
  };

  /// Shared live state of one session (readers and the detection thread
  /// update disjoint fields; /status reads them racily but torn-free).
  /// A resumable session outlives any single connection: reader threads
  /// attach to and detach from it as the client reconnects.
  struct SessionState {
    uint64_t Id = 0;
    uint64_t RunIdHi = 0, RunIdLo = 0; ///< const after creation
    bool ResumableSession = false;     ///< const after creation
    bool RecoveredSession = false;     ///< const after creation
    std::string JournalPath;           ///< const after creation; "" = none
    std::atomic<bool> Active{true};
    std::atomic<bool> Clean{false};
    std::atomic<uint64_t> Bytes{0};
    std::atomic<uint64_t> Events{0};
    std::atomic<uint64_t> SegmentsRecovered{0};
    std::atomic<uint64_t> SegmentsDropped{0};
    std::atomic<uint64_t> BytesDropped{0};
    std::atomic<uint64_t> TimestampGaps{0};
    std::atomic<uint64_t> Races{0};
    /// Client-stream offset acked as durable (journaled bytes plus
    /// declared resume gaps).
    std::atomic<uint64_t> LogicalPos{0};
    std::atomic<uint64_t> JournalBytes{0};
    /// LogicalPos − JournalBytes: the stream offset of journal byte 0
    /// plus every declared gap. Changes only when a resume gap is
    /// declared, so a checkpoint can read it torn-free and recovery can
    /// reconstruct the ack position as StreamBase + journal file size —
    /// immune to the reader racing LogicalPos/JournalBytes updates.
    std::atomic<uint64_t> StreamBase{0};
    std::atomic<bool> Spilling{false};
    std::atomic<uint64_t> SpilledEvents{0};
    std::atomic<bool> Detached{false};
    std::atomic<uint64_t> DetachedAtMs{0};

    /// Reader-side ingest state, surviving connection turnover.
    /// Guarded by IngestLock; never held while taking SessionsLock
    /// is fine (SessionsLock is never taken under IngestLock holders
    /// except finalizeIngest, which orders IngestLock → SessionsLock;
    /// no path orders them the other way).
    std::mutex IngestLock;
    std::unique_ptr<SegmentStreamDecoder> Decoder;
    int JournalFd = -1;
    /// False once a journal write failed: the session degrades to
    /// live-only (no spill, acks no longer durable).
    bool JournalOk = false;
    int AttachedFd = -1;
    uint64_t LastAckPos = 0;
    bool Ended = false;
  };

  /// Detection-thread-private state of one in-flight session.
  struct Detection;

  void acceptLoop();
  void readerLoop(int Fd);
  void detectLoop();
  void housekeepingLoop();
  void httpLoop(int ListenFd);
  void publish(Detection &D, uint64_t SessionId);
  void finishSession(Detection &D, const IngestItem &End);

  /// Creates and registers a session. \p ForcedId re-creates a recovered
  /// session under its old id (and opens its journal for append instead
  /// of truncating).
  std::shared_ptr<SessionState> createSession(uint64_t RunIdHi,
                                              uint64_t RunIdLo,
                                              bool Resumable, bool Recovered,
                                              uint64_t ForcedId = 0);
  /// Runs the resumable-protocol handshake on \p Fd (whose "LRH1" magic
  /// was already consumed): resolves or creates the session by run id,
  /// takes over any stale attached connection, acks the durable
  /// position, and records the client's declared resume gap. Null if the
  /// handshake fails or the session already ended.
  std::shared_ptr<SessionState> handshakeSession(int Fd);
  /// Journals then decodes \p N bytes and forwards decoded chunks
  /// (IngestLock held by the caller). False = the WAL broke on a
  /// resumable session; tear the connection so the client's spool keeps
  /// the bytes.
  bool ingestBytes(SessionState &State, const uint8_t *Data, size_t N,
                   bool &QueueClosed);
  void forwardDecoded(SessionState &State, bool &QueueClosed);
  /// Ends a session's ingest side: finishes the decoder, closes the
  /// journal fd, and enqueues the End item. Idempotent. With
  /// \p OnlyIfDetached, a session that re-attached meanwhile is left
  /// alone (housekeeping's idle timeout racing a reconnect).
  void finalizeIngest(const std::shared_ptr<SessionState> &State,
                      bool OnlyIfDetached = false);
  /// Startup recovery: loads the checkpoint, re-creates sessions from
  /// their journals, and replays journal bytes through normal ingestion
  /// with already-published counts subtracted.
  void recoverFromSpool();
  /// Re-reads a spilled session's journal and feeds each thread's tail
  /// beyond what detection already consumed.
  void replaySpilledTail(Detection &D, const IngestItem &End);
  /// Writes the triage checkpoint (detection thread only; \p Live is its
  /// in-flight table, whose Published maps make replay idempotent).
  void writeCheckpoint(const std::map<uint64_t, Detection> &Live);

  CollectorConfig Config;
  SuppressionSet EmptySuppressions;
  ReportTriage Triage;
  MpscChunkQueue<IngestItem> Queue;
  telemetry::MetricsRegistry *Metrics = nullptr;

  int ListenFd = -1;
  std::atomic<bool> Started{false};
  std::atomic<bool> Stopping{false};
  std::atomic<bool> Crashed{false};

  mutable std::mutex SessionsLock;
  std::map<uint64_t, std::shared_ptr<SessionState>> Sessions;
  /// run id → session id, for reconnect routing. Guarded by
  /// SessionsLock; entries die when their session's ingest finalizes.
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> RunIdIndex;
  /// Recovered sessions' already-published counts, handed to the
  /// detection thread when it first sees the session. Guarded by
  /// SessionsLock.
  std::map<uint64_t, std::map<StaticRaceKey, uint64_t>> RecoveredPublished;
  uint64_t NextSessionId = 1;
  uint64_t Accepted = 0;   // guarded by SessionsLock
  uint64_t Completed = 0;  // guarded by SessionsLock
  uint64_t CleanCount = 0; // guarded by SessionsLock
  std::condition_variable SessionsCv;

  std::mutex ReadersLock;
  std::vector<std::thread> Readers;
  std::vector<int> LiveFds; // guarded by ReadersLock

  std::thread Acceptor;
  std::thread Detector;
  std::thread Housekeeper;

  std::mutex HttpLock;
  std::vector<std::thread> HttpThreads;
  std::vector<int> HttpListenFds; // guarded by HttpLock
  std::atomic<uint64_t> HttpRequests{0};
  std::atomic<uint64_t> HttpTimeouts{0};

  std::atomic<uint64_t> BytesIngestedTotal{0};
  std::atomic<uint64_t> CheckpointsWritten{0};
  std::atomic<uint64_t> RecoveredCount{0};
  std::atomic<uint64_t> ResumedCount{0};
  std::atomic<uint64_t> GapBytesTotal{0};
  std::atomic<bool> DurabilityBroken{false};
  /// Set by resume gaps; the detection thread folds it into its next
  /// checkpoint decision.
  std::atomic<bool> CheckpointRequested{false};
  /// Emitted race updates since the last checkpoint (detection thread
  /// only).
  uint64_t PublishedSinceCkpt = 0;
};

} // namespace collector
} // namespace literace

#endif // LITERACE_COLLECTOR_COLLECTOR_H
