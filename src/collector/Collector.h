//===-- collector/Collector.h - Always-on collection daemon ----*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The literace-collectd ingestion server (docs/COLLECTOR.md). Many
/// concurrent `literace-run --connect` processes stream their v2
/// segmented event logs — the exact on-disk byte format, CRC frames and
/// all — over an AF_UNIX stream socket. One CollectorServer:
///
///   accept thread ──► per-connection reader threads
///        each: recv ─► SegmentStreamDecoder ─► MpscChunkQueue
///                                                   │
///   detection thread ◄───────────────────── single consumer
///        per-session ReplayScheduler + HBDetector (or sharded)
///        race-count deltas ─► ReportTriage (dedup / suppress / limit)
///
/// Live observability rides on top: statusJson() / racesJson() /
/// metricsText() render the daemon state, and serveHttpUnix() /
/// serveHttpTcp() expose them as an HTTP/1.0 endpoint (`/status`,
/// `/races`, `/metrics` in Prometheus text exposition).
///
/// A connection is one *session*: its stream is decoded and detected
/// independently (threads from different processes never mix), and a
/// broken connection degrades to the same salvage semantics as reading a
/// crashed process's on-disk trace — intact frames are kept, the
/// truncated tail is accounted, and the session finishes with
/// gap-tolerant draining instead of hanging the daemon.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_COLLECTOR_COLLECTOR_H
#define LITERACE_COLLECTOR_COLLECTOR_H

#include "collector/ReportTriage.h"
#include "collector/Suppressions.h"
#include "detector/HBDetector.h"
#include "detector/Replay.h"
#include "detector/ShardedDetector.h"
#include "runtime/EventLog.h"
#include "support/MpscChunkQueue.h"
#include "telemetry/Metrics.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace literace {
namespace collector {

/// Configuration of a CollectorServer.
struct CollectorConfig {
  /// Path of the AF_UNIX ingest socket to listen on (required; an
  /// existing socket file is replaced).
  std::string IngestSocketPath;
  /// Detection shards per session; 1 = serial HBDetector, which also
  /// surfaces race updates live mid-session (the sharded pipeline merges
  /// per-shard reports only at session end).
  unsigned Shards = 1;
  /// Ingest queue capacity (chunks); producers feel backpressure beyond.
  size_t QueueCapacity = 1024;
  /// Triage tuning (rate limit, injectable clock).
  TriageConfig Triage;
  /// Optional suppression set; must outlive the server.
  SuppressionSet *Suppressions = nullptr;
  /// Metrics override for tests (resolveRegistry semantics).
  telemetry::MetricsRegistry *Metrics = nullptr;
};

/// Point-in-time status of one ingest session (for /status).
struct SessionStatus {
  uint64_t Id = 0;
  bool Active = false;
  bool Clean = false; ///< stream ended with a footer at EOF
  uint64_t Bytes = 0;
  uint64_t Events = 0;
  uint64_t SegmentsRecovered = 0;
  uint64_t SegmentsDropped = 0;
  uint64_t TimestampGaps = 0;
  uint64_t Races = 0; ///< distinct static races in this session
};

/// The daemon core: socket ingestion, per-session incremental detection,
/// and the observability surface.
class CollectorServer {
public:
  explicit CollectorServer(CollectorConfig Config);
  ~CollectorServer();

  CollectorServer(const CollectorServer &) = delete;
  CollectorServer &operator=(const CollectorServer &) = delete;

  /// Binds the ingest socket and starts the accept and detection
  /// threads. False (with \p Error) if the socket cannot be bound.
  bool start(std::string *Error = nullptr);

  /// Graceful shutdown: stops accepting, ends live sessions with salvage
  /// semantics, drains the queue, and joins every thread. Idempotent.
  void stop();

  /// Serves the HTTP endpoint on an AF_UNIX socket at \p Path.
  bool serveHttpUnix(const std::string &Path, std::string *Error = nullptr);

  /// Serves the HTTP endpoint on 127.0.0.1:\p Port (0 = ephemeral; the
  /// bound port is returned in \p BoundPort).
  bool serveHttpTcp(uint16_t Port, uint16_t *BoundPort = nullptr,
                    std::string *Error = nullptr);

  /// Blocks until \p N sessions have completed (connection closed and
  /// every event detected) or stop() is called.
  void waitForSessions(uint64_t N);

  uint64_t sessionsAccepted() const;
  uint64_t sessionsCompleted() const;

  /// The triage pipeline (live race set, suppression/rate-limit state).
  ReportTriage &triage() { return Triage; }
  const ReportTriage &triage() const { return Triage; }

  /// Per-session detail in id order.
  std::vector<SessionStatus> sessionStatuses() const;

  /// The literace.status.v1 JSON document served at /status.
  std::string statusJson() const;

  /// The literace.races.v1 JSON document served at /races.
  std::string racesJson() const;

  /// The Prometheus text exposition served at /metrics.
  std::string metricsText() const;

  /// Routes one HTTP request path to its response body + content type;
  /// false for unknown paths. Exposed for direct testing.
  bool route(const std::string &Path, std::string &Body,
             std::string &ContentType) const;

private:
  /// One queued hand-off from a reader to the detection thread.
  struct IngestItem {
    enum class Kind : uint8_t { Chunk, End } K = Kind::Chunk;
    uint64_t SessionId = 0;
    ThreadId Tid = 0;
    std::vector<EventRecord> Records;
    unsigned NumCounters = 128;
    bool Clean = false;
    uint64_t SegmentsRecovered = 0;
    uint64_t SegmentsDropped = 0;
  };

  /// Shared live state of one session (readers and the detection thread
  /// update disjoint fields; /status reads them racily but torn-free).
  struct SessionState {
    uint64_t Id = 0;
    std::atomic<bool> Active{true};
    std::atomic<bool> Clean{false};
    std::atomic<uint64_t> Bytes{0};
    std::atomic<uint64_t> Events{0};
    std::atomic<uint64_t> SegmentsRecovered{0};
    std::atomic<uint64_t> SegmentsDropped{0};
    std::atomic<uint64_t> TimestampGaps{0};
    std::atomic<uint64_t> Races{0};
  };

  /// Detection-thread-private state of one in-flight session.
  struct Detection;

  void acceptLoop();
  void readerLoop(uint64_t SessionId, int Fd);
  void detectLoop();
  void httpLoop(int ListenFd);
  void publish(Detection &D, uint64_t SessionId);
  void finishSession(Detection &D, const IngestItem &End);

  CollectorConfig Config;
  SuppressionSet EmptySuppressions;
  ReportTriage Triage;
  MpscChunkQueue<IngestItem> Queue;
  telemetry::MetricsRegistry *Metrics = nullptr;

  int ListenFd = -1;
  std::atomic<bool> Started{false};
  std::atomic<bool> Stopping{false};

  mutable std::mutex SessionsLock;
  std::map<uint64_t, std::shared_ptr<SessionState>> Sessions;
  uint64_t NextSessionId = 1;
  uint64_t Accepted = 0;   // guarded by SessionsLock
  uint64_t Completed = 0;  // guarded by SessionsLock
  uint64_t CleanCount = 0; // guarded by SessionsLock
  std::condition_variable SessionsCv;

  std::mutex ReadersLock;
  std::vector<std::thread> Readers;
  std::vector<int> LiveFds; // guarded by ReadersLock

  std::thread Acceptor;
  std::thread Detector;

  std::mutex HttpLock;
  std::vector<std::thread> HttpThreads;
  std::vector<int> HttpListenFds; // guarded by HttpLock
  std::atomic<uint64_t> HttpRequests{0};
};

} // namespace collector
} // namespace literace

#endif // LITERACE_COLLECTOR_COLLECTOR_H
