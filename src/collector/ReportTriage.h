//===-- collector/ReportTriage.h - Report-hygiene pipeline -----*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collector's report-hygiene pipeline (docs/COLLECTOR.md): every
/// race update flowing out of the live detectors passes through one
/// ReportTriage, which (1) deduplicates by the static site-pair
/// fingerprint, accumulating occurrence counts and the set of sessions a
/// race manifested in, (2) drops updates matching a loaded suppression
/// file (counting each suppressed occurrence against its entry), and
/// (3) rate-limits emission per race with a token bucket, so one hot
/// racy loop cannot flood the operator's log while a new, rare race
/// still surfaces immediately.
///
/// The clock is injectable (TriageConfig::NowNs) so the rate-limit tests
/// are deterministic; the default reads the monotonic steady clock.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_COLLECTOR_REPORTTRIAGE_H
#define LITERACE_COLLECTOR_REPORTTRIAGE_H

#include "collector/Suppressions.h"
#include "detector/RaceReport.h"

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace literace {
namespace collector {

/// Tuning and dependencies of a ReportTriage.
struct TriageConfig {
  /// Token-bucket refill rate per race: emitted updates per second after
  /// the burst is spent. 0 disables rate limiting.
  double RatePerSec = 1.0;
  /// Bucket capacity: updates a race may emit back-to-back.
  double Burst = 5.0;
  /// Clock returning monotonic nanoseconds; tests inject a fake.
  std::function<uint64_t()> NowNs;
};

/// Aggregated triage state of one static race.
struct TriagedRace {
  StaticRaceKey Key;
  uint64_t DynamicCount = 0;       ///< dynamic sightings across sessions
  uint64_t Sessions = 0;           ///< distinct sessions that saw it
  uint64_t ExampleAddr = 0;        ///< address of the first sighting seen
  bool SawWriteWrite = false;
  bool Suppressed = false;         ///< matched a suppression entry
  std::string SuppressionName;     ///< name of the matching entry
  uint64_t EmittedUpdates = 0;     ///< updates that passed the bucket
  uint64_t RateLimitedUpdates = 0; ///< updates the bucket swallowed
};

/// Checkpointable state of one triaged race (collector/Checkpoint.h):
/// the public TriagedRace plus the rate-limiter bucket and the session
/// set backing the Sessions count.
struct TriageCheckpointEntry {
  TriagedRace R;
  double Tokens = 0;
  std::vector<uint64_t> SessionIds;
};

/// Deduplicating, suppressing, rate-limiting sink for live race updates.
/// observe() is called by the collector's detection thread; the read
/// accessors are safe from any thread (HTTP handlers).
class ReportTriage {
public:
  /// \p Suppressions may be null (nothing suppressed) and must outlive
  /// this object.
  explicit ReportTriage(TriageConfig Config = TriageConfig(),
                        SuppressionSet *Suppressions = nullptr);

  /// Called once per emitted (deduped, unsuppressed, un-rate-limited)
  /// update with the post-update state and the new sightings this update
  /// contributed.
  using EmitFn = std::function<void(const TriagedRace &, uint64_t Delta)>;
  void setEmitter(EmitFn Fn);

  /// Folds \p Delta new dynamic sightings of \p Key from session
  /// \p SessionId into the table and runs the hygiene pipeline.
  void observe(const StaticRaceKey &Key, uint64_t Delta, bool WriteWrite,
               uint64_t ExampleAddr, uint64_t SessionId);

  /// All triaged races in canonical (site-pair) order.
  std::vector<TriagedRace> races() const;

  size_t distinctRaces() const;
  /// Distinct races not matching any suppression.
  size_t unsuppressedRaces() const;
  uint64_t totalSightings() const;
  uint64_t suppressedSightings() const;
  uint64_t rateLimitedUpdates() const;

  /// Full table state for a collector checkpoint, in key order.
  std::vector<TriageCheckpointEntry> checkpointEntries() const;
  /// Aggregate counters for a checkpoint (one consistent snapshot).
  void checkpointTotals(uint64_t &SightingsOut, uint64_t &SuppressedOut,
                        uint64_t &RateLimitedOut) const;
  /// Replaces the table with checkpointed state (daemon recovery).
  /// Suppression status is re-derived against the current suppression
  /// set, and rate-limiter refill clocks restart at now (monotonic
  /// clocks do not survive a restart); token balances are preserved.
  void restore(const std::vector<TriageCheckpointEntry> &Entries,
               uint64_t SightingsIn, uint64_t SuppressedIn,
               uint64_t RateLimitedIn);

private:
  struct Entry {
    TriagedRace R;
    std::set<uint64_t> SessionIds;
    double Tokens = 0;
    uint64_t LastRefillNs = 0;
    int SuppressionIndex = -1;
  };

  TriageConfig Config;
  SuppressionSet *Suppressions;
  EmitFn Emitter;

  mutable std::mutex Lock;
  std::map<StaticRaceKey, Entry> Table;
  uint64_t Sightings = 0;
  uint64_t SuppressedHits = 0;
  uint64_t RateLimited = 0;
};

} // namespace collector
} // namespace literace

#endif // LITERACE_COLLECTOR_REPORTTRIAGE_H
