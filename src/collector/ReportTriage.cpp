//===-- collector/ReportTriage.cpp - Report-hygiene pipeline -------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "collector/ReportTriage.h"

#include <chrono>

using namespace literace;
using namespace literace::collector;

namespace {

uint64_t steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

ReportTriage::ReportTriage(TriageConfig ConfigIn,
                           SuppressionSet *SuppressionsIn)
    : Config(std::move(ConfigIn)), Suppressions(SuppressionsIn) {
  if (!Config.NowNs)
    Config.NowNs = steadyNowNs;
}

void ReportTriage::setEmitter(EmitFn Fn) {
  std::lock_guard<std::mutex> Guard(Lock);
  Emitter = std::move(Fn);
}

void ReportTriage::observe(const StaticRaceKey &Key, uint64_t Delta,
                           bool WriteWrite, uint64_t ExampleAddr,
                           uint64_t SessionId) {
  if (Delta == 0)
    return;
  TriagedRace Snapshot;
  EmitFn Fire;
  {
    std::lock_guard<std::mutex> Guard(Lock);
    auto [It, Inserted] = Table.emplace(Key, Entry());
    Entry &E = It->second;
    if (Inserted) {
      E.R.Key = Key;
      E.R.ExampleAddr = ExampleAddr;
      // Suppression status is a property of the site pair, so one check
      // at first sight covers every later update.
      if (Suppressions)
        E.SuppressionIndex = Suppressions->match(Key);
      if (E.SuppressionIndex >= 0) {
        E.R.Suppressed = true;
        E.R.SuppressionName =
            Suppressions->entry(static_cast<size_t>(E.SuppressionIndex))
                .Name;
      }
      // A fresh race starts with a full bucket: the first report of a new
      // finding is never delayed.
      E.Tokens = Config.Burst;
      E.LastRefillNs = Config.NowNs();
    }
    E.R.DynamicCount += Delta;
    E.R.SawWriteWrite |= WriteWrite;
    E.SessionIds.insert(SessionId);
    E.R.Sessions = E.SessionIds.size();
    Sightings += Delta;

    if (E.R.Suppressed) {
      SuppressedHits += Delta;
      if (Suppressions)
        Suppressions->countHit(E.SuppressionIndex, Delta);
      return;
    }

    if (Config.RatePerSec > 0) {
      const uint64_t Now = Config.NowNs();
      if (Now > E.LastRefillNs) {
        E.Tokens += Config.RatePerSec *
                    (static_cast<double>(Now - E.LastRefillNs) / 1e9);
        if (E.Tokens > Config.Burst)
          E.Tokens = Config.Burst;
        E.LastRefillNs = Now;
      }
      if (E.Tokens < 1.0) {
        ++E.R.RateLimitedUpdates;
        ++RateLimited;
        return;
      }
      E.Tokens -= 1.0;
    }
    ++E.R.EmittedUpdates;
    Snapshot = E.R;
    Fire = Emitter;
  }
  // Emit outside the lock: the emitter may log, write sockets, or call
  // back into the accessors.
  if (Fire)
    Fire(Snapshot, Delta);
}

std::vector<TriagedRace> ReportTriage::races() const {
  std::lock_guard<std::mutex> Guard(Lock);
  std::vector<TriagedRace> Out;
  Out.reserve(Table.size());
  for (const auto &[Key, E] : Table)
    Out.push_back(E.R);
  return Out; // std::map iterates keys in canonical (sorted) order.
}

size_t ReportTriage::distinctRaces() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Table.size();
}

size_t ReportTriage::unsuppressedRaces() const {
  std::lock_guard<std::mutex> Guard(Lock);
  size_t N = 0;
  for (const auto &[Key, E] : Table)
    N += E.R.Suppressed ? 0 : 1;
  return N;
}

uint64_t ReportTriage::totalSightings() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Sightings;
}

uint64_t ReportTriage::suppressedSightings() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return SuppressedHits;
}

uint64_t ReportTriage::rateLimitedUpdates() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return RateLimited;
}

std::vector<TriageCheckpointEntry> ReportTriage::checkpointEntries() const {
  std::lock_guard<std::mutex> Guard(Lock);
  std::vector<TriageCheckpointEntry> Out;
  Out.reserve(Table.size());
  for (const auto &[Key, E] : Table) {
    TriageCheckpointEntry C;
    C.R = E.R;
    C.Tokens = E.Tokens;
    C.SessionIds.assign(E.SessionIds.begin(), E.SessionIds.end());
    Out.push_back(std::move(C));
  }
  return Out;
}

void ReportTriage::checkpointTotals(uint64_t &SightingsOut,
                                    uint64_t &SuppressedOut,
                                    uint64_t &RateLimitedOut) const {
  std::lock_guard<std::mutex> Guard(Lock);
  SightingsOut = Sightings;
  SuppressedOut = SuppressedHits;
  RateLimitedOut = RateLimited;
}

void ReportTriage::restore(const std::vector<TriageCheckpointEntry> &Entries,
                           uint64_t SightingsIn, uint64_t SuppressedIn,
                           uint64_t RateLimitedIn) {
  const uint64_t Now = Config.NowNs();
  std::lock_guard<std::mutex> Guard(Lock);
  Table.clear();
  for (const TriageCheckpointEntry &C : Entries) {
    Entry &E = Table[C.R.Key];
    E.R = C.R;
    E.Tokens = C.Tokens;
    E.LastRefillNs = Now;
    E.SessionIds.insert(C.SessionIds.begin(), C.SessionIds.end());
    E.R.Sessions = E.SessionIds.size();
    // Suppression membership follows the file loaded *now*, not the one
    // the checkpoint was written under.
    E.SuppressionIndex = Suppressions ? Suppressions->match(C.R.Key) : -1;
    E.R.Suppressed = E.SuppressionIndex >= 0;
    E.R.SuppressionName =
        E.R.Suppressed
            ? Suppressions->entry(static_cast<size_t>(E.SuppressionIndex))
                  .Name
            : std::string();
  }
  Sightings = SightingsIn;
  SuppressedHits = SuppressedIn;
  RateLimited = RateLimitedIn;
}
