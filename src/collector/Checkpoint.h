//===-- collector/Checkpoint.h - Collector durability state ----*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collector's crash-recovery state (docs/ROBUSTNESS.md): the
/// `literace.triage.v1` checkpoint document and the session-journal
/// naming scheme inside a `--spool-dir`.
///
/// A running daemon journals each session's raw v2 segment bytes to
/// `session-<id>-<runid>-<r|l>.journal` *before* detection (write-ahead;
/// the file is a byte prefix of the client's primary log, so `readTrace`
/// salvages it like any crashed trace), and periodically checkpoints the
/// triage table — dedup keys, dynamic counts, suppression hits,
/// rate-limiter tokens — together with, per in-flight session, the
/// counts already forwarded to triage. Recovery replays each surviving
/// journal and observes only `finalCount - checkpointedPublished` per
/// race, which makes every crash window idempotent: a journal whose
/// session completed but was not yet unlinked replays to a delta of
/// zero.
///
/// literace-fsck audits the same structures offline (`--spool`).
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_COLLECTOR_CHECKPOINT_H
#define LITERACE_COLLECTOR_CHECKPOINT_H

#include "collector/ReportTriage.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace literace {
namespace collector {

/// One in-flight session recorded in a checkpoint: enough to resume its
/// ack accounting and to replay only the un-checkpointed delta.
struct CheckpointSessionEntry {
  uint64_t Id = 0;
  uint64_t RunIdHi = 0;
  uint64_t RunIdLo = 0;
  bool Resumable = false;
  /// Logical stream position journaled at checkpoint time (differs from
  /// JournalBytes only when a client's spool cap shed a gap).
  uint64_t LogicalPos = 0;
  /// Physical journal size at checkpoint time. Recovery reconstructs the
  /// logical position as LogicalPos + (fileSize - JournalBytes).
  uint64_t JournalBytes = 0;
  /// Dynamic counts already forwarded to triage, per race key.
  std::vector<std::pair<StaticRaceKey, uint64_t>> Published;
};

/// A parsed/parseable `literace.triage.v1` document.
struct CollectorCheckpoint {
  uint64_t NextSessionId = 1;
  uint64_t Sightings = 0;
  uint64_t SuppressedSightings = 0;
  uint64_t RateLimitedUpdates = 0;
  std::vector<TriageCheckpointEntry> Races;
  std::vector<std::pair<std::string, uint64_t>> SuppressionHits;
  std::vector<CheckpointSessionEntry> Sessions;
};

/// Renders \p C as the literace.triage.v1 JSON document.
std::string encodeCheckpoint(const CollectorCheckpoint &C);

/// Parses a literace.triage.v1 document. False (with \p Error) on
/// malformed input or a wrong schema tag.
bool decodeCheckpoint(const std::string &Json, CollectorCheckpoint &C,
                      std::string *Error = nullptr);

/// Durable file replace: write to `<Path>.tmp`, fsync, rename over
/// \p Path. False on any I/O failure (the destination is untouched).
bool writeFileAtomic(const std::string &Path, const std::string &Data);

/// Reads a whole file; false if it cannot be opened.
bool readFileInto(const std::string &Path, std::string &Out);

/// `triage.json` inside a spool directory.
std::string checkpointFileName();

/// `session-<id>-<runid hex>-<r|l>.journal` (r = resumable handshake
/// session, l = legacy fire-and-forget stream).
std::string journalFileName(uint64_t SessionId, uint64_t RunIdHi,
                            uint64_t RunIdLo, bool Resumable);

/// Parses a journal file name back into its parts; false if \p Name is
/// not a journal.
bool parseJournalFileName(const std::string &Name, uint64_t &SessionId,
                          uint64_t &RunIdHi, uint64_t &RunIdLo,
                          bool &Resumable);

/// Base names of every `*.journal` in \p Dir, sorted by session id.
std::vector<std::string> listJournalFiles(const std::string &Dir);

} // namespace collector
} // namespace literace

#endif // LITERACE_COLLECTOR_CHECKPOINT_H
