//===-- collector/Checkpoint.cpp - Collector durability state ------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "collector/Checkpoint.h"

#include "telemetry/Json.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

using namespace literace;
using namespace literace::collector;

namespace {

void appendU64(std::string &Out, uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu", static_cast<unsigned long long>(V));
  Out += Buf;
}

void appendDouble(std::string &Out, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

uint64_t u64Field(const telemetry::JsonValue &V, std::string_view Key,
                  uint64_t Default = 0) {
  const telemetry::JsonValue *F = V.find(Key);
  if (!F)
    return Default;
  if (F->IsUInt)
    return F->UInt;
  if (F->isNumber() && F->Number >= 0)
    return static_cast<uint64_t>(F->Number);
  return Default;
}

double doubleField(const telemetry::JsonValue &V, std::string_view Key,
                   double Default = 0.0) {
  const telemetry::JsonValue *F = V.find(Key);
  return F && F->isNumber() ? F->Number : Default;
}

bool boolField(const telemetry::JsonValue &V, std::string_view Key) {
  const telemetry::JsonValue *F = V.find(Key);
  return F && F->Kind == telemetry::JsonValue::Type::Bool && F->BoolValue;
}

std::string stringField(const telemetry::JsonValue &V, std::string_view Key) {
  const telemetry::JsonValue *F = V.find(Key);
  return F && F->isString() ? F->Str : std::string();
}

} // namespace

std::string collector::encodeCheckpoint(const CollectorCheckpoint &C) {
  std::string J = "{\n  \"schema\": \"literace.triage.v1\",\n";
  J += "  \"next_session_id\": ";
  appendU64(J, C.NextSessionId);
  J += ",\n  \"sightings\": ";
  appendU64(J, C.Sightings);
  J += ",\n  \"suppressed_sightings\": ";
  appendU64(J, C.SuppressedSightings);
  J += ",\n  \"rate_limited_updates\": ";
  appendU64(J, C.RateLimitedUpdates);
  J += ",\n  \"races\": [";
  for (size_t I = 0; I != C.Races.size(); ++I) {
    const TriageCheckpointEntry &E = C.Races[I];
    J += I ? ",\n    {" : "\n    {";
    J += "\"first_pc\": ";
    appendU64(J, E.R.Key.first);
    J += ", \"second_pc\": ";
    appendU64(J, E.R.Key.second);
    J += ", \"count\": ";
    appendU64(J, E.R.DynamicCount);
    J += ", \"example_addr\": ";
    appendU64(J, E.R.ExampleAddr);
    J += ", \"write_write\": ";
    J += E.R.SawWriteWrite ? "true" : "false";
    J += ", \"emitted\": ";
    appendU64(J, E.R.EmittedUpdates);
    J += ", \"rate_limited\": ";
    appendU64(J, E.R.RateLimitedUpdates);
    J += ", \"tokens\": ";
    appendDouble(J, E.Tokens);
    J += ", \"sessions\": [";
    for (size_t S = 0; S != E.SessionIds.size(); ++S) {
      if (S)
        J += ", ";
      appendU64(J, E.SessionIds[S]);
    }
    J += "]}";
  }
  J += C.Races.empty() ? "],\n" : "\n  ],\n";
  J += "  \"suppression_hits\": [";
  for (size_t I = 0; I != C.SuppressionHits.size(); ++I) {
    J += I ? ",\n    {" : "\n    {";
    J += "\"name\": \"" + telemetry::jsonEscape(C.SuppressionHits[I].first) +
         "\", \"hits\": ";
    appendU64(J, C.SuppressionHits[I].second);
    J += "}";
  }
  J += C.SuppressionHits.empty() ? "],\n" : "\n  ],\n";
  J += "  \"in_flight\": [";
  for (size_t I = 0; I != C.Sessions.size(); ++I) {
    const CheckpointSessionEntry &S = C.Sessions[I];
    J += I ? ",\n    {" : "\n    {";
    J += "\"session\": ";
    appendU64(J, S.Id);
    J += ", \"run_id_hi\": ";
    appendU64(J, S.RunIdHi);
    J += ", \"run_id_lo\": ";
    appendU64(J, S.RunIdLo);
    J += ", \"resumable\": ";
    J += S.Resumable ? "true" : "false";
    J += ", \"logical_pos\": ";
    appendU64(J, S.LogicalPos);
    J += ", \"journal_bytes\": ";
    appendU64(J, S.JournalBytes);
    J += ", \"published\": [";
    for (size_t P = 0; P != S.Published.size(); ++P) {
      J += P ? ", {" : "{";
      J += "\"first_pc\": ";
      appendU64(J, S.Published[P].first.first);
      J += ", \"second_pc\": ";
      appendU64(J, S.Published[P].first.second);
      J += ", \"count\": ";
      appendU64(J, S.Published[P].second);
      J += "}";
    }
    J += "]}";
  }
  J += C.Sessions.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return J;
}

bool collector::decodeCheckpoint(const std::string &Json,
                                 CollectorCheckpoint &C, std::string *Error) {
  const std::optional<telemetry::JsonValue> Doc = telemetry::parseJson(Json);
  if (!Doc || !Doc->isObject()) {
    if (Error)
      *Error = "malformed JSON";
    return false;
  }
  if (stringField(*Doc, "schema") != "literace.triage.v1") {
    if (Error)
      *Error = "not a literace.triage.v1 document";
    return false;
  }
  C = CollectorCheckpoint();
  C.NextSessionId = u64Field(*Doc, "next_session_id", 1);
  C.Sightings = u64Field(*Doc, "sightings");
  C.SuppressedSightings = u64Field(*Doc, "suppressed_sightings");
  C.RateLimitedUpdates = u64Field(*Doc, "rate_limited_updates");
  if (const telemetry::JsonValue *Races = Doc->find("races"))
    for (const telemetry::JsonValue &R : Races->Array) {
      TriageCheckpointEntry E;
      E.R.Key = {u64Field(R, "first_pc"), u64Field(R, "second_pc")};
      E.R.DynamicCount = u64Field(R, "count");
      E.R.ExampleAddr = u64Field(R, "example_addr");
      E.R.SawWriteWrite = boolField(R, "write_write");
      E.R.EmittedUpdates = u64Field(R, "emitted");
      E.R.RateLimitedUpdates = u64Field(R, "rate_limited");
      E.Tokens = doubleField(R, "tokens");
      if (const telemetry::JsonValue *S = R.find("sessions"))
        for (const telemetry::JsonValue &Id : S->Array)
          if (Id.IsUInt)
            E.SessionIds.push_back(Id.UInt);
      C.Races.push_back(std::move(E));
    }
  if (const telemetry::JsonValue *Hits = Doc->find("suppression_hits"))
    for (const telemetry::JsonValue &H : Hits->Array)
      C.SuppressionHits.emplace_back(stringField(H, "name"),
                                     u64Field(H, "hits"));
  if (const telemetry::JsonValue *Flight = Doc->find("in_flight"))
    for (const telemetry::JsonValue &S : Flight->Array) {
      CheckpointSessionEntry E;
      E.Id = u64Field(S, "session");
      E.RunIdHi = u64Field(S, "run_id_hi");
      E.RunIdLo = u64Field(S, "run_id_lo");
      E.Resumable = boolField(S, "resumable");
      E.LogicalPos = u64Field(S, "logical_pos");
      E.JournalBytes = u64Field(S, "journal_bytes");
      if (const telemetry::JsonValue *P = S.find("published"))
        for (const telemetry::JsonValue &R : P->Array)
          E.Published.emplace_back(
              StaticRaceKey{u64Field(R, "first_pc"),
                            u64Field(R, "second_pc")},
              u64Field(R, "count"));
      C.Sessions.push_back(std::move(E));
    }
  return true;
}

bool collector::writeFileAtomic(const std::string &Path,
                                const std::string &Data) {
  const std::string Tmp = Path + ".tmp";
  const int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return false;
  size_t Off = 0;
  while (Off < Data.size()) {
    const ssize_t N = ::write(Fd, Data.data() + Off, Data.size() - Off);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return false;
  }
  // The rename is the commit point: a crash leaves either the old or the
  // new checkpoint, never a torn one.
  if (::fsync(Fd) != 0 || ::close(Fd) != 0 ||
      ::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return false;
  }
  return true;
}

bool collector::readFileInto(const std::string &Path, std::string &Out) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  Out.clear();
  char Buf[65536];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Out.append(Buf, N);
  std::fclose(File);
  return true;
}

std::string collector::checkpointFileName() { return "triage.json"; }

std::string collector::journalFileName(uint64_t SessionId, uint64_t RunIdHi,
                                       uint64_t RunIdLo, bool Resumable) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "session-%llu-%016llx%016llx-%c.journal",
                static_cast<unsigned long long>(SessionId),
                static_cast<unsigned long long>(RunIdHi),
                static_cast<unsigned long long>(RunIdLo),
                Resumable ? 'r' : 'l');
  return Buf;
}

bool collector::parseJournalFileName(const std::string &Name,
                                     uint64_t &SessionId, uint64_t &RunIdHi,
                                     uint64_t &RunIdLo, bool &Resumable) {
  const std::string Suffix = ".journal";
  if (Name.size() <= Suffix.size() ||
      Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) != 0)
    return false;
  unsigned long long Id = 0, Hi = 0, Lo = 0;
  char Kind = 0;
  int Consumed = 0;
  if (std::sscanf(Name.c_str(), "session-%llu-%16llx%16llx-%c%n", &Id, &Hi,
                  &Lo, &Kind, &Consumed) != 4 ||
      (Kind != 'r' && Kind != 'l') ||
      static_cast<size_t>(Consumed) + Suffix.size() != Name.size())
    return false;
  SessionId = Id;
  RunIdHi = Hi;
  RunIdLo = Lo;
  Resumable = Kind == 'r';
  return true;
}

std::vector<std::string> collector::listJournalFiles(const std::string &Dir) {
  std::vector<std::string> Out;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Out;
  while (dirent *E = ::readdir(D)) {
    uint64_t Id, Hi, Lo;
    bool Resumable;
    if (parseJournalFileName(E->d_name, Id, Hi, Lo, Resumable))
      Out.push_back(E->d_name);
  }
  ::closedir(D);
  std::sort(Out.begin(), Out.end(), [](const std::string &A,
                                       const std::string &B) {
    uint64_t Ia = 0, Ib = 0, H, L;
    bool R;
    parseJournalFileName(A, Ia, H, L, R);
    parseJournalFileName(B, Ib, H, L, R);
    return Ia < Ib;
  });
  return Out;
}
