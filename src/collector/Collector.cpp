//===-- collector/Collector.cpp - Always-on collection daemon ------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "collector/Collector.h"

#include "telemetry/Json.h"
#include "telemetry/Prometheus.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace literace;
using namespace literace::collector;

namespace {

void appendU64(std::string &Out, uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(V));
  Out += Buf;
}

void appendBool(std::string &Out, bool V) { Out += V ? "true" : "false"; }

std::string jsonString(std::string_view S) {
  return "\"" + telemetry::jsonEscape(S) + "\"";
}

std::string siteName(Pc P) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "fn%u:%u", pcFunction(P), pcSite(P));
  return Buf;
}

/// Binds and listens on an AF_UNIX stream socket, replacing a stale
/// socket file. Returns the fd or -1 (errno describes the failure).
int listenUnix(const std::string &Path) {
  if (Path.empty() || Path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    errno = ENAMETOOLONG;
    return -1;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  ::unlink(Path.c_str());
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 64) != 0) {
    const int E = errno;
    ::close(Fd);
    errno = E;
    return -1;
  }
  return Fd;
}

/// Connects to \p Path and immediately closes: wakes a thread blocked in
/// accept() so shutdown does not depend on platform accept/shutdown
/// interactions.
void pokeUnix(const std::string &Path) {
  if (Path.empty() || Path.size() >= sizeof(sockaddr_un{}.sun_path))
    return;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  ::close(Fd);
}

bool writeAll(int Fd, const char *Data, size_t Size) {
  size_t Off = 0;
  while (Off < Size) {
    ssize_t N = ::send(Fd, Data + Off, Size - Off, MSG_NOSIGNAL);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EINTR || errno == EAGAIN))
      continue;
    return false;
  }
  return true;
}

} // namespace

/// Detection-thread-private state of one in-flight session. Exactly one
/// of Serial/Sharded is non-null once the first item arrives.
struct CollectorServer::Detection {
  std::unique_ptr<ReplayScheduler> Scheduler;
  std::unique_ptr<HBDetector> Serial;
  std::unique_ptr<ShardedHBDetector> Sharded;
  RaceReport Report;
  /// Dynamic counts already forwarded to triage, per site pair.
  std::map<StaticRaceKey, uint64_t> Published;
  std::shared_ptr<SessionState> State;

  TraceConsumer &consumer() {
    return Sharded ? static_cast<TraceConsumer &>(*Sharded)
                   : static_cast<TraceConsumer &>(*Serial);
  }
};

CollectorServer::CollectorServer(CollectorConfig ConfigIn)
    : Config(std::move(ConfigIn)),
      Triage(Config.Triage, Config.Suppressions ? Config.Suppressions
                                                : &EmptySuppressions),
      Queue(Config.QueueCapacity) {
  Metrics = telemetry::resolveRegistry(Config.Metrics);
}

CollectorServer::~CollectorServer() { stop(); }

bool CollectorServer::start(std::string *Error) {
  if (Started.load())
    return true;
  ListenFd = listenUnix(Config.IngestSocketPath);
  if (ListenFd < 0) {
    if (Error)
      *Error = "cannot listen on " + Config.IngestSocketPath + ": " +
               std::strerror(errno);
    return false;
  }
  Started.store(true);
  Detector = std::thread(&CollectorServer::detectLoop, this);
  Acceptor = std::thread(&CollectorServer::acceptLoop, this);
  return true;
}

void CollectorServer::stop() {
  if (!Started.load() || Stopping.exchange(true)) {
    // Still wake any waitForSessions() callers on a never-started server.
    Stopping.store(true);
    SessionsCv.notify_all();
    return;
  }
  // Unblock the acceptor, then retire the listener.
  pokeUnix(Config.IngestSocketPath);
  if (Acceptor.joinable())
    Acceptor.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  ::unlink(Config.IngestSocketPath.c_str());

  // End live sessions: readers observe EOF and finish with the same
  // salvage semantics as a crashed producer's on-disk trace.
  {
    std::lock_guard<std::mutex> Guard(ReadersLock);
    for (int Fd : LiveFds)
      ::shutdown(Fd, SHUT_RD);
  }
  for (;;) {
    std::thread Reader;
    {
      std::lock_guard<std::mutex> Guard(ReadersLock);
      if (Readers.empty())
        break;
      Reader = std::move(Readers.back());
      Readers.pop_back();
    }
    if (Reader.joinable())
      Reader.join();
  }

  // Every End item is queued; drain and join the detection thread.
  Queue.close();
  if (Detector.joinable())
    Detector.join();

  // Retire the HTTP listeners.
  {
    std::lock_guard<std::mutex> Guard(HttpLock);
    for (int Fd : HttpListenFds)
      ::shutdown(Fd, SHUT_RDWR);
  }
  {
    std::lock_guard<std::mutex> Guard(HttpLock);
    for (std::thread &T : HttpThreads)
      if (T.joinable())
        T.join();
    for (int Fd : HttpListenFds)
      ::close(Fd);
    HttpThreads.clear();
    HttpListenFds.clear();
  }
  SessionsCv.notify_all();
}

void CollectorServer::acceptLoop() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Stopping.load()) {
      ::close(Fd);
      break;
    }
    uint64_t Id;
    auto State = std::make_shared<SessionState>();
    {
      std::lock_guard<std::mutex> Guard(SessionsLock);
      Id = NextSessionId++;
      State->Id = Id;
      Sessions.emplace(Id, State);
      ++Accepted;
    }
    if (Metrics)
      Metrics->threadSlab().add(Metrics->counter("collector.sessions.accepted"));
    std::lock_guard<std::mutex> Guard(ReadersLock);
    LiveFds.push_back(Fd);
    Readers.emplace_back(&CollectorServer::readerLoop, this, Id, Fd);
  }
}

void CollectorServer::readerLoop(uint64_t SessionId, int Fd) {
  std::shared_ptr<SessionState> State;
  {
    std::lock_guard<std::mutex> Guard(SessionsLock);
    State = Sessions.at(SessionId);
  }
  SegmentStreamDecoder Decoder;
  SegmentStreamDecoder::Chunk C;
  uint8_t Buf[1 << 16];
  bool QueueClosed = false;

  auto Forward = [&] {
    while (!QueueClosed && Decoder.take(C)) {
      IngestItem Item;
      Item.K = IngestItem::Kind::Chunk;
      Item.SessionId = SessionId;
      Item.Tid = C.Tid;
      Item.Records = std::move(C.Records);
      Item.NumCounters = Decoder.numTimestampCounters();
      if (!Queue.push(Item))
        QueueClosed = true; // daemon stopping; drop the rest
    }
    const TraceReadStats &S = Decoder.stats();
    State->SegmentsRecovered.store(S.SegmentsRecovered,
                                   std::memory_order_relaxed);
    State->SegmentsDropped.store(S.SegmentsDropped,
                                 std::memory_order_relaxed);
  };

  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Decoder.feed(Buf, static_cast<size_t>(N));
    State->Bytes.fetch_add(static_cast<uint64_t>(N),
                           std::memory_order_relaxed);
    if (Metrics)
      Metrics->threadSlab().add(Metrics->counter("collector.bytes.ingested"),
                                static_cast<uint64_t>(N));
    Forward();
  }
  Decoder.finish();
  Forward();
  const TraceReadStats &S = Decoder.stats();
  State->Clean.store(S.CleanShutdown, std::memory_order_relaxed);
  if (Metrics) {
    telemetry::ThreadSlab &Slab = Metrics->threadSlab();
    Slab.add(Metrics->counter("collector.segments.recovered"),
             S.SegmentsRecovered);
    Slab.add(Metrics->counter("collector.segments.dropped"),
             S.SegmentsDropped);
  }
  if (!QueueClosed) {
    IngestItem End;
    End.K = IngestItem::Kind::End;
    End.SessionId = SessionId;
    End.NumCounters = Decoder.numTimestampCounters();
    End.Clean = S.CleanShutdown;
    End.SegmentsRecovered = S.SegmentsRecovered;
    End.SegmentsDropped = S.SegmentsDropped;
    Queue.push(End);
  }
  {
    std::lock_guard<std::mutex> Guard(ReadersLock);
    for (size_t I = 0; I != LiveFds.size(); ++I)
      if (LiveFds[I] == Fd) {
        LiveFds.erase(LiveFds.begin() + I);
        break;
      }
  }
  ::close(Fd);
}

void CollectorServer::publish(Detection &D, uint64_t SessionId) {
  uint64_t NewSightings = 0;
  for (const StaticRace &R : D.Report.staticRaces()) {
    uint64_t &Done = D.Published[R.Key];
    if (R.DynamicCount > Done) {
      Triage.observe(R.Key, R.DynamicCount - Done, R.SawWriteWrite,
                     R.ExampleAddr, SessionId);
      NewSightings += R.DynamicCount - Done;
      Done = R.DynamicCount;
    }
  }
  D.State->Races.store(D.Report.numStaticRaces(),
                       std::memory_order_relaxed);
  if (Metrics && NewSightings)
    Metrics->threadSlab().add(
        Metrics->counter("collector.races.sightings"), NewSightings);
}

void CollectorServer::finishSession(Detection &D, const IngestItem &End) {
  uint64_t Gaps = 0;
  if (D.Scheduler) {
    D.Scheduler->drain(D.consumer());
    if (!D.Scheduler->fullyDrained()) {
      // Dropped segments punched holes into the timestamp order; skip
      // them like file salvage does instead of stalling forever.
      D.Scheduler->drainAllowingGaps(D.consumer());
      Gaps = D.Scheduler->timestampGaps();
    }
    if (D.Sharded)
      D.Sharded->finish(D.Report);
    publish(D, End.SessionId);
  }
  D.State->TimestampGaps.store(Gaps, std::memory_order_relaxed);
  D.State->Clean.store(End.Clean, std::memory_order_relaxed);
  D.State->Active.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Guard(SessionsLock);
    ++Completed;
    if (End.Clean)
      ++CleanCount;
  }
  if (Metrics) {
    telemetry::ThreadSlab &Slab = Metrics->threadSlab();
    Slab.add(Metrics->counter("collector.sessions.completed"));
    if (End.Clean)
      Slab.add(Metrics->counter("collector.sessions.clean"));
    Slab.gaugeMax(Metrics->gaugeMax("collector.races.distinct"),
                  Triage.distinctRaces());
    Slab.gaugeMax(Metrics->gaugeMax("collector.queue.depth.highwater"),
                  Queue.stats().DepthHighWater);
  }
  SessionsCv.notify_all();
}

void CollectorServer::detectLoop() {
  std::map<uint64_t, Detection> Live;
  IngestItem Item;
  while (Queue.pop(Item)) {
    Detection &D = Live[Item.SessionId];
    if (!D.Scheduler) {
      D.Scheduler =
          std::make_unique<ReplayScheduler>(Item.NumCounters);
      if (Config.Shards > 1) {
        DetectorOptions Opts;
        Opts.Shards = Config.Shards;
        D.Sharded = std::make_unique<ShardedHBDetector>(Opts);
      } else {
        D.Serial = std::make_unique<HBDetector>(D.Report);
      }
      std::lock_guard<std::mutex> Guard(SessionsLock);
      D.State = Sessions.at(Item.SessionId);
    }
    if (Item.K == IngestItem::Kind::Chunk) {
      D.Scheduler->addEvents(Item.Tid, Item.Records.data(),
                             Item.Records.size());
      const size_t Delivered = D.Scheduler->drain(D.consumer());
      D.State->Events.fetch_add(Delivered, std::memory_order_relaxed);
      if (Metrics && Delivered)
        Metrics->threadSlab().add(
            Metrics->counter("collector.events.ingested"), Delivered);
      // The serial detector's report is live; surface new sightings as
      // they happen. (The sharded pipeline merges at session end.)
      if (D.Serial)
        publish(D, Item.SessionId);
    } else {
      finishSession(D, Item);
      Live.erase(Item.SessionId);
    }
  }
  // Queue closed with sessions still live (reader hit a closed queue
  // mid-stream during shutdown): settle them as unclean.
  for (auto &[Id, D] : Live) {
    IngestItem End;
    End.K = IngestItem::Kind::End;
    End.SessionId = Id;
    End.Clean = false;
    finishSession(D, End);
  }
}

bool CollectorServer::serveHttpUnix(const std::string &Path,
                                    std::string *Error) {
  int Fd = listenUnix(Path);
  if (Fd < 0) {
    if (Error)
      *Error = "cannot listen on " + Path + ": " + std::strerror(errno);
    return false;
  }
  std::lock_guard<std::mutex> Guard(HttpLock);
  HttpListenFds.push_back(Fd);
  HttpThreads.emplace_back(&CollectorServer::httpLoop, this, Fd);
  return true;
}

bool CollectorServer::serveHttpTcp(uint16_t Port, uint16_t *BoundPort,
                                   std::string *Error) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 16) != 0) {
    if (Error)
      *Error = std::strerror(errno);
    ::close(Fd);
    return false;
  }
  if (BoundPort) {
    socklen_t Len = sizeof(Addr);
    ::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len);
    *BoundPort = ntohs(Addr.sin_port);
  }
  std::lock_guard<std::mutex> Guard(HttpLock);
  HttpListenFds.push_back(Fd);
  HttpThreads.emplace_back(&CollectorServer::httpLoop, this, Fd);
  return true;
}

bool CollectorServer::route(const std::string &Path, std::string &Body,
                            std::string &ContentType) const {
  if (Path == "/metrics") {
    Body = metricsText();
    ContentType = "text/plain; version=0.0.4; charset=utf-8";
    return true;
  }
  if (Path == "/status") {
    Body = statusJson();
    ContentType = "application/json";
    return true;
  }
  if (Path == "/races") {
    Body = racesJson();
    ContentType = "application/json";
    return true;
  }
  if (Path == "/") {
    Body = "literace-collectd: /metrics /status /races\n";
    ContentType = "text/plain; charset=utf-8";
    return true;
  }
  return false;
}

void CollectorServer::httpLoop(int ListenSocket) {
  for (;;) {
    int C = ::accept(ListenSocket, nullptr, nullptr);
    if (C < 0) {
      if (errno == EINTR && !Stopping.load())
        continue;
      break;
    }
    HttpRequests.fetch_add(1, std::memory_order_relaxed);
    if (Metrics)
      Metrics->threadSlab().add(
          Metrics->counter("collector.http.requests"));

    // Read the request head (tiny GETs only; this is a triage endpoint,
    // not a web server).
    std::string Request;
    char Buf[1024];
    while (Request.size() < 8192 &&
           Request.find("\r\n\r\n") == std::string::npos &&
           Request.find("\n\n") == std::string::npos) {
      ssize_t N = ::recv(C, Buf, sizeof(Buf), 0);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        break;
      Request.append(Buf, static_cast<size_t>(N));
    }

    std::string Method, Path;
    {
      const size_t LineEnd = Request.find_first_of("\r\n");
      const std::string Line = Request.substr(
          0, LineEnd == std::string::npos ? Request.size() : LineEnd);
      const size_t Sp1 = Line.find(' ');
      const size_t Sp2 =
          Sp1 == std::string::npos ? std::string::npos
                                   : Line.find(' ', Sp1 + 1);
      if (Sp1 != std::string::npos) {
        Method = Line.substr(0, Sp1);
        Path = Line.substr(Sp1 + 1, Sp2 == std::string::npos
                                        ? std::string::npos
                                        : Sp2 - Sp1 - 1);
      }
      const size_t Query = Path.find('?');
      if (Query != std::string::npos)
        Path.resize(Query);
    }

    std::string Body, ContentType, Status = "200 OK";
    if (Method != "GET") {
      Status = "405 Method Not Allowed";
      Body = "only GET is supported\n";
      ContentType = "text/plain; charset=utf-8";
    } else if (!route(Path, Body, ContentType)) {
      Status = "404 Not Found";
      Body = "no such endpoint: " + Path + "\n";
      ContentType = "text/plain; charset=utf-8";
    }
    std::string Response = "HTTP/1.0 " + Status +
                           "\r\nContent-Type: " + ContentType +
                           "\r\nContent-Length: " +
                           std::to_string(Body.size()) +
                           "\r\nConnection: close\r\n\r\n" + Body;
    writeAll(C, Response.data(), Response.size());
    ::close(C);
  }
}

void CollectorServer::waitForSessions(uint64_t N) {
  std::unique_lock<std::mutex> Guard(SessionsLock);
  SessionsCv.wait(Guard, [&] {
    return Completed >= N || Stopping.load();
  });
}

uint64_t CollectorServer::sessionsAccepted() const {
  std::lock_guard<std::mutex> Guard(SessionsLock);
  return Accepted;
}

uint64_t CollectorServer::sessionsCompleted() const {
  std::lock_guard<std::mutex> Guard(SessionsLock);
  return Completed;
}

std::vector<SessionStatus> CollectorServer::sessionStatuses() const {
  std::vector<SessionStatus> Out;
  std::lock_guard<std::mutex> Guard(SessionsLock);
  Out.reserve(Sessions.size());
  for (const auto &[Id, State] : Sessions) {
    SessionStatus S;
    S.Id = Id;
    S.Active = State->Active.load(std::memory_order_relaxed);
    S.Clean = State->Clean.load(std::memory_order_relaxed);
    S.Bytes = State->Bytes.load(std::memory_order_relaxed);
    S.Events = State->Events.load(std::memory_order_relaxed);
    S.SegmentsRecovered =
        State->SegmentsRecovered.load(std::memory_order_relaxed);
    S.SegmentsDropped =
        State->SegmentsDropped.load(std::memory_order_relaxed);
    S.TimestampGaps = State->TimestampGaps.load(std::memory_order_relaxed);
    S.Races = State->Races.load(std::memory_order_relaxed);
    Out.push_back(S);
  }
  return Out;
}

std::string CollectorServer::statusJson() const {
  uint64_t AcceptedNow, CompletedNow, CleanNow;
  {
    std::lock_guard<std::mutex> Guard(SessionsLock);
    AcceptedNow = Accepted;
    CompletedNow = Completed;
    CleanNow = CleanCount;
  }
  const std::vector<SessionStatus> Detail = sessionStatuses();
  uint64_t Bytes = 0, Events = 0, SegRecovered = 0, SegDropped = 0;
  for (const SessionStatus &S : Detail) {
    Bytes += S.Bytes;
    Events += S.Events;
    SegRecovered += S.SegmentsRecovered;
    SegDropped += S.SegmentsDropped;
  }
  const MpscQueueStats QStats = Queue.stats();

  std::string J = "{\n  \"schema\": \"literace.status.v1\",\n";
  J += "  \"listening\": " +
       jsonString(Config.IngestSocketPath) + ",\n";
  J += "  \"sessions\": {\"accepted\": ";
  appendU64(J, AcceptedNow);
  J += ", \"active\": ";
  appendU64(J, AcceptedNow - CompletedNow);
  J += ", \"completed\": ";
  appendU64(J, CompletedNow);
  J += ", \"clean\": ";
  appendU64(J, CleanNow);
  J += ", \"salvaged\": ";
  appendU64(J, CompletedNow - CleanNow);
  J += "},\n  \"ingest\": {\"bytes\": ";
  appendU64(J, Bytes);
  J += ", \"events\": ";
  appendU64(J, Events);
  J += ", \"segments_recovered\": ";
  appendU64(J, SegRecovered);
  J += ", \"segments_dropped\": ";
  appendU64(J, SegDropped);
  J += ", \"queue\": {\"capacity\": ";
  appendU64(J, Queue.capacity());
  J += ", \"depth\": ";
  appendU64(J, Queue.approxSize());
  J += ", \"high_water\": ";
  appendU64(J, QStats.DepthHighWater);
  J += ", \"producer_parks\": ";
  appendU64(J, QStats.ProducerParks);
  J += ", \"consumer_parks\": ";
  appendU64(J, QStats.ConsumerParks);
  J += "}},\n  \"http\": {\"requests\": ";
  appendU64(J, HttpRequests.load(std::memory_order_relaxed));
  J += "},\n  \"triage\": {\"distinct_races\": ";
  appendU64(J, Triage.distinctRaces());
  J += ", \"unsuppressed_races\": ";
  appendU64(J, Triage.unsuppressedRaces());
  J += ", \"sightings\": ";
  appendU64(J, Triage.totalSightings());
  J += ", \"suppressed_sightings\": ";
  appendU64(J, Triage.suppressedSightings());
  J += ", \"rate_limited_updates\": ";
  appendU64(J, Triage.rateLimitedUpdates());
  J += "},\n  \"session_detail\": [";
  for (size_t I = 0; I != Detail.size(); ++I) {
    const SessionStatus &S = Detail[I];
    J += I ? ",\n    {" : "\n    {";
    J += "\"id\": ";
    appendU64(J, S.Id);
    J += ", \"active\": ";
    appendBool(J, S.Active);
    J += ", \"clean\": ";
    appendBool(J, S.Clean);
    J += ", \"bytes\": ";
    appendU64(J, S.Bytes);
    J += ", \"events\": ";
    appendU64(J, S.Events);
    J += ", \"segments_recovered\": ";
    appendU64(J, S.SegmentsRecovered);
    J += ", \"segments_dropped\": ";
    appendU64(J, S.SegmentsDropped);
    J += ", \"timestamp_gaps\": ";
    appendU64(J, S.TimestampGaps);
    J += ", \"races\": ";
    appendU64(J, S.Races);
    J += "}";
  }
  J += Detail.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return J;
}

std::string CollectorServer::racesJson() const {
  const std::vector<TriagedRace> Races = Triage.races();
  std::string J = "{\n  \"schema\": \"literace.races.v1\",\n  \"races\": [";
  for (size_t I = 0; I != Races.size(); ++I) {
    const TriagedRace &R = Races[I];
    J += I ? ",\n    {" : "\n    {";
    J += "\"first_pc\": ";
    appendU64(J, R.Key.first);
    J += ", \"second_pc\": ";
    appendU64(J, R.Key.second);
    J += ", \"first_site\": " + jsonString(siteName(R.Key.first));
    J += ", \"second_site\": " +
         jsonString(siteName(R.Key.second));
    J += ", \"count\": ";
    appendU64(J, R.DynamicCount);
    J += ", \"sessions\": ";
    appendU64(J, R.Sessions);
    J += ", \"example_addr\": ";
    appendU64(J, R.ExampleAddr);
    J += ", \"write_write\": ";
    appendBool(J, R.SawWriteWrite);
    J += ", \"suppressed\": ";
    appendBool(J, R.Suppressed);
    if (R.Suppressed)
      J += ", \"suppression\": " + jsonString(R.SuppressionName);
    J += ", \"emitted\": ";
    appendU64(J, R.EmittedUpdates);
    J += ", \"rate_limited\": ";
    appendU64(J, R.RateLimitedUpdates);
    J += "}";
  }
  J += Races.empty() ? "],\n" : "\n  ],\n";
  const SuppressionSet &Supp =
      Config.Suppressions ? *Config.Suppressions : EmptySuppressions;
  J += "  \"suppressions_used\": [";
  bool First = true;
  for (size_t I = 0; I != Supp.size(); ++I) {
    if (Supp.hits(I) == 0)
      continue;
    J += First ? "\n    {" : ",\n    {";
    First = false;
    J += "\"name\": " + jsonString(Supp.entry(I).Name) +
         ", \"hits\": ";
    appendU64(J, Supp.hits(I));
    J += "}";
  }
  J += First ? "]\n}\n" : "\n  ]\n}\n";
  return J;
}

std::string CollectorServer::metricsText() const {
  telemetry::MetricsSnapshot Snap;
  if (Metrics)
    Snap = Metrics->snapshot();
  Snap.stampCapture();
  return telemetry::toPrometheusText(Snap);
}
