//===-- collector/Collector.cpp - Always-on collection daemon ------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "collector/Collector.h"

#include "support/ByteOutput.h"
#include "telemetry/Json.h"
#include "telemetry/Prometheus.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace literace;
using namespace literace::collector;

namespace {

void appendU64(std::string &Out, uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(V));
  Out += Buf;
}

void appendBool(std::string &Out, bool V) { Out += V ? "true" : "false"; }

std::string jsonString(std::string_view S) {
  return "\"" + telemetry::jsonEscape(S) + "\"";
}

std::string siteName(Pc P) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "fn%u:%u", pcFunction(P), pcSite(P));
  return Buf;
}

uint64_t nowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Binds and listens on an AF_UNIX stream socket, replacing a stale
/// socket file. Returns the fd or -1 (errno describes the failure).
int listenUnix(const std::string &Path) {
  if (Path.empty() || Path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    errno = ENAMETOOLONG;
    return -1;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  ::unlink(Path.c_str());
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 64) != 0) {
    const int E = errno;
    ::close(Fd);
    errno = E;
    return -1;
  }
  return Fd;
}

/// Connects to \p Path and immediately closes: wakes a thread blocked in
/// accept() so shutdown does not depend on platform accept/shutdown
/// interactions.
void pokeUnix(const std::string &Path) {
  if (Path.empty() || Path.size() >= sizeof(sockaddr_un{}.sun_path))
    return;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  ::close(Fd);
}

} // namespace

/// Detection-thread-private state of one in-flight session. Exactly one
/// of Serial/Sharded is non-null once the first item arrives.
struct CollectorServer::Detection {
  std::unique_ptr<ReplayScheduler> Scheduler;
  std::unique_ptr<HBDetector> Serial;
  std::unique_ptr<ShardedHBDetector> Sharded;
  RaceReport Report;
  /// Dynamic counts already forwarded to triage, per site pair. Seeded
  /// from the checkpoint for recovered sessions, so journal replay only
  /// contributes the delta.
  std::map<StaticRaceKey, uint64_t> Published;
  /// Records queued to detection so far, per thread: a spilled session's
  /// journal replay feeds each thread's stream beyond this prefix.
  std::vector<uint64_t> AddedPerTid;
  std::shared_ptr<SessionState> State;

  TraceConsumer &consumer() {
    return Sharded ? static_cast<TraceConsumer &>(*Sharded)
                   : static_cast<TraceConsumer &>(*Serial);
  }
};

CollectorServer::CollectorServer(CollectorConfig ConfigIn)
    : Config(std::move(ConfigIn)),
      Triage(Config.Triage, Config.Suppressions ? Config.Suppressions
                                                : &EmptySuppressions),
      Queue(Config.QueueCapacity) {
  Metrics = telemetry::resolveRegistry(Config.Metrics);
}

CollectorServer::~CollectorServer() { stop(); }

bool CollectorServer::start(std::string *Error) {
  if (Started.load())
    return true;
  ListenFd = listenUnix(Config.IngestSocketPath);
  if (ListenFd < 0) {
    if (Error)
      *Error = "cannot listen on " + Config.IngestSocketPath + ": " +
               std::strerror(errno);
    return false;
  }
  Started.store(true);
  // Recovery feeds the queue, so the consumer must exist first; the
  // acceptor starts only after recovery so resuming clients see the
  // recovered ack positions.
  Detector = std::thread(&CollectorServer::detectLoop, this);
  if (!Config.SpoolDir.empty())
    recoverFromSpool();
  Acceptor = std::thread(&CollectorServer::acceptLoop, this);
  Housekeeper = std::thread(&CollectorServer::housekeepingLoop, this);
  return true;
}

void CollectorServer::stop() {
  if (!Started.load() || Stopping.exchange(true)) {
    // Still wake any waitForSessions() callers on a never-started server.
    Stopping.store(true);
    SessionsCv.notify_all();
    return;
  }
  const bool Crash = Crashed.load();
  // A simulated crash abandons in-flight work immediately: closing the
  // queue up front unblocks readers stuck in backpressure and stops the
  // detection thread at its next pop.
  if (Crash)
    Queue.close();
  // Unblock the acceptor, then retire the listener.
  pokeUnix(Config.IngestSocketPath);
  if (Acceptor.joinable())
    Acceptor.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  ::unlink(Config.IngestSocketPath.c_str());

  // End live sessions: readers observe EOF and finish with the same
  // salvage semantics as a crashed producer's on-disk trace.
  {
    std::lock_guard<std::mutex> Guard(ReadersLock);
    for (int Fd : LiveFds)
      ::shutdown(Fd, SHUT_RD);
  }
  for (;;) {
    std::thread Reader;
    {
      std::lock_guard<std::mutex> Guard(ReadersLock);
      if (Readers.empty())
        break;
      Reader = std::move(Readers.back());
      Readers.pop_back();
    }
    if (Reader.joinable())
      Reader.join();
  }
  if (Housekeeper.joinable())
    Housekeeper.join();

  // Detached sessions have no reader; finalize them now (their clients
  // are not coming back on this daemon life).
  if (!Crash) {
    std::vector<std::shared_ptr<SessionState>> Leftover;
    {
      std::lock_guard<std::mutex> Guard(SessionsLock);
      for (const auto &[Id, S] : Sessions)
        if (S->Active.load(std::memory_order_relaxed))
          Leftover.push_back(S);
    }
    for (const auto &S : Leftover)
      finalizeIngest(S); // idempotent: no-op for already-ended sessions
  }

  // Every End item is queued; drain and join the detection thread.
  Queue.close();
  if (Detector.joinable())
    Detector.join();

  // Retire the HTTP listeners.
  {
    std::lock_guard<std::mutex> Guard(HttpLock);
    for (int Fd : HttpListenFds)
      ::shutdown(Fd, SHUT_RDWR);
  }
  {
    std::lock_guard<std::mutex> Guard(HttpLock);
    for (std::thread &T : HttpThreads)
      if (T.joinable())
        T.join();
    for (int Fd : HttpListenFds)
      ::close(Fd);
    HttpThreads.clear();
    HttpListenFds.clear();
  }
  SessionsCv.notify_all();
}

void CollectorServer::crashForTest() {
  Crashed.store(true);
  stop();
}

void CollectorServer::acceptLoop() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Stopping.load()) {
      ::close(Fd);
      break;
    }
    std::lock_guard<std::mutex> Guard(ReadersLock);
    LiveFds.push_back(Fd);
    Readers.emplace_back(&CollectorServer::readerLoop, this, Fd);
  }
}

std::shared_ptr<CollectorServer::SessionState>
CollectorServer::createSession(uint64_t RunIdHi, uint64_t RunIdLo,
                               bool Resumable, bool Recovered,
                               uint64_t ForcedId) {
  auto State = std::make_shared<SessionState>();
  State->RunIdHi = RunIdHi;
  State->RunIdLo = RunIdLo;
  State->ResumableSession = Resumable;
  State->RecoveredSession = Recovered;
  State->Decoder = std::make_unique<SegmentStreamDecoder>();
  {
    std::lock_guard<std::mutex> Guard(SessionsLock);
    State->Id = ForcedId ? ForcedId : NextSessionId++;
    if (ForcedId && ForcedId >= NextSessionId)
      NextSessionId = ForcedId + 1;
    Sessions[State->Id] = State;
    if (Resumable && (RunIdHi | RunIdLo))
      RunIdIndex[{RunIdHi, RunIdLo}] = State->Id;
    ++Accepted;
  }
  if (!Config.SpoolDir.empty()) {
    State->JournalPath =
        Config.SpoolDir + "/" +
        journalFileName(State->Id, RunIdHi, RunIdLo, Resumable);
    if (Recovered) {
      // The journal already exists; recoverFromSpool() reopens it for
      // append after replaying it.
      State->JournalOk = true;
    } else {
      State->JournalFd = ::open(State->JournalPath.c_str(),
                                O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (State->JournalFd < 0) {
        State->JournalPath.clear();
        DurabilityBroken.store(true, std::memory_order_relaxed);
        if (Metrics)
          Metrics->threadSlab().add(
              Metrics->counter("collector.journal.errors"));
      } else {
        State->JournalOk = true;
      }
    }
  }
  if (Metrics)
    Metrics->threadSlab().add(
        Metrics->counter("collector.sessions.accepted"));
  return State;
}

std::shared_ptr<CollectorServer::SessionState>
CollectorServer::handshakeSession(int Fd) {
  const int DeadlineMs = static_cast<int>(Config.HandshakeTimeoutMs);
  uint8_t Frame[StreamHelloSize];
  std::memcpy(Frame, "LRH1", 4);
  if (!recvAllDeadline(Fd, Frame + 4, StreamHelloSize - 4, DeadlineMs))
    return nullptr;
  uint64_t Hi = 0, Lo = 0;
  if (!decodeStreamHello(Frame, Hi, Lo))
    return nullptr;

  std::shared_ptr<SessionState> State;
  {
    std::lock_guard<std::mutex> Guard(SessionsLock);
    const auto It = RunIdIndex.find({Hi, Lo});
    if (It != RunIdIndex.end()) {
      const auto SIt = Sessions.find(It->second);
      if (SIt != Sessions.end())
        State = SIt->second;
    }
  }
  const bool Resumed = State != nullptr;
  if (!State)
    State = createSession(Hi, Lo, /*Resumable=*/true, /*Recovered=*/false);

  // Take over from a stale previous connection: the client reconnected
  // before its old reader noticed the break. Shut the old fd down and
  // wait for its reader to detach.
  for (;;) {
    {
      std::lock_guard<std::mutex> Guard(State->IngestLock);
      if (State->Ended)
        return nullptr;
      if (State->AttachedFd < 0) {
        State->AttachedFd = Fd;
        State->LastAckPos = State->LogicalPos.load(std::memory_order_relaxed);
        break;
      }
      ::shutdown(State->AttachedFd, SHUT_RDWR);
    }
    if (Stopping.load())
      return nullptr;
    ::usleep(1000);
  }
  State->Detached.store(false, std::memory_order_relaxed);
  State->DetachedAtMs.store(0, std::memory_order_relaxed);
  if (Resumed) {
    ResumedCount.fetch_add(1, std::memory_order_relaxed);
    if (Metrics)
      Metrics->threadSlab().add(
          Metrics->counter("collector.sessions.resumed"));
  }

  // Ack our durable position; the client answers with the offset it will
  // resume from (>= the ack; above it declares a spool-overflow gap).
  uint8_t Ack[StreamAckSize];
  const uint64_t Pos = State->LogicalPos.load(std::memory_order_relaxed);
  encodeStreamAck(Pos, Ack);
  uint8_t ResumeFrame[StreamResumeSize];
  uint64_t Resume = 0;
  if (!sendAllDeadline(Fd, Ack, sizeof(Ack), DeadlineMs) ||
      !recvAllDeadline(Fd, ResumeFrame, sizeof(ResumeFrame), DeadlineMs) ||
      !decodeStreamResume(ResumeFrame, Resume) || Resume < Pos) {
    std::lock_guard<std::mutex> Guard(State->IngestLock);
    if (State->AttachedFd == Fd)
      State->AttachedFd = -1;
    State->Detached.store(true, std::memory_order_relaxed);
    State->DetachedAtMs.store(nowMs(), std::memory_order_relaxed);
    return nullptr;
  }
  if (Resume > Pos) {
    // The client shed [Pos, Resume): its spool cap was hit while we were
    // unreachable. Account the hole and advance the logical stream past
    // it; a checkpoint persists the new base.
    const uint64_t Gap = Resume - Pos;
    GapBytesTotal.fetch_add(Gap, std::memory_order_relaxed);
    State->LogicalPos.store(Resume, std::memory_order_relaxed);
    State->StreamBase.fetch_add(Gap, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Guard(State->IngestLock);
      State->LastAckPos = Resume;
      // Tell the decoder the exact hole size so the session's coverage
      // stats account every shed byte — resyncing over the seam alone
      // would only count the residue it scans past.
      if (State->Decoder)
        State->Decoder->noteGap(Gap);
    }
    CheckpointRequested.store(true, std::memory_order_relaxed);
    if (Metrics)
      Metrics->threadSlab().add(
          Metrics->counter("collector.ingest.gap_bytes"), Gap);
  }
  return State;
}

bool CollectorServer::ingestBytes(SessionState &State, const uint8_t *Data,
                                  size_t N, bool &QueueClosed) {
  // Write-ahead: a byte is acked as durable only after it is journaled.
  if (State.JournalFd >= 0) {
    size_t Off = 0;
    while (Off < N) {
      const ssize_t W = ::write(State.JournalFd, Data + Off, N - Off);
      if (W > 0) {
        Off += static_cast<size_t>(W);
        continue;
      }
      if (W < 0 && errno == EINTR)
        continue;
      // The WAL broke (disk full, I/O error). Durability is gone for
      // this session but live detection can continue; stop journaling
      // and flag the daemon degraded.
      ::close(State.JournalFd);
      State.JournalFd = -1;
      State.JournalOk = false;
      DurabilityBroken.store(true, std::memory_order_relaxed);
      if (Metrics)
        Metrics->threadSlab().add(
            Metrics->counter("collector.journal.errors"));
      break;
    }
    if (State.JournalFd >= 0) {
      State.JournalBytes.fetch_add(N, std::memory_order_relaxed);
      if (Metrics)
        Metrics->threadSlab().add(
            Metrics->counter("collector.journal.bytes"), N);
    }
  }
  State.Decoder->feed(Data, N);
  State.Bytes.fetch_add(N, std::memory_order_relaxed);
  State.LogicalPos.fetch_add(N, std::memory_order_relaxed);
  BytesIngestedTotal.fetch_add(N, std::memory_order_relaxed);
  if (Metrics)
    Metrics->threadSlab().add(Metrics->counter("collector.bytes.ingested"),
                              N);
  forwardDecoded(State, QueueClosed);

  // Periodic durable-progress ack to resumable clients. Best-effort and
  // non-blocking: a dropped or torn ack only costs the client spool
  // retention, and its frame parser resyncs on the magic.
  if (State.ResumableSession && State.AttachedFd >= 0) {
    const uint64_t Pos = State.LogicalPos.load(std::memory_order_relaxed);
    if (Pos - State.LastAckPos >= Config.AckEveryBytes) {
      uint8_t Ack[StreamAckSize];
      encodeStreamAck(Pos, Ack);
      ::send(State.AttachedFd, Ack, sizeof(Ack),
             MSG_NOSIGNAL | MSG_DONTWAIT);
      State.LastAckPos = Pos;
    }
  }
  return true;
}

void CollectorServer::forwardDecoded(SessionState &State, bool &QueueClosed) {
  SegmentStreamDecoder::Chunk C;
  const bool CanSpill = !State.JournalPath.empty() && State.JournalOk;
  while (State.Decoder->take(C)) {
    if (QueueClosed)
      continue; // drain the decoder; the daemon is shutting down
    if (State.Spilling.load(std::memory_order_relaxed)) {
      // Already spilling: the journal holds these bytes; the tail is
      // replayed from it at session end.
      State.SpilledEvents.fetch_add(C.Records.size(),
                                    std::memory_order_relaxed);
      if (Metrics)
        Metrics->threadSlab().add(Metrics->counter("collector.spill.events"),
                                  C.Records.size());
      continue;
    }
    IngestItem Item;
    Item.K = IngestItem::Kind::Chunk;
    Item.SessionId = State.Id;
    Item.Tid = C.Tid;
    Item.Records = std::move(C.Records);
    Item.NumCounters = State.Decoder->numTimestampCounters();
    bool Pushed = false;
    if (!(Config.TestForceSpill && CanSpill)) {
      Pushed = Queue.tryPush(Item);
      for (unsigned A = 0;
           !Pushed && A < Config.SpillAfterRetries && !Queue.closed(); ++A) {
        std::this_thread::yield();
        Pushed = Queue.tryPush(Item);
      }
    }
    if (Pushed)
      continue;
    if (Queue.closed()) {
      QueueClosed = true;
      continue;
    }
    if (CanSpill) {
      // Overload: detection is behind and the queue is full. The journal
      // already holds this session's bytes, so shed to disk instead of
      // blocking the reader; the suffix is re-fed from the journal when
      // the session ends.
      State.Spilling.store(true, std::memory_order_relaxed);
      State.SpilledEvents.fetch_add(Item.Records.size(),
                                    std::memory_order_relaxed);
      if (Metrics) {
        telemetry::ThreadSlab &Slab = Metrics->threadSlab();
        Slab.add(Metrics->counter("collector.spill.sessions"));
        Slab.add(Metrics->counter("collector.spill.events"),
                 Item.Records.size());
      }
    } else if (!Queue.push(Item)) { // blocking backpressure
      QueueClosed = true;
    }
  }
  const TraceReadStats &S = State.Decoder->stats();
  State.SegmentsRecovered.store(S.SegmentsRecovered,
                                std::memory_order_relaxed);
  State.SegmentsDropped.store(S.SegmentsDropped, std::memory_order_relaxed);
  State.BytesDropped.store(S.BytesDropped, std::memory_order_relaxed);
}

void CollectorServer::finalizeIngest(
    const std::shared_ptr<SessionState> &State, bool OnlyIfDetached) {
  IngestItem End;
  {
    std::lock_guard<std::mutex> Guard(State->IngestLock);
    if (State->Ended)
      return;
    if (OnlyIfDetached && State->AttachedFd >= 0)
      return; // the client came back just before the idle timeout
    State->Ended = true;
    State->Decoder->finish();
    bool QueueClosed = false;
    forwardDecoded(*State, QueueClosed);
    const TraceReadStats &S = State->Decoder->stats();
    if (State->JournalFd >= 0) {
      ::close(State->JournalFd);
      State->JournalFd = -1;
    }
    State->Clean.store(S.CleanShutdown, std::memory_order_relaxed);
    if (Metrics) {
      telemetry::ThreadSlab &Slab = Metrics->threadSlab();
      Slab.add(Metrics->counter("collector.segments.recovered"),
               S.SegmentsRecovered);
      Slab.add(Metrics->counter("collector.segments.dropped"),
               S.SegmentsDropped);
    }
    End.K = IngestItem::Kind::End;
    End.SessionId = State->Id;
    End.NumCounters = State->Decoder->numTimestampCounters();
    End.Clean = S.CleanShutdown;
    End.SegmentsRecovered = S.SegmentsRecovered;
    End.SegmentsDropped = S.SegmentsDropped;
    End.ReplayTail = State->Spilling.load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> Guard(SessionsLock);
    const auto It = RunIdIndex.find({State->RunIdHi, State->RunIdLo});
    if (It != RunIdIndex.end() && It->second == State->Id)
      RunIdIndex.erase(It);
  }
  Queue.push(End); // false only when closed (shutdown/crash): drop
}

void CollectorServer::readerLoop(int Fd) {
  // Sniff the first four bytes: "LRH1" opens the resumable stream
  // handshake; anything else (in practice the v2 file magic) is a legacy
  // fire-and-forget stream.
  uint8_t First[4];
  size_t Got = 0;
  bool Dead = false;
  while (Got < sizeof(First)) {
    const ssize_t N = ::recv(Fd, First + Got, sizeof(First) - Got, 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0) {
      Dead = true;
      break;
    }
    Got += static_cast<size_t>(N);
  }

  std::shared_ptr<SessionState> State;
  bool QueueClosed = false;
  if (!Dead) {
    if (isStreamHello(First)) {
      State = handshakeSession(Fd);
      if (!State)
        Dead = true;
    } else {
      State = createSession(0, 0, /*Resumable=*/false, /*Recovered=*/false);
      std::lock_guard<std::mutex> Guard(State->IngestLock);
      State->AttachedFd = Fd;
      ingestBytes(*State, First, sizeof(First), QueueClosed);
    }
  }

  if (State && !Dead && !QueueClosed) {
    uint8_t Buf[1 << 16];
    for (;;) {
      const ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        break;
      std::lock_guard<std::mutex> Guard(State->IngestLock);
      if (State->AttachedFd != Fd)
        break; // a reconnect took this session over
      ingestBytes(*State, Buf, static_cast<size_t>(N), QueueClosed);
      if (QueueClosed)
        break;
    }
  }

  // Connection over. A resumable session without its footer detaches and
  // waits for the client to reconnect; everything else finalizes with
  // salvage semantics.
  if (State && !Crashed.load()) {
    bool DoFinalize = false;
    {
      std::lock_guard<std::mutex> Guard(State->IngestLock);
      if (State->AttachedFd == Fd) {
        State->AttachedFd = -1;
        const bool Footer = State->Decoder && State->Decoder->footerSeen();
        if (State->ResumableSession && !Footer && !State->Ended &&
            !Stopping.load() && !QueueClosed) {
          State->Detached.store(true, std::memory_order_relaxed);
          State->DetachedAtMs.store(nowMs(), std::memory_order_relaxed);
          if (Metrics)
            Metrics->threadSlab().add(
                Metrics->counter("collector.sessions.detached"));
        } else {
          DoFinalize = true;
        }
      }
    }
    if (DoFinalize)
      finalizeIngest(State);
  }

  {
    std::lock_guard<std::mutex> Guard(ReadersLock);
    for (size_t I = 0; I != LiveFds.size(); ++I)
      if (LiveFds[I] == Fd) {
        LiveFds.erase(LiveFds.begin() + I);
        break;
      }
  }
  ::close(Fd);
}

void CollectorServer::housekeepingLoop() {
  while (!Stopping.load()) {
    ::usleep(20 * 1000);
    if (Stopping.load())
      break;
    const uint64_t Now = nowMs();
    std::vector<std::shared_ptr<SessionState>> Idle;
    {
      std::lock_guard<std::mutex> Guard(SessionsLock);
      for (const auto &[Id, S] : Sessions) {
        if (!S->Active.load(std::memory_order_relaxed) ||
            !S->Detached.load(std::memory_order_relaxed))
          continue;
        const uint64_t At = S->DetachedAtMs.load(std::memory_order_relaxed);
        if (At && Now >= At && Now - At >= Config.SessionIdleTimeoutMs)
          Idle.push_back(S);
      }
    }
    for (const auto &S : Idle) {
      if (Metrics)
        Metrics->threadSlab().add(
            Metrics->counter("collector.sessions.idle_timeout"));
      finalizeIngest(S, /*OnlyIfDetached=*/true);
    }
  }
}

void CollectorServer::recoverFromSpool() {
  ::mkdir(Config.SpoolDir.c_str(), 0755);

  CollectorCheckpoint Ckpt;
  bool HaveCkpt = false;
  std::string Text;
  if (readFileInto(Config.SpoolDir + "/" + checkpointFileName(), Text)) {
    if (decodeCheckpoint(Text, Ckpt)) {
      HaveCkpt = true;
    } else if (Metrics) {
      // The atomic-rename write protocol makes a torn checkpoint
      // impossible; garbage here is operator error. Count it and start
      // from the journals alone.
      Metrics->threadSlab().add(
          Metrics->counter("collector.checkpoint.errors"));
    }
  }
  if (HaveCkpt) {
    {
      std::lock_guard<std::mutex> Guard(SessionsLock);
      if (Ckpt.NextSessionId > NextSessionId)
        NextSessionId = Ckpt.NextSessionId;
    }
    Triage.restore(Ckpt.Races, Ckpt.Sightings, Ckpt.SuppressedSightings,
                   Ckpt.RateLimitedUpdates);
    if (Config.Suppressions)
      for (const auto &[Name, Hits] : Ckpt.SuppressionHits)
        Config.Suppressions->restoreHits(Name, Hits);
  }

  for (const std::string &Name : listJournalFiles(Config.SpoolDir)) {
    uint64_t Id = 0, Hi = 0, Lo = 0;
    bool Resumable = false;
    parseJournalFileName(Name, Id, Hi, Lo, Resumable);
    const std::string Path = Config.SpoolDir + "/" + Name;
    struct stat St {};
    if (::stat(Path.c_str(), &St) != 0)
      continue;
    const uint64_t Size = static_cast<uint64_t>(St.st_size);

    const CheckpointSessionEntry *E = nullptr;
    for (const CheckpointSessionEntry &S : Ckpt.Sessions)
      if (S.Id == Id) {
        E = &S;
        break;
      }

    auto State = createSession(Hi, Lo, Resumable, /*Recovered=*/true, Id);
    {
      std::lock_guard<std::mutex> Guard(SessionsLock);
      if (E && !E->Published.empty()) {
        // Counts the previous life already published for this session:
        // the detection thread replays only the delta beyond them.
        std::map<StaticRaceKey, uint64_t> &M = RecoveredPublished[Id];
        for (const auto &[Key, Count] : E->Published)
          M[Key] = Count;
      }
    }
    // Reconstruct the ack position: the stream offset of journal byte 0
    // (checkpointed logical position minus checkpointed journal size,
    // i.e. the accumulated gaps) plus what is actually on disk now.
    const uint64_t Base =
        E ? E->LogicalPos - std::min(E->JournalBytes, E->LogicalPos) : 0;
    State->StreamBase.store(Base, std::memory_order_relaxed);
    State->LogicalPos.store(Base + Size, std::memory_order_relaxed);
    State->JournalBytes.store(Size, std::memory_order_relaxed);
    RecoveredCount.fetch_add(1, std::memory_order_relaxed);
    if (Metrics)
      Metrics->threadSlab().add(
          Metrics->counter("collector.sessions.recovered"));

    // Replay the journal through normal ingestion (the bytes are already
    // on disk, so the journal fd stays closed during the replay).
    bool WaitForClient = false;
    {
      std::lock_guard<std::mutex> Guard(State->IngestLock);
      bool QueueClosed = false;
      std::FILE *File = std::fopen(Path.c_str(), "rb");
      if (File) {
        uint8_t Buf[1 << 16];
        size_t N;
        while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0) {
          State->Decoder->feed(Buf, N);
          State->Bytes.fetch_add(N, std::memory_order_relaxed);
          BytesIngestedTotal.fetch_add(N, std::memory_order_relaxed);
          forwardDecoded(*State, QueueClosed);
        }
        std::fclose(File);
      }
      if (Resumable && !State->Decoder->footerSeen()) {
        // Mid-stream when the daemon died; the client may still be out
        // there spooling. Reopen the journal for append and wait.
        State->JournalFd = ::open(Path.c_str(), O_WRONLY | O_APPEND);
        if (State->JournalFd < 0) {
          State->JournalOk = false;
          DurabilityBroken.store(true, std::memory_order_relaxed);
          if (Metrics)
            Metrics->threadSlab().add(
                Metrics->counter("collector.journal.errors"));
        }
        State->Detached.store(true, std::memory_order_relaxed);
        State->DetachedAtMs.store(nowMs(), std::memory_order_relaxed);
        WaitForClient = true;
      }
    }
    if (!WaitForClient)
      finalizeIngest(State);
  }
}

void CollectorServer::publish(Detection &D, uint64_t SessionId) {
  uint64_t NewSightings = 0;
  for (const StaticRace &R : D.Report.staticRaces()) {
    uint64_t &Done = D.Published[R.Key];
    if (R.DynamicCount > Done) {
      Triage.observe(R.Key, R.DynamicCount - Done, R.SawWriteWrite,
                     R.ExampleAddr, SessionId);
      NewSightings += R.DynamicCount - Done;
      Done = R.DynamicCount;
    }
  }
  D.State->Races.store(D.Report.numStaticRaces(),
                       std::memory_order_relaxed);
  if (NewSightings) {
    ++PublishedSinceCkpt;
    if (Metrics)
      Metrics->threadSlab().add(
          Metrics->counter("collector.races.sightings"), NewSightings);
  }
}

void CollectorServer::replaySpilledTail(Detection &D, const IngestItem &End) {
  if (!D.State || D.State->JournalPath.empty() || !D.Scheduler)
    return;
  const TraceReadResult R = readTrace(D.State->JournalPath);
  if (!R.readable())
    return;
  uint64_t Replayed = 0;
  for (size_t Tid = 0; Tid != R.T.PerThread.size(); ++Tid) {
    const std::vector<EventRecord> &Stream = R.T.PerThread[Tid];
    const uint64_t Done =
        Tid < D.AddedPerTid.size() ? D.AddedPerTid[Tid] : 0;
    if (Stream.size() > Done) {
      // Chunks stop entering the queue once a session starts spilling
      // and never resume, so what detection saw is exactly each
      // thread's stream prefix; feed the rest.
      D.Scheduler->addEvents(static_cast<ThreadId>(Tid),
                             Stream.data() + Done, Stream.size() - Done);
      Replayed += Stream.size() - Done;
    }
  }
  (void)End;
  if (Metrics && Replayed)
    Metrics->threadSlab().add(
        Metrics->counter("collector.spill.replayed_events"), Replayed);
}

void CollectorServer::finishSession(Detection &D, const IngestItem &End) {
  uint64_t Gaps = 0;
  if (D.Scheduler) {
    size_t Delivered = D.Scheduler->drain(D.consumer());
    if (!D.Scheduler->fullyDrained()) {
      // Dropped segments punched holes into the timestamp order; skip
      // them like file salvage does instead of stalling forever.
      Delivered += D.Scheduler->drainAllowingGaps(D.consumer());
      Gaps = D.Scheduler->timestampGaps();
    }
    if (Delivered) {
      D.State->Events.fetch_add(Delivered, std::memory_order_relaxed);
      if (Metrics)
        Metrics->threadSlab().add(
            Metrics->counter("collector.events.ingested"), Delivered);
    }
    if (D.Sharded)
      D.Sharded->finish(D.Report);
    publish(D, End.SessionId);
  }
  D.State->TimestampGaps.store(Gaps, std::memory_order_relaxed);
  D.State->Clean.store(End.Clean, std::memory_order_relaxed);
  D.State->Active.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Guard(SessionsLock);
    ++Completed;
    if (End.Clean)
      ++CleanCount;
  }
  if (Metrics) {
    telemetry::ThreadSlab &Slab = Metrics->threadSlab();
    Slab.add(Metrics->counter("collector.sessions.completed"));
    if (End.Clean)
      Slab.add(Metrics->counter("collector.sessions.clean"));
    Slab.gaugeMax(Metrics->gaugeMax("collector.races.distinct"),
                  Triage.distinctRaces());
    Slab.gaugeMax(Metrics->gaugeMax("collector.queue.depth.highwater"),
                  Queue.stats().DepthHighWater);
  }
  SessionsCv.notify_all();
}

void CollectorServer::writeCheckpoint(
    const std::map<uint64_t, Detection> &Live) {
  if (Config.SpoolDir.empty())
    return;
  CollectorCheckpoint C;
  {
    std::lock_guard<std::mutex> Guard(SessionsLock);
    C.NextSessionId = NextSessionId;
  }
  // Totals and entries form one consistent snapshot: observe() only runs
  // on this (the detection) thread, so nothing moves between the calls.
  Triage.checkpointTotals(C.Sightings, C.SuppressedSightings,
                          C.RateLimitedUpdates);
  C.Races = Triage.checkpointEntries();
  const SuppressionSet &Supp =
      Config.Suppressions ? *Config.Suppressions : EmptySuppressions;
  for (size_t I = 0; I != Supp.size(); ++I)
    if (Supp.hits(I))
      C.SuppressionHits.emplace_back(Supp.entry(I).Name, Supp.hits(I));
  for (const auto &[Id, D] : Live) {
    if (!D.State || D.State->JournalPath.empty())
      continue;
    CheckpointSessionEntry E;
    E.Id = Id;
    E.RunIdHi = D.State->RunIdHi;
    E.RunIdLo = D.State->RunIdLo;
    E.Resumable = D.State->ResumableSession;
    // JournalBytes may run ahead of what this thread has detected; that
    // is fine — recovery replays the whole journal and subtracts
    // Published. Deriving LogicalPos from StreamBase (changes only on
    // rare gap declarations) keeps the pair consistent under races.
    E.JournalBytes = D.State->JournalBytes.load(std::memory_order_relaxed);
    E.LogicalPos =
        D.State->StreamBase.load(std::memory_order_relaxed) + E.JournalBytes;
    E.Published.assign(D.Published.begin(), D.Published.end());
    C.Sessions.push_back(std::move(E));
  }
  if (writeFileAtomic(Config.SpoolDir + "/" + checkpointFileName(),
                      encodeCheckpoint(C))) {
    CheckpointsWritten.fetch_add(1, std::memory_order_relaxed);
    if (Metrics)
      Metrics->threadSlab().add(
          Metrics->counter("collector.checkpoints.written"));
  } else {
    DurabilityBroken.store(true, std::memory_order_relaxed);
    if (Metrics)
      Metrics->threadSlab().add(
          Metrics->counter("collector.checkpoint.errors"));
  }
}

void CollectorServer::detectLoop() {
  std::map<uint64_t, Detection> Live;
  IngestItem Item;
  while (!Crashed.load(std::memory_order_relaxed) && Queue.pop(Item)) {
    Detection &D = Live[Item.SessionId];
    if (!D.Scheduler) {
      D.Scheduler =
          std::make_unique<ReplayScheduler>(Item.NumCounters);
      if (Config.Shards > 1) {
        DetectorOptions Opts;
        Opts.Shards = Config.Shards;
        D.Sharded = std::make_unique<ShardedHBDetector>(Opts);
      } else {
        D.Serial = std::make_unique<HBDetector>(D.Report);
      }
      std::lock_guard<std::mutex> Guard(SessionsLock);
      D.State = Sessions.at(Item.SessionId);
      const auto It = RecoveredPublished.find(Item.SessionId);
      if (It != RecoveredPublished.end()) {
        D.Published = std::move(It->second);
        RecoveredPublished.erase(It);
      }
    }
    if (Item.K == IngestItem::Kind::Chunk) {
      if (D.AddedPerTid.size() <= Item.Tid)
        D.AddedPerTid.resize(static_cast<size_t>(Item.Tid) + 1, 0);
      D.AddedPerTid[Item.Tid] += Item.Records.size();
      D.Scheduler->addEvents(Item.Tid, Item.Records.data(),
                             Item.Records.size());
      const size_t Delivered = D.Scheduler->drain(D.consumer());
      D.State->Events.fetch_add(Delivered, std::memory_order_relaxed);
      if (Metrics && Delivered)
        Metrics->threadSlab().add(
            Metrics->counter("collector.events.ingested"), Delivered);
      // The serial detector's report is live; surface new sightings as
      // they happen. (The sharded pipeline merges at session end.)
      if (D.Serial)
        publish(D, Item.SessionId);
      const bool Want =
          CheckpointRequested.exchange(false, std::memory_order_relaxed) ||
          (Config.CheckpointEveryUpdates &&
           PublishedSinceCkpt >= Config.CheckpointEveryUpdates);
      if (Want && !Config.SpoolDir.empty()) {
        writeCheckpoint(Live);
        PublishedSinceCkpt = 0;
      }
    } else {
      if (Item.ReplayTail)
        replaySpilledTail(D, Item);
      finishSession(D, Item);
      if (!Config.SpoolDir.empty()) {
        // Checkpoint (with this session's final Published still in the
        // in-flight table) *before* unlinking its journal: a crash in
        // the window leaves a journal whose replay delta against the
        // checkpoint is zero.
        writeCheckpoint(Live);
        PublishedSinceCkpt = 0;
        if (D.State && !D.State->JournalPath.empty())
          ::unlink(D.State->JournalPath.c_str());
      }
      Live.erase(Item.SessionId);
    }
  }
  if (Crashed.load(std::memory_order_relaxed))
    return; // simulated SIGKILL: no settling, no final checkpoint
  // Queue closed with sessions still live (reader hit a closed queue
  // mid-stream during shutdown): settle them as unclean.
  for (auto &[Id, D] : Live) {
    IngestItem End;
    End.K = IngestItem::Kind::End;
    End.SessionId = Id;
    End.Clean = false;
    End.ReplayTail =
        D.State && D.State->Spilling.load(std::memory_order_relaxed);
    if (End.ReplayTail)
      replaySpilledTail(D, End);
    finishSession(D, End);
    if (D.State && !D.State->JournalPath.empty())
      ::unlink(D.State->JournalPath.c_str());
  }
  Live.clear();
  // Final checkpoint: triage totals and the session-id watermark survive
  // a clean restart with nothing in flight.
  if (!Config.SpoolDir.empty())
    writeCheckpoint(Live);
}

bool CollectorServer::degraded() const {
  if (DurabilityBroken.load(std::memory_order_relaxed))
    return true;
  std::lock_guard<std::mutex> Guard(SessionsLock);
  for (const auto &[Id, S] : Sessions)
    if (S->Active.load(std::memory_order_relaxed) &&
        S->Spilling.load(std::memory_order_relaxed))
      return true;
  return false;
}

bool CollectorServer::serveHttpUnix(const std::string &Path,
                                    std::string *Error) {
  int Fd = listenUnix(Path);
  if (Fd < 0) {
    if (Error)
      *Error = "cannot listen on " + Path + ": " + std::strerror(errno);
    return false;
  }
  std::lock_guard<std::mutex> Guard(HttpLock);
  HttpListenFds.push_back(Fd);
  HttpThreads.emplace_back(&CollectorServer::httpLoop, this, Fd);
  return true;
}

bool CollectorServer::serveHttpTcp(uint16_t Port, uint16_t *BoundPort,
                                   std::string *Error) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 16) != 0) {
    if (Error)
      *Error = std::strerror(errno);
    ::close(Fd);
    return false;
  }
  if (BoundPort) {
    socklen_t Len = sizeof(Addr);
    ::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len);
    *BoundPort = ntohs(Addr.sin_port);
  }
  std::lock_guard<std::mutex> Guard(HttpLock);
  HttpListenFds.push_back(Fd);
  HttpThreads.emplace_back(&CollectorServer::httpLoop, this, Fd);
  return true;
}

bool CollectorServer::route(const std::string &Path, std::string &Body,
                            std::string &ContentType) const {
  if (Path == "/metrics") {
    Body = metricsText();
    ContentType = "text/plain; version=0.0.4; charset=utf-8";
    return true;
  }
  if (Path == "/status") {
    Body = statusJson();
    ContentType = "application/json";
    return true;
  }
  if (Path == "/races") {
    Body = racesJson();
    ContentType = "application/json";
    return true;
  }
  if (Path == "/") {
    Body = "literace-collectd: /metrics /status /races\n";
    ContentType = "text/plain; charset=utf-8";
    return true;
  }
  return false;
}

void CollectorServer::httpLoop(int ListenSocket) {
  const int IoDeadline = static_cast<int>(Config.HttpIoTimeoutMs);
  for (;;) {
    int C = ::accept(ListenSocket, nullptr, nullptr);
    if (C < 0) {
      if (errno == EINTR && !Stopping.load())
        continue;
      break;
    }
    HttpRequests.fetch_add(1, std::memory_order_relaxed);
    if (Metrics)
      Metrics->threadSlab().add(
          Metrics->counter("collector.http.requests"));

    // Read the request head (tiny GETs only; this is a triage endpoint,
    // not a web server) under a per-connection deadline: a stalled or
    // byte-dribbling scraper is cut off instead of wedging this thread.
    const uint64_t Deadline = nowMs() + Config.HttpIoTimeoutMs;
    std::string Request;
    bool TimedOut = false;
    char Buf[1024];
    while (Request.size() < 8192 &&
           Request.find("\r\n\r\n") == std::string::npos &&
           Request.find("\n\n") == std::string::npos) {
      const uint64_t Now = nowMs();
      if (Now >= Deadline) {
        TimedOut = true;
        break;
      }
      pollfd P{C, POLLIN, 0};
      const int R = ::poll(&P, 1, static_cast<int>(Deadline - Now));
      if (R < 0 && errno == EINTR)
        continue;
      if (R <= 0) {
        TimedOut = R == 0;
        break;
      }
      ssize_t N = ::recv(C, Buf, sizeof(Buf), MSG_DONTWAIT);
      if (N < 0 && (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK))
        continue;
      if (N <= 0)
        break;
      Request.append(Buf, static_cast<size_t>(N));
    }
    if (TimedOut) {
      HttpTimeouts.fetch_add(1, std::memory_order_relaxed);
      if (Metrics)
        Metrics->threadSlab().add(
            Metrics->counter("collector.http.io_timeouts"));
      ::close(C);
      continue;
    }

    std::string Method, Path;
    {
      const size_t LineEnd = Request.find_first_of("\r\n");
      const std::string Line = Request.substr(
          0, LineEnd == std::string::npos ? Request.size() : LineEnd);
      const size_t Sp1 = Line.find(' ');
      const size_t Sp2 =
          Sp1 == std::string::npos ? std::string::npos
                                   : Line.find(' ', Sp1 + 1);
      if (Sp1 != std::string::npos) {
        Method = Line.substr(0, Sp1);
        Path = Line.substr(Sp1 + 1, Sp2 == std::string::npos
                                        ? std::string::npos
                                        : Sp2 - Sp1 - 1);
      }
      const size_t Query = Path.find('?');
      if (Query != std::string::npos)
        Path.resize(Query);
    }

    std::string Body, ContentType, Status = "200 OK";
    if (Method != "GET") {
      Status = "405 Method Not Allowed";
      Body = "only GET is supported\n";
      ContentType = "text/plain; charset=utf-8";
    } else if (!route(Path, Body, ContentType)) {
      Status = "404 Not Found";
      Body = "no such endpoint: " + Path + "\n";
      ContentType = "text/plain; charset=utf-8";
    }
    std::string Response = "HTTP/1.0 " + Status +
                           "\r\nContent-Type: " + ContentType +
                           "\r\nContent-Length: " +
                           std::to_string(Body.size()) +
                           "\r\nConnection: close\r\n\r\n" + Body;
    if (!sendAllDeadline(C, Response.data(), Response.size(), IoDeadline)) {
      HttpTimeouts.fetch_add(1, std::memory_order_relaxed);
      if (Metrics)
        Metrics->threadSlab().add(
            Metrics->counter("collector.http.io_timeouts"));
    }
    ::close(C);
  }
}

void CollectorServer::waitForSessions(uint64_t N) {
  std::unique_lock<std::mutex> Guard(SessionsLock);
  SessionsCv.wait(Guard, [&] {
    return Completed >= N || Stopping.load();
  });
}

uint64_t CollectorServer::sessionsAccepted() const {
  std::lock_guard<std::mutex> Guard(SessionsLock);
  return Accepted;
}

uint64_t CollectorServer::sessionsCompleted() const {
  std::lock_guard<std::mutex> Guard(SessionsLock);
  return Completed;
}

std::vector<SessionStatus> CollectorServer::sessionStatuses() const {
  std::vector<SessionStatus> Out;
  std::lock_guard<std::mutex> Guard(SessionsLock);
  Out.reserve(Sessions.size());
  for (const auto &[Id, State] : Sessions) {
    SessionStatus S;
    S.Id = Id;
    S.Active = State->Active.load(std::memory_order_relaxed);
    S.Clean = State->Clean.load(std::memory_order_relaxed);
    S.Bytes = State->Bytes.load(std::memory_order_relaxed);
    S.Events = State->Events.load(std::memory_order_relaxed);
    S.SegmentsRecovered =
        State->SegmentsRecovered.load(std::memory_order_relaxed);
    S.SegmentsDropped =
        State->SegmentsDropped.load(std::memory_order_relaxed);
    S.BytesDropped = State->BytesDropped.load(std::memory_order_relaxed);
    S.TimestampGaps = State->TimestampGaps.load(std::memory_order_relaxed);
    S.Races = State->Races.load(std::memory_order_relaxed);
    S.Resumable = State->ResumableSession;
    S.Detached = State->Detached.load(std::memory_order_relaxed);
    S.Spilling = State->Spilling.load(std::memory_order_relaxed);
    S.Recovered = State->RecoveredSession;
    S.SpilledEvents = State->SpilledEvents.load(std::memory_order_relaxed);
    S.LogicalPos = State->LogicalPos.load(std::memory_order_relaxed);
    Out.push_back(S);
  }
  return Out;
}

std::string CollectorServer::statusJson() const {
  uint64_t AcceptedNow, CompletedNow, CleanNow;
  {
    std::lock_guard<std::mutex> Guard(SessionsLock);
    AcceptedNow = Accepted;
    CompletedNow = Completed;
    CleanNow = CleanCount;
  }
  const std::vector<SessionStatus> Detail = sessionStatuses();
  uint64_t Bytes = 0, Events = 0, SegRecovered = 0, SegDropped = 0;
  uint64_t Spilled = 0;
  for (const SessionStatus &S : Detail) {
    Bytes += S.Bytes;
    Events += S.Events;
    SegRecovered += S.SegmentsRecovered;
    SegDropped += S.SegmentsDropped;
    Spilled += S.SpilledEvents;
  }
  const MpscQueueStats QStats = Queue.stats();

  std::string J = "{\n  \"schema\": \"literace.status.v1\",\n";
  J += "  \"listening\": " +
       jsonString(Config.IngestSocketPath) + ",\n";
  J += "  \"degraded\": ";
  appendBool(J, degraded());
  J += ",\n  \"sessions\": {\"accepted\": ";
  appendU64(J, AcceptedNow);
  J += ", \"active\": ";
  appendU64(J, AcceptedNow - CompletedNow);
  J += ", \"completed\": ";
  appendU64(J, CompletedNow);
  J += ", \"clean\": ";
  appendU64(J, CleanNow);
  J += ", \"salvaged\": ";
  appendU64(J, CompletedNow - CleanNow);
  J += "},\n  \"ingest\": {\"bytes\": ";
  appendU64(J, Bytes);
  J += ", \"events\": ";
  appendU64(J, Events);
  J += ", \"segments_recovered\": ";
  appendU64(J, SegRecovered);
  J += ", \"segments_dropped\": ";
  appendU64(J, SegDropped);
  J += ", \"queue\": {\"capacity\": ";
  appendU64(J, Queue.capacity());
  J += ", \"depth\": ";
  appendU64(J, Queue.approxSize());
  J += ", \"high_water\": ";
  appendU64(J, QStats.DepthHighWater);
  J += ", \"producer_parks\": ";
  appendU64(J, QStats.ProducerParks);
  J += ", \"consumer_parks\": ";
  appendU64(J, QStats.ConsumerParks);
  J += "}},\n  \"durability\": {\"spool_dir\": " +
       jsonString(Config.SpoolDir);
  J += ", \"enabled\": ";
  appendBool(J, !Config.SpoolDir.empty());
  J += ", \"broken\": ";
  appendBool(J, DurabilityBroken.load(std::memory_order_relaxed));
  J += ", \"checkpoints_written\": ";
  appendU64(J, CheckpointsWritten.load(std::memory_order_relaxed));
  J += ", \"recovered_sessions\": ";
  appendU64(J, RecoveredCount.load(std::memory_order_relaxed));
  J += ", \"resumed_connections\": ";
  appendU64(J, ResumedCount.load(std::memory_order_relaxed));
  J += ", \"gap_bytes\": ";
  appendU64(J, GapBytesTotal.load(std::memory_order_relaxed));
  J += ", \"spilled_events\": ";
  appendU64(J, Spilled);
  J += "},\n  \"http\": {\"requests\": ";
  appendU64(J, HttpRequests.load(std::memory_order_relaxed));
  J += ", \"io_timeouts\": ";
  appendU64(J, HttpTimeouts.load(std::memory_order_relaxed));
  J += "},\n  \"triage\": {\"distinct_races\": ";
  appendU64(J, Triage.distinctRaces());
  J += ", \"unsuppressed_races\": ";
  appendU64(J, Triage.unsuppressedRaces());
  J += ", \"sightings\": ";
  appendU64(J, Triage.totalSightings());
  J += ", \"suppressed_sightings\": ";
  appendU64(J, Triage.suppressedSightings());
  J += ", \"rate_limited_updates\": ";
  appendU64(J, Triage.rateLimitedUpdates());
  J += "},\n  \"session_detail\": [";
  for (size_t I = 0; I != Detail.size(); ++I) {
    const SessionStatus &S = Detail[I];
    J += I ? ",\n    {" : "\n    {";
    J += "\"id\": ";
    appendU64(J, S.Id);
    J += ", \"active\": ";
    appendBool(J, S.Active);
    J += ", \"clean\": ";
    appendBool(J, S.Clean);
    J += ", \"bytes\": ";
    appendU64(J, S.Bytes);
    J += ", \"events\": ";
    appendU64(J, S.Events);
    J += ", \"segments_recovered\": ";
    appendU64(J, S.SegmentsRecovered);
    J += ", \"segments_dropped\": ";
    appendU64(J, S.SegmentsDropped);
    J += ", \"bytes_dropped\": ";
    appendU64(J, S.BytesDropped);
    J += ", \"timestamp_gaps\": ";
    appendU64(J, S.TimestampGaps);
    J += ", \"races\": ";
    appendU64(J, S.Races);
    J += ", \"resumable\": ";
    appendBool(J, S.Resumable);
    J += ", \"detached\": ";
    appendBool(J, S.Detached);
    J += ", \"spilling\": ";
    appendBool(J, S.Spilling);
    J += ", \"recovered\": ";
    appendBool(J, S.Recovered);
    J += ", \"spilled_events\": ";
    appendU64(J, S.SpilledEvents);
    J += ", \"logical_pos\": ";
    appendU64(J, S.LogicalPos);
    J += "}";
  }
  J += Detail.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return J;
}

std::string CollectorServer::racesJson() const {
  const std::vector<TriagedRace> Races = Triage.races();
  std::string J = "{\n  \"schema\": \"literace.races.v1\",\n  \"races\": [";
  for (size_t I = 0; I != Races.size(); ++I) {
    const TriagedRace &R = Races[I];
    J += I ? ",\n    {" : "\n    {";
    J += "\"first_pc\": ";
    appendU64(J, R.Key.first);
    J += ", \"second_pc\": ";
    appendU64(J, R.Key.second);
    J += ", \"first_site\": " + jsonString(siteName(R.Key.first));
    J += ", \"second_site\": " +
         jsonString(siteName(R.Key.second));
    J += ", \"count\": ";
    appendU64(J, R.DynamicCount);
    J += ", \"sessions\": ";
    appendU64(J, R.Sessions);
    J += ", \"example_addr\": ";
    appendU64(J, R.ExampleAddr);
    J += ", \"write_write\": ";
    appendBool(J, R.SawWriteWrite);
    J += ", \"suppressed\": ";
    appendBool(J, R.Suppressed);
    if (R.Suppressed)
      J += ", \"suppression\": " + jsonString(R.SuppressionName);
    J += ", \"emitted\": ";
    appendU64(J, R.EmittedUpdates);
    J += ", \"rate_limited\": ";
    appendU64(J, R.RateLimitedUpdates);
    J += "}";
  }
  J += Races.empty() ? "],\n" : "\n  ],\n";
  const SuppressionSet &Supp =
      Config.Suppressions ? *Config.Suppressions : EmptySuppressions;
  J += "  \"suppressions_used\": [";
  bool First = true;
  for (size_t I = 0; I != Supp.size(); ++I) {
    if (Supp.hits(I) == 0)
      continue;
    J += First ? "\n    {" : ",\n    {";
    First = false;
    J += "\"name\": " + jsonString(Supp.entry(I).Name) +
         ", \"hits\": ";
    appendU64(J, Supp.hits(I));
    J += "}";
  }
  J += First ? "]\n}\n" : "\n  ]\n}\n";
  return J;
}

std::string CollectorServer::metricsText() const {
  telemetry::MetricsSnapshot Snap;
  if (Metrics)
    Snap = Metrics->snapshot();
  Snap.stampCapture();
  return telemetry::toPrometheusText(Snap);
}
