//===-- collector/Suppressions.cpp - Race suppression files --------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "collector/Suppressions.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace literace;
using namespace literace::collector;

bool SitePattern::matches(Pc P) const {
  switch (K) {
  case Kind::Any:
    return true;
  case Kind::ExactPc:
    return P == ExactPc;
  case Kind::Function:
    return pcFunction(P) == Function;
  case Kind::FunctionSite:
    return pcFunction(P) == Function && pcSite(P) == Site;
  }
  return false;
}

std::string SitePattern::describe() const {
  char Buf[64];
  switch (K) {
  case Kind::Any:
    return "*";
  case Kind::ExactPc:
    std::snprintf(Buf, sizeof(Buf), "0x%llx",
                  static_cast<unsigned long long>(ExactPc));
    return Buf;
  case Kind::Function:
    std::snprintf(Buf, sizeof(Buf), "fn%u:*", Function);
    return Buf;
  case Kind::FunctionSite:
    std::snprintf(Buf, sizeof(Buf), "fn%u:%u", Function, Site);
    return Buf;
  }
  return "?";
}

bool Suppression::matches(const StaticRaceKey &Key) const {
  if (Sites.size() == 1)
    return Sites[0].matches(Key.first) || Sites[0].matches(Key.second);
  if (Sites.size() == 2) {
    // Order-insensitive one-to-one cover of the (unordered) site pair.
    return (Sites[0].matches(Key.first) && Sites[1].matches(Key.second)) ||
           (Sites[0].matches(Key.second) && Sites[1].matches(Key.first));
  }
  return false;
}

namespace {

std::string_view trim(std::string_view S) {
  while (!S.empty() && (S.front() == ' ' || S.front() == '\t' ||
                        S.front() == '\r'))
    S.remove_prefix(1);
  while (!S.empty() && (S.back() == ' ' || S.back() == '\t' ||
                        S.back() == '\r'))
    S.remove_suffix(1);
  return S;
}

bool parseU32(std::string_view S, uint32_t &Out, size_t &Consumed) {
  uint64_t V = 0;
  size_t I = 0;
  while (I < S.size() && S[I] >= '0' && S[I] <= '9') {
    V = V * 10 + static_cast<uint64_t>(S[I] - '0');
    if (V > UINT32_MAX)
      return false;
    ++I;
  }
  if (I == 0)
    return false;
  Out = static_cast<uint32_t>(V);
  Consumed = I;
  return true;
}

/// Parses one `site:` specifier body (after the prefix).
bool parseSiteSpec(std::string_view Spec, SitePattern &Out) {
  if (Spec == "*") {
    Out.K = SitePattern::Kind::Any;
    return true;
  }
  if (Spec.size() > 2 && Spec[0] == '0' && (Spec[1] == 'x' || Spec[1] == 'X')) {
    char *End = nullptr;
    const std::string Text(Spec);
    const unsigned long long V = std::strtoull(Text.c_str(), &End, 16);
    if (End != Text.c_str() + Text.size())
      return false;
    Out.K = SitePattern::Kind::ExactPc;
    Out.ExactPc = V;
    return true;
  }
  if (Spec.size() > 2 && Spec.substr(0, 2) == "fn") {
    Spec.remove_prefix(2);
    size_t Used = 0;
    if (!parseU32(Spec, Out.Function, Used))
      return false;
    Spec.remove_prefix(Used);
    if (Spec.empty() || Spec == ":*") {
      Out.K = SitePattern::Kind::Function;
      return true;
    }
    if (Spec[0] != ':')
      return false;
    Spec.remove_prefix(1);
    if (!parseU32(Spec, Out.Site, Used) || Used != Spec.size())
      return false;
    Out.K = SitePattern::Kind::FunctionSite;
    return true;
  }
  return false;
}

/// True if the comma-separated tool list names LiteRace (or `*`).
bool toolListIncludesUs(std::string_view Tools) {
  while (!Tools.empty()) {
    const size_t Comma = Tools.find(',');
    std::string_view Tool = trim(Tools.substr(0, Comma));
    if (Tool == "LiteRace" || Tool == "*")
      return true;
    if (Comma == std::string_view::npos)
      break;
    Tools.remove_prefix(Comma + 1);
  }
  return false;
}

} // namespace

bool SuppressionSet::parse(std::string_view Text, std::string *Error) {
  std::vector<Suppression> Parsed;
  size_t LineNo = 0;
  size_t Pos = 0;

  auto NextLine = [&](std::string_view &Out) {
    if (Pos >= Text.size())
      return false;
    size_t End = Text.find('\n', Pos);
    if (End == std::string_view::npos)
      End = Text.size();
    Out = trim(Text.substr(Pos, End - Pos));
    Pos = End + 1;
    ++LineNo;
    return true;
  };
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = "line " + std::to_string(LineNo) + ": " + Msg;
    return false;
  };

  std::string_view Line;
  while (NextLine(Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    if (Line != "{")
      return Fail("expected '{' to open a suppression block");

    Suppression S;
    // Block line 1: the entry name.
    if (!NextLine(Line) || Line.empty() || Line == "}")
      return Fail("suppression block lacks a name");
    S.Name = std::string(Line);

    // Block line 2: tool list and error kind, `tool[,tool]:kind`.
    if (!NextLine(Line))
      return Fail("suppression block lacks a tool:kind line");
    const size_t Colon = Line.rfind(':');
    if (Colon == std::string_view::npos)
      return Fail("expected 'tool:kind' after the suppression name");
    const bool ForUs = toolListIncludesUs(Line.substr(0, Colon));
    const std::string_view ErrKind = trim(Line.substr(Colon + 1));
    if (ForUs && ErrKind != "Race")
      return Fail("unknown LiteRace suppression kind '" +
                  std::string(ErrKind) + "'");

    // Remaining lines until '}': site patterns.
    bool Closed = false;
    while (NextLine(Line)) {
      if (Line == "}") {
        Closed = true;
        break;
      }
      if (Line.empty() || Line[0] == '#')
        continue;
      if (Line.substr(0, 5) != "site:")
        return Fail("expected 'site:<spec>' or '}'");
      SitePattern P;
      if (!parseSiteSpec(trim(Line.substr(5)), P))
        return Fail("bad site specifier '" + std::string(Line.substr(5)) +
                    "'");
      S.Sites.push_back(P);
    }
    if (!Closed)
      return Fail("unterminated suppression block '" + S.Name + "'");
    if (!ForUs)
      continue; // Another tool's entry; skip it, Valgrind-style.
    if (S.Sites.empty() || S.Sites.size() > 2)
      return Fail("suppression '" + S.Name +
                  "' must list one or two site patterns");
    Parsed.push_back(std::move(S));
  }

  Entries = std::move(Parsed);
  HitCounts.assign(Entries.size(), 0);
  return true;
}

bool SuppressionSet::loadFile(const std::string &Path, std::string *Error) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    if (Error)
      *Error = "cannot open " + Path;
    return false;
  }
  std::string Text;
  char Buf[1 << 12];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Text.append(Buf, N);
  std::fclose(File);
  return parse(Text, Error);
}

int SuppressionSet::match(const StaticRaceKey &Key) const {
  for (size_t I = 0; I != Entries.size(); ++I)
    if (Entries[I].matches(Key))
      return static_cast<int>(I);
  return -1;
}

void SuppressionSet::countHit(int Index, uint64_t N) {
  if (Index >= 0 && static_cast<size_t>(Index) < HitCounts.size())
    HitCounts[Index] += N;
}

int SuppressionSet::findByName(std::string_view Name) const {
  for (size_t I = 0; I != Entries.size(); ++I)
    if (Entries[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

void SuppressionSet::restoreHits(std::string_view Name, uint64_t Hits) {
  const int I = findByName(Name);
  if (I >= 0)
    HitCounts[static_cast<size_t>(I)] = Hits;
}

std::string SuppressionSet::describeUsed() const {
  std::string Out;
  for (size_t I = 0; I != Entries.size(); ++I) {
    if (HitCounts[I] == 0)
      continue;
    Out += "used suppression: " + std::to_string(HitCounts[I]) + " " +
           Entries[I].Name + "\n";
  }
  return Out;
}
