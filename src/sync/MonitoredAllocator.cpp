//===-- sync/MonitoredAllocator.cpp - Allocation monitoring --------------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sync/MonitoredAllocator.h"

#include <cassert>
#include <cstdlib>

using namespace literace;

void *MonitoredAllocator::allocate(ThreadContext &TC, size_t Bytes) {
  assert(Bytes > 0 && "zero-byte allocation");
  void *Ptr = std::malloc(Bytes);
  if (!Ptr)
    return nullptr;
  // The timestamp is drawn after malloc returned: any earlier free of
  // these pages drew its timestamp before releasing them to the allocator,
  // so free < alloc holds on the page counter.
  logPages(TC, Ptr, Bytes, /*IsAlloc=*/true);
  return Ptr;
}

void MonitoredAllocator::deallocate(ThreadContext &TC, void *Ptr,
                                    size_t Bytes) {
  if (!Ptr)
    return;
  logPages(TC, Ptr, Bytes, /*IsAlloc=*/false);
  std::free(Ptr);
}

void MonitoredAllocator::logPages(ThreadContext &TC, void *Ptr, size_t Bytes,
                                  bool IsAlloc) {
  uint64_t Start = reinterpret_cast<uint64_t>(Ptr) >> PageShift;
  uint64_t End = (reinterpret_cast<uint64_t>(Ptr) + Bytes - 1) >> PageShift;
  for (uint64_t Page = Start; Page <= End; ++Page)
    TC.logAllocation(makeSyncVar(SyncObjectKind::Page, Page), IsAlloc);
}
