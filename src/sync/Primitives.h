//===-- sync/Primitives.h - Logged synchronization primitives --*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synchronization substrate. Each primitive both performs real
/// synchronization and logs a SyncVar + logical timestamp per the paper's
/// Table 1 and the atomic-timestamping rules of §4.2:
///
///   lock        timestamp drawn after acquiring the lock
///   unlock      timestamp drawn before releasing the lock
///   notify/set  timestamp drawn before signalling
///   wait        timestamp drawn after waking
///   fork        parent's timestamp drawn before the thread starts;
///               child's drawn after it starts
///   join        child's timestamp drawn before exit; parent's after join
///   atomic ops  op + timestamp + log wrapped in a critical section,
///               because a user-level CAS may act as either a lock or an
///               unlock (§4.2)
///
/// Every primitive logs unconditionally whenever the run mode enables sync
/// logging: sampling never applies here (§3.2).
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_SYNC_PRIMITIVES_H
#define LITERACE_SYNC_PRIMITIVES_H

#include "runtime/ThreadContext.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace literace {

/// A logged mutual-exclusion lock. SyncVar identity is the object address.
class Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  /// Acquires the lock, then draws and logs the timestamp (so this lock's
  /// timestamp is greater than the previous unlock's).
  void lock(ThreadContext &TC) {
    if (LR_UNLIKELY(TC.perturber() != nullptr)) {
      lockPerturbed(TC);
      return;
    }
    Impl.lock();
    TC.logAcquire(syncVar());
  }

  /// Draws and logs the timestamp, then releases the lock.
  void unlock(ThreadContext &TC) {
    if (LR_UNLIKELY(TC.perturber() != nullptr)) {
      unlockPerturbed(TC);
      return;
    }
    TC.logRelease(syncVar());
    Impl.unlock();
  }

  SyncVar syncVar() const {
    return makeSyncVar(SyncObjectKind::Mutex,
                       reinterpret_cast<uint64_t>(this));
  }

private:
  /// Fuzz-engine paths: a perturbation point at entry, and a cooperative
  /// try_lock + blockedYield loop instead of a blocking lock, so the
  /// schedule engine's single execution token never parks inside the OS.
  void lockPerturbed(ThreadContext &TC);
  void unlockPerturbed(ThreadContext &TC);

  std::mutex Impl;
};

/// RAII guard for Mutex.
class MutexGuard {
public:
  MutexGuard(Mutex &M, ThreadContext &TC) : M(M), TC(TC) { M.lock(TC); }
  ~MutexGuard() { M.unlock(TC); }

  MutexGuard(const MutexGuard &) = delete;
  MutexGuard &operator=(const MutexGuard &) = delete;

private:
  Mutex &M;
  ThreadContext &TC;
};

/// A logged manual-reset event (Win32-style wait/notify). set() wakes all
/// current and future waiters until reset() is called.
class ManualResetEvent {
public:
  ManualResetEvent() = default;
  ManualResetEvent(const ManualResetEvent &) = delete;
  ManualResetEvent &operator=(const ManualResetEvent &) = delete;

  /// Logs the release edge, then signals.
  void set(ThreadContext &TC);

  /// Blocks until signalled, then logs the acquire edge.
  void wait(ThreadContext &TC);

  /// Clears the signalled state. Does not create happens-before edges.
  void reset();

  /// Non-blocking signalled check; does not create happens-before edges.
  bool isSet();

  SyncVar syncVar() const {
    return makeSyncVar(SyncObjectKind::Event,
                       reinterpret_cast<uint64_t>(this));
  }

private:
  std::mutex Lock;
  std::condition_variable Cond;
  bool Signalled = false;
};

/// A logged counting semaphore. Each release happens-before the acquire it
/// permits (and, conservatively, later acquires on the same semaphore).
class Semaphore {
public:
  explicit Semaphore(uint32_t Initial = 0) : Count(Initial) {}
  Semaphore(const Semaphore &) = delete;
  Semaphore &operator=(const Semaphore &) = delete;

  /// Logs the release edge, then increments and wakes one waiter.
  void release(ThreadContext &TC, uint32_t N = 1);

  /// Blocks until a permit is available, takes it, then logs the acquire
  /// edge.
  void acquire(ThreadContext &TC);

  SyncVar syncVar() const {
    return makeSyncVar(SyncObjectKind::Semaphore,
                       reinterpret_cast<uint64_t>(this));
  }

private:
  std::mutex Lock;
  std::condition_variable Cond;
  uint32_t Count;
};

/// A logged reusable barrier for a fixed party count. Arrival logs a
/// release edge before blocking and an acquire edge after the barrier
/// opens, producing all-to-all happens-before edges per generation.
///
/// Each generation uses its own SyncVar: with a single shared variable, a
/// thread that wakes late from generation g could draw its acquire
/// timestamp after a fast thread's generation g+1 release, and the
/// per-variable timestamp chain would then fabricate a (sound but
/// race-hiding) edge from the next generation back into this one.
class Barrier {
public:
  explicit Barrier(uint32_t Parties);
  Barrier(const Barrier &) = delete;
  Barrier &operator=(const Barrier &) = delete;

  /// Blocks until all parties have arrived.
  void arriveAndWait(ThreadContext &TC);

  /// SyncVar of generation \p Generation.
  SyncVar generationVar(uint64_t Generation) const {
    return makeSyncVar(SyncObjectKind::Barrier,
                       reinterpret_cast<uint64_t>(this) +
                           Generation * 0x9e3779b9ULL);
  }

private:
  std::mutex Lock;
  std::condition_variable Cond;
  const uint32_t Parties;
  uint32_t Waiting = 0;
  uint64_t Generation = 0;
};

/// A logged application thread. The constructor creates the fork
/// happens-before edge (parent → child) and join() creates the join edge
/// (child → parent). The body receives a fresh ThreadContext attached to
/// the same Runtime.
class Thread {
public:
  /// Spawns a thread running \p Fn. \p Parent is the spawning thread's
  /// context (its release edge is logged before the thread starts).
  Thread(Runtime &RT, ThreadContext &Parent,
         std::function<void(ThreadContext &)> Fn);

  /// Threads must be joined before destruction.
  ~Thread();

  Thread(const Thread &) = delete;
  Thread &operator=(const Thread &) = delete;

  /// Joins the thread and logs the join edge into \p Parent.
  void join(ThreadContext &Parent);

private:
  uint64_t UniqueId;
  std::thread Impl;
  bool Joined = false;
  /// Fuzz-engine fork protocol state: the engine the parent was attached
  /// to at spawn time (null outside fuzz runs) and the child's dense
  /// thread id, learned from SchedulePerturber::awaitAttach so join() can
  /// cooperatively wait for exactly this child to detach.
  SchedulePerturber *Perturber = nullptr;
  ThreadId ChildTid = 0;
};

/// A logged 64-bit atomic cell. Every read-modify-write is wrapped in an
/// internal critical section together with the timestamp draw and the log
/// append (§4.2): a user-level CAS may implement a lock or an unlock, so
/// the logged order must match the execution order exactly — the paper
/// reports hundreds of false races without this.
class AtomicU64 {
public:
  explicit AtomicU64(uint64_t Initial = 0) : Value(Initial) {}
  AtomicU64(const AtomicU64 &) = delete;
  AtomicU64 &operator=(const AtomicU64 &) = delete;

  /// Atomic load; logs an acquire edge from the last RMW/store.
  uint64_t load(ThreadContext &TC);

  /// Atomic store; logs an acquire+release edge.
  void store(ThreadContext &TC, uint64_t V);

  /// Atomic fetch-add; returns the previous value.
  uint64_t fetchAdd(ThreadContext &TC, uint64_t Delta);

  /// Atomic exchange; returns the previous value.
  uint64_t exchange(ThreadContext &TC, uint64_t V);

  /// Atomic compare-exchange. On failure, \p Expected is updated with the
  /// observed value. Logs an acquire+release edge whether or not it
  /// succeeds (a failed CAS still reads the cell).
  bool compareExchange(ThreadContext &TC, uint64_t &Expected,
                       uint64_t Desired);

  /// Raw unlogged load, for assertions and post-join validation only.
  uint64_t peek() const { return Value.load(std::memory_order_relaxed); }

  SyncVar syncVar() const {
    return makeSyncVar(SyncObjectKind::Atomic,
                       reinterpret_cast<uint64_t>(this));
  }

private:
  /// The §4.2 critical section: executes \p Op, then draws + logs the
  /// timestamp, atomically with respect to other operations on this cell.
  template <typename OpT> auto guarded(ThreadContext &TC, EventKind K, OpT Op);

  std::atomic<uint64_t> Value;
  std::atomic_flag Spin = ATOMIC_FLAG_INIT;
};

} // namespace literace

#endif // LITERACE_SYNC_PRIMITIVES_H
