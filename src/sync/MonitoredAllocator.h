//===-- sync/MonitoredAllocator.h - Allocation monitoring ------*- C++ -*-===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation-as-synchronization (paper §4.3). When memory is freed by one
/// thread and the allocator hands the same addresses to another thread, a
/// naive detector reports a race between accesses from the two lifetimes.
/// LiteRace monitors allocation routines and treats every allocation and
/// free as synchronization on the page(s) containing the block: the free
/// happens-before the reallocation (the allocator's own internal locking
/// guarantees the real-time order, and the page SyncVar's timestamp counter
/// captures it), so cross-lifetime accesses are ordered and never reported.
///
//===----------------------------------------------------------------------===//

#ifndef LITERACE_SYNC_MONITOREDALLOCATOR_H
#define LITERACE_SYNC_MONITOREDALLOCATOR_H

#include "runtime/ThreadContext.h"

#include <cstddef>
#include <new>
#include <utility>

namespace literace {

/// Builds the SyncVar of the page containing \p Addr.
inline SyncVar pageSyncVar(uint64_t Addr, unsigned PageShift = 12) {
  return makeSyncVar(SyncObjectKind::Page, Addr >> PageShift);
}

/// A malloc/free façade that logs the §4.3 page synchronization events
/// around every allocation and deallocation.
class MonitoredAllocator {
public:
  /// \p PageShift selects the page granularity (default 4 KiB).
  explicit MonitoredAllocator(unsigned PageShift = 12)
      : PageShift(PageShift) {}

  /// Allocates \p Bytes and logs an Alloc sync event on every page the
  /// block touches.
  void *allocate(ThreadContext &TC, size_t Bytes);

  /// Logs a Free sync event on every page the block touches, then frees.
  /// \p Bytes must match the allocation size.
  void deallocate(ThreadContext &TC, void *Ptr, size_t Bytes);

  /// Typed convenience: allocate + placement-construct.
  template <typename T, typename... ArgTs>
  T *create(ThreadContext &TC, ArgTs &&...Args) {
    void *Raw = allocate(TC, sizeof(T));
    return new (Raw) T(std::forward<ArgTs>(Args)...);
  }

  /// Typed convenience: destroy + deallocate.
  template <typename T> void destroy(ThreadContext &TC, T *Ptr) {
    Ptr->~T();
    deallocate(TC, Ptr, sizeof(T));
  }

private:
  void logPages(ThreadContext &TC, void *Ptr, size_t Bytes, bool IsAlloc);

  unsigned PageShift;
};

} // namespace literace

#endif // LITERACE_SYNC_MONITOREDALLOCATOR_H
