//===-- sync/Primitives.cpp - Logged synchronization primitives ----------===//
//
// Part of the LiteRace reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sync/Primitives.h"

#include "fuzz/SchedulePerturber.h"

#include <cassert>

using namespace literace;

namespace {

/// Fires the sync-op perturbation point when a fuzz engine is installed.
/// Called at primitive entry, before any lock or timestamp draw — never
/// from inside AtomicU64's spin section (that would park the engine's
/// token while holding the spinlock).
inline void syncPoint(ThreadContext &TC) {
  if (SchedulePerturber *P = TC.perturber())
    P->perturb(PerturbPoint::SyncOp, TC);
}

} // namespace

void Mutex::lockPerturbed(ThreadContext &TC) {
  SchedulePerturber *P = TC.perturber();
  P->perturb(PerturbPoint::SyncOp, TC);
  // Cooperative acquire: only the engine's token holder runs, so a failed
  // try_lock means the holder is a descheduled thread — yield the token
  // until it runs again and releases.
  while (!Impl.try_lock())
    P->blockedYield(TC);
  TC.logAcquire(syncVar());
}

void Mutex::unlockPerturbed(ThreadContext &TC) {
  syncPoint(TC);
  TC.logRelease(syncVar());
  Impl.unlock();
}

void ManualResetEvent::set(ThreadContext &TC) {
  syncPoint(TC);
  // Timestamp before the notify (§4.2): any waiter that wakes because of
  // this signal draws its timestamp afterwards.
  TC.logRelease(syncVar());
  {
    std::lock_guard<std::mutex> Guard(Lock);
    Signalled = true;
  }
  Cond.notify_all();
}

void ManualResetEvent::wait(ThreadContext &TC) {
  if (SchedulePerturber *P = TC.perturber()) {
    P->perturb(PerturbPoint::SyncOp, TC);
    for (;;) {
      {
        std::lock_guard<std::mutex> Guard(Lock);
        if (Signalled)
          break;
      }
      P->blockedYield(TC);
    }
  } else {
    std::unique_lock<std::mutex> Guard(Lock);
    Cond.wait(Guard, [&] { return Signalled; });
  }
  // Timestamp after the wait (§4.2).
  TC.logAcquire(syncVar());
}

void ManualResetEvent::reset() {
  std::lock_guard<std::mutex> Guard(Lock);
  Signalled = false;
}

bool ManualResetEvent::isSet() {
  std::lock_guard<std::mutex> Guard(Lock);
  return Signalled;
}

void Semaphore::release(ThreadContext &TC, uint32_t N) {
  assert(N > 0 && "release of zero permits");
  syncPoint(TC);
  TC.logRelease(syncVar());
  {
    std::lock_guard<std::mutex> Guard(Lock);
    Count += N;
  }
  if (N == 1)
    Cond.notify_one();
  else
    Cond.notify_all();
}

void Semaphore::acquire(ThreadContext &TC) {
  if (SchedulePerturber *P = TC.perturber()) {
    P->perturb(PerturbPoint::SyncOp, TC);
    for (;;) {
      {
        std::lock_guard<std::mutex> Guard(Lock);
        if (Count > 0) {
          --Count;
          break;
        }
      }
      P->blockedYield(TC);
    }
  } else {
    std::unique_lock<std::mutex> Guard(Lock);
    Cond.wait(Guard, [&] { return Count > 0; });
    --Count;
  }
  TC.logAcquire(syncVar());
}

Barrier::Barrier(uint32_t Parties) : Parties(Parties) {
  assert(Parties > 0 && "barrier needs at least one party");
}

void Barrier::arriveAndWait(ThreadContext &TC) {
  syncPoint(TC);
  // Read the generation first. It cannot advance until we arrive (we are
  // one of the parties it is waiting for), so the release below is
  // guaranteed to land on the generation we actually join.
  uint64_t MyGeneration;
  {
    std::lock_guard<std::mutex> Guard(Lock);
    MyGeneration = Generation;
  }
  // Release before blocking: every party's pre-barrier work is published
  // on this generation's variable.
  TC.logRelease(generationVar(MyGeneration));
  if (SchedulePerturber *P = TC.perturber()) {
    {
      std::lock_guard<std::mutex> Guard(Lock);
      if (++Waiting == Parties) {
        Waiting = 0;
        ++Generation;
      }
    }
    // Late parties poll cooperatively; the opener advanced Generation
    // above, so everyone's predicate flips without a condition variable.
    for (;;) {
      {
        std::lock_guard<std::mutex> Guard(Lock);
        if (Generation != MyGeneration)
          break;
      }
      P->blockedYield(TC);
    }
  } else {
    std::unique_lock<std::mutex> Guard(Lock);
    if (++Waiting == Parties) {
      Waiting = 0;
      ++Generation;
      Cond.notify_all();
    } else {
      Cond.wait(Guard, [&] { return Generation != MyGeneration; });
    }
  }
  // Acquire after the barrier opens: observes exactly this generation's
  // releases (all of which really preceded the opening, so the per-
  // variable timestamp order is release-before-acquire).
  TC.logAcquire(generationVar(MyGeneration));
}

namespace {

/// Fork/join SyncVars need an identity that outlives the Thread object and
/// is never recycled within a run, unlike object addresses.
std::atomic<uint64_t> NextThreadUniqueId{1};

} // namespace

Thread::Thread(Runtime &RT, ThreadContext &Parent,
               std::function<void(ThreadContext &)> Fn)
    : UniqueId(NextThreadUniqueId.fetch_add(1, std::memory_order_relaxed)),
      Perturber(Parent.perturber()) {
  if (Perturber)
    Perturber->perturb(PerturbPoint::SyncOp, Parent);
  SyncVar ForkVar = makeSyncVar(SyncObjectKind::ThreadFork, UniqueId);
  // Parent's timestamp is drawn before the thread exists, so it is smaller
  // than the child's acquire timestamp on the same SyncVar.
  Parent.logRelease(ForkVar);
  // The fork ticket must predate the spawn: the child attaches without
  // needing the token and can beat the parent to the engine lock.
  uint64_t ForkTicket = 0;
  if (Perturber)
    ForkTicket = Perturber->prepareFork(Parent);
  Impl = std::thread([&RT, Fn = std::move(Fn), UniqueId = UniqueId] {
    ThreadContext TC(RT);
    TC.logAcquire(makeSyncVar(SyncObjectKind::ThreadFork, UniqueId));
    Fn(TC);
    // Published to whoever joins us.
    TC.logRelease(makeSyncVar(SyncObjectKind::ThreadExit, UniqueId));
  });
  // Fuzz-engine fork protocol: the parent keeps the execution token while
  // the child's ThreadContext attaches, so at most one unattached child
  // exists at a time and dense thread-id assignment is deterministic.
  if (Perturber)
    ChildTid = Perturber->awaitAttach(Parent, ForkTicket);
}

Thread::~Thread() {
  assert(Joined && "Thread destroyed without join()");
  if (!Joined && Impl.joinable())
    Impl.join(); // Last-resort safety in no-assert builds.
}

void Thread::join(ThreadContext &Parent) {
  assert(!Joined && "double join");
  // Under the fuzz engine, drive the schedule until the child has
  // detached before parking in the OS join: a token holder blocked in
  // join() would deadlock the engine (the child can only run when handed
  // the token).
  if (Perturber)
    Perturber->yieldUntilDetached(Parent, ChildTid);
  Impl.join();
  // The child's exit release was logged before the join returned.
  Parent.logAcquire(makeSyncVar(SyncObjectKind::ThreadExit, UniqueId));
  Joined = true;
}

template <typename OpT>
auto AtomicU64::guarded(ThreadContext &TC, EventKind K, OpT Op) {
  // Perturbation point before the spin section, never inside it. Under
  // the engine the section cannot contend anyway: it contains no
  // perturbation points, so the token holder always clears the flag
  // before anyone else can run.
  syncPoint(TC);
  // §4.2 critical section: without it, two CASes could log timestamps in
  // the opposite of their execution order, fabricating races downstream.
  while (Spin.test_and_set(std::memory_order_acquire)) {
  }
  auto Result = Op();
  switch (K) {
  case EventKind::Acquire:
    TC.logAcquire(syncVar());
    break;
  case EventKind::AcqRel:
    TC.logAcqRel(syncVar());
    break;
  default:
    literaceUnreachable("unexpected atomic edge kind");
  }
  Spin.clear(std::memory_order_release);
  return Result;
}

uint64_t AtomicU64::load(ThreadContext &TC) {
  return guarded(TC, EventKind::Acquire, [&] {
    return Value.load(std::memory_order_seq_cst);
  });
}

void AtomicU64::store(ThreadContext &TC, uint64_t V) {
  guarded(TC, EventKind::AcqRel, [&] {
    Value.store(V, std::memory_order_seq_cst);
    return 0;
  });
}

uint64_t AtomicU64::fetchAdd(ThreadContext &TC, uint64_t Delta) {
  return guarded(TC, EventKind::AcqRel, [&] {
    return Value.fetch_add(Delta, std::memory_order_seq_cst);
  });
}

uint64_t AtomicU64::exchange(ThreadContext &TC, uint64_t V) {
  return guarded(TC, EventKind::AcqRel, [&] {
    return Value.exchange(V, std::memory_order_seq_cst);
  });
}

bool AtomicU64::compareExchange(ThreadContext &TC, uint64_t &Expected,
                                uint64_t Desired) {
  return guarded(TC, EventKind::AcqRel, [&] {
    return Value.compare_exchange_strong(Expected, Desired,
                                         std::memory_order_seq_cst);
  });
}
